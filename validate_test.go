package blaze_test

import (
	"strings"
	"testing"

	"blaze"
)

// TestRunConfigValidate table-tests the exported validation against the
// knobs external input (flags, HTTP payloads) can get wrong. Run and
// Server.Submit both route through Validate, so an invalid config must
// fail before any cluster is built.
func TestRunConfigValidate(t *testing.T) {
	valid := blaze.RunConfig{System: blaze.SysBlaze, Workload: blaze.PR}
	cases := []struct {
		name    string
		mutate  func(*blaze.RunConfig)
		wantErr string
	}{
		{"valid defaults", func(c *blaze.RunConfig) {}, ""},
		{"valid explicit", func(c *blaze.RunConfig) {
			c.Executors = 4
			c.Cores = 2
			c.Scale = 0.5
			c.ProfileScale = 0.1
		}, ""},
		{"negative executors", func(c *blaze.RunConfig) { c.Executors = -1 }, "Executors"},
		{"negative cores", func(c *blaze.RunConfig) { c.Cores = -2 }, "Cores"},
		{"negative parallelism", func(c *blaze.RunConfig) { c.Parallelism = -1 }, "Parallelism"},
		{"negative memory", func(c *blaze.RunConfig) { c.MemoryPerExecutor = -1 }, "MemoryPerExecutor"},
		{"negative memory fraction", func(c *blaze.RunConfig) { c.MemoryFraction = -0.5 }, "MemoryFraction"},
		{"negative scale", func(c *blaze.RunConfig) { c.Scale = -1 }, "Scale"},
		{"profile scale above one", func(c *blaze.RunConfig) { c.ProfileScale = 1.5 }, "ProfileScale"},
		{"negative disk capacity", func(c *blaze.RunConfig) { c.DiskCapacity = -1 }, "DiskCapacity"},
		{"unknown system", func(c *blaze.RunConfig) { c.System = "nope" }, "unknown system"},
		{"unknown policy", func(c *blaze.RunConfig) { c.System = blaze.PolicySystem("nope") }, "unknown eviction policy"},
		{"unknown workload", func(c *blaze.RunConfig) { c.Workload = "nope" }, "workload"},
		{"broken cost params", func(c *blaze.RunConfig) {
			p := blaze.DefaultCostParams()
			p.DiskReadBps = -1
			c.CostParams = p
		}, "disk throughput"},
		{"broken faults", func(c *blaze.RunConfig) {
			c.Faults = &blaze.FaultConfig{Every: -1}
		}, "Every"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want it to mention %q", err, tc.wantErr)
			}
			// Run must refuse the same configs (workload errors aside,
			// Run surfaces them identically through Validate).
			if _, runErr := blaze.Run(cfg); runErr == nil {
				t.Fatal("Run accepted a config Validate rejects")
			}
		})
	}
}

func TestCostParamsIsZero(t *testing.T) {
	var zero blaze.CostParams
	if !zero.IsZero() {
		t.Fatal("zero CostParams should report IsZero")
	}
	if blaze.DefaultCostParams().IsZero() {
		t.Fatal("populated CostParams should not report IsZero")
	}
	// Any single populated field makes it non-zero — the reflect-based
	// implementation can never silently exclude a newly added field the
	// way the old hand-written list could.
	p := zero
	p.SerFactor = 1
	if p.IsZero() {
		t.Fatal("CostParams with one field set should not report IsZero")
	}
}
