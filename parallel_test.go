package blaze_test

import (
	"fmt"
	"testing"

	"blaze"
)

// allSystems lists every registered system id, including a
// conventional-policy system, for the parallel-identity sweep.
func allSystems() []blaze.SystemID {
	return []blaze.SystemID{
		blaze.SysSparkMem, blaze.SysSparkMemDisk, blaze.SysSparkAlluxio,
		blaze.SysLRC, blaze.SysMRD, blaze.SysLRCMem, blaze.SysMRDMem,
		blaze.SysAutoCache, blaze.SysCostAware,
		blaze.SysBlaze, blaze.SysBlazeMem, blaze.SysBlazeNoProfile,
		blaze.PolicySystem("tinylfu"),
	}
}

func runIdentity(t *testing.T, sys blaze.SystemID, wl blaze.WorkloadID, par int, faults *blaze.FaultConfig) (*blaze.Result, *blaze.EventLog) {
	t.Helper()
	log := blaze.NewEventLog()
	res, err := blaze.Run(blaze.RunConfig{
		System:      sys,
		Workload:    wl,
		Executors:   4,
		Scale:       0.25,
		Parallelism: par,
		EventLog:    log,
		Faults:      faults,
	})
	if err != nil {
		t.Fatalf("%s/%s parallelism=%d: %v", sys, wl, par, err)
	}
	return res, log
}

func assertIdentical(t *testing.T, label string, seqRes, parRes *blaze.Result, seqLog, parLog *blaze.EventLog) {
	t.Helper()
	if !blaze.MetricsEqualDeterministic(seqRes.Metrics, parRes.Metrics) {
		t.Errorf("%s: metrics differ between sequential and parallel execution\nseq: %+v\npar: %+v",
			label, seqRes.Metrics, parRes.Metrics)
	}
	se, pe := seqLog.Events(), parLog.Events()
	if len(se) != len(pe) {
		t.Errorf("%s: event counts differ: seq=%d par=%d", label, len(se), len(pe))
		return
	}
	for i := range se {
		if se[i] != pe[i] {
			t.Errorf("%s: event %d differs:\nseq: %+v\npar: %+v", label, i, se[i], pe[i])
			return
		}
	}
}

// TestParallelMetricsIdentity is the engine's core guarantee: executing
// stages on concurrent workers changes only wall-clock time. For every
// registered system, a run at Parallelism 8 must produce bit-identical
// virtual-time metrics AND an identical event log to the sequential run.
func TestParallelMetricsIdentity(t *testing.T) {
	for _, sys := range allSystems() {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			seqRes, seqLog := runIdentity(t, sys, blaze.PR, 1, nil)
			parRes, parLog := runIdentity(t, sys, blaze.PR, 8, nil)
			assertIdentical(t, string(sys), seqRes, parRes, seqLog, parLog)
		})
	}
}

// TestParallelMetricsIdentityUnderFaults repeats the identity check
// with the exec-death and bucket fault classes active: recovery paths
// (partition migration, map-output regeneration) must also be
// interleaving-independent.
func TestParallelMetricsIdentityUnderFaults(t *testing.T) {
	systems := []blaze.SystemID{blaze.SysSparkMemDisk, blaze.SysMRD, blaze.SysBlaze}
	for _, class := range []blaze.FaultClass{blaze.FaultExecutorDeath, blaze.FaultBucketLoss} {
		for _, sys := range systems {
			class, sys := class, sys
			t.Run(fmt.Sprintf("%s/%s", class, sys), func(t *testing.T) {
				fc := &blaze.FaultConfig{Seed: 7, Every: 3, Classes: []blaze.FaultClass{class}}
				seqRes, seqLog := runIdentity(t, sys, blaze.PR, 1, fc)
				parRes, parLog := runIdentity(t, sys, blaze.PR, 8, fc)
				if seqRes.Metrics.FaultsInjected == 0 {
					t.Fatalf("fault schedule injected nothing; raise Rate")
				}
				assertIdentical(t, fmt.Sprintf("%s/%s", class, sys), seqRes, parRes, seqLog, parLog)
			})
		}
	}
}

// TestParallelRaceStress drives shuffle-heavy workloads at Parallelism
// 8 so the -race CI job sweeps the concurrent hot path: shuffle
// read/write, eviction under pressure, metric and lineage updates.
func TestParallelRaceStress(t *testing.T) {
	for _, sys := range []blaze.SystemID{blaze.SysSparkMemDisk, blaze.SysMRD, blaze.SysBlaze} {
		for _, wl := range []blaze.WorkloadID{blaze.PR, blaze.KMeans} {
			sys, wl := sys, wl
			t.Run(fmt.Sprintf("%s/%s", sys, wl), func(t *testing.T) {
				if _, err := blaze.Run(blaze.RunConfig{
					System:      sys,
					Workload:    wl,
					Executors:   8,
					Scale:       0.25,
					Parallelism: 8,
				}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
