package blaze_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blaze"
)

// durableStreamConfig builds the crash-recovery test configuration: a
// durable streaming run over 4 windows at quarter scale with cold-solve
// verification on, checkpointing into dir and (optionally) crashing at
// window boundary k.
func durableStreamConfig(wl blaze.StreamWorkloadID, par int, dir string, crashWindow int,
	log, recLog *blaze.EventLog) blaze.StreamConfig {
	return blaze.StreamConfig{
		Workload:          wl,
		Windows:           4,
		Scale:             0.25,
		Executors:         4,
		Parallelism:       par,
		MemoryPerExecutor: 1 << 20,
		EventLog:          log,
		ColdSolveVerify:   true,
		CheckpointDir:     dir,
		CrashWindow:       crashWindow,
		RecoveryLog:       recLog,
	}
}

// TestStreamCrashResumeBitIdentity is the recovery layer's headline
// invariant: a streaming session killed at ANY window boundary and
// resumed from its checkpoint produces bit-identical metrics, event
// logs and per-window stats to a run that never crashed — at every
// Parallelism. The baseline runs without checkpointing at all, so the
// comparison also proves that durability itself perturbs nothing.
func TestStreamCrashResumeBitIdentity(t *testing.T) {
	for _, wl := range blaze.AllStreamWorkloads() {
		wl := wl
		for _, par := range []int{1, 8} {
			par := par
			baseRes, baseLog := runStream(t, wl, par, 0)
			// Every boundary k (window 1 has no boundary checkpoint).
			for k := 2; k <= 4; k++ {
				k := k
				t.Run(fmt.Sprintf("%s/p%d/k%d", wl, par, k), func(t *testing.T) {
					dir := t.TempDir()

					// Crash the run at boundary k.
					crashLog := blaze.NewEventLog()
					_, err := blaze.RunStream(durableStreamConfig(wl, par, dir, k, crashLog, nil))
					if !errors.Is(err, blaze.ErrSessionCrashed) {
						t.Fatalf("crash run: got err %v, want ErrSessionCrashed", err)
					}

					// Resume with the identical config (CrashWindow included:
					// the crashed boundary replays, so the trigger must not
					// re-fire).
					resLog := blaze.NewEventLog()
					recLog := blaze.NewEventLog()
					res, err := blaze.ResumeStream(durableStreamConfig(wl, par, dir, k, resLog, recLog))
					if err != nil {
						t.Fatalf("resume: %v", err)
					}

					if !blaze.MetricsEqualDeterministic(baseRes.Metrics, res.Metrics) {
						t.Errorf("resumed metrics differ from uninterrupted run\nbase: %+v\nres:  %+v",
							baseRes.Metrics, res.Metrics)
					}
					be, re := baseLog.Events(), resLog.Events()
					if len(be) != len(re) {
						t.Fatalf("event counts differ: base=%d resumed=%d", len(be), len(re))
					}
					for i := range be {
						if be[i] != re[i] {
							t.Fatalf("event %d differs:\nbase: %+v\nres:  %+v", i, be[i], re[i])
						}
					}
					if len(res.Windows) != len(baseRes.Windows) {
						t.Fatalf("window counts differ: base=%d resumed=%d", len(baseRes.Windows), len(res.Windows))
					}
					for i := range baseRes.Windows {
						if !baseRes.Windows[i].EqualDeterministic(res.Windows[i]) {
							t.Errorf("window %d stats differ:\nbase: %+v\nres:  %+v",
								i+1, baseRes.Windows[i], res.Windows[i])
						}
					}
					if res.Metrics.ILPColdMismatches != 0 {
						t.Errorf("post-resume delta solves disagreed with cold solves %d times",
							res.Metrics.ILPColdMismatches)
					}

					// The plan repair ran, verified clean, and stayed out of
					// the main log.
					if res.Metrics.RepairSolves == 0 {
						t.Error("resume triggered no plan-repair solves")
					}
					if res.Metrics.RepairMismatches != 0 {
						t.Errorf("plan repair disagreed with from-scratch solve %d times",
							res.Metrics.RepairMismatches)
					}
					var resumed, repairs int
					for _, e := range recLog.Events() {
						switch e.Kind {
						case "session_resumed":
							resumed++
							if e.Window != k {
								t.Errorf("session_resumed at window %d, want %d", e.Window, k)
							}
						case "ilp_repair_solve":
							repairs++
						}
					}
					if resumed != 1 {
						t.Errorf("recovery log holds %d session_resumed events, want 1", resumed)
					}
					if repairs == 0 {
						t.Error("recovery log holds no ilp_repair_solve events")
					}
				})
			}
		}
	}
}

// TestResumeFallbackToPreviousBoundary corrupts the newest checkpoint
// after a crash: resume must fall back to the previous boundary's
// snapshot — re-running one more window live — and still reproduce the
// uninterrupted run bit for bit.
func TestResumeFallbackToPreviousBoundary(t *testing.T) {
	baseRes, baseLog := runStream(t, blaze.StreamPR, 1, 0)
	dir := t.TempDir()

	crashLog := blaze.NewEventLog()
	_, err := blaze.RunStream(durableStreamConfig(blaze.StreamPR, 1, dir, 4, crashLog, nil))
	if !errors.Is(err, blaze.ErrSessionCrashed) {
		t.Fatalf("crash run: got err %v, want ErrSessionCrashed", err)
	}

	// Damage the boundary-4 snapshot's commit record.
	manifest := filepath.Join(dir, "win_0004", "manifest.json")
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(manifest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	resLog := blaze.NewEventLog()
	recLog := blaze.NewEventLog()
	res, err := blaze.ResumeStream(durableStreamConfig(blaze.StreamPR, 1, dir, 0, resLog, recLog))
	if err != nil {
		t.Fatalf("fallback resume: %v", err)
	}
	if !blaze.MetricsEqualDeterministic(baseRes.Metrics, res.Metrics) {
		t.Errorf("fallback-resumed metrics differ from uninterrupted run\nbase: %+v\nres:  %+v",
			baseRes.Metrics, res.Metrics)
	}
	be, re := baseLog.Events(), resLog.Events()
	if len(be) != len(re) {
		t.Fatalf("event counts differ: base=%d resumed=%d", len(be), len(re))
	}
	for i := range be {
		if be[i] != re[i] {
			t.Fatalf("event %d differs:\nbase: %+v\nres:  %+v", i, be[i], re[i])
		}
	}
	// The resume point must actually have been the older boundary.
	for _, e := range recLog.Events() {
		if e.Kind == "session_resumed" && e.Window != 3 {
			t.Errorf("resumed at window %d, want fallback boundary 3", e.Window)
		}
	}
}

// TestResumeWithoutCheckpoint pins the recompute-from-scratch fallback:
// resuming a directory with no usable snapshot reports ErrNoCheckpoint,
// and the caller's fallback — a plain run — still works.
func TestResumeWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := durableStreamConfig(blaze.StreamKMeans, 1, dir, 0, blaze.NewEventLog(), nil)
	if _, err := blaze.ResumeStream(cfg); !errors.Is(err, blaze.ErrNoCheckpoint) {
		t.Fatalf("resume on empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	cfg.EventLog = blaze.NewEventLog()
	if _, err := blaze.RunStream(cfg); err != nil {
		t.Fatalf("from-scratch fallback run: %v", err)
	}
}

// TestSessionDoubleCloseAfterCrash pins Close idempotency on the crash
// path: closing a crashed durable session twice must not panic and must
// keep returning a closed/crashed error.
func TestSessionDoubleCloseAfterCrash(t *testing.T) {
	dir := t.TempDir()
	sess, err := blaze.NewSession(blaze.SessionConfig{
		Executors:         2,
		MemoryPerExecutor: 1 << 20,
		CheckpointDir:     dir,
		CrashWindow:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	step := func(ctx *blaze.Context) {}
	if err := sess.Submit(step); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.NextWindow(); !errors.Is(err, blaze.ErrSessionCrashed) {
		t.Fatalf("NextWindow at crash boundary: err = %v, want ErrSessionCrashed", err)
	}
	if _, err := sess.Close(); !errors.Is(err, blaze.ErrSessionCrashed) {
		t.Fatalf("first Close after crash: err = %v, want ErrSessionCrashed", err)
	}
	if _, err := sess.Close(); !errors.Is(err, blaze.ErrSessionClosed) {
		t.Fatalf("second Close: err = %v, want ErrSessionClosed", err)
	}
}
