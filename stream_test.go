package blaze_test

import (
	"fmt"
	"testing"

	"blaze"
)

func runStream(t *testing.T, wl blaze.StreamWorkloadID, par int, disk int64) (*blaze.StreamResult, *blaze.EventLog) {
	t.Helper()
	log := blaze.NewEventLog()
	res, err := blaze.RunStream(blaze.StreamConfig{
		Workload:          wl,
		Windows:           4,
		Scale:             0.25,
		Executors:         4,
		Parallelism:       par,
		MemoryPerExecutor: 1 << 20,
		DiskCapacity:      disk,
		EventLog:          log,
		ColdSolveVerify:   true,
	})
	if err != nil {
		t.Fatalf("%s parallelism=%d: %v", wl, par, err)
	}
	return res, log
}

// TestStreamWindowDeterminism extends the engine's parallel-identity
// guarantee to micro-batch streaming: N windows through a Session at
// Parallelism 1 and Parallelism 8 must produce bit-identical metrics,
// identical event logs, and identical per-window stats. With cold-solve
// verification enabled, every boundary delta re-solve is checked
// against a from-scratch solve of the same instance; a single
// disagreement fails the run.
func TestStreamWindowDeterminism(t *testing.T) {
	for _, wl := range blaze.AllStreamWorkloads() {
		wl := wl
		t.Run(string(wl), func(t *testing.T) {
			seqRes, seqLog := runStream(t, wl, 1, 0)
			parRes, parLog := runStream(t, wl, 8, 0)

			if !blaze.MetricsEqualDeterministic(seqRes.Metrics, parRes.Metrics) {
				t.Errorf("metrics differ between sequential and parallel streams\nseq: %+v\npar: %+v",
					seqRes.Metrics, parRes.Metrics)
			}
			se, pe := seqLog.Events(), parLog.Events()
			if len(se) != len(pe) {
				t.Fatalf("event counts differ: seq=%d par=%d", len(se), len(pe))
			}
			for i := range se {
				if se[i] != pe[i] {
					t.Fatalf("event %d differs:\nseq: %+v\npar: %+v", i, se[i], pe[i])
				}
			}
			if len(seqRes.Windows) != len(parRes.Windows) {
				t.Fatalf("window counts differ: seq=%d par=%d", len(seqRes.Windows), len(parRes.Windows))
			}
			for i := range seqRes.Windows {
				if !seqRes.Windows[i].EqualDeterministic(parRes.Windows[i]) {
					t.Errorf("window %d stats differ:\nseq: %+v\npar: %+v",
						i+1, seqRes.Windows[i], parRes.Windows[i])
				}
			}

			windows, retired, deltas := seqRes.StreamActivity()
			if windows != 4 {
				t.Errorf("WindowsRun = %d, want 4", windows)
			}
			if retired == 0 {
				t.Error("no partitions retired: windowed lifetime management inactive")
			}
			if deltas == 0 {
				t.Error("no delta re-solves ran at window boundaries")
			}
			if seqRes.Metrics.ILPColdSolves == 0 {
				t.Error("cold verification requested but no cold solves ran")
			}
			if seqRes.Metrics.ILPColdMismatches != 0 {
				t.Errorf("delta re-solve disagreed with cold solve %d times",
					seqRes.Metrics.ILPColdMismatches)
			}
		})
	}
}

// TestStreamBoundaryExactILP repeats the cold-verification check on the
// branch-and-bound path: a disk tier makes the boundary instance a full
// three-state ILP rather than a memory knapsack. The delta solve must
// still select the cold solve's cache set while exploring no more
// search nodes than it.
func TestStreamBoundaryExactILP(t *testing.T) {
	res, _ := runStream(t, blaze.StreamPR, 8, 1<<20)
	if res.Metrics.ILPColdSolves == 0 {
		t.Fatal("cold verification requested but no cold solves ran")
	}
	if res.Metrics.ILPColdMismatches != 0 {
		t.Errorf("delta re-solve disagreed with cold solve %d times", res.Metrics.ILPColdMismatches)
	}
	if res.Metrics.ILPDeltaNodes > res.Metrics.ILPColdNodes {
		t.Errorf("delta solves explored more nodes (%d) than cold solves (%d)",
			res.Metrics.ILPDeltaNodes, res.Metrics.ILPColdNodes)
	}
}

// TestStreamCarriedState checks that cross-window state actually flows:
// a PageRank stream whose windows start from the carried rank graph
// must do strictly less recomputation than the same windows run cold
// (each in its own fresh session).
func TestStreamCarriedState(t *testing.T) {
	warm, _ := runStream(t, blaze.StreamPR, 1, 0)

	var coldMisses int
	for w := 1; w <= 4; w++ {
		res, err := blaze.RunStream(blaze.StreamConfig{
			Workload:          blaze.StreamPR,
			Windows:           1,
			Scale:             0.25,
			Executors:         4,
			Parallelism:       1,
			MemoryPerExecutor: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		coldMisses += res.Metrics.Misses
	}
	// A fresh session per window recomputes every window's initial graph
	// from scratch; the carried session materializes it once.
	if warm.Metrics.Misses >= coldMisses {
		t.Errorf("carried session misses (%d) not below cold-restart misses (%d)",
			warm.Metrics.Misses, coldMisses)
	}
}

// TestSessionClosed pins the Session lifecycle contract: all operations
// on a closed session fail with ErrSessionClosed, and closing twice is
// an error rather than a hang.
func TestSessionClosed(t *testing.T) {
	sess, err := blaze.NewSession(blaze.SessionConfig{
		Executors:         4,
		MemoryPerExecutor: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := sess.Submit(func(ctx *blaze.Context) {}); err != blaze.ErrSessionClosed {
		t.Errorf("Submit after Close: got %v, want ErrSessionClosed", err)
	}
	if _, err := sess.NextWindow(); err != blaze.ErrSessionClosed {
		t.Errorf("NextWindow after Close: got %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Close(); err != blaze.ErrSessionClosed {
		t.Errorf("second Close: got %v, want ErrSessionClosed", err)
	}
}

// TestStreamOneShotUnchanged guards the boundary between the streaming
// machinery and the one-shot path: a plain blaze.Run must report zero
// streaming activity — no windows, no retirement, no delta solves —
// proving the windowed code is inert outside sessions.
func TestStreamOneShotUnchanged(t *testing.T) {
	res, err := blaze.Run(blaze.RunConfig{
		System:    blaze.SysBlaze,
		Workload:  blaze.PR,
		Executors: 4,
		Scale:     0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	windows, retired, deltas := res.StreamActivity()
	if windows != 0 || retired != 0 || deltas != 0 {
		t.Errorf("one-shot run reports streaming activity: windows=%d retired=%d deltas=%d",
			windows, retired, deltas)
	}
}

// TestStreamWindowStatsShape sanity-checks the per-window accounting:
// one WindowStats per window, numbered 1..N, and their sums consistent
// with the app-level totals.
func TestStreamWindowStatsShape(t *testing.T) {
	res, _ := runStream(t, blaze.StreamKMeans, 1, 0)
	if len(res.Windows) != 4 {
		t.Fatalf("got %d window stats, want 4", len(res.Windows))
	}
	var retired, deltas int
	for i, w := range res.Windows {
		if w.Window != i+1 {
			t.Errorf("window %d numbered %d", i+1, w.Window)
		}
		retired += w.PartitionsRetired
		deltas += w.ILPDeltaSolves
	}
	if retired != res.Metrics.PartitionsRetired {
		t.Errorf("per-window retired sum %d != app total %d", retired, res.Metrics.PartitionsRetired)
	}
	if deltas != res.Metrics.ILPDeltaSolves {
		t.Errorf("per-window delta-solve sum %d != app total %d", deltas, res.Metrics.ILPDeltaSolves)
	}
}

// TestResultActivityAccessors covers the non-streaming accessor
// satellites on Result: RecoveryActivity returns a copy of the
// per-class recovery durations, ResilienceActivity the retry and
// speculation counters.
func TestResultActivityAccessors(t *testing.T) {
	res, err := blaze.Run(blaze.RunConfig{
		System:    blaze.SysBlaze,
		Workload:  blaze.PR,
		Executors: 4,
		Scale:     0.25,
		Faults:    &blaze.FaultConfig{Seed: 7, Every: 3, Classes: []blaze.FaultClass{blaze.FaultExecutorDeath}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.FaultsInjected == 0 {
		t.Fatal("fault schedule injected nothing")
	}
	rec := res.RecoveryActivity()
	if len(rec) == 0 {
		t.Error("RecoveryActivity empty despite injected executor deaths")
	}
	for class, d := range rec {
		if d <= 0 {
			t.Errorf("class %q: non-positive recovery duration %v", class, d)
		}
	}
	rec[fmt.Sprintf("probe-%d", 1)] = 1 // must not alias the metrics map
	if len(res.RecoveryActivity()) == len(rec) {
		t.Error("RecoveryActivity returned the internal map, not a copy")
	}
	taskRetries, _, _, _ := res.ResilienceActivity()
	if taskRetries != res.Metrics.TaskRetries {
		t.Errorf("ResilienceActivity taskRetries=%d, metrics say %d", taskRetries, res.Metrics.TaskRetries)
	}
}
