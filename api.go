package blaze

// This file completes the public facade: type aliases and thin wrappers
// over the internal packages so that programs built on Blaze — custom
// workloads, custom eviction policies, lineage tooling — never import
// blaze/internal/... themselves. Aliases (not wrapper structs) are used
// throughout: a blaze.Context IS a dataflow.Context, so the full method
// set of the internal type is available without drift or conversion.

import (
	"time"

	"blaze/internal/cachepolicy"
	"blaze/internal/core"
	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/datagen"
	"blaze/internal/engine"
	"blaze/internal/ilp"
	"blaze/internal/metrics"
	"blaze/internal/storage"
)

// ---------------------------------------------------------------------
// Cost model

// CostParams is the virtual-time cost model: device throughputs,
// per-record compute costs and task overheads. Construct one with
// DefaultCostParams or EvalParams and adjust fields, then set it on
// RunConfig.CostParams (by value — runs cannot alias each other's
// parameters).
type CostParams = costmodel.Params

// OpClass classifies operators by per-record compute cost; pass one to
// MapPartitions, ZipDatasets or BarrierDatasets to price expensive
// per-partition work.
type OpClass = dataflow.OpClass

// The operator classes, in ascending per-record cost.
const (
	OpSource = dataflow.OpSource
	OpLight  = dataflow.OpLight
	OpMedium = dataflow.OpMedium
	OpHeavy  = dataflow.OpHeavy
)

// CostOpClass is the key type of CostParams.RecordCost; CostOp converts
// an operator class to it when adjusting per-record costs.
type CostOpClass = costmodel.OpClass

// CostOp converts an operator class to the CostParams.RecordCost key.
func CostOp(c OpClass) CostOpClass { return CostOpClass(c) }

// DefaultCostParams returns the baseline cost model (laptop-scale SSD
// and network throughputs). EvalParams returns the evaluation harness's
// scaled-down variant.
func DefaultCostParams() CostParams { return costmodel.Default() }

// ---------------------------------------------------------------------
// Metrics

// Metrics is the full per-application accounting a run returns:
// virtual-time breakdowns, cache hit/miss and eviction counters,
// per-job recomputation, fault-recovery attribution and disk
// footprints. See Result.Metrics and the accessors below.
type Metrics = metrics.App

// ACT returns the application completion time (end-to-end virtual
// time, including Blaze's profiling overhead when applicable).
func (r *Result) ACT() time.Duration { return r.Metrics.ACT }

// TotalRecompute returns the virtual time spent re-deriving partitions
// that had already been computed — the recovery cost of
// recomputation-based caching, summed over jobs.
func (r *Result) TotalRecompute() time.Duration { return r.Metrics.TotalRecompute() }

// Evictions returns how many memory-store evictions the run performed
// and how many of those spilled the victim to disk.
func (r *Result) Evictions() (total, toDisk int) {
	return r.Metrics.Evictions, r.Metrics.EvictionsToDisk
}

// CacheActivity returns the memory hits, disk hits and misses
// (recomputations of previously computed partitions) of the run.
func (r *Result) CacheActivity() (memHits, diskHits, misses int) {
	return r.Metrics.CacheHits, r.Metrics.DiskHits, r.Metrics.Misses
}

// DiskFootprint returns the cumulative cache bytes written to disk and
// the cluster-wide peak on-disk footprint.
func (r *Result) DiskFootprint() (written, peak int64) {
	return r.Metrics.DiskBytesWritten, r.Metrics.DiskPeakBytes
}

// OptimizerActivity returns the run's optimizer accounting: solver
// invocations, branch-and-bound (or knapsack search) nodes expanded,
// degraded solves (knapsack relaxation of oversized instances, node
// budget exhaustion) and solves answered from the cross-job solution
// memo. Metrics.ILPSolveTime carries the wall-clock time spent inside
// the solver.
func (r *Result) OptimizerActivity() (solves, nodes, fallbacks, reused int) {
	return r.Metrics.ILPSolves, r.Metrics.ILPNodes, r.Metrics.ILPFallbacks, r.Metrics.ILPReused
}

// RecoveryActivity returns the run's fault-recovery durations keyed by
// fault class ("cache_block", "shuffle_output", "executor", ...) — the
// per-class attribution of the same virtual time TotalRecompute and the
// recovery counters summarize. The map is a copy; mutate freely.
func (r *Result) RecoveryActivity() map[string]time.Duration {
	out := make(map[string]time.Duration, len(r.Metrics.FaultRecoveryByClass))
	for class, d := range r.Metrics.FaultRecoveryByClass {
		out[class] = d
	}
	return out
}

// ResilienceActivity returns the transient-failure accounting: task and
// shuffle-fetch retries, speculative copies that beat their straggler,
// and executor blacklist episodes.
func (r *Result) ResilienceActivity() (taskRetries, fetchRetries, speculativeWins, blacklistings int) {
	return r.Metrics.TaskRetries, r.Metrics.FetchRetries, r.Metrics.SpeculativeWins, r.Metrics.BlacklistedExecutors
}

// StreamActivity returns the streaming accounting of a Session run:
// windows opened, partitions retired by windowed lifetime, and
// incremental (delta) ILP re-solves at window boundaries. All zero for
// one-shot Run results.
func (r *Result) StreamActivity() (windows, partitionsRetired, deltaSolves int) {
	return r.Metrics.WindowsRun, r.Metrics.PartitionsRetired, r.Metrics.ILPDeltaSolves
}

// MetricsEqualDeterministic reports whether two runs agree on every
// deterministic metric. The optimizer's ILPSolveTime — the one
// wall-clock field in Metrics — is excluded; identical schedules
// legitimately differ on it across runs. This is the comparison the
// parallel bit-identity invariant uses.
func MetricsEqualDeterministic(a, b *Metrics) bool { return metrics.EqualDeterministic(a, b) }

// StorageMeasurement is the measured storage work of a RealBytes run:
// per-category operation counts, real serialized bytes, wall-clock time
// and the virtual time the cost model charged for the same operations
// (fields MemEncode, MemDecode, DiskWrite, DiskRead of type
// StorageOpStats), plus decode-cache hits and the real block-file
// footprint. See Result.Storage.
type StorageMeasurement = storage.MeterSnapshot

// StorageOpStats aggregates one category of measured storage work; its
// Ratio method returns measured wall time over modeled virtual time.
type StorageOpStats = storage.OpStats

// ---------------------------------------------------------------------
// Dataflow: build custom workloads against the public surface

// Context owns the datasets of one dataflow program; NewContext creates
// an empty one. Datasets are created with Context.Source and derived
// with the Dataset transformation methods (Map, Filter, ReduceByKey,
// ...); actions (Count, Collect) submit jobs to the bound cluster.
type Context = dataflow.Context

// Dataset is an immutable partitioned collection with lineage — the
// RDD analogue.
type Dataset = dataflow.Dataset

// Record is one key/value element of a dataset partition.
type Record = dataflow.Record

// Sized lets record value types report their in-memory footprint so the
// cache sees realistic, skewed partition sizes.
type Sized = storage.Sized

// RegisterValueType registers a concrete record value type with the
// partition codec (gob). Workloads registered via RegisterWorkload must
// register every value type their cached datasets carry, or spills in
// VerifyCodec and RealBytes runs will fail to encode; the built-in
// workloads' types are pre-registered.
func RegisterValueType(v any) { storage.RegisterValueType(v) }

// NewContext creates an empty dataflow context to pass to a workload
// builder.
func NewContext() *Context { return dataflow.NewContext() }

// HashPartition returns the partition a key hashes to.
func HashPartition(key int64, parts int) int { return dataflow.HashPartition(key, parts) }

// VecTasksExecuted returns the process-wide count of tasks that ran on
// the vectorized (columnar) task loop. A Vectorized run's metrics and
// events are bit-identical to the row loop's by design, so this counter
// is the only way for tests and benchmarks to confirm the columnar path
// actually engaged.
func VecTasksExecuted() int64 { return engine.VecTasksExecuted() }

// ZipDatasets combines two co-partitioned datasets partition-wise with
// a narrow dependency on both (Spark's zipPartitions).
func ZipDatasets(name string, class OpClass, left, right *Dataset, f func(part int, l, r []Record) []Record) *Dataset {
	return dataflow.Zip(name, class, left, right, f)
}

// JoinDatasets co-shuffles two datasets by key and applies f to each
// pair of same-key buckets (Spark's join/cogroup family).
func JoinDatasets(name string, parts int, left, right *Dataset, f func(part int, l, r []Record) []Record) *Dataset {
	return dataflow.ShuffleJoin(name, parts, left, right, f)
}

// BarrierDatasets derives a dataset depending narrowly on left and on
// ALL partitions of right (a broadcast-style dependency, e.g.
// distributing KMeans centroids).
func BarrierDatasets(name string, class OpClass, left, right *Dataset, f func(part int, l, broadcast []Record) []Record) *Dataset {
	return dataflow.Barrier(name, class, left, right, f)
}

// ---------------------------------------------------------------------
// Eviction policies

// EvictionPolicy orders cached blocks by eviction priority: the first
// block of the returned order is the first victim. Implementations are
// pure orderings over block metadata; the engine maintains the
// bookkeeping the orderings read.
type EvictionPolicy = cachepolicy.Policy

// BlockMeta is the per-block metadata an EvictionPolicy orders by:
// identity, size, access history, reference counts/distances and
// potential recovery cost.
type BlockMeta = storage.BlockMeta

// BlockID identifies a cached block: (dataset, partition).
type BlockID = storage.BlockID

// RegisterPolicy makes a user-defined eviction policy available as the
// system PolicySystem(name): blaze.Run with System:
// blaze.PolicySystem("mine") runs MEM+DISK Spark evicting by the
// registered ordering. The factory is invoked once per run so stateful
// policies start fresh. Registering a built-in or duplicate name is an
// error.
func RegisterPolicy(name string, factory func() EvictionPolicy) error {
	return cachepolicy.Register(name, factory)
}

// ---------------------------------------------------------------------
// Lineage tooling: the dependency-extraction phase

// Skeleton is the output of Blaze's dependency extraction phase
// (§5.1): the structure of every job a workload submits, with
// role-level reference offsets and lineage edges, but no metrics.
type Skeleton = core.Skeleton

// LineageNodeKey identifies a dataset role instance across jobs
// ("ranks"@iteration 3) on the merged cost lineage.
type LineageNodeKey = core.NodeKey

// LineageNode is one role instance on the merged lineage with its
// parent edges.
type LineageNode = core.Node

// LineageEdge is one dependency between lineage nodes; Shuffle marks
// wide edges.
type LineageEdge = core.Edge

// ProfileWorkload runs the workload's plain (annotation-free) driver on
// a tiny sample through the reference evaluator and captures the
// submitted job DAGs — Blaze's dependency extraction. sampleScale is
// the input fraction (the paper profiles on <1 MB samples; Run's
// default is 0.02).
func ProfileWorkload(spec WorkloadSpec, sampleScale float64) *Skeleton {
	return core.Profile(core.Workload(spec.Plain), sampleScale)
}

// ---------------------------------------------------------------------
// Input generators and model internals for benchmark tooling

// BlobSpec describes a deterministic incompressible-blob input set for
// real-bytes storage experiments; Blob(i) materializes blob i.
type BlobSpec = datagen.BlobSpec

// CostObserved carries measured storage throughputs from a real-bytes
// run; CostParams.Calibrated re-derives model device speeds from it.
type CostObserved = costmodel.Observed

// ILPProblem, ILPSolution and ILPOptions expose the exact optimizer to
// benchmark tooling: the same solver the Blaze controller runs on its
// three-state caching instances, callable on standalone problems.
type (
	ILPProblem  = ilp.Problem
	ILPSolution = ilp.Solution
	ILPOptions  = ilp.Options
)

// ILPBenchProblem builds the canonical Blaze-shaped benchmark instance
// for n partitions: the three-state model with a memory capacity
// constraint, the instance family the solver benchmarks report on.
func ILPBenchProblem(parts int, memCapacity int64) ILPProblem {
	return ilp.BenchProblem(parts, memCapacity)
}

// ILPSolve runs the production solver (bounded-variable simplex with
// warm-started branch and bound) on a standalone instance.
func ILPSolve(p ILPProblem, o ILPOptions) (ILPSolution, error) { return ilp.Solve(p, o) }

// ILPReferenceSolve runs the pre-rewrite dense reference solver — kept
// for cross-checks and benchmarks; tractable only on small instances.
func ILPReferenceSolve(p ILPProblem, o ILPOptions) (ILPSolution, error) {
	return ilp.ReferenceSolve(p, o)
}
