package blaze_test

import (
	"testing"

	"blaze"
)

func TestWorkloadRegistry(t *testing.T) {
	ids := blaze.AllWorkloads()
	if len(ids) != 6 {
		t.Fatalf("expected 6 workloads, got %d", len(ids))
	}
	for _, id := range ids {
		spec, err := blaze.Workload(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if spec.Plain == nil || spec.Annotated == nil {
			t.Fatalf("%s: missing workload functions", id)
		}
		if spec.SerFactor <= 0 || spec.MemFraction <= 0 {
			t.Fatalf("%s: invalid factors %v %v", id, spec.SerFactor, spec.MemFraction)
		}
	}
	if _, err := blaze.Workload("nope"); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestRunRejectsUnknownSystem(t *testing.T) {
	if _, err := blaze.Run(blaze.RunConfig{System: "nope", Workload: blaze.PR}); err == nil {
		t.Fatal("unknown system should error")
	}
	if _, err := blaze.Run(blaze.RunConfig{System: blaze.SysBlaze, Workload: "nope"}); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestEvalParamsValid(t *testing.T) {
	for _, sf := range []float64{1.0, 2.5, 3.0} {
		if err := blaze.EvalParams(sf).Validate(); err != nil {
			t.Fatalf("EvalParams(%v): %v", sf, err)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs skipped in -short mode")
	}
	run := func() *blaze.Result {
		r, err := blaze.Run(blaze.RunConfig{System: blaze.SysBlaze, Workload: blaze.CC})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Metrics.ACT != b.Metrics.ACT {
		t.Fatalf("non-deterministic ACT: %v vs %v", a.Metrics.ACT, b.Metrics.ACT)
	}
	if a.Metrics.Evictions != b.Metrics.Evictions || a.Metrics.CacheHits != b.Metrics.CacheHits {
		t.Fatal("non-deterministic cache metrics")
	}
	if a.MemoryPerExecutor != b.MemoryPerExecutor {
		t.Fatal("non-deterministic calibration")
	}
}

func TestEverySystemRunsEveryWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix skipped in -short mode")
	}
	systems := []blaze.SystemID{
		blaze.SysSparkMem, blaze.SysSparkMemDisk, blaze.SysSparkAlluxio,
		blaze.SysLRC, blaze.SysMRD, blaze.SysLRCMem, blaze.SysMRDMem,
		blaze.SysAutoCache, blaze.SysCostAware,
		blaze.SysBlaze, blaze.SysBlazeMem, blaze.SysBlazeNoProfile,
	}
	// The cheapest workload keeps the full 12-system sweep fast.
	for _, s := range systems {
		r, err := blaze.Run(blaze.RunConfig{System: s, Workload: blaze.LR})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Metrics.ACT <= 0 {
			t.Fatalf("%s: zero ACT", s)
		}
		if r.Metrics.Jobs == 0 {
			t.Fatalf("%s: no jobs ran", s)
		}
	}
}

func TestMemoryOnlySystemsNeverTouchDisk(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, s := range []blaze.SystemID{blaze.SysSparkMem, blaze.SysLRCMem, blaze.SysMRDMem, blaze.SysBlazeMem} {
		r, err := blaze.Run(blaze.RunConfig{System: s, Workload: blaze.CC})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Metrics.DiskBytesWritten != 0 {
			t.Errorf("%s wrote %d bytes of cache data to disk", s, r.Metrics.DiskBytesWritten)
		}
	}
}

func TestDiskCapacityConstrainedILP(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	r, err := blaze.Run(blaze.RunConfig{
		System:       blaze.SysBlaze,
		Workload:     blaze.CC,
		DiskCapacity: 64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.ILPSolves == 0 {
		t.Fatal("disk-constrained run should still solve the ILP")
	}
}

func TestScaleShrinksWork(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	full, err := blaze.Run(blaze.RunConfig{System: blaze.SysSparkMemDisk, Workload: blaze.LR})
	if err != nil {
		t.Fatal(err)
	}
	small, err := blaze.Run(blaze.RunConfig{System: blaze.SysSparkMemDisk, Workload: blaze.LR, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if small.Metrics.TotalBreakdown().Compute >= full.Metrics.TotalBreakdown().Compute {
		t.Fatalf("scaled-down run should do less compute: %v vs %v",
			small.Metrics.TotalBreakdown().Compute, full.Metrics.TotalBreakdown().Compute)
	}
}

func TestMemoryFractionOverride(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	lo, err := blaze.Run(blaze.RunConfig{System: blaze.SysSparkMemDisk, Workload: blaze.PR, MemoryFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := blaze.Run(blaze.RunConfig{System: blaze.SysSparkMemDisk, Workload: blaze.PR, MemoryFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if lo.MemoryPerExecutor >= hi.MemoryPerExecutor {
		t.Fatalf("fraction override ignored: %d vs %d", lo.MemoryPerExecutor, hi.MemoryPerExecutor)
	}
	if lo.Metrics.DiskBytesWritten < hi.Metrics.DiskBytesWritten {
		t.Fatalf("tighter memory should spill at least as much: %d vs %d",
			lo.Metrics.DiskBytesWritten, hi.Metrics.DiskBytesWritten)
	}
}
