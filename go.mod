module blaze

go 1.22
