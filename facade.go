package blaze

// This file re-exports the internal fault-injection and event-log types
// that RunConfig accepts. External importers of the module cannot name
// internal packages, so the facade provides type aliases and thin
// constructors: a blaze.FaultConfig IS a faults.Config and a
// blaze.EventLog IS an eventlog.Log — no conversion, no drift.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/faults"
)

// EventLog records structured execution events (jobs, stages, tasks,
// cache lifecycle, faults and recoveries) when attached to a run via
// RunConfig.EventLog. See internal/eventlog for the event vocabulary.
type EventLog = eventlog.Log

// EventSummary is the replayed per-job / per-dataset view of an EventLog.
type EventSummary = eventlog.Summary

// NewEventLog creates an empty event log to attach to a RunConfig.
func NewEventLog() *EventLog { return eventlog.New() }

// ReadEventLog parses a JSON-lines event log written by EventLog.WriteJSON.
func ReadEventLog(r io.Reader) (*EventLog, error) { return eventlog.ReadJSON(r) }

// SummarizeEventLog replays a log into per-job and per-dataset statistics.
func SummarizeEventLog(l *EventLog) *EventSummary { return eventlog.Summarize(l) }

// FaultConfig describes a deterministic, seed-driven fault-injection
// schedule to attach via RunConfig.Faults. See internal/faults.
type FaultConfig = faults.Config

// FaultClass enumerates the injectable fault classes.
type FaultClass = faults.Class

// The fault classes.
const (
	// FaultExecutorCacheLoss drops every cached block of one executor
	// (an executor restart).
	FaultExecutorCacheLoss = faults.ExecutorCacheLoss
	// FaultBlockLoss drops a single cached block from both tiers.
	FaultBlockLoss = faults.BlockLoss
	// FaultShuffleLoss cleans a completed shuffle's outputs whole.
	FaultShuffleLoss = faults.ShuffleLoss
	// FaultExecutorDeath kills one executor permanently: its cache and
	// map outputs are lost and its partitions migrate to the survivors.
	FaultExecutorDeath = faults.ExecutorDeath
	// FaultBucketLoss destroys one map-output bucket, re-running only
	// the producing map task.
	FaultBucketLoss = faults.BucketLoss
	// FaultTaskFlake fails a single task attempt transiently; the
	// scheduler retries exactly that attempt with exponential backoff.
	FaultTaskFlake = faults.TaskFlake
	// FaultFetchFlake fails a single shuffle-fetch attempt transiently
	// without losing the bucket; the fetch is retried with backoff.
	FaultFetchFlake = faults.FetchFlake
	// FaultStraggler slows one executor by a configurable multiplier for
	// a bounded window of tasks, triggering speculative execution when
	// Resilience enables it.
	FaultStraggler = faults.Straggler
	// FaultServerCrash kills a whole streaming session deterministically
	// at a window boundary, right after its checkpoint commits. Unlike
	// the other classes it is not drawn from random schedules: it is
	// placed explicitly via SessionConfig.CrashWindow, and recovery means
	// resuming the session (ResumeSession), not in-run recomputation.
	FaultServerCrash = faults.ServerCrash
)

// ErrSessionCrashed is returned by Session and stream operations after
// an injected server crash (SessionConfig.CrashWindow) killed the
// session. The session's durable state survives under its
// CheckpointDir; ResumeSession continues it.
var ErrSessionCrashed = faults.ErrServerCrash

// ParseFaultClasses parses a comma-separated class list
// ("exec,shuffle", "task-flake,straggler", the groups
// "permanent"/"transient", or "all"), deduplicated in first-seen order.
func ParseFaultClasses(spec string) ([]FaultClass, error) { return faults.ParseClasses(spec) }

// AllFaultClasses lists every fault class, permanent then transient.
func AllFaultClasses() []FaultClass { return faults.AllClasses() }

// FormatFaultClasses renders a class list in the comma-separated syntax
// ParseFaultClasses accepts; the two functions round-trip. Use it (and
// FaultConfig.String) to render fault schedules on knob surfaces.
func FormatFaultClasses(cs []FaultClass) string { return faults.FormatClasses(cs) }

// Resilience configures the scheduler's transient-failure machinery —
// bounded task/fetch retries with exponential backoff, speculative
// execution of stragglers, and flaky-executor blacklisting — attached
// via RunConfig.Resilience. The zero value selects the defaults
// (3 task retries, 2 fetch retries, 2ms base backoff, speculation and
// blacklisting off); see engine.Resilience for the field semantics.
type Resilience = engine.Resilience

// ParseResilience parses comma-separated resilience knobs of the form
// "retries=3,fetch-retries=2,backoff=2ms,spec=2,blacklist=3,cooldown=2".
// Unset keys keep their defaults; "retries=-1" / "fetch-retries=-1"
// disable the respective retries.
func ParseResilience(spec string) (Resilience, error) {
	var r Resilience
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return r, fmt.Errorf("blaze: resilience knob %q is not key=value", f)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "retries":
			r.MaxTaskRetries, err = strconv.Atoi(val)
		case "fetch-retries":
			r.MaxFetchRetries, err = strconv.Atoi(val)
		case "backoff":
			r.RetryBackoff, err = time.ParseDuration(val)
		case "spec":
			r.SpeculativeMultiple, err = strconv.ParseFloat(val, 64)
		case "blacklist":
			r.BlacklistAfter, err = strconv.Atoi(val)
		case "cooldown":
			r.BlacklistCooldown, err = strconv.Atoi(val)
		default:
			return r, fmt.Errorf("blaze: unknown resilience knob %q (want retries, fetch-retries, backoff, spec, blacklist or cooldown)", key)
		}
		if err != nil {
			return r, fmt.Errorf("blaze: resilience knob %q: %v", f, err)
		}
	}
	return r, nil
}
