package blaze

// This file re-exports the internal fault-injection and event-log types
// that RunConfig accepts. External importers of the module cannot name
// internal packages, so the facade provides type aliases and thin
// constructors: a blaze.FaultConfig IS a faults.Config and a
// blaze.EventLog IS an eventlog.Log — no conversion, no drift.

import (
	"io"

	"blaze/internal/eventlog"
	"blaze/internal/faults"
)

// EventLog records structured execution events (jobs, stages, tasks,
// cache lifecycle, faults and recoveries) when attached to a run via
// RunConfig.EventLog. See internal/eventlog for the event vocabulary.
type EventLog = eventlog.Log

// EventSummary is the replayed per-job / per-dataset view of an EventLog.
type EventSummary = eventlog.Summary

// NewEventLog creates an empty event log to attach to a RunConfig.
func NewEventLog() *EventLog { return eventlog.New() }

// ReadEventLog parses a JSON-lines event log written by EventLog.WriteJSON.
func ReadEventLog(r io.Reader) (*EventLog, error) { return eventlog.ReadJSON(r) }

// SummarizeEventLog replays a log into per-job and per-dataset statistics.
func SummarizeEventLog(l *EventLog) *EventSummary { return eventlog.Summarize(l) }

// FaultConfig describes a deterministic, seed-driven fault-injection
// schedule to attach via RunConfig.Faults. See internal/faults.
type FaultConfig = faults.Config

// FaultClass enumerates the injectable fault classes.
type FaultClass = faults.Class

// The fault classes.
const (
	// FaultExecutorCacheLoss drops every cached block of one executor
	// (an executor restart).
	FaultExecutorCacheLoss = faults.ExecutorCacheLoss
	// FaultBlockLoss drops a single cached block from both tiers.
	FaultBlockLoss = faults.BlockLoss
	// FaultShuffleLoss cleans a completed shuffle's outputs whole.
	FaultShuffleLoss = faults.ShuffleLoss
	// FaultExecutorDeath kills one executor permanently: its cache and
	// map outputs are lost and its partitions migrate to the survivors.
	FaultExecutorDeath = faults.ExecutorDeath
	// FaultBucketLoss destroys one map-output bucket, re-running only
	// the producing map task.
	FaultBucketLoss = faults.BucketLoss
)

// ParseFaultClasses parses a comma-separated class list
// ("exec,shuffle", "exec-death", "bucket", or "all").
func ParseFaultClasses(spec string) ([]FaultClass, error) { return faults.ParseClasses(spec) }

// AllFaultClasses lists every fault class.
func AllFaultClasses() []FaultClass { return faults.AllClasses() }
