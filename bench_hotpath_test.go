package blaze_test

// Hot-path micro-benchmarks for the columnar execution work (PR 10) and
// the alloc-ceiling smoke test CI runs as a normal test. Each benchmark
// pairs the row-loop shape (boxed Records, per-record closure calls)
// with its batched twin so `go test -bench Hotpath -benchmem` and the
// CI benchstat job report the row-vs-batch delta directly.

import (
	"testing"

	"blaze/internal/dataflow"
	"blaze/internal/graphx"
	"blaze/internal/mllib"
	"blaze/internal/storage"
)

const (
	benchVerts = 4096 // records per PR partition
	benchDeg   = 8    // out-degree per vertex
	benchPts   = 4096 // points per k-means partition
	benchDim   = 4
	benchK     = 8
)

var sinkRecs []dataflow.Record

// --- batch map: PageRank contributions ---------------------------------

func BenchmarkHotpathPRContribsRow(b *testing.B) {
	recs, _ := graphx.BenchPRPartition(benchVerts, benchDeg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRecs = graphx.BenchContribsRow(recs)
	}
}

func BenchmarkHotpathPRContribsBatch(b *testing.B) {
	_, batch := graphx.BenchPRPartition(benchVerts, benchDeg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := graphx.BenchContribsBatch(batch)
		if out == nil {
			b.Fatal("kernel declined")
		}
		out.Release()
	}
}

// --- batch map: k-means assignment -------------------------------------

func BenchmarkHotpathKMeansStatsRow(b *testing.B) {
	ps, cs, _, _ := mllib.BenchKMeansPartition(benchPts, benchDim, benchK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRecs = mllib.BenchStatsRow(ps, cs, benchK)
	}
}

func BenchmarkHotpathKMeansStatsBatch(b *testing.B) {
	_, _, pb, cb := mllib.BenchKMeansPartition(benchPts, benchDim, benchK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := mllib.BenchStatsBatch(pb, cb, benchK)
		if out == nil {
			b.Fatal("kernel declined")
		}
		out.Release()
	}
}

// --- shuffle route ------------------------------------------------------

func contribBatch() *dataflow.Batch {
	recs, _ := graphx.BenchPRPartition(benchVerts, benchDeg)
	return graphx.BenchContribsBatch(dataflow.FromRecords(recs))
}

func BenchmarkHotpathShuffleRouteRow(b *testing.B) {
	const parts = 8
	recs := contribBatch().Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets := make([][]dataflow.Record, parts)
		for _, r := range recs {
			p := dataflow.HashPartition(r.Key, parts)
			buckets[p] = append(buckets[p], r)
		}
		sinkRecs = buckets[0]
	}
}

func BenchmarkHotpathShuffleRouteBatch(b *testing.B) {
	const parts = 8
	in := contribBatch()
	router := dataflow.NewRouter(parts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets := make([]*dataflow.Batch, parts)
		for p := range buckets {
			buckets[p] = dataflow.NewBatch(in.Len() / parts)
		}
		for j := 0; j < in.Len(); j++ {
			buckets[router.Bucket(in.Keys[j])].AppendFromBatch(in, j)
		}
		for _, bk := range buckets {
			bk.Release()
		}
	}
}

// --- combine ------------------------------------------------------------

func BenchmarkHotpathCombineRow(b *testing.B) {
	recs := contribBatch().Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The row loop's mergeByKey shape: map accumulation in first-seen
		// key order over boxed float64 values.
		idx := make(map[int64]int, len(recs))
		var out []dataflow.Record
		for _, r := range recs {
			if at, ok := idx[r.Key]; ok {
				out[at].Value = out[at].Value.(float64) + r.Value.(float64)
			} else {
				idx[r.Key] = len(out)
				out = append(out, r)
			}
		}
		sinkRecs = out
	}
}

func BenchmarkHotpathCombineBatch(b *testing.B) {
	in := contribBatch()
	add := func(a, b float64) float64 { return a + b }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := dataflow.MergeBatchByKeyF64(in, add)
		if out == nil {
			b.Fatal("merge declined")
		}
		out.Release()
	}
}

// --- codec round-trip ---------------------------------------------------

func BenchmarkHotpathCodecRoundTrip(b *testing.B) {
	recs := contribBatch().Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := storage.EncodeRecords(recs)
		if err != nil {
			b.Fatal(err)
		}
		if sinkRecs, err = storage.DecodeRecords(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- CI alloc-ceiling smoke ---------------------------------------------

// TestBatchedPRKernelAllocCeiling pins the allocation budget of the
// batched PageRank contributions kernel. The row loop allocates one
// boxed []Record per input record (benchVerts of them, plus a box per
// output record); the batched kernel must stay under a small constant
// number of allocations per partition regardless of record count. CI
// runs this as a plain test, so an accidental per-record allocation on
// the columnar path (a lost pool, an interface box in the inner loop)
// fails the build rather than silently eating the speedup.
func TestBatchedPRKernelAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is noisy under -short harnesses")
	}
	_, batch := graphx.BenchPRPartition(benchVerts, benchDeg)
	// Warm the pools so steady-state reuse is what gets measured.
	for i := 0; i < 4; i++ {
		if out := graphx.BenchContribsBatch(batch); out != nil {
			out.Release()
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		out := graphx.BenchContribsBatch(batch)
		if out == nil {
			t.Fatal("kernel declined")
		}
		out.Release()
	})
	// Steady state is ~3 allocs (batch + column headers); 32 leaves slack
	// for pool churn while still being ~100x under one-alloc-per-record.
	const ceiling = 32
	if allocs > ceiling {
		t.Fatalf("batched PR kernel allocates %.0f allocs per %d-record partition (ceiling %d): the columnar path has a per-record allocation", allocs, benchVerts, ceiling)
	}
}
