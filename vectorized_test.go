package blaze_test

import (
	"fmt"
	"testing"

	"blaze"
)

func runVec(t *testing.T, sys blaze.SystemID, wl blaze.WorkloadID, par int, vec bool, faults *blaze.FaultConfig) (*blaze.Result, *blaze.EventLog) {
	t.Helper()
	log := blaze.NewEventLog()
	res, err := blaze.Run(blaze.RunConfig{
		System:      sys,
		Workload:    wl,
		Executors:   4,
		Scale:       0.25,
		Parallelism: par,
		Vectorized:  vec,
		EventLog:    log,
		Faults:      faults,
	})
	if err != nil {
		t.Fatalf("%s/%s parallelism=%d vectorized=%v: %v", sys, wl, par, vec, err)
	}
	return res, log
}

// TestVectorizedIdentity is the columnar loop's core guarantee: running
// eligible stages on typed batches instead of boxed rows changes only
// wall-clock time. For every registered system, a Vectorized run at
// Parallelism 1 and 8 must produce bit-identical virtual-time metrics
// AND an identical event log to the row run. runTaskBodyVec,
// materializeVec and fetchShuffleVec in internal/engine/vectorized.go
// are line-for-line mirrors of the row functions; this sweep is what
// catches a missed mirror edit.
func TestVectorizedIdentity(t *testing.T) {
	for _, wl := range []blaze.WorkloadID{blaze.PR, blaze.KMeans} {
		for _, sys := range allSystems() {
			sys, wl := sys, wl
			t.Run(fmt.Sprintf("%s/%s", wl, sys), func(t *testing.T) {
				rowRes, rowLog := runVec(t, sys, wl, 1, false, nil)
				vecRes, vecLog := runVec(t, sys, wl, 1, true, nil)
				assertIdentical(t, fmt.Sprintf("%s/%s/P1", wl, sys), rowRes, vecRes, rowLog, vecLog)
				vec8Res, vec8Log := runVec(t, sys, wl, 8, true, nil)
				assertIdentical(t, fmt.Sprintf("%s/%s/P8", wl, sys), rowRes, vec8Res, rowLog, vec8Log)
			})
		}
	}
}

// TestVectorizedIdentitySVDPP extends the sweep to the
// serialization-heavy workload whose kernels mix typed columns
// (Factors) with the boxed escape hatch (RatingList, []any pairs).
func TestVectorizedIdentitySVDPP(t *testing.T) {
	for _, sys := range []blaze.SystemID{blaze.SysSparkMemDisk, blaze.SysMRD, blaze.SysBlaze} {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			rowRes, rowLog := runVec(t, sys, blaze.SVDPP, 1, false, nil)
			vecRes, vecLog := runVec(t, sys, blaze.SVDPP, 8, true, nil)
			assertIdentical(t, string(sys), rowRes, vecRes, rowLog, vecLog)
		})
	}
}

// TestVectorizedIdentityUnderFaults repeats the row-vs-batch identity
// check with the exec-death and bucket-loss fault classes active: the
// recovery paths (regeneration, recompute, fault accounting) must issue
// identical charges and events from both loops. Regenerated stages drop
// back to the row loop by the eligibility gate, so this also covers the
// mixed row/vec shuffle-storage conversions.
func TestVectorizedIdentityUnderFaults(t *testing.T) {
	systems := []blaze.SystemID{blaze.SysSparkMemDisk, blaze.SysMRD, blaze.SysBlaze}
	for _, class := range []blaze.FaultClass{blaze.FaultExecutorDeath, blaze.FaultBucketLoss} {
		for _, sys := range systems {
			class, sys := class, sys
			t.Run(fmt.Sprintf("%s/%s", class, sys), func(t *testing.T) {
				fc := &blaze.FaultConfig{Seed: 7, Every: 3, Classes: []blaze.FaultClass{class}}
				rowRes, rowLog := runVec(t, sys, blaze.PR, 1, false, fc)
				vecRes, vecLog := runVec(t, sys, blaze.PR, 8, true, fc)
				if rowRes.Metrics.FaultsInjected == 0 {
					t.Fatalf("fault schedule injected nothing; raise Rate")
				}
				assertIdentical(t, fmt.Sprintf("%s/%s", class, sys), rowRes, vecRes, rowLog, vecLog)
			})
		}
	}
}

// TestVectorizedPathEngages guards against the identity sweep passing
// vacuously: a Vectorized PageRank run must actually execute tasks on
// the columnar loop. (Nothing in metrics or events can reveal this —
// that is the point — so the process-global counter is the witness.)
func TestVectorizedPathEngages(t *testing.T) {
	before := blaze.VecTasksExecuted()
	if _, err := blaze.Run(blaze.RunConfig{
		System: blaze.SysSparkMemDisk, Workload: blaze.PR,
		Executors: 4, Scale: 0.25, Vectorized: true,
	}); err != nil {
		t.Fatal(err)
	}
	if got := blaze.VecTasksExecuted() - before; got == 0 {
		t.Fatal("Vectorized run executed zero columnar tasks; eligibility gate never fired")
	}
}

// TestVectorizedStreamIdentity extends the guarantee to micro-batch
// streaming: N windows through a vectorized session must be bit-equal
// to the row session, including per-window stats and boundary events.
func TestVectorizedStreamIdentity(t *testing.T) {
	run := func(vec bool) (*blaze.StreamResult, *blaze.EventLog) {
		log := blaze.NewEventLog()
		res, err := blaze.RunStream(blaze.StreamConfig{
			Workload:          blaze.StreamPR,
			Windows:           3,
			Scale:             0.25,
			Executors:         4,
			Parallelism:       4,
			Vectorized:        vec,
			MemoryPerExecutor: 1 << 20,
			EventLog:          log,
		})
		if err != nil {
			t.Fatalf("vectorized=%v: %v", vec, err)
		}
		return res, log
	}
	rowRes, rowLog := run(false)
	vecRes, vecLog := run(true)
	if !blaze.MetricsEqualDeterministic(rowRes.Metrics, vecRes.Metrics) {
		t.Errorf("metrics differ between row and vectorized streams\nrow: %+v\nvec: %+v",
			rowRes.Metrics, vecRes.Metrics)
	}
	re, ve := rowLog.Events(), vecLog.Events()
	if len(re) != len(ve) {
		t.Fatalf("event counts differ: row=%d vec=%d", len(re), len(ve))
	}
	for i := range re {
		if re[i] != ve[i] {
			t.Fatalf("event %d differs:\nrow: %+v\nvec: %+v", i, re[i], ve[i])
		}
	}
	if len(rowRes.Windows) != len(vecRes.Windows) {
		t.Fatalf("window counts differ: row=%d vec=%d", len(rowRes.Windows), len(vecRes.Windows))
	}
	for i := range rowRes.Windows {
		if !rowRes.Windows[i].EqualDeterministic(vecRes.Windows[i]) {
			t.Errorf("window %d stats differ:\nrow: %+v\nvec: %+v", i, rowRes.Windows[i], vecRes.Windows[i])
		}
	}
}
