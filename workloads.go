package blaze

import (
	"fmt"
	"sync"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
	"blaze/internal/graphx"
	"blaze/internal/mllib"
)

// WorkloadID names one of the six evaluation workloads (§7.1).
type WorkloadID string

// The evaluation workloads.
const (
	PR     WorkloadID = "pr"
	CC     WorkloadID = "cc"
	LR     WorkloadID = "lr"
	KMeans WorkloadID = "kmeans"
	GBT    WorkloadID = "gbt"
	SVDPP  WorkloadID = "svdpp"
)

// AllWorkloads lists the evaluation workloads in the paper's order.
func AllWorkloads() []WorkloadID {
	return []WorkloadID{PR, CC, LR, KMeans, GBT, SVDPP}
}

// WorkloadSpec bundles everything the harness needs to run one workload:
// the driver program with and without cache annotations, and the
// workload-specific serialization factor (§7.2: SVD++ serializes 2.5-6.4×
// slower than the others).
type WorkloadSpec struct {
	ID        WorkloadID
	Title     string
	SerFactor float64
	// MemFraction is the workload's default memory-store capacity as a
	// fraction of its calibrated peak cached bytes, positioning each
	// application in the paper's working-set : memory regime (§7.1: one
	// fixed 170 GB store versus per-application working sets of very
	// different sizes).
	MemFraction float64
	// Plain runs without annotations (Blaze and its ablations).
	Plain func(ctx *dataflow.Context, scale float64)
	// Annotated runs with the GraphX/MLlib cache()/unpersist() pattern.
	Annotated func(ctx *dataflow.Context, scale float64)
}

// workloadRegistry holds user-registered workload specs, resolvable by
// Workload and hence runnable through Run like the built-in six.
var (
	wlMu             sync.RWMutex
	workloadRegistry = map[WorkloadID]WorkloadSpec{}
)

// RegisterWorkload adds a user-defined workload spec under its ID,
// making it runnable via Run with RunConfig.Workload set to that ID.
// At least the Plain driver must be provided; a missing Annotated
// driver falls back to Plain (a workload with no cache annotations).
// Registering a built-in or duplicate ID is an error.
func RegisterWorkload(spec WorkloadSpec) error {
	if spec.ID == "" || spec.Plain == nil {
		return fmt.Errorf("blaze: RegisterWorkload requires an ID and a Plain driver")
	}
	if _, err := Workload(spec.ID); err == nil {
		return fmt.Errorf("blaze: workload %q already registered", spec.ID)
	}
	if spec.Annotated == nil {
		spec.Annotated = spec.Plain
	}
	wlMu.Lock()
	defer wlMu.Unlock()
	workloadRegistry[spec.ID] = spec
	return nil
}

// Workload returns the spec for an id, built-in or registered.
func Workload(id WorkloadID) (WorkloadSpec, error) {
	switch id {
	case PR:
		return prSpec(), nil
	case CC:
		return ccSpec(), nil
	case LR:
		return lrSpec(), nil
	case KMeans:
		return kmSpec(), nil
	case GBT:
		return gbtSpec(), nil
	case SVDPP:
		return svdSpec(), nil
	default:
		wlMu.RLock()
		spec, ok := workloadRegistry[id]
		wlMu.RUnlock()
		if ok {
			return spec, nil
		}
		return WorkloadSpec{}, fmt.Errorf("blaze: unknown workload %q", id)
	}
}

// Default workload parameters: laptop-scale stand-ins for the paper's
// 25M-vertex graphs and 30-106 GB datasets, with the same structural
// properties (power-law skew, iteration counts, reference patterns).
// Serialization factors: graph workloads carry pointer-heavy vertex
// structures that serialize slowly (the paper highlights per-workload
// serialization differences in §7.2); SVD++ is the extreme case at 3×.
func prConfig(annotate bool) graphx.PageRankConfig {
	return graphx.PageRankConfig{
		Graph:    datagen.GraphSpec{Seed: 1, Vertices: 3000, AvgDegree: 8},
		Parts:    32,
		Iters:    10,
		Annotate: annotate,
	}
}

func prSpec() WorkloadSpec {
	return WorkloadSpec{
		ID: PR, Title: "PageRank", SerFactor: 2.5, MemFraction: 0.25,
		Plain:     graphx.PageRankWorkload(prConfig(false)),
		Annotated: graphx.PageRankWorkload(prConfig(true)),
	}
}

func ccConfig(annotate bool) graphx.ConnectedComponentsConfig {
	return graphx.ConnectedComponentsConfig{
		Graph:    datagen.GraphSpec{Seed: 1, Vertices: 2500, AvgDegree: 3},
		Parts:    32,
		MaxIters: 12,
		Annotate: annotate,
	}
}

func ccSpec() WorkloadSpec {
	return WorkloadSpec{
		ID: CC, Title: "ConnectedComponents", SerFactor: 2.0, MemFraction: 0.3,
		Plain:     graphx.ConnectedComponentsWorkload(ccConfig(false)),
		Annotated: graphx.ConnectedComponentsWorkload(ccConfig(true)),
	}
}

func lrConfig(annotate bool) mllib.LogisticRegressionConfig {
	return mllib.LogisticRegressionConfig{
		Points:   datagen.PointsSpec{Seed: 2, N: 9000, Dim: 16, Noise: 0.05},
		Parts:    32,
		Iters:    10,
		Annotate: annotate,
	}
}

func lrSpec() WorkloadSpec {
	return WorkloadSpec{
		ID: LR, Title: "LogisticRegression", SerFactor: 1.0, MemFraction: 0.55,
		Plain:     mllib.LogisticRegressionWorkload(lrConfig(false)),
		Annotated: mllib.LogisticRegressionWorkload(lrConfig(true)),
	}
}

func kmConfig(annotate bool) mllib.KMeansConfig {
	return mllib.KMeansConfig{
		Data:     datagen.ClusterSpec{Seed: 3, N: 8000, Dim: 8, K: 8, Spread: 2.0},
		Parts:    32,
		MaxIters: 10,
		Epsilon:  -1, // fixed iteration budget, as HiBench KMeans runs
		Annotate: annotate,
	}
}

func kmSpec() WorkloadSpec {
	return WorkloadSpec{
		ID: KMeans, Title: "KMeans", SerFactor: 1.0, MemFraction: 0.93,
		Plain:     mllib.KMeansWorkload(kmConfig(false)),
		Annotated: mllib.KMeansWorkload(kmConfig(true)),
	}
}

func gbtConfig(annotate bool) mllib.GBTConfig {
	return mllib.GBTConfig{
		Points:   datagen.PointsSpec{Seed: 4, N: 5000, Dim: 10, Noise: 0.05},
		Parts:    32,
		Trees:    8,
		Depth:    3,
		Annotate: annotate,
	}
}

func gbtSpec() WorkloadSpec {
	return WorkloadSpec{
		ID: GBT, Title: "GradientBoostedTrees", SerFactor: 1.3, MemFraction: 0.7,
		Plain:     mllib.GBTWorkload(gbtConfig(false)),
		Annotated: mllib.GBTWorkload(gbtConfig(true)),
	}
}

func svdConfig(annotate bool) graphx.SVDPPConfig {
	return graphx.SVDPPConfig{
		Ratings:  datagen.RatingsSpec{Seed: 5, Users: 1500, Items: 300, ItemsPerUser: 12},
		Parts:    16,
		Rank:     8,
		Iters:    10,
		Annotate: annotate,
	}
}

func svdSpec() WorkloadSpec {
	return WorkloadSpec{
		ID: SVDPP, Title: "SVD++", SerFactor: 3.0, MemFraction: 0.3,
		Plain:     graphx.SVDPPWorkload(svdConfig(false)),
		Annotated: graphx.SVDPPWorkload(svdConfig(true)),
	}
}
