// Quickstart: run one iterative workload (PageRank) under Blaze's
// unified cost-aware caching and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"blaze"
)

func main() {
	// Run PageRank under the full Blaze system: automatic caching (no
	// cache() annotations anywhere), cost-aware eviction, and the ILP
	// decision layer, preceded by the dependency extraction phase.
	result, err := blaze.Run(blaze.RunConfig{
		System:   blaze.SysBlaze,
		Workload: blaze.PR,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := result.Metrics
	b := m.TotalBreakdown()
	fmt.Println("PageRank under Blaze")
	fmt.Printf("  application completion time: %v (incl. %v profiling)\n",
		m.ACT.Round(time.Microsecond), m.ProfilingTime)
	fmt.Printf("  cache hits: %d, evictions: %d, automatic unpersists: %d\n",
		m.CacheHits, m.Evictions, m.Unpersists)
	fmt.Printf("  cache data written to disk: %d bytes\n", m.DiskBytesWritten)
	fmt.Printf("  ILP solves: %d\n", m.ILPSolves)
	fmt.Printf("  accumulated task time: compute=%v shuffle=%v diskIO=%v\n",
		b.Compute.Round(time.Microsecond), b.Shuffle.Round(time.Microsecond), b.DiskIO.Round(time.Microsecond))

	// Compare against recomputation-based MEM_ONLY Spark on the same
	// workload and memory budget.
	baseline, err := blaze.Run(blaze.RunConfig{
		System:   blaze.SysSparkMem,
		Workload: blaze.PR,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMEM_ONLY Spark ACT: %v  →  Blaze speedup: %.2fx\n",
		baseline.Metrics.ACT.Round(time.Microsecond),
		baseline.Metrics.ACT.Seconds()/m.ACT.Seconds())
}
