// Shortest paths: write a NEW iterative algorithm against the public
// facade and run it under Blaze's automatic caching — the adoption path
// for custom workloads. No cache() annotation appears anywhere; Blaze
// discovers what to cache from the lineage it builds on the run. The
// program imports only the blaze package: the dataflow surface
// (Source/FlatMap/ReduceByKey/ZipDatasets), the workload registry and
// Run are the whole integration.
//
//	go run ./examples/shortestpaths
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"blaze"
)

// state carries each vertex's adjacency and current hop distance.
type state struct {
	Adj  []int64
	Dist float64
}

// SizeBytes lets the cache see realistic, skewed partition sizes.
func (s state) SizeBytes() int64 { return 48 + 8*int64(len(s.Adj)) }

const (
	numVertices = 2000
	avgDegree   = 4
	parts       = 16
	source      = int64(0)
	maxIters    = 30
)

// neighbors derives vertex v's adjacency deterministically: source
// partitions must regenerate identically when recomputed.
func neighbors(v, n int64) []int64 {
	h := uint64(v)*2654435761 + 99
	deg := 1 + int(h%(2*avgDegree-1)) // 1..2·avg-1, mean avgDegree
	out := make([]int64, 0, deg)
	for i := 0; i < deg; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		out = append(out, int64(h%uint64(n)))
	}
	return out
}

// sssp is the workload driver: single-source shortest paths by
// hop-count supersteps. Each superstep floods candidate distances along
// edges, takes the per-vertex minimum, and merges it into the graph.
// With unit weights a vertex's first assigned distance is final, so the
// loop stops when the reached count stops growing. The final distances
// are written into dists for cross-system verification.
func sssp(dists *map[int64]float64) func(ctx *blaze.Context, scale float64) {
	return func(ctx *blaze.Context, scale float64) {
		n := int64(float64(numVertices) * scale)
		if n < 64 {
			n = 64
		}
		verts := ctx.Source("graph@0", parts, func(part int) []blaze.Record {
			var out []blaze.Record
			for v := int64(0); v < n; v++ {
				if blaze.HashPartition(v, parts) == part {
					d := math.Inf(1)
					if v == source {
						d = 0
					}
					out = append(out, blaze.Record{Key: v, Value: state{Adj: neighbors(v, n), Dist: d}})
				}
			}
			return out
		})

		reached := 1
		for it := 1; it <= maxIters; it++ {
			msgs := verts.FlatMap(fmt.Sprintf("msgs@%d", it), func(r blaze.Record) []blaze.Record {
				st := r.Value.(state)
				if math.IsInf(st.Dist, 1) {
					return nil
				}
				out := make([]blaze.Record, len(st.Adj))
				for i, dst := range st.Adj {
					out[i] = blaze.Record{Key: dst, Value: st.Dist + 1}
				}
				return out
			})
			mins := msgs.ReduceByKey(fmt.Sprintf("mins@%d", it), parts, func(a, b any) any {
				if a.(float64) < b.(float64) {
					return a
				}
				return b
			})
			verts = blaze.ZipDatasets(fmt.Sprintf("graph@%d", it), blaze.OpMedium, verts, mins,
				func(part int, vs, ms []blaze.Record) []blaze.Record {
					best := make(map[int64]float64, len(ms))
					for _, m := range ms {
						best[m.Key] = m.Value.(float64)
					}
					out := make([]blaze.Record, len(vs))
					for i, r := range vs {
						st := r.Value.(state)
						if d, ok := best[r.Key]; ok && d < st.Dist {
							st = state{Adj: st.Adj, Dist: d}
						}
						out[i] = blaze.Record{Key: r.Key, Value: st}
					}
					return out
				})
			now := verts.Filter(fmt.Sprintf("reached@%d", it), func(r blaze.Record) bool {
				return !math.IsInf(r.Value.(state).Dist, 1)
			}).Count()
			if now == reached {
				break
			}
			reached = now
		}

		out := make(map[int64]float64, n)
		for _, part := range verts.Collect() {
			for _, r := range part {
				out[r.Key] = r.Value.(state).Dist
			}
		}
		*dists = out
	}
}

func main() {
	var dists map[int64]float64
	if err := blaze.RegisterWorkload(blaze.WorkloadSpec{
		ID:        "sssp",
		Title:     "ShortestPaths",
		SerFactor: 2.0,
		Plain:     sssp(&dists),
	}); err != nil {
		log.Fatal(err)
	}

	run := func(sys blaze.SystemID) (map[int64]float64, time.Duration) {
		res, err := blaze.Run(blaze.RunConfig{
			System:            sys,
			Workload:          "sssp",
			Executors:         8,
			MemoryPerExecutor: 24 * 1024, // tight: the graph does not fit
			CostParams:        blaze.DefaultCostParams(),
		})
		if err != nil {
			log.Fatal(err)
		}
		return dists, res.ACT()
	}

	blazeDists, blazeACT := run(blaze.SysBlazeNoProfile)
	sparkDists, sparkACT := run(blaze.SysSparkMem)

	reached, maxDist := 0, 0.0
	for _, d := range blazeDists {
		if !math.IsInf(d, 1) {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	for v, d := range blazeDists {
		sd := sparkDists[v]
		if d != sd && !(math.IsInf(d, 1) && math.IsInf(sd, 1)) {
			log.Fatalf("systems disagree at vertex %d: %v vs %v", v, d, sd)
		}
	}

	fmt.Printf("single-source shortest paths over %d vertices\n", numVertices)
	fmt.Printf("  reachable vertices: %d, eccentricity: %.0f hops\n", reached, maxDist)
	fmt.Printf("  Blaze (auto-caching):      ACT = %v\n", blazeACT.Round(time.Microsecond))
	fmt.Printf("  Spark MEM_ONLY (no hints): ACT = %v\n", sparkACT.Round(time.Microsecond))
	fmt.Println("\nThe algorithm carries no caching annotations; under MEM_ONLY Spark")
	fmt.Println("nothing is cached at all, while Blaze auto-caches each superstep's")
	fmt.Println("graph generation and unpersists it when its references end.")
}
