// Shortest paths: write a NEW iterative algorithm on the Pregel
// abstraction and run it under Blaze's automatic caching — the adoption
// path for custom workloads. No cache() annotation appears anywhere;
// Blaze discovers what to cache from the lineage it builds on the run.
//
//	go run ./examples/shortestpaths
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"blaze/internal/core"
	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/datagen"
	"blaze/internal/engine"
	"blaze/internal/graphx"
)

// state carries each vertex's adjacency and current hop distance.
type state struct {
	Adj  []int64
	Dist float64
}

// SizeBytes lets the cache see realistic, skewed partition sizes.
func (s state) SizeBytes() int64 { return 48 + 8*int64(len(s.Adj)) }

func sssp(ctx *dataflow.Context, spec datagen.GraphSpec, parts int, source int64) map[int64]float64 {
	adj := ctx.Source("graph-adj@0", parts, func(part int) []dataflow.Record {
		var out []dataflow.Record
		for v := int64(0); v < int64(spec.Vertices); v++ {
			if dataflow.HashPartition(v, parts) == part {
				out = append(out, dataflow.Record{Key: v, Value: state{Adj: spec.Neighbors(v), Dist: math.Inf(1)}})
			}
		}
		return out
	})
	vertices := adj.Map("graph@0", func(r dataflow.Record) dataflow.Record {
		st := r.Value.(state)
		if r.Key == source {
			st.Dist = 0
		}
		return dataflow.Record{Key: r.Key, Value: st}
	})

	final := graphx.Pregel(ctx, graphx.PregelConfig{Name: "sssp", Parts: parts, MaxIters: 30}, vertices,
		func(vid int64, s any) []dataflow.Record {
			st := s.(state)
			if math.IsInf(st.Dist, 1) {
				return nil
			}
			out := make([]dataflow.Record, len(st.Adj))
			for i, dst := range st.Adj {
				out[i] = dataflow.Record{Key: dst, Value: st.Dist + 1}
			}
			return out
		},
		func(a, b any) any {
			if a.(float64) < b.(float64) {
				return a
			}
			return b
		},
		func(vid int64, s any, msg any, hasMsg bool) (any, bool) {
			st := s.(state)
			if hasMsg && msg.(float64) < st.Dist {
				return state{Adj: st.Adj, Dist: msg.(float64)}, true
			}
			return st, false
		})

	dists := make(map[int64]float64, len(final))
	for vid, s := range final {
		dists[vid] = s.(state).Dist
	}
	return dists
}

func main() {
	spec := datagen.GraphSpec{Seed: 99, Vertices: 2000, AvgDegree: 4}
	const parts = 16

	run := func(ctl engine.Controller) (map[int64]float64, time.Duration) {
		ctx := dataflow.NewContext()
		cluster, err := engine.NewCluster(engine.Config{
			Executors:         8,
			MemoryPerExecutor: 24 * 1024, // tight: the graph does not fit
			Params:            costmodel.Default(),
			Controller:        ctl,
		}, ctx)
		if err != nil {
			log.Fatal(err)
		}
		dists := sssp(ctx, spec, parts, 0)
		return dists, cluster.Finish().ACT
	}

	blazeDists, blazeACT := run(core.NewBlaze())
	sparkDists, sparkACT := run(engine.NewSparkMemOnly())

	reached, maxDist := 0, 0.0
	for _, d := range blazeDists {
		if !math.IsInf(d, 1) {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	for v, d := range blazeDists {
		sd := sparkDists[v]
		if d != sd && !(math.IsInf(d, 1) && math.IsInf(sd, 1)) {
			log.Fatalf("systems disagree at vertex %d: %v vs %v", v, d, sd)
		}
	}

	fmt.Printf("single-source shortest paths over %d vertices\n", spec.Vertices)
	fmt.Printf("  reachable vertices: %d, eccentricity: %.0f hops\n", reached, maxDist)
	fmt.Printf("  Blaze (auto-caching):     ACT = %v\n", blazeACT.Round(time.Microsecond))
	fmt.Printf("  Spark MEM_ONLY (no hints): ACT = %v\n", sparkACT.Round(time.Microsecond))
	fmt.Println("\nThe algorithm carries no caching annotations; under MEM_ONLY Spark")
	fmt.Println("nothing is cached at all, while Blaze auto-caches each superstep's")
	fmt.Println("graph generation and unpersists it when its references end.")
}
