// Custom policy: plug a user-defined eviction policy into the engine and
// run a hand-built iterative dataflow program on it — the extension
// point the paper's §6 sketches for reproducing Blaze in other systems.
//
// The example implements a size-aware "largest-first" policy (evict the
// biggest block first, a classic cache heuristic the paper's baselines
// lack), registers it and a custom workload on the public facade, and
// compares it with LRU on a word-count-style iterative job. Nothing
// here imports blaze/internal: RegisterPolicy, RegisterWorkload and Run
// are the whole integration surface.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"blaze"
)

// largestFirst evicts the biggest resident block first, freeing the most
// space with the fewest eviction decisions.
type largestFirst struct{}

func (largestFirst) Name() string { return "largest-first" }

func (largestFirst) Order(blocks []*blaze.BlockMeta) []*blaze.BlockMeta {
	out := append([]*blaze.BlockMeta(nil), blocks...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Size > out[j].Size })
	return out
}

// workload builds a small iterative aggregation: repeatedly re-keys and
// re-aggregates a skewed dataset, caching each round's result. It has
// the WorkloadSpec driver signature, so it registers directly.
func workload(ctx *blaze.Context, scale float64) {
	const parts = 8
	n := int(400 * scale)
	if n < 8 {
		n = 8
	}
	data := ctx.Source("events@0", parts, func(part int) []blaze.Record {
		out := make([]blaze.Record, n)
		for i := range out {
			key := int64(part*n + i)
			out[i] = blaze.Record{Key: key % 97, Value: float64(1)}
		}
		return out
	})
	counts := data
	for it := 1; it <= 6; it++ {
		counts = counts.ReduceByKey(fmt.Sprintf("counts@%d", it), parts, func(a, b any) any {
			return a.(float64) + b.(float64)
		}).Map(fmt.Sprintf("scaled@%d", it), func(r blaze.Record) blaze.Record {
			return blaze.Record{Key: r.Key % 31, Value: r.Value.(float64) * 1.01}
		})
		counts.Cache()
		counts.Count()
	}
}

func run(system blaze.SystemID) time.Duration {
	res, err := blaze.Run(blaze.RunConfig{
		System:            system,
		Workload:          "custom-agg",
		Executors:         4,
		MemoryPerExecutor: 8 * 1024,
		CostParams:        blaze.DefaultCostParams(),
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.ACT()
}

func main() {
	if err := blaze.RegisterPolicy("largest-first", func() blaze.EvictionPolicy { return largestFirst{} }); err != nil {
		log.Fatal(err)
	}
	if err := blaze.RegisterWorkload(blaze.WorkloadSpec{
		ID:        "custom-agg",
		Title:     "IterativeAggregation",
		SerFactor: 1.0,
		Plain:     workload,
		Annotated: workload, // the driver carries its own Cache() calls
	}); err != nil {
		log.Fatal(err)
	}

	lru := run(blaze.PolicySystem("lru"))
	custom := run(blaze.PolicySystem("largest-first"))
	fmt.Printf("LRU eviction:           ACT = %v\n", lru.Round(time.Microsecond))
	fmt.Printf("largest-first eviction: ACT = %v\n", custom.Round(time.Microsecond))
	fmt.Println("\nAny type implementing blaze.EvictionPolicy (an ordering over block")
	fmt.Println("metadata) can drive the engine's eviction decisions once registered")
	fmt.Println("with blaze.RegisterPolicy; the Blaze controller replaces the policy")
	fmt.Println("with its unified cost-based decision layer.")
}
