// Custom policy: plug a user-defined eviction policy into the engine and
// run a hand-built iterative dataflow program on it — the extension
// point the paper's §6 sketches for reproducing Blaze in other systems.
//
// The example implements a size-aware "largest-first" policy (evict the
// biggest block first, a classic cache heuristic the paper's baselines
// lack) and compares it with LRU on a word-count-style iterative job.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"blaze/internal/cachepolicy"
	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/storage"
)

// largestFirst evicts the biggest resident block first, freeing the most
// space with the fewest eviction decisions.
type largestFirst struct{}

func (largestFirst) Name() string { return "largest-first" }

func (largestFirst) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	out := append([]*storage.BlockMeta(nil), blocks...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Size > out[j].Size })
	return out
}

// workload builds a small iterative aggregation: repeatedly re-keys and
// re-aggregates a skewed dataset, caching each round's result.
func workload(ctx *dataflow.Context) {
	const parts = 8
	data := ctx.Source("events@0", parts, func(part int) []dataflow.Record {
		out := make([]dataflow.Record, 400)
		for i := range out {
			key := int64(part*400 + i)
			out[i] = dataflow.Record{Key: key % 97, Value: float64(1)}
		}
		return out
	})
	counts := data
	for it := 1; it <= 6; it++ {
		counts = counts.ReduceByKey(fmt.Sprintf("counts@%d", it), parts, func(a, b any) any {
			return a.(float64) + b.(float64)
		}).Map(fmt.Sprintf("scaled@%d", it), func(r dataflow.Record) dataflow.Record {
			return dataflow.Record{Key: r.Key % 31, Value: r.Value.(float64) * 1.01}
		})
		counts.Cache()
		counts.Count()
	}
}

func run(policy cachepolicy.Policy) time.Duration {
	ctx := dataflow.NewContext()
	cluster, err := engine.NewCluster(engine.Config{
		Executors:         4,
		MemoryPerExecutor: 8 * 1024,
		Params:            costmodel.Default(),
		Controller:        engine.NewAnnotation(policy.Name(), engine.MemDisk, policy, false),
	}, ctx)
	if err != nil {
		log.Fatal(err)
	}
	workload(ctx)
	return cluster.Finish().ACT
}

func main() {
	lru := run(cachepolicy.LRU{})
	custom := run(largestFirst{})
	fmt.Printf("LRU eviction:           ACT = %v\n", lru.Round(time.Microsecond))
	fmt.Printf("largest-first eviction: ACT = %v\n", custom.Round(time.Microsecond))
	fmt.Println("\nAny type implementing cachepolicy.Policy (an ordering over block")
	fmt.Println("metadata) can drive the engine's eviction decisions via")
	fmt.Println("engine.NewAnnotation; the Blaze controller replaces the policy with")
	fmt.Println("its unified cost-based decision layer.")
}
