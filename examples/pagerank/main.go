// PageRank system comparison: the paper's headline experiment (Fig. 9a)
// on one workload — every caching system side by side, with the
// disk-I/O-for-caching breakdown (Fig. 10a).
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"time"

	"blaze"
)

func main() {
	systems := []blaze.SystemID{
		blaze.SysSparkMem,
		blaze.SysSparkMemDisk,
		blaze.SysSparkAlluxio,
		blaze.SysLRC,
		blaze.SysMRD,
		blaze.SysAutoCache,
		blaze.SysCostAware,
		blaze.SysBlaze,
	}

	fmt.Printf("%-18s %12s %12s %12s %10s %12s\n",
		"system", "ACT", "diskIO", "recompute", "evictions", "disk bytes")
	var blazeACT, worstACT time.Duration
	for _, s := range systems {
		r, err := blaze.Run(blaze.RunConfig{System: s, Workload: blaze.PR})
		if err != nil {
			log.Fatal(err)
		}
		m := r.Metrics
		b := m.TotalBreakdown()
		fmt.Printf("%-18s %12v %12v %12v %10d %12d\n",
			s, m.ACT.Round(time.Millisecond), b.DiskIO.Round(time.Millisecond),
			b.Recompute.Round(time.Millisecond), m.Evictions, m.DiskBytesWritten)
		if s == blaze.SysBlaze {
			blazeACT = m.ACT
		}
		if m.ACT > worstACT {
			worstACT = m.ACT
		}
	}
	fmt.Printf("\nBlaze is %.2fx faster than the slowest system on PageRank.\n",
		worstACT.Seconds()/blazeACT.Seconds())
}
