// KMeans under memory pressure: sweep the memory-store capacity and
// watch how recomputation-based, checkpoint-based, and Blaze caching
// respond — the §4 trade-off ("to cache or not to cache, to evict or
// not to evict") made visible.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"time"

	"blaze"
)

func main() {
	fractions := []float64{0.3, 0.5, 0.7, 0.9}
	systems := []blaze.SystemID{blaze.SysSparkMem, blaze.SysSparkMemDisk, blaze.SysBlaze}

	fmt.Printf("%-10s", "memory")
	for _, s := range systems {
		fmt.Printf("%16s", s)
	}
	fmt.Println("   (ACT; lower is better)")

	for _, f := range fractions {
		fmt.Printf("%-10s", fmt.Sprintf("%.0f%%", f*100))
		for _, s := range systems {
			r, err := blaze.Run(blaze.RunConfig{
				System:         s,
				Workload:       blaze.KMeans,
				MemoryFraction: f,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%16v", r.Metrics.ACT.Round(time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Println("\nmemory = fraction of the workload's peak cached bytes (calibrated).")
	fmt.Println("Blaze caches only partitions with future references and picks the")
	fmt.Println("cheaper of disk and recomputation per victim, so it degrades most")
	fmt.Println("gracefully as memory shrinks.")
}
