package blaze_test

import (
	"testing"

	"blaze"
)

func runRealOrVirtual(t *testing.T, sys blaze.SystemID, wl blaze.WorkloadID, real bool) (*blaze.Result, *blaze.EventLog) {
	t.Helper()
	log := blaze.NewEventLog()
	res, err := blaze.Run(blaze.RunConfig{
		System:    sys,
		Workload:  wl,
		Executors: 4,
		Scale:     0.25,
		EventLog:  log,
		RealBytes: real,
	})
	if err != nil {
		t.Fatalf("%s/%s realBytes=%v: %v", sys, wl, real, err)
	}
	return res, log
}

// TestRealBytesBitIdentity is the storage tier's core guarantee: backing
// the stores with real serialized bytes and real block files changes
// only wall-clock time. For each system the RealBytes run must produce
// bit-identical virtual-time metrics AND an identical event log to the
// default (virtual) run — every admission, eviction, spill, promotion
// and recomputation decision must be unaffected by how blocks are held.
func TestRealBytesBitIdentity(t *testing.T) {
	systems := []blaze.SystemID{
		blaze.SysSparkMemDisk, blaze.SysSparkAlluxio, blaze.SysMRD, blaze.SysBlaze,
	}
	for _, sys := range systems {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			virtRes, virtLog := runRealOrVirtual(t, sys, blaze.PR, false)
			realRes, realLog := runRealOrVirtual(t, sys, blaze.PR, true)
			assertIdentical(t, string(sys), virtRes, realRes, virtLog, realLog)
			if virtRes.Storage != nil {
				t.Error("virtual run must not report storage measurements")
			}
			if realRes.Storage == nil {
				t.Error("RealBytes run must report storage measurements")
			}
		})
	}
}

// TestRealBytesMeasuresWork forces memory pressure so the run spills,
// reloads and promotes through the real storage tier, and checks the
// measurements: real encoded bytes moved, real files written, wall-clock
// time observed, and the modeled virtual time recorded next to it.
func TestRealBytesMeasuresWork(t *testing.T) {
	res, err := blaze.Run(blaze.RunConfig{
		System:            blaze.SysSparkMemDisk,
		Workload:          blaze.PR,
		Executors:         4,
		Scale:             0.25,
		MemoryPerExecutor: 16 * 1024, // force spills
		RealBytes:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if written, _ := res.DiskFootprint(); written == 0 {
		t.Fatal("run did not spill; tighten MemoryPerExecutor")
	}
	st := res.Storage
	if st == nil {
		t.Fatal("no storage measurements")
	}
	if st.MemEncode.Ops == 0 || st.MemEncode.Bytes == 0 {
		t.Errorf("no memory-store encodes measured: %+v", st.MemEncode)
	}
	// Every memory hit is served either by a real decode or by the
	// decode cache (under this tight capacity most reads are disk
	// reloads, so hits may be zero — the inequality still must hold).
	memHits, _, _ := res.CacheActivity()
	if st.MemDecode.Ops+st.DecodeCacheHits < memHits {
		t.Errorf("memory hits unaccounted: hits=%d decodes=%d cacheHits=%d",
			memHits, st.MemDecode.Ops, st.DecodeCacheHits)
	}
	if st.DiskWrite.Ops == 0 || st.DiskWrite.Bytes == 0 || st.DiskWrite.Wall <= 0 {
		t.Errorf("no disk writes measured: %+v", st.DiskWrite)
	}
	if st.DiskWrite.Modeled <= 0 {
		t.Errorf("disk writes have no modeled counterpart: %+v", st.DiskWrite)
	}
	if st.DiskRead.Ops == 0 || st.DiskRead.Modeled <= 0 {
		t.Errorf("no disk reads measured/modeled: %+v", st.DiskRead)
	}
	if st.FilesWritten == 0 || st.FileBytesPeak == 0 {
		t.Errorf("no block files written: files=%d peakBytes=%d", st.FilesWritten, st.FileBytesPeak)
	}
}

// TestRealBytesAlluxioDecodesEveryRead checks the AlluxioMode contract
// in real bytes: the decode cache is disabled, so every memory hit pays
// a real deserialization, mirroring the per-read charge the cost model
// makes for the external tiered store.
func TestRealBytesAlluxioDecodesEveryRead(t *testing.T) {
	res, err := blaze.Run(blaze.RunConfig{
		System:    blaze.SysSparkAlluxio,
		Workload:  blaze.PR,
		Executors: 4,
		Scale:     0.25,
		RealBytes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Storage
	if st == nil {
		t.Fatal("no storage measurements")
	}
	if st.DecodeCacheHits != 0 {
		t.Errorf("AlluxioMode must not serve decode-cache hits, got %d", st.DecodeCacheHits)
	}
	memHits, _, _ := res.CacheActivity()
	if memHits == 0 {
		t.Fatal("run produced no memory hits; nothing was exercised")
	}
	if st.MemDecode.Ops < memHits {
		t.Errorf("every memory hit must decode: hits=%d decodes=%d", memHits, st.MemDecode.Ops)
	}
	if st.MemDecode.Modeled <= 0 || st.MemEncode.Modeled <= 0 {
		t.Errorf("AlluxioMode charges must be recorded as modeled: %+v / %+v", st.MemDecode, st.MemEncode)
	}
}
