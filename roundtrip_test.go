package blaze_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"blaze"
)

// TestResilienceStringRoundTrip property-tests that ParseResilience
// inverts Resilience.String for any field combination: knob surfaces
// (CLI flags, HTTP payloads) can render a config and get the same
// config back.
func TestResilienceStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() blaze.Resilience {
		var r blaze.Resilience
		if rng.Intn(2) == 0 {
			r.MaxTaskRetries = rng.Intn(7) - 1 // -1 (disabled) .. 5
		}
		if rng.Intn(2) == 0 {
			r.MaxFetchRetries = rng.Intn(5) - 1
		}
		if rng.Intn(2) == 0 {
			r.RetryBackoff = time.Duration(1+rng.Intn(5000)) * time.Microsecond
		}
		if rng.Intn(2) == 0 {
			r.SpeculativeMultiple = 1 + float64(rng.Intn(40))/10
		}
		if rng.Intn(2) == 0 {
			r.BlacklistAfter = 1 + rng.Intn(5)
		}
		if rng.Intn(2) == 0 {
			r.BlacklistCooldown = 1 + rng.Intn(5)
		}
		return r
	}
	for i := 0; i < 500; i++ {
		want := gen()
		s := want.String()
		got, err := blaze.ParseResilience(s)
		if err != nil {
			t.Fatalf("ParseResilience(%q) (from %+v): %v", s, want, err)
		}
		if got != want {
			t.Fatalf("round trip: %+v -> %q -> %+v", want, s, got)
		}
	}
	// The zero value renders empty and parses back to the zero value.
	var zero blaze.Resilience
	if s := zero.String(); s != "" {
		t.Fatalf("zero Resilience renders %q, want empty", s)
	}
	if got, err := blaze.ParseResilience(""); err != nil || got != zero {
		t.Fatalf("ParseResilience(\"\") = %+v, %v", got, err)
	}
}

// TestFaultClassesStringRoundTrip property-tests that ParseFaultClasses
// inverts FormatFaultClasses for any duplicate-free class list in any
// order.
func TestFaultClassesStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	all := blaze.AllFaultClasses()
	for i := 0; i < 500; i++ {
		perm := rng.Perm(len(all))
		n := rng.Intn(len(all) + 1)
		var classes []blaze.FaultClass
		for _, j := range perm[:n] {
			classes = append(classes, all[j])
		}
		s := blaze.FormatFaultClasses(classes)
		got, err := blaze.ParseFaultClasses(s)
		if err != nil {
			t.Fatalf("ParseFaultClasses(%q): %v", s, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(classes) {
			t.Fatalf("round trip: %v -> %q -> %v", classes, s, got)
		}
	}
}

// TestFaultConfigString checks the schedule's rendering: the classes
// field round-trips through ParseFaultClasses, zero fields are omitted
// and the zero config renders empty.
func TestFaultConfigString(t *testing.T) {
	var zero blaze.FaultConfig
	if s := zero.String(); s != "" {
		t.Fatalf("zero FaultConfig renders %q, want empty", s)
	}
	rng := rand.New(rand.NewSource(3))
	all := blaze.AllFaultClasses()
	for i := 0; i < 200; i++ {
		cfg := blaze.FaultConfig{
			Seed:    rng.Int63n(1000),
			Classes: []blaze.FaultClass{all[rng.Intn(len(all))]},
			Every:   rng.Intn(4),
		}
		if rng.Intn(2) == 0 {
			cfg.AtStageEnd = true
		}
		s := cfg.String()
		if !strings.Contains(s, fmt.Sprintf("seed=%d", cfg.Seed)) && cfg.Seed != 0 {
			t.Fatalf("String() = %q lacks seed", s)
		}
		// Extract the classes segment and parse it back.
		var classesField string
		for _, part := range strings.Split(s, ",") {
			if v, ok := strings.CutPrefix(part, "classes="); ok {
				classesField = v
			}
		}
		if classesField == "" {
			t.Fatalf("String() = %q lacks classes", s)
		}
		got, err := blaze.ParseFaultClasses(classesField)
		if err != nil {
			t.Fatalf("classes segment %q does not parse: %v", classesField, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(cfg.Classes) {
			t.Fatalf("classes round trip: %v -> %q -> %v", cfg.Classes, classesField, got)
		}
	}
}
