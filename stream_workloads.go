package blaze

// The streaming evaluation workloads: prebuilt per-window step drivers
// for Session, the micro-batch counterparts of the batch workload
// registry in workloads.go. Each spec's Open returns a step closure that
// owns the stream's carried state (rank vectors, centroids) and submits
// one window's DAG per call over a drifted input batch.

import (
	"fmt"
	"sync"

	"blaze/internal/datagen"
	"blaze/internal/graphx"
	"blaze/internal/mllib"
)

// StreamWorkloadID names a streaming evaluation workload.
type StreamWorkloadID string

// The streaming workloads.
const (
	// StreamPR is sliding-window PageRank: each window refines ranks
	// over a drifted edge set, initialized from the previous window's
	// rank vector.
	StreamPR StreamWorkloadID = "stream-pr"
	// StreamKMeans is streaming k-means: each window clusters a drifted
	// point batch starting from the previous window's centroids.
	StreamKMeans StreamWorkloadID = "stream-kmeans"
)

// AllStreamWorkloads lists the streaming workloads.
func AllStreamWorkloads() []StreamWorkloadID {
	return []StreamWorkloadID{StreamPR, StreamKMeans}
}

// StreamWorkloadSpec bundles one streaming workload: Open binds the
// stream (allocating its carried state) and returns the per-window step.
// Pass the step to Session.Submit once per window, in window order.
type StreamWorkloadSpec struct {
	ID        StreamWorkloadID
	Title     string
	SerFactor float64
	// Open returns the step function for one stream instance. scale
	// shrinks the per-window input batch; annotate applies the
	// cache()/unpersist() annotations for annotation-based systems.
	Open func(scale float64, annotate bool) func(ctx *Context, window int)
}

var (
	swlMu                  sync.RWMutex
	streamWorkloadRegistry = map[StreamWorkloadID]StreamWorkloadSpec{}
)

// RegisterStreamWorkload adds a user-defined streaming workload spec
// under its ID, resolvable via StreamWorkload like the built-ins.
func RegisterStreamWorkload(spec StreamWorkloadSpec) error {
	if spec.ID == "" || spec.Open == nil {
		return fmt.Errorf("blaze: RegisterStreamWorkload requires an ID and an Open function")
	}
	if _, err := StreamWorkload(spec.ID); err == nil {
		return fmt.Errorf("blaze: streaming workload %q already registered", spec.ID)
	}
	swlMu.Lock()
	defer swlMu.Unlock()
	streamWorkloadRegistry[spec.ID] = spec
	return nil
}

// StreamWorkload returns the spec for an id, built-in or registered.
func StreamWorkload(id StreamWorkloadID) (StreamWorkloadSpec, error) {
	switch id {
	case StreamPR:
		return sprSpec(), nil
	case StreamKMeans:
		return skmSpec(), nil
	default:
		swlMu.RLock()
		spec, ok := streamWorkloadRegistry[id]
		swlMu.RUnlock()
		if ok {
			return spec, nil
		}
		return StreamWorkloadSpec{}, fmt.Errorf("blaze: unknown streaming workload %q", id)
	}
}

func sprSpec() StreamWorkloadSpec {
	return StreamWorkloadSpec{
		ID: StreamPR, Title: "SlidingPageRank", SerFactor: 2.5,
		Open: func(scale float64, annotate bool) func(ctx *Context, window int) {
			cfg := graphx.PageRankStreamConfig{
				Graph:          datagen.GraphSpec{Seed: 11, Vertices: 2000, AvgDegree: 8},
				Parts:          32,
				ItersPerWindow: 3,
				Annotate:       annotate,
			}
			cfg.Graph.Vertices = scaledCount(cfg.Graph.Vertices, scale)
			step := graphx.PageRankStream(cfg)
			return func(ctx *Context, window int) { step(ctx, window) }
		},
	}
}

func skmSpec() StreamWorkloadSpec {
	return StreamWorkloadSpec{
		ID: StreamKMeans, Title: "StreamingKMeans", SerFactor: 1.0,
		Open: func(scale float64, annotate bool) func(ctx *Context, window int) {
			cfg := mllib.KMeansStreamConfig{
				Data:           datagen.ClusterSpec{Seed: 13, N: 6000, Dim: 8, K: 8, Spread: 2.0},
				Parts:          32,
				ItersPerWindow: 3,
				Annotate:       annotate,
			}
			cfg.Data.N = scaledCount(cfg.Data.N, scale)
			step := mllib.KMeansStream(cfg)
			return func(ctx *Context, window int) { step(ctx, window) }
		},
	}
}

// scaledCount shrinks n by the scale factor with a sane floor, matching
// the batch workloads' scaling rule.
func scaledCount(n int, scale float64) int {
	if scale == 0 || scale == 1 {
		return n
	}
	m := int(float64(n) * scale)
	if m < 16 {
		m = 16
	}
	if m > n {
		m = n
	}
	return m
}

// StreamConfig describes one complete streaming run: a SessionConfig
// plus the workload, window count and input scale. RunStream is to
// Session what Run is to the engine — the one-call evaluation harness
// entry.
type StreamConfig struct {
	// System, cluster shape and knobs, as in SessionConfig.
	System            SystemID
	Executors         int
	Cores             int
	Parallelism       int
	Vectorized        bool
	MemoryPerExecutor int64
	CostParams        CostParams
	DiskCapacity      int64
	ILPWindow         int
	EventLog          *EventLog
	ColdSolveVerify   bool
	// CheckpointDir, CrashWindow and RecoveryLog configure durability
	// and crash injection, as in SessionConfig. A run killed by
	// CrashWindow returns ErrSessionCrashed; ResumeStream with the same
	// config continues it from the checkpoint.
	CheckpointDir string
	CrashWindow   int
	RecoveryLog   *EventLog
	// Workload names the streaming workload; Windows is how many
	// micro-batch windows to run (default 4); Scale shrinks the
	// per-window input (default 1.0).
	Workload StreamWorkloadID
	Windows  int
	Scale    float64
}

// StreamResult is a streaming run's outcome: the sealed Result plus the
// per-window metric deltas and, for durable runs, the checkpoints this
// process committed.
type StreamResult struct {
	Result
	Windows     []WindowStats
	Checkpoints []CheckpointStat
}

// RunStream executes a streaming workload through a Session: Windows
// windows, each submitting the workload's step DAG, separated by
// NextWindow boundaries. The cost model defaults to
// EvalParams(spec.SerFactor), as Run does for batch workloads.
func RunStream(cfg StreamConfig) (*StreamResult, error) {
	return runStream(cfg, NewSession)
}

// ResumeStream continues a crashed durable streaming run from its
// newest checkpoint: it rebuilds the session with ResumeSession and
// re-runs the identical window loop from window 1 — pre-checkpoint
// windows replay without executing, and the stream goes live at the
// checkpointed boundary. The StreamResult is bit-identical (per
// WindowStats.EqualDeterministic and the event log) to a run that never
// crashed. cfg must match the crashed run's configuration.
func ResumeStream(cfg StreamConfig) (*StreamResult, error) {
	return runStream(cfg, ResumeSession)
}

// runStream is the shared harness loop: open resolves the session
// (fresh or resumed), then every window submits the workload step and
// advances. Resume re-running the same loop is what makes replay work —
// the driver program is identical, only the execution mode differs.
func runStream(cfg StreamConfig, open func(SessionConfig) (*Session, error)) (*StreamResult, error) {
	spec, err := StreamWorkload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	windows := cfg.Windows
	if windows == 0 {
		windows = 4
	}
	if windows < 1 {
		return nil, fmt.Errorf("blaze: StreamConfig.Windows must be >= 1, got %d", windows)
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1.0
	}
	params := cfg.CostParams
	if params.IsZero() {
		params = EvalParams(spec.SerFactor)
	}
	sess, err := open(SessionConfig{
		System:            cfg.System,
		Executors:         cfg.Executors,
		Cores:             cfg.Cores,
		Parallelism:       cfg.Parallelism,
		Vectorized:        cfg.Vectorized,
		MemoryPerExecutor: cfg.MemoryPerExecutor,
		CostParams:        params,
		DiskCapacity:      cfg.DiskCapacity,
		ILPWindow:         cfg.ILPWindow,
		EventLog:          cfg.EventLog,
		ColdSolveVerify:   cfg.ColdSolveVerify,
		CheckpointDir:     cfg.CheckpointDir,
		CrashWindow:       cfg.CrashWindow,
		RecoveryLog:       cfg.RecoveryLog,
	})
	if err != nil {
		return nil, err
	}
	step := spec.Open(scale, sess.annotated)
	for w := 1; w <= windows; w++ {
		w := w
		if err := sess.Submit(func(ctx *Context) { step(ctx, w) }); err != nil {
			sess.Close()
			return nil, err
		}
		if w < windows {
			if _, err := sess.NextWindow(); err != nil {
				sess.Close()
				return nil, err
			}
		}
	}
	res, err := sess.Close()
	if err != nil {
		return nil, err
	}
	return &StreamResult{
		Result:      *res,
		Windows:     sess.WindowStats(),
		Checkpoints: sess.CheckpointStats(),
	}, nil
}
