package blaze_test

// End-to-end multi-tenant scenario over the public Server API: three
// tenants share one executor pool and one cache, each submitting three
// applications concurrently (nine sessions — the acceptance floor is
// eight). Every session must complete, no tenant may ever exceed its
// memory quota, and the cluster-wide ILP arbitration must have run.

import (
	"context"
	"errors"
	"testing"

	"blaze"
)

func serverMemory(t *testing.T) int64 {
	t.Helper()
	res, err := blaze.Run(blaze.RunConfig{
		System: blaze.SysSparkMemDisk, Workload: blaze.PR,
		Executors: 4, Scale: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.MemoryPerExecutor
}

func TestServerMultiTenantScenario(t *testing.T) {
	mem := serverMemory(t)
	quota := int64(4) * mem / 2 // half the pool each: three tenants contend
	srv, err := blaze.NewServer(blaze.ServerConfig{
		Executors:         4,
		MemoryPerExecutor: mem,
		Arbitrate:         true,
		Tenants: []blaze.TenantConfig{
			{Name: "analytics", Weight: 2, MemoryQuota: quota},
			{Name: "ml", Weight: 1, MemoryQuota: quota},
			{Name: "recsys", Weight: 1, MemoryQuota: quota},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	workloads := map[string]blaze.WorkloadID{
		"analytics": blaze.PR,
		"ml":        blaze.KMeans,
		"recsys":    blaze.SVDPP,
	}
	var handles []*blaze.JobHandle
	for round := 0; round < 3; round++ {
		for tenant, w := range workloads {
			h, err := srv.Submit(context.Background(), blaze.JobSpec{
				Tenant:   tenant,
				System:   blaze.SysBlaze,
				Workload: w,
				Scale:    0.25,
			})
			if err != nil {
				t.Fatal(err)
			}
			if h.Tenant() != tenant {
				t.Fatalf("handle tenant = %q, want %q", h.Tenant(), tenant)
			}
			handles = append(handles, h)
		}
	}
	if len(handles) < 8 {
		t.Fatalf("scenario submits %d jobs, acceptance floor is 8", len(handles))
	}

	for _, h := range handles {
		res, err := h.Result()
		if err != nil {
			t.Fatalf("job %d (%s): %v", h.ID(), h.Tenant(), err)
		}
		if res.Metrics == nil || res.ACT() <= 0 {
			t.Fatalf("job %d: no metrics", h.ID())
		}
		if res.MemoryPerExecutor != mem {
			t.Fatalf("job %d: MemoryPerExecutor = %d, want the pool's %d", h.ID(), res.MemoryPerExecutor, mem)
		}
	}

	st := srv.Stats()
	if st.ActiveSessions != 0 || st.PendingSessions != 0 {
		t.Fatalf("sessions left over: %+v", st)
	}
	if st.Arbitrations == 0 {
		t.Fatal("nine concurrent Blaze sessions should have triggered cluster-wide arbitration")
	}
	for _, ts := range st.Tenants {
		if ts.Completed != 3 {
			t.Fatalf("tenant %s completed %d sessions, want 3", ts.Name, ts.Completed)
		}
		if ts.QuotaLimit != quota {
			t.Fatalf("tenant %s quota limit = %d, want %d", ts.Name, ts.QuotaLimit, quota)
		}
		if ts.QuotaPeak > ts.QuotaLimit {
			t.Fatalf("QUOTA VIOLATION: tenant %s peaked at %d bytes against a %d-byte quota", ts.Name, ts.QuotaPeak, ts.QuotaLimit)
		}
		if ts.TotalACT <= 0 {
			t.Fatalf("tenant %s has no aggregate ACT", ts.Name)
		}
	}
}

func TestServerContextCancellation(t *testing.T) {
	mem := serverMemory(t)
	srv, err := blaze.NewServer(blaze.ServerConfig{Executors: 2, MemoryPerExecutor: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first job boundary
	h, err := srv.Submit(ctx, blaze.JobSpec{
		System: blaze.SysSparkMemDisk, Workload: blaze.PR, Scale: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); !errors.Is(err, blaze.ErrCancelled) {
		t.Fatalf("Wait = %v, want ErrCancelled", err)
	}
	if _, err := h.Result(); !errors.Is(err, blaze.ErrCancelled) {
		t.Fatalf("Result err = %v, want ErrCancelled", err)
	}
}

func TestServerRejectsInvalidSubmissions(t *testing.T) {
	srv, err := blaze.NewServer(blaze.ServerConfig{Executors: 1, MemoryPerExecutor: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Submit(context.Background(), blaze.JobSpec{System: "nope", Workload: blaze.PR}); err == nil {
		t.Fatal("unknown system should be rejected at submission")
	}
	if _, err := srv.Submit(context.Background(), blaze.JobSpec{System: blaze.SysBlaze, Workload: "nope"}); err == nil {
		t.Fatal("unknown workload should be rejected at submission")
	}
	if _, err := blaze.NewServer(blaze.ServerConfig{Executors: 1}); err == nil {
		t.Fatal("a server without explicit memory should be rejected")
	}
}
