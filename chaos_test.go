package blaze_test

// Chaos soak: randomized mixed transient+permanent fault schedules with
// randomized resilience knobs, swept across every registered caching
// controller. Each schedule must terminate, produce the fault-free
// reference answers, keep retries within budget, and yield bit-identical
// metrics and event logs between Parallelism 1 and 8.
//
// Reproduce a nightly failure locally with the seed it logs:
//
//	BLAZE_CHAOS_SEED=<seed> BLAZE_CHAOS_N=<n> go test -race -run TestChaosSoak .

import (
	"os"
	"sort"
	"strconv"
	"testing"

	"blaze/internal/enginetest"
)

func chaosEnvInt64(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func TestChaosSoak(t *testing.T) {
	baseSeed := chaosEnvInt64("BLAZE_CHAOS_SEED", 1)
	n := int(chaosEnvInt64("BLAZE_CHAOS_N", 50))
	if testing.Short() {
		n = 10
	}

	ctls := recoveryControllers()
	names := make([]string, 0, len(ctls))
	for name := range ctls {
		names = append(names, name)
	}
	sort.Strings(names)

	refs := make(map[int64][]int64) // program seed -> fault-free reference
	var faults, retries, spec int
	for i := 0; i < n; i++ {
		s := enginetest.NewChaosSchedule(baseSeed + int64(i))
		name := names[i%len(names)]
		mk := ctls[name]

		ref, ok := refs[s.Program]
		if !ok {
			ref = enginetest.RefChecksums(s.Program)
			refs[s.Program] = ref
		}

		got1, m1, l1, err := enginetest.ChaosRun(s, mk(), 1)
		if err != nil {
			t.Fatalf("chaos seed %d (%s, P1): %v", s.Seed, name, err)
		}
		if err := enginetest.CheckChaosInvariants(s, ref, got1, m1); err != nil {
			t.Errorf("%s (P1): %v", name, err)
			continue
		}

		got8, m8, l8, err := enginetest.ChaosRun(s, mk(), 8)
		if err != nil {
			t.Fatalf("chaos seed %d (%s, P8): %v", s.Seed, name, err)
		}
		if err := enginetest.CheckChaosInvariants(s, ref, got8, m8); err != nil {
			t.Errorf("%s (P8): %v", name, err)
			continue
		}
		if err := enginetest.CheckChaosIdentity(s, m1, m8, l1, l8); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		faults += m1.FaultsInjected
		retries += m1.TaskRetries + m1.FetchRetries
		spec += m1.SpeculativeLaunches
	}
	// The soak must actually exercise the resilience machinery, not pass
	// vacuously on schedules that never fired.
	if faults == 0 || retries == 0 {
		t.Errorf("soak was vacuous: %d faults injected, %d retries across %d schedules", faults, retries, n)
	}
	if n >= 50 && spec == 0 {
		t.Errorf("soak never launched a speculative copy across %d schedules", n)
	}
}
