package blaze_test

// Chaos soak: randomized mixed transient+permanent fault schedules with
// randomized resilience knobs, swept across every registered caching
// controller. Each schedule must terminate, produce the fault-free
// reference answers, keep retries within budget, and yield bit-identical
// metrics and event logs between Parallelism 1 and 8.
//
// Reproduce a nightly failure locally with the seed it logs:
//
//	BLAZE_CHAOS_SEED=<seed> BLAZE_CHAOS_N=<n> go test -race -run TestChaosSoak .

import (
	"errors"
	"os"
	"sort"
	"strconv"
	"testing"

	"blaze"
	"blaze/internal/enginetest"
)

func chaosEnvInt64(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func TestChaosSoak(t *testing.T) {
	baseSeed := chaosEnvInt64("BLAZE_CHAOS_SEED", 1)
	n := int(chaosEnvInt64("BLAZE_CHAOS_N", 50))
	if testing.Short() {
		n = 10
	}

	ctls := recoveryControllers()
	names := make([]string, 0, len(ctls))
	for name := range ctls {
		names = append(names, name)
	}
	sort.Strings(names)

	refs := make(map[int64][]int64) // program seed -> fault-free reference
	var faults, retries, spec int
	for i := 0; i < n; i++ {
		s := enginetest.NewChaosSchedule(baseSeed + int64(i))
		name := names[i%len(names)]
		mk := ctls[name]

		ref, ok := refs[s.Program]
		if !ok {
			ref = enginetest.RefChecksums(s.Program)
			refs[s.Program] = ref
		}

		got1, m1, l1, err := enginetest.ChaosRun(s, mk(), 1)
		if err != nil {
			t.Fatalf("chaos seed %d (%s, P1): %v", s.Seed, name, err)
		}
		if err := enginetest.CheckChaosInvariants(s, ref, got1, m1); err != nil {
			t.Errorf("%s (P1): %v", name, err)
			continue
		}

		got8, m8, l8, err := enginetest.ChaosRun(s, mk(), 8)
		if err != nil {
			t.Fatalf("chaos seed %d (%s, P8): %v", s.Seed, name, err)
		}
		if err := enginetest.CheckChaosInvariants(s, ref, got8, m8); err != nil {
			t.Errorf("%s (P8): %v", name, err)
			continue
		}
		if err := enginetest.CheckChaosIdentity(s, m1, m8, l1, l8); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		faults += m1.FaultsInjected
		retries += m1.TaskRetries + m1.FetchRetries
		spec += m1.SpeculativeLaunches
	}
	// The soak must actually exercise the resilience machinery, not pass
	// vacuously on schedules that never fired.
	if faults == 0 || retries == 0 {
		t.Errorf("soak was vacuous: %d faults injected, %d retries across %d schedules", faults, retries, n)
	}
	if n >= 50 && spec == 0 {
		t.Errorf("soak never launched a speculative copy across %d schedules", n)
	}
}

// TestStreamChaosSoak is the streaming counterpart: seed-derived
// schedules that kill a durable streaming session at a randomized chain
// of window boundaries (crash, resume, crash again, ...) and finally
// resume it to completion. The fully recovered run must be bit-identical
// — metrics, event log, per-window stats — to an uninterrupted run of
// the same stream, at Parallelism 1 and 8 alike.
//
// Reproduce a failure with the seed it logs:
//
//	BLAZE_STREAM_CHAOS_SEED=<seed> BLAZE_STREAM_CHAOS_N=<n> go test -run TestStreamChaosSoak .
func TestStreamChaosSoak(t *testing.T) {
	baseSeed := chaosEnvInt64("BLAZE_STREAM_CHAOS_SEED", 1)
	n := int(chaosEnvInt64("BLAZE_STREAM_CHAOS_N", 6))
	if testing.Short() {
		n = 2
	}
	workloads := blaze.AllStreamWorkloads()

	var resumes int
	for i := 0; i < n; i++ {
		s := enginetest.NewStreamChaosSchedule(baseSeed + int64(i))
		wl := workloads[s.Workload%len(workloads)]
		cfg := func(par int, dir string, crashWindow int, log, recLog *blaze.EventLog) blaze.StreamConfig {
			return blaze.StreamConfig{
				Workload:          wl,
				Windows:           s.Windows,
				Scale:             0.25,
				Executors:         s.Executors,
				Parallelism:       par,
				MemoryPerExecutor: s.MemoryPerExecutor,
				EventLog:          log,
				CheckpointDir:     dir,
				CrashWindow:       crashWindow,
				RecoveryLog:       recLog,
			}
		}

		baseLog := blaze.NewEventLog()
		base, err := blaze.RunStream(cfg(1, "", 0, baseLog, nil))
		if err != nil {
			t.Fatalf("stream chaos seed %d: baseline: %v", s.Seed, err)
		}

		for _, par := range []int{1, 8} {
			dir := t.TempDir()
			// The crash chain: each boundary in the schedule kills the
			// stream, each kill is resumed with the next crash armed.
			crashLog := blaze.NewEventLog()
			_, err := blaze.RunStream(cfg(par, dir, s.CrashWindows[0], crashLog, nil))
			if !errors.Is(err, blaze.ErrSessionCrashed) {
				t.Fatalf("stream chaos seed %d (P%d): crash 1: err = %v, want ErrSessionCrashed", s.Seed, par, err)
			}
			for _, next := range s.CrashWindows[1:] {
				reLog := blaze.NewEventLog()
				_, err := blaze.ResumeStream(cfg(par, dir, next, reLog, nil))
				if !errors.Is(err, blaze.ErrSessionCrashed) {
					t.Fatalf("stream chaos seed %d (P%d): re-crash at %d: err = %v, want ErrSessionCrashed",
						s.Seed, par, next, err)
				}
				resumes++
			}
			finalLog := blaze.NewEventLog()
			recLog := blaze.NewEventLog()
			res, err := blaze.ResumeStream(cfg(par, dir, 0, finalLog, recLog))
			if err != nil {
				t.Fatalf("stream chaos seed %d (P%d): final resume: %v", s.Seed, par, err)
			}
			resumes++

			if !blaze.MetricsEqualDeterministic(base.Metrics, res.Metrics) {
				t.Errorf("stream chaos seed %d (P%d): metrics differ from uninterrupted run\nbase: %+v\ngot:  %+v",
					s.Seed, par, base.Metrics, res.Metrics)
				continue
			}
			be, fe := baseLog.Events(), finalLog.Events()
			if len(be) != len(fe) {
				t.Errorf("stream chaos seed %d (P%d): event counts differ: base=%d got=%d", s.Seed, par, len(be), len(fe))
				continue
			}
			for j := range be {
				if be[j] != fe[j] {
					t.Errorf("stream chaos seed %d (P%d): event %d differs:\nbase: %+v\ngot:  %+v",
						s.Seed, par, j, be[j], fe[j])
					break
				}
			}
			if len(res.Windows) != len(base.Windows) {
				t.Errorf("stream chaos seed %d (P%d): window counts differ: base=%d got=%d",
					s.Seed, par, len(base.Windows), len(res.Windows))
				continue
			}
			for j := range base.Windows {
				if !base.Windows[j].EqualDeterministic(res.Windows[j]) {
					t.Errorf("stream chaos seed %d (P%d): window %d stats differ:\nbase: %+v\ngot:  %+v",
						s.Seed, par, j+1, base.Windows[j], res.Windows[j])
				}
			}
			var resumed int
			for _, e := range recLog.Events() {
				if e.Kind == "session_resumed" {
					resumed++
				}
			}
			if resumed != 1 {
				t.Errorf("stream chaos seed %d (P%d): final recovery log holds %d session_resumed, want 1",
					s.Seed, par, resumed)
			}
		}
	}
	if resumes == 0 {
		t.Error("streaming soak was vacuous: no resumes ran")
	}
}
