// Package blaze is a from-scratch Go reproduction of "Blaze: Holistic
// Caching for Iterative Data Processing" (EuroSys 2024): an iterative
// dataflow engine with pluggable caching systems, the Blaze unified
// cost-aware decision layer, the baseline systems the paper compares
// against, and the six evaluation workloads.
//
// The package is the public facade: construct a RunConfig naming a
// system and a workload, call Run, and read the returned metrics. The
// cmd/blazebench tool and the root bench_test.go regenerate every figure
// of the paper's evaluation from this API.
package blaze

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"blaze/internal/cachepolicy"
	"blaze/internal/core"
	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/faults"
	"blaze/internal/metrics"
	"blaze/internal/server"
)

// SystemID names a caching system configuration (§7.1 "Systems").
type SystemID string

// The systems under comparison.
const (
	// SysSparkMem is recomputation-based MEM_ONLY Spark (LRU).
	SysSparkMem SystemID = "spark-mem"
	// SysSparkMemDisk is checkpoint-based MEM+DISK Spark (LRU, spill).
	SysSparkMemDisk SystemID = "spark-memdisk"
	// SysSparkAlluxio is Spark caching through an external tiered store.
	SysSparkAlluxio SystemID = "spark-alluxio"
	// SysLRC is MEM+DISK Spark with least-reference-count eviction.
	SysLRC SystemID = "lrc"
	// SysMRD is MEM+DISK Spark with most-reference-distance eviction and
	// prefetching.
	SysMRD SystemID = "mrd"
	// SysLRCMem and SysMRDMem are the memory-only variants (§7.4).
	SysLRCMem SystemID = "lrc-mem"
	SysMRDMem SystemID = "mrd-mem"
	// SysAutoCache is the +AutoCache ablation (§7.3).
	SysAutoCache SystemID = "autocache"
	// SysCostAware is the +CostAware ablation (§7.3).
	SysCostAware SystemID = "costaware"
	// SysBlaze is the full system.
	SysBlaze SystemID = "blaze"
	// SysBlazeMem is Blaze without disk support (§7.4).
	SysBlazeMem SystemID = "blaze-mem"
	// SysBlazeNoProfile is Blaze building its lineage on the run (§7.5).
	SysBlazeNoProfile SystemID = "blaze-noprofile"
)

// PolicySystem builds a system id running MEM+DISK Spark with an
// arbitrary registered eviction policy ("policy-lru", "policy-tinylfu",
// ...), used by the conventional-policy comparison §7.1 discusses.
func PolicySystem(policy string) SystemID { return SystemID("policy-" + policy) }

// Fig9Systems lists the systems of the end-to-end comparison, in the
// paper's plotting order.
func Fig9Systems() []SystemID {
	return []SystemID{SysSparkMem, SysSparkMemDisk, SysSparkAlluxio, SysLRC, SysMRD, SysBlaze}
}

// RunConfig describes one application run.
type RunConfig struct {
	System   SystemID
	Workload WorkloadID
	// Executors defaults to 8 (the scaled-down stand-in for the paper's
	// 20; partition counts are chosen accordingly).
	Executors int
	// Cores is the number of task slots per executor (default 1; the
	// paper's executors run 4). More cores overlap task latencies,
	// including recomputation cascades.
	Cores int
	// Parallelism is the number of OS worker goroutines the engine may
	// use to execute a stage's tasks concurrently. It changes only the
	// wall-clock time of a run: the virtual-time metrics and the event
	// log are bit-identical at every setting. 0 uses all available CPUs;
	// 1 forces the sequential scheduler.
	Parallelism int
	// MemoryPerExecutor fixes the memory-store capacity; when zero it is
	// calibrated as MemoryFraction × the workload's peak cached bytes
	// per executor, mirroring §7.1's empirical capacity determination.
	MemoryPerExecutor int64
	// MemoryFraction overrides the workload's default memory regime
	// (WorkloadSpec.MemFraction): the memory-store capacity as a
	// fraction of the calibrated peak cached bytes.
	MemoryFraction float64
	// Scale scales the input size (1.0 = the default workload size).
	Scale float64
	// ProfileScale is the sample fraction for Blaze's dependency
	// extraction phase (default 0.02, the analogue of <1 MB samples).
	ProfileScale float64
	// CostParams overrides the cost model by value; the zero value
	// (CostParams.IsZero) uses EvalParams with the workload's
	// serialization factor. Construct one with EvalParams or
	// DefaultCostParams and modify fields as needed.
	//
	// The deprecated pointer field Params (*costmodel.Params) has been
	// removed; assign the pointed-to value here instead — the by-value
	// field copies at Run time, so runs can never alias each other's
	// parameters.
	CostParams CostParams
	// DiskCapacity, when positive, adds the optional per-executor disk
	// capacity constraint to the Blaze ILP (Eq. 6 extension).
	DiskCapacity int64
	// EventLog, when non-nil, records structured execution events for
	// post-run auditing. Construct one with NewEventLog.
	EventLog *EventLog
	// Faults, when non-nil, attaches a deterministic, seed-driven fault
	// injector that destroys cached blocks, shuffle outputs (whole or a
	// single bucket) or entire executors at scheduling boundaries, and
	// fires transient task-granularity faults (task flakes, fetch
	// flakes, stragglers), exercising the recovery and resilience paths;
	// fault counts and per-job recovery time land in the returned
	// metrics. The config is validated before the run starts.
	Faults *FaultConfig
	// Resilience tunes how the scheduler absorbs transient failures
	// (task/fetch retries with backoff, speculative execution,
	// blacklisting). The zero value selects the defaults.
	Resilience Resilience
	// ILPWindow selects how many successor jobs Blaze's ILP objective
	// covers. The zero value (ILPWindowDefault) keeps the paper's
	// default of 1 successor (§5.5); ILPWindowCurrentJobOnly restricts
	// the objective to the current job; any positive value widens the
	// horizon to that many successors. Only meaningful for the Blaze
	// systems.
	//
	// This used to be a *int so that 0 was expressible; it is now a
	// plain int with exported sentinels. Code that called the
	// blaze.ILPWindow(n) pointer helper keeps compiling through the
	// deprecated shim of the same name, which now returns the
	// equivalent sentinel value.
	ILPWindow int
	// RealBytes backs the storage tier with real bytes: memory blocks
	// are gob-serialized buffers, disk blocks are files under a
	// run-scoped temp directory (removed when Run returns), and the run
	// measures its wall-clock (de)serialization and file I/O alongside
	// the virtual-time charges. The virtual-time metrics and event log
	// are bit-identical to a default-mode run; the measurements land in
	// Result.Storage for modeled-vs-measured comparison.
	RealBytes bool
	// Vectorized runs eligible stages on the engine's columnar task
	// loop: typed batches and pooled buffers instead of per-record
	// boxing, for real wall-clock throughput (see blazebench
	// -throughput). Like Parallelism, it changes only wall-clock time:
	// virtual-time metrics and the event log are bit-identical with the
	// flag on or off.
	Vectorized bool
}

// ILP window sentinels for RunConfig.ILPWindow and JobSpec.ILPWindow.
const (
	// ILPWindowDefault (the zero value) keeps the paper's default
	// horizon: the current job and one successor (§5.5).
	ILPWindowDefault = 0
	// ILPWindowCurrentJobOnly restricts the ILP objective to the
	// current job, with no successor lookahead.
	ILPWindowCurrentJobOnly = -1
)

// ILPWindow converts an explicit window size to the RunConfig.ILPWindow
// value, mapping 0 to ILPWindowCurrentJobOnly and negative values to
// ILPWindowDefault — the semantics the old pointer helper's callers
// relied on.
//
// Deprecated: assign the window directly (RunConfig.ILPWindow = n, or
// one of the sentinels). This shim exists for one release so code
// written against the former *int field keeps compiling.
func ILPWindow(jobs int) int {
	if jobs == 0 {
		return ILPWindowCurrentJobOnly
	}
	if jobs < 0 {
		return ILPWindowDefault
	}
	return jobs
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Executors == 0 {
		c.Executors = 8
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.ProfileScale == 0 {
		c.ProfileScale = 0.02
	}
	return c
}

// Validate checks the configuration without running it: cluster-shape
// knobs must be non-negative (zero selects the documented default),
// Scale and ProfileScale must land in their valid ranges once set, the
// system and workload ids must be known, and an explicit CostParams or
// Faults config must itself validate. Run and Server.Submit both call
// it after applying defaults; call it directly to fail fast on
// configurations built from external input (flags, HTTP payloads).
func (c RunConfig) Validate() error {
	if c.Executors < 0 {
		return fmt.Errorf("blaze: Executors must be >= 0 (0 means default 8), got %d", c.Executors)
	}
	if c.Cores < 0 {
		return fmt.Errorf("blaze: Cores must be >= 0 (0 means default 1), got %d", c.Cores)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("blaze: Parallelism must be >= 0 (0 means all CPUs), got %d", c.Parallelism)
	}
	if c.MemoryPerExecutor < 0 {
		return fmt.Errorf("blaze: MemoryPerExecutor must be >= 0 (0 means calibrated), got %d", c.MemoryPerExecutor)
	}
	if c.MemoryFraction < 0 {
		return fmt.Errorf("blaze: MemoryFraction must be >= 0 (0 means the workload default), got %g", c.MemoryFraction)
	}
	if c.Scale < 0 {
		return fmt.Errorf("blaze: Scale must be positive (0 means default 1.0), got %g", c.Scale)
	}
	if c.ProfileScale < 0 || c.ProfileScale > 1 {
		return fmt.Errorf("blaze: ProfileScale must be in (0, 1] (0 means default 0.02), got %g", c.ProfileScale)
	}
	if c.DiskCapacity < 0 {
		return fmt.Errorf("blaze: DiskCapacity must be >= 0 (0 means unconstrained), got %d", c.DiskCapacity)
	}
	if c.ILPWindow < ILPWindowCurrentJobOnly {
		return fmt.Errorf("blaze: ILPWindow must be >= %d (ILPWindowCurrentJobOnly), got %d", ILPWindowCurrentJobOnly, c.ILPWindow)
	}
	if err := validateSystem(c.System); err != nil {
		return err
	}
	if _, err := Workload(c.Workload); err != nil {
		return err
	}
	if !c.CostParams.IsZero() {
		if err := c.CostParams.Validate(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// validateSystem checks a system id without building its controller
// (buildSystem profiles the workload for the Blaze systems, which
// Validate must not do). The case list mirrors buildSystem exactly.
func validateSystem(sys SystemID) error {
	switch sys {
	case SysSparkMem, SysSparkMemDisk, SysSparkAlluxio, SysLRC, SysMRD,
		SysLRCMem, SysMRDMem, SysAutoCache, SysCostAware,
		SysBlaze, SysBlazeMem, SysBlazeNoProfile:
		return nil
	default:
		if name, ok := strings.CutPrefix(string(sys), "policy-"); ok {
			if _, found := cachepolicy.ByName(name); !found {
				return fmt.Errorf("blaze: unknown eviction policy %q", name)
			}
			return nil
		}
		return fmt.Errorf("blaze: unknown system %q", sys)
	}
}

// Result is the outcome of a run.
type Result struct {
	System            SystemID
	Workload          WorkloadID
	Metrics           *metrics.App
	MemoryPerExecutor int64
	// Storage holds the measured storage work of a RealBytes run —
	// wall-clock (de)serialization and file I/O per category, next to
	// the virtual time the cost model charged for the same operations.
	// Nil unless RunConfig.RealBytes was set.
	Storage *StorageMeasurement
}

// EvalParams returns the cost model used by the evaluation harness. The
// device throughputs are scaled down together with the dataset sizes
// (the inputs here are ~10⁴× smaller than the paper's 30-106 GB), which
// preserves the disk-time : compute-time ratios the paper reports — the
// quantity every figure depends on.
func EvalParams(serFactor float64) costmodel.Params {
	p := costmodel.Default()
	p.DiskReadBps = 16 * 1024 * 1024
	p.DiskWriteBps = 6 * 1024 * 1024
	p.SerializeBps = 24 * 1024 * 1024
	p.NetworkBps = 256 * 1024 * 1024
	p.SerFactor = serFactor
	// Source partitions model scanning and parsing input from external
	// storage (the paper's inputs are 30-106 GB of HDFS/S3 data), which
	// is what makes recomputation chains that reach back to the sources
	// expensive.
	p.RecordCost[costmodel.OpSource] = 400 * time.Nanosecond
	p.SourceBps = 5 * 1024 * 1024
	// Task launch overhead, scaled with the virtual-time regime.
	p.TaskOverhead = 500 * time.Microsecond
	return p
}

// calibration caches the measured peak cached bytes per executor for a
// workload configuration so repeated runs (benchmarks sweep many systems
// over the same workload) calibrate once.
var (
	calMu    sync.Mutex
	calCache = map[string]int64{}
)

// calibrateMemory measures the per-executor peak cached bytes of the
// annotated workload under unconstrained memory. The cache key covers
// every input that can change the measured peak — workload, cluster
// shape (executors AND cores) and the full cost-model parameters — so
// two runs differing only in, say, serialization factor or core count
// cannot alias to the same calibration. Params.RecordCost is a map, but
// fmt sorts map keys, so the fingerprint is deterministic.
func calibrateMemory(spec WorkloadSpec, execs, cores int, scale float64, params costmodel.Params) (int64, error) {
	key := fmt.Sprintf("%s/%d/%d/%g/%+v", spec.ID, execs, cores, scale, params)
	calMu.Lock()
	if v, ok := calCache[key]; ok {
		calMu.Unlock()
		return v, nil
	}
	calMu.Unlock()

	ctx := dataflow.NewContext()
	c, err := engine.NewCluster(engine.Config{
		Executors:         execs,
		CoresPerExecutor:  cores,
		MemoryPerExecutor: 1 << 40,
		Params:            params,
		Controller:        engine.NewSparkMemDisk(),
	}, ctx)
	if err != nil {
		return 0, err
	}
	spec.Annotated(ctx, scale)
	c.Finish()
	var peak int64
	for _, ex := range c.Executors() {
		if p := ex.Mem.PeakUsed(); p > peak {
			peak = p
		}
	}
	if peak < 4096 {
		peak = 4096
	}
	calMu.Lock()
	calCache[key] = peak
	calMu.Unlock()
	return peak, nil
}

// Run executes one workload under one system and returns its metrics.
//
// Run is a thin one-application session over the job server: it creates
// a private single-tenant Server sized exactly like the requested
// cluster, submits the workload as its only session and waits for it.
// With one session the server layer adds nothing observable — no
// quotas, no arbitration, dataset ids starting at 0 — so the metrics
// and event log are bit-identical to the pre-server standalone engine
// (the direct path, kept for RealBytes runs, which are incompatible
// with a shared pool).
func Run(cfg RunConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := Workload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	params := EvalParams(spec.SerFactor)
	if !cfg.CostParams.IsZero() {
		params = cfg.CostParams
	}

	mem := cfg.MemoryPerExecutor
	if mem == 0 {
		peak, err := calibrateMemory(spec, cfg.Executors, cfg.Cores, cfg.Scale, params)
		if err != nil {
			return nil, err
		}
		frac := cfg.MemoryFraction
		if frac == 0 {
			frac = spec.MemFraction
		}
		if frac == 0 {
			frac = 0.5
		}
		mem = int64(float64(peak) * frac)
		if mem < 2048 {
			mem = 2048
		}
	}

	sys, err := buildSystem(cfg, spec)
	if err != nil {
		return nil, err
	}
	var hook engine.Hook
	if cfg.Faults != nil {
		hook = faults.New(*cfg.Faults)
	}

	if cfg.RealBytes {
		return runDirect(cfg, spec, params, mem, sys, hook)
	}

	srv, err := server.New(server.Config{
		Executors:         cfg.Executors,
		CoresPerExecutor:  cfg.Cores,
		MemoryPerExecutor: mem,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	var profiling time.Duration
	if sys.profiled {
		profiling = core.DefaultProfilingOverhead
	}
	sess, err := srv.Submit(server.JobSpec{
		Driver: func(ctx *dataflow.Context) {
			if sys.annotated {
				spec.Annotated(ctx, cfg.Scale)
			} else {
				spec.Plain(ctx, cfg.Scale)
			}
		},
		Controller:        sys.ctl,
		Params:            params,
		AlluxioMode:       sys.alluxio,
		ProfilingOverhead: profiling,
		EventLog:          cfg.EventLog,
		Hook:              hook,
		Resilience:        cfg.Resilience,
		Parallelism:       cfg.Parallelism,
		Vectorized:        cfg.Vectorized,
	})
	if err != nil {
		return nil, err
	}
	if err := sess.Wait(); err != nil {
		return nil, err
	}
	return &Result{System: cfg.System, Workload: cfg.Workload, Metrics: sess.Metrics(), MemoryPerExecutor: mem}, nil
}

// runDirect executes the run on a private standalone cluster — the
// pre-server execution path, retained because RealBytes storage is
// incompatible with a shared pool (block files and decode caches are
// scoped to one run). The server path reproduces this path's metrics
// and event log bit-identically; TestServerRunBitIdentical holds the
// two together.
func runDirect(cfg RunConfig, spec WorkloadSpec, params costmodel.Params, mem int64, sys systemSpec, hook engine.Hook) (*Result, error) {
	ctx := dataflow.NewContext()
	cluster, err := engine.NewCluster(engine.Config{
		Executors:         cfg.Executors,
		CoresPerExecutor:  cfg.Cores,
		Parallelism:       cfg.Parallelism,
		MemoryPerExecutor: mem,
		Params:            params,
		Controller:        sys.ctl,
		AlluxioMode:       sys.alluxio,
		EventLog:          cfg.EventLog,
		Hook:              hook,
		Resilience:        cfg.Resilience,
		RealBytes:         cfg.RealBytes,
		Vectorized:        cfg.Vectorized,
	}, ctx)
	if err != nil {
		return nil, err
	}
	// Remove the run-scoped block-file directory even when the workload
	// panics (RealBytes runs only; Close is a no-op otherwise).
	defer cluster.Close()
	if sys.profiled {
		cluster.AddProfilingTime(core.DefaultProfilingOverhead)
	}

	if sys.annotated {
		spec.Annotated(ctx, cfg.Scale)
	} else {
		spec.Plain(ctx, cfg.Scale)
	}
	m := cluster.Finish()
	res := &Result{System: cfg.System, Workload: cfg.Workload, Metrics: m, MemoryPerExecutor: mem}
	if meter := cluster.Meter(); meter != nil {
		snap := StorageMeasurement(meter.Snapshot())
		res.Storage = &snap
	}
	return res, nil
}

// systemSpec is the execution recipe buildSystem derives from a system
// id: the controller plus the run-mode switches it requires.
type systemSpec struct {
	// ctl makes the caching decisions.
	ctl engine.Controller
	// annotated runs the workload with user cache annotations (the
	// Spark-style systems); Blaze derives decisions from its profile.
	annotated bool
	// alluxio models caching through an external tiered store.
	alluxio bool
	// profiled charges the dependency-extraction phase into the ACT.
	profiled bool
}

// buildSystem constructs the execution recipe for a system id.
func buildSystem(cfg RunConfig, spec WorkloadSpec) (systemSpec, error) {
	profileSkeleton := func() *core.Skeleton {
		return core.Profile(core.Workload(spec.Plain), cfg.ProfileScale)
	}
	switch cfg.System {
	case SysSparkMem:
		return systemSpec{ctl: engine.NewSparkMemOnly(), annotated: true}, nil
	case SysSparkMemDisk:
		return systemSpec{ctl: engine.NewSparkMemDisk(), annotated: true}, nil
	case SysSparkAlluxio:
		return systemSpec{ctl: engine.NewAlluxio(), annotated: true, alluxio: true}, nil
	case SysLRC:
		return systemSpec{ctl: engine.NewLRC(engine.MemDisk), annotated: true}, nil
	case SysMRD:
		return systemSpec{ctl: engine.NewMRD(engine.MemDisk), annotated: true}, nil
	case SysLRCMem:
		return systemSpec{ctl: engine.NewLRC(engine.MemOnly), annotated: true}, nil
	case SysMRDMem:
		return systemSpec{ctl: engine.NewMRD(engine.MemOnly), annotated: true}, nil
	case SysAutoCache:
		return systemSpec{ctl: core.NewAutoCache().WithSkeleton(profileSkeleton()), profiled: true}, nil
	case SysCostAware:
		return systemSpec{ctl: core.NewCostAware().WithSkeleton(profileSkeleton()), profiled: true}, nil
	case SysBlaze:
		b := core.NewBlaze().WithSkeleton(profileSkeleton())
		if cfg.DiskCapacity > 0 {
			b.WithDiskCapacity(cfg.DiskCapacity)
		}
		switch {
		case cfg.ILPWindow > 0:
			b.WithWindow(cfg.ILPWindow)
		case cfg.ILPWindow == ILPWindowCurrentJobOnly:
			b.WithWindow(0)
		}
		return systemSpec{ctl: b, profiled: true}, nil
	case SysBlazeMem:
		return systemSpec{ctl: core.NewBlazeMemOnly().WithSkeleton(profileSkeleton()), profiled: true}, nil
	case SysBlazeNoProfile:
		return systemSpec{ctl: core.NewBlaze()}, nil
	default:
		if name, ok := strings.CutPrefix(string(cfg.System), "policy-"); ok {
			p, found := cachepolicy.ByName(name)
			if !found {
				return systemSpec{}, fmt.Errorf("blaze: unknown eviction policy %q", name)
			}
			return systemSpec{ctl: engine.NewAnnotation(string(cfg.System), engine.MemDisk, p, false), annotated: true}, nil
		}
		return systemSpec{}, fmt.Errorf("blaze: unknown system %q", cfg.System)
	}
}
