package blaze

// White-box tests for the facade internals: withDefaults, the
// buildSystem recipe table, and the ILPWindow plumbing (the regression
// test for the old int field whose documented 0 value was remapped to 1
// before it could reach the controller).

import (
	"testing"

	"blaze/internal/core"
)

func TestWithDefaults(t *testing.T) {
	d := RunConfig{}.withDefaults()
	if d.Executors != 8 {
		t.Fatalf("default Executors = %d, want 8", d.Executors)
	}
	if d.Scale != 1.0 {
		t.Fatalf("default Scale = %v, want 1.0", d.Scale)
	}
	if d.ProfileScale != 0.02 {
		t.Fatalf("default ProfileScale = %v, want 0.02", d.ProfileScale)
	}
	if d.ILPWindow != ILPWindowDefault {
		t.Fatalf("defaults must leave ILPWindow at ILPWindowDefault, got %d", d.ILPWindow)
	}

	c := RunConfig{
		Executors:    3,
		Scale:        0.5,
		ProfileScale: 0.1,
		ILPWindow:    ILPWindowCurrentJobOnly,
	}.withDefaults()
	if c.Executors != 3 || c.Scale != 0.5 || c.ProfileScale != 0.1 {
		t.Fatalf("explicit values clobbered: %+v", c)
	}
	if c.ILPWindow != ILPWindowCurrentJobOnly {
		t.Fatal("ILPWindowCurrentJobOnly must survive withDefaults (the old int field remapped 0 to 1)")
	}
}

func TestBuildSystemRecipes(t *testing.T) {
	spec, err := Workload(LR)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		sys                          SystemID
		annotated, alluxio, profiled bool
	}{
		{SysSparkMem, true, false, false},
		{SysSparkMemDisk, true, false, false},
		{SysSparkAlluxio, true, true, false},
		{SysLRC, true, false, false},
		{SysMRD, true, false, false},
		{SysLRCMem, true, false, false},
		{SysMRDMem, true, false, false},
		{SysAutoCache, false, false, true},
		{SysCostAware, false, false, true},
		{SysBlaze, false, false, true},
		{SysBlazeMem, false, false, true},
		{SysBlazeNoProfile, false, false, false},
		{PolicySystem("tinylfu"), true, false, false},
	}
	for _, tc := range tests {
		t.Run(string(tc.sys), func(t *testing.T) {
			sys, err := buildSystem(RunConfig{System: tc.sys}.withDefaults(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if sys.ctl == nil {
				t.Fatal("no controller built")
			}
			if sys.annotated != tc.annotated || sys.alluxio != tc.alluxio || sys.profiled != tc.profiled {
				t.Fatalf("spec = %+v, want annotated=%v alluxio=%v profiled=%v",
					sys, tc.annotated, tc.alluxio, tc.profiled)
			}
		})
	}
	if _, err := buildSystem(RunConfig{System: "nope"}.withDefaults(), spec); err == nil {
		t.Fatal("unknown system must error")
	}
	if _, err := buildSystem(RunConfig{System: PolicySystem("nope")}.withDefaults(), spec); err == nil {
		t.Fatal("unknown eviction policy must error")
	}
}

// TestCalibrationKeyCoversCoresAndParams is the regression test for the
// calibration-cache key: it used to cover only (workload, executors,
// scale), so a later run with a different core count or cost model
// silently reused the first run's measured peak. Every distinguishing
// input must produce its own cache entry.
func TestCalibrationKeyCoversCoresAndParams(t *testing.T) {
	spec, err := Workload(LR)
	if err != nil {
		t.Fatal(err)
	}
	entries := func() int {
		calMu.Lock()
		defer calMu.Unlock()
		return len(calCache)
	}
	base := EvalParams(spec.SerFactor)
	slower := base
	slower.SerializeBps = base.SerializeBps / 2

	before := entries()
	if _, err := calibrateMemory(spec, 4, 2, 0.05, base); err != nil {
		t.Fatal(err)
	}
	if _, err := calibrateMemory(spec, 4, 4, 0.05, base); err != nil {
		t.Fatal(err)
	}
	if _, err := calibrateMemory(spec, 4, 2, 0.05, slower); err != nil {
		t.Fatal(err)
	}
	if got := entries() - before; got != 3 {
		t.Fatalf("3 distinct (cores, params) configurations produced %d cache entries; the key aliases them", got)
	}
	// Same configuration again must hit the cache, not add an entry.
	if _, err := calibrateMemory(spec, 4, 2, 0.05, base); err != nil {
		t.Fatal(err)
	}
	if got := entries() - before; got != 3 {
		t.Fatalf("repeat calibration added an entry (now %d); key is unstable", got)
	}
}

func TestILPWindowReachesController(t *testing.T) {
	spec, err := Workload(LR)
	if err != nil {
		t.Fatal(err)
	}
	window := func(w int) int {
		t.Helper()
		sys, err := buildSystem(RunConfig{System: SysBlaze, ILPWindow: w}.withDefaults(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return sys.ctl.(*core.Controller).Window()
	}
	if got := window(ILPWindowDefault); got != 1 {
		t.Fatalf("ILPWindowDefault = %d, want the default 1", got)
	}
	if got := window(ILPWindowCurrentJobOnly); got != 0 {
		t.Fatalf("ILPWindowCurrentJobOnly = %d, want 0 (current job only)", got)
	}
	if got := window(3); got != 3 {
		t.Fatalf("ILPWindow 3 = %d, want 3", got)
	}
	// The deprecated shim keeps the old pointer helper's semantics.
	if got := window(ILPWindow(0)); got != 0 {
		t.Fatalf("shim ILPWindow(0) = %d, want 0 (current job only)", got)
	}
	if got := window(ILPWindow(3)); got != 3 {
		t.Fatalf("shim ILPWindow(3) = %d, want 3", got)
	}
	if got := window(ILPWindow(-1)); got != 1 {
		t.Fatalf("shim ILPWindow(-1) = %d, want the default 1 (old sentinel)", got)
	}
}
