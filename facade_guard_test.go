package blaze_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestFacadeHygiene enforces the facade boundary mechanically: nothing
// under examples/ or cmd/ may import blaze/internal/... — those trees
// are the demonstration that the public surface (blaze.Run, Session,
// the type aliases in api.go) is sufficient to build real programs. A
// new example or tool that reaches into internal packages either needs
// a facade addition or is using the wrong entry point.
func TestFacadeHygiene(t *testing.T) {
	fset := token.NewFileSet()
	for _, root := range []string{"examples", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				return nil
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == "blaze/internal" || strings.HasPrefix(p, "blaze/internal/") {
					t.Errorf("%s imports %s: examples and commands must use the public facade only",
						path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}
