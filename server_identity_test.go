package blaze

// The seed-identity regression for the Run redesign: Run now executes
// every (non-RealBytes) application as the single session of a private
// job server, and must reproduce the pre-server standalone engine —
// runDirect — bit for bit: every deterministic metric equal and the
// event log byte-identical, for every Fig. 9 system, at sequential and
// parallel engine settings.

import (
	"bytes"
	"fmt"
	"testing"
)

// directRun replicates Run's prelude (defaults, validation, cost
// params, memory calibration, system construction) and executes on the
// standalone path.
func directRun(cfg RunConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := Workload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	params := EvalParams(spec.SerFactor)
	if !cfg.CostParams.IsZero() {
		params = cfg.CostParams
	}
	mem := cfg.MemoryPerExecutor
	if mem == 0 {
		peak, err := calibrateMemory(spec, cfg.Executors, cfg.Cores, cfg.Scale, params)
		if err != nil {
			return nil, err
		}
		frac := cfg.MemoryFraction
		if frac == 0 {
			frac = spec.MemFraction
		}
		if frac == 0 {
			frac = 0.5
		}
		mem = int64(float64(peak) * frac)
		if mem < 2048 {
			mem = 2048
		}
	}
	sys, err := buildSystem(cfg, spec)
	if err != nil {
		return nil, err
	}
	return runDirect(cfg, spec, params, mem, sys, nil)
}

func TestServerRunBitIdentical(t *testing.T) {
	for _, w := range []WorkloadID{PR, KMeans} {
		for _, sys := range Fig9Systems() {
			for _, par := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/par%d", w, sys, par), func(t *testing.T) {
					base := RunConfig{System: sys, Workload: w, Scale: 0.25, Parallelism: par}

					refCfg := base
					refCfg.EventLog = NewEventLog()
					ref, err := directRun(refCfg)
					if err != nil {
						t.Fatal(err)
					}

					srvCfg := base
					srvCfg.EventLog = NewEventLog()
					got, err := Run(srvCfg)
					if err != nil {
						t.Fatal(err)
					}

					if got.MemoryPerExecutor != ref.MemoryPerExecutor {
						t.Fatalf("memory differs: direct %d, server %d", ref.MemoryPerExecutor, got.MemoryPerExecutor)
					}
					if !MetricsEqualDeterministic(ref.Metrics, got.Metrics) {
						t.Fatalf("metrics differ:\ndirect %+v\nserver %+v", ref.Metrics, got.Metrics)
					}
					var refBuf, gotBuf bytes.Buffer
					if err := refCfg.EventLog.WriteJSON(&refBuf); err != nil {
						t.Fatal(err)
					}
					if err := srvCfg.EventLog.WriteJSON(&gotBuf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(refBuf.Bytes(), gotBuf.Bytes()) {
						t.Fatalf("event logs differ (direct %d bytes, server %d bytes)", refBuf.Len(), gotBuf.Len())
					}
				})
			}
		}
	}
}
