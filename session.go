package blaze

// This file is the public micro-batch streaming surface: a Session is a
// long-lived run against a private cluster under which the same logical
// DAG is re-submitted once per window (Submit), window boundaries are
// explicit (NextWindow) and the final metrics arrive at Close. Across a
// boundary the controller retires lineage whose lifetime has passed and
// re-solves the cache-placement ILP as a delta on the previous window's
// assignment — the streaming counterpart of calling one-shot Run in a
// loop, which would rebuild the cluster, lose all cached state and
// re-solve from scratch every window.

import (
	"errors"
	"fmt"
	"time"

	"blaze/internal/core"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/metrics"
	"blaze/internal/server"
)

// SessionConfig describes a streaming session. Unlike RunConfig there is
// no Workload field: the caller submits each window's DAG through
// Session.Submit (prebuilt streaming workloads live in StreamWorkload).
type SessionConfig struct {
	// System selects the caching system (default SysBlaze). Blaze-family
	// systems build their lineage on the run — a stream has no fixed
	// plan to profile ahead of time — so sessions charge no profiling
	// overhead.
	System SystemID
	// Executors defaults to 8; Cores to 1.
	Executors int
	Cores     int
	// Parallelism is the engine's OS-level worker count; it changes only
	// wall-clock time, never metrics or event logs.
	Parallelism int
	// MemoryPerExecutor fixes the memory-store capacity and must be
	// positive: a session hosts arbitrary window DAGs, so there is no
	// single workload to calibrate against (same rule as ServerConfig).
	MemoryPerExecutor int64
	// CostParams overrides the cost model; the zero value uses
	// EvalParams(1.0). Streaming workload specs carry their own
	// serialization factor — pass EvalParams(spec.SerFactor) to match
	// the batch harness's pricing.
	CostParams CostParams
	// DiskCapacity adds the per-executor disk constraint to the Blaze
	// ILP when positive.
	DiskCapacity int64
	// ILPWindow selects the Blaze ILP's successor-job horizon, as in
	// RunConfig (sentinels ILPWindowDefault, ILPWindowCurrentJobOnly).
	ILPWindow int
	// EventLog, when non-nil, records execution events, including the
	// streaming kinds (window_start, partition_retired, ilp_delta_solve).
	EventLog *EventLog
	// ColdSolveVerify re-solves every window-boundary delta instance
	// from scratch alongside the warm-started delta solve and counts
	// disagreements between proven optima in ILPColdMismatches. Only
	// meaningful for the Blaze systems; used by tests and blazebench to
	// hold the delta-equals-cold invariant.
	ColdSolveVerify bool
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.System == "" {
		c.System = SysBlaze
	}
	if c.Executors == 0 {
		c.Executors = 8
	}
	return c
}

// Validate checks the configuration without building the cluster.
func (c SessionConfig) Validate() error {
	if c.Executors < 0 {
		return fmt.Errorf("blaze: Executors must be >= 0 (0 means default 8), got %d", c.Executors)
	}
	if c.Cores < 0 {
		return fmt.Errorf("blaze: Cores must be >= 0 (0 means default 1), got %d", c.Cores)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("blaze: Parallelism must be >= 0 (0 means all CPUs), got %d", c.Parallelism)
	}
	if c.MemoryPerExecutor <= 0 {
		return errors.New("blaze: SessionConfig.MemoryPerExecutor must be positive (a session has no single workload to calibrate against)")
	}
	if c.DiskCapacity < 0 {
		return fmt.Errorf("blaze: DiskCapacity must be >= 0 (0 means unconstrained), got %d", c.DiskCapacity)
	}
	if c.ILPWindow < ILPWindowCurrentJobOnly {
		return fmt.Errorf("blaze: ILPWindow must be >= %d (ILPWindowCurrentJobOnly), got %d", ILPWindowCurrentJobOnly, c.ILPWindow)
	}
	if err := validateSystem(c.System); err != nil {
		return err
	}
	if !c.CostParams.IsZero() {
		return c.CostParams.Validate()
	}
	return nil
}

// WindowStats is one window's share of the run: the deltas of the
// cumulative metrics between this window's start and end boundaries.
// The two SolveTime fields are wall-clock measurements and are excluded
// from EqualDeterministic; everything else is virtual-time deterministic
// and bit-identical at every Parallelism.
type WindowStats struct {
	Window int
	// Cache traffic inside the window.
	MemHits, DiskHits, Misses int
	Evictions                 int
	// Windowed-lineage activity at the window's start boundary.
	PartitionsRetired int
	// Incremental optimizer activity at the window's start boundary.
	ILPDeltaSolves, ILPDeltaNodes                  int
	ILPColdSolves, ILPColdNodes, ILPColdMismatches int
	ILPDeltaSolveTime, ILPColdSolveTime            time.Duration
}

// EqualDeterministic reports whether two windows agree on every
// deterministic field (the wall-clock solve times are excluded).
func (w WindowStats) EqualDeterministic(o WindowStats) bool {
	w.ILPDeltaSolveTime, w.ILPColdSolveTime = 0, 0
	o.ILPDeltaSolveTime, o.ILPColdSolveTime = 0, 0
	return w == o
}

// cumSnap is the cumulative-counter snapshot WindowStats deltas are
// computed from.
type cumSnap struct {
	memHits, diskHits, misses, evictions  int
	retired, deltaSolves, deltaNodes      int
	coldSolves, coldNodes, coldMismatches int
	deltaTime, coldTime                   time.Duration
}

func snapFrom(m *metrics.App) cumSnap {
	return cumSnap{
		memHits: m.CacheHits, diskHits: m.DiskHits, misses: m.Misses, evictions: m.Evictions,
		retired: m.PartitionsRetired, deltaSolves: m.ILPDeltaSolves, deltaNodes: m.ILPDeltaNodes,
		coldSolves: m.ILPColdSolves, coldNodes: m.ILPColdNodes, coldMismatches: m.ILPColdMismatches,
		deltaTime: m.ILPDeltaSolveTime, coldTime: m.ILPColdSolveTime,
	}
}

func (cur cumSnap) diff(prev cumSnap, window int) WindowStats {
	return WindowStats{
		Window:            window,
		MemHits:           cur.memHits - prev.memHits,
		DiskHits:          cur.diskHits - prev.diskHits,
		Misses:            cur.misses - prev.misses,
		Evictions:         cur.evictions - prev.evictions,
		PartitionsRetired: cur.retired - prev.retired,
		ILPDeltaSolves:    cur.deltaSolves - prev.deltaSolves,
		ILPDeltaNodes:     cur.deltaNodes - prev.deltaNodes,
		ILPColdSolves:     cur.coldSolves - prev.coldSolves,
		ILPColdNodes:      cur.coldNodes - prev.coldNodes,
		ILPColdMismatches: cur.coldMismatches - prev.coldMismatches,
		ILPDeltaSolveTime: cur.deltaTime - prev.deltaTime,
		ILPColdSolveTime:  cur.coldTime - prev.coldTime,
	}
}

// Session is a micro-batch streaming run. Create one with NewSession,
// submit each window's DAG with Submit, advance with NextWindow, and
// collect the final Result with Close. Methods must be called from one
// goroutine.
type Session struct {
	cfg       SessionConfig
	annotated bool
	srv       *server.Server
	st        *server.StreamSession
	window    int
	prev      cumSnap
	windows   []WindowStats
	closed    bool
}

// NewSession builds the private cluster and opens window 1.
func NewSession(cfg SessionConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := buildStreamSystem(cfg)
	if err != nil {
		return nil, err
	}
	params := EvalParams(1.0)
	if !cfg.CostParams.IsZero() {
		params = cfg.CostParams
	}
	srv, err := server.New(server.Config{
		Executors:         cfg.Executors,
		CoresPerExecutor:  cfg.Cores,
		MemoryPerExecutor: cfg.MemoryPerExecutor,
		Parallelism:       cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	st, err := srv.SubmitStream(server.JobSpec{
		Controller:  sys.ctl,
		Params:      params,
		AlluxioMode: sys.alluxio,
		EventLog:    cfg.EventLog,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &Session{cfg: cfg, annotated: sys.annotated, srv: srv, st: st, window: 1}, nil
}

// buildStreamSystem is buildSystem for sessions: the Blaze-family
// systems are built without a profiling skeleton (their lineage grows on
// the run), annotation-based systems reuse the batch recipes.
func buildStreamSystem(cfg SessionConfig) (systemSpec, error) {
	blazeSpec := func(b *core.Controller) systemSpec {
		if cfg.DiskCapacity > 0 {
			b.WithDiskCapacity(cfg.DiskCapacity)
		}
		switch {
		case cfg.ILPWindow > 0:
			b.WithWindow(cfg.ILPWindow)
		case cfg.ILPWindow == ILPWindowCurrentJobOnly:
			b.WithWindow(0)
		}
		b.WithColdVerify(cfg.ColdSolveVerify)
		return systemSpec{ctl: b}
	}
	switch cfg.System {
	case SysBlaze, SysBlazeNoProfile:
		return blazeSpec(core.NewBlaze()), nil
	case SysBlazeMem:
		return blazeSpec(core.NewBlazeMemOnly()), nil
	case SysAutoCache:
		return systemSpec{ctl: core.NewAutoCache()}, nil
	case SysCostAware:
		return systemSpec{ctl: core.NewCostAware()}, nil
	default:
		// Annotation-based systems and policy systems never touch the
		// profiling skeleton, so the batch recipe applies unchanged.
		return buildSystem(RunConfig{System: cfg.System}.withDefaults(), WorkloadSpec{})
	}
}

// ErrSessionClosed is returned by Session operations after Close.
var ErrSessionClosed = errors.New("blaze: session closed")

// Submit runs one window's DAG: driver executes in the session's driver
// context, its actions submitting jobs to the session cluster. Datasets
// cached by earlier windows are ordinary cached blocks here — carried
// state (rank vectors, centroids) flows across windows for free.
func (s *Session) Submit(driver func(ctx *Context)) error {
	if s.closed {
		return ErrSessionClosed
	}
	return s.st.Do(driver)
}

// Window returns the current 1-based window index.
func (s *Session) Window() int { return s.window }

// NextWindow closes the current window and opens the next: the
// controller retires lineage whose lifetime has passed and re-solves the
// placement ILP as a delta on the previous window's assignment. The
// closing window's WindowStats entry is captured at the boundary.
// Returns the new window index.
func (s *Session) NextWindow() (int, error) {
	if s.closed {
		return 0, ErrSessionClosed
	}
	if err := s.capture(); err != nil {
		return 0, err
	}
	w, err := s.st.NextWindow()
	if err != nil {
		return 0, err
	}
	s.window = w
	return w, nil
}

// capture appends the closing window's stats delta.
func (s *Session) capture() error {
	var cur cumSnap
	err := s.st.Do(func(ctx *dataflow.Context) {
		if cl, ok := ctx.Runner().(*engine.Cluster); ok {
			cur = snapFrom(cl.Metrics())
		}
	})
	if err != nil {
		return err
	}
	s.windows = append(s.windows, cur.diff(s.prev, s.window))
	s.prev = cur
	return nil
}

// WindowStats returns the per-window metric deltas captured so far (one
// entry per completed window; Close captures the final window).
func (s *Session) WindowStats() []WindowStats {
	out := make([]WindowStats, len(s.windows))
	copy(out, s.windows)
	return out
}

// Close ends the session: the final window's stats are captured, the
// cluster finishes and the sealed Result is returned. Idempotent in the
// sense that later calls return ErrSessionClosed.
func (s *Session) Close() (*Result, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.closed = true
	captureErr := s.capture()
	err := s.st.Close()
	s.srv.Close()
	if err != nil {
		return nil, err
	}
	if captureErr != nil {
		return nil, captureErr
	}
	m := s.st.Session().Metrics()
	if m == nil {
		return nil, errors.New("blaze: session finished without metrics")
	}
	return &Result{
		System:            s.cfg.System,
		Metrics:           m,
		MemoryPerExecutor: s.cfg.MemoryPerExecutor,
	}, nil
}
