package blaze

// This file is the public micro-batch streaming surface: a Session is a
// long-lived run against a private cluster under which the same logical
// DAG is re-submitted once per window (Submit), window boundaries are
// explicit (NextWindow) and the final metrics arrive at Close. Across a
// boundary the controller retires lineage whose lifetime has passed and
// re-solves the cache-placement ILP as a delta on the previous window's
// assignment — the streaming counterpart of calling one-shot Run in a
// loop, which would rebuild the cluster, lose all cached state and
// re-solve from scratch every window.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"time"

	"blaze/internal/checkpoint"
	"blaze/internal/core"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/metrics"
	"blaze/internal/server"
)

// SessionConfig describes a streaming session. Unlike RunConfig there is
// no Workload field: the caller submits each window's DAG through
// Session.Submit (prebuilt streaming workloads live in StreamWorkload).
type SessionConfig struct {
	// System selects the caching system (default SysBlaze). Blaze-family
	// systems build their lineage on the run — a stream has no fixed
	// plan to profile ahead of time — so sessions charge no profiling
	// overhead.
	System SystemID
	// Executors defaults to 8; Cores to 1.
	Executors int
	Cores     int
	// Parallelism is the engine's OS-level worker count; it changes only
	// wall-clock time, never metrics or event logs.
	Parallelism int
	// Vectorized runs eligible stages on the columnar task loop; like
	// Parallelism it changes only wall-clock time, never metrics or
	// event logs.
	Vectorized bool
	// MemoryPerExecutor fixes the memory-store capacity and must be
	// positive: a session hosts arbitrary window DAGs, so there is no
	// single workload to calibrate against (same rule as ServerConfig).
	MemoryPerExecutor int64
	// CostParams overrides the cost model; the zero value uses
	// EvalParams(1.0). Streaming workload specs carry their own
	// serialization factor — pass EvalParams(spec.SerFactor) to match
	// the batch harness's pricing.
	CostParams CostParams
	// DiskCapacity adds the per-executor disk constraint to the Blaze
	// ILP when positive.
	DiskCapacity int64
	// ILPWindow selects the Blaze ILP's successor-job horizon, as in
	// RunConfig (sentinels ILPWindowDefault, ILPWindowCurrentJobOnly).
	ILPWindow int
	// EventLog, when non-nil, records execution events, including the
	// streaming kinds (window_start, partition_retired, ilp_delta_solve).
	EventLog *EventLog
	// ColdSolveVerify re-solves every window-boundary delta instance
	// from scratch alongside the warm-started delta solve and counts
	// disagreements between proven optima in ILPColdMismatches. Only
	// meaningful for the Blaze systems; used by tests and blazebench to
	// hold the delta-equals-cold invariant.
	ColdSolveVerify bool
	// CheckpointDir, when set, makes the session durable: every window
	// boundary past the first commits a recovery snapshot (carried-state
	// blocks, controller state, window stats) under this directory, and
	// the event log is teed into an append-only WAL there. A session
	// killed mid-stream resumes from the newest snapshot with
	// ResumeSession, producing bit-identical window results and event
	// logs to a run that never crashed.
	CheckpointDir string
	// CrashWindow, when >= 2, injects the server-crash fault: the session
	// dies (methods return ErrSessionCrashed) at that window's boundary,
	// immediately after its checkpoint commits. Requires CheckpointDir.
	// Resuming does not re-crash: the crashed boundary replays instead of
	// running live, so the trigger never re-fires.
	CrashWindow int
	// RecoveryLog, when non-nil, receives the recovery-scoped events —
	// checkpoint_written, session_resumed and the post-resume
	// ilp_repair_solve records — which must stay out of EventLog to keep
	// a resumed run's main log bit-identical to an uninterrupted one.
	RecoveryLog *EventLog
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.System == "" {
		c.System = SysBlaze
	}
	if c.Executors == 0 {
		c.Executors = 8
	}
	return c
}

// Validate checks the configuration without building the cluster.
func (c SessionConfig) Validate() error {
	if c.Executors < 0 {
		return fmt.Errorf("blaze: Executors must be >= 0 (0 means default 8), got %d", c.Executors)
	}
	if c.Cores < 0 {
		return fmt.Errorf("blaze: Cores must be >= 0 (0 means default 1), got %d", c.Cores)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("blaze: Parallelism must be >= 0 (0 means all CPUs), got %d", c.Parallelism)
	}
	if c.MemoryPerExecutor <= 0 {
		return errors.New("blaze: SessionConfig.MemoryPerExecutor must be positive (a session has no single workload to calibrate against)")
	}
	if c.DiskCapacity < 0 {
		return fmt.Errorf("blaze: DiskCapacity must be >= 0 (0 means unconstrained), got %d", c.DiskCapacity)
	}
	if c.ILPWindow < ILPWindowCurrentJobOnly {
		return fmt.Errorf("blaze: ILPWindow must be >= %d (ILPWindowCurrentJobOnly), got %d", ILPWindowCurrentJobOnly, c.ILPWindow)
	}
	if c.CrashWindow != 0 {
		if c.CheckpointDir == "" {
			return errors.New("blaze: CrashWindow requires CheckpointDir (a crash without checkpoints has nothing to resume from)")
		}
		if c.CrashWindow < 2 {
			return fmt.Errorf("blaze: CrashWindow must be >= 2 (window 1 has no boundary checkpoint to crash after), got %d", c.CrashWindow)
		}
	}
	if err := validateSystem(c.System); err != nil {
		return err
	}
	if !c.CostParams.IsZero() {
		return c.CostParams.Validate()
	}
	return nil
}

// WindowStats is one window's share of the run: the deltas of the
// cumulative metrics between this window's start and end boundaries.
// The two SolveTime fields are wall-clock measurements and are excluded
// from EqualDeterministic; everything else is virtual-time deterministic
// and bit-identical at every Parallelism.
type WindowStats struct {
	Window int
	// Cache traffic inside the window.
	MemHits, DiskHits, Misses int
	Evictions                 int
	// Windowed-lineage activity at the window's start boundary.
	PartitionsRetired int
	// Incremental optimizer activity at the window's start boundary.
	ILPDeltaSolves, ILPDeltaNodes                  int
	ILPColdSolves, ILPColdNodes, ILPColdMismatches int
	ILPDeltaSolveTime, ILPColdSolveTime            time.Duration
}

// EqualDeterministic reports whether two windows agree on every
// deterministic field (the wall-clock solve times are excluded).
func (w WindowStats) EqualDeterministic(o WindowStats) bool {
	w.ILPDeltaSolveTime, w.ILPColdSolveTime = 0, 0
	o.ILPDeltaSolveTime, o.ILPColdSolveTime = 0, 0
	return w == o
}

// cumSnap is the cumulative-counter snapshot WindowStats deltas are
// computed from.
type cumSnap struct {
	memHits, diskHits, misses, evictions  int
	retired, deltaSolves, deltaNodes      int
	coldSolves, coldNodes, coldMismatches int
	deltaTime, coldTime                   time.Duration
}

func snapFrom(m *metrics.App) cumSnap {
	return cumSnap{
		memHits: m.CacheHits, diskHits: m.DiskHits, misses: m.Misses, evictions: m.Evictions,
		retired: m.PartitionsRetired, deltaSolves: m.ILPDeltaSolves, deltaNodes: m.ILPDeltaNodes,
		coldSolves: m.ILPColdSolves, coldNodes: m.ILPColdNodes, coldMismatches: m.ILPColdMismatches,
		deltaTime: m.ILPDeltaSolveTime, coldTime: m.ILPColdSolveTime,
	}
}

func (cur cumSnap) diff(prev cumSnap, window int) WindowStats {
	return WindowStats{
		Window:            window,
		MemHits:           cur.memHits - prev.memHits,
		DiskHits:          cur.diskHits - prev.diskHits,
		Misses:            cur.misses - prev.misses,
		Evictions:         cur.evictions - prev.evictions,
		PartitionsRetired: cur.retired - prev.retired,
		ILPDeltaSolves:    cur.deltaSolves - prev.deltaSolves,
		ILPDeltaNodes:     cur.deltaNodes - prev.deltaNodes,
		ILPColdSolves:     cur.coldSolves - prev.coldSolves,
		ILPColdNodes:      cur.coldNodes - prev.coldNodes,
		ILPColdMismatches: cur.coldMismatches - prev.coldMismatches,
		ILPDeltaSolveTime: cur.deltaTime - prev.deltaTime,
		ILPColdSolveTime:  cur.coldTime - prev.coldTime,
	}
}

// CheckpointStat records one committed window-boundary checkpoint:
// which boundary, how many carried-state blocks it persisted, their
// serialized size and the wall-clock commit time (the checkpoint
// overhead blazebench -recovery reports).
type CheckpointStat struct {
	Window int
	Blocks int
	Bytes  int64
	Wall   time.Duration
}

// sessionClientState is the driver-side payload persisted inside each
// checkpoint: the per-window stats captured so far and the cumulative
// snapshot they are diffed against. cumSnap's fields are unexported, so
// the snapshot travels as an absolute-valued WindowStats (Window 0).
type sessionClientState struct {
	Window  int
	Prev    WindowStats
	Windows []WindowStats
}

// snapOf inverts cumSnap.diff(cumSnap{}, 0): it rebuilds the cumulative
// snapshot from its absolute-valued WindowStats wire form.
func snapOf(w WindowStats) cumSnap {
	return cumSnap{
		memHits: w.MemHits, diskHits: w.DiskHits, misses: w.Misses, evictions: w.Evictions,
		retired: w.PartitionsRetired, deltaSolves: w.ILPDeltaSolves, deltaNodes: w.ILPDeltaNodes,
		coldSolves: w.ILPColdSolves, coldNodes: w.ILPColdNodes, coldMismatches: w.ILPColdMismatches,
		deltaTime: w.ILPDeltaSolveTime, coldTime: w.ILPColdSolveTime,
	}
}

// Session is a micro-batch streaming run. Create one with NewSession,
// submit each window's DAG with Submit, advance with NextWindow, and
// collect the final Result with Close. Methods must be called from one
// goroutine.
type Session struct {
	cfg       SessionConfig
	annotated bool
	srv       *server.Server
	st        *server.StreamSession
	window    int
	prev      cumSnap
	windows   []WindowStats
	closed    bool

	// Durability state (CheckpointDir sessions only).
	wal         *eventlog.WAL
	checkpoints []CheckpointStat
	// Resume state: while resuming, the driver replays windows
	// 1..resumeWindow-1 without executing; restored carries the crashed
	// run's window stats, applied when replay reaches resumeWindow.
	resuming     bool
	resumeWindow int
	restored     *sessionClientState
}

// NewSession builds the private cluster and opens window 1.
func NewSession(cfg SessionConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := buildStreamSystem(cfg)
	if err != nil {
		return nil, err
	}
	params := EvalParams(1.0)
	if !cfg.CostParams.IsZero() {
		params = cfg.CostParams
	}
	srv, err := server.New(server.Config{
		Executors:         cfg.Executors,
		CoresPerExecutor:  cfg.Cores,
		MemoryPerExecutor: cfg.MemoryPerExecutor,
		Parallelism:       cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	st, err := srv.SubmitStream(server.JobSpec{
		Controller:  sys.ctl,
		Params:      params,
		AlluxioMode: sys.alluxio,
		EventLog:    cfg.EventLog,
		Parallelism: cfg.Parallelism,
		Vectorized:  cfg.Vectorized,
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	s := &Session{cfg: cfg, annotated: sys.annotated, srv: srv, st: st, window: 1}
	if cfg.CheckpointDir != "" {
		if err := s.enableDurability(sys.ctl, nil); err != nil {
			st.Close()
			srv.Close()
			return nil, err
		}
	}
	return s, nil
}

// ErrNoCheckpoint is returned by ResumeSession and ResumeStream when the
// checkpoint directory holds no usable snapshot (never checkpointed, or
// every snapshot is corrupt). The caller recovers by running from
// scratch instead — lineage recomputation from the sources.
var ErrNoCheckpoint = checkpoint.ErrNoCheckpoint

// ResumeSession rebuilds a crashed durable session from the newest
// usable checkpoint under cfg.CheckpointDir. The caller must re-run the
// same driver program from window 1: submitted windows before the
// checkpointed boundary replay without executing (jobs return empty
// results instantly), and when NextWindow reaches that boundary the
// cluster rehydrates in place — carried-state blocks re-admitted
// through the stores, controller state, metrics and the main event log
// restored exactly — and execution goes live. The resumed run's window
// results, metrics and event log are bit-identical to a run that never
// crashed; resume bookkeeping (session_resumed, plan-repair solves)
// goes to cfg.RecoveryLog. cfg must match the crashed session's.
func ResumeSession(cfg SessionConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CheckpointDir == "" {
		return nil, errors.New("blaze: ResumeSession requires CheckpointDir")
	}
	rs, clientBytes, err := checkpoint.Load(cfg.CheckpointDir)
	if err != nil {
		return nil, err
	}
	var restored *sessionClientState
	if clientBytes != nil {
		restored = &sessionClientState{}
		if err := gob.NewDecoder(bytes.NewReader(clientBytes)).Decode(restored); err != nil {
			return nil, fmt.Errorf("blaze: decode checkpoint client state: %w", err)
		}
	}
	sys, err := buildStreamSystem(cfg)
	if err != nil {
		return nil, err
	}
	params := EvalParams(1.0)
	if !cfg.CostParams.IsZero() {
		params = cfg.CostParams
	}
	srv, err := server.New(server.Config{
		Executors:         cfg.Executors,
		CoresPerExecutor:  cfg.Cores,
		MemoryPerExecutor: cfg.MemoryPerExecutor,
		Parallelism:       cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	st, err := srv.SubmitStream(server.JobSpec{
		Controller:  sys.ctl,
		Params:      params,
		AlluxioMode: sys.alluxio,
		EventLog:    cfg.EventLog,
		Parallelism: cfg.Parallelism,
		Vectorized:  cfg.Vectorized,
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	s := &Session{
		cfg: cfg, annotated: sys.annotated, srv: srv, st: st, window: 1,
		resuming: true, resumeWindow: rs.Window, restored: restored,
	}
	if err := s.enableDurability(sys.ctl, rs); err != nil {
		st.Close()
		srv.Close()
		return nil, err
	}
	return s, nil
}

// enableDurability attaches the checkpointer and the event WAL to the
// session's cluster, and — when resuming — engages replay mode. It runs
// the attachment in driver context so nothing races the stream loop's
// live window-1 open (whose events, on resume, are clobbered at
// rehydrate and never reach the rewritten WAL).
func (s *Session) enableDurability(ctl engine.Controller, rs *engine.ResumeState) error {
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("blaze: checkpoint dir: %w", err)
	}
	cp := &checkpoint.Checkpointer{
		Dir:         s.cfg.CheckpointDir,
		CrashWindow: s.cfg.CrashWindow,
		ClientState: s.clientState,
		Log:         s.cfg.RecoveryLog,
		OnWrite: func(window, blocks int, bytes int64, d time.Duration) {
			s.checkpoints = append(s.checkpoints, CheckpointStat{Window: window, Blocks: blocks, Bytes: bytes, Wall: d})
		},
	}
	if cs, ok := ctl.(interface{ Summary() core.StateSummary }); ok {
		cp.Summary = func() any { return cs.Summary() }
	}
	var setupErr error
	doErr := s.st.Do(func(ctx *dataflow.Context) {
		wal, err := eventlog.CreateWAL(checkpoint.WALPath(s.cfg.CheckpointDir))
		if err != nil {
			setupErr = err
			return
		}
		// Seed the WAL with the history so far: a fresh session's events
		// (the window-1 open boundary), or — on resume — the crashed
		// run's exact event prefix, replacing the old WAL wholesale.
		var seed []eventlog.Event
		if rs != nil {
			seed = rs.Events
		} else if s.cfg.EventLog != nil {
			seed = s.cfg.EventLog.Events()
		}
		if err := wal.AppendAll(seed); err != nil {
			wal.Close()
			setupErr = err
			return
		}
		s.wal = wal
		if s.cfg.EventLog != nil {
			s.cfg.EventLog.SetSink(func(e eventlog.Event) {
				if err := wal.Append(e); err != nil {
					// A WAL that silently stops persisting would turn the
					// next crash into event-history loss; broken durability
					// is fatal to the session, like a failed checkpoint.
					panic(fmt.Sprintf("blaze: event wal append: %v", err))
				}
			})
		}
		cl, ok := ctx.Runner().(*engine.Cluster)
		if !ok {
			setupErr = errors.New("blaze: session runner is not an engine cluster")
			return
		}
		cl.SetWindowCheckpointer(cp)
		if rs != nil {
			cl.BeginReplay(rs, s.cfg.RecoveryLog)
		}
	})
	if doErr != nil {
		return doErr
	}
	return setupErr
}

// clientState serializes the facade's window bookkeeping for the
// checkpoint's client payload. The checkpointer calls it on the driver
// goroutine during a boundary, while the client goroutine is blocked
// inside NextWindow — the fields are stable.
func (s *Session) clientState() ([]byte, error) {
	st := sessionClientState{Window: s.window, Prev: s.prev.diff(cumSnap{}, 0), Windows: s.windows}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildStreamSystem is buildSystem for sessions: the Blaze-family
// systems are built without a profiling skeleton (their lineage grows on
// the run), annotation-based systems reuse the batch recipes.
func buildStreamSystem(cfg SessionConfig) (systemSpec, error) {
	blazeSpec := func(b *core.Controller) systemSpec {
		if cfg.DiskCapacity > 0 {
			b.WithDiskCapacity(cfg.DiskCapacity)
		}
		switch {
		case cfg.ILPWindow > 0:
			b.WithWindow(cfg.ILPWindow)
		case cfg.ILPWindow == ILPWindowCurrentJobOnly:
			b.WithWindow(0)
		}
		b.WithColdVerify(cfg.ColdSolveVerify)
		return systemSpec{ctl: b}
	}
	switch cfg.System {
	case SysBlaze, SysBlazeNoProfile:
		return blazeSpec(core.NewBlaze()), nil
	case SysBlazeMem:
		return blazeSpec(core.NewBlazeMemOnly()), nil
	case SysAutoCache:
		return systemSpec{ctl: core.NewAutoCache()}, nil
	case SysCostAware:
		return systemSpec{ctl: core.NewCostAware()}, nil
	default:
		// Annotation-based systems and policy systems never touch the
		// profiling skeleton, so the batch recipe applies unchanged.
		return buildSystem(RunConfig{System: cfg.System}.withDefaults(), WorkloadSpec{})
	}
}

// ErrSessionClosed is returned by Session operations after Close.
var ErrSessionClosed = errors.New("blaze: session closed")

// Submit runs one window's DAG: driver executes in the session's driver
// context, its actions submitting jobs to the session cluster. Datasets
// cached by earlier windows are ordinary cached blocks here — carried
// state (rank vectors, centroids) flows across windows for free.
func (s *Session) Submit(driver func(ctx *Context)) error {
	if s.closed {
		return ErrSessionClosed
	}
	return s.st.Do(driver)
}

// Window returns the current 1-based window index.
func (s *Session) Window() int { return s.window }

// NextWindow closes the current window and opens the next: the
// controller retires lineage whose lifetime has passed and re-solves the
// placement ILP as a delta on the previous window's assignment. The
// closing window's WindowStats entry is captured at the boundary.
// Returns the new window index.
func (s *Session) NextWindow() (int, error) {
	if s.closed {
		return 0, ErrSessionClosed
	}
	if err := s.capture(); err != nil {
		return 0, err
	}
	w, err := s.st.NextWindow()
	if err != nil {
		return 0, err
	}
	s.window = w
	if s.resuming && w >= s.resumeWindow {
		// The engine rehydrated inside that NextWindow. Apply the
		// restored driver-side bookkeeping: the crashed run's window
		// stats and the cumulative snapshot the next capture diffs
		// against.
		s.resuming = false
		if s.restored != nil {
			s.windows = append(s.windows[:0], s.restored.Windows...)
			s.prev = snapOf(s.restored.Prev)
			s.restored = nil
		}
	}
	return w, nil
}

// capture appends the closing window's stats delta. Replayed windows of
// a resuming session are skipped: their stats were captured by the
// crashed run and are restored wholesale at the rehydrate boundary.
func (s *Session) capture() error {
	var cur cumSnap
	replaying := false
	err := s.st.Do(func(ctx *dataflow.Context) {
		if cl, ok := ctx.Runner().(*engine.Cluster); ok {
			if cl.Replaying() {
				replaying = true
				return
			}
			cur = snapFrom(cl.Metrics())
		}
	})
	if err != nil {
		return err
	}
	if replaying {
		return nil
	}
	s.windows = append(s.windows, cur.diff(s.prev, s.window))
	s.prev = cur
	return nil
}

// CheckpointStats returns the checkpoints this process committed, in
// boundary order (a resumed session reports only its own post-resume
// checkpoints, not the crashed run's).
func (s *Session) CheckpointStats() []CheckpointStat {
	out := make([]CheckpointStat, len(s.checkpoints))
	copy(out, s.checkpoints)
	return out
}

// WindowStats returns the per-window metric deltas captured so far (one
// entry per completed window; Close captures the final window).
func (s *Session) WindowStats() []WindowStats {
	out := make([]WindowStats, len(s.windows))
	copy(out, s.windows)
	return out
}

// Close ends the session: the final window's stats are captured, the
// cluster finishes and the sealed Result is returned. Idempotent in the
// sense that later calls return ErrSessionClosed.
func (s *Session) Close() (*Result, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.closed = true
	captureErr := s.capture()
	err := s.st.Close()
	if s.wal != nil {
		// The driver loop has exited, so nothing appends concurrently.
		if s.cfg.EventLog != nil {
			s.cfg.EventLog.SetSink(nil)
		}
		s.wal.Close()
		s.wal = nil
	}
	s.srv.Close()
	if err != nil {
		return nil, err
	}
	if captureErr != nil {
		return nil, captureErr
	}
	m := s.st.Session().Metrics()
	if m == nil {
		return nil, errors.New("blaze: session finished without metrics")
	}
	return &Result{
		System:            s.cfg.System,
		Metrics:           m,
		MemoryPerExecutor: s.cfg.MemoryPerExecutor,
	}, nil
}
