// Command blazelineage runs Blaze's dependency extraction phase on a
// workload and dumps the captured skeleton: the dataset roles, their
// lineage edges, and the job-offset reference patterns the CostLineage
// uses to anticipate future accesses (§5.3, Fig. 8).
//
// Usage:
//
//	blazelineage -workload pr
//	blazelineage -workload svdpp -sample 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"blaze"
)

func main() {
	workload := flag.String("workload", "pr", "workload: pr, cc, lr, kmeans, gbt, svdpp")
	sample := flag.Float64("sample", 0.02, "profiling sample fraction (the paper uses <1MB of input)")
	dot := flag.Bool("dot", false, "emit the merged role lineage as a Graphviz DOT graph")
	flag.Parse()

	spec, err := blaze.Workload(blaze.WorkloadID(*workload))
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazelineage: %v\n", err)
		os.Exit(1)
	}
	sk := blaze.ProfileWorkload(spec, *sample)

	if *dot {
		emitDOT(sk)
		return
	}

	fmt.Printf("Dependency extraction: %s (sample %.1f%%)\n", spec.Title, *sample*100)
	fmt.Printf("jobs captured: %d\n\n", sk.Jobs)

	// Role summary: instances, partition counts, reference offsets.
	type roleInfo struct {
		instances int
		parts     int
		firstJob  int
		lastJob   int
	}
	roles := map[string]*roleInfo{}
	for key, n := range sk.Nodes {
		ri := roles[key.Role]
		if ri == nil {
			ri = &roleInfo{firstJob: n.CreationJob, lastJob: n.CreationJob, parts: n.Parts}
			roles[key.Role] = ri
		}
		ri.instances++
		if n.CreationJob < ri.firstJob {
			ri.firstJob = n.CreationJob
		}
		if n.CreationJob > ri.lastJob {
			ri.lastJob = n.CreationJob
		}
	}
	names := make([]string, 0, len(roles))
	for r := range roles {
		names = append(names, r)
	}
	sort.Strings(names)

	fmt.Printf("%-16s %10s %7s %12s  %s\n", "role", "instances", "parts", "created", "reference offsets (jobs after creation)")
	for _, r := range names {
		ri := roles[r]
		fmt.Printf("%-16s %10d %7d %12s  %v\n",
			r, ri.instances, ri.parts,
			fmt.Sprintf("j%d..j%d", ri.firstJob, ri.lastJob),
			sk.RefOffsets[r])
	}

	// Structural edges of the first full iteration (roles at iter 1).
	fmt.Printf("\nlineage edges (iteration-1 instances):\n")
	keys := make([]blaze.LineageNodeKey, 0, len(sk.Nodes))
	for key := range sk.Nodes {
		if key.Iter == 1 {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Role < keys[j].Role })
	for _, key := range keys {
		n := sk.Nodes[key]
		for _, e := range n.Parents {
			kind := "narrow"
			if e.Shuffle {
				kind = "shuffle"
			}
			fmt.Printf("  %s@%d  <-[%s]-  %s@%d\n", key.Role, key.Iter, kind, e.Parent.Role, e.Parent.Iter)
		}
	}
}

// emitDOT renders the role-merged lineage (the Fig. 8 view) as DOT:
// one node per role, one edge per distinct (parent role → child role)
// dependency, shuffle edges dashed.
func emitDOT(sk *blaze.Skeleton) {
	type edge struct {
		from, to string
		shuffle  bool
	}
	seen := map[edge]bool{}
	var edges []edge
	for key, n := range sk.Nodes {
		for _, e := range n.Parents {
			ed := edge{from: e.Parent.Role, to: key.Role, shuffle: e.Shuffle}
			if !seen[ed] {
				seen[ed] = true
				edges = append(edges, ed)
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	fmt.Println("digraph costlineage {")
	fmt.Println("  rankdir=LR;")
	fmt.Println("  node [shape=box, fontname=\"monospace\"];")
	for _, e := range edges {
		style := ""
		if e.shuffle {
			style = " [style=dashed, label=\"shuffle\"]"
		}
		fmt.Printf("  %q -> %q%s;\n", e.from, e.to, style)
	}
	fmt.Println("}")
}
