package main

// Stream mode (-stream): instead of serving HTTP, blazed runs one
// durable micro-batch stream in the foreground, checkpointing every
// window boundary into -checkpoint. With -crash-window k the run is
// killed at boundary k by the server-crash fault and the process exits
// with code 3 — the CI recovery smoke uses this as a deterministic
// stand-in for kill -9 mid-stream. A restart with -resume continues
// from the newest checkpoint, then re-runs the stream uninterrupted
// in-process as the reference and exits non-zero on any window
// mismatch, metric divergence, or event-log difference.
//
//	blazed -stream stream-pr -windows 6 -checkpoint /tmp/ck -crash-window 3   # exits 3 at the crash
//	blazed -stream stream-pr -windows 6 -checkpoint /tmp/ck -resume           # recovers, verifies, exits 0

import (
	"errors"
	"fmt"
	"os"
	"time"

	"blaze"
)

// streamModeConfig carries the -stream flag set into runStreamMode.
type streamModeConfig struct {
	workload    string
	windows     int
	executors   int
	memory      int64
	parallelism int
	scale       float64
	checkpoint  string
	crashWindow int
	resume      bool
}

func (c streamModeConfig) streamConfig(dir string, crashWindow int, log, recLog *blaze.EventLog) blaze.StreamConfig {
	return blaze.StreamConfig{
		Workload:          blaze.StreamWorkloadID(c.workload),
		Windows:           c.windows,
		Scale:             c.scale,
		Executors:         c.executors,
		Parallelism:       c.parallelism,
		MemoryPerExecutor: c.memory,
		EventLog:          log,
		ColdSolveVerify:   true,
		CheckpointDir:     dir,
		CrashWindow:       crashWindow,
		RecoveryLog:       recLog,
	}
}

// runStreamMode executes the stream (or its resume) and exits the
// process: 0 on success, 1 on error or verification failure, 3 when the
// injected crash killed the run (the expected outcome of -crash-window).
func runStreamMode(c streamModeConfig) {
	if c.checkpoint == "" {
		fmt.Fprintln(os.Stderr, "blazed: -stream requires -checkpoint")
		os.Exit(1)
	}
	log := blaze.NewEventLog()
	if !c.resume {
		start := time.Now()
		res, err := blaze.RunStream(c.streamConfig(c.checkpoint, c.crashWindow, log, nil))
		if errors.Is(err, blaze.ErrSessionCrashed) {
			fmt.Fprintf(os.Stderr, "blazed: stream crashed at window boundary %d (injected); resume with -resume\n", c.crashWindow)
			os.Exit(3)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("stream %s: %d windows complete in %v (wall), act %v, %d checkpoint(s) written\n",
			c.workload, len(res.Windows), time.Since(start).Round(time.Millisecond),
			res.ACT().Round(time.Millisecond), len(res.Checkpoints))
		return
	}

	recLog := blaze.NewEventLog()
	start := time.Now()
	res, err := blaze.ResumeStream(c.streamConfig(c.checkpoint, 0, log, recLog))
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazed: resume: %v\n", err)
		os.Exit(1)
	}
	resumeWall := time.Since(start)
	var resumedAt int
	for _, e := range recLog.Events() {
		if e.Kind == "session_resumed" {
			resumedAt = e.Window
		}
	}

	// Reference: the identical stream run uninterrupted, no durability.
	refLog := blaze.NewEventLog()
	ref, err := blaze.RunStream(c.streamConfig("", 0, refLog, nil))
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazed: reference run: %v\n", err)
		os.Exit(1)
	}

	mismatches := 0
	if len(res.Windows) != len(ref.Windows) {
		fmt.Fprintf(os.Stderr, "blazed: resumed run has %d windows, reference %d\n", len(res.Windows), len(ref.Windows))
		mismatches++
	} else {
		for i := range ref.Windows {
			if !ref.Windows[i].EqualDeterministic(res.Windows[i]) {
				fmt.Fprintf(os.Stderr, "blazed: window %d stats diverge from reference\n", i+1)
				mismatches++
			}
		}
	}
	if !blaze.MetricsEqualDeterministic(ref.Metrics, res.Metrics) {
		fmt.Fprintln(os.Stderr, "blazed: final metrics diverge from reference")
		mismatches++
	}
	le, lr := log.Events(), refLog.Events()
	if len(le) != len(lr) {
		fmt.Fprintf(os.Stderr, "blazed: event log length %d, reference %d\n", len(le), len(lr))
		mismatches++
	} else {
		for i := range lr {
			if le[i] != lr[i] {
				fmt.Fprintf(os.Stderr, "blazed: event %d diverges from reference\n", i)
				mismatches++
				break
			}
		}
	}

	fmt.Printf("stream %s: resumed from boundary %d, %d windows complete in %v (wall), %d window mismatch(es)\n",
		c.workload, resumedAt, len(res.Windows), resumeWall.Round(time.Millisecond), mismatches)
	if mismatches != 0 {
		os.Exit(1)
	}
}
