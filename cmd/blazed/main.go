// Command blazed is the multi-tenant Blaze job server daemon: one
// long-lived process, one shared executor pool, one shared cache, many
// concurrent applications submitted over HTTP. Tenants get fair-share
// scheduling (weighted round-robin over jobs), per-tenant memory quotas
// enforced at block admission, and — with -arbitrate — cluster-wide
// cache arbitration re-running the Blaze ILP across every admitted
// session's candidate set.
//
// Usage:
//
//	blazed -addr :8080 -executors 8 -memory 1048576 \
//	    -tenants "analytics:2:262144,ml:1:131072" -arbitrate
//
// API:
//
//	POST   /api/v1/jobs   {"tenant","system","workload","scale",...} -> {"id",...}
//	GET    /api/v1/jobs/{id}                                         -> status + metrics
//	DELETE /api/v1/jobs/{id}                                         -> cancel
//	GET    /api/v1/stats                                             -> server stats
//	GET    /healthz                                                  -> ok
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"blaze"
)

// jobRequest is the POST /api/v1/jobs payload. Zero values select the
// same defaults as blaze.RunConfig.
type jobRequest struct {
	Tenant       string  `json:"tenant"`
	System       string  `json:"system"`
	Workload     string  `json:"workload"`
	Scale        float64 `json:"scale,omitempty"`
	ProfileScale float64 `json:"profile_scale,omitempty"`
	DiskCapacity int64   `json:"disk_capacity,omitempty"`
	Parallelism  int     `json:"parallelism,omitempty"`
	// Resilience is the knob string ParseResilience accepts
	// ("retries=3,backoff=2ms,...").
	Resilience string `json:"resilience,omitempty"`
	// FaultClasses is the class list ParseFaultClasses accepts; set it
	// to attach a fault injector with FaultSeed.
	FaultClasses string `json:"fault_classes,omitempty"`
	FaultSeed    int64  `json:"fault_seed,omitempty"`
}

// jobStatus is the GET /api/v1/jobs/{id} response.
type jobStatus struct {
	ID       int    `json:"id"`
	Tenant   string `json:"tenant"`
	System   string `json:"system"`
	Workload string `json:"workload"`
	State    string `json:"state"` // running | done | failed | cancelled
	Error    string `json:"error,omitempty"`
	// ACTMillis and the counters are filled once done.
	ACTMillis  int64 `json:"act_ms,omitempty"`
	CacheHits  int   `json:"cache_hits,omitempty"`
	DiskHits   int   `json:"disk_hits,omitempty"`
	Misses     int   `json:"misses,omitempty"`
	Evictions  int   `json:"evictions,omitempty"`
	QuotaRejns int   `json:"quota_rejections,omitempty"`
}

// daemon tracks submitted jobs by id.
type daemon struct {
	srv  *blaze.Server
	mu   sync.Mutex
	jobs map[int]*trackedJob
}

type trackedJob struct {
	handle   *blaze.JobHandle
	system   string
	workload string
}

func parseTenants(spec string) ([]blaze.TenantConfig, error) {
	if spec == "" {
		return nil, nil
	}
	var out []blaze.TenantConfig
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		tc := blaze.TenantConfig{Name: parts[0]}
		if len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("tenant %q: want name[:weight[:quota]]", item)
		}
		if len(parts) > 1 && parts[1] != "" {
			w, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad weight: %v", item, err)
			}
			tc.Weight = w
		}
		if len(parts) > 2 && parts[2] != "" {
			q, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad quota: %v", item, err)
			}
			tc.MemoryQuota = q
		}
		out = append(out, tc)
	}
	return out, nil
}

func (d *daemon) submit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	spec := blaze.JobSpec{
		Tenant:       req.Tenant,
		System:       blaze.SystemID(req.System),
		Workload:     blaze.WorkloadID(req.Workload),
		Scale:        req.Scale,
		ProfileScale: req.ProfileScale,
		DiskCapacity: req.DiskCapacity,
		Parallelism:  req.Parallelism,
	}
	if req.Resilience != "" {
		res, err := blaze.ParseResilience(req.Resilience)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spec.Resilience = res
	}
	if req.FaultClasses != "" {
		classes, err := blaze.ParseFaultClasses(req.FaultClasses)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spec.Faults = &blaze.FaultConfig{Seed: req.FaultSeed, Classes: classes}
	}
	h, err := d.srv.Submit(context.Background(), spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, blaze.ErrServerClosed) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	d.mu.Lock()
	d.jobs[h.ID()] = &trackedJob{handle: h, system: req.System, workload: req.Workload}
	d.mu.Unlock()
	writeJSON(w, http.StatusAccepted, jobStatus{
		ID: h.ID(), Tenant: h.Tenant(), System: req.System, Workload: req.Workload, State: "running",
	})
}

func (d *daemon) job(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	d.mu.Lock()
	tj := d.jobs[id]
	d.mu.Unlock()
	if tj == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if r.Method == http.MethodDelete {
		tj.handle.Cancel()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	st := jobStatus{
		ID: id, Tenant: tj.handle.Tenant(), System: tj.system, Workload: tj.workload, State: "running",
	}
	select {
	case <-tj.handle.Done():
		res, err := tj.handle.Result()
		switch {
		case errors.Is(err, blaze.ErrCancelled):
			st.State = "cancelled"
		case err != nil:
			st.State = "failed"
			st.Error = err.Error()
		default:
			st.State = "done"
			m := res.Metrics
			st.ACTMillis = res.ACT().Milliseconds()
			st.CacheHits, st.DiskHits, st.Misses = m.CacheHits, m.DiskHits, m.Misses
			st.Evictions = m.Evictions
			st.QuotaRejns = m.QuotaRejections
		}
	default:
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *daemon) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.srv.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	executors := flag.Int("executors", 8, "executors in the shared pool")
	cores := flag.Int("cores", 1, "task slots per executor")
	memory := flag.Int64("memory", 1<<20, "memory-store capacity per executor in bytes")
	parallelism := flag.Int("parallelism", 0, "default engine parallelism per job (0 = all CPUs)")
	tenantSpec := flag.String("tenants", "", "tenant set: name[:weight[:quota-bytes]],... (empty = open admission)")
	maxActive := flag.Int("max-active", 0, "bound on concurrently active sessions (0 = unbounded)")
	arbitrate := flag.Bool("arbitrate", false, "re-run each Blaze job-start ILP across all admitted sessions")
	events := flag.String("events", "", "write the server's session/arbitration event log to this path on shutdown")
	stream := flag.String("stream", "", "run one durable micro-batch stream in the foreground instead of serving HTTP (stream-pr, stream-kmeans)")
	windows := flag.Int("windows", 6, "stream mode: number of micro-batch windows")
	scale := flag.Float64("scale", 0.5, "stream mode: per-window input scale")
	checkpointDir := flag.String("checkpoint", "", "stream mode: durable checkpoint directory (required with -stream)")
	crashWindow := flag.Int("crash-window", 0, "stream mode: kill the session at this window boundary and exit 3 (0 = never)")
	resume := flag.Bool("resume", false, "stream mode: resume from the newest checkpoint, verify against an uninterrupted reference run")
	flag.Parse()

	if *stream != "" {
		runStreamMode(streamModeConfig{
			workload:    *stream,
			windows:     *windows,
			executors:   *executors,
			memory:      *memory,
			parallelism: *parallelism,
			scale:       *scale,
			checkpoint:  *checkpointDir,
			crashWindow: *crashWindow,
			resume:      *resume,
		})
		return
	}

	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazed: %v\n", err)
		os.Exit(1)
	}
	var log *blaze.EventLog
	if *events != "" {
		log = blaze.NewEventLog()
	}
	srv, err := blaze.NewServer(blaze.ServerConfig{
		Executors:         *executors,
		Cores:             *cores,
		MemoryPerExecutor: *memory,
		Parallelism:       *parallelism,
		Tenants:           tenants,
		MaxActiveSessions: *maxActive,
		Arbitrate:         *arbitrate,
		EventLog:          log,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazed: %v\n", err)
		os.Exit(1)
	}

	d := &daemon{srv: srv, jobs: make(map[int]*trackedJob)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", d.submit)
	mux.HandleFunc("/api/v1/jobs/", d.job)
	mux.HandleFunc("GET /api/v1/stats", d.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	hsrv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "blazed: shutting down (draining active jobs)")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hsrv.Shutdown(ctx)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "blazed: drain deadline hit, jobs cancelled: %v\n", err)
		}
		if log != nil {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "blazed: %v\n", err)
				return
			}
			if err := log.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "blazed: %v\n", err)
			}
			f.Close()
		}
	}()

	fmt.Fprintf(os.Stderr, "blazed: serving on %s (%d executors × %d bytes, %d tenant(s), arbitrate=%v)\n",
		*addr, *executors, *memory, len(tenants), *arbitrate)
	if err := hsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "blazed: %v\n", err)
		os.Exit(1)
	}
	<-done
}
