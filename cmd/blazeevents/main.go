// Command blazeevents analyzes a JSON-lines event log written by
// blazerun -events: per-job scheduler/cache activity and per-dataset
// cache lifecycles — the audit view of the caching decisions.
//
// Usage:
//
//	blazerun -system blaze -workload pr -events /tmp/pr.jsonl
//	blazeevents /tmp/pr.jsonl
package main

import (
	"fmt"
	"os"
	"sort"

	"blaze"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: blazeevents <log.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazeevents: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	log, err := blaze.ReadEventLog(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazeevents: %v\n", err)
		os.Exit(1)
	}
	sum := blaze.SummarizeEventLog(log)

	fmt.Printf("%d events, %d jobs\n\n", log.Len(), len(sum.Jobs))
	fmt.Printf("%-6s %12s %8s %8s %8s %8s %8s %8s %8s\n",
		"job", "duration", "tasks", "hits", "diskhit", "recomp", "admit", "spill", "drop")
	for _, j := range sum.Jobs {
		fmt.Printf("%-6d %12v %8d %8d %8d %8d %8d %8d %8d\n",
			j.Job, j.End-j.Start, j.Tasks, j.Hits, j.DiskHits, j.Recomputes, j.Admitted, j.Spilled, j.Dropped)
	}

	ids := make([]int, 0, len(sum.Datasets))
	for id := range sum.Datasets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("\n%-20s %8s %8s %8s %8s %12s %12s\n",
		"dataset", "admit", "spill", "drop", "hits", "bytesAdmit", "bytesSpill")
	for _, id := range ids {
		d := sum.Datasets[id]
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("dataset-%d", id)
		}
		fmt.Printf("%-20s %8d %8d %8d %8d %12d %12d\n",
			name, d.Admitted, d.Spilled, d.Dropped, d.Hits, d.BytesAdmitted, d.BytesSpilled)
	}
}
