// Command blazerun executes one workload under one caching system and
// reports its metrics — the building block the figures aggregate.
//
// Usage:
//
//	blazerun -system blaze -workload pr
//	blazerun -system spark-memdisk -workload svdpp -executors 4 -frac 0.4
//	blazerun -system spark-mem -workload pr -faults shuffle -fault-every 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blaze"
)

func main() {
	system := flag.String("system", "blaze", "caching system: spark-mem, spark-memdisk, spark-alluxio, lrc, mrd, lrc-mem, mrd-mem, autocache, costaware, blaze, blaze-mem, blaze-noprofile")
	workload := flag.String("workload", "pr", "workload: pr, cc, lr, kmeans, gbt, svdpp")
	executors := flag.Int("executors", 8, "number of simulated executors")
	frac := flag.Float64("frac", 0, "memory fraction of the calibrated peak (0 = workload default)")
	scale := flag.Float64("scale", 1.0, "input scale factor")
	events := flag.String("events", "", "write a JSON-lines event log to this path and print a per-job summary")
	faultSpec := flag.String("faults", "", "inject faults: comma-separated classes (exec, block, shuffle, exec-death, bucket, task-flake, fetch-flake, straggler, permanent, transient, all); empty = none")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault injector")
	faultEvery := flag.Int("fault-every", 1, "inject one fault per N boundaries")
	faultStage := flag.Bool("fault-stage", false, "inject at stage boundaries instead of job boundaries")
	faultMax := flag.Int("fault-max", 0, "cap on injected permanent faults (0 = unlimited; transient classes are exempt)")
	taskEvery := flag.Int("task-every", 0, "fire one transient fault per N task/fetch attempts (0 = default 8)")
	stragglerFactor := flag.Float64("straggler-factor", 0, "slowdown multiplier for injected stragglers (0 = default 4)")
	stragglerWindow := flag.Int("straggler-window", 0, "tasks a straggler stays slow for (0 = default 3)")
	resSpec := flag.String("resilience", "", "resilience knobs: retries=3,fetch-retries=2,backoff=2ms,spec=2,blacklist=3,cooldown=2")
	flag.Parse()

	var log *blaze.EventLog
	if *events != "" {
		log = blaze.NewEventLog()
	}
	var fcfg *blaze.FaultConfig
	if *faultSpec != "" {
		classes, err := blaze.ParseFaultClasses(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazerun: %v\n", err)
			os.Exit(1)
		}
		fcfg = &blaze.FaultConfig{
			Seed:            *faultSeed,
			Classes:         classes,
			Every:           *faultEvery,
			AtStageEnd:      *faultStage,
			MaxFaults:       *faultMax,
			TaskEvery:       *taskEvery,
			StragglerFactor: *stragglerFactor,
			StragglerWindow: *stragglerWindow,
		}
	}
	res, err := blaze.ParseResilience(*resSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazerun: %v\n", err)
		os.Exit(1)
	}
	r, err := blaze.Run(blaze.RunConfig{
		System:         blaze.SystemID(*system),
		Workload:       blaze.WorkloadID(*workload),
		Executors:      *executors,
		MemoryFraction: *frac,
		Scale:          *scale,
		EventLog:       log,
		Faults:         fcfg,
		Resilience:     res,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazerun: %v\n", err)
		os.Exit(1)
	}
	m := r.Metrics
	b := m.TotalBreakdown()
	fmt.Printf("system            %s\n", r.System)
	fmt.Printf("workload          %s\n", r.Workload)
	fmt.Printf("memory/executor   %d bytes\n", r.MemoryPerExecutor)
	fmt.Printf("ACT               %v\n", m.ACT.Round(time.Microsecond))
	fmt.Printf("  profiling       %v\n", m.ProfilingTime)
	fmt.Printf("accumulated task time\n")
	fmt.Printf("  compute         %v (recompute %v)\n", b.Compute.Round(time.Microsecond), b.Recompute.Round(time.Microsecond))
	fmt.Printf("  shuffle         %v\n", b.Shuffle.Round(time.Microsecond))
	fmt.Printf("  disk I/O        %v\n", b.DiskIO.Round(time.Microsecond))
	fmt.Printf("cache             hits=%d diskHits=%d misses=%d\n", m.CacheHits, m.DiskHits, m.Misses)
	fmt.Printf("evictions         %d (to disk %d), unpersists %d\n", m.Evictions, m.EvictionsToDisk, m.Unpersists)
	fmt.Printf("disk              written=%d bytes, peak=%d bytes\n", m.DiskBytesWritten, m.DiskPeakBytes)
	fmt.Printf("scheduler         jobs=%d stages=%d skipped=%d\n", m.Jobs, m.RanStages, m.SkippedStages)
	if m.FaultsInjected > 0 {
		fmt.Printf("faults            injected=%d blocksLost=%d bytesLost=%d shufflesLost=%d recovery=%v\n",
			m.FaultsInjected, m.FaultBlocksLost, m.FaultBytesLost, m.FaultShufflesLost,
			m.TotalFaultRecovery().Round(time.Microsecond))
		if m.ExecutorDeaths > 0 {
			fmt.Printf("  exec deaths     %d (migrated %d partitions, rebalance %v)\n",
				m.ExecutorDeaths, m.MigratedPartitions, m.RebalanceTime.Round(time.Microsecond))
		}
		if m.FaultMapOutputsLost > 0 {
			fmt.Printf("  map outputs     lost=%d (buckets=%d, %d bytes)\n",
				m.FaultMapOutputsLost, m.FaultBucketsLost, m.FaultShuffleBytesLost)
		}
		for _, class := range blaze.AllFaultClasses() {
			if d, ok := m.FaultRecoveryByClass[class.String()]; ok {
				fmt.Printf("  recovery[%s] %v\n", class, d.Round(time.Microsecond))
			}
		}
	}
	if m.TaskRetries+m.FetchRetries > 0 {
		fmt.Printf("retries           task=%d fetch=%d backoff=%v\n",
			m.TaskRetries, m.FetchRetries, m.RetryBackoffTime.Round(time.Microsecond))
	}
	if m.SpeculativeLaunches > 0 {
		fmt.Printf("speculation       launched=%d won=%d\n", m.SpeculativeLaunches, m.SpeculativeWins)
	}
	if m.StragglerSlowdownTime > 0 {
		fmt.Printf("stragglers        slowdown=%v\n", m.StragglerSlowdownTime.Round(time.Microsecond))
	}
	if m.BlacklistedExecutors > 0 {
		fmt.Printf("blacklist         episodes=%d\n", m.BlacklistedExecutors)
	}
	// ILPSolveTime is wall-clock (the one nondeterministic metric) and
	// deliberately not printed: blazerun's stdout must be bit-identical
	// across repeated runs.
	if m.ILPSolves > 0 {
		fmt.Printf("ILP               solves=%d nodes=%d fallbacks=%d reused=%d\n",
			m.ILPSolves, m.ILPNodes, m.ILPFallbacks, m.ILPReused)
	}
	if log != nil {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazerun: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := log.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "blazerun: %v\n", err)
			os.Exit(1)
		}
		sum := blaze.SummarizeEventLog(log)
		fmt.Printf("\nevent log         %d events -> %s\n", log.Len(), *events)
		fmt.Printf("%-6s %10s %8s %8s %8s %8s %8s\n", "job", "tasks", "hits", "diskhits", "recomp", "admit", "spill")
		for _, j := range sum.Jobs {
			fmt.Printf("%-6d %10d %8d %8d %8d %8d %8d\n", j.Job, j.Tasks, j.Hits, j.DiskHits, j.Recomputes, j.Admitted, j.Spilled)
		}
	}
}
