package main

// The storage benchmark (-storage): runs real-bytes mode on inputs that
// exceed cluster memory and reports measured wall-clock storage work
// next to the virtual time the cost model charged for the same
// operations — the reproduction's modeled-vs-measured experiment. The
// realistic DefaultCostParams throughputs are used (NOT the scaled-down
// EvalParams), so a ratio near 1 means the model's device speeds match
// this machine; CI only asserts the ratio stays within a wide sanity
// band, since container disks and CPUs vary widely.

import (
	"encoding/json"
	"fmt"
	"os"

	"blaze"
)

// Storage-soak input shape: incompressible blobs totalling ~6 MB at
// scale 1, against a 4×256 KB cluster — the working set exceeds memory
// 6×, so the run must spill, write real files, and read them back.
const (
	soakParts        = 32
	soakBlobsPerPart = 4
	soakBlobBytes    = 48 * 1024
	soakSeed         = 7
	soakIters        = 3

	soakExecutors = 4
	soakMemory    = 256 * 1024
)

// soakSpec derives the blob set for a scale factor.
func soakSpec(scale float64) blaze.BlobSpec {
	n := int(float64(soakParts*soakBlobsPerPart) * scale)
	if n < soakParts {
		n = soakParts
	}
	return blaze.BlobSpec{Seed: soakSeed, N: n, BlobBytes: soakBlobBytes}
}

// soakInputBytes sums the real payload sizes of the blob set.
func soakInputBytes(scale float64) int64 {
	spec := soakSpec(scale)
	var total int64
	for i := int64(0); i < int64(spec.N); i++ {
		total += int64(spec.Size(i))
	}
	return total
}

// registerStorageSoak registers the "storagesoak" workload: a cached
// blob dataset scanned repeatedly, so every iteration re-reads blocks
// that no longer fit in memory (decode on memory hits, file reads on
// spilled blocks).
func registerStorageSoak() {
	blaze.RegisterValueType([]byte{})
	driver := func(ctx *blaze.Context, scale float64) {
		spec := soakSpec(scale)
		blobs := ctx.Source("soak-blobs@0", soakParts, func(part int) []blaze.Record {
			var out []blaze.Record
			for i := int64(part); i < int64(spec.N); i += int64(soakParts) {
				out = append(out, blaze.Record{Key: i, Value: spec.Blob(i)})
			}
			return out
		}).Cache()
		for it := 0; it < soakIters; it++ {
			sums := blobs.MapPartitions(fmt.Sprintf("soak-scan@%d", it), blaze.OpLight,
				func(part int, in []blaze.Record) []blaze.Record {
					var total int64
					for _, r := range in {
						total += int64(len(r.Value.([]byte)))
					}
					return []blaze.Record{{Key: int64(part), Value: total}}
				})
			sums.Count()
		}
		blobs.Unpersist()
	}
	if err := blaze.RegisterWorkload(blaze.WorkloadSpec{
		ID:    "storagesoak",
		Title: "StorageSoak",
		Plain: driver,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
}

// storageCategory is one row of a run's measured-vs-modeled table.
type storageCategory struct {
	Name       string  `json:"name"`
	Ops        int     `json:"ops"`
	Bytes      int64   `json:"bytes"`
	MeasuredMs float64 `json:"measured_ms"`
	ModeledMs  float64 `json:"modeled_ms"`
	// Ratio is measured/modeled; 0 when the model charged nothing.
	Ratio float64 `json:"ratio,omitempty"`
}

// calibratedParams reports the throughputs re-derived from this run's
// measurements (costmodel.Params.Calibrated), in bytes/sec.
type calibratedParams struct {
	SerializeBps float64 `json:"serialize_bps"`
	DiskReadBps  float64 `json:"disk_read_bps"`
	DiskWriteBps float64 `json:"disk_write_bps"`
}

type storageEntry struct {
	Workload        string            `json:"workload"`
	System          string            `json:"system"`
	ClusterMemBytes int64             `json:"cluster_mem_bytes"`
	InputBytes      int64             `json:"input_bytes,omitempty"`
	ExceedsMemory   bool              `json:"exceeds_memory"`
	FilesWritten    int               `json:"files_written"`
	FileBytesPeak   int64             `json:"file_bytes_peak"`
	DecodeCacheHits int               `json:"decode_cache_hits"`
	Categories      []storageCategory `json:"categories"`
	Calibrated      *calibratedParams `json:"calibrated,omitempty"`
}

type storageReport struct {
	Entries []storageEntry `json:"entries"`
	Note    string         `json:"note"`
}

// storageRun executes one workload/system in real-bytes mode and folds
// the meter snapshot into a report entry.
func storageRun(wl blaze.WorkloadID, sys blaze.SystemID, scale float64, inputBytes, memPerExec int64) storageEntry {
	params := blaze.DefaultCostParams()
	res, err := blaze.Run(blaze.RunConfig{
		System:            sys,
		Workload:          wl,
		Executors:         soakExecutors,
		Scale:             scale,
		MemoryPerExecutor: memPerExec,
		CostParams:        params,
		RealBytes:         true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %s/%s: %v\n", wl, sys, err)
		os.Exit(1)
	}
	st := res.Storage
	if st == nil {
		fmt.Fprintf(os.Stderr, "blazebench: %s/%s: RealBytes run returned no storage measurements\n", wl, sys)
		os.Exit(1)
	}
	clusterMem := res.MemoryPerExecutor * int64(soakExecutors)
	e := storageEntry{
		Workload:        string(wl),
		System:          string(sys),
		ClusterMemBytes: clusterMem,
		InputBytes:      inputBytes,
		ExceedsMemory:   inputBytes > clusterMem,
		FilesWritten:    st.FilesWritten,
		FileBytesPeak:   st.FileBytesPeak,
		DecodeCacheHits: st.DecodeCacheHits,
	}
	for _, c := range st.Categories() {
		e.Categories = append(e.Categories, storageCategory{
			Name:       c.Category.String(),
			Ops:        c.Stats.Ops,
			Bytes:      c.Stats.Bytes,
			MeasuredMs: float64(c.Stats.Wall.Microseconds()) / 1000,
			ModeledMs:  float64(c.Stats.Modeled.Microseconds()) / 1000,
			Ratio:      c.Stats.Ratio(),
		})
	}
	cal := params.Calibrated(blaze.CostObserved{
		SerializeBytes: st.MemEncode.Bytes + st.MemDecode.Bytes,
		SerializeWall:  st.MemEncode.Wall + st.MemDecode.Wall,
		DiskWriteBytes: st.DiskWrite.Bytes,
		DiskWriteWall:  st.DiskWrite.Wall,
		DiskReadBytes:  st.DiskRead.Bytes,
		DiskReadWall:   st.DiskRead.Wall,
	})
	if cal.SerializeBps != params.SerializeBps || cal.DiskReadBps != params.DiskReadBps ||
		cal.DiskWriteBps != params.DiskWriteBps {
		e.Calibrated = &calibratedParams{
			SerializeBps: cal.SerializeBps,
			DiskReadBps:  cal.DiskReadBps,
			DiskWriteBps: cal.DiskWriteBps,
		}
	}
	return e
}

// runStorageBench runs the real-bytes storage experiment and writes the
// JSON report: the out-of-core storage soak plus two evaluation
// workloads (PR under MRD exercises the promote/prefetch path, SVD++
// carries the heaviest serialization) at their default memory regimes.
func runStorageBench(path string, scale float64) {
	registerStorageSoak()
	rep := storageReport{
		Note: "real-bytes mode with DefaultCostParams device throughputs; ratio = measured wall / modeled virtual per category, expected within a wide band of 1 on SSD-class hosts",
	}
	rep.Entries = append(rep.Entries,
		storageRun("storagesoak", blaze.SysSparkMemDisk, scale, soakInputBytes(scale), soakMemory),
		storageRun(blaze.PR, blaze.SysMRD, 0.3, 0, 0),
		storageRun(blaze.SVDPP, blaze.SysSparkMemDisk, 0.3, 0, 0),
	)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	for _, e := range rep.Entries {
		fmt.Printf("%-12s %-14s mem %8d  input %8d  exceeds %-5v  files %4d  cache-hits %5d\n",
			e.Workload, e.System, e.ClusterMemBytes, e.InputBytes, e.ExceedsMemory,
			e.FilesWritten, e.DecodeCacheHits)
		for _, c := range e.Categories {
			if c.Ops == 0 {
				continue
			}
			fmt.Printf("  %-11s ops %6d  bytes %10d  measured %9.3fms  modeled %9.3fms  ratio %.3f\n",
				c.Name, c.Ops, c.Bytes, c.MeasuredMs, c.ModeledMs, c.Ratio)
		}
	}
	fmt.Printf("(report written to %s)\n", path)
}
