package main

// The job-server benchmark: does one shared, holistically-arbitrated
// Blaze cache beat static per-tenant partitioning of the same memory?
//
// Both arms run the identical multi-tenant scenario — three tenants
// (pr, kmeans, svdpp), each submitting its workload as concurrent Blaze
// sessions against one pool. The "static" arm models the conventional
// deployment: the pool's memory is hard-partitioned into equal
// per-tenant quotas and every session optimizes alone. The "shared" arm
// is the Blaze job server: no partitions, and cluster-wide arbitration
// re-runs each job-start ILP across the union of all admitted sessions'
// candidates. The figure of merit is aggregate ACT — the sum of every
// session's application completion time on the shared virtual timeline.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"blaze"
)

// serverBenchTenant is one tenant of the scenario.
type serverBenchTenant struct {
	name     string
	workload blaze.WorkloadID
}

var serverBenchTenants = []serverBenchTenant{
	{"pr", blaze.PR},
	{"kmeans", blaze.KMeans},
	{"svdpp", blaze.SVDPP},
}

// serverArmResult is one arm's outcome.
type serverArmResult struct {
	AggregateACTMs int64            `json:"aggregate_act_ms"`
	PerTenantACTMs map[string]int64 `json:"per_tenant_act_ms"`
	Arbitrations   int              `json:"arbitrations"`
	QuotaPeaks     map[string]int64 `json:"quota_peaks,omitempty"`
}

// serverBenchReport is BENCH_server.json.
type serverBenchReport struct {
	Executors         int     `json:"executors"`
	MemoryPerExecutor int64   `json:"memory_per_executor"`
	Scale             float64 `json:"scale"`
	SessionsPerTenant int     `json:"sessions_per_tenant"`
	// Static hard-partitions the pool into equal per-tenant quotas with
	// no arbitration; Shared is the Blaze job server.
	Static serverArmResult `json:"static"`
	Shared serverArmResult `json:"shared"`
	// Speedup is static aggregate ACT over shared aggregate ACT.
	Speedup float64 `json:"speedup"`
}

// runServerArm executes the scenario on one server configuration and
// returns the arm's accounting.
func runServerArm(executors int, mem int64, scale float64, perTenant int, static bool) (serverArmResult, error) {
	cfg := blaze.ServerConfig{
		Executors:         executors,
		MemoryPerExecutor: mem,
		Arbitrate:         !static,
	}
	for _, tn := range serverBenchTenants {
		tc := blaze.TenantConfig{Name: tn.name}
		if static {
			tc.MemoryQuota = int64(executors) * mem / int64(len(serverBenchTenants))
		}
		cfg.Tenants = append(cfg.Tenants, tc)
	}
	srv, err := blaze.NewServer(cfg)
	if err != nil {
		return serverArmResult{}, err
	}
	defer srv.Close()

	var handles []*blaze.JobHandle
	for round := 0; round < perTenant; round++ {
		for _, tn := range serverBenchTenants {
			h, err := srv.Submit(context.Background(), blaze.JobSpec{
				Tenant:   tn.name,
				System:   blaze.SysBlaze,
				Workload: tn.workload,
				Scale:    scale,
			})
			if err != nil {
				return serverArmResult{}, err
			}
			handles = append(handles, h)
		}
	}
	for _, h := range handles {
		if err := h.Wait(); err != nil {
			return serverArmResult{}, fmt.Errorf("job %d (%s): %w", h.ID(), h.Tenant(), err)
		}
	}

	st := srv.Stats()
	out := serverArmResult{
		PerTenantACTMs: make(map[string]int64),
		Arbitrations:   st.Arbitrations,
	}
	var agg time.Duration
	for _, ts := range st.Tenants {
		agg += ts.TotalACT
		out.PerTenantACTMs[ts.Name] = ts.TotalACT.Milliseconds()
		if ts.QuotaLimit > 0 {
			if out.QuotaPeaks == nil {
				out.QuotaPeaks = make(map[string]int64)
			}
			out.QuotaPeaks[ts.Name] = ts.QuotaPeak
			if ts.QuotaPeak > ts.QuotaLimit {
				return serverArmResult{}, fmt.Errorf("tenant %s exceeded its quota: peak %d > limit %d", ts.Name, ts.QuotaPeak, ts.QuotaLimit)
			}
		}
	}
	out.AggregateACTMs = agg.Milliseconds()
	return out, nil
}

// runServerBench runs both arms and writes the report.
func runServerBench(path string, executors int, scale float64) {
	// Size the pool for the heaviest tenant's calibrated appetite: a
	// shared cache can give the whole pool to whichever blocks matter
	// most, a static partition cannot.
	var mem int64
	for _, tn := range serverBenchTenants {
		res, err := blaze.Run(blaze.RunConfig{
			System: blaze.SysSparkMemDisk, Workload: tn.workload,
			Executors: executors, Scale: scale,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: calibrating %s: %v\n", tn.workload, err)
			os.Exit(1)
		}
		if res.MemoryPerExecutor > mem {
			mem = res.MemoryPerExecutor
		}
	}

	const perTenant = 2
	static, err := runServerArm(executors, mem, scale, perTenant, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: static arm: %v\n", err)
		os.Exit(1)
	}
	shared, err := runServerArm(executors, mem, scale, perTenant, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: shared arm: %v\n", err)
		os.Exit(1)
	}

	report := serverBenchReport{
		Executors:         executors,
		MemoryPerExecutor: mem,
		Scale:             scale,
		SessionsPerTenant: perTenant,
		Static:            static,
		Shared:            shared,
	}
	if shared.AggregateACTMs > 0 {
		report.Speedup = float64(static.AggregateACTMs) / float64(shared.AggregateACTMs)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("job-server bench: static %d ms vs shared %d ms aggregate ACT (%.2fx, %d arbitrations) -> %s\n",
		report.Static.AggregateACTMs, report.Shared.AggregateACTMs, report.Speedup, shared.Arbitrations, path)
}
