package main

// The crash-recovery benchmark (-recovery): for every registered stream
// workload, measure what durability costs and what recovery buys. Each
// workload runs three ways — an uninterrupted durable run (checkpoint
// overhead per boundary), a durable run killed at the middle boundary,
// and the resume of that kill — plus a plain run as the bit-identity
// reference. The run fails (non-zero exit) if the resumed stream is not
// bit-identical to the uninterrupted one (window stats, final metrics,
// event log), if the post-resume plan repair disagreed with the
// from-scratch solve, or if no checkpoints were actually written; CI
// runs this as the recovery smoke job.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"blaze"
)

// checkpointRow is one committed boundary checkpoint's accounting.
type checkpointRow struct {
	Window int     `json:"window"`
	Blocks int     `json:"blocks"`
	Bytes  int64   `json:"bytes"`
	WallMs float64 `json:"wall_ms"`
}

// recoveryEntry is one stream workload's report row.
type recoveryEntry struct {
	Workload    string          `json:"workload"`
	Windows     int             `json:"windows"`
	CrashWindow int             `json:"crash_window"`
	Checkpoints []checkpointRow `json:"checkpoints"`
	// CheckpointMs is the total wall time spent writing checkpoints in
	// the uninterrupted durable run; UninterruptedMs its full wall time.
	CheckpointMs    float64 `json:"checkpoint_ms"`
	UninterruptedMs float64 `json:"uninterrupted_ms"`
	// RecoveryMs is the resume's wall time (replay + rehydrate + the
	// remaining live windows); ColdRerunMs a from-scratch re-run's.
	RecoveryMs  float64 `json:"recovery_ms"`
	ColdRerunMs float64 `json:"cold_rerun_ms"`
	// WindowMismatches counts per-window stat divergences between the
	// resumed run and the uninterrupted reference (must be 0).
	WindowMismatches int  `json:"window_mismatches"`
	MetricsMatch     bool `json:"metrics_match"`
	EventsMatch      bool `json:"events_match"`
	RepairSolves     int  `json:"repair_solves"`
	RepairMismatches int  `json:"repair_mismatches"`
}

type recoveryReport struct {
	Entries []recoveryEntry `json:"entries"`
	Note    string          `json:"note"`
}

func recoveryStreamConfig(wl blaze.StreamWorkloadID, windows, executors int, scale float64,
	dir string, crashWindow int, log, recLog *blaze.EventLog) blaze.StreamConfig {
	return blaze.StreamConfig{
		Workload:          wl,
		Windows:           windows,
		Scale:             scale,
		Executors:         executors,
		MemoryPerExecutor: 1 << 20,
		EventLog:          log,
		ColdSolveVerify:   true,
		CheckpointDir:     dir,
		CrashWindow:       crashWindow,
		RecoveryLog:       recLog,
	}
}

// runRecoveryBench executes the crash-recovery experiment and writes the
// JSON report.
func runRecoveryBench(path string, executors int, scale float64) {
	const windows = 6
	rep := recoveryReport{
		Note: "recovery = resume wall time from the mid-stream checkpoint (replay + state rehydrate + repair solve + remaining windows); cold_rerun = from-scratch wall time; window_mismatches compares the resumed run to the uninterrupted durable run and must be 0",
	}
	failed := false
	for _, wl := range blaze.AllStreamWorkloads() {
		crashAt := windows/2 + 1 // middle boundary, always >= 2

		// Uninterrupted durable run: the bit-identity reference and the
		// checkpoint-overhead measurement.
		baseLog := blaze.NewEventLog()
		dir, err := os.MkdirTemp("", "blaze-recovery-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		start := time.Now()
		base, err := blaze.RunStream(recoveryStreamConfig(wl, windows, executors, scale, dir, 0, baseLog, nil))
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %s: %v\n", wl, err)
			os.Exit(1)
		}
		uninterrupted := time.Since(start)

		e := recoveryEntry{
			Workload:        string(wl),
			Windows:         windows,
			CrashWindow:     crashAt,
			UninterruptedMs: float64(uninterrupted.Microseconds()) / 1000,
		}
		var ckWall time.Duration
		for _, ck := range base.Checkpoints {
			ckWall += ck.Wall
			e.Checkpoints = append(e.Checkpoints, checkpointRow{
				Window: ck.Window, Blocks: ck.Blocks, Bytes: ck.Bytes,
				WallMs: float64(ck.Wall.Microseconds()) / 1000,
			})
		}
		e.CheckpointMs = float64(ckWall.Microseconds()) / 1000

		// Crash at the middle boundary, then resume.
		crashDir, err := os.MkdirTemp("", "blaze-recovery-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(crashDir)
		_, err = blaze.RunStream(recoveryStreamConfig(wl, windows, executors, scale, crashDir, crashAt, blaze.NewEventLog(), nil))
		if !errors.Is(err, blaze.ErrSessionCrashed) {
			fmt.Fprintf(os.Stderr, "blazebench: %s: crash run returned %v, want session crash\n", wl, err)
			os.Exit(1)
		}
		resLog := blaze.NewEventLog()
		recLog := blaze.NewEventLog()
		start = time.Now()
		res, err := blaze.ResumeStream(recoveryStreamConfig(wl, windows, executors, scale, crashDir, 0, resLog, recLog))
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %s: resume: %v\n", wl, err)
			os.Exit(1)
		}
		e.RecoveryMs = float64(time.Since(start).Microseconds()) / 1000

		// Cold re-run: what recovery would cost without checkpoints.
		start = time.Now()
		if _, err := blaze.RunStream(recoveryStreamConfig(wl, windows, executors, scale, "", 0, blaze.NewEventLog(), nil)); err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %s: cold re-run: %v\n", wl, err)
			os.Exit(1)
		}
		e.ColdRerunMs = float64(time.Since(start).Microseconds()) / 1000

		// Bit-identity verification against the uninterrupted run.
		for i := range base.Windows {
			if i >= len(res.Windows) || !base.Windows[i].EqualDeterministic(res.Windows[i]) {
				e.WindowMismatches++
			}
		}
		if len(res.Windows) != len(base.Windows) {
			e.WindowMismatches += len(base.Windows) - len(res.Windows)
		}
		e.MetricsMatch = blaze.MetricsEqualDeterministic(base.Metrics, res.Metrics)
		be, re := baseLog.Events(), resLog.Events()
		e.EventsMatch = len(be) == len(re)
		for i := 0; e.EventsMatch && i < len(be); i++ {
			e.EventsMatch = be[i] == re[i]
		}
		e.RepairSolves = res.Metrics.RepairSolves
		e.RepairMismatches = res.Metrics.RepairMismatches
		rep.Entries = append(rep.Entries, e)

		switch {
		case e.WindowMismatches != 0 || !e.MetricsMatch || !e.EventsMatch:
			fmt.Fprintf(os.Stderr, "blazebench: %s: resumed run diverges (window mismatches %d, metrics match %v, events match %v)\n",
				wl, e.WindowMismatches, e.MetricsMatch, e.EventsMatch)
			failed = true
		case e.RepairSolves == 0:
			fmt.Fprintf(os.Stderr, "blazebench: %s: resume ran no plan-repair solves\n", wl)
			failed = true
		case e.RepairMismatches != 0:
			fmt.Fprintf(os.Stderr, "blazebench: %s: %d plan-repair/cold-solve disagreements\n", wl, e.RepairMismatches)
			failed = true
		case len(e.Checkpoints) == 0:
			fmt.Fprintf(os.Stderr, "blazebench: %s: durable run wrote no checkpoints\n", wl)
			failed = true
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	for _, e := range rep.Entries {
		fmt.Printf("%-14s windows %d crash@%d  ckpt %5.1fms/%d  uninterrupted %7.1fms  recovery %7.1fms  cold-rerun %7.1fms  mismatches %d  repair %d/%d\n",
			e.Workload, e.Windows, e.CrashWindow, e.CheckpointMs, len(e.Checkpoints),
			e.UninterruptedMs, e.RecoveryMs, e.ColdRerunMs,
			e.WindowMismatches, e.RepairSolves, e.RepairMismatches)
	}
	fmt.Printf("(report written to %s)\n", path)
	if failed {
		os.Exit(1)
	}
}
