// Command blazebench regenerates the tables and figures of the paper's
// evaluation (§7). Each figure is printed as an aligned text table with
// the same rows/series the paper plots.
//
// Usage:
//
//	blazebench -fig 9          # one figure (3,4,5,9,10,11,12,13,summary)
//	blazebench -fig all        # everything
//	blazebench -executors 8 -scale 1.0 -fig 11
//	blazebench -faults transient -resilience spec=2,blacklist=3 -workload pr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"blaze"
	"blaze/harness"
)

// parallelEntry is one row of the parallel speedup benchmark.
type parallelEntry struct {
	Workload   string  `json:"workload"`
	System     string  `json:"system"`
	SeqWallMs  float64 `json:"seq_wall_ms"`
	ParWallMs  float64 `json:"par_wall_ms"`
	Speedup    float64 `json:"speedup"`
	ActMatched bool    `json:"act_matched"`
}

type parallelReport struct {
	Cores       int     `json:"cores"`
	Parallelism int     `json:"parallelism"`
	Executors   int     `json:"executors"`
	Scale       float64 `json:"scale"`
	// SkippedSpeedupCheck is set when the host has fewer than 4 cores:
	// a speedup of ~1.0 is then expected and the CI smoke must not
	// apply its threshold. Machine-readable so tooling does not have to
	// parse the prose note.
	SkippedSpeedupCheck bool            `json:"skipped_speedup_check"`
	Entries             []parallelEntry `json:"entries"`
	Note                string          `json:"note"`
}

// wallClock runs one workload/system at the given parallelism and
// returns the best-of-n wall time plus the (virtual) ACT for the
// identity cross-check.
func wallClock(sys blaze.SystemID, wl blaze.WorkloadID, executors int, scale float64, par, n int) (time.Duration, time.Duration) {
	best := time.Duration(1<<63 - 1)
	var act time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		res, err := blaze.Run(blaze.RunConfig{
			System:      sys,
			Workload:    wl,
			Executors:   executors,
			Scale:       scale,
			Parallelism: par,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		act = res.ACT()
	}
	return best, act
}

// runParallelBench measures wall-clock speedup of multi-core stage
// execution (Parallelism=NumCPU vs 1) and writes the report as JSON.
// The virtual-time ACT must be identical at both settings — parallelism
// only changes how fast the simulation itself runs.
func runParallelBench(path string, executors int, scale float64) {
	cores := runtime.NumCPU()
	rep := parallelReport{
		Cores:               cores,
		Parallelism:         cores,
		Executors:           executors,
		Scale:               scale,
		SkippedSpeedupCheck: cores < 4,
		Note:                "speedup threshold applies only when cores >= 4; skipped_speedup_check reports whether this host is below that floor",
	}
	for _, wl := range []blaze.WorkloadID{blaze.PR, blaze.KMeans} {
		sys := blaze.SysSparkMemDisk
		seq, seqACT := wallClock(sys, wl, executors, scale, 1, 2)
		par, parACT := wallClock(sys, wl, executors, scale, cores, 2)
		rep.Entries = append(rep.Entries, parallelEntry{
			Workload:   string(wl),
			System:     string(sys),
			SeqWallMs:  float64(seq.Microseconds()) / 1000,
			ParWallMs:  float64(par.Microseconds()) / 1000,
			Speedup:    float64(seq) / float64(par),
			ActMatched: seqACT == parACT,
		})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	for _, e := range rep.Entries {
		fmt.Printf("%-10s %-14s seq %8.1fms  par %8.1fms  speedup %.2fx  act-match %v\n",
			e.Workload, e.System, e.SeqWallMs, e.ParWallMs, e.Speedup, e.ActMatched)
	}
	fmt.Printf("(%d cores; report written to %s)\n", cores, path)
}

// ilpEntry is one instance size of the optimizer benchmark.
type ilpEntry struct {
	Parts     int     `json:"parts"`
	Vars      int     `json:"vars"`
	BoundedMs float64 `json:"bounded_ms"`
	Nodes     int     `json:"nodes"`
	Optimal   bool    `json:"optimal"`
	DenseMs   float64 `json:"dense_ms,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

type ilpReport struct {
	Entries []ilpEntry `json:"entries"`
	Note    string     `json:"note"`
}

// runILPBench benchmarks the exact optimizer on the shared Blaze-shaped
// instances (blaze.ILPBenchProblem): wall time and branch-and-bound nodes of
// the bounded-variable warm-started solver at n ∈ {16, 32, 128, 256}
// partitions, against the dense reference solver where it is still
// tractable (n ≤ 32). The JSON report mirrors BENCH_parallel.json and
// feeds the CI smoke job.
func runILPBench(path string) {
	rep := ilpReport{
		Note: "bounded = bounded-variable simplex with warm-started branch and bound; dense = pre-rewrite reference solver (internal/ilp/dense.go), run only at sizes where it is tractable",
	}
	for _, parts := range []int{16, 32, 128, 256} {
		prob := blaze.ILPBenchProblem(parts, int64(parts))
		reps := 3
		if parts > 32 {
			reps = 1
		}
		var sol blaze.ILPSolution
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			s, err := blaze.ILPSolve(prob, blaze.ILPOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "blazebench: ilp n=%d: %v\n", parts, err)
				os.Exit(1)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			sol = s
		}
		e := ilpEntry{
			Parts:     parts,
			Vars:      3 * parts,
			BoundedMs: float64(best.Microseconds()) / 1000,
			Nodes:     sol.Nodes,
			Optimal:   sol.Optimal,
		}
		if parts <= 32 {
			dBest := time.Duration(1<<63 - 1)
			for i := 0; i < reps; i++ {
				start := time.Now()
				if _, err := blaze.ILPReferenceSolve(prob, blaze.ILPOptions{}); err != nil {
					fmt.Fprintf(os.Stderr, "blazebench: dense ilp n=%d: %v\n", parts, err)
					os.Exit(1)
				}
				if d := time.Since(start); d < dBest {
					dBest = d
				}
			}
			e.DenseMs = float64(dBest.Microseconds()) / 1000
			e.Speedup = float64(dBest) / float64(best)
		}
		rep.Entries = append(rep.Entries, e)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	for _, e := range rep.Entries {
		line := fmt.Sprintf("n=%-4d vars=%-4d bounded %9.2fms  nodes %6d  optimal %v",
			e.Parts, e.Vars, e.BoundedMs, e.Nodes, e.Optimal)
		if e.DenseMs > 0 {
			line += fmt.Sprintf("  dense %9.2fms  speedup %.2fx", e.DenseMs, e.Speedup)
		}
		fmt.Println(line)
	}
	fmt.Printf("(report written to %s)\n", path)
}

// runFaultBench runs every end-to-end system on one workload under the
// fault schedule and resilience knobs, printing a per-system table of
// completion time and the resilience counters — the CLI view of the
// chaos experiments.
func runFaultBench(workload string, executors int, scale float64, faultSpec, resSpec string, seed int64) {
	classes, err := blaze.ParseFaultClasses(faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	res, err := blaze.ParseResilience(resSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fault soak: workload=%s classes=%v seed=%d resilience=%q\n\n", workload, classes, seed, resSpec)
	fmt.Printf("%-14s %12s %7s %8s %7s %11s %10s %10s %10s\n",
		"system", "act", "faults", "retries", "spec", "spec-wins", "straggle", "backoff", "blacklist")
	for _, sys := range blaze.Fig9Systems() {
		r, err := blaze.Run(blaze.RunConfig{
			System:    sys,
			Workload:  blaze.WorkloadID(workload),
			Executors: executors,
			Scale:     scale,
			Faults: &blaze.FaultConfig{
				Seed:       seed,
				Classes:    classes,
				AtStageEnd: true,
			},
			Resilience: res,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %s: %v\n", sys, err)
			os.Exit(1)
		}
		m := r.Metrics
		fmt.Printf("%-14s %12v %7d %8d %7d %11d %10v %10v %10d\n",
			sys, m.ACT.Round(time.Millisecond), m.FaultsInjected,
			m.TaskRetries+m.FetchRetries, m.SpeculativeLaunches, m.SpeculativeWins,
			m.StragglerSlowdownTime.Round(time.Millisecond),
			m.RetryBackoffTime.Round(time.Millisecond), m.BlacklistedExecutors)
		if len(m.FaultRecoveryByClass) > 0 {
			for _, class := range blaze.AllFaultClasses() {
				if d, ok := m.FaultRecoveryByClass[class.String()]; ok {
					fmt.Printf("  recovery[%s] %v\n", class, d.Round(time.Millisecond))
				}
			}
		}
	}
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,9,10,11,12,13,summary or 'all'")
	executors := flag.Int("executors", 8, "number of simulated executors")
	scale := flag.Float64("scale", 1.0, "input scale factor for every workload")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	parallel := flag.String("parallel", "", "run the multi-core speedup benchmark and write the JSON report to this path")
	throughputPath := flag.String("throughput", "", "run the columnar hot-path benchmark (row vs. batch records/s, allocs/record, bit-identity) and write the JSON report to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the -throughput run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile of the -throughput run to this path")
	ilpPath := flag.String("ilp", "", "run the exact-optimizer benchmark and write the JSON report to this path")
	storagePath := flag.String("storage", "", "run the real-bytes storage benchmark (measured vs modeled) and write the JSON report to this path")
	serverPath := flag.String("server", "", "run the multi-tenant job-server benchmark (shared Blaze cache vs static partitioning) and write the JSON report to this path")
	streamPath := flag.String("stream", "", "run the micro-batch streaming benchmark (windowed lineage + incremental ILP re-solve) and write the JSON report to this path")
	recoveryPath := flag.String("recovery", "", "run the crash-recovery benchmark (checkpoint overhead, mid-stream kill + resume, bit-identity check) and write the JSON report to this path")
	faultSpec := flag.String("faults", "", "run the fault soak instead of figures: comma-separated classes (exec, block, shuffle, exec-death, bucket, task-flake, fetch-flake, straggler, permanent, transient, all)")
	resSpec := flag.String("resilience", "", "resilience knobs for the fault soak: retries=3,fetch-retries=2,backoff=2ms,spec=2,blacklist=3,cooldown=2")
	workload := flag.String("workload", "pr", "workload for the fault soak: pr, cc, lr, kmeans, gbt, svdpp")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault soak's deterministic injector")
	flag.Parse()

	if *parallel != "" {
		runParallelBench(*parallel, *executors, *scale)
		return
	}
	if *throughputPath != "" {
		harness.RunThroughputBench(*throughputPath, *cpuProfile, *memProfile)
		return
	}
	if *cpuProfile != "" || *memProfile != "" {
		fmt.Fprintln(os.Stderr, "blazebench: -cpuprofile/-memprofile apply to the -throughput benchmark")
		os.Exit(1)
	}
	if *ilpPath != "" {
		runILPBench(*ilpPath)
		return
	}
	if *storagePath != "" {
		runStorageBench(*storagePath, *scale)
		return
	}
	if *streamPath != "" {
		runStreamBench(*streamPath, *executors, *scale)
		return
	}
	if *recoveryPath != "" {
		// Like the server bench, the documented operating point is scale
		// 0.5 unless -scale was given explicitly.
		recScale := 0.5
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				recScale = *scale
			}
		})
		runRecoveryBench(*recoveryPath, *executors, recScale)
		return
	}
	if *serverPath != "" {
		// The server bench's documented operating point is scale 0.5 —
		// moderate contention, where a shared cache's flexibility pays.
		// At full scale every arm is capacity-saturated. An explicit
		// -scale overrides.
		srvScale := 0.5
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				srvScale = *scale
			}
		})
		runServerBench(*serverPath, *executors, srvScale)
		return
	}
	if *faultSpec != "" {
		runFaultBench(*workload, *executors, *scale, *faultSpec, *resSpec, *faultSeed)
		return
	}
	if *resSpec != "" {
		fmt.Fprintln(os.Stderr, "blazebench: -resilience requires -faults (it tunes the fault soak)")
		os.Exit(1)
	}

	h := harness.New()
	h.Executors = *executors
	h.Scale = *scale

	names := []string{*fig}
	if *fig == "all" {
		names = harness.AllFigures()
	}
	start := time.Now()
	_ = start
	for _, name := range names {
		m, err := h.Figure(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			js, err := m.RenderJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(js)
		} else {
			fmt.Println(m.Render())
		}
	}
	if !*asJSON {
		fmt.Printf("(regenerated %d figure(s) in %v of wall time)\n", len(names), time.Since(start).Round(time.Millisecond))
	}
}
