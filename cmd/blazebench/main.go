// Command blazebench regenerates the tables and figures of the paper's
// evaluation (§7). Each figure is printed as an aligned text table with
// the same rows/series the paper plots.
//
// Usage:
//
//	blazebench -fig 9          # one figure (3,4,5,9,10,11,12,13,summary)
//	blazebench -fig all        # everything
//	blazebench -executors 8 -scale 1.0 -fig 11
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blaze/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,9,10,11,12,13,summary or 'all'")
	executors := flag.Int("executors", 8, "number of simulated executors")
	scale := flag.Float64("scale", 1.0, "input scale factor for every workload")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	flag.Parse()

	h := harness.New()
	h.Executors = *executors
	h.Scale = *scale

	names := []string{*fig}
	if *fig == "all" {
		names = harness.AllFigures()
	}
	start := time.Now()
	_ = start
	for _, name := range names {
		m, err := h.Figure(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			js, err := m.RenderJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(js)
		} else {
			fmt.Println(m.Render())
		}
	}
	if !*asJSON {
		fmt.Printf("(regenerated %d figure(s) in %v of wall time)\n", len(names), time.Since(start).Round(time.Millisecond))
	}
}
