package main

// The streaming benchmark (-stream): runs every registered micro-batch
// stream through a session with cold-solve verification on, and reports
// the incremental-ILP headline numbers — how much cheaper the delta
// re-solve at each window boundary is than a from-scratch solve of the
// identical instance, given that both must select the same cache set.
// The run fails (non-zero exit) if any delta solve disagrees with its
// cold verification, or if the delta path is not at least 2x cheaper
// than cold overall; CI runs this as the streaming smoke job.

import (
	"encoding/json"
	"fmt"
	"os"

	"blaze"
)

// streamWindowRow is one window's deterministic accounting.
type streamWindowRow struct {
	Window            int `json:"window"`
	MemHits           int `json:"mem_hits"`
	DiskHits          int `json:"disk_hits"`
	Misses            int `json:"misses"`
	Evictions         int `json:"evictions"`
	PartitionsRetired int `json:"partitions_retired"`
	ILPDeltaSolves    int `json:"ilp_delta_solves"`
	ILPDeltaNodes     int `json:"ilp_delta_nodes"`
}

// streamEntry is one stream workload's report row.
type streamEntry struct {
	Workload          string            `json:"workload"`
	Windows           int               `json:"windows"`
	PartitionsRetired int               `json:"partitions_retired"`
	DeltaSolves       int               `json:"delta_solves"`
	ColdSolves        int               `json:"cold_solves"`
	Mismatches        int               `json:"mismatches"`
	DeltaNodes        int               `json:"delta_nodes"`
	ColdNodes         int               `json:"cold_nodes"`
	DeltaMs           float64           `json:"delta_ms"`
	ColdMs            float64           `json:"cold_ms"`
	NodeRatio         float64           `json:"node_ratio,omitempty"`
	TimeRatio         float64           `json:"time_ratio,omitempty"`
	PerWindow         []streamWindowRow `json:"per_window"`
}

type streamReport struct {
	Entries []streamEntry `json:"entries"`
	Note    string        `json:"note"`
}

// runStreamBench executes the micro-batch streaming experiment and
// writes the JSON report. The cluster is sized so boundary instances
// are non-trivial: memory tight enough that the optimizer must choose,
// a disk tier so the full three-state branch and bound runs.
func runStreamBench(path string, executors int, scale float64) {
	const windows = 6
	rep := streamReport{
		Note: "delta = warm-started boundary re-solve, cold = from-scratch solve of the identical instance; mismatches counts cache-set disagreements between the two proven optima (must be 0), ratios are cold/delta",
	}
	failed := false
	for _, wl := range blaze.AllStreamWorkloads() {
		res, err := blaze.RunStream(blaze.StreamConfig{
			Workload:          wl,
			Windows:           windows,
			Scale:             scale,
			Executors:         executors,
			MemoryPerExecutor: 256 * 1024,
			DiskCapacity:      1 << 20,
			ColdSolveVerify:   true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %s: %v\n", wl, err)
			os.Exit(1)
		}
		m := res.Metrics
		e := streamEntry{
			Workload:          string(wl),
			Windows:           m.WindowsRun,
			PartitionsRetired: m.PartitionsRetired,
			DeltaSolves:       m.ILPDeltaSolves,
			ColdSolves:        m.ILPColdSolves,
			Mismatches:        m.ILPColdMismatches,
			DeltaNodes:        m.ILPDeltaNodes,
			ColdNodes:         m.ILPColdNodes,
			DeltaMs:           float64(m.ILPDeltaSolveTime.Microseconds()) / 1000,
			ColdMs:            float64(m.ILPColdSolveTime.Microseconds()) / 1000,
		}
		if e.DeltaNodes > 0 {
			e.NodeRatio = float64(e.ColdNodes) / float64(e.DeltaNodes)
		}
		if m.ILPDeltaSolveTime > 0 {
			e.TimeRatio = float64(m.ILPColdSolveTime) / float64(m.ILPDeltaSolveTime)
		}
		for _, w := range res.Windows {
			e.PerWindow = append(e.PerWindow, streamWindowRow{
				Window: w.Window, MemHits: w.MemHits, DiskHits: w.DiskHits,
				Misses: w.Misses, Evictions: w.Evictions,
				PartitionsRetired: w.PartitionsRetired,
				ILPDeltaSolves:    w.ILPDeltaSolves, ILPDeltaNodes: w.ILPDeltaNodes,
			})
		}
		rep.Entries = append(rep.Entries, e)

		switch {
		case e.Mismatches != 0:
			fmt.Fprintf(os.Stderr, "blazebench: %s: %d delta/cold cache-set mismatches\n", wl, e.Mismatches)
			failed = true
		case e.DeltaSolves == 0 || e.ColdSolves == 0:
			fmt.Fprintf(os.Stderr, "blazebench: %s: no boundary solves ran (delta=%d cold=%d)\n", wl, e.DeltaSolves, e.ColdSolves)
			failed = true
		// Search nodes are the deterministic cost measure; wall time
		// backs it up on instances small enough to be timer-noise bound.
		case e.ColdNodes < 2*e.DeltaNodes && e.ColdMs < 2*e.DeltaMs:
			fmt.Fprintf(os.Stderr, "blazebench: %s: delta re-solve not 2x cheaper than cold (nodes %d vs %d, %.3fms vs %.3fms)\n",
				wl, e.DeltaNodes, e.ColdNodes, e.DeltaMs, e.ColdMs)
			failed = true
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	for _, e := range rep.Entries {
		fmt.Printf("%-14s windows %2d  retired %4d  delta %3d solves/%6d nodes/%8.3fms  cold %3d solves/%6d nodes/%8.3fms  mismatches %d\n",
			e.Workload, e.Windows, e.PartitionsRetired,
			e.DeltaSolves, e.DeltaNodes, e.DeltaMs,
			e.ColdSolves, e.ColdNodes, e.ColdMs, e.Mismatches)
	}
	fmt.Printf("(report written to %s)\n", path)
	if failed {
		os.Exit(1)
	}
}
