package blaze_test

import (
	"fmt"
	"log"

	"blaze"
)

// Example runs PageRank under Blaze's unified cost-aware caching and
// reports whether any cache data reached the disk. (Output is omitted
// because virtual-time metrics are environment-calibrated.)
func Example() {
	result, err := blaze.Run(blaze.RunConfig{
		System:   blaze.SysBlaze,
		Workload: blaze.PR,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("completed in", result.Metrics.ACT)
	fmt.Println("cache hits:", result.Metrics.CacheHits)
}
