package blaze_test

import (
	"testing"

	"blaze"
	"blaze/internal/core"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
)

// TestVerifyCodecOnRealWorkloads runs PR and SVD++ with every spill
// round-tripped through the real gob codec — the serialization code path
// exercised on real partition data. The memory store is sized far below
// the workloads' working sets so spills MUST occur; a run with zero
// spills fails the test, because it means VerifyCodec silently checked
// nothing (this used to be a t.Logf, letting the codec go unexercised).
func TestVerifyCodecOnRealWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, w := range []blaze.WorkloadID{blaze.PR, blaze.SVDPP} {
		spec, err := blaze.Workload(w)
		if err != nil {
			t.Fatal(err)
		}
		ctx := dataflow.NewContext()
		params := blaze.EvalParams(spec.SerFactor)
		c, err := engine.NewCluster(engine.Config{
			Executors:         4,
			MemoryPerExecutor: 16 * 1024, // pressure → spills → codec checks
			Params:            params,
			Controller:        core.NewBlaze(),
			VerifyCodec:       true,
		}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		spec.Plain(ctx, 0.3)
		m := c.Finish()
		if m.DiskBytesWritten == 0 {
			t.Errorf("%s: no spills occurred, so VerifyCodec checked nothing; tighten MemoryPerExecutor", w)
		}
	}
}
