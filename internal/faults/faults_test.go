package faults_test

// The injector tests live in an external test package because
// enginetest (the harness they drive) imports faults.

import (
	"reflect"
	"testing"

	"blaze/internal/engine"
	"blaze/internal/enginetest"
	"blaze/internal/faults"
)

func TestParseClasses(t *testing.T) {
	got, err := faults.ParseClasses("exec, shuffle")
	if err != nil {
		t.Fatal(err)
	}
	want := []faults.Class{faults.ExecutorCacheLoss, faults.ShuffleLoss}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseClasses = %v, want %v", got, want)
	}
	got, err = faults.ParseClasses("all")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, faults.AllClasses()) {
		t.Fatalf("ParseClasses(all) = %v, want %v", got, faults.AllClasses())
	}
	if _, err := faults.ParseClasses("exec,bogus"); err == nil {
		t.Fatal("ParseClasses accepted an unknown class")
	}
}

// TestInjectionIsDeterministic runs the same faulty schedule twice and
// requires bit-identical results and metrics — the property every
// recovery experiment rests on.
func TestInjectionIsDeterministic(t *testing.T) {
	cfg := faults.Config{Seed: 7, Classes: faults.AllClasses(), AtStageEnd: true}
	run := func() ([]int64, int, int64, int64) {
		sums, m, err := enginetest.RunRandomProgram(3, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sums, m.FaultsInjected, m.FaultBytesLost, int64(m.ACT)
	}
	s1, n1, b1, act1 := run()
	s2, n2, b2, act2 := run()
	if n1 == 0 {
		t.Fatal("schedule injected no faults")
	}
	if !reflect.DeepEqual(s1, s2) || n1 != n2 || b1 != b2 || act1 != act2 {
		t.Fatalf("two identical faulty runs diverged: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			s1, n1, b1, act1, s2, n2, b2, act2)
	}
}

// TestEachClassInjectsAndIsAccounted checks every class actually fires
// on the random programs and shows up in the per-class metrics.
func TestEachClassInjectsAndIsAccounted(t *testing.T) {
	for _, class := range faults.AllClasses() {
		injected, recovered := false, false
		for seed := int64(1); seed <= 6; seed++ {
			cfg := faults.Config{Seed: seed, Classes: []faults.Class{class}, AtStageEnd: true}
			_, m, err := enginetest.RunRandomProgram(seed, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.FaultsInjected > 0 {
				injected = true
			}
			switch class {
			case faults.BlockLoss:
				if m.FaultsInjected > 0 && m.FaultBlocksLost == 0 {
					t.Fatalf("seed %d: block faults injected but no blocks lost", seed)
				}
			case faults.ShuffleLoss:
				if m.FaultsInjected > 0 && m.FaultShufflesLost == 0 {
					t.Fatalf("seed %d: shuffle faults injected but no shuffles lost", seed)
				}
			}
			if m.TotalFaultRecovery() > 0 {
				recovered = true
			}
		}
		if !injected {
			t.Errorf("class %v never injected across seeds", class)
		}
		if !recovered {
			t.Errorf("class %v never attributed recovery time across seeds", class)
		}
	}
}

// TestEveryAndMaxFaults checks the schedule knobs: Every thins the
// boundary stream and MaxFaults caps the total.
func TestEveryAndMaxFaults(t *testing.T) {
	dense := faults.Config{Seed: 2, Classes: []faults.Class{faults.ExecutorCacheLoss}, AtStageEnd: true}
	sparse := dense
	sparse.Every = 4
	capped := dense
	capped.MaxFaults = 1

	count := func(cfg faults.Config) int {
		_, m, err := enginetest.RunRandomProgram(2, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.FaultsInjected
	}
	nd, ns, nc := count(dense), count(sparse), count(capped)
	if nd == 0 {
		t.Fatal("dense schedule injected nothing")
	}
	if ns >= nd {
		t.Fatalf("Every=4 injected %d faults, dense injected %d", ns, nd)
	}
	if nc != 1 {
		t.Fatalf("MaxFaults=1 injected %d faults", nc)
	}
}
