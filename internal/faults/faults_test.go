package faults_test

// The injector tests live in an external test package because
// enginetest (the harness they drive) imports faults.

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"blaze/internal/engine"
	"blaze/internal/enginetest"
	"blaze/internal/faults"
)

func TestParseClasses(t *testing.T) {
	got, err := faults.ParseClasses("exec, shuffle")
	if err != nil {
		t.Fatal(err)
	}
	want := []faults.Class{faults.ExecutorCacheLoss, faults.ShuffleLoss}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseClasses = %v, want %v", got, want)
	}
	got, err = faults.ParseClasses("all")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, faults.AllClasses()) {
		t.Fatalf("ParseClasses(all) = %v, want %v", got, faults.AllClasses())
	}
	if _, err := faults.ParseClasses("exec,bogus"); err == nil {
		t.Fatal("ParseClasses accepted an unknown class")
	}
}

// TestParseClassesDeduplicates pins the duplicate-handling contract:
// repeated tokens and overlapping groups collapse to one entry each, in
// first-seen order.
func TestParseClassesDeduplicates(t *testing.T) {
	cases := []struct {
		spec string
		want []faults.Class
	}{
		{"all,exec", faults.AllClasses()},
		{"exec,all", faults.AllClasses()}, // exec first, then the rest of all
		{"exec,exec,exec", []faults.Class{faults.ExecutorCacheLoss}},
		{"shuffle,exec,shuffle", []faults.Class{faults.ShuffleLoss, faults.ExecutorCacheLoss}},
		{"permanent", faults.PermanentClasses()},
		{"transient", faults.TransientClasses()},
		{"permanent,transient", faults.AllClasses()},
		{"task-flake,transient", []faults.Class{faults.TaskFlake, faults.FetchFlake, faults.Straggler}},
	}
	for _, tc := range cases {
		got, err := faults.ParseClasses(tc.spec)
		if err != nil {
			t.Errorf("ParseClasses(%q): %v", tc.spec, err)
			continue
		}
		if tc.spec == "exec,all" {
			want := append([]faults.Class{faults.ExecutorCacheLoss}, nonExec(faults.AllClasses())...)
			tc.want = want
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseClasses(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func nonExec(cs []faults.Class) []faults.Class {
	var out []faults.Class
	for _, c := range cs {
		if c != faults.ExecutorCacheLoss {
			out = append(out, c)
		}
	}
	return out
}

// TestConfigValidate pins the validation contract: negative knobs are
// rejected with descriptive errors instead of being silently remapped.
func TestConfigValidate(t *testing.T) {
	ok := faults.Config{Seed: 1, Classes: faults.AllClasses()}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []faults.Config{
		{Every: -1},
		{MaxFaults: -2},
		{TaskEvery: -1},
		{StragglerWindow: -3},
		{StragglerFactor: 0.5},
		{Classes: []faults.Class{faults.Class(99)}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// TestInjectionIsDeterministic runs the same faulty schedule twice and
// requires bit-identical results and metrics — the property every
// recovery experiment rests on.
func TestInjectionIsDeterministic(t *testing.T) {
	cfg := faults.Config{Seed: 7, Classes: faults.AllClasses(), AtStageEnd: true}
	run := func() ([]int64, int, int64, int64) {
		sums, m, err := enginetest.RunRandomProgram(3, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sums, m.FaultsInjected, m.FaultBytesLost, int64(m.ACT)
	}
	s1, n1, b1, act1 := run()
	s2, n2, b2, act2 := run()
	if n1 == 0 {
		t.Fatal("schedule injected no faults")
	}
	if !reflect.DeepEqual(s1, s2) || n1 != n2 || b1 != b2 || act1 != act2 {
		t.Fatalf("two identical faulty runs diverged: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			s1, n1, b1, act1, s2, n2, b2, act2)
	}
}

// TestEachClassInjectsAndIsAccounted checks every class actually fires
// on the random programs and shows up in the per-class metrics.
func TestEachClassInjectsAndIsAccounted(t *testing.T) {
	for _, class := range faults.AllClasses() {
		injected, recovered := false, false
		for seed := int64(1); seed <= 6; seed++ {
			cfg := faults.Config{Seed: seed, Classes: []faults.Class{class}, AtStageEnd: true}
			_, m, err := enginetest.RunRandomProgram(seed, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.FaultsInjected > 0 {
				injected = true
			}
			switch class {
			case faults.BlockLoss:
				if m.FaultsInjected > 0 && m.FaultBlocksLost == 0 {
					t.Fatalf("seed %d: block faults injected but no blocks lost", seed)
				}
			case faults.ShuffleLoss:
				if m.FaultsInjected > 0 && m.FaultShufflesLost == 0 {
					t.Fatalf("seed %d: shuffle faults injected but no shuffles lost", seed)
				}
			}
			if m.TotalFaultRecovery() > 0 {
				recovered = true
			}
		}
		if !injected {
			t.Errorf("class %v never injected across seeds", class)
		}
		if !recovered {
			t.Errorf("class %v never attributed recovery time across seeds", class)
		}
	}
}

// TestEveryAndMaxFaults checks the schedule knobs: Every thins the
// boundary stream and MaxFaults caps the total.
func TestEveryAndMaxFaults(t *testing.T) {
	dense := faults.Config{Seed: 2, Classes: []faults.Class{faults.ExecutorCacheLoss}, AtStageEnd: true}
	sparse := dense
	sparse.Every = 4
	capped := dense
	capped.MaxFaults = 1

	count := func(cfg faults.Config) int {
		_, m, err := enginetest.RunRandomProgram(2, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.FaultsInjected
	}
	nd, ns, nc := count(dense), count(sparse), count(capped)
	if nd == 0 {
		t.Fatal("dense schedule injected nothing")
	}
	if ns >= nd {
		t.Fatalf("Every=4 injected %d faults, dense injected %d", ns, nd)
	}
	if nc != 1 {
		t.Fatalf("MaxFaults=1 injected %d faults", nc)
	}
}

// TestMaxFaultsCapsPermanentAcrossClasses checks the cap applies to the
// whole permanent stream (both classes share it) while transient classes
// are exempt, as documented on Config.MaxFaults: an order-dependent
// global cap would break the parallel bit-identity of hash-drawn faults.
func TestMaxFaultsCapsPermanentAcrossClasses(t *testing.T) {
	cfg := faults.Config{
		Seed:       5,
		Classes:    []faults.Class{faults.ExecutorCacheLoss, faults.BlockLoss, faults.TaskFlake},
		AtStageEnd: true,
		MaxFaults:  2,
		TaskEvery:  4,
	}
	_, m, err := enginetest.RunRandomProgram(5, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.TaskRetries == 0 {
		t.Fatal("transient class never fired; the exemption is untested")
	}
	// Every task flake also counts into FaultsInjected, so subtract the
	// retries to recover the permanent total the cap governs.
	permanent := m.FaultsInjected - m.TaskRetries
	if permanent > 2 {
		t.Fatalf("MaxFaults=2 but %d permanent faults injected", permanent)
	}
	if m.FaultsInjected <= 2 {
		t.Fatalf("transient faults should exceed the permanent cap, got %d total", m.FaultsInjected)
	}
}

// TestNoVictimClassKeepsScheduleAligned pins the draw-order contract: a
// boundary whose chosen class finds no victim (shuffle loss before any
// shuffle completed) must not desynchronize the draws of later
// boundaries. Two runs of the same mixed schedule — one where the
// no-victim class is present and fires early, one without it — stay
// individually deterministic, and the mixed run still injects.
func TestNoVictimClassKeepsScheduleAligned(t *testing.T) {
	cfg := faults.Config{
		Seed:       3,
		Classes:    []faults.Class{faults.ShuffleLoss, faults.ExecutorCacheLoss},
		AtStageEnd: true,
	}
	run := func() ([]int64, int) {
		sums, m, err := enginetest.RunRandomProgram(3, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sums, m.FaultsInjected
	}
	s1, n1 := run()
	s2, n2 := run()
	if n1 == 0 {
		t.Fatal("mixed schedule injected nothing")
	}
	if !reflect.DeepEqual(s1, s2) || n1 != n2 {
		t.Fatalf("no-victim boundaries desynchronized the schedule: (%v,%d) vs (%v,%d)", s1, n1, s2, n2)
	}
}

// TestTransientDrawsAreOrderIndependent runs a transient-heavy schedule
// under Parallelism 1 and 8 and requires identical results, retry counts
// and recovery attribution: the hash draws must not depend on the order
// workers reach the attempts.
func TestTransientDrawsAreOrderIndependent(t *testing.T) {
	cfg := faults.Config{
		Seed:      11,
		Classes:   faults.TransientClasses(),
		TaskEvery: 4,
	}
	run := func(par int) ([]int64, int, int, string) {
		sums, m, err := enginetest.RunRandomProgramEx(4, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg,
			enginetest.RunOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return sums, m.TaskRetries, m.FetchRetries, fmtRecovery(m.FaultRecoveryByClass)
	}
	s1, tr1, fr1, rec1 := run(1)
	s8, tr8, fr8, rec8 := run(8)
	if tr1 == 0 && fr1 == 0 {
		t.Fatal("transient schedule never fired")
	}
	if !reflect.DeepEqual(s1, s8) || tr1 != tr8 || fr1 != fr8 || rec1 != rec8 {
		t.Fatalf("P1 vs P8 diverged: (%v,%d,%d,%s) vs (%v,%d,%d,%s)",
			s1, tr1, fr1, rec1, s8, tr8, fr8, rec8)
	}
}

func fmtRecovery(m map[string]time.Duration) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, m[k])
	}
	return b.String()
}
