// Package faults provides deterministic, seed-driven fault injection for
// the simulated cluster, making the recovery pillar of holistic caching
// (§4.3, Fig. 5) a first-class, testable scenario rather than an
// incidental side effect of shuffle cleaning.
//
// An Injector implements engine.Hook: it observes job and top-level stage
// boundaries and, on a configurable period, destroys state the engine
// must then recover through its three recovery paths — recomputation from
// lineage, disk reload, and Spark-style stage resubmission on missing
// shuffle files. Five fault classes are supported:
//
//   - ExecutorCacheLoss: every cached block (memory and disk) of one
//     executor vanishes, modeling an executor restart;
//   - BlockLoss: a single cached block vanishes from both tiers,
//     modeling corruption or eviction by the OS;
//   - ShuffleLoss: a completed shuffle's outputs are cleaned
//     mid-workload, forcing stage resubmission at the next fetch;
//   - ExecutorDeath: one executor dies for good — cache and map outputs
//     lost, partitions migrated to the sorted survivors round-robin;
//   - BucketLoss: a single map-output bucket of a completed shuffle
//     vanishes, so only its producing map task re-runs (fine-grained
//     resubmission).
//
// All choices (when to fire, which class, which victim) derive from one
// rand.Rand seeded by Config.Seed over deterministic enumerations of the
// cluster state, so a run with faults is exactly reproducible — the
// property the recovery-equivalence harness in internal/enginetest
// relies on.
package faults

import (
	"fmt"
	"math/rand"
	"strings"

	"blaze/internal/engine"
	"blaze/internal/storage"
)

// Class enumerates the fault classes.
type Class int

const (
	// ExecutorCacheLoss drops all memory and disk blocks of one executor.
	ExecutorCacheLoss Class = iota
	// BlockLoss drops a single cached block from both tiers.
	BlockLoss
	// ShuffleLoss cleans a completed shuffle's outputs.
	ShuffleLoss
	// ExecutorDeath kills one executor permanently: cache and map outputs
	// are lost and its partitions migrate to the survivors.
	ExecutorDeath
	// BucketLoss destroys one map-output bucket of a completed shuffle,
	// re-running only the producing map task.
	BucketLoss
)

// String names the fault class.
func (c Class) String() string {
	switch c {
	case ExecutorCacheLoss:
		return "exec"
	case BlockLoss:
		return "block"
	case ShuffleLoss:
		return "shuffle"
	case ExecutorDeath:
		return "exec-death"
	case BucketLoss:
		return "bucket"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// AllClasses lists every fault class.
func AllClasses() []Class {
	return []Class{ExecutorCacheLoss, BlockLoss, ShuffleLoss, ExecutorDeath, BucketLoss}
}

// ParseClasses parses a comma-separated class list ("exec,shuffle",
// "block", or "all").
func ParseClasses(spec string) ([]Class, error) {
	var out []Class
	for _, f := range strings.Split(spec, ",") {
		switch strings.TrimSpace(f) {
		case "":
		case "all":
			out = append(out, AllClasses()...)
		case "exec":
			out = append(out, ExecutorCacheLoss)
		case "block":
			out = append(out, BlockLoss)
		case "shuffle":
			out = append(out, ShuffleLoss)
		case "exec-death":
			out = append(out, ExecutorDeath)
		case "bucket":
			out = append(out, BucketLoss)
		default:
			return nil, fmt.Errorf("faults: unknown fault class %q (want exec, block, shuffle, exec-death, bucket or all)", strings.TrimSpace(f))
		}
	}
	return out, nil
}

// Config describes an injection schedule.
type Config struct {
	// Seed drives every pseudo-random choice the injector makes.
	Seed int64
	// Classes lists the fault classes to draw from; empty injects
	// nothing.
	Classes []Class
	// Every fires one fault per Every observed boundaries (default 1).
	Every int
	// AtStageEnd fires at top-level stage boundaries instead of job
	// boundaries, exercising mid-job recovery (regeneration inside a
	// running job rather than at its start).
	AtStageEnd bool
	// MaxFaults caps the total injections; 0 means unlimited.
	MaxFaults int
}

// Injector injects faults at cluster boundaries. It implements
// engine.Hook; attach it via engine.Config.Hook.
type Injector struct {
	cfg        Config
	rng        *rand.Rand
	boundaries int
	injected   int
	byClass    map[Class]int
}

// New creates an injector for the schedule.
func New(cfg Config) *Injector {
	if cfg.Every <= 0 {
		cfg.Every = 1
	}
	return &Injector{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		byClass: make(map[Class]int),
	}
}

// Injected returns the number of faults injected so far.
func (in *Injector) Injected() int { return in.injected }

// InjectedByClass returns the number of injected faults of one class.
func (in *Injector) InjectedByClass(c Class) int { return in.byClass[c] }

// OnJobStart implements engine.Hook (no injection at job start: the DAG
// was just built against the current cache state).
func (in *Injector) OnJobStart(c *engine.Cluster, j *engine.Job) {}

// OnStageEnd implements engine.Hook.
func (in *Injector) OnStageEnd(c *engine.Cluster, st *engine.Stage) {
	if in.cfg.AtStageEnd {
		in.tick(c)
	}
}

// OnJobEnd implements engine.Hook.
func (in *Injector) OnJobEnd(c *engine.Cluster, j *engine.Job) {
	if !in.cfg.AtStageEnd {
		in.tick(c)
	}
}

// tick counts one boundary and injects when the period elapses.
func (in *Injector) tick(c *engine.Cluster) {
	if len(in.cfg.Classes) == 0 {
		return
	}
	if in.cfg.MaxFaults > 0 && in.injected >= in.cfg.MaxFaults {
		return
	}
	in.boundaries++
	if in.boundaries%in.cfg.Every != 0 {
		return
	}
	class := in.cfg.Classes[in.rng.Intn(len(in.cfg.Classes))]
	if in.inject(c, class) {
		in.injected++
		in.byClass[class]++
	}
}

// inject performs one fault of the class, choosing the victim
// pseudo-randomly over a deterministic enumeration of the cluster state.
// Returns false when no victim exists (nothing cached, no complete
// shuffle).
func (in *Injector) inject(c *engine.Cluster, class Class) bool {
	switch class {
	case ExecutorCacheLoss:
		exs := c.LiveExecutors()
		if len(exs) == 0 {
			return false
		}
		ex := exs[in.rng.Intn(len(exs))]
		c.InjectExecutorCacheLoss(ex)
		return true
	case BlockLoss:
		type cand struct {
			ex *engine.Executor
			id storage.BlockID
		}
		var cands []cand
		for _, ex := range c.LiveExecutors() {
			for _, m := range ex.Mem.Blocks() {
				cands = append(cands, cand{ex, m.ID})
			}
			for _, id := range ex.Disk.Blocks() {
				if !ex.Mem.Contains(id) {
					cands = append(cands, cand{ex, id})
				}
			}
		}
		if len(cands) == 0 {
			return false
		}
		pick := cands[in.rng.Intn(len(cands))]
		return c.InjectBlockLoss(pick.ex, pick.id)
	case ShuffleLoss:
		ids := c.CompletedShuffles()
		if len(ids) == 0 {
			return false
		}
		return c.InjectShuffleLoss(ids[in.rng.Intn(len(ids))])
	case ExecutorDeath:
		exs := c.LiveExecutors()
		if len(exs) <= 1 {
			return false // never kill the last executor
		}
		return c.InjectExecutorDeath(exs[in.rng.Intn(len(exs))])
	case BucketLoss:
		type bcand struct {
			shuffle, mapPart, bucket int
		}
		var cands []bcand
		for _, sid := range c.CompletedShuffles() {
			for _, ref := range c.CompleteBucketRefs(sid) {
				cands = append(cands, bcand{sid, ref.MapPart, ref.Bucket})
			}
		}
		if len(cands) == 0 {
			return false
		}
		pick := cands[in.rng.Intn(len(cands))]
		return c.InjectBucketLoss(pick.shuffle, pick.mapPart, pick.bucket)
	default:
		return false
	}
}
