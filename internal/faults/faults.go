// Package faults provides deterministic, seed-driven fault injection for
// the simulated cluster, making the recovery pillar of holistic caching
// (§4.3, Fig. 5) a first-class, testable scenario rather than an
// incidental side effect of shuffle cleaning.
//
// An Injector implements engine.Hook and engine.TaskHook. Permanent
// faults fire at job and top-level stage boundaries and destroy state the
// engine must then recover through its three recovery paths —
// recomputation from lineage, disk reload, and Spark-style stage
// resubmission on missing shuffle files. Transient faults fire at task
// granularity and are absorbed by the scheduler's resilience machinery
// (bounded retries with backoff, speculative execution, blacklisting)
// without destroying any state. Eight fault classes are supported:
//
// Permanent (boundary granularity):
//
//   - ExecutorCacheLoss: every cached block (memory and disk) of one
//     executor vanishes, modeling an executor restart;
//   - BlockLoss: a single cached block vanishes from both tiers,
//     modeling corruption or eviction by the OS;
//   - ShuffleLoss: a completed shuffle's outputs are cleaned
//     mid-workload, forcing stage resubmission at the next fetch;
//   - ExecutorDeath: one executor dies for good — cache and map outputs
//     lost, partitions migrated to the sorted survivors round-robin;
//   - BucketLoss: a single map-output bucket of a completed shuffle
//     vanishes, so only its producing map task re-runs (fine-grained
//     resubmission).
//
// Transient (task granularity):
//
//   - TaskFlake: one task attempt fails and is retried with backoff;
//   - FetchFlake: one shuffle-fetch attempt fails transiently — the
//     bucket itself is intact and the fetch is retried;
//   - Straggler: an executor runs at a configurable slowdown multiplier
//     for a bounded window of task executions.
//
// Determinism works differently for the two groups. Permanent choices
// (when to fire, which class, which victim) derive from one rand.Rand
// seeded by Config.Seed over deterministic enumerations of the cluster
// state; the draw order is part of the contract — see Injector. Transient
// decisions are pure hash functions of the attempt's identity (seed,
// stage, partition, attempt number), never a shared RNG stream, so they
// are independent of execution order and remain bit-identical when the
// engine runs stage tasks on concurrent per-executor workers.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"blaze/internal/engine"
	"blaze/internal/storage"
)

// Class enumerates the fault classes.
type Class int

const (
	// ExecutorCacheLoss drops all memory and disk blocks of one executor.
	ExecutorCacheLoss Class = iota
	// BlockLoss drops a single cached block from both tiers.
	BlockLoss
	// ShuffleLoss cleans a completed shuffle's outputs.
	ShuffleLoss
	// ExecutorDeath kills one executor permanently: cache and map outputs
	// are lost and its partitions migrate to the survivors.
	ExecutorDeath
	// BucketLoss destroys one map-output bucket of a completed shuffle,
	// re-running only the producing map task.
	BucketLoss
	// TaskFlake fails a single task attempt transiently; the scheduler
	// retries the attempt (never the stage) with exponential backoff.
	TaskFlake
	// FetchFlake fails a single shuffle-fetch attempt transiently without
	// losing the bucket; the fetch is retried with backoff.
	FetchFlake
	// Straggler opens a bounded window during which one executor's tasks
	// run at a configurable slowdown multiplier, triggering speculative
	// execution when the scheduler has it enabled.
	Straggler
	// ServerCrash kills the whole session process deterministically at a
	// configured window boundary (Config.CrashWindow), immediately after
	// the boundary's checkpoint has been written. It models a driver or
	// job-server crash rather than a cluster-internal loss, so it is
	// excluded from AllClasses and from the Injector's draw pools: the
	// crash is scheduled, not drawn, and recovery goes through checkpoint
	// resume (blaze.ResumeSession) rather than lineage recomputation.
	ServerCrash
)

// ErrServerCrash is the panic sentinel a scheduled server-crash fault
// unwinds with. The job server recovers it at the session boundary and
// records the session as crashed; everything the session had admitted is
// purged and its tenant quota released, exactly as for a real process
// death observed by a supervisor.
var ErrServerCrash = errors.New("faults: server crash injected")

// String names the fault class.
func (c Class) String() string {
	switch c {
	case ExecutorCacheLoss:
		return "exec"
	case BlockLoss:
		return "block"
	case ShuffleLoss:
		return "shuffle"
	case ExecutorDeath:
		return "exec-death"
	case BucketLoss:
		return "bucket"
	case TaskFlake:
		return "task-flake"
	case FetchFlake:
		return "fetch-flake"
	case Straggler:
		return "straggler"
	case ServerCrash:
		return "server-crash"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Transient reports whether the class is a task-granularity transient
// fault (absorbed by retries/speculation) rather than a permanent loss.
func (c Class) Transient() bool {
	return c == TaskFlake || c == FetchFlake || c == Straggler
}

// AllClasses lists every fault class, permanent then transient.
func AllClasses() []Class {
	return []Class{ExecutorCacheLoss, BlockLoss, ShuffleLoss, ExecutorDeath, BucketLoss,
		TaskFlake, FetchFlake, Straggler}
}

// PermanentClasses lists the boundary-granularity destructive classes.
func PermanentClasses() []Class {
	return []Class{ExecutorCacheLoss, BlockLoss, ShuffleLoss, ExecutorDeath, BucketLoss}
}

// TransientClasses lists the task-granularity retryable classes.
func TransientClasses() []Class {
	return []Class{TaskFlake, FetchFlake, Straggler}
}

// ParseClasses parses a comma-separated class list ("exec,shuffle",
// "block", "task-flake", the groups "permanent"/"transient", or "all").
// Duplicates — whether repeated tokens or overlaps like "all,exec" — are
// removed while preserving first-seen order, so the injector's uniform
// class draw is never silently skewed toward a repeated class.
func ParseClasses(spec string) ([]Class, error) {
	var out []Class
	seen := make(map[Class]bool)
	add := func(cs ...Class) {
		for _, c := range cs {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	for _, f := range strings.Split(spec, ",") {
		switch strings.TrimSpace(f) {
		case "":
		case "all":
			add(AllClasses()...)
		case "permanent":
			add(PermanentClasses()...)
		case "transient":
			add(TransientClasses()...)
		case "exec":
			add(ExecutorCacheLoss)
		case "block":
			add(BlockLoss)
		case "shuffle":
			add(ShuffleLoss)
		case "exec-death":
			add(ExecutorDeath)
		case "bucket":
			add(BucketLoss)
		case "task-flake":
			add(TaskFlake)
		case "fetch-flake":
			add(FetchFlake)
		case "straggler":
			add(Straggler)
		case "server-crash":
			add(ServerCrash)
		default:
			return nil, fmt.Errorf("faults: unknown fault class %q (want exec, block, shuffle, exec-death, bucket, task-flake, fetch-flake, straggler, permanent, transient or all)", strings.TrimSpace(f))
		}
	}
	return out, nil
}

// FormatClasses renders a class list in the comma-separated syntax that
// ParseClasses accepts, so FormatClasses and ParseClasses round-trip:
// ParseClasses(FormatClasses(cs)) returns cs for any duplicate-free list.
func FormatClasses(cs []Class) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// Config describes an injection schedule.
type Config struct {
	// Seed drives every pseudo-random choice the injector makes.
	Seed int64
	// Classes lists the fault classes to draw from; empty injects
	// nothing.
	Classes []Class
	// Every fires one permanent fault per Every observed boundaries
	// (default 1). It does not affect the transient classes, which fire
	// per task/fetch attempt under TaskEvery.
	Every int
	// AtStageEnd fires permanent faults at top-level stage boundaries
	// instead of job boundaries, exercising mid-job recovery
	// (regeneration inside a running job rather than at its start).
	AtStageEnd bool
	// MaxFaults caps the total permanent injections; 0 means unlimited.
	// Transient faults are exempt: a global cap over task-granularity
	// events would make which firings are suppressed depend on task
	// execution order, breaking the bit-identity between sequential and
	// parallel runs.
	MaxFaults int
	// TaskEvery fires roughly one transient fault per TaskEvery task or
	// fetch attempts (default 8). The decision is a pure hash of the
	// attempt's identity, not a counter, so the long-run rate is 1/N
	// while individual firings stay order-independent.
	TaskEvery int
	// StragglerFactor is the virtual-clock slowdown multiplier of
	// injected straggler windows (default 4; must exceed 1 when set).
	StragglerFactor float64
	// StragglerWindow is the number of task executions a straggler
	// window spans (default 3).
	StragglerWindow int
	// CrashWindow schedules a ServerCrash fault at the given 1-based
	// window boundary of a streaming session: the checkpointer panics
	// with ErrServerCrash immediately after persisting that boundary's
	// checkpoint. 0 disables; boundaries start at 2 (window 1 opens
	// before any checkpoint exists).
	CrashWindow int
}

// String renders the schedule as a stable key=value summary. The classes
// field uses FormatClasses, so it round-trips through ParseClasses; zero
// fields (which the injector maps to their documented defaults) are
// omitted, and the zero Config renders as the empty string.
func (cfg Config) String() string {
	var parts []string
	if cfg.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", cfg.Seed))
	}
	if len(cfg.Classes) > 0 {
		parts = append(parts, "classes="+FormatClasses(cfg.Classes))
	}
	if cfg.Every != 0 {
		parts = append(parts, fmt.Sprintf("every=%d", cfg.Every))
	}
	if cfg.AtStageEnd {
		parts = append(parts, "at-stage-end")
	}
	if cfg.MaxFaults != 0 {
		parts = append(parts, fmt.Sprintf("max=%d", cfg.MaxFaults))
	}
	if cfg.TaskEvery != 0 {
		parts = append(parts, fmt.Sprintf("task-every=%d", cfg.TaskEvery))
	}
	if cfg.StragglerFactor != 0 {
		parts = append(parts, fmt.Sprintf("straggler-factor=%s", strconv.FormatFloat(cfg.StragglerFactor, 'g', -1, 64)))
	}
	if cfg.StragglerWindow != 0 {
		parts = append(parts, fmt.Sprintf("straggler-window=%d", cfg.StragglerWindow))
	}
	if cfg.CrashWindow != 0 {
		parts = append(parts, fmt.Sprintf("crash-window=%d", cfg.CrashWindow))
	}
	return strings.Join(parts, ",")
}

// Validate rejects misconfigured schedules with a descriptive error, so
// callers (the facade, CLI flags) fail loudly instead of the injector
// silently remapping nonsense values to defaults.
func (cfg Config) Validate() error {
	if cfg.Every < 0 {
		return fmt.Errorf("faults: Every must be >= 0 (0 means default 1), got %d", cfg.Every)
	}
	if cfg.MaxFaults < 0 {
		return fmt.Errorf("faults: MaxFaults must be >= 0 (0 means unlimited), got %d", cfg.MaxFaults)
	}
	if cfg.TaskEvery < 0 {
		return fmt.Errorf("faults: TaskEvery must be >= 0 (0 means default 8), got %d", cfg.TaskEvery)
	}
	if cfg.StragglerFactor != 0 && cfg.StragglerFactor <= 1 {
		return fmt.Errorf("faults: StragglerFactor must exceed 1 (0 means default 4), got %g", cfg.StragglerFactor)
	}
	if cfg.StragglerWindow < 0 {
		return fmt.Errorf("faults: StragglerWindow must be >= 0 (0 means default 3), got %d", cfg.StragglerWindow)
	}
	if cfg.CrashWindow != 0 && cfg.CrashWindow < 2 {
		return fmt.Errorf("faults: CrashWindow must be 0 (off) or >= 2 (window 1 opens before any checkpoint exists), got %d", cfg.CrashWindow)
	}
	for _, cl := range cfg.Classes {
		if cl < ExecutorCacheLoss || cl > ServerCrash {
			return fmt.Errorf("faults: unknown fault class %d", int(cl))
		}
	}
	return nil
}

// HasClass reports whether the schedule includes the class.
func (cfg Config) HasClass(c Class) bool {
	for _, cl := range cfg.Classes {
		if cl == c {
			return true
		}
	}
	return false
}

// Injector injects faults at cluster boundaries (permanent classes) and
// task attempts (transient classes). It implements engine.Hook and
// engine.TaskHook; attach it via engine.Config.Hook.
//
// Draw-order contract for the permanent RNG stream: every firing
// boundary consumes exactly one draw for the class choice, plus one draw
// for the victim choice if and only if victims of that class exist. A
// boundary whose drawn class has no victim (nothing cached, no complete
// shuffle) therefore consumes exactly one draw, keeping later boundaries
// of the schedule aligned regardless of when victims first appear. The
// transient classes never touch this stream — their decisions are
// stateless hashes — so adding them to a schedule cannot shift the
// permanent victim sequence.
type Injector struct {
	cfg        Config
	rng        *rand.Rand
	boundaries int

	// perm and taskClasses split cfg.Classes (deduplicated, first-seen
	// order) into the boundary-draw pool and the task-draw pool;
	// fetchFlake is pulled out because it fires on a different code path.
	perm        []Class
	taskClasses []Class
	fetchFlake  bool

	// mu guards the injection counters, which transient classes update
	// from concurrent task contexts. Leaf lock.
	mu       sync.Mutex
	injected int
	byClass  map[Class]int
}

// New creates an injector for the schedule. Zero-valued knobs take their
// documented defaults (Every 1, TaskEvery 8, StragglerFactor 4,
// StragglerWindow 3); call Config.Validate first to reject negatives.
func New(cfg Config) *Injector {
	if cfg.Every <= 0 {
		cfg.Every = 1
	}
	if cfg.TaskEvery <= 0 {
		cfg.TaskEvery = 8
	}
	if cfg.StragglerFactor <= 1 {
		cfg.StragglerFactor = 4
	}
	if cfg.StragglerWindow <= 0 {
		cfg.StragglerWindow = 3
	}
	in := &Injector{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		byClass: make(map[Class]int),
	}
	seen := make(map[Class]bool)
	for _, cl := range cfg.Classes {
		if seen[cl] {
			continue // duplicates would skew the uniform class draw
		}
		seen[cl] = true
		switch cl {
		case TaskFlake, Straggler:
			in.taskClasses = append(in.taskClasses, cl)
		case FetchFlake:
			in.fetchFlake = true
		case ServerCrash:
			// Scheduled (CrashWindow), never drawn: adding it to a pool
			// would shift the permanent draw sequence of existing seeds.
		default:
			in.perm = append(in.perm, cl)
		}
	}
	return in
}

// Injected returns the number of faults injected so far.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// InjectedByClass returns the number of injected faults of one class.
func (in *Injector) InjectedByClass(c Class) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.byClass[c]
}

// count records one successful injection of the class.
func (in *Injector) count(c Class) {
	in.mu.Lock()
	in.injected++
	in.byClass[c]++
	in.mu.Unlock()
}

// OnJobStart implements engine.Hook (no injection at job start: the DAG
// was just built against the current cache state).
func (in *Injector) OnJobStart(c *engine.Cluster, j *engine.Job) {}

// OnStageEnd implements engine.Hook.
func (in *Injector) OnStageEnd(c *engine.Cluster, st *engine.Stage) {
	if in.cfg.AtStageEnd {
		in.tick(c)
	}
}

// OnJobEnd implements engine.Hook.
func (in *Injector) OnJobEnd(c *engine.Cluster, j *engine.Job) {
	if !in.cfg.AtStageEnd {
		in.tick(c)
	}
}

// tick counts one boundary and injects a permanent fault when the period
// elapses.
func (in *Injector) tick(c *engine.Cluster) {
	if len(in.perm) == 0 {
		return
	}
	if in.cfg.MaxFaults > 0 && in.Injected() >= in.cfg.MaxFaults {
		return
	}
	in.boundaries++
	if in.boundaries%in.cfg.Every != 0 {
		return
	}
	class := in.perm[in.rng.Intn(len(in.perm))]
	if in.inject(c, class) {
		in.count(class)
	}
}

// splitmix folds the parts into the seed with a splitmix64-style mixer —
// a pure function, so transient fault decisions depend only on the
// attempt's identity and never on the order attempts execute in.
func splitmix(seed uint64, parts ...uint64) uint64 {
	h := seed
	for _, p := range parts {
		h ^= p
		h += 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// taskDraw decides whether the attempt identified by parts draws a
// transient fault from classes, firing at a 1-in-TaskEvery rate.
func (in *Injector) taskDraw(classes []Class, parts ...uint64) (Class, bool) {
	if len(classes) == 0 {
		return 0, false
	}
	h := splitmix(uint64(in.cfg.Seed)*0x9e3779b97f4a7c15+0x1234567, parts...)
	every := uint64(in.cfg.TaskEvery)
	if h%every != 0 {
		return 0, false
	}
	return classes[(h/every)%uint64(len(classes))], true
}

// OnTaskStart implements engine.TaskHook: it may fail the attempt
// transiently (task-flake) or open a straggler window on the executor.
// Stage IDs are globally unique and deterministic, so (stage, partition,
// attempt) identifies the attempt across runs and parallelism settings.
func (in *Injector) OnTaskStart(c *engine.Cluster, ex *engine.Executor, st *engine.Stage, part, attempt int) bool {
	class, ok := in.taskDraw(in.taskClasses, 1, uint64(st.ID), uint64(part), uint64(attempt))
	if !ok {
		return false
	}
	switch class {
	case TaskFlake:
		in.count(TaskFlake)
		return true
	case Straggler:
		if c.InjectStraggler(ex, in.cfg.StragglerFactor, in.cfg.StragglerWindow) {
			in.count(Straggler)
		}
	}
	return false
}

// OnTaskEnd implements engine.TaskHook (nothing to do after a success).
func (in *Injector) OnTaskEnd(c *engine.Cluster, ex *engine.Executor, st *engine.Stage, part int) {}

// OnFetch implements engine.TaskHook: it may fail one shuffle-fetch
// attempt transiently. The executor id joins the identity because the
// same (shuffle, partition) bucket may be fetched by different executors
// (broadcast joins, rerouted tasks).
func (in *Injector) OnFetch(c *engine.Cluster, ex *engine.Executor, shuffleID, part, attempt int) bool {
	if !in.fetchFlake {
		return false
	}
	_, ok := in.taskDraw([]Class{FetchFlake}, 2, uint64(c.CurrentJob()), uint64(shuffleID), uint64(part), uint64(ex.ID), uint64(attempt))
	if ok {
		in.count(FetchFlake)
	}
	return ok
}

// inject performs one fault of the class, choosing the victim
// pseudo-randomly over a deterministic enumeration of the cluster state.
// Returns false when no victim exists (nothing cached, no complete
// shuffle); no victim draw is consumed in that case — see the draw-order
// contract on Injector.
func (in *Injector) inject(c *engine.Cluster, class Class) bool {
	switch class {
	case ExecutorCacheLoss:
		exs := c.LiveExecutors()
		if len(exs) == 0 {
			return false
		}
		ex := exs[in.rng.Intn(len(exs))]
		c.InjectExecutorCacheLoss(ex)
		return true
	case BlockLoss:
		type cand struct {
			ex *engine.Executor
			id storage.BlockID
		}
		var cands []cand
		for _, ex := range c.LiveExecutors() {
			for _, m := range ex.Mem.Blocks() {
				cands = append(cands, cand{ex, m.ID})
			}
			for _, id := range ex.Disk.Blocks() {
				if !ex.Mem.Contains(id) {
					cands = append(cands, cand{ex, id})
				}
			}
		}
		if len(cands) == 0 {
			return false
		}
		pick := cands[in.rng.Intn(len(cands))]
		return c.InjectBlockLoss(pick.ex, pick.id)
	case ShuffleLoss:
		ids := c.CompletedShuffles()
		if len(ids) == 0 {
			return false
		}
		return c.InjectShuffleLoss(ids[in.rng.Intn(len(ids))])
	case ExecutorDeath:
		exs := c.LiveExecutors()
		if len(exs) <= 1 {
			return false // never kill the last executor
		}
		return c.InjectExecutorDeath(exs[in.rng.Intn(len(exs))])
	case BucketLoss:
		type bcand struct {
			shuffle, mapPart, bucket int
		}
		var cands []bcand
		for _, sid := range c.CompletedShuffles() {
			for _, ref := range c.CompleteBucketRefs(sid) {
				cands = append(cands, bcand{sid, ref.MapPart, ref.Bucket})
			}
		}
		if len(cands) == 0 {
			return false
		}
		pick := cands[in.rng.Intn(len(cands))]
		return c.InjectBucketLoss(pick.shuffle, pick.mapPart, pick.bucket)
	default:
		return false
	}
}
