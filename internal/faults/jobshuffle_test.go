package faults_test

import (
	"testing"

	"blaze/internal/engine"
	"blaze/internal/enginetest"
	"blaze/internal/faults"
)

// TestJobBoundaryShuffleLossAttributed exercises the other shuffle
// recovery path: a shuffle destroyed BETWEEN jobs is rebuilt by the next
// job resubmitting the map stage top-level, and that stage's cost must
// be attributed as fault recovery.
func TestJobBoundaryShuffleLossAttributed(t *testing.T) {
	attributed := false
	for seed := int64(1); seed <= 10; seed++ {
		cfg := faults.Config{Seed: seed, Classes: []faults.Class{faults.ShuffleLoss}}
		_, m, err := enginetest.RunRandomProgram(seed, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.FaultShufflesLost > 0 && m.TotalFaultRecovery() > 0 {
			attributed = true
			break
		}
	}
	if !attributed {
		t.Fatal("no seed attributed recovery for job-boundary shuffle loss")
	}
}
