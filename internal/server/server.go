// Package server is the multi-tenant job server: a long-lived process
// admitting many concurrent applications against one shared executor
// pool and one shared cache. Each submitted application becomes a
// session with its own dataflow context (dataset ids namespaced by
// session so blocks never collide), its own controller, metrics and
// event log, all bound to the pool's executors. Three policies govern
// the sharing:
//
//   - Fair-share admission: sessions execute jobs one at a time under
//     the pool's exclusivity lock, and the next job to run is picked by
//     smooth weighted round-robin over the tenants with a job waiting,
//     so a heavy tenant cannot starve a light one. Session activation
//     (bounded by MaxActiveSessions) uses the same discipline.
//   - Per-tenant memory quotas: every block admitted to any executor's
//     memory store is charged to its owning tenant (resolved by dataset
//     id range); admissions past the tenant's cluster-wide limit first
//     reclaim the tenant's own coldest blocks and are refused if that
//     does not fit, never exceeding the limit.
//   - Cluster-wide arbitration: when enabled, every Blaze session's
//     job-start ILP is re-run across the union of all admitted
//     sessions' candidate sets (core.GlobalArbiter), so the shared
//     cache is optimized for the cluster, not each job in isolation.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"blaze/internal/core"
	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/faults"
	"blaze/internal/metrics"
	"blaze/internal/storage"
)

// IDStride is the dataset-id namespace width per session: session k
// creates datasets in [k*IDStride, (k+1)*IDStride). Session 0 starts at
// 0, so a single-session server produces the exact dataset ids (hence
// blocks, events and metrics) of a standalone run. No workload comes
// close to a million datasets.
const IDStride = 1 << 20

// ErrCancelled is returned by Session.Wait when the session was
// cancelled before completing.
var ErrCancelled = errors.New("server: session cancelled")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("server: server closed")

// TenantConfig declares one tenant sharing the server.
type TenantConfig struct {
	// Name identifies the tenant on submissions.
	Name string
	// Weight is the tenant's fair share (default 1): with weights 2 and
	// 1, the heavy tenant's sessions run two jobs for every one of the
	// light tenant's when both have jobs waiting.
	Weight float64
	// MemoryQuota caps the tenant's cluster-wide cached bytes in
	// executor memory (0 = unlimited). Enforced at block admission.
	MemoryQuota int64
}

// Config describes a job server.
type Config struct {
	// Executors, CoresPerExecutor and MemoryPerExecutor shape the shared
	// pool.
	Executors         int
	CoresPerExecutor  int
	MemoryPerExecutor int64
	// Parallelism is the default engine parallelism for sessions that do
	// not override it.
	Parallelism int
	// Tenants declares the tenant set. When non-empty, submissions must
	// name one of them; when empty, any tenant name (including "") is
	// admitted with weight 1 and no quota.
	Tenants []TenantConfig
	// MaxActiveSessions bounds how many sessions run concurrently
	// (others queue per tenant; 0 = unbounded).
	MaxActiveSessions int
	// Arbitrate re-runs each Blaze session's job-start ILP across the
	// union of all admitted sessions' candidates.
	Arbitrate bool
	// EventLog, when non-nil, receives the server's own events
	// (session_start, session_end, arbitration). Appends are
	// synchronized by the server.
	EventLog *eventlog.Log
}

// JobSpec describes one application submission.
type JobSpec struct {
	// Tenant names the owning tenant.
	Tenant string
	// Driver builds and runs the application's dataflow against the
	// session's context; actions inside it execute as jobs on the shared
	// pool. Required.
	Driver func(ctx *dataflow.Context)
	// Controller makes the session's caching decisions. Must be a fresh,
	// unbound controller per submission. Required.
	Controller engine.Controller
	// Params is the session's virtual-time cost model.
	Params costmodel.Params
	// AlluxioMode charges (de)serialization on every cache access.
	AlluxioMode bool
	// ProfilingOverhead is charged into the session's ACT (the
	// dependency-extraction cost when the controller was profiled).
	ProfilingOverhead time.Duration
	// EventLog, when non-nil, records the session's execution events.
	EventLog *eventlog.Log
	// Hook observes the session's scheduling boundaries (fault
	// injection).
	Hook engine.Hook
	// Resilience configures the session's transient-failure machinery.
	Resilience engine.Resilience
	// Parallelism overrides Config.Parallelism for this session when
	// positive.
	Parallelism int
	// Vectorized runs the session's eligible stages on the engine's
	// columnar task loop; virtual-time metrics and events are unchanged.
	Vectorized bool
}

// tenantState is the server's per-tenant bookkeeping.
type tenantState struct {
	cfg TenantConfig
	// queue holds submitted, not-yet-activated sessions in submission
	// order.
	queue []*Session
	// actCredit and jobCredit are the smooth-WRR accumulators for
	// session activation and job granting respectively.
	actCredit float64
	jobCredit float64

	submitted   int
	completed   int
	cancelled   int
	jobsGranted int
	totalACT    time.Duration
}

// Server is the multi-tenant job server.
type Server struct {
	mu   sync.Mutex
	cond *sync.Cond

	cfg     Config
	pool    *engine.Pool
	quota   *storage.TenantQuota
	arbiter *core.GlobalArbiter
	owners  *ownerTable

	tenants   map[string]*tenantState
	order     []string // tenant names in first-seen order (WRR scan order)
	byCluster map[*engine.Cluster]*Session

	seq     int // next session index
	active  int
	pending int
	grant   *Session // session currently authorized to run a job
	closed  bool

	logMu sync.Mutex // serializes Config.EventLog appends
	wg    sync.WaitGroup
}

// ownerTable resolves block owners for quota enforcement: the dataset
// id's session range names the tenant. Leaf mutex — looked up on the
// admission hot path, written once per session.
type ownerTable struct {
	mu    sync.Mutex
	byIdx map[int]string
}

func (t *ownerTable) set(idx int, tenant string) {
	t.mu.Lock()
	t.byIdx[idx] = tenant
	t.mu.Unlock()
}

func (t *ownerTable) owner(id storage.BlockID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byIdx[id.Dataset/IDStride]
}

// New creates the server and its shared pool.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:       cfg,
		owners:    &ownerTable{byIdx: make(map[int]string)},
		tenants:   make(map[string]*tenantState),
		byCluster: make(map[*engine.Cluster]*Session),
	}
	s.cond = sync.NewCond(&s.mu)
	needQuota := false
	for _, tc := range cfg.Tenants {
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		if tc.Weight < 0 {
			return nil, fmt.Errorf("server: tenant %q has negative weight", tc.Name)
		}
		s.tenants[tc.Name] = &tenantState{cfg: tc}
		s.order = append(s.order, tc.Name)
		if tc.MemoryQuota > 0 {
			needQuota = true
		}
	}
	if needQuota {
		s.quota = storage.NewTenantQuota(s.owners.owner)
		for _, tc := range cfg.Tenants {
			if tc.MemoryQuota > 0 {
				s.quota.SetLimit(tc.Name, tc.MemoryQuota)
			}
		}
	}
	var q storage.QuotaController
	if s.quota != nil {
		q = s.quota
	}
	pool, err := engine.NewPool(engine.PoolConfig{
		Executors:         cfg.Executors,
		CoresPerExecutor:  cfg.CoresPerExecutor,
		MemoryPerExecutor: cfg.MemoryPerExecutor,
		Quota:             q,
	})
	if err != nil {
		return nil, err
	}
	s.pool = pool
	if cfg.Arbitrate {
		s.arbiter = core.NewGlobalArbiter(s.emit)
	}
	return s, nil
}

// Pool exposes the shared executor pool (stats and tests).
func (s *Server) Pool() *engine.Pool { return s.pool }

// Quota exposes the tenant quota ledger (nil when no tenant has one).
func (s *Server) Quota() *storage.TenantQuota { return s.quota }

// emit appends an event to the server's log, synchronized (the
// arbiter calls this from job context, the server from session
// goroutines).
func (s *Server) emit(e eventlog.Event) {
	if s.cfg.EventLog == nil {
		return
	}
	s.logMu.Lock()
	s.cfg.EventLog.Append(e)
	s.logMu.Unlock()
}

// tenantLocked returns (creating if allowed) the tenant's state.
func (s *Server) tenantLocked(name string) (*tenantState, error) {
	if t, ok := s.tenants[name]; ok {
		return t, nil
	}
	if len(s.cfg.Tenants) > 0 {
		return nil, fmt.Errorf("server: unknown tenant %q", name)
	}
	t := &tenantState{cfg: TenantConfig{Name: name}}
	s.tenants[name] = t
	s.order = append(s.order, name)
	return t, nil
}

// weight resolves a tenant's effective WRR weight.
func (t *tenantState) weight() float64 {
	if t.cfg.Weight > 0 {
		return t.cfg.Weight
	}
	return 1
}

// Submit admits an application. The returned session is queued (or
// immediately activated) and runs asynchronously; Wait blocks for it.
func (s *Server) Submit(spec JobSpec) (*Session, error) {
	if spec.Driver == nil {
		return nil, errors.New("server: a driver function is required")
	}
	if spec.Controller == nil {
		return nil, errors.New("server: a cache controller is required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, err := s.tenantLocked(spec.Tenant)
	if err != nil {
		return nil, err
	}
	sess := &Session{
		srv:    s,
		idx:    s.seq,
		tenant: spec.Tenant,
		spec:   spec,
		done:   make(chan struct{}),
	}
	s.seq++
	s.owners.set(sess.idx, spec.Tenant)
	t.submitted++
	t.queue = append(t.queue, sess)
	s.pending++
	s.activateLocked()
	return sess, nil
}

// wrrPick runs one smooth weighted-round-robin step over the eligible
// tenants (those for which eligible returns true), using the given
// credit accessor: every eligible tenant's credit grows by its weight,
// the max-credit tenant wins and pays the total weight. Deterministic:
// ties break by first-seen tenant order.
func (s *Server) wrrPick(eligible func(*tenantState) bool, credit func(*tenantState) *float64) *tenantState {
	var names []string
	var total float64
	for _, name := range s.order {
		t := s.tenants[name]
		if eligible(t) {
			names = append(names, name)
			total += t.weight()
		}
	}
	if len(names) == 0 {
		return nil
	}
	var best *tenantState
	for _, name := range names {
		t := s.tenants[name]
		*credit(t) += t.weight()
		if best == nil || *credit(t) > *credit(best) {
			best = t
		}
	}
	*credit(best) -= total
	return best
}

// activateLocked starts queued sessions while the active-session bound
// allows, picking tenants by weighted round-robin.
func (s *Server) activateLocked() {
	for s.pending > 0 && (s.cfg.MaxActiveSessions <= 0 || s.active < s.cfg.MaxActiveSessions) {
		t := s.wrrPick(
			func(t *tenantState) bool { return len(t.queue) > 0 },
			func(t *tenantState) *float64 { return &t.actCredit },
		)
		if t == nil {
			return
		}
		sess := t.queue[0]
		t.queue = t.queue[1:]
		s.pending--
		if sess.cancelled {
			sess.err = ErrCancelled
			t.cancelled++
			close(sess.done)
			continue
		}
		s.active++
		s.wg.Add(1)
		go sess.run()
	}
}

// scheduleLocked grants the pool to the next waiting session when it is
// free, picking the tenant by weighted round-robin and the tenant's
// earliest-admitted waiting session.
func (s *Server) scheduleLocked() {
	if s.grant != nil {
		return
	}
	t := s.wrrPick(
		func(t *tenantState) bool {
			for _, w := range s.waitersOf(t) {
				if !w.cancelled {
					return true
				}
			}
			return false
		},
		func(t *tenantState) *float64 { return &t.jobCredit },
	)
	if t == nil {
		return
	}
	var pick *Session
	for _, w := range s.waitersOf(t) {
		if w.cancelled {
			continue
		}
		if pick == nil || w.idx < pick.idx {
			pick = w
		}
	}
	if pick == nil {
		return
	}
	s.grant = pick
	t.jobsGranted++
	s.cond.Broadcast()
}

// waitersOf lists the tenant's sessions parked at the job gate.
func (s *Server) waitersOf(t *tenantState) []*Session {
	var out []*Session
	for _, sess := range s.byCluster {
		if sess.tenant == t.cfg.Name && sess.waiting {
			out = append(out, sess)
		}
	}
	return out
}

// AcquireJob implements engine.JobGate: park the session until the
// fair-share scheduler grants it the pool, then take pool exclusivity.
// Panics with ErrCancelled when the session was cancelled — the
// session's driver recovery unwinds the rest of the application.
func (s *Server) AcquireJob(c *engine.Cluster) {
	s.mu.Lock()
	sess := s.byCluster[c]
	if sess == nil {
		// Not a managed session (defensive): plain pool exclusivity.
		s.mu.Unlock()
		s.pool.Acquire()
		return
	}
	if sess.cancelled {
		s.mu.Unlock()
		panic(ErrCancelled)
	}
	sess.waiting = true
	s.scheduleLocked()
	for s.grant != sess {
		if sess.cancelled {
			sess.waiting = false
			s.mu.Unlock()
			panic(ErrCancelled)
		}
		s.cond.Wait()
	}
	sess.waiting = false
	// Never hold the server lock while acquiring the pool: the holder
	// may be a session finishing a job that needs the server lock to
	// release its grant.
	s.mu.Unlock()
	s.pool.Acquire()
}

// ReleaseJob implements engine.JobGate: drop pool exclusivity and let
// the scheduler grant the next waiting session.
func (s *Server) ReleaseJob(c *engine.Cluster) {
	s.pool.Release()
	s.mu.Lock()
	if s.grant == s.byCluster[c] {
		s.grant = nil
	}
	s.scheduleLocked()
	s.mu.Unlock()
}

// poolNow reads the shared pool's current virtual time safely (the
// clocks belong to whichever session is running a job).
func (s *Server) poolNow(sess *Session) time.Duration {
	s.pool.Acquire()
	defer s.pool.Release()
	return sess.cl.Now()
}

// sessionDone finalizes a session's accounting and wakes the scheduler.
func (s *Server) sessionDone(sess *Session) {
	s.mu.Lock()
	s.active--
	t := s.tenants[sess.tenant]
	switch {
	case sess.err == nil && sess.met != nil:
		t.completed++
		t.totalACT += sess.met.ACT
	default:
		t.cancelled++
	}
	if sess.cl != nil {
		delete(s.byCluster, sess.cl)
	}
	if s.grant == sess {
		// A cancelled session may die holding an unconsumed grant.
		s.grant = nil
	}
	s.scheduleLocked()
	s.activateLocked()
	s.mu.Unlock()
	close(sess.done)
}

// TenantStats is one tenant's share of Stats.
type TenantStats struct {
	Name        string
	Weight      float64
	Submitted   int
	Completed   int
	Cancelled   int
	JobsGranted int
	// TotalACT sums the completed sessions' application completion
	// times (the aggregate-ACT measure blazebench compares).
	TotalACT time.Duration
	// Quota accounting (zero values when the tenant has no quota).
	QuotaLimit      int64
	QuotaUsage      int64
	QuotaPeak       int64
	QuotaRejections int
}

// Stats is a point-in-time snapshot of the server.
type Stats struct {
	ActiveSessions  int
	PendingSessions int
	// Arbitrations counts cluster-wide ILP solves (0 unless Arbitrate).
	Arbitrations int
	Tenants      []TenantStats
}

// Stats snapshots the server's accounting.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		ActiveSessions:  s.active,
		PendingSessions: s.pending,
	}
	for _, name := range s.order {
		t := s.tenants[name]
		ts := TenantStats{
			Name:        name,
			Weight:      t.weight(),
			Submitted:   t.submitted,
			Completed:   t.completed,
			Cancelled:   t.cancelled,
			JobsGranted: t.jobsGranted,
			TotalACT:    t.totalACT,
		}
		st.Tenants = append(st.Tenants, ts)
	}
	s.mu.Unlock()
	if s.arbiter != nil {
		st.Arbitrations = s.arbiter.Runs()
	}
	if s.quota != nil {
		for i := range st.Tenants {
			name := st.Tenants[i].Name
			st.Tenants[i].QuotaLimit = s.quota.Limit(name)
			st.Tenants[i].QuotaUsage = s.quota.Usage(name)
			st.Tenants[i].QuotaPeak = s.quota.Peak(name)
			st.Tenants[i].QuotaRejections = s.quota.Rejections(name)
		}
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	return st
}

// Close stops admission, cancels queued (not yet active) sessions, and
// waits for active sessions to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, t := range s.tenants {
		for _, sess := range t.queue {
			sess.cancelled = true
			sess.err = ErrCancelled
			t.cancelled++
			close(sess.done)
		}
		t.queue = nil
	}
	s.pending = 0
	s.mu.Unlock()
	s.wg.Wait()
}

// Shutdown stops admission like Close, then drains gracefully: it waits
// for the active sessions to finish until ctx expires, and past the
// deadline cancels every remaining session and waits for those to
// unwind at their next job boundary. Returns nil when the drain
// completed in time, ctx.Err() when sessions had to be cancelled.
// Streaming sessions idle between windows are not reachable by
// cancellation (jobs are the atomic unit); their clients must Close
// them for the drain to complete.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, t := range s.tenants {
			for _, sess := range t.queue {
				sess.cancelled = true
				sess.err = ErrCancelled
				t.cancelled++
				close(sess.done)
			}
			t.queue = nil
		}
		s.pending = 0
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, sess := range s.byCluster {
		sess.cancelled = true
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	<-drained
	return ctx.Err()
}

// Session is one admitted application.
type Session struct {
	srv    *Server
	idx    int
	tenant string
	spec   JobSpec

	ctx *dataflow.Context
	cl  *engine.Cluster
	met *metrics.App
	err error

	// waiting marks the session parked at the job gate; cancelled marks
	// a cancellation request (effective at the next job boundary). Both
	// are guarded by srv.mu.
	waiting   bool
	cancelled bool

	done chan struct{}
}

// ID returns the session's index (also its dataset-id namespace slot).
func (sess *Session) ID() int { return sess.idx }

// Tenant returns the owning tenant.
func (sess *Session) Tenant() string { return sess.tenant }

// Wait blocks until the session completes and returns its error
// (ErrCancelled for cancelled sessions, nil on success).
func (sess *Session) Wait() error {
	<-sess.done
	return sess.err
}

// Done returns a channel closed when the session completes, for
// select-based waiting (context cancellation watchers).
func (sess *Session) Done() <-chan struct{} { return sess.done }

// MemoryPerExecutor returns the shared pool's per-executor memory
// capacity (every session shares it).
func (sess *Session) MemoryPerExecutor() int64 {
	return sess.srv.pool.Config().MemoryPerExecutor
}

// Metrics returns the session's sealed metrics (nil until Wait returns
// nil).
func (sess *Session) Metrics() *metrics.App {
	select {
	case <-sess.done:
		return sess.met
	default:
		return nil
	}
}

// Cancel requests cancellation: queued sessions never start; running
// sessions unwind at their next job boundary (the job in flight, if
// any, completes — jobs are the atomic scheduling unit).
func (sess *Session) Cancel() {
	sess.srv.mu.Lock()
	sess.cancelled = true
	sess.srv.cond.Broadcast()
	sess.srv.mu.Unlock()
}

// run executes the session: build its namespaced context and pooled
// cluster, register with the arbiter, run the driver (unwinding on
// cancellation), seal metrics.
func (sess *Session) run() {
	s := sess.srv
	defer s.wg.Done()
	defer s.sessionDone(sess)

	ctx := dataflow.NewContext()
	ctx.SetIDBase(sess.idx * IDStride)
	sess.ctx = ctx

	par := sess.spec.Parallelism
	if par <= 0 {
		par = s.cfg.Parallelism
	}
	cl, err := engine.NewCluster(engine.Config{
		Params:      sess.spec.Params,
		Controller:  sess.spec.Controller,
		AlluxioMode: sess.spec.AlluxioMode,
		EventLog:    sess.spec.EventLog,
		Hook:        sess.spec.Hook,
		Parallelism: par,
		Vectorized:  sess.spec.Vectorized,
		Resilience:  sess.spec.Resilience,
		Pool:        s.pool,
		Gate:        s,
	}, ctx)
	if err != nil {
		sess.err = err
		return
	}
	sess.cl = cl
	met := cl.Metrics()
	met.Tenant = sess.tenant
	if sess.spec.ProfilingOverhead > 0 {
		cl.AddProfilingTime(sess.spec.ProfilingOverhead)
	}

	s.mu.Lock()
	s.byCluster[cl] = sess
	weight := s.tenants[sess.tenant].weight()
	s.mu.Unlock()

	if s.arbiter != nil {
		if bc, ok := sess.spec.Controller.(*core.Controller); ok && bc.ILPEnabled() {
			s.arbiter.Register(bc, weight)
			defer s.arbiter.Unregister(bc)
		}
	}

	s.emit(eventlog.Event{Kind: eventlog.SessionStart, Time: s.poolNow(sess),
		Session: sess.idx, Tenant: sess.tenant})

	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && errors.Is(err, ErrCancelled) {
					sess.err = ErrCancelled
					return
				}
				if err, ok := r.(error); ok && errors.Is(err, faults.ErrServerCrash) {
					// An injected server crash killed the session
					// mid-stream. The session dies with this error — and
					// falls through the normal teardown below, so its
					// blocks leave the shared cache and every byte the
					// quota ledger charged it is released, exactly like a
					// completed session. Recovery is the client's move:
					// resume from the checkpoint directory.
					sess.err = err
					return
				}
				panic(r)
			}
		}()
		sess.spec.Driver(ctx)
	}()

	if sess.err == nil {
		sess.met = cl.Finish()
	}

	// The application is gone, and its cache with it: silently release
	// the session's blocks (its dataset-id namespace) from the shared
	// pool so they stop occupying — and, with their stamped costs,
	// defending — memory other sessions could use.
	s.pool.Acquire()
	cl.DropNamespaceBlocks(sess.idx*IDStride, (sess.idx+1)*IDStride)
	s.pool.Release()

	s.emit(eventlog.Event{Kind: eventlog.SessionEnd, Time: s.poolNow(sess),
		Session: sess.idx, Tenant: sess.tenant})
}
