package server

import (
	"errors"
	"sync"

	"blaze/internal/dataflow"
	"blaze/internal/engine"
)

// ErrStreamClosed is returned by stream operations after Close.
var ErrStreamClosed = errors.New("server: stream session closed")

// streamCmd is one request to the stream session's driver loop: either
// run fn in driver context (a window's DAG submission, or any driver-side
// read), or — when fn is nil — advance to the next window.
type streamCmd struct {
	fn     func(ctx *dataflow.Context)
	window chan int // receives the new window index on an advance
	done   chan struct{}
}

// StreamSession is a micro-batch streaming session on the job server:
// one long-lived server session whose driver is a command loop. Each
// window's DAG is submitted through Do against the same dataflow
// context, so datasets cached in window k (rank vectors, centroids) are
// ordinary already-cached blocks in window k+1; NextWindow marks the
// boundary, where the controller retires dead lineage and re-solves
// placement incrementally. All methods must be called from one client
// goroutine; jobs still interleave fairly with other sessions on the
// shared pool.
type StreamSession struct {
	sess *Session

	mu     sync.Mutex
	closed bool
	cmds   chan streamCmd
}

// SubmitStream admits a streaming session. JobSpec.Driver must be nil:
// the stream owns the driver (a command loop that opens window 1 and
// then serves Do/NextWindow requests). All other JobSpec fields apply
// as for Submit.
func (s *Server) SubmitStream(spec JobSpec) (*StreamSession, error) {
	if spec.Driver != nil {
		return nil, errors.New("server: stream sessions own their driver; leave JobSpec.Driver nil")
	}
	st := &StreamSession{cmds: make(chan streamCmd)}
	spec.Driver = st.loop
	sess, err := s.Submit(spec)
	if err != nil {
		return nil, err
	}
	st.sess = sess
	return st, nil
}

// loop is the stream session's driver: it opens window 1 and serves
// commands until Close. A cancellation panic from a window's jobs
// unwinds through here to the session's recovery; the blocked client
// call observes the session's done channel instead of its reply.
func (st *StreamSession) loop(ctx *dataflow.Context) {
	cl, _ := ctx.Runner().(*engine.Cluster)
	if cl != nil {
		cl.StartWindow()
	}
	for cmd := range st.cmds {
		if cmd.fn != nil {
			cmd.fn(ctx)
		} else if cl != nil {
			cmd.window <- cl.StartWindow()
		}
		close(cmd.done)
	}
}

// Session returns the underlying server session.
func (st *StreamSession) Session() *Session { return st.sess }

// Do runs fn in the session's driver context and blocks until it
// returns: dataflow actions inside fn execute as jobs on the shared
// pool under fair-share scheduling. Returns the session's error if it
// ended (cancellation) before fn completed.
func (st *StreamSession) Do(fn func(ctx *dataflow.Context)) error {
	cmd := streamCmd{fn: fn, done: make(chan struct{})}
	return st.send(cmd)
}

// NextWindow closes the current micro-batch window and opens the next:
// the controller retires lineage whose lifetime has passed and re-solves
// the ILP as a delta on the previous window's assignment. Returns the
// new 1-based window index.
func (st *StreamSession) NextWindow() (int, error) {
	cmd := streamCmd{window: make(chan int, 1), done: make(chan struct{})}
	if err := st.send(cmd); err != nil {
		return 0, err
	}
	select {
	case w := <-cmd.window:
		return w, nil
	default:
		return 0, ErrStreamClosed
	}
}

// send delivers one command to the driver loop and waits for it.
func (st *StreamSession) send(cmd streamCmd) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrStreamClosed
	}
	cmds := st.cmds
	st.mu.Unlock()

	select {
	case cmds <- cmd:
	case <-st.sess.done:
		return st.endErr()
	}
	select {
	case <-cmd.done:
		return nil
	case <-st.sess.done:
		return st.endErr()
	}
}

func (st *StreamSession) endErr() error {
	if st.sess.err != nil {
		return st.sess.err
	}
	return ErrStreamClosed
}

// Close ends the stream: the driver loop exits, the session finishes
// (metrics sealed, namespace blocks released) and its final error is
// returned. Idempotent.
func (st *StreamSession) Close() error {
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		close(st.cmds)
	}
	st.mu.Unlock()
	return st.sess.Wait()
}
