package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/enginetest"
	"blaze/internal/faults"
)

// TestServerCrashReleasesQuota pins the crash teardown invariant: a
// session killed by the server-crash fault mid-run still releases every
// byte its cached blocks charged against the tenant quota, and its
// namespace blocks leave the shared cache — the recovered panic falls
// through the normal teardown path.
func TestServerCrashReleasesQuota(t *testing.T) {
	s, err := New(Config{
		Executors:         4,
		MemoryPerExecutor: 1 << 16,
		Tenants:           []TenantConfig{{Name: "crashy", MemoryQuota: 1 << 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sess, err := s.Submit(JobSpec{
		Tenant:     "crashy",
		Controller: engine.NewSparkMemDisk(),
		Params:     costmodel.Default(),
		Driver: func(ctx *dataflow.Context) {
			enginetest.BuildRandomProgram(9, ctx)
			panic(faults.ErrServerCrash)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Wait(); !errors.Is(err, faults.ErrServerCrash) {
		t.Fatalf("crashed session: err = %v, want ErrServerCrash", err)
	}
	if peak := s.Quota().Peak("crashy"); peak == 0 {
		t.Fatal("program cached nothing; the quota-release check is vacuous")
	}
	if used := s.Quota().Usage("crashy"); used != 0 {
		t.Fatalf("quota ledger holds %d bytes after crash death, want 0", used)
	}
	if st := s.Stats(); st.ActiveSessions != 0 {
		t.Fatalf("crashed session still counted active: %+v", st)
	}
}

// TestShutdownDrains covers the graceful path: Shutdown with a generous
// deadline waits for running sessions to finish, cancels queued ones,
// and later submissions are refused.
func TestShutdownDrains(t *testing.T) {
	s, err := New(Config{Executors: 2, MemoryPerExecutor: 1 << 16, MaxActiveSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	running, err := s.Submit(JobSpec{
		Controller: engine.NewSparkMemDisk(),
		Params:     costmodel.Default(),
		Driver: func(ctx *dataflow.Context) {
			close(started)
			<-release
			enginetest.BuildRandomProgram(12, ctx)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(programSpec("", 13, engine.NewSparkMemDisk(), nil))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := running.Wait(); err != nil {
		t.Fatalf("running session should have drained cleanly: %v", err)
	}
	if err := queued.Wait(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("queued session: err = %v, want ErrCancelled", err)
	}
	if _, err := s.Submit(programSpec("", 14, engine.NewSparkMemDisk(), nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Shutdown: err = %v, want ErrClosed", err)
	}
}

// TestShutdownDeadlineCancels covers the forced path: when the deadline
// expires before running sessions drain, Shutdown cancels them (taking
// effect at their next job boundary) and returns the context error.
func TestShutdownDeadlineCancels(t *testing.T) {
	s, err := New(Config{Executors: 2, MemoryPerExecutor: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	looper, err := s.Submit(JobSpec{
		Controller: engine.NewSparkMemDisk(),
		Params:     costmodel.Default(),
		Driver: func(ctx *dataflow.Context) {
			// Run jobs forever; only cancellation at a job boundary stops
			// this driver.
			for i := int64(0); ; i++ {
				enginetest.BuildRandomProgram(20+i%5, ctx)
				select {
				case started <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown: err = %v, want DeadlineExceeded", err)
	}
	if err := looper.Wait(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("looping session: err = %v, want ErrCancelled", err)
	}
}

// TestStreamSessionDoubleClose pins Close idempotency on streaming
// sessions: closing twice must not panic (no double close of the
// command channel) and returns the session's final error both times.
func TestStreamSessionDoubleClose(t *testing.T) {
	s, err := New(Config{Executors: 2, MemoryPerExecutor: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.SubmitStream(JobSpec{
		Controller: engine.NewSparkMemDisk(),
		Params:     costmodel.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Do(func(ctx *dataflow.Context) { enginetest.BuildRandomProgram(31, ctx) }); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := st.Do(func(*dataflow.Context) {}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Do after Close: err = %v, want ErrStreamClosed", err)
	}
}
