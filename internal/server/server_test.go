package server

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"blaze/internal/core"
	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/enginetest"
	"blaze/internal/eventlog"
	"blaze/internal/metrics"
)

// programSpec builds a JobSpec running the seeded random program and
// recording its checksums.
func programSpec(tenant string, seed int64, ctl engine.Controller, sums *[]int64) JobSpec {
	return JobSpec{
		Tenant:     tenant,
		Controller: ctl,
		Params:     costmodel.Default(),
		Driver: func(ctx *dataflow.Context) {
			got := enginetest.BuildRandomProgram(seed, ctx)
			if sums != nil {
				*sums = got
			}
		},
	}
}

func TestSingleSessionMatchesStandalone(t *testing.T) {
	const seed = 7
	// Standalone reference: a private cluster, the pre-server path.
	refLog := eventlog.New()
	ctx := dataflow.NewContext()
	cl, err := engine.NewCluster(engine.Config{
		Executors:         4,
		MemoryPerExecutor: 1 << 16,
		Params:            costmodel.Default(),
		Controller:        engine.NewSparkMemDisk(),
		EventLog:          refLog,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	refSums := enginetest.BuildRandomProgram(seed, ctx)
	refMet := cl.Finish()

	// The same program as the only session of a server.
	srvLog := eventlog.New()
	s, err := New(Config{Executors: 4, MemoryPerExecutor: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var sums []int64
	spec := programSpec("", seed, engine.NewSparkMemDisk(), &sums)
	spec.EventLog = srvLog
	sess, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}

	if fmt.Sprint(sums) != fmt.Sprint(refSums) {
		t.Fatalf("checksums differ: standalone %v, server %v", refSums, sums)
	}
	if !metrics.EqualDeterministic(refMet, sess.Metrics()) {
		t.Fatalf("metrics differ:\nstandalone %+v\nserver     %+v", refMet, sess.Metrics())
	}
	var refBuf, srvBuf bytes.Buffer
	if err := refLog.WriteJSON(&refBuf); err != nil {
		t.Fatal(err)
	}
	if err := srvLog.WriteJSON(&srvBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBuf.Bytes(), srvBuf.Bytes()) {
		t.Fatal("event logs differ between standalone and single-session server")
	}
}

func TestConcurrentSessionsCompleteWithQuotas(t *testing.T) {
	const perTenant = 3
	tenants := []TenantConfig{
		{Name: "a", Weight: 2, MemoryQuota: 24 << 10},
		{Name: "b", Weight: 1, MemoryQuota: 16 << 10},
		{Name: "c", Weight: 1, MemoryQuota: 8 << 10},
	}
	s, err := New(Config{
		Executors:         4,
		MemoryPerExecutor: 1 << 16,
		Tenants:           tenants,
		Arbitrate:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type sub struct {
		sess *Session
		sums *[]int64
		seed int64
	}
	var subs []sub
	for i := 0; i < perTenant; i++ {
		for _, tc := range tenants {
			seed := int64(100 + i*10 + int(tc.Name[0]))
			sums := new([]int64)
			sess, err := s.Submit(programSpec(tc.Name, seed, engine.NewSparkMemDisk(), sums))
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub{sess: sess, sums: sums, seed: seed})
		}
	}
	for _, sb := range subs {
		if err := sb.sess.Wait(); err != nil {
			t.Fatalf("session %d: %v", sb.sess.ID(), err)
		}
		want := enginetest.RefChecksums(sb.seed)
		if fmt.Sprint(*sb.sums) != fmt.Sprint(want) {
			t.Fatalf("session %d (seed %d): checksums %v, want %v", sb.sess.ID(), sb.seed, *sb.sums, want)
		}
	}

	st := s.Stats()
	if st.ActiveSessions != 0 || st.PendingSessions != 0 {
		t.Fatalf("sessions left over: %+v", st)
	}
	for _, ts := range st.Tenants {
		if ts.Completed != perTenant {
			t.Fatalf("tenant %s completed %d, want %d", ts.Name, ts.Completed, perTenant)
		}
		if ts.QuotaPeak > ts.QuotaLimit {
			t.Fatalf("tenant %s peak %d exceeds quota %d", ts.Name, ts.QuotaPeak, ts.QuotaLimit)
		}
		if ts.TotalACT <= 0 {
			t.Fatalf("tenant %s has no aggregate ACT", ts.Name)
		}
	}
}

func TestQuotaNeverExceededUnderPressure(t *testing.T) {
	// A quota far below what the program caches: admissions must be
	// refused (or reclaim the tenant's own blocks), never exceed it.
	s, err := New(Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 16,
		Tenants:           []TenantConfig{{Name: "tight", MemoryQuota: 2 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess, err := s.Submit(programSpec("tight", 11, engine.NewSparkMemDisk(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak := s.Quota().Peak("tight"); peak > 2<<10 {
		t.Fatalf("peak %d exceeds quota %d", peak, 2<<10)
	}
	met := sess.Metrics()
	if s.Quota().Rejections("tight") == 0 && met.QuotaEvictions == 0 {
		t.Fatal("a tight quota should have refused or reclaimed at least one admission")
	}
}

func TestArbitrationRunsAcrossSessions(t *testing.T) {
	s, err := New(Config{
		Executors:         2,
		MemoryPerExecutor: 8 << 10,
		Arbitrate:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Barrier: no session runs a job until all three are registered
	// with the arbiter (registration precedes the driver), so the very
	// first job-start sees multiple live sessions and must arbitrate.
	var ready sync.WaitGroup
	ready.Add(3)
	var sessions []*Session
	for i := 0; i < 3; i++ {
		seed := int64(40 + i)
		// Blaze controllers without a profiled skeleton still run the
		// job-start ILP over observed lineage.
		sess, err := s.Submit(JobSpec{
			Controller: core.NewBlaze(),
			Params:     costmodel.Default(),
			Driver: func(ctx *dataflow.Context) {
				ready.Done()
				ready.Wait()
				enginetest.BuildRandomProgram(seed, ctx)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
	}
	for _, sess := range sessions {
		if err := sess.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Arbitrations == 0 {
		t.Fatal("concurrent Blaze sessions should have triggered cluster-wide arbitration")
	}
}

func TestFairShareGrantsFollowWeights(t *testing.T) {
	tenants := []TenantConfig{
		{Name: "heavy", Weight: 3},
		{Name: "light", Weight: 1},
	}
	s, err := New(Config{Executors: 2, MemoryPerExecutor: 1 << 16, Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var all []*Session
	for i := 0; i < 4; i++ {
		for _, tc := range tenants {
			sess, err := s.Submit(programSpec(tc.Name, int64(60+i), engine.NewSparkMemDisk(), nil))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, sess)
		}
	}
	for _, sess := range all {
		if err := sess.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	byName := make(map[string]TenantStats)
	for _, ts := range st.Tenants {
		byName[ts.Name] = ts
	}
	// Both tenants ran the same jobs, so grant counts are equal in
	// total; the WRR discipline shows in who went first, which is not
	// observable after the fact. Assert the accounting is complete.
	if byName["heavy"].JobsGranted == 0 || byName["light"].JobsGranted == 0 {
		t.Fatalf("both tenants should have been granted jobs: %+v", st.Tenants)
	}
	if byName["heavy"].Completed != 4 || byName["light"].Completed != 4 {
		t.Fatalf("all sessions should have completed: %+v", st.Tenants)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s, err := New(Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 16,
		MaxActiveSessions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := s.Submit(JobSpec{
		Controller: engine.NewSparkMemDisk(),
		Params:     costmodel.Default(),
		Driver: func(ctx *dataflow.Context) {
			close(started)
			<-release
			enginetest.BuildRandomProgram(3, ctx)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Queued behind MaxActiveSessions=1: cancelled before it starts.
	queued, err := s.Submit(programSpec("", 4, engine.NewSparkMemDisk(), nil))
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()

	// Cancel the running session, then let its driver reach the next
	// job boundary, where cancellation takes effect.
	blocker.Cancel()
	close(release)
	if err := blocker.Wait(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("running session: err = %v, want ErrCancelled", err)
	}
	if err := queued.Wait(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("queued session: err = %v, want ErrCancelled", err)
	}
	st := s.Stats()
	if st.ActiveSessions != 0 || st.PendingSessions != 0 {
		t.Fatalf("sessions left over after cancellation: %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{
		Executors:         1,
		MemoryPerExecutor: 1 << 12,
		Tenants:           []TenantConfig{{Name: "only"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(JobSpec{Tenant: "only", Controller: engine.NewSparkMemDisk()}); err == nil {
		t.Fatal("missing driver should be rejected")
	}
	if _, err := s.Submit(JobSpec{Tenant: "only", Driver: func(*dataflow.Context) {}}); err == nil {
		t.Fatal("missing controller should be rejected")
	}
	if _, err := s.Submit(programSpec("ghost", 1, engine.NewSparkMemDisk(), nil)); err == nil {
		t.Fatal("unknown tenant should be rejected when tenants are declared")
	}
}

func TestCloseCancelsQueuedAndRejectsSubmit(t *testing.T) {
	s, err := New(Config{Executors: 1, MemoryPerExecutor: 1 << 12, MaxActiveSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := s.Submit(JobSpec{
		Controller: engine.NewSparkMemDisk(),
		Params:     costmodel.Default(),
		Driver: func(ctx *dataflow.Context) {
			close(started)
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(programSpec("", 5, engine.NewSparkMemDisk(), nil))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	s.Close()
	if err := queued.Wait(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("queued session after Close: err = %v, want ErrCancelled", err)
	}
	if err := blocker.Wait(); err != nil {
		t.Fatalf("running session should drain on Close: %v", err)
	}
	if _, err := s.Submit(programSpec("", 6, engine.NewSparkMemDisk(), nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
}
