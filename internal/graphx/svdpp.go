package graphx

import (
	"math"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// RatingList holds one user's ratings; it implements storage.Sized and
// is deliberately structure-heavy — the paper observes SVD++ partitions
// serialize 2.5-6.4× slower than other workloads (§7.2), which the
// harness models with an elevated serialization factor.
type RatingList struct {
	Items  []int64
	Scores []float64
}

// SizeBytes implements storage.Sized.
func (r RatingList) SizeBytes() int64 { return 48 + 16*int64(len(r.Items)) }

// Factors is a latent factor vector.
type Factors struct {
	V []float64
}

// SizeBytes implements storage.Sized.
func (f Factors) SizeBytes() int64 { return 24 + 8*int64(len(f.V)) }

// SVDPPConfig parameterizes the SVD++ workload: iterative matrix
// factorization over user×item ratings.
type SVDPPConfig struct {
	Ratings   datagen.RatingsSpec
	Parts     int
	Rank      int
	Iters     int
	LearnRate float64
	Reg       float64
	Annotate  bool
}

func (c SVDPPConfig) withDefaults() SVDPPConfig {
	if c.Parts == 0 {
		c.Parts = 8
	}
	if c.Rank == 0 {
		c.Rank = 8
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.02
	}
	if c.Reg == 0 {
		c.Reg = 0.05
	}
	return c
}

// initFactors deterministically initializes a factor vector for an id.
func initFactors(id int64, rank int, salt uint64) Factors {
	v := make([]float64, rank)
	x := uint64(id)*0x9e3779b97f4a7c15 + salt
	for d := range v {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		v[d] = (float64(x%2048)/2048.0 - 0.5) * 0.2
	}
	return Factors{V: v}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SVDPP trains the factorization and returns the final training RMSE.
// Each iteration submits one job: user factors update locally, item
// gradients shuffle by item, and the item factor table broadcasts to the
// user partitions — the heavy data movement that makes SVD++
// serialization-bound in the paper.
func SVDPP(ctx *dataflow.Context, cfg SVDPPConfig) float64 {
	cfg = cfg.withDefaults()
	spec := cfg.Ratings

	ratings := ctx.Source("svd-ratings@0", cfg.Parts, func(part int) []dataflow.Record {
		var out []dataflow.Record
		for u := int64(0); u < int64(spec.Users); u++ {
			if dataflow.HashPartition(u, cfg.Parts) != part {
				continue
			}
			items, scores := spec.UserRatings(u)
			out = append(out, dataflow.Record{Key: u, Value: RatingList{Items: items, Scores: scores}})
		}
		return out
	})
	if cfg.Annotate {
		ratings.Cache()
	}
	userF := ratings.Map("svd-userf@0", func(r dataflow.Record) dataflow.Record {
		return dataflow.Record{Key: r.Key, Value: initFactors(r.Key, cfg.Rank, 0xabcd)}
	}).WithBatchKernel(factorsInitKernel(cfg.Rank, 0xabcd))
	itemF := ctx.Source("svd-itemf@0", cfg.Parts, func(part int) []dataflow.Record {
		var out []dataflow.Record
		for it := int64(0); it < int64(spec.Items); it++ {
			if dataflow.HashPartition(it, cfg.Parts) == part {
				out = append(out, dataflow.Record{Key: it, Value: initFactors(it, cfg.Rank, 0x1234)})
			}
		}
		return out
	})
	if cfg.Annotate {
		userF.Cache()
		itemF.Cache()
	}

	// Released with cleaner lag, as in PageRank.
	var releaseQueue []*dataflow.Dataset
	for it := 1; it <= cfg.Iters; it++ {
		// User-side state: ratings zipped with the user's factors.
		ur := dataflow.Zip(name("svd-ur", it), dataflow.OpLight, ratings, userF,
			func(_ int, rs, fs []dataflow.Record) []dataflow.Record {
				f := vertexMap(fs)
				out := make([]dataflow.Record, 0, len(rs))
				for _, r := range rs {
					if fv, ok := f[r.Key]; ok {
						out = append(out, dataflow.Record{Key: r.Key, Value: []any{r.Value, fv}})
					}
				}
				return out
			})

		// New user factors: gradient step against the broadcast item
		// factor table.
		newUserF := dataflow.Barrier(name("svd-userf", it), dataflow.OpHeavy, ur, itemF,
			func(_ int, us, items []dataflow.Record) []dataflow.Record {
				itf := vertexMap(items)
				out := make([]dataflow.Record, 0, len(us))
				for _, u := range us {
					pair := u.Value.([]any)
					rl := pair[0].(RatingList)
					uf := pair[1].(Factors)
					grad := make([]float64, cfg.Rank)
					for i, item := range rl.Items {
						iv, ok := itf[item]
						if !ok {
							continue
						}
						ifv := iv.(Factors)
						err := rl.Scores[i] - 3 - dot(uf.V, ifv.V)
						for d := 0; d < cfg.Rank; d++ {
							grad[d] += err*ifv.V[d] - cfg.Reg*uf.V[d]
						}
					}
					nv := make([]float64, cfg.Rank)
					for d := range nv {
						nv[d] = uf.V[d] + cfg.LearnRate*grad[d]
					}
					out = append(out, dataflow.Record{Key: u.Key, Value: Factors{V: nv}})
				}
				return out
			})

		// Item gradient contributions from every rating, shuffled by item.
		urNew := dataflow.Zip(name("svd-urnew", it), dataflow.OpLight, ratings, newUserF,
			func(_ int, rs, fs []dataflow.Record) []dataflow.Record {
				f := vertexMap(fs)
				out := make([]dataflow.Record, 0, len(rs))
				for _, r := range rs {
					if fv, ok := f[r.Key]; ok {
						out = append(out, dataflow.Record{Key: r.Key, Value: []any{r.Value, fv}})
					}
				}
				return out
			})
		contrib := dataflow.Barrier(name("svd-contrib", it), dataflow.OpHeavy, urNew, itemF,
			func(_ int, us, items []dataflow.Record) []dataflow.Record {
				itf := vertexMap(items)
				var out []dataflow.Record
				for _, u := range us {
					pair := u.Value.([]any)
					rl := pair[0].(RatingList)
					uf := pair[1].(Factors)
					for i, item := range rl.Items {
						iv, ok := itf[item]
						if !ok {
							continue
						}
						ifv := iv.(Factors)
						err := rl.Scores[i] - 3 - dot(uf.V, ifv.V)
						g := make([]float64, cfg.Rank)
						for d := 0; d < cfg.Rank; d++ {
							g[d] = err*uf.V[d] - cfg.Reg*ifv.V[d]
						}
						out = append(out, dataflow.Record{Key: item, Value: Factors{V: g}})
					}
				}
				return out
			})
		itemGrads := contrib.ReduceByKey(name("svd-itemg", it), cfg.Parts, func(a, b any) any {
			av, bv := a.(Factors), b.(Factors)
			sum := make([]float64, len(av.V))
			for d := range sum {
				sum[d] = av.V[d] + bv.V[d]
			}
			return Factors{V: sum}
		}).WithBatchKernel(mergeFactorsKernel())
		newItemF := dataflow.Zip(name("svd-itemf", it), dataflow.OpMedium, itemF, itemGrads,
			func(_ int, fs, gs []dataflow.Record) []dataflow.Record {
				grad := vertexMap(gs)
				out := make([]dataflow.Record, len(fs))
				for i, f := range fs {
					fv := f.Value.(Factors)
					nv := append([]float64(nil), fv.V...)
					if gv, ok := grad[f.Key]; ok {
						g := gv.(Factors)
						for d := range nv {
							nv[d] += cfg.LearnRate * g.V[d]
						}
					}
					out[i] = dataflow.Record{Key: f.Key, Value: Factors{V: nv}}
				}
				return out
			}).WithBatchKernel(factorsStepKernel(cfg.LearnRate))
		if cfg.Annotate {
			newUserF.Cache()
			newItemF.Cache()
		}
		newItemF.Count() // the iteration's job
		newUserF.Count() // materialize user factors for the next iteration

		releaseQueue = append(releaseQueue, userF, itemF, contrib)
		for len(releaseQueue) > 6 {
			releaseQueue[0].Release()
			releaseQueue = releaseQueue[1:]
		}
		userF, itemF = newUserF, newItemF
	}

	// Final training RMSE.
	ur := dataflow.Zip(name("svd-ur", cfg.Iters+1), dataflow.OpLight, ratings, userF,
		func(_ int, rs, fs []dataflow.Record) []dataflow.Record {
			f := vertexMap(fs)
			out := make([]dataflow.Record, 0, len(rs))
			for _, r := range rs {
				if fv, ok := f[r.Key]; ok {
					out = append(out, dataflow.Record{Key: r.Key, Value: []any{r.Value, fv}})
				}
			}
			return out
		})
	errs := dataflow.Barrier("svd-errs@0", dataflow.OpHeavy, ur, itemF,
		func(_ int, us, items []dataflow.Record) []dataflow.Record {
			itf := vertexMap(items)
			se, n := 0.0, 0
			for _, u := range us {
				pair := u.Value.([]any)
				rl := pair[0].(RatingList)
				uf := pair[1].(Factors)
				for i, item := range rl.Items {
					if iv, ok := itf[item]; ok {
						e := rl.Scores[i] - 3 - dot(uf.V, iv.(Factors).V)
						se += e * e
						n++
					}
				}
			}
			return []dataflow.Record{{Key: 0, Value: []float64{se, float64(n)}}}
		})
	totals := errs.ReduceByKey("svd-rmse@0", 1, func(a, b any) any {
		av, bv := a.([]float64), b.([]float64)
		return []float64{av[0] + bv[0], av[1] + bv[1]}
	})
	var se, n float64
	for _, part := range totals.Collect() {
		for _, r := range part {
			v := r.Value.([]float64)
			se, n = v[0], v[1]
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(se / n)
}

// SVDPPWorkload wraps SVD++ as a profile-compatible workload.
func SVDPPWorkload(cfg SVDPPConfig) func(ctx *dataflow.Context, scale float64) {
	return func(ctx *dataflow.Context, scale float64) {
		c := cfg.withDefaults()
		c.Ratings.Users = scaled(c.Ratings.Users, scale)
		SVDPP(ctx, c)
	}
}
