package graphx

// Exported hot-path surfaces for the throughput benchmarks
// (bench_hotpath_test.go and blazebench -throughput): deterministic
// PageRank partition builders plus the row closure and batch kernel of
// the contributions operator, the workload's hottest stage. The row
// function is the same logic the workload registers; the batch function
// is the same kernel the engine runs, so kernel-level measurements
// reflect the real per-task data plane.

import (
	"blaze/internal/dataflow"
)

// BenchPRPartition builds one deterministic rank-graph partition of
// verts vertices with out-degree deg, in both representations.
func BenchPRPartition(verts, deg int) ([]dataflow.Record, *dataflow.Batch) {
	recs := make([]dataflow.Record, verts)
	for i := range recs {
		adj := make([]int64, deg)
		for j := range adj {
			adj[j] = int64((i*31 + j*17) % verts)
		}
		recs[i] = dataflow.Record{Key: int64(i), Value: VertexRank{Adj: adj, Rank: 1 + float64(i%7)/7}}
	}
	return recs, dataflow.FromRecords(recs)
}

// BenchContribsRow runs the contributions FlatMap the way the row task
// loop does: one closure call and one boxed []Record per input record.
func BenchContribsRow(recs []dataflow.Record) []dataflow.Record {
	f := func(r dataflow.Record) []dataflow.Record {
		v := r.Value.(VertexRank)
		if len(v.Adj) == 0 {
			return nil
		}
		share := v.Rank / float64(len(v.Adj))
		out := make([]dataflow.Record, len(v.Adj))
		for i, dst := range v.Adj {
			out[i] = dataflow.Record{Key: dst, Value: share}
		}
		return out
	}
	var out []dataflow.Record
	for _, r := range recs {
		out = append(out, f(r)...)
	}
	return out
}

// BenchContribsBatch runs the contributions kernel the way the
// vectorized task loop does. The caller owns (and should Release) the
// returned batch.
func BenchContribsBatch(in *dataflow.Batch) *dataflow.Batch {
	return contribsKernel()(0, []*dataflow.Batch{in})
}
