package graphx

import (
	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// VertexRank is the per-vertex state of the rank graph: GraphX's
// PageRank carries the full graph (adjacency + rank) through every
// iteration, so each iteration's rankGraph is both large (it contains
// the edges) and deep-lineaged (it derives from the previous
// iteration's graph). This is what makes the paper's PR working set
// grow to >10× the input (§1) and its recomputation chains lengthen
// across iterations (Fig. 5).
type VertexRank struct {
	Adj  []int64
	Rank float64
}

// SizeBytes implements storage.Sized.
func (v VertexRank) SizeBytes() int64 { return 40 + 8*int64(len(v.Adj)) }

// PageRankConfig parameterizes the PageRank workload (§7.1: SparkBench
// power-law graph, GraphX iteration structure).
type PageRankConfig struct {
	Graph datagen.GraphSpec
	Parts int
	Iters int
	// ResetProb is the damping reset probability (0.15 by default).
	ResetProb float64
	// Annotate applies the GraphX cache()/unpersist() annotations for
	// annotation-based systems; Blaze runs without them.
	Annotate bool
}

func (c PageRankConfig) withDefaults() PageRankConfig {
	if c.ResetProb == 0 {
		c.ResetProb = 0.15
	}
	if c.Parts == 0 {
		c.Parts = 8
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	return c
}

// PageRank runs the algorithm and returns the final ranks per vertex.
// One job is submitted per iteration; each iteration derives a new rank
// graph from the previous one, caches it, and releases the superseded
// graph and messages — exactly the Fig. 1 choreography.
func PageRank(ctx *dataflow.Context, cfg PageRankConfig) map[int64]float64 {
	cfg = cfg.withDefaults()
	adj := adjacencySource(ctx, "pr-adj@0", cfg.Graph, cfg.Parts)
	graph := adj.Map("pr-graph@0", func(r dataflow.Record) dataflow.Record {
		return dataflow.Record{Key: r.Key, Value: VertexRank{Adj: r.Value.(AdjList).Dsts, Rank: 1}}
	}).WithBatchKernel(rankInitKernel())
	if cfg.Annotate {
		graph.Cache()
	}

	// Superseded generations are released with one extra iteration of
	// lag, modeling Spark's asynchronous ContextCleaner: shuffle files
	// linger briefly after an RDD goes out of scope, so recomputation
	// chains span a bounded number of iterations.
	var releaseQueue []*dataflow.Dataset
	for it := 1; it <= cfg.Iters; it++ {
		contribs := graph.FlatMap(name("pr-contribs", it), func(r dataflow.Record) []dataflow.Record {
			v := r.Value.(VertexRank)
			if len(v.Adj) == 0 {
				return nil
			}
			share := v.Rank / float64(len(v.Adj))
			out := make([]dataflow.Record, len(v.Adj))
			for i, dst := range v.Adj {
				out[i] = dataflow.Record{Key: dst, Value: share}
			}
			return out
		}).WithBatchKernel(contribsKernel())
		sums := contribs.ReduceByKeyF64(name("pr-sums", it), cfg.Parts, func(a, b float64) float64 {
			return a + b
		})
		newGraph := dataflow.Zip(name("pr-graph", it), dataflow.OpLight, graph, sums,
			func(_ int, gs, ss []dataflow.Record) []dataflow.Record {
				sum := vertexMap(ss)
				out := make([]dataflow.Record, len(gs))
				for i, g := range gs {
					v := g.Value.(VertexRank)
					s := 0.0
					if sv, ok := sum[g.Key]; ok {
						s = sv.(float64)
					}
					out[i] = dataflow.Record{Key: g.Key, Value: VertexRank{Adj: v.Adj, Rank: cfg.ResetProb + (1-cfg.ResetProb)*s}}
				}
				return out
			}).WithBatchKernel(rankUpdateKernel(cfg.ResetProb))
		if cfg.Annotate {
			newGraph.Cache()
		}
		newGraph.Count() // the iteration's job

		// GraphX unpersists the previous iteration's graph and messages
		// once the new graph is materialized; releasing them also cleans
		// their shuffle outputs, which is what extends recomputation
		// lineages across iterations (Fig. 5).
		releaseQueue = append(releaseQueue, graph, contribs)
		for len(releaseQueue) > 4 {
			releaseQueue[0].Release()
			releaseQueue = releaseQueue[1:]
		}
		graph = newGraph
	}

	out := make(map[int64]float64)
	for _, part := range graph.Collect() {
		for _, r := range part {
			out[r.Key] = r.Value.(VertexRank).Rank
		}
	}
	return out
}

// PageRankWorkload wraps PageRank as a profile-compatible workload;
// scale shrinks the vertex count for the dependency extraction phase.
func PageRankWorkload(cfg PageRankConfig) func(ctx *dataflow.Context, scale float64) {
	return func(ctx *dataflow.Context, scale float64) {
		c := cfg.withDefaults()
		c.Graph.Vertices = scaled(c.Graph.Vertices, scale)
		PageRank(ctx, c)
	}
}

// scaled shrinks n by the scale factor with a sane floor.
func scaled(n int, scale float64) int {
	m := int(float64(n) * scale)
	if m < 16 {
		m = 16
	}
	if m > n {
		m = n
	}
	return m
}
