package graphx

import "blaze/internal/storage"

// init registers the workload value types with the gob codec so the
// engine's VerifyCodec mode (and any external serialization of blocks)
// can round-trip real partitions.
func init() {
	storage.RegisterValueType(AdjList{})
	storage.RegisterValueType(VertexRank{})
	storage.RegisterValueType(VertexLabel{})
	storage.RegisterValueType(RatingList{})
	storage.RegisterValueType(Factors{})
	storage.RegisterValueType(pregelState{})
	storage.RegisterValueType([]any{})
	storage.RegisterValueType(float64(0))
	storage.RegisterValueType(int64(0))
}
