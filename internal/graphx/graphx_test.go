package graphx

import (
	"math"
	"testing"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// refPageRank computes PageRank directly for verification.
func refPageRank(spec datagen.GraphSpec, iters int, reset float64) map[int64]float64 {
	n := spec.Vertices
	ranks := make(map[int64]float64, n)
	for v := int64(0); v < int64(n); v++ {
		ranks[v] = 1
	}
	for it := 0; it < iters; it++ {
		sums := make(map[int64]float64, n)
		for v := int64(0); v < int64(n); v++ {
			nbrs := spec.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			share := ranks[v] / float64(len(nbrs))
			for _, u := range nbrs {
				sums[u] += share
			}
		}
		for v := int64(0); v < int64(n); v++ {
			ranks[v] = reset + (1-reset)*sums[v]
		}
	}
	return ranks
}

func TestPageRankMatchesReference(t *testing.T) {
	spec := datagen.GraphSpec{Seed: 4, Vertices: 300, AvgDegree: 5}
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	got := PageRank(ctx, PageRankConfig{Graph: spec, Parts: 4, Iters: 5})
	want := refPageRank(spec, 5, 0.15)
	if len(got) != spec.Vertices {
		t.Fatalf("got %d ranks, want %d", len(got), spec.Vertices)
	}
	for v, w := range want {
		if math.Abs(got[v]-w) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], w)
		}
	}
}

// refComponents computes connected components via union-find over the
// symmetric edge set.
func refComponents(spec datagen.GraphSpec) map[int64]int64 {
	n := spec.Vertices
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range spec.Neighbors(int64(v)) {
			union(v, int(u))
		}
	}
	// Label each component by its minimum vertex id.
	minOf := make(map[int]int64)
	for v := 0; v < n; v++ {
		r := find(v)
		if cur, ok := minOf[r]; !ok || int64(v) < cur {
			minOf[r] = int64(v)
		}
	}
	out := make(map[int64]int64, n)
	for v := 0; v < n; v++ {
		out[int64(v)] = minOf[find(v)]
	}
	return out
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	// A sparse graph so multiple components exist.
	spec := datagen.GraphSpec{Seed: 21, Vertices: 200, AvgDegree: 1}
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	got := ConnectedComponents(ctx, ConnectedComponentsConfig{Graph: spec, Parts: 4, MaxIters: 60})
	want := refComponents(spec)
	for v, w := range want {
		if got[v] != w {
			t.Fatalf("component[%d] = %d, want %d", v, got[v], w)
		}
	}
}

func TestConnectedComponentsConverges(t *testing.T) {
	spec := datagen.GraphSpec{Seed: 8, Vertices: 150, AvgDegree: 4}
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	got := ConnectedComponents(ctx, ConnectedComponentsConfig{Graph: spec, Parts: 4, MaxIters: 50})
	// Dense-ish random graph: almost surely one giant component whose
	// label is vertex 0's label for most vertices.
	counts := map[int64]int{}
	for _, l := range got {
		counts[l]++
	}
	biggest := 0
	for _, c := range counts {
		if c > biggest {
			biggest = c
		}
	}
	if biggest < 100 {
		t.Fatalf("expected a giant component, biggest has %d of 150", biggest)
	}
}

func TestSVDPPReducesRMSE(t *testing.T) {
	spec := datagen.RatingsSpec{Seed: 13, Users: 200, Items: 60, ItemsPerUser: 8}

	rmseAfter := func(iters int) float64 {
		ctx := dataflow.NewContext()
		dataflow.NewLocalRunner(ctx)
		return SVDPP(ctx, SVDPPConfig{Ratings: spec, Parts: 4, Rank: 4, Iters: iters})
	}
	early, late := rmseAfter(1), rmseAfter(10)
	if late >= early {
		t.Fatalf("SVD++ must reduce training RMSE: iter1=%v iter10=%v", early, late)
	}
	if late > 1.2 {
		t.Fatalf("SVD++ RMSE too high after 10 iterations: %v", late)
	}
}

func TestAdjListSize(t *testing.T) {
	a := AdjList{Dsts: make([]int64, 10)}
	if a.SizeBytes() != 24+80 {
		t.Fatalf("AdjList size = %d", a.SizeBytes())
	}
	r := RatingList{Items: make([]int64, 3), Scores: make([]float64, 3)}
	if r.SizeBytes() != 48+48 {
		t.Fatalf("RatingList size = %d", r.SizeBytes())
	}
	f := Factors{V: make([]float64, 8)}
	if f.SizeBytes() != 24+64 {
		t.Fatalf("Factors size = %d", f.SizeBytes())
	}
}

func TestAdjacencySymmetricIncludesReverse(t *testing.T) {
	spec := datagen.GraphSpec{Seed: 2, Vertices: 50, AvgDegree: 2, Symmetric: true}
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	adj := adjacencySource(ctx, "adj@0", spec, 3)
	have := map[int64]map[int64]bool{}
	for _, part := range adj.Collect() {
		for _, r := range part {
			m := map[int64]bool{}
			for _, d := range r.Value.(AdjList).Dsts {
				m[d] = true
			}
			have[r.Key] = m
		}
	}
	for v := int64(0); v < 50; v++ {
		for _, u := range spec.Neighbors(v) {
			if u == v {
				continue
			}
			if !have[v][u] {
				t.Fatalf("forward edge %d->%d missing", v, u)
			}
			if !have[u][v] {
				t.Fatalf("reverse edge %d->%d missing", u, v)
			}
		}
	}
}

func TestPageRankDeterministic(t *testing.T) {
	spec := datagen.GraphSpec{Seed: 4, Vertices: 200, AvgDegree: 5}
	run := func() map[int64]float64 {
		ctx := dataflow.NewContext()
		dataflow.NewLocalRunner(ctx)
		return PageRank(ctx, PageRankConfig{Graph: spec, Parts: 4, Iters: 4})
	}
	a, b := run(), run()
	for v, r := range a {
		if b[v] != r {
			t.Fatalf("non-deterministic rank at %d: %v vs %v", v, r, b[v])
		}
	}
}

func TestPageRankRanksSumToVertexCount(t *testing.T) {
	// With damping 0.15 the expected total rank stays near |V| (exact for
	// graphs without dangling vertices; ours always have out-degree >= 1).
	spec := datagen.GraphSpec{Seed: 6, Vertices: 300, AvgDegree: 6}
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	ranks := PageRank(ctx, PageRankConfig{Graph: spec, Parts: 4, Iters: 8})
	total := 0.0
	for _, r := range ranks {
		if r < 0.14 {
			t.Fatalf("rank below the reset floor: %v", r)
		}
		total += r
	}
	if total < 250 || total > 350 {
		t.Fatalf("total rank %v strayed from |V|=300", total)
	}
}
