package graphx

import (
	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// VertexLabel is the per-vertex state of the component graph, carrying
// adjacency and current label through the iterations like GraphX's
// Pregel-based ConnectedComponents.
type VertexLabel struct {
	Adj   []int64
	Label int64
}

// SizeBytes implements storage.Sized.
func (v VertexLabel) SizeBytes() int64 { return 40 + 8*int64(len(v.Adj)) }

// ConnectedComponentsConfig parameterizes the CC workload. The paper uses
// the same input graph as PR (§7.1), viewed undirected.
type ConnectedComponentsConfig struct {
	Graph    datagen.GraphSpec
	Parts    int
	MaxIters int
	Annotate bool
}

func (c ConnectedComponentsConfig) withDefaults() ConnectedComponentsConfig {
	if c.Parts == 0 {
		c.Parts = 8
	}
	if c.MaxIters == 0 {
		c.MaxIters = 15
	}
	c.Graph.Symmetric = true
	return c
}

// ConnectedComponents runs label propagation until convergence (or
// MaxIters) and returns the component label per vertex. Each iteration
// submits one job; the driver checks convergence on the collected
// labels, as GraphX's Pregel loop checks the message count.
func ConnectedComponents(ctx *dataflow.Context, cfg ConnectedComponentsConfig) map[int64]int64 {
	cfg = cfg.withDefaults()
	adj := adjacencySource(ctx, "cc-adj@0", cfg.Graph, cfg.Parts)
	graph := adj.Map("cc-graph@0", func(r dataflow.Record) dataflow.Record {
		return dataflow.Record{Key: r.Key, Value: VertexLabel{Adj: r.Value.(AdjList).Dsts, Label: r.Key}}
	})
	if cfg.Annotate {
		graph.Cache()
	}

	collect := func(d *dataflow.Dataset) map[int64]int64 {
		out := make(map[int64]int64)
		for _, part := range d.Collect() {
			for _, r := range part {
				out[r.Key] = r.Value.(VertexLabel).Label
			}
		}
		return out
	}

	cur := make(map[int64]int64)
	// Released with cleaner lag, as in PageRank.
	var releaseQueue []*dataflow.Dataset
	for it := 1; it <= cfg.MaxIters; it++ {
		msgs := graph.FlatMap(name("cc-msgs", it), func(r dataflow.Record) []dataflow.Record {
			v := r.Value.(VertexLabel)
			out := make([]dataflow.Record, len(v.Adj))
			for i, dst := range v.Adj {
				out[i] = dataflow.Record{Key: dst, Value: v.Label}
			}
			return out
		})
		mins := msgs.ReduceByKey(name("cc-mins", it), cfg.Parts, func(a, b any) any {
			if a.(int64) < b.(int64) {
				return a
			}
			return b
		})
		newGraph := dataflow.Zip(name("cc-graph", it), dataflow.OpLight, graph, mins,
			func(_ int, gs, ms []dataflow.Record) []dataflow.Record {
				minOf := vertexMap(ms)
				out := make([]dataflow.Record, len(gs))
				for i, g := range gs {
					v := g.Value.(VertexLabel)
					lbl := v.Label
					if mv, ok := minOf[g.Key]; ok && mv.(int64) < lbl {
						lbl = mv.(int64)
					}
					out[i] = dataflow.Record{Key: g.Key, Value: VertexLabel{Adj: v.Adj, Label: lbl}}
				}
				return out
			})
		if cfg.Annotate {
			newGraph.Cache()
		}
		next := collect(newGraph) // the iteration's job

		releaseQueue = append(releaseQueue, graph, msgs)
		for len(releaseQueue) > 4 {
			releaseQueue[0].Release()
			releaseQueue = releaseQueue[1:]
		}
		graph = newGraph

		converged := len(cur) == len(next)
		if converged {
			for k, v := range next {
				if cur[k] != v {
					converged = false
					break
				}
			}
		}
		cur = next
		if converged {
			break
		}
	}
	return cur
}

// ConnectedComponentsWorkload wraps CC as a profile-compatible workload.
func ConnectedComponentsWorkload(cfg ConnectedComponentsConfig) func(ctx *dataflow.Context, scale float64) {
	return func(ctx *dataflow.Context, scale float64) {
		c := cfg.withDefaults()
		c.Graph.Vertices = scaled(c.Graph.Vertices, scale)
		ConnectedComponents(ctx, c)
	}
}
