// Package graphx implements the graph processing substrate the
// evaluation workloads need: a compact adjacency representation on the
// dataflow API and the PageRank, Connected Components and SVD++
// algorithms, following the iteration and cache()/unpersist() annotation
// choreography of Spark GraphX (Fig. 1): each iteration submits one job,
// caches its new datasets, and releases the previous iteration's
// datasets once superseded — which also lets the engine clean their
// shuffle outputs, creating the long recomputation lineages of Fig. 5
// when cached data is lost.
package graphx

import (
	"fmt"
	"sync"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// AdjList is the adjacency of one vertex. It implements storage.Sized so
// partition sizes reflect the power-law degree skew.
type AdjList struct {
	Dsts []int64
}

// SizeBytes implements storage.Sized.
func (a AdjList) SizeBytes() int64 { return 24 + 8*int64(len(a.Dsts)) }

// adjCache memoizes generated adjacency partitions across recomputations
// and runs: generation is deterministic and records are immutable, so
// caching only saves real wall time — the engine still charges the full
// modeled computation cost on every (re)generation.
var adjCache sync.Map

type adjKey struct {
	spec  datagen.GraphSpec
	parts int
	part  int
}

// adjacencySource builds the vertex-partitioned adjacency dataset: vertex
// v lives in partition HashPartition(v, parts), co-partitioned with every
// dataset shuffled by vertex key.
func adjacencySource(ctx *dataflow.Context, name string, spec datagen.GraphSpec, parts int) *dataflow.Dataset {
	return ctx.Source(name, parts, func(part int) []dataflow.Record {
		key := adjKey{spec: spec, parts: parts, part: part}
		if v, ok := adjCache.Load(key); ok {
			return v.([]dataflow.Record)
		}
		var out []dataflow.Record
		defer func() { adjCache.Store(key, out) }()
		if spec.Symmetric {
			// Symmetric view: collect both out-edges and in-edges for the
			// partition's vertices in one deterministic sweep.
			adj := make(map[int64][]int64)
			for v := int64(0); v < int64(spec.Vertices); v++ {
				mine := dataflow.HashPartition(v, parts) == part
				for _, u := range spec.Neighbors(v) {
					if mine {
						adj[v] = append(adj[v], u)
					}
					if dataflow.HashPartition(u, parts) == part {
						adj[u] = append(adj[u], v)
					}
				}
			}
			for v := int64(0); v < int64(spec.Vertices); v++ {
				if dataflow.HashPartition(v, parts) == part {
					out = append(out, dataflow.Record{Key: v, Value: AdjList{Dsts: adj[v]}})
				}
			}
			return out
		}
		for v := int64(0); v < int64(spec.Vertices); v++ {
			if dataflow.HashPartition(v, parts) == part {
				out = append(out, dataflow.Record{Key: v, Value: AdjList{Dsts: spec.Neighbors(v)}})
			}
		}
		return out
	})
}

// vertexMap builds a key→value index for one co-partitioned partition.
func vertexMap(recs []dataflow.Record) map[int64]any {
	m := make(map[int64]any, len(recs))
	for _, r := range recs {
		m[r.Key] = r.Value
	}
	return m
}

// name formats a role@iteration dataset name.
func name(role string, it int) string { return fmt.Sprintf("%s@%d", role, it) }
