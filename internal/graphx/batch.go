package graphx

// Columnar payload columns and batch kernels for the graph workloads.
// Each kernel is the vectorized twin of a row compute function in
// pagerank.go / stream.go / svdpp.go and must stay observationally
// identical to it: same records, same order, bit-equal floats (identical
// accumulation order). Kernels type-assert their input columns and
// return nil to decline, which drops the partition back onto the row
// escape hatch — so correctness never depends on a kernel firing.

import (
	"blaze/internal/dataflow"
)

func init() {
	dataflow.RegisterColumnType(AdjList{}, func(capHint int) dataflow.Column {
		return NewAdjListColumn(capHint)
	})
	dataflow.RegisterColumnType(VertexRank{}, func(capHint int) dataflow.Column {
		return NewVertexRankColumn(capHint)
	})
	dataflow.RegisterColumnType(Factors{}, func(capHint int) dataflow.Column {
		return NewFactorsColumn(capHint)
	})
}

// AdjListColumn stores AdjList values as a flattened struct-of-arrays:
// element i's destinations span Flat[Off[i]:Off[i+1]].
type AdjListColumn struct {
	Off  []int32
	Flat []int64
}

// NewAdjListColumn returns an empty adjacency column with pooled storage.
func NewAdjListColumn(capHint int) *AdjListColumn {
	c := &AdjListColumn{Off: dataflow.GetI32Slice(capHint + 1), Flat: dataflow.GetI64Slice(capHint)}
	c.Off = append(c.Off, 0)
	return c
}

func (c *AdjListColumn) Len() int { return len(c.Off) - 1 }

func (c *AdjListColumn) Value(i int) any {
	lo, hi := c.Off[i], c.Off[i+1]
	if lo == hi {
		return AdjList{}
	}
	out := make([]int64, hi-lo)
	copy(out, c.Flat[lo:hi])
	return AdjList{Dsts: out}
}

func (c *AdjListColumn) AppendValue(v any) bool {
	x, ok := v.(AdjList)
	if !ok {
		return false
	}
	c.Flat = append(c.Flat, x.Dsts...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *AdjListColumn) AppendFrom(src dataflow.Column, i int) bool {
	s, ok := src.(*AdjListColumn)
	if !ok {
		return false
	}
	c.Flat = append(c.Flat, s.Flat[s.Off[i]:s.Off[i+1]]...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *AdjListColumn) SizeAt(i int) int64 { return 24 + 8*int64(c.Off[i+1]-c.Off[i]) }

func (c *AdjListColumn) SizeBytes() int64 {
	return 24*int64(c.Len()) + 8*int64(len(c.Flat))
}

func (c *AdjListColumn) NewEmpty(capHint int) dataflow.Column { return NewAdjListColumn(capHint) }

func (c *AdjListColumn) Release() {
	dataflow.PutI32Slice(c.Off)
	dataflow.PutI64Slice(c.Flat)
	c.Off, c.Flat = nil, nil
}

// VertexRankColumn stores VertexRank values: a dense rank column plus the
// flattened adjacency.
type VertexRankColumn struct {
	Ranks   []float64
	AdjOff  []int32
	AdjFlat []int64
}

// NewVertexRankColumn returns an empty rank-graph column with pooled
// storage.
func NewVertexRankColumn(capHint int) *VertexRankColumn {
	c := &VertexRankColumn{
		Ranks:   dataflow.GetF64Slice(capHint),
		AdjOff:  dataflow.GetI32Slice(capHint + 1),
		AdjFlat: dataflow.GetI64Slice(capHint),
	}
	c.AdjOff = append(c.AdjOff, 0)
	return c
}

func (c *VertexRankColumn) Len() int { return len(c.Ranks) }

func (c *VertexRankColumn) Value(i int) any {
	lo, hi := c.AdjOff[i], c.AdjOff[i+1]
	var adj []int64
	if lo != hi {
		adj = make([]int64, hi-lo)
		copy(adj, c.AdjFlat[lo:hi])
	}
	return VertexRank{Adj: adj, Rank: c.Ranks[i]}
}

func (c *VertexRankColumn) AppendValue(v any) bool {
	x, ok := v.(VertexRank)
	if !ok {
		return false
	}
	c.Ranks = append(c.Ranks, x.Rank)
	c.AdjFlat = append(c.AdjFlat, x.Adj...)
	c.AdjOff = append(c.AdjOff, int32(len(c.AdjFlat)))
	return true
}

func (c *VertexRankColumn) AppendFrom(src dataflow.Column, i int) bool {
	s, ok := src.(*VertexRankColumn)
	if !ok {
		return false
	}
	c.Ranks = append(c.Ranks, s.Ranks[i])
	c.AdjFlat = append(c.AdjFlat, s.AdjFlat[s.AdjOff[i]:s.AdjOff[i+1]]...)
	c.AdjOff = append(c.AdjOff, int32(len(c.AdjFlat)))
	return true
}

func (c *VertexRankColumn) SizeAt(i int) int64 {
	return 40 + 8*int64(c.AdjOff[i+1]-c.AdjOff[i])
}

func (c *VertexRankColumn) SizeBytes() int64 {
	return 40*int64(c.Len()) + 8*int64(len(c.AdjFlat))
}

func (c *VertexRankColumn) NewEmpty(capHint int) dataflow.Column { return NewVertexRankColumn(capHint) }

func (c *VertexRankColumn) Release() {
	dataflow.PutF64Slice(c.Ranks)
	dataflow.PutI32Slice(c.AdjOff)
	dataflow.PutI64Slice(c.AdjFlat)
	c.Ranks, c.AdjOff, c.AdjFlat = nil, nil, nil
}

// FactorsColumn stores Factors values as a flattened struct-of-arrays.
type FactorsColumn struct {
	Off  []int32
	Flat []float64
}

// NewFactorsColumn returns an empty factor column with pooled storage.
func NewFactorsColumn(capHint int) *FactorsColumn {
	c := &FactorsColumn{Off: dataflow.GetI32Slice(capHint + 1), Flat: dataflow.GetF64Slice(capHint)}
	c.Off = append(c.Off, 0)
	return c
}

func (c *FactorsColumn) Len() int { return len(c.Off) - 1 }

func (c *FactorsColumn) Value(i int) any {
	lo, hi := c.Off[i], c.Off[i+1]
	var v []float64
	if lo != hi {
		v = make([]float64, hi-lo)
		copy(v, c.Flat[lo:hi])
	}
	return Factors{V: v}
}

func (c *FactorsColumn) AppendValue(v any) bool {
	x, ok := v.(Factors)
	if !ok {
		return false
	}
	c.Flat = append(c.Flat, x.V...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *FactorsColumn) AppendFrom(src dataflow.Column, i int) bool {
	s, ok := src.(*FactorsColumn)
	if !ok {
		return false
	}
	c.Flat = append(c.Flat, s.Flat[s.Off[i]:s.Off[i+1]]...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *FactorsColumn) SizeAt(i int) int64 { return 24 + 8*int64(c.Off[i+1]-c.Off[i]) }

func (c *FactorsColumn) SizeBytes() int64 {
	return 24*int64(c.Len()) + 8*int64(len(c.Flat))
}

func (c *FactorsColumn) NewEmpty(capHint int) dataflow.Column { return NewFactorsColumn(capHint) }

func (c *FactorsColumn) Release() {
	dataflow.PutI32Slice(c.Off)
	dataflow.PutF64Slice(c.Flat)
	c.Off, c.Flat = nil, nil
}

// --- PageRank kernels --------------------------------------------------

// rankInitKernel vectorizes the rank-graph bootstrap Map: adjacency in,
// VertexRank{Adj, Rank: 1} out. The row Map returns a non-nil slice, so
// the output batch is always NonNil.
func rankInitKernel() dataflow.BatchFunc {
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		in := ins[0]
		out := dataflow.NewBatch(in.Len())
		out.NonNil = true
		if in.Len() == 0 {
			return out
		}
		ac, ok := in.Col.(*AdjListColumn)
		if !ok {
			return nil
		}
		oc := NewVertexRankColumn(in.Len())
		out.Col = oc
		out.Keys = append(out.Keys, in.Keys...)
		for range in.Keys {
			oc.Ranks = append(oc.Ranks, 1)
		}
		oc.AdjFlat = append(oc.AdjFlat, ac.Flat...)
		oc.AdjOff = append(oc.AdjOff[:0], ac.Off...)
		return out
	}
}

// contribsKernel vectorizes the contributions FlatMap: one float64
// record per out-edge, share = rank/degree, in edge order. The row
// FlatMap yields nil for an empty result, so NonNil tracks emptiness.
func contribsKernel() dataflow.BatchFunc {
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		in := ins[0]
		if in.Len() == 0 {
			return dataflow.NewBatch(0) // row FlatMap appends nothing: nil
		}
		vc, ok := in.Col.(*VertexRankColumn)
		if !ok {
			return nil
		}
		out := dataflow.NewBatch(len(vc.AdjFlat))
		oc := dataflow.NewF64Column(len(vc.AdjFlat))
		out.Col = oc
		for i := range vc.Ranks {
			lo, hi := vc.AdjOff[i], vc.AdjOff[i+1]
			if lo == hi {
				continue
			}
			share := vc.Ranks[i] / float64(hi-lo)
			for _, dst := range vc.AdjFlat[lo:hi] {
				out.Keys = append(out.Keys, dst)
				oc.Vals = append(oc.Vals, share)
			}
		}
		out.NonNil = len(out.Keys) > 0
		return out
	}
}

// rankUpdateKernel vectorizes the per-iteration Zip of the rank graph
// with the contribution sums: rank' = reset + (1-reset)*sum, adjacency
// carried through unchanged.
func rankUpdateKernel(resetProb float64) dataflow.BatchFunc {
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		gs, ss := ins[0], ins[1]
		sum, ok := f64Map(ss)
		if !ok {
			return nil
		}
		out := dataflow.NewBatch(gs.Len())
		out.NonNil = true // row Zip body returns make([]Record, len(gs))
		if gs.Len() == 0 {
			return out
		}
		vc, ok := gs.Col.(*VertexRankColumn)
		if !ok {
			out.Release()
			return nil
		}
		oc := NewVertexRankColumn(gs.Len())
		out.Col = oc
		out.Keys = append(out.Keys, gs.Keys...)
		oc.AdjFlat = append(oc.AdjFlat, vc.AdjFlat...)
		oc.AdjOff = append(oc.AdjOff[:0], vc.AdjOff...)
		for _, k := range gs.Keys {
			s := 0.0
			if sv, ok := sum[k]; ok {
				s = sv
			}
			oc.Ranks = append(oc.Ranks, resetProb+(1-resetProb)*s)
		}
		return out
	}
}

// rankCarryKernel vectorizes the window-boundary Zip of the drifted
// adjacency with the previous window's rank graph: vertices keep their
// carried rank (default 1), edges come from the new adjacency.
func rankCarryKernel() dataflow.BatchFunc {
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		as, cs := ins[0], ins[1]
		prev := make(map[int64]float64, cs.Len())
		if cs.Len() > 0 {
			pc, ok := cs.Col.(*VertexRankColumn)
			if !ok {
				return nil
			}
			for i, k := range cs.Keys {
				prev[k] = pc.Ranks[i]
			}
		}
		out := dataflow.NewBatch(as.Len())
		out.NonNil = true // row Zip body returns make([]Record, len(as))
		if as.Len() == 0 {
			return out
		}
		ac, ok := as.Col.(*AdjListColumn)
		if !ok {
			out.Release()
			return nil
		}
		oc := NewVertexRankColumn(as.Len())
		out.Col = oc
		out.Keys = append(out.Keys, as.Keys...)
		oc.AdjFlat = append(oc.AdjFlat, ac.Flat...)
		oc.AdjOff = append(oc.AdjOff[:0], ac.Off...)
		for _, k := range as.Keys {
			rank := 1.0
			if r, ok := prev[k]; ok {
				rank = r
			}
			oc.Ranks = append(oc.Ranks, rank)
		}
		return out
	}
}

// f64Map indexes a float64 batch by key (the columnar vertexMap). It
// reports false when the batch holds a non-float64 column.
func f64Map(b *dataflow.Batch) (map[int64]float64, bool) {
	m := make(map[int64]float64, b.Len())
	if b.Len() == 0 {
		return m, true
	}
	fc, ok := b.Col.(*dataflow.F64Column)
	if !ok {
		return nil, false
	}
	for i, k := range b.Keys {
		m[k] = fc.Vals[i]
	}
	return m, true
}

// --- SVD++ kernels -----------------------------------------------------

// factorsInitKernel vectorizes the factor bootstrap Map, which derives
// each vector from the record key alone.
func factorsInitKernel(rank int, salt uint64) dataflow.BatchFunc {
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		in := ins[0]
		out := dataflow.NewBatch(in.Len())
		out.NonNil = true
		if in.Len() == 0 {
			return out
		}
		oc := NewFactorsColumn(in.Len())
		out.Col = oc
		out.Keys = append(out.Keys, in.Keys...)
		for _, k := range in.Keys {
			oc.AppendValue(initFactors(k, rank, salt))
		}
		return out
	}
}

// mergeFactorsKernel vectorizes the item-gradient ReduceByKey: same-key
// factor vectors sum elementwise in arrival order, first-seen key order
// preserved (mergeByKey's contract). Mismatched vector lengths fall back
// to the boxed merge, which mirrors the row combiner exactly.
func mergeFactorsKernel() dataflow.BatchFunc {
	boxed := func(in *dataflow.Batch) *dataflow.Batch {
		out := dataflow.FromRecords(dataflow.MergeByKey(in.Records(), func(a, b any) any {
			av, bv := a.(Factors), b.(Factors)
			sum := make([]float64, len(av.V))
			for d := range sum {
				sum[d] = av.V[d] + bv.V[d]
			}
			return Factors{V: sum}
		}))
		out.NonNil = true
		return out
	}
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		in := ins[0]
		out := dataflow.NewBatch(in.Len())
		out.NonNil = true // mergeByKey returns a non-nil slice
		if in.Len() == 0 {
			return out
		}
		fc, ok := in.Col.(*FactorsColumn)
		if !ok {
			out.Release()
			return nil
		}
		oc := NewFactorsColumn(in.Len())
		out.Col = oc
		idx := make(map[int64]int, 64)
		for i, k := range in.Keys {
			lo, hi := fc.Off[i], fc.Off[i+1]
			if j, seen := idx[k]; seen {
				dlo, dhi := oc.Off[j], oc.Off[j+1]
				if dhi-dlo != hi-lo {
					out.Release()
					return boxed(in)
				}
				dst := oc.Flat[dlo:dhi]
				src := fc.Flat[lo:hi]
				for d := range dst {
					dst[d] += src[d]
				}
			} else {
				idx[k] = len(out.Keys)
				out.Keys = append(out.Keys, k)
				oc.Flat = append(oc.Flat, fc.Flat[lo:hi]...)
				oc.Off = append(oc.Off, int32(len(oc.Flat)))
			}
		}
		return out
	}
}

// factorsStepKernel vectorizes the item-factor Zip: each factor vector
// is copied and, when a gradient exists for its key, stepped by
// learnRate in place — the same order of operations as the row closure.
func factorsStepKernel(learnRate float64) dataflow.BatchFunc {
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		fs, gs := ins[0], ins[1]
		var gc *FactorsColumn
		if gs.Len() > 0 {
			var ok bool
			gc, ok = gs.Col.(*FactorsColumn)
			if !ok {
				return nil
			}
		}
		grad := make(map[int64]int, gs.Len())
		for i, k := range gs.Keys {
			grad[k] = i
		}
		out := dataflow.NewBatch(fs.Len())
		out.NonNil = true // row Zip body returns make([]Record, len(fs))
		if fs.Len() == 0 {
			return out
		}
		fc, ok := fs.Col.(*FactorsColumn)
		if !ok {
			out.Release()
			return nil
		}
		oc := NewFactorsColumn(fs.Len())
		out.Col = oc
		for i, k := range fs.Keys {
			lo, hi := fc.Off[i], fc.Off[i+1]
			dlo := len(oc.Flat)
			oc.Flat = append(oc.Flat, fc.Flat[lo:hi]...)
			oc.Off = append(oc.Off, int32(len(oc.Flat)))
			out.Keys = append(out.Keys, k)
			if j, ok := grad[k]; ok {
				glo := gc.Off[j]
				nv := oc.Flat[dlo:]
				g := gc.Flat[glo:gc.Off[j+1]]
				for d := range nv {
					nv[d] += learnRate * g[d]
				}
			}
		}
		return out
	}
}
