package graphx

import (
	"math"
	"testing"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// ssspState carries adjacency and the current distance from the source.
type ssspState struct {
	Adj  []int64
	Dist float64
}

func (s ssspState) SizeBytes() int64 { return 48 + 8*int64(len(s.Adj)) }

// runSSSP computes single-source shortest (hop) paths via Pregel.
func runSSSP(ctx *dataflow.Context, spec datagen.GraphSpec, parts int, source int64) map[int64]float64 {
	vertices := adjacencySource(ctx, "sssp-adj@0", spec, parts).Map("sssp-graph@0",
		func(r dataflow.Record) dataflow.Record {
			d := math.Inf(1)
			if r.Key == source {
				d = 0
			}
			return dataflow.Record{Key: r.Key, Value: ssspState{Adj: r.Value.(AdjList).Dsts, Dist: d}}
		})
	final := Pregel(ctx, PregelConfig{Name: "sssp", Parts: parts, MaxIters: 40}, vertices,
		func(vid int64, state any) []dataflow.Record {
			st := state.(ssspState)
			if math.IsInf(st.Dist, 1) {
				return nil
			}
			out := make([]dataflow.Record, len(st.Adj))
			for i, dst := range st.Adj {
				out[i] = dataflow.Record{Key: dst, Value: st.Dist + 1}
			}
			return out
		},
		func(a, b any) any {
			if a.(float64) < b.(float64) {
				return a
			}
			return b
		},
		func(vid int64, state any, msg any, hasMsg bool) (any, bool) {
			st := state.(ssspState)
			if hasMsg && msg.(float64) < st.Dist {
				return ssspState{Adj: st.Adj, Dist: msg.(float64)}, true
			}
			return st, false
		})
	out := make(map[int64]float64, len(final))
	for vid, st := range final {
		out[vid] = st.(ssspState).Dist
	}
	return out
}

// refBFS computes hop distances with a plain BFS for verification.
func refBFS(spec datagen.GraphSpec, source int64) map[int64]float64 {
	dist := map[int64]float64{source: 0}
	frontier := []int64{source}
	adj := func(v int64) []int64 {
		if spec.Symmetric {
			// mirror the symmetric adjacency construction
			var out []int64
			for u := int64(0); u < int64(spec.Vertices); u++ {
				for _, w := range spec.Neighbors(u) {
					if u == v {
						out = append(out, w)
					}
					if w == v {
						out = append(out, u)
					}
				}
			}
			return out
		}
		return spec.Neighbors(v)
	}
	for len(frontier) > 0 {
		var next []int64
		for _, v := range frontier {
			for _, u := range adj(v) {
				if _, seen := dist[u]; !seen {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

func TestPregelSSSPMatchesBFS(t *testing.T) {
	spec := datagen.GraphSpec{Seed: 17, Vertices: 150, AvgDegree: 3}
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	got := runSSSP(ctx, spec, 4, 0)
	want := refBFS(spec, 0)
	for v := int64(0); v < 150; v++ {
		w, reachable := want[v]
		g := got[v]
		if reachable {
			if g != w {
				t.Fatalf("dist[%d] = %v, want %v", v, g, w)
			}
		} else if !math.IsInf(g, 1) {
			t.Fatalf("dist[%d] = %v, want unreachable", v, g)
		}
	}
}

func TestPregelHaltsOnConvergence(t *testing.T) {
	// A program that never changes must stop after one superstep.
	ctx := dataflow.NewContext()
	runner := dataflow.NewLocalRunner(ctx)
	vertices := ctx.Source("static-graph@0", 2, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: int64(part)}}
	})
	Pregel(ctx, PregelConfig{Name: "static", Parts: 2, MaxIters: 50}, vertices,
		func(vid int64, state any) []dataflow.Record { return nil },
		func(a, b any) any { return a },
		func(vid int64, state any, msg any, hasMsg bool) (any, bool) { return state, false })
	if len(runner.JobTargets) > 2 {
		t.Fatalf("non-changing program ran %d supersteps, want 1", len(runner.JobTargets))
	}
}

func TestPregelStateSizeDelegation(t *testing.T) {
	inner := ssspState{Adj: make([]int64, 10)}
	wrapped := pregelState{State: inner}
	if wrapped.SizeBytes() != inner.SizeBytes()+8 {
		t.Fatalf("size = %d, want %d", wrapped.SizeBytes(), inner.SizeBytes()+8)
	}
	plain := pregelState{State: 42}
	if plain.SizeBytes() != 56 {
		t.Fatalf("fallback size = %d", plain.SizeBytes())
	}
}

func TestPregelUnderBlazePressure(t *testing.T) {
	// The SSSP Pregel program must produce identical results under the
	// reference evaluator and under heavy caching pressure; exercised via
	// the engine in internal/core's fuzz tests for generic DAGs, and here
	// for the Pregel loop specifically using the local runner vs a
	// second local run (determinism of the abstraction itself).
	spec := datagen.GraphSpec{Seed: 23, Vertices: 100, AvgDegree: 4}
	ctx1 := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx1)
	a := runSSSP(ctx1, spec, 4, 7)
	ctx2 := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx2)
	b := runSSSP(ctx2, spec, 4, 7)
	for v, d := range a {
		bd := b[v]
		if d != bd && !(math.IsInf(d, 1) && math.IsInf(bd, 1)) {
			t.Fatalf("non-deterministic SSSP at %d: %v vs %v", v, d, bd)
		}
	}
}
