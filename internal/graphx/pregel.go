package graphx

import (
	"fmt"

	"blaze/internal/dataflow"
)

// PregelConfig parameterizes a bulk-synchronous vertex program in the
// style of GraphX's Pregel operator: each superstep flatMaps messages
// out of the vertex states, shuffles and merges them by destination,
// applies the vertex program, caches the new graph generation and
// releases superseded generations with cleaner lag — the exact iteration
// choreography the paper's graph workloads exhibit (Fig. 1).
type PregelConfig struct {
	// Name prefixes the per-superstep dataset roles ("<name>-graph@i").
	Name string
	// Parts is the vertex partition count.
	Parts int
	// MaxIters bounds the supersteps.
	MaxIters int
	// Annotate applies cache() annotations for annotation-based systems.
	Annotate bool
}

// SendFunc emits the messages of one vertex given its current state;
// message records are keyed by destination vertex.
type SendFunc func(vid int64, state any) []dataflow.Record

// VProgFunc computes a vertex's next state from its current state and
// the merged incoming message (hasMsg reports whether any message
// arrived). It returns the new state and whether it changed — Pregel
// halts when no vertex changes.
type VProgFunc func(vid int64, state any, msg any, hasMsg bool) (any, bool)

// pregelState wraps a vertex state with its change flag between
// supersteps. It forwards SizeBytes so cached graph generations keep
// their true (skewed) partition sizes.
type pregelState struct {
	State   any
	Changed bool
}

type sized interface{ SizeBytes() int64 }

// SizeBytes implements storage.Sized by delegation.
func (s pregelState) SizeBytes() int64 {
	if v, ok := s.State.(sized); ok {
		return v.SizeBytes() + 8
	}
	return 56
}

// Pregel runs the vertex program to convergence (or MaxIters) and
// returns the final vertex states. One job is submitted per superstep,
// and the driver checks the change count on the collected states, as
// GraphX's Pregel loop checks its message count.
func Pregel(ctx *dataflow.Context, cfg PregelConfig, vertices *dataflow.Dataset,
	send SendFunc, merge dataflow.CombineFunc, vprog VProgFunc) map[int64]any {

	graph := vertices
	if cfg.Annotate {
		graph.Cache()
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 20
	}

	var releaseQueue []*dataflow.Dataset
	final := make(map[int64]any)
	for it := 1; it <= cfg.MaxIters; it++ {
		msgs := graph.FlatMap(fmt.Sprintf("%s-msgs@%d", cfg.Name, it), func(r dataflow.Record) []dataflow.Record {
			if st, ok := r.Value.(pregelState); ok {
				return send(r.Key, st.State)
			}
			return send(r.Key, r.Value)
		})
		merged := msgs.ReduceByKey(fmt.Sprintf("%s-merged@%d", cfg.Name, it), cfg.Parts, merge)
		newGraph := dataflow.Zip(fmt.Sprintf("%s-graph@%d", cfg.Name, it), dataflow.OpLight, graph, merged,
			func(_ int, gs, ms []dataflow.Record) []dataflow.Record {
				inbox := vertexMap(ms)
				out := make([]dataflow.Record, len(gs))
				for i, g := range gs {
					state := g.Value
					if st, ok := state.(pregelState); ok {
						state = st.State
					}
					msg, has := inbox[g.Key]
					next, changed := vprog(g.Key, state, msg, has)
					out[i] = dataflow.Record{Key: g.Key, Value: pregelState{State: next, Changed: changed}}
				}
				return out
			})
		if cfg.Annotate {
			newGraph.Cache()
		}

		changed := 0
		for _, part := range newGraph.Collect() { // the superstep's job
			for _, r := range part {
				st := r.Value.(pregelState)
				final[r.Key] = st.State
				if st.Changed {
					changed++
				}
			}
		}

		releaseQueue = append(releaseQueue, graph, msgs)
		for len(releaseQueue) > 4 {
			releaseQueue[0].Release()
			releaseQueue = releaseQueue[1:]
		}
		graph = newGraph

		if changed == 0 {
			break
		}
	}
	return final
}
