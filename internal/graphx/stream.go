package graphx

import (
	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// Sliding-window PageRank: the micro-batch streaming variant of the
// PageRank workload. Each window observes a drifted edge set (the graph
// generator re-seeded per window) and re-submits the same logical DAG —
// a few rank iterations — but initializes the rank vector from the
// previous window's final rank graph, so the carried state flows into
// window k+1 as already-cached blocks instead of a cold restart.
// Dataset names use a global iteration numbering so every window's
// generations are distinct lineage nodes; once a window's intermediate
// generations stop being referenced, the windowed-lifetime machinery
// retires them.

// PageRankStreamConfig parameterizes the sliding-window PageRank stream.
type PageRankStreamConfig struct {
	// Graph is the window-1 edge set; window w re-seeds the generator
	// with Seed+w-1, modeling edge churn between micro-batches.
	Graph datagen.GraphSpec
	Parts int
	// ItersPerWindow is how many rank iterations each window runs
	// (default 3: a streaming refinement, not a full convergence run).
	ItersPerWindow int
	// ResetProb is the damping reset probability (0.15 by default).
	ResetProb float64
	// Annotate applies GraphX-style cache() annotations for
	// annotation-based systems; Blaze runs without them.
	Annotate bool
}

func (c PageRankStreamConfig) withDefaults() PageRankStreamConfig {
	if c.ResetProb == 0 {
		c.ResetProb = 0.15
	}
	if c.Parts == 0 {
		c.Parts = 8
	}
	if c.ItersPerWindow == 0 {
		c.ItersPerWindow = 3
	}
	return c
}

// PageRankStream returns the per-window step driver. The returned
// closure owns the carried state (the previous window's final rank
// graph); calling it with window w submits window w's jobs and returns
// the ranks after that window's iterations.
func PageRankStream(cfg PageRankStreamConfig) func(ctx *dataflow.Context, window int) map[int64]float64 {
	cfg = cfg.withDefaults()
	var carried *dataflow.Dataset
	var releaseQueue []*dataflow.Dataset
	return func(ctx *dataflow.Context, window int) map[int64]float64 {
		spec := cfg.Graph
		spec.Seed += int64(window - 1)
		// Global iteration numbering: window w owns iterations
		// [base, base+ItersPerWindow], so role@iteration names never
		// collide across windows.
		base := (window - 1) * (cfg.ItersPerWindow + 1)

		adj := adjacencySource(ctx, name("spr-adj", base), spec, cfg.Parts)
		var graph *dataflow.Dataset
		if carried == nil {
			graph = adj.Map(name("spr-graph", base), func(r dataflow.Record) dataflow.Record {
				return dataflow.Record{Key: r.Key, Value: VertexRank{Adj: r.Value.(AdjList).Dsts, Rank: 1}}
			}).WithBatchKernel(rankInitKernel())
		} else {
			// Re-key the carried ranks onto the drifted adjacency:
			// vertices keep their converged rank, the edges are new.
			graph = dataflow.Zip(name("spr-graph", base), dataflow.OpLight, adj, carried,
				func(_ int, as, cs []dataflow.Record) []dataflow.Record {
					prev := vertexMap(cs)
					out := make([]dataflow.Record, len(as))
					for i, a := range as {
						rank := 1.0
						if v, ok := prev[a.Key]; ok {
							rank = v.(VertexRank).Rank
						}
						out[i] = dataflow.Record{Key: a.Key, Value: VertexRank{Adj: a.Value.(AdjList).Dsts, Rank: rank}}
					}
					return out
				}).WithBatchKernel(rankCarryKernel())
			// The carried graph is NOT released here: the stream driver
			// cannot know when cross-window state dies. Windowed
			// lifetime management retires it once its last-consumer
			// window has passed.
		}
		if cfg.Annotate {
			graph.Cache()
		}

		for i := 1; i <= cfg.ItersPerWindow; i++ {
			it := base + i
			contribs := graph.FlatMap(name("spr-contribs", it), func(r dataflow.Record) []dataflow.Record {
				v := r.Value.(VertexRank)
				if len(v.Adj) == 0 {
					return nil
				}
				share := v.Rank / float64(len(v.Adj))
				out := make([]dataflow.Record, len(v.Adj))
				for j, dst := range v.Adj {
					out[j] = dataflow.Record{Key: dst, Value: share}
				}
				return out
			}).WithBatchKernel(contribsKernel())
			sums := contribs.ReduceByKeyF64(name("spr-sums", it), cfg.Parts, func(a, b float64) float64 {
				return a + b
			})
			newGraph := dataflow.Zip(name("spr-graph", it), dataflow.OpLight, graph, sums,
				func(_ int, gs, ss []dataflow.Record) []dataflow.Record {
					sum := vertexMap(ss)
					out := make([]dataflow.Record, len(gs))
					for j, g := range gs {
						v := g.Value.(VertexRank)
						s := 0.0
						if sv, ok := sum[g.Key]; ok {
							s = sv.(float64)
						}
						out[j] = dataflow.Record{Key: g.Key, Value: VertexRank{Adj: v.Adj, Rank: cfg.ResetProb + (1-cfg.ResetProb)*s}}
					}
					return out
				}).WithBatchKernel(rankUpdateKernel(cfg.ResetProb))
			if cfg.Annotate {
				newGraph.Cache()
			}
			newGraph.Count() // the iteration's job

			releaseQueue = append(releaseQueue, graph, contribs)
			for len(releaseQueue) > 4 {
				releaseQueue[0].Release()
				releaseQueue = releaseQueue[1:]
			}
			graph = newGraph
		}

		out := make(map[int64]float64)
		for _, part := range graph.Collect() {
			for _, r := range part {
				out[r.Key] = r.Value.(VertexRank).Rank
			}
		}
		carried = graph
		return out
	}
}
