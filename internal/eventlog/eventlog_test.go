package eventlog

import (
	"bytes"
	"testing"
	"time"
)

func sample() *Log {
	l := New()
	l.Append(Event{Kind: JobStart, Job: 0, Time: 0})
	l.Append(Event{Kind: TaskEnd, Job: 0, Time: time.Millisecond, Executor: 1, Dataset: 3, Partition: 0})
	l.Append(Event{Kind: BlockAdmitted, Job: 0, Dataset: 3, DatasetNm: "ranks@1", Partition: 0, Bytes: 100})
	l.Append(Event{Kind: BlockHit, Job: 0, Dataset: 3, DatasetNm: "ranks@1", Partition: 0, Bytes: 100})
	l.Append(Event{Kind: BlockSpilled, Job: 0, Dataset: 3, DatasetNm: "ranks@1", Partition: 0, Bytes: 100})
	l.Append(Event{Kind: JobEnd, Job: 0, Time: 2 * time.Millisecond})
	l.Append(Event{Kind: JobStart, Job: 1, Time: 2 * time.Millisecond})
	l.Append(Event{Kind: Recomputed, Job: 1, Dataset: 3, Partition: 0, Cost: time.Millisecond})
	l.Append(Event{Kind: BlockDropped, Job: 1, Dataset: 3, DatasetNm: "ranks@1", Partition: 0, Bytes: 100})
	l.Append(Event{Kind: JobEnd, Job: 1, Time: 5 * time.Millisecond})
	return l
}

func TestJSONRoundTrip(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip %d events, want %d", back.Len(), l.Len())
	}
	for i, e := range back.Events() {
		if e != l.Events()[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, e, l.Events()[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("garbage should not parse")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sample())
	if len(s.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(s.Jobs))
	}
	j0 := s.Jobs[0]
	if j0.Tasks != 1 || j0.Hits != 1 || j0.Admitted != 1 || j0.Spilled != 1 {
		t.Fatalf("job0 = %+v", j0)
	}
	if j0.End != 2*time.Millisecond {
		t.Fatalf("job0 end = %v", j0.End)
	}
	j1 := s.Jobs[1]
	if j1.Recomputes != 1 || j1.Dropped != 1 {
		t.Fatalf("job1 = %+v", j1)
	}
	d := s.Datasets[3]
	if d == nil || d.Name != "ranks@1" {
		t.Fatalf("dataset summary = %+v", d)
	}
	if d.Admitted != 1 || d.Spilled != 1 || d.Dropped != 1 || d.Hits != 1 {
		t.Fatalf("dataset counts = %+v", d)
	}
	if d.BytesAdmitted != 100 || d.BytesSpilled != 100 {
		t.Fatalf("dataset bytes = %+v", d)
	}
}

func TestEmptyLog(t *testing.T) {
	s := Summarize(New())
	if len(s.Jobs) != 0 || len(s.Datasets) != 0 {
		t.Fatal("empty log should summarize to nothing")
	}
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty log should write nothing")
	}
}
