package eventlog

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func walEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Kind: JobStart, Time: time.Duration(i) * time.Millisecond, Job: i}
	}
	return evs
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	evs := walEvents(5)
	if err := w.AppendAll(evs[:3]); err != nil {
		t.Fatal(err)
	}
	for _, e := range evs[3:] {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("replayed %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], evs[i])
		}
	}
}

// TestWALTornTail pins the crash-tolerance contract: a WAL whose final
// record was interrupted mid-write (unterminated or malformed) replays
// the clean prefix and silently drops the torn record.
func TestWALTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail string
	}{
		{"unterminated", `{"kind":"job_start","job":9`},
		{"malformed", "garbage bytes here\n"},
		{"half-overwritten", `{"kind":{"kind":"x"}}` + "\n"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "events.wal")
			w, err := CreateWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			evs := walEvents(4)
			if err := w.AppendAll(evs); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			got, err := ReplayWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(evs) {
				t.Fatalf("replayed %d events, want the %d-event clean prefix", len(got), len(evs))
			}
		})
	}
}

func TestWALReplayMissingFile(t *testing.T) {
	if _, err := ReplayWAL(filepath.Join(t.TempDir(), "absent.wal")); err == nil {
		t.Fatal("replaying a missing WAL should fail")
	}
}
