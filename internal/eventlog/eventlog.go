// Package eventlog records structured execution events — the analogue of
// Spark's event log that powers its history server. When a Log is
// attached to a cluster, every job, stage, task, cache and eviction event
// is appended with its virtual timestamp; the Summary analyzer replays a
// log into per-job and per-dataset statistics, and logs serialize to
// JSON lines for external tooling.
//
// The event log is how caching decisions are audited after a run: which
// partitions were admitted, when they were spilled or dropped, and what
// each recovery cost.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Kind enumerates event types.
type Kind string

// Event kinds.
const (
	JobStart      Kind = "job_start"
	JobEnd        Kind = "job_end"
	StageStart    Kind = "stage_start"
	StageEnd      Kind = "stage_end"
	TaskEnd       Kind = "task_end"
	BlockAdmitted Kind = "block_admitted"
	BlockSpilled  Kind = "block_spilled"
	BlockDropped  Kind = "block_dropped"
	BlockHit      Kind = "block_hit"
	BlockDiskHit  Kind = "block_disk_hit"
	Recomputed    Kind = "recomputed"
	// FaultInjected records a deliberately injected failure
	// (internal/faults): Fault names the class, and the block/shuffle
	// fields identify what was lost.
	FaultInjected Kind = "fault_injected"
	// ExecutorDead records an executor-death fault: the executor's cache
	// (Bytes) and its map outputs (Count) are gone, and its partitions
	// are about to migrate to the survivors.
	ExecutorDead Kind = "executor_dead"
	// PartitionsMigrated records the rebalancing that follows an
	// executor death: Count partition slots moved from the dead executor
	// to the survivors, at rebalancing cost Cost.
	PartitionsMigrated Kind = "partitions_migrated"
	// BucketLost records a partial shuffle fault: one map-output bucket
	// (Shuffle, map Partition, Bucket) was destroyed, so only its
	// producing map task must re-run.
	BucketLost Kind = "bucket_lost"
	// Recovered records the completion of fault recovery: the
	// recomputation of a fault-lost block or the regeneration of a
	// fault-cleaned shuffle, with the recovery work in Cost.
	Recovered Kind = "recovered"
	// TaskRetry records one transiently failed task attempt (Attempt,
	// 1-based) and the wasted launch overhead plus backoff in Cost; the
	// retry of exactly that attempt follows, never a stage re-run.
	TaskRetry Kind = "task_retry"
	// FetchRetry records one transiently failed shuffle-fetch attempt
	// (Shuffle, reduce Partition, Attempt) with its backoff in Cost.
	FetchRetry Kind = "fetch_retry"
	// SpeculativeLaunch records a speculative copy of a straggling task
	// launched on Executor; Win marks copies that finished before the
	// straggling primary, and Cost carries the copy's core time.
	SpeculativeLaunch Kind = "speculative_launch"
	// ExecutorBlacklisted records a flaky executor crossing the
	// retryable-failure threshold: the scheduler skips it for Count
	// top-level stages while its cache survives.
	ExecutorBlacklisted Kind = "executor_blacklisted"
	// ExecutorReinstated records a blacklisted executor rejoining the
	// scheduling pool after its cooldown expired.
	ExecutorReinstated Kind = "executor_reinstated"
	// ILPSolve records one optimizer invocation at a job boundary:
	// Executor scopes the per-executor model, Vars the decision-variable
	// count, Nodes the search nodes expanded, Optimal whether the result
	// is a proven optimum, Fallback whether the solve degraded (knapsack
	// relaxation or budget exhaustion), and Reused whether the answer
	// came from the cross-job solution memo without searching.
	ILPSolve Kind = "ilp_solve"
	// QuotaRejected records a memory admission refused because it would
	// push the owning tenant (Tenant) past its cluster-wide quota;
	// same-tenant quota evictions could not free enough charged bytes.
	QuotaRejected Kind = "quota_rejected"
	// SessionStart and SessionEnd bracket one application session on the
	// multi-tenant job server's own log: Session identifies the session,
	// Tenant its owner.
	SessionStart Kind = "session_start"
	SessionEnd   Kind = "session_end"
	// Arbitration records one cluster-wide ILP arbitration across the
	// union of admitted jobs' candidate sets: Count carries the number of
	// participating sessions, Vars the total union candidates priced.
	Arbitration Kind = "arbitration"
	// WindowStart marks a micro-batch window boundary on a streaming
	// session: Window is the 1-based index of the window being opened,
	// and Job the index the window's first job will receive.
	WindowStart Kind = "window_start"
	// PartitionRetired records windowed-lineage retirement at a window
	// boundary: the partition's lifetime (its last-consumer window) has
	// passed, so it is removed from the store and from the optimizer's
	// candidate set. Bytes is 0 when the partition was not resident.
	PartitionRetired Kind = "partition_retired"
	// ILPDeltaSolve records one incremental optimizer re-solve at a
	// window boundary: the previous window's assignment (retired
	// candidates dropped, new-window candidates appended) warm-starts
	// the search. Fields mirror ILPSolve; Window scopes the boundary.
	ILPDeltaSolve Kind = "ilp_delta_solve"
	// ILPRepairSolve records one post-recovery plan-repair solve: the
	// placement problem re-solved over the surviving candidate set after
	// an executor death or a crash resume. Fields mirror ILPSolve;
	// Window scopes the boundary on streaming sessions (0 otherwise).
	ILPRepairSolve Kind = "ilp_repair_solve"
	// CheckpointWritten records one durable window-boundary checkpoint:
	// Window is the boundary, Count the number of persisted blocks and
	// Bytes their serialized size. Emitted on recovery-scoped logs only —
	// the main log of a resumed run must stay bit-identical to an
	// uninterrupted one.
	CheckpointWritten Kind = "checkpoint_written"
	// SessionResumed records a crash recovery: a session rehydrated from
	// the checkpoint at boundary Window, re-admitting Count blocks.
	// Recovery-scoped logs only.
	SessionResumed Kind = "session_resumed"
)

// Event is one log record. Fields are populated according to Kind; zero
// values mean "not applicable".
type Event struct {
	Kind Kind `json:"kind"`
	// Time is the virtual timestamp of the event.
	Time time.Duration `json:"time"`
	// Job and Stage identify scheduler scopes.
	Job   int `json:"job,omitempty"`
	Stage int `json:"stage,omitempty"`
	// Executor, Dataset and Partition identify block scopes.
	Executor  int    `json:"executor,omitempty"`
	Dataset   int    `json:"dataset,omitempty"`
	DatasetNm string `json:"dataset_name,omitempty"`
	Partition int    `json:"partition,omitempty"`
	// Bytes carries block or I/O sizes.
	Bytes int64 `json:"bytes,omitempty"`
	// Cost carries the modeled duration of the event's work.
	Cost time.Duration `json:"cost,omitempty"`
	// Regen marks stage events of stages re-run mid-job to recover
	// cleaned shuffle data (stage resubmission).
	Regen bool `json:"regen,omitempty"`
	// Fault names the injected fault class on FaultInjected events.
	Fault string `json:"fault,omitempty"`
	// Shuffle identifies the shuffle on shuffle-loss fault events.
	Shuffle int `json:"shuffle,omitempty"`
	// Bucket identifies the reduce bucket on bucket-loss fault events.
	Bucket int `json:"bucket,omitempty"`
	// Count carries event cardinalities: migrated partition slots on
	// PartitionsMigrated, lost map outputs on ExecutorDead, re-run map
	// tasks on partial-shuffle Recovered events, cooldown stages on
	// ExecutorBlacklisted, window length on straggler FaultInjected.
	Count int `json:"count,omitempty"`
	// Attempt is the 1-based attempt number on TaskRetry/FetchRetry.
	Attempt int `json:"attempt,omitempty"`
	// Win marks SpeculativeLaunch events whose copy beat the primary.
	Win bool `json:"win,omitempty"`
	// Factor is the slowdown multiplier on straggler FaultInjected
	// events.
	Factor float64 `json:"factor,omitempty"`
	// Vars and Nodes carry the model size and search effort on ILPSolve
	// events; Optimal, Fallback and Reused classify the outcome (proven
	// optimum, degraded solve, memo hit).
	Vars     int  `json:"vars,omitempty"`
	Nodes    int  `json:"nodes,omitempty"`
	Optimal  bool `json:"optimal,omitempty"`
	Fallback bool `json:"fallback,omitempty"`
	Reused   bool `json:"reused,omitempty"`
	// Tenant and Session identify multi-tenant scopes on job-server
	// events (QuotaRejected, SessionStart/End, Arbitration). Both are
	// empty on single-application runs, keeping their logs byte-identical
	// to builds that predate the job server.
	Tenant  string `json:"tenant,omitempty"`
	Session int    `json:"session,omitempty"`
	// Window is the 1-based micro-batch window index on streaming-session
	// events (WindowStart, PartitionRetired, ILPDeltaSolve). Zero on
	// one-shot runs, keeping their logs byte-identical to builds that
	// predate streaming.
	Window int `json:"window,omitempty"`
}

// Log is an in-memory, append-only event log.
type Log struct {
	events []Event
	// sink, when set, receives every appended event (write-ahead
	// logging: the facade attaches a WAL so the stream survives a crash).
	sink func(Event)
}

// New creates an empty log.
func New() *Log { return &Log{} }

// Append adds an event.
func (l *Log) Append(e Event) {
	l.events = append(l.events, e)
	if l.sink != nil {
		l.sink(e)
	}
}

// SetSink installs (or, with nil, detaches) a callback invoked on every
// subsequent Append. Used to tee the log into a durable WAL.
func (l *Log) SetSink(fn func(Event)) { l.sink = fn }

// Restore replaces the log's contents wholesale. Crash recovery uses it
// to clobber whatever a resuming session's replay emitted with the
// exact event stream of the original run up to the checkpoint. The
// sink, if any, is not invoked for restored events.
func (l *Log) Restore(events []Event) {
	l.events = append(l.events[:0], events...)
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event { return l.events }

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// WriteJSON writes the log as JSON lines.
func (l *Log) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("eventlog: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSON parses a JSON-lines log.
func ReadJSON(r io.Reader) (*Log, error) {
	l := New()
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("eventlog: decode: %w", err)
		}
		l.Append(e)
	}
	return l, nil
}

// JobSummary aggregates one job's events.
type JobSummary struct {
	Job        int
	Start, End time.Duration
	Tasks      int
	Hits       int
	DiskHits   int
	Recomputes int
	Admitted   int
	Spilled    int
	Dropped    int
	// Regenerated counts stages re-run within the job to recover cleaned
	// shuffle data; Faults and Recoveries count injected faults and
	// completed fault recoveries, and RecoveryTime the attributed
	// recovery work. Migrated counts partition slots rebalanced away
	// from executors that died during the job.
	Regenerated  int
	Faults       int
	Recoveries   int
	RecoveryTime time.Duration
	Migrated     int
	// Retries counts transiently failed task and fetch attempts that
	// were retried; Speculative and SpeculativeWins count speculative
	// copies launched and won; Blacklisted counts flaky-executor
	// blacklist episodes during the job.
	Retries         int
	Speculative     int
	SpeculativeWins int
	Blacklisted     int
	// ILPSolves, ILPNodes and ILPFallbacks aggregate the job's optimizer
	// activity; ILPReused counts solves answered from the cross-job memo.
	ILPSolves    int
	ILPNodes     int
	ILPFallbacks int
	ILPReused    int
}

// DatasetSummary aggregates one dataset's cache lifecycle.
type DatasetSummary struct {
	Dataset       int
	Name          string
	Admitted      int
	Spilled       int
	Dropped       int
	Hits          int
	BytesAdmitted int64
	BytesSpilled  int64
}

// Summary is the replayed view of a log.
type Summary struct {
	Jobs     []JobSummary
	Datasets map[int]*DatasetSummary
}

// Summarize replays the log into per-job and per-dataset statistics.
func Summarize(l *Log) *Summary {
	s := &Summary{Datasets: make(map[int]*DatasetSummary)}
	jobs := map[int]*JobSummary{}
	var order []int
	job := func(id int) *JobSummary {
		j := jobs[id]
		if j == nil {
			j = &JobSummary{Job: id}
			jobs[id] = j
			order = append(order, id)
		}
		return j
	}
	ds := func(id int, name string) *DatasetSummary {
		d := s.Datasets[id]
		if d == nil {
			d = &DatasetSummary{Dataset: id, Name: name}
			s.Datasets[id] = d
		}
		if d.Name == "" {
			d.Name = name
		}
		return d
	}
	cur := -1
	for _, e := range l.events {
		switch e.Kind {
		case JobStart:
			cur = e.Job
			job(cur).Start = e.Time
		case JobEnd:
			job(e.Job).End = e.Time
		case TaskEnd:
			job(cur).Tasks++
		case BlockHit:
			job(cur).Hits++
			ds(e.Dataset, e.DatasetNm).Hits++
		case BlockDiskHit:
			job(cur).DiskHits++
		case Recomputed:
			job(cur).Recomputes++
		case BlockAdmitted:
			job(cur).Admitted++
			d := ds(e.Dataset, e.DatasetNm)
			d.Admitted++
			d.BytesAdmitted += e.Bytes
		case BlockSpilled:
			job(cur).Spilled++
			d := ds(e.Dataset, e.DatasetNm)
			d.Spilled++
			d.BytesSpilled += e.Bytes
		case BlockDropped:
			job(cur).Dropped++
			ds(e.Dataset, e.DatasetNm).Dropped++
		case StageEnd:
			if e.Regen {
				job(cur).Regenerated++
			}
		case FaultInjected, ExecutorDead, BucketLost:
			job(cur).Faults++
		case PartitionsMigrated:
			job(cur).Migrated += e.Count
		case TaskRetry, FetchRetry:
			job(cur).Retries++
		case SpeculativeLaunch:
			j := job(cur)
			j.Speculative++
			if e.Win {
				j.SpeculativeWins++
			}
		case ExecutorBlacklisted:
			job(cur).Blacklisted++
		case Recovered:
			j := job(cur)
			j.Recoveries++
			j.RecoveryTime += e.Cost
		case ILPSolve:
			j := job(e.Job)
			j.ILPSolves++
			j.ILPNodes += e.Nodes
			if e.Fallback {
				j.ILPFallbacks++
			}
			if e.Reused {
				j.ILPReused++
			}
		}
	}
	for _, id := range order {
		s.Jobs = append(s.Jobs, *jobs[id])
	}
	return s
}
