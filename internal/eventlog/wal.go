package eventlog

// Write-ahead logging for the event stream: a WAL persists every event
// as one JSON line, flushed per record, so the exact event history of a
// crashed run is recoverable up to (at least) the last checkpoint. The
// record layout is identical to WriteJSON/ReadJSON — a WAL file is a
// valid JSON-lines event log — but replay additionally tolerates a torn
// tail: a crash can leave a partially written final line, which is
// discarded rather than failing the whole replay.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// WAL is an append-only, per-record-flushed event log file.
type WAL struct {
	f   *os.File
	buf *bufio.Writer
}

// CreateWAL creates (truncating) the WAL file at path.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("eventlog: create wal: %w", err)
	}
	return &WAL{f: f, buf: bufio.NewWriter(f)}, nil
}

// Append writes one event record and flushes it to the file.
func (w *WAL) Append(e Event) error {
	rec, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("eventlog: wal encode: %w", err)
	}
	rec = append(rec, '\n')
	if _, err := w.buf.Write(rec); err != nil {
		return fmt.Errorf("eventlog: wal write: %w", err)
	}
	if err := w.buf.Flush(); err != nil {
		return fmt.Errorf("eventlog: wal flush: %w", err)
	}
	return nil
}

// AppendAll writes a batch of events and flushes once at the end.
func (w *WAL) AppendAll(events []Event) error {
	for _, e := range events {
		rec, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("eventlog: wal encode: %w", err)
		}
		rec = append(rec, '\n')
		if _, err := w.buf.Write(rec); err != nil {
			return fmt.Errorf("eventlog: wal write: %w", err)
		}
	}
	if err := w.buf.Flush(); err != nil {
		return fmt.Errorf("eventlog: wal flush: %w", err)
	}
	return nil
}

// Close flushes and closes the file.
func (w *WAL) Close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("eventlog: wal flush: %w", err)
	}
	return w.f.Close()
}

// ReplayWAL reads the event records of a WAL file, tolerating a torn
// tail: replay stops cleanly at the first malformed or unterminated
// line (the record a crash interrupted mid-write). Any error before the
// tail — an unreadable file — is returned.
func ReplayWAL(path string) ([]Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("eventlog: replay wal: %w", err)
	}
	var events []Event
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // unterminated tail record: torn write
		}
		line := data[:nl]
		data = data[nl+1:]
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			break // malformed tail record: torn write
		}
		events = append(events, e)
	}
	return events, nil
}
