// Package checkpoint persists streaming-session recovery state to a
// run-scoped durable directory and loads it back after a crash.
//
// Layout under the checkpoint directory:
//
//	events.wal          append-only JSON-lines event log (the WAL the
//	                    session facade maintains; see internal/eventlog)
//	win_0004/           one directory per checkpointed window boundary
//	  manifest.json     window, event count, per-file checksums — the
//	                    commit record, written (tmp+rename) LAST
//	  state.gob         engine.ResumeState minus block records/events
//	  client.gob        opaque driver-side payload (window stats)
//	  mem_0000.gob …    one gob-encoded record payload per memory block
//	  disk_0000.gob …   one per disk block
//
// A checkpoint is valid only once its manifest exists and every
// checksum it lists matches; a crash mid-write leaves a directory
// without a manifest (or with dangling files) that Load skips. Load
// takes the newest valid window and falls back to the previous one on
// any corruption; only when no window is usable does it return
// ErrNoCheckpoint, and the caller re-runs from scratch (lineage
// recomputation from the sources). Old windows are pruned at write so
// at most two boundary snapshots exist at a time.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/storage"
)

// ManifestVersion is the manifest schema version; manifests with a
// different version are rejected (treated as corrupt).
const ManifestVersion = 1

// ErrNoCheckpoint reports that the checkpoint directory holds no usable
// window snapshot; the caller must recover by recomputation instead.
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint")

// walName is the event WAL file inside the checkpoint directory.
const walName = "events.wal"

// FileEntry names one payload file of a window snapshot with its
// integrity data.
type FileEntry struct {
	File     string `json:"file"`
	Bytes    int64  `json:"bytes"`
	Checksum string `json:"checksum"`
}

// Manifest is the commit record of one window snapshot. It is written
// after every payload file, atomically (tmp+rename), so its presence
// certifies a complete write.
type Manifest struct {
	Version int `json:"version"`
	// Window is the boundary the snapshot was taken at: windows
	// 1..Window-1 complete, boundary-Window re-solve applied.
	Window int `json:"window"`
	// EventCount is the length of the main event log at the boundary;
	// resume replays exactly this prefix of the WAL.
	EventCount int         `json:"event_count"`
	State      FileEntry   `json:"state"`
	Client     *FileEntry  `json:"client,omitempty"`
	Blocks     []FileEntry `json:"blocks"`
	// Summary is an optional human-readable digest of the controller
	// state (see core.StateSummary) for operators inspecting a
	// checkpoint by hand; resume ignores it.
	Summary any `json:"summary,omitempty"`
}

// WALPath returns the event WAL location inside a checkpoint directory.
func WALPath(dir string) string { return filepath.Join(dir, walName) }

func winDir(dir string, window int) string {
	return filepath.Join(dir, fmt.Sprintf("win_%04d", window))
}

func checksum(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// writeFile writes one payload file and returns its manifest entry.
func writeFile(dir, name string, data []byte) (FileEntry, error) {
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		return FileEntry{}, err
	}
	return FileEntry{File: name, Bytes: int64(len(data)), Checksum: checksum(data)}, nil
}

// Write persists one window snapshot. The block records and the event
// slice are stripped out of the state gob — records go to per-block
// files through the storage codec, events are recovered from the WAL —
// and the manifest commits the whole snapshot last. Returns the number
// of block payloads and total bytes written.
func Write(dir string, rs *engine.ResumeState, clientState []byte, summary any) (blocks int, written int64, err error) {
	wd := winDir(dir, rs.Window)
	// A leftover directory from a crashed earlier attempt at the same
	// window cannot be valid (its manifest was never renamed in, or we
	// would not be writing again); start clean.
	if err := os.RemoveAll(wd); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: clear %s: %w", wd, err)
	}
	if err := os.MkdirAll(wd, 0o755); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: mkdir %s: %w", wd, err)
	}

	m := &Manifest{Version: ManifestVersion, Window: rs.Window, EventCount: len(rs.Events), Summary: summary}

	for i, b := range rs.MemBlocks {
		data, err := storage.EncodeRecords(b.Records)
		if err != nil {
			return 0, 0, fmt.Errorf("checkpoint: encode memory block %v: %w", b.Meta.ID, err)
		}
		e, err := writeFile(wd, fmt.Sprintf("mem_%04d.gob", i), data)
		if err != nil {
			return 0, 0, fmt.Errorf("checkpoint: write memory block %v: %w", b.Meta.ID, err)
		}
		m.Blocks = append(m.Blocks, e)
		written += e.Bytes
	}
	for i, b := range rs.DiskBlocks {
		data, err := storage.EncodeRecords(b.Records)
		if err != nil {
			return 0, 0, fmt.Errorf("checkpoint: encode disk block %v: %w", b.ID, err)
		}
		e, err := writeFile(wd, fmt.Sprintf("disk_%04d.gob", i), data)
		if err != nil {
			return 0, 0, fmt.Errorf("checkpoint: write disk block %v: %w", b.ID, err)
		}
		m.Blocks = append(m.Blocks, e)
		written += e.Bytes
	}
	blocks = len(m.Blocks)

	stripped := *rs
	stripped.Events = nil
	stripped.MemBlocks = make([]engine.ResumeBlock, len(rs.MemBlocks))
	for i, b := range rs.MemBlocks {
		b.Records = nil
		stripped.MemBlocks[i] = b
	}
	stripped.DiskBlocks = make([]engine.ResumeDiskBlock, len(rs.DiskBlocks))
	for i, b := range rs.DiskBlocks {
		b.Records = nil
		stripped.DiskBlocks[i] = b
	}
	var sb bytes.Buffer
	if err := gob.NewEncoder(&sb).Encode(&stripped); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: encode state: %w", err)
	}
	se, err := writeFile(wd, "state.gob", sb.Bytes())
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: write state: %w", err)
	}
	m.State = se
	written += se.Bytes

	if clientState != nil {
		ce, err := writeFile(wd, "client.gob", clientState)
		if err != nil {
			return 0, 0, fmt.Errorf("checkpoint: write client state: %w", err)
		}
		m.Client = &ce
		written += ce.Bytes
	}

	mdata, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: encode manifest: %w", err)
	}
	tmp := filepath.Join(wd, "manifest.json.tmp")
	if err := os.WriteFile(tmp, mdata, 0o644); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(wd, "manifest.json")); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: commit manifest: %w", err)
	}
	written += int64(len(mdata))

	prune(dir, rs.Window)
	return blocks, written, nil
}

// prune removes window directories older than the previous boundary:
// after committing window k, only win_k and win_{k-1} remain (the
// previous one is the fallback if win_k later proves corrupt).
func prune(dir string, window int) {
	for _, w := range windows(dir) {
		if w < window-1 {
			os.RemoveAll(winDir(dir, w))
		}
	}
}

// windows lists the win_* directory indices in ascending order.
func windows(dir string) []int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range entries {
		var w int
		if _, err := fmt.Sscanf(e.Name(), "win_%d", &w); err == nil && e.IsDir() {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// readFile loads one payload file and verifies its manifest entry.
func readFile(wd string, e FileEntry) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(wd, e.File))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != e.Bytes {
		return nil, fmt.Errorf("checkpoint: %s: %d bytes, manifest says %d", e.File, len(data), e.Bytes)
	}
	if cs := checksum(data); cs != e.Checksum {
		return nil, fmt.Errorf("checkpoint: %s: checksum %s, manifest says %s", e.File, cs, e.Checksum)
	}
	return data, nil
}

// Load restores the newest usable window snapshot from the checkpoint
// directory: state, re-attached block records, client payload, and the
// event-log prefix replayed from the WAL. Corrupt or incomplete windows
// are skipped in favor of older ones; ErrNoCheckpoint reports that
// nothing was usable.
func Load(dir string) (rs *engine.ResumeState, clientState []byte, err error) {
	ws := windows(dir)
	var firstErr error
	for i := len(ws) - 1; i >= 0; i-- {
		rs, clientState, err = loadWindow(dir, ws[i])
		if err == nil {
			return rs, clientState, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, nil, fmt.Errorf("%w (newest failure: %v)", ErrNoCheckpoint, firstErr)
	}
	return nil, nil, ErrNoCheckpoint
}

// loadWindow validates and loads one window directory.
func loadWindow(dir string, window int) (*engine.ResumeState, []byte, error) {
	wd := winDir(dir, window)
	mdata, err := os.ReadFile(filepath.Join(wd, "manifest.json"))
	if err != nil {
		return nil, nil, err
	}
	var m Manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, nil, fmt.Errorf("checkpoint: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if m.Window != window {
		return nil, nil, fmt.Errorf("checkpoint: manifest window %d in win_%04d", m.Window, window)
	}

	sdata, err := readFile(wd, m.State)
	if err != nil {
		return nil, nil, err
	}
	var rs engine.ResumeState
	if err := gob.NewDecoder(bytes.NewReader(sdata)).Decode(&rs); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: decode state: %w", err)
	}
	if rs.Window != window {
		return nil, nil, fmt.Errorf("checkpoint: state window %d in win_%04d", rs.Window, window)
	}
	if len(m.Blocks) != len(rs.MemBlocks)+len(rs.DiskBlocks) {
		return nil, nil, fmt.Errorf("checkpoint: manifest lists %d blocks, state has %d",
			len(m.Blocks), len(rs.MemBlocks)+len(rs.DiskBlocks))
	}

	for i := range rs.MemBlocks {
		data, err := readFile(wd, m.Blocks[i])
		if err != nil {
			return nil, nil, err
		}
		recs, err := storage.DecodeRecords(data)
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint: decode memory block %v: %w", rs.MemBlocks[i].Meta.ID, err)
		}
		rs.MemBlocks[i].Records = recs
	}
	for i := range rs.DiskBlocks {
		data, err := readFile(wd, m.Blocks[len(rs.MemBlocks)+i])
		if err != nil {
			return nil, nil, err
		}
		recs, err := storage.DecodeRecords(data)
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint: decode disk block %v: %w", rs.DiskBlocks[i].ID, err)
		}
		rs.DiskBlocks[i].Records = recs
	}

	events, err := eventlog.ReplayWAL(WALPath(dir))
	if err != nil {
		return nil, nil, err
	}
	if len(events) < m.EventCount {
		return nil, nil, fmt.Errorf("checkpoint: wal holds %d events, manifest needs %d", len(events), m.EventCount)
	}
	rs.Events = events[:m.EventCount]

	var client []byte
	if m.Client != nil {
		client, err = readFile(wd, *m.Client)
		if err != nil {
			return nil, nil, err
		}
	}
	return &rs, client, nil
}
