package checkpoint

import (
	"fmt"
	"time"

	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/faults"
)

// Checkpointer implements engine.WindowCheckpointer: at every window
// boundary past the first it captures the cluster's ResumeState and
// commits it under Dir. It is also the injection point for the
// server-crash fault class: with CrashWindow set, the boundary that
// opens that window panics faults.ErrServerCrash immediately AFTER its
// checkpoint commits — the crash the recovery machinery is built for,
// placed deterministically so resume tests can crash at every boundary.
type Checkpointer struct {
	// Dir is the run-scoped durable directory (also holding the WAL).
	Dir string
	// CrashWindow, when >= 2, kills the session at that window's
	// boundary, after the checkpoint is written (0 disables; window 1
	// has no boundary checkpoint to crash after).
	CrashWindow int
	// ClientState, when set, supplies the driver-side payload persisted
	// next to the engine state (the session facade's window stats). It
	// runs on the driver goroutine during the boundary, so it may read
	// client-session state without racing the client (which is blocked
	// in NextWindow).
	ClientState func() ([]byte, error)
	// Summary, when set, supplies the manifest's human-readable
	// controller digest.
	Summary func() any
	// Log, when set, receives checkpoint_written events. This must be a
	// recovery-scoped log, never the session's main event log (which
	// has to stay bit-identical to a run without checkpointing).
	Log *eventlog.Log
	// OnWrite, when set, observes each committed checkpoint (wall-clock
	// duration, for overhead reporting).
	OnWrite func(window, blocks int, bytes int64, d time.Duration)
}

// OnWindowBoundary implements engine.WindowCheckpointer. Write failures
// panic: a checkpointer that silently stops persisting would turn the
// next crash into data loss, so a broken checkpoint directory is fatal
// to the session (the server recovers the panic into a session error).
func (cp *Checkpointer) OnWindowBoundary(c *engine.Cluster, window int) {
	start := time.Now()
	rs, err := c.CaptureResumeState()
	if err != nil {
		panic(fmt.Sprintf("checkpoint: capture window %d: %v", window, err))
	}
	var client []byte
	if cp.ClientState != nil {
		client, err = cp.ClientState()
		if err != nil {
			panic(fmt.Sprintf("checkpoint: client state window %d: %v", window, err))
		}
	}
	var summary any
	if cp.Summary != nil {
		summary = cp.Summary()
	}
	blocks, bytes, err := Write(cp.Dir, rs, client, summary)
	if err != nil {
		panic(fmt.Sprintf("checkpoint: window %d: %v", window, err))
	}
	if cp.Log != nil {
		cp.Log.Append(eventlog.Event{Kind: eventlog.CheckpointWritten, Time: c.Now(),
			Window: window, Count: blocks, Bytes: bytes})
	}
	if cp.OnWrite != nil {
		cp.OnWrite(window, blocks, bytes, time.Since(start))
	}
	if window == cp.CrashWindow {
		// Crash after the commit: the checkpoint for this boundary
		// exists, so resume rehydrates at exactly this window. During
		// replay the checkpointer is never consulted (the boundary runs
		// in replay mode), so a resumed run does not re-crash.
		panic(faults.ErrServerCrash)
	}
}
