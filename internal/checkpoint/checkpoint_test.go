package checkpoint_test

// Corruption-tolerance tests for the checkpoint store: damaged or
// truncated manifests, state files, block payloads and WALs must be
// rejected cleanly — fall back to the previous window, or report
// ErrNoCheckpoint so the caller recomputes from scratch — and never
// panic. The test checkpoints are produced by a real durable streaming
// run through the facade, so the on-disk layout is exactly what
// production writes.

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"blaze"
	"blaze/internal/checkpoint"
)

var (
	genOnce sync.Once
	genDir  string
	genErr  error
)

// sourceDir runs one small durable stream (no crash) and returns its
// checkpoint directory, holding the WAL plus the win_2 and win_3
// snapshots. Generated once per test process.
func sourceDir(t testing.TB) string {
	genOnce.Do(func() {
		genDir, genErr = os.MkdirTemp("", "blaze-ckpt-*")
		if genErr != nil {
			return
		}
		_, genErr = blaze.RunStream(blaze.StreamConfig{
			Workload:          blaze.StreamKMeans,
			Windows:           3,
			Scale:             0.25,
			Executors:         2,
			Parallelism:       1,
			MemoryPerExecutor: 1 << 20,
			EventLog:          blaze.NewEventLog(),
			CheckpointDir:     genDir,
		})
	})
	if genErr != nil {
		t.Fatalf("generate checkpoint: %v", genErr)
	}
	return genDir
}

// cloneDir copies the generated checkpoint tree into a fresh temp dir
// the test may corrupt freely.
func cloneDir(t testing.TB, src string) string {
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("clone checkpoint dir: %v", err)
	}
	return dst
}

// payloadFiles lists every file of the checkpoint tree relative to dir,
// sorted (Walk order is deterministic).
func payloadFiles(t testing.TB, dir string) []string {
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			rel, _ := filepath.Rel(dir, path)
			files = append(files, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("generated checkpoint holds no files")
	}
	return files
}

func TestLoadIntactCheckpoint(t *testing.T) {
	rs, client, err := checkpoint.Load(sourceDir(t))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Window != 3 {
		t.Errorf("loaded window %d, want newest boundary 3", rs.Window)
	}
	if len(client) == 0 {
		t.Error("no client payload loaded")
	}
	if len(rs.Events) == 0 {
		t.Error("no events replayed from the WAL")
	}
}

// TestLoadFallsBackToPreviousWindow corrupts the newest manifest and
// expects Load to serve the previous boundary instead; corrupting both
// leaves nothing usable and must report ErrNoCheckpoint.
func TestLoadFallsBackToPreviousWindow(t *testing.T) {
	dir := cloneDir(t, sourceDir(t))
	corrupt := func(rel string) {
		path := filepath.Join(dir, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	corrupt("win_0003/manifest.json")
	rs, _, err := checkpoint.Load(dir)
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if rs.Window != 2 {
		t.Errorf("fallback loaded window %d, want 2", rs.Window)
	}
	corrupt("win_0002/state.gob")
	if _, _, err := checkpoint.Load(dir); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("all-corrupt load: err = %v, want ErrNoCheckpoint", err)
	}
}

// TestLoadMissingDir treats an absent or empty directory as no
// checkpoint, not an error class of its own.
func TestLoadMissingDir(t *testing.T) {
	if _, _, err := checkpoint.Load(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := checkpoint.Load(t.TempDir()); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
}

// FuzzCheckpointManifest mutates one file of a valid checkpoint tree —
// a flipped byte, a truncation, or garbage — and requires Load to
// either fall back to a still-valid snapshot or fail with a clean
// error. It must never panic and never return a half-loaded state.
func FuzzCheckpointManifest(f *testing.F) {
	src := sourceDir(f)
	files := payloadFiles(f, src)

	// Seeded corpus: every file flipped at the middle, truncated to
	// zero, and truncated to half.
	for i := range files {
		f.Add(i, 1, byte(0xff), -1)
		f.Add(i, 0, byte(0), 0)
		f.Add(i, 0, byte(0), 2)
	}

	f.Fuzz(func(t *testing.T, fileSel, off int, b byte, truncDiv int) {
		dir := cloneDir(t, src)
		if fileSel < 0 {
			fileSel = -fileSel
		}
		rel := files[fileSel%len(files)]
		path := filepath.Join(dir, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if truncDiv >= 0 {
			// Truncate to a fraction of the original length.
			n := 0
			if truncDiv > 0 && len(data) > 0 {
				n = len(data) / (truncDiv + 1)
			}
			data = data[:n]
		} else if len(data) > 0 {
			if off < 0 {
				off = -off
			}
			data[off%len(data)] ^= b
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		rs, _, err := checkpoint.Load(dir)
		if err != nil {
			if rs != nil {
				t.Fatal("Load returned both a state and an error")
			}
			return // clean rejection: the caller recomputes from lineage
		}
		// A successful load must be a complete snapshot of some boundary
		// (the mutation either landed on a file of the newer window, was
		// a no-op flip, or hit the WAL past the manifest's prefix).
		if rs.Window < 2 || rs.Window > 3 {
			t.Fatalf("loaded impossible window %d", rs.Window)
		}
		if rs.Metrics == nil || rs.Shuffle == nil {
			t.Fatal("loaded state is missing metrics or shuffle snapshot")
		}
		if len(rs.Events) == 0 {
			t.Fatal("loaded state has no events")
		}
	})
}
