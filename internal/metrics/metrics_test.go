package metrics

import (
	"testing"
	"time"
)

func TestBreakdownAddAndTotals(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{Compute: 5 * time.Second, Shuffle: 2 * time.Second, DiskIO: 3 * time.Second, Recompute: time.Second})
	b.Add(Breakdown{Compute: 1 * time.Second})
	if b.Total() != 11*time.Second {
		t.Fatalf("total = %v, want 11s", b.Total())
	}
	if b.ComputeShuffle() != 8*time.Second {
		t.Fatalf("compute+shuffle = %v, want 8s", b.ComputeShuffle())
	}
	if b.Recompute != time.Second {
		t.Fatalf("recompute = %v", b.Recompute)
	}
}

func TestAppAggregation(t *testing.T) {
	a := NewApp(3)
	a.Executors[0].Breakdown.Compute = time.Second
	a.Executors[2].Breakdown.DiskIO = 2 * time.Second
	a.Executors[1].EvictedBytes = 100
	a.Executors[2].EvictedBytes = 50
	tb := a.TotalBreakdown()
	if tb.Compute != time.Second || tb.DiskIO != 2*time.Second {
		t.Fatalf("total breakdown = %+v", tb)
	}
	if a.TotalEvictedBytes() != 150 {
		t.Fatalf("evicted = %d, want 150", a.TotalEvictedBytes())
	}
}

func TestAddRecomputeGrowsSeries(t *testing.T) {
	a := NewApp(1)
	a.AddRecompute(3, 2*time.Second)
	a.AddRecompute(1, time.Second)
	a.AddRecompute(3, time.Second)
	if len(a.RecomputeByJob) != 4 {
		t.Fatalf("series length = %d, want 4", len(a.RecomputeByJob))
	}
	if a.RecomputeByJob[3] != 3*time.Second || a.RecomputeByJob[1] != time.Second {
		t.Fatalf("series = %v", a.RecomputeByJob)
	}
	if a.TotalRecompute() != 4*time.Second {
		t.Fatalf("total recompute = %v", a.TotalRecompute())
	}
}
