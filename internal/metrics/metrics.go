// Package metrics accumulates the per-task and per-application accounting
// the paper's evaluation reports: accumulated task execution times split
// into computation+shuffle and disk-I/O-for-caching (Fig. 4, Fig. 10),
// eviction counts and recomputation times (Fig. 12), per-iteration
// recomputation (Fig. 5), per-executor evicted bytes (Fig. 3), and disk
// footprints (§7.2).
package metrics

import (
	"reflect"
	"sync"
	"time"
)

// Breakdown splits accumulated task time by cause. Recompute is a subset
// of Compute: the computation time spent re-deriving partitions that had
// already been computed before (the recovery cost of recomputation-based
// caching).
type Breakdown struct {
	Compute   time.Duration
	Shuffle   time.Duration
	DiskIO    time.Duration
	Recompute time.Duration
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Compute += o.Compute
	b.Shuffle += o.Shuffle
	b.DiskIO += o.DiskIO
	b.Recompute += o.Recompute
}

// Total returns the accumulated task execution time: computation
// (including recomputation), shuffle, and disk I/O for caching.
func (b Breakdown) Total() time.Duration {
	return b.Compute + b.Shuffle + b.DiskIO
}

// ComputeShuffle returns the paper's "Computation+Shuffle" bucket.
func (b Breakdown) ComputeShuffle() time.Duration {
	return b.Compute + b.Shuffle
}

// ExecutorStats aggregates activity on one executor.
type ExecutorStats struct {
	Breakdown Breakdown
	// EvictedBytes counts bytes evicted from this executor's memory
	// store (to disk or dropped), the quantity Fig. 3 plots.
	EvictedBytes int64
	// EvictedToDiskBytes counts the subset spilled to disk.
	EvictedToDiskBytes int64
	// DiskPeakBytes is this executor's own peak on-disk footprint. The
	// per-executor peaks occur at different virtual times, so their sum
	// overstates the cluster-wide peak; see App.DiskPeakBytes for the
	// true concurrent peak.
	DiskPeakBytes int64
	// Tasks counts tasks executed.
	Tasks int
	// RebalanceTime is the time this executor spent adopting partitions
	// migrated from dead executors.
	RebalanceTime time.Duration
}

// App aggregates one application run.
//
// The exported fields are safe to read once the run has finished. While
// tasks execute in parallel (engine.Config.Parallelism > 1), the shared
// application-wide counters must be updated through the Inc*/Add*
// methods, which serialize under an internal mutex; the per-executor
// entries of Executors are owned by the executor's worker goroutine and
// need no locking. All counted quantities are commutative sums, so the
// totals are independent of task interleaving.
type App struct {
	// mu guards the application-wide counters during parallel stage
	// execution. It is a leaf lock: no other lock is acquired while it
	// is held.
	mu sync.Mutex

	Executors []ExecutorStats

	// Evictions counts memory-store evictions under pressure
	// (m→d and m→u transitions, §7.1 "Terms").
	Evictions int
	// EvictionsToDisk counts the subset that spilled (m→d).
	EvictionsToDisk int
	// Unpersists counts explicit or automatic unpersist operations.
	Unpersists int

	// CacheHits counts memory-store hits; DiskHits disk-store hits;
	// Misses accesses that required recomputation of a previously
	// computed partition.
	CacheHits int
	DiskHits  int
	Misses    int

	// RecomputeByJob records the recomputation time incurred during each
	// job (jobs are iterations in iterative workloads), feeding Fig. 5.
	RecomputeByJob []time.Duration

	// FaultsInjected counts injected faults (internal/faults), and
	// FaultBlocksLost / FaultBytesLost / FaultShufflesLost the cache
	// blocks, bytes and completed shuffles they destroyed.
	FaultsInjected    int
	FaultBlocksLost   int
	FaultBytesLost    int64
	FaultShufflesLost int

	// ExecutorDeaths counts executor-death faults; MigratedPartitions
	// the partition slots rebalanced from dead executors to survivors;
	// RebalanceTime the total virtual time survivors spent adopting them.
	ExecutorDeaths     int
	MigratedPartitions int
	RebalanceTime      time.Duration

	// FaultBucketsLost counts individually destroyed map-output buckets;
	// FaultMapOutputsLost the whole map outputs invalidated (by bucket
	// loss or executor death); FaultShuffleBytesLost the shuffle bytes
	// those losses destroyed.
	FaultBucketsLost      int
	FaultMapOutputsLost   int
	FaultShuffleBytesLost int64

	// FaultRecoveryByJob attributes the recovery work caused by injected
	// faults (recomputation of fault-lost blocks, regeneration of
	// fault-cleaned shuffles, partition rebalancing) to the job that paid
	// for it — the same per-job attribution Fig. 5 uses for ordinary
	// cache-miss recovery.
	FaultRecoveryByJob []time.Duration

	// FaultRecoveryByClass attributes the same recovery work to the
	// fault class that caused it ("exec", "block", "shuffle",
	// "exec-death", "bucket", "task-flake", "fetch-flake", "straggler"),
	// so correlated per-machine loss can be priced separately from
	// independent block loss and transient flakiness.
	FaultRecoveryByClass map[string]time.Duration

	// TaskRetries counts task attempts that failed transiently and were
	// retried; FetchRetries counts transiently failed shuffle-fetch
	// attempts; RetryBackoffTime is the virtual time those failed
	// attempts consumed (wasted launch overhead plus exponential
	// backoff).
	TaskRetries      int
	FetchRetries     int
	RetryBackoffTime time.Duration

	// SpeculativeLaunches counts speculative task copies launched
	// against stragglers; SpeculativeWins the subset that finished
	// before the straggling primary; StragglerSlowdownTime the extra
	// virtual time straggler windows inflated task executions by (for
	// won speculation races, the wasted primary time until the kill).
	SpeculativeLaunches   int
	SpeculativeWins       int
	StragglerSlowdownTime time.Duration

	// BlacklistedExecutors counts blacklist episodes: an executor
	// crossing the retryable-failure threshold is skipped by the
	// scheduler for a cooldown window. Its cache survives, unlike a
	// death, and it is reinstated afterwards.
	BlacklistedExecutors int

	// ILPSolves and ILPNodes record optimizer activity for Blaze: solver
	// invocations and branch-and-bound (or knapsack search) nodes
	// expanded. ILPFallbacks counts solves that could not produce an
	// exact optimum — oversized instances routed to the knapsack
	// relaxation, node-budget exhaustion, infeasible models — and
	// ILPReused counts solves answered entirely from the cross-job
	// solution memo without running the solver.
	ILPSolves    int
	ILPNodes     int
	ILPFallbacks int
	ILPReused    int

	// ILPSolveTime is the real (wall-clock) time spent inside the
	// optimizer. Unlike every other duration in App it is not virtual
	// time: identical schedules legitimately report different values
	// across runs, so determinism checks must compare through
	// EqualDeterministic, which ignores it.
	ILPSolveTime time.Duration

	// WindowsRun counts micro-batch windows completed on a streaming
	// session, and PartitionsRetired the partitions whose windowed
	// lifetime passed and were removed from store and candidate set at a
	// window boundary. Both stay zero on one-shot runs.
	WindowsRun        int
	PartitionsRetired int

	// ILPDeltaSolves counts incremental optimizer re-solves at window
	// boundaries (warm-started from the previous window's assignment);
	// ILPColdSolves counts the from-scratch verification solves run
	// alongside them when cold-solve verification is enabled, and
	// ILPColdMismatches the boundaries where the two proved-optimal
	// solves chose different cache sets (expected to stay zero).
	ILPDeltaSolves    int
	ILPColdSolves     int
	ILPColdMismatches int

	// ILPDeltaNodes and ILPColdNodes split the boundary search effort
	// (branch-and-bound / knapsack nodes) between the incremental and
	// cold solves, giving a hardware-independent view of the delta
	// speedup alongside the wall-clock times.
	ILPDeltaNodes int
	ILPColdNodes  int

	// ILPDeltaSolveTime and ILPColdSolveTime split the wall-clock solver
	// time spent at window boundaries between the incremental re-solves
	// and their cold verification counterparts. Like ILPSolveTime they
	// are real time, not virtual, and are excluded by EqualDeterministic.
	ILPDeltaSolveTime time.Duration
	ILPColdSolveTime  time.Duration

	// RepairSolves, RepairNodes and RepairMismatches record post-recovery
	// plan repair: placement re-solves over the surviving candidate set
	// after an executor death or a crash resume, their search effort, and
	// disagreements with the from-scratch verification solve (expected to
	// stay zero). RepairSolveTime is the wall-clock time those solves
	// took. All four are excluded by EqualDeterministic: a resumed run
	// repairs once where an uninterrupted run repairs zero times, yet the
	// two must otherwise compare equal.
	RepairSolves     int
	RepairNodes      int
	RepairMismatches int
	RepairSolveTime  time.Duration

	// ProfilingTime is the virtual time spent in Blaze's dependency
	// extraction phase, included in the ACT per §7.2.
	ProfilingTime time.Duration

	// ACT is the application completion time (end-to-end virtual time).
	ACT time.Duration

	// DiskBytesWritten is the cumulative cache data written to disk;
	// DiskPeakBytes the cluster-wide peak on-disk footprint, maintained
	// on every disk write so that per-executor peaks reached at
	// different virtual times are not conflated (§7.2 reports the
	// cluster-level peak).
	DiskBytesWritten int64
	DiskPeakBytes    int64

	// Jobs, RanStages and SkippedStages count scheduler activity.
	Jobs          int
	RanStages     int
	SkippedStages int

	// Tenant names the owning tenant when the application ran as a
	// session on the multi-tenant job server ("" for standalone runs and
	// for the server's default tenant).
	Tenant string

	// QuotaRejections counts memory admissions refused because the
	// tenant's cluster-wide quota was exhausted even after same-tenant
	// quota evictions; QuotaEvictions counts the same-tenant blocks
	// dropped to make room under the quota. Both stay zero outside the
	// job server's quota-enforced pools.
	QuotaRejections int
	QuotaEvictions  int
}

// NewApp creates metrics for a cluster with the given executor count.
func NewApp(executors int) *App {
	return &App{Executors: make([]ExecutorStats, executors)}
}

// TotalBreakdown sums the per-executor breakdowns.
func (a *App) TotalBreakdown() Breakdown {
	var b Breakdown
	for i := range a.Executors {
		b.Add(a.Executors[i].Breakdown)
	}
	return b
}

// TotalEvictedBytes sums evicted bytes across executors.
func (a *App) TotalEvictedBytes() int64 {
	var n int64
	for i := range a.Executors {
		n += a.Executors[i].EvictedBytes
	}
	return n
}

// IncCacheHit counts one memory-store hit (task path, locked).
func (a *App) IncCacheHit() {
	a.mu.Lock()
	a.CacheHits++
	a.mu.Unlock()
}

// IncDiskHit counts one disk-store hit (task path, locked).
func (a *App) IncDiskHit() {
	a.mu.Lock()
	a.DiskHits++
	a.mu.Unlock()
}

// IncMiss counts one recomputation of a previously computed partition
// (task path, locked).
func (a *App) IncMiss() {
	a.mu.Lock()
	a.Misses++
	a.mu.Unlock()
}

// IncEviction counts one memory-store eviction; toDisk marks the m→d
// subset (task path, locked).
func (a *App) IncEviction(toDisk bool) {
	a.mu.Lock()
	a.Evictions++
	if toDisk {
		a.EvictionsToDisk++
	}
	a.mu.Unlock()
}

// AddRecompute attributes recomputation time to a job index, growing the
// per-job series as needed.
func (a *App) AddRecompute(job int, d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.RecomputeByJob) <= job {
		a.RecomputeByJob = append(a.RecomputeByJob, 0)
	}
	a.RecomputeByJob[job] += d
}

// TotalRecompute sums recomputation time across jobs.
func (a *App) TotalRecompute() time.Duration {
	var t time.Duration
	for _, d := range a.RecomputeByJob {
		t += d
	}
	return t
}

// AddFaultRecovery attributes fault-recovery time to a job index, growing
// the per-job series as needed.
func (a *App) AddFaultRecovery(job int, d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.FaultRecoveryByJob) <= job {
		a.FaultRecoveryByJob = append(a.FaultRecoveryByJob, 0)
	}
	a.FaultRecoveryByJob[job] += d
}

// TotalFaultRecovery sums fault-recovery time across jobs.
func (a *App) TotalFaultRecovery() time.Duration {
	var t time.Duration
	for _, d := range a.FaultRecoveryByJob {
		t += d
	}
	return t
}

// AddFaultRecoveryClass attributes fault-recovery time to a fault class.
func (a *App) AddFaultRecoveryClass(class string, d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.FaultRecoveryByClass == nil {
		a.FaultRecoveryByClass = make(map[string]time.Duration)
	}
	a.FaultRecoveryByClass[class] += d
}

// IncFaultInjected counts one injected fault (task path, locked —
// transient faults fire inside tasks, unlike the boundary-injected
// permanent classes which update FaultsInjected from the driver).
func (a *App) IncFaultInjected() {
	a.mu.Lock()
	a.FaultsInjected++
	a.mu.Unlock()
}

// AddTaskRetry counts one transiently failed task attempt and its wasted
// virtual time (task path, locked).
func (a *App) AddTaskRetry(d time.Duration) {
	a.mu.Lock()
	a.TaskRetries++
	a.RetryBackoffTime += d
	a.mu.Unlock()
}

// AddFetchRetry counts one transiently failed shuffle-fetch attempt and
// its backoff (task path, locked).
func (a *App) AddFetchRetry(d time.Duration) {
	a.mu.Lock()
	a.FetchRetries++
	a.RetryBackoffTime += d
	a.mu.Unlock()
}

// AddSpeculative counts one speculative task launch and whether the copy
// beat the straggling primary.
func (a *App) AddSpeculative(win bool) {
	a.mu.Lock()
	a.SpeculativeLaunches++
	if win {
		a.SpeculativeWins++
	}
	a.mu.Unlock()
}

// AddStragglerSlowdown accounts extra virtual time a straggler window
// inflated task executions by (task path, locked).
func (a *App) AddStragglerSlowdown(d time.Duration) {
	a.mu.Lock()
	a.StragglerSlowdownTime += d
	a.mu.Unlock()
}

// IncQuotaRejection counts one memory admission refused under a tenant
// quota (task path, locked).
func (a *App) IncQuotaRejection() {
	a.mu.Lock()
	a.QuotaRejections++
	a.mu.Unlock()
}

// IncQuotaEviction counts one same-tenant block dropped to make room
// under a tenant quota (task path, locked).
func (a *App) IncQuotaEviction() {
	a.mu.Lock()
	a.QuotaEvictions++
	a.mu.Unlock()
}

// IncBlacklisted counts one flaky-executor blacklist episode.
func (a *App) IncBlacklisted() {
	a.mu.Lock()
	a.BlacklistedExecutors++
	a.mu.Unlock()
}

// EqualDeterministic reports whether two finished runs agree on every
// deterministic metric. ILPSolveTime, ILPDeltaSolveTime and
// ILPColdSolveTime are the wall-clock fields in App — identical
// schedules legitimately differ on them across runs and machines — so
// they are excluded; all other fields must match exactly. Call only
// after both runs have finished: it reads and briefly rewrites the
// excluded fields without locking, like direct post-run field access.
func EqualDeterministic(a, b *App) bool {
	at, bt := a.ILPSolveTime, b.ILPSolveTime
	adt, bdt := a.ILPDeltaSolveTime, b.ILPDeltaSolveTime
	act, bct := a.ILPColdSolveTime, b.ILPColdSolveTime
	ars, brs := a.RepairSolves, b.RepairSolves
	arn, brn := a.RepairNodes, b.RepairNodes
	arm, brm := a.RepairMismatches, b.RepairMismatches
	art, brt := a.RepairSolveTime, b.RepairSolveTime
	a.ILPSolveTime, b.ILPSolveTime = 0, 0
	a.ILPDeltaSolveTime, b.ILPDeltaSolveTime = 0, 0
	a.ILPColdSolveTime, b.ILPColdSolveTime = 0, 0
	a.RepairSolves, b.RepairSolves = 0, 0
	a.RepairNodes, b.RepairNodes = 0, 0
	a.RepairMismatches, b.RepairMismatches = 0, 0
	a.RepairSolveTime, b.RepairSolveTime = 0, 0
	eq := reflect.DeepEqual(a, b)
	a.ILPSolveTime, b.ILPSolveTime = at, bt
	a.ILPDeltaSolveTime, b.ILPDeltaSolveTime = adt, bdt
	a.ILPColdSolveTime, b.ILPColdSolveTime = act, bct
	a.RepairSolves, b.RepairSolves = ars, brs
	a.RepairNodes, b.RepairNodes = arn, brn
	a.RepairMismatches, b.RepairMismatches = arm, brm
	a.RepairSolveTime, b.RepairSolveTime = art, brt
	return eq
}

// CopyFrom overwrites every exported field of a with o's value, leaving
// the internal mutex alone (App contains a lock, so a plain struct copy
// would trip the copylocks vet check). Crash recovery uses it to restore
// a checkpointed metrics snapshot into a live cluster's App. Both sides
// must be quiescent.
func (a *App) CopyFrom(o *App) {
	av := reflect.ValueOf(a).Elem()
	ov := reflect.ValueOf(o).Elem()
	t := av.Type()
	for i := 0; i < t.NumField(); i++ {
		if !t.Field(i).IsExported() {
			continue
		}
		av.Field(i).Set(ov.Field(i))
	}
}
