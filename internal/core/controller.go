package core

import (
	"fmt"
	"os"
	"sort"
	"time"

	"blaze/internal/cachepolicy"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/storage"
)

// Features selects which Blaze components are active, enabling the
// paper's ablations (§7.3): +AutoCache alone, +CostAware on top, and the
// full ILP-driven unified decision layer.
type Features struct {
	// CostAware selects eviction victims by potential recovery cost
	// instead of LRU.
	CostAware bool
	// ILP enables the optimal-partition-state solver, cost-compared
	// admission, and the per-victim recompute-vs-disk state choice.
	ILP bool
	// DiskEnabled permits the d state; Blaze (MEM) in §7.4 disables it.
	DiskEnabled bool
}

// Controller is Blaze's unified decision layer (§5.6): it automatically
// caches partitions with future references, automatically unpersists
// partitions without them after each stage, selects eviction victims and
// their states by potential recovery cost, and periodically solves the
// ILP for the optimal partition states of the upcoming jobs.
type Controller struct {
	name string
	feat Features

	c   *engine.Cluster
	lin *CostLineage

	// est is the driver-context estimator, used by the ILP solver and by
	// any decision made outside a task (job and stage boundaries). perEst
	// holds one estimator per executor for task-path decisions: the
	// estimator memoizes per decision round, and sharing one memo across
	// concurrently admitting executors would race. Each instance reads
	// only lineage observations and block states homed on its executor
	// (the engine's parallel-eligibility gate guarantees this), so the
	// per-executor estimates equal the sequential shared-instance ones.
	est    *Estimator
	perEst []*Estimator

	// profiled records whether a dependency-extraction skeleton seeded
	// the lineage (§7.5 compares with and without).
	profiled bool

	// Current-job reference bookkeeping (exact within the job).
	curJob      int
	curStageIdx int
	stageRefs   map[int][]int // dataset id -> stage indices referencing it

	// targetState holds the ILP's desired placements for existing
	// blocks, consulted when deciding disk-read promotions.
	targetState map[storage.BlockID]engine.Placement

	// accessed marks blocks already consumed by the running stage, one
	// map per executor (indexed by executor ID); combined with the
	// reference index this gives partition-granularity liveness: a block
	// whose dataset has no references beyond the current stage and whose
	// own partition has been read is dead, hence a free eviction victim.
	// A block is only ever read on its home executor, so splitting the
	// map per executor changes nothing semantically while letting
	// parallel workers record accesses without locking.
	accessed []map[storage.BlockID]bool

	// ilpDiskCapacity, when positive, adds the optional per-executor
	// disk capacity constraint of Eq. 6 and solves the full ILP by
	// branch and bound instead of the knapsack fast path.
	ilpDiskCapacity int64

	// ilpWindow is the number of successor jobs the ILP objective looks
	// at (§5.5 uses 1 — "the current job and its successive job" — to
	// keep the solve under its latency budget).
	ilpWindow int

	// ilpMemo caches recent optimizer solutions per executor for
	// cross-job reuse: iterative workloads resubmit near-identical
	// candidate sets every job, so a solve whose fingerprint matches a
	// cached exact solution is answered without searching, and a
	// near-match seeds the branch and bound with the previous assignment
	// as its incumbent. Indexed by executor ID; driver-context only.
	ilpMemo []*solveMemo

	// arbiter, when set, is offered every job-start ILP trigger so a
	// multi-tenant server can re-run the optimization across the union
	// of all admitted sessions' candidates (see GlobalArbiter).
	arbiter JobArbiter

	// Windowed-lineage state for micro-batch streaming (window.go).
	// curWindow is the open 1-based window (0 on one-shot runs),
	// winFirstJob the index of its first job; retired marks nodes whose
	// lifetime has passed (excluded from candidates and liveness);
	// lastChosen holds, per executor, the memory set the most recent
	// solve assigned — the warm seed for the next boundary delta solve.
	curWindow   int
	winFirstJob int
	retired     map[NodeKey]bool
	lastChosen  []map[storage.BlockID]bool

	// coldVerify runs a from-scratch solve alongside every boundary
	// delta solve and counts disagreements (WithColdVerify).
	coldVerify bool
}

// JobArbiter intercepts a controller's job-start ILP trigger.
// ArbitrateJobStart either performs a (typically cluster-wide) solve
// covering the triggering controller and returns true, or returns false
// to let the controller run its session-local solve.
type JobArbiter interface {
	ArbitrateJobStart(trigger *Controller) bool
}

// New creates a Blaze controller with explicit features (used by the
// ablations). Pass a profiled skeleton via WithSkeleton, or leave the
// lineage to build on the run.
func New(name string, feat Features) *Controller {
	lin := NewCostLineage()
	lin.Extrapolate = true // on-the-run mode until a skeleton is applied
	return &Controller{
		name:        name,
		feat:        feat,
		lin:         lin,
		targetState: make(map[storage.BlockID]engine.Placement),
		ilpWindow:   1,
	}
}

// NewBlaze returns the full system: auto-caching, cost-aware decisions,
// and the ILP solver over memory and disk states.
func NewBlaze() *Controller {
	return New("blaze", Features{CostAware: true, ILP: true, DiskEnabled: true})
}

// NewBlazeMemOnly returns Blaze without disk support (§7.4): potential
// disk costs are excluded and evictions always unpersist.
func NewBlazeMemOnly() *Controller {
	return New("blaze-mem", Features{CostAware: true, ILP: true, DiskEnabled: false})
}

// NewAutoCache returns the +AutoCache ablation (§7.3): automatic caching
// and unpersisting on MEM+DISK Spark, with LRU eviction and no cost
// model.
func NewAutoCache() *Controller {
	return New("autocache", Features{DiskEnabled: true})
}

// NewCostAware returns the +CostAware ablation (§7.3): auto-caching plus
// cost-aware victim selection by smallest disk access cost, but victims
// always spill and admission never compares costs.
func NewCostAware() *Controller {
	return New("costaware", Features{CostAware: true, DiskEnabled: true})
}

// WithSkeleton seeds the controller with a profiled dependency skeleton
// and returns the controller.
func (b *Controller) WithSkeleton(sk *Skeleton) *Controller {
	b.lin.ApplySkeleton(sk)
	b.lin.Extrapolate = false // profiled offsets are complete
	b.profiled = true
	return b
}

// WithDiskCapacity adds the optional disk capacity constraint (Eq. 6
// extension), forcing the exact branch-and-bound ILP path.
func (b *Controller) WithDiskCapacity(bytes int64) *Controller {
	b.ilpDiskCapacity = bytes
	return b
}

// WithWindow sets how many successor jobs the ILP objective considers
// (default 1, the paper's "current job and its successive job"). Larger
// windows trade solve cost for longer-horizon placements.
func (b *Controller) WithWindow(jobs int) *Controller {
	if jobs >= 0 {
		b.ilpWindow = jobs
	}
	return b
}

// WithArbiter installs a job arbiter consulted on every job-start ILP
// trigger (nil detaches). GlobalArbiter.Register/Unregister call this;
// direct use is for tests.
func (b *Controller) WithArbiter(a JobArbiter) *Controller {
	b.arbiter = a
	return b
}

// ILPEnabled reports whether this controller runs the optimizer at all
// — only such controllers are worth registering with an arbiter.
func (b *Controller) ILPEnabled() bool { return b.feat.ILP }

// Cluster returns the bound cluster (nil before Bind).
func (b *Controller) Cluster() *engine.Cluster { return b.c }

// Window returns the configured ILP window in jobs (0 = current job
// only).
func (b *Controller) Window() int { return b.ilpWindow }

// Lineage exposes the cost lineage (tests and tools).
func (b *Controller) Lineage() *CostLineage { return b.lin }

// Name implements engine.Controller.
func (b *Controller) Name() string { return b.name }

// Bind implements engine.Controller. The driver estimator and the
// per-executor task-path estimators are all created here, up front:
// lazily growing perEst on the task path would race once stages run on
// parallel workers.
func (b *Controller) Bind(c *engine.Cluster) {
	b.c = c
	b.est = b.newEstimator(c)
	n := len(c.Executors())
	b.perEst = make([]*Estimator, n)
	b.accessed = make([]map[storage.BlockID]bool, n)
	b.ilpMemo = make([]*solveMemo, n)
	b.lastChosen = make([]map[storage.BlockID]bool, n)
	for i := 0; i < n; i++ {
		b.perEst[i] = b.newEstimator(c)
		b.accessed[i] = make(map[storage.BlockID]bool)
		b.ilpMemo[i] = &solveMemo{}
		b.lastChosen[i] = make(map[storage.BlockID]bool)
	}
}

func (b *Controller) newEstimator(c *engine.Cluster) *Estimator {
	e := NewEstimator(b.lin, c.Params(), b.feat.DiskEnabled, b.blockState)
	e.ShuffleOK = c.ShuffleComplete
	e.Executors = len(c.Executors())
	e.AliveAt = b.aliveAt
	return e
}

// estFor returns the executor's task-path estimator (the driver
// estimator when no executor is in scope).
func (b *Controller) estFor(ex *engine.Executor) *Estimator {
	if ex != nil && ex.ID < len(b.perEst) {
		return b.perEst[ex.ID]
	}
	return b.est
}

// ParallelCaps implements engine.ParallelCapable. The Blaze controller
// keeps its shared state parallel-safe (per-executor estimators and
// access maps, a locked CostLineage for task-path metric observation),
// but its estimator walks lineage across shuffle edges, so the engine
// must additionally reject stages where an incomplete shuffle edge with
// differing partition counts is reachable (RemoteReads). Evictions may
// drop blocks without a disk copy, so memory residency is not stable
// mid-stage (SpillOnlyEvictions false).
func (b *Controller) ParallelCaps() engine.ParallelCaps {
	return engine.ParallelCaps{Safe: true, RemoteReads: true}
}

// aliveAt reports whether a node's partitions will still be retained at
// the given job: auto-unpersist reclaims them after their last reference.
func (b *Controller) aliveAt(key NodeKey, job int) bool {
	if b.retired[key] {
		return false
	}
	n := b.lin.NodeByKey(key)
	if n == nil {
		return false
	}
	return b.lin.LastRefJob(n) >= job
}

// horizonFor returns the job index at which a dataset's next recovery
// would happen: the current job while references remain in it, otherwise
// the next referencing job.
func (b *Controller) horizonFor(n *Node, datasetID int) int {
	for _, idx := range b.stageRefs[datasetID] {
		if idx >= b.curStageIdx {
			return b.curJob
		}
	}
	if n != nil {
		if j, ok := b.lin.NextRefJob(n, b.curJob); ok {
			return j
		}
	}
	return b.curJob + 1
}

// horizonForAdmission is horizonFor for a partition being produced right
// now: its producing stage's own reference does not count, so the horizon
// is its next real use.
func (b *Controller) horizonForAdmission(n *Node, datasetID int) int {
	for _, idx := range b.stageRefs[datasetID] {
		if idx > b.curStageIdx {
			return b.curJob
		}
	}
	if n != nil {
		if j, ok := b.lin.NextRefJob(n, b.curJob); ok {
			return j
		}
	}
	return b.curJob + 1
}

func (b *Controller) blockState(datasetID, part int) BlockState {
	ex := b.c.ExecutorFor(part)
	id := storage.BlockID{Dataset: datasetID, Partition: part}
	return BlockState{InMemory: ex.Mem.Contains(id), OnDisk: ex.Disk.Contains(id)}
}

// OnJobStart registers the job on the CostLineage, rebuilds the exact
// within-job reference index, and triggers the ILP for the upcoming
// window (§5.6: the solver runs on job submission so results are ready
// before partitions are needed).
func (b *Controller) OnJobStart(j *engine.Job) {
	b.curJob = j.ID
	b.curStageIdx = 0

	// Register the full lineage of the target (not the cache-truncated
	// stage pipelines) so ancestor edges are always known.
	members := append(j.Target.Ancestors(), j.Target)
	sort.Slice(members, func(x, y int) bool { return members[x].ID() < members[y].ID() })
	b.lin.ObserveJob(j.ID, members, j.Target)

	b.stageRefs = make(map[int][]int)
	for _, st := range j.Stages {
		for _, d := range st.Pipeline {
			b.stageRefs[d.ID()] = append(b.stageRefs[d.ID()], st.Index)
		}
	}

	if b.feat.ILP {
		// A registered arbiter may supersede the session-local solve with
		// a cluster-wide one over every admitted session's candidates; it
		// declines (returns false) when it has nothing to add — e.g. a
		// single registered session — and the local solve runs as before.
		if b.arbiter == nil || !b.arbiter.ArbitrateJobStart(b) {
			b.runILP()
		}
	}
}

// OnJobEnd implements engine.Controller.
func (b *Controller) OnJobEnd(j *engine.Job) {}

// OnStageEnd advances the stage cursor and auto-unpersists partitions
// with no remaining references, freeing memory immediately after each
// stage (§5.6, like Nectar).
func (b *Controller) OnStageEnd(st *engine.Stage, idle []time.Duration) {
	if st.Job != nil {
		b.curStageIdx = st.Index + 1
	}
	for i := range b.accessed {
		b.accessed[i] = make(map[storage.BlockID]bool)
	}
	// In windowed (micro-batch streaming) mode, reference-count
	// reclamation defers to lifetime retirement at window boundaries: a
	// carried dataset's references from the NEXT window are invisible
	// here (that window's DAG has not been submitted yet), so dropping
	// at futureRefs==0 would destroy exactly the carried state streaming
	// reuses. Dead blocks instead persist until retireDeadLineage ages
	// them out by last-consumer window.
	if b.curWindow >= 1 {
		return
	}
	for _, ex := range b.c.Executors() {
		for _, meta := range ex.Mem.Blocks() {
			if b.futureRefs(meta.ID.Dataset) == 0 {
				b.c.DropBlock(ex, meta.ID)
			}
		}
		for _, id := range ex.Disk.Blocks() {
			if b.futureRefs(id.Dataset) == 0 {
				b.c.DropBlock(ex, id)
			}
		}
	}
}

// refsAfter counts the dataset's anticipated references at stages with
// index >= fromStage of the current job, plus the role-induced references
// in future jobs.
func (b *Controller) refsAfter(datasetID, fromStage int) int {
	refs := 0
	for _, idx := range b.stageRefs[datasetID] {
		if idx >= fromStage {
			refs++
		}
	}
	if n := b.lin.Node(datasetID); n != nil {
		refs += b.lin.FutureJobRefs(n, b.curJob)
	}
	return refs
}

// futureRefs counts references from the current stage onward — used to
// protect resident blocks that remaining work may still read.
func (b *Controller) futureRefs(datasetID int) int {
	return b.refsAfter(datasetID, b.curStageIdx)
}

// strictFutureRefs counts references strictly after the current stage —
// used at admission time, where the producing stage's own reference must
// not count as future reuse (otherwise every shuffle intermediate would
// look cache-worthy while it is being computed).
func (b *Controller) strictFutureRefs(datasetID int) int {
	return b.refsAfter(datasetID, b.curStageIdx+1)
}

// refsInWindow counts references to the node within the ILP window (the
// current job and its successor, §5.5).
func (b *Controller) refsInWindow(n *Node) int {
	refs := 0
	if n.DatasetID >= 0 {
		for _, idx := range b.stageRefs[n.DatasetID] {
			if idx >= b.curStageIdx {
				refs++
			}
		}
	}
	for _, off := range b.lin.effectiveOffsets(n.Key.Role) {
		j := n.CreationJob + off
		if j > b.curJob && j <= b.curJob+b.ilpWindow {
			refs++
		}
	}
	return refs
}

// debugPlace enables placement tracing for diagnostics.
var debugPlace = os.Getenv("BLAZE_DEBUG_PLACE") != ""

// PlaceComputed implements the automatic caching decision (§4.1): cache
// only partitions with future references, and with ILP enabled, cache in
// memory only when the partition's potential recovery cost beats the
// residents it would displace.
func (b *Controller) PlaceComputed(ex *engine.Executor, ds *dataflow.Dataset, part int, size int64) (engine.Placement, engine.Placement) {
	if b.strictFutureRefs(ds.ID()) == 0 {
		return engine.PlaceNone, engine.PlaceNone
	}
	if !b.feat.ILP {
		// Ablations always cache (to memory, spilling on pressure).
		if b.feat.DiskEnabled {
			return engine.PlaceMemory, engine.PlaceDisk
		}
		return engine.PlaceMemory, engine.PlaceNone
	}
	// Full Blaze without an ILP verdict for this partition: compare the
	// new partition's cost against the cheapest residents it would evict.
	est := b.estFor(ex)
	if size <= ex.Mem.Free() {
		return engine.PlaceMemory, b.offMemoryPlacement(est, ds.ID(), part)
	}
	n := b.lin.Node(ds.ID())
	est.Reset()
	newCost := est.RecoveryCostAt(n, part, b.horizonForAdmission(n, ds.ID()))
	var victimCost time.Duration
	var freed int64
	for _, meta := range b.victimOrder(ex) {
		if freed >= size-ex.Mem.Free() {
			break
		}
		victimCost += time.Duration(meta.Cost * float64(time.Second))
		freed += meta.Size
	}
	if freed >= size-ex.Mem.Free() && victimCost < newCost {
		return engine.PlaceMemory, b.offMemoryPlacement(est, ds.ID(), part)
	}
	off := b.offMemoryPlacement(est, ds.ID(), part)
	if debugPlace {
		fmt.Fprintf(os.Stderr, "PLACE-OFF %s p%d -> %v (newCost=%v victimCost=%v freed=%d size=%d free=%d job=%d stage=%d)\n",
			ds.Name(), part, off, newCost, victimCost, freed, size, ex.Mem.Free(), b.curJob, b.curStageIdx)
	}
	return off, engine.PlaceNone
}

// diskBudgetAllows enforces the optional per-executor disk capacity
// (Eq. 6 extension) on spill decisions.
func (b *Controller) diskBudgetAllows(ex *engine.Executor, size int64) bool {
	if b.ilpDiskCapacity <= 0 {
		return true
	}
	return ex.Disk.CurrentBytes()+size <= b.ilpDiskCapacity
}

// offMemoryPlacement chooses the partition's state when it cannot or
// should not stay in memory: disk when the disk cost is the smaller
// potential recovery cost, otherwise unpersisted (§4.2).
func (b *Controller) offMemoryPlacement(est *Estimator, datasetID, part int) engine.Placement {
	if !b.feat.DiskEnabled {
		return engine.PlaceNone
	}
	if !b.feat.ILP {
		return engine.PlaceDisk
	}
	n := b.lin.Node(datasetID)
	if n == nil || !est.PreferDiskAt(n, part, b.horizonForAdmission(n, datasetID)) {
		return engine.PlaceNone
	}
	if size, ok := b.lin.PartitionSize(n, part); ok {
		if !b.diskBudgetAllows(b.c.ExecutorFor(part), size) {
			return engine.PlaceNone
		}
	}
	return engine.PlaceDisk
}

// victimOrder ranks the executor's resident blocks for eviction and
// attaches their potential recovery costs to the metadata.
func (b *Controller) victimOrder(ex *engine.Executor) []*storage.BlockMeta {
	blocks := ex.Mem.Blocks()
	if !b.feat.CostAware {
		return cachepolicy.LRU{}.Order(blocks)
	}
	est := b.estFor(ex)
	est.Reset()
	for _, m := range blocks {
		n := b.lin.Node(m.ID.Dataset)
		if n == nil {
			// Outside this session's lineage. Standalone that means no
			// future benefit; in a shared pool the block belongs to
			// another live session, so keep the cost its owner last
			// stamped (its victimOrder or an ILP solve) instead of
			// pricing the neighbor's cache at zero and churning it.
			if !b.c.SharedPool() {
				m.Cost = 0
			}
			continue
		}
		if b.futureRefs(m.ID.Dataset) == 0 {
			m.Cost = 0 // no future benefit: free to evict
			continue
		}
		if b.feat.ILP && b.strictFutureRefs(m.ID.Dataset) == 0 && b.accessed[ex.ID][m.ID] {
			// Partition-granularity liveness: this block's only remaining
			// reference was the current stage, and its partition has been
			// consumed — it is dead regardless of the dataset-level view.
			m.Cost = 0
			continue
		}
		var c time.Duration
		if b.feat.ILP {
			// min(cost_d, cost_r) at the block's next recovery horizon
			c = est.RecoveryCostAt(n, m.ID.Partition, b.horizonFor(n, m.ID.Dataset))
		} else {
			c = est.DiskCost(n, m.ID.Partition) // +CostAware: disk cost only
		}
		m.Cost = c.Seconds()
	}
	return cachepolicy.CostAscending{}.Order(blocks)
}

// SelectVictims implements cost-aware eviction with per-victim state
// choice: full Blaze spills a victim only when its disk cost is below its
// recomputation cost; the ablations always spill (DiskEnabled) or always
// drop.
func (b *Controller) SelectVictims(ex *engine.Executor, need int64) []engine.Victim {
	ordered := b.victimOrder(ex)
	est := b.estFor(ex)
	var out []engine.Victim
	var freed int64
	for _, m := range ordered {
		if freed >= need {
			break
		}
		toDisk := b.feat.DiskEnabled
		if b.feat.ILP && toDisk {
			n := b.lin.Node(m.ID.Dataset)
			if n == nil && b.c.SharedPool() {
				// Another session's block: its owner can still recover it
				// from disk, so a valuable foreign victim spills rather
				// than vanishing.
				toDisk = m.Cost > 0 && b.diskBudgetAllows(ex, m.Size)
			} else {
				toDisk = n != nil && m.Cost > 0 && b.futureRefs(m.ID.Dataset) > 0 &&
					est.PreferDiskAt(n, m.ID.Partition, b.horizonFor(n, m.ID.Dataset)) &&
					b.diskBudgetAllows(ex, m.Size)
			}
		}
		out = append(out, engine.Victim{ID: m.ID, ToDisk: toDisk})
		freed += m.Size
	}
	return out
}

// PromoteOnDiskRead honors the ILP's assigned state when one exists;
// otherwise promotes partitions that still have future references.
func (b *Controller) PromoteOnDiskRead(ex *engine.Executor, id storage.BlockID) bool {
	if tgt, ok := b.targetState[id]; ok && b.feat.ILP {
		return tgt == engine.PlaceMemory
	}
	return b.futureRefs(id.Dataset) > 0
}

// OnBlockAccess records per-partition consumption for liveness tracking
// on the accessing executor's own map (blocks are only read on their
// home executor, so no other worker touches the same map).
func (b *Controller) OnBlockAccess(ex *engine.Executor, id storage.BlockID) {
	b.accessed[ex.ID][id] = true
}

// OnBlockAdmitted implements engine.Controller.
func (b *Controller) OnBlockAdmitted(ex *engine.Executor, id storage.BlockID) {}

// OnBlockRemoved implements engine.Controller.
func (b *Controller) OnBlockRemoved(ex *engine.Executor, id storage.BlockID) {}

// OnComputed feeds observed partition metrics into the CostLineage
// (Fig. 7 step 5-6).
func (b *Controller) OnComputed(ex *engine.Executor, ds *dataflow.Dataset, part int, size int64, cost time.Duration) {
	if b.lin.Node(ds.ID()) == nil {
		b.lin.RegisterDataset(ds, b.curJob)
	}
	b.lin.ObservePartition(ds.ID(), part, size, cost)
}
