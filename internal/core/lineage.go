// Package core implements the paper's primary contribution: Blaze's
// unified cost-aware caching mechanism. It contains
//
//   - the CostLineage (§5.3): a merged multi-job lineage of dataset
//     "roles" across iterations, tracking per-partition metrics (size,
//     computation time) observed during execution and inducting
//     unobserved metrics with linear regression;
//   - the potential recovery cost estimator (§5.4, Eq. 2-4);
//   - the ILP-based optimal partition state solver (§5.5, Eq. 5-6);
//   - the unified decision layer (§5.6): an engine.Controller that makes
//     caching, eviction and recovery decisions together, replacing the
//     three separate operational layers of existing systems;
//   - the dependency extraction (profiling) phase (§5.1 step 1).
package core

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blaze/internal/dataflow"
	"blaze/internal/regression"
)

// NodeKey identifies a dataset role instance across jobs: the congruent
// datasets "ranks@3" of different jobs merge into one node, as the
// CostLineage merges duplicate RDDs (Fig. 8). Ordinal disambiguates
// datasets that share a role name within one iteration.
type NodeKey struct {
	Role    string
	Iter    int
	Ordinal int
}

// ParseName splits a dataset name "role@iter" into its role and
// iteration. Names without '@' are iteration 0.
func ParseName(name string) (role string, iter int) {
	if i := strings.LastIndex(name, "@"); i >= 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i], n
		}
	}
	return name, 0
}

// Edge is one lineage dependency between nodes.
type Edge struct {
	Parent  NodeKey
	Shuffle bool
	// ShuffleID identifies the shuffle whose persisted outputs (when
	// still present) make recomputation across this edge cheap.
	ShuffleID int
}

// Node is one dataset role instance on the CostLineage with its observed
// and inducted per-partition metrics.
type Node struct {
	Key     NodeKey
	Parents []Edge
	// DatasetID is the id of the real dataset mapped to this node, or -1
	// for nodes known only from profiling/induction.
	DatasetID int
	// Parts is the partition count (0 until known).
	Parts int
	// CreationJob is the job index in which the node first appeared.
	CreationJob int
	// TouchedJob is the last job index that actually referenced the node
	// (created it, computed one of its direct children, or targeted it
	// with an action). Windowed lineage retirement compares it against
	// window boundaries to detect partitions whose lifetime has passed.
	TouchedJob int

	// sizes and costs hold observed per-partition metrics; observed
	// marks which partitions have real measurements.
	sizes    []int64
	costs    []time.Duration
	observed []bool
}

// roleMetrics aggregates regression series for one (role, partition)
// across iterations, used to induct unobserved metrics (§5.3).
type roleMetrics struct {
	size map[int]*regression.Series // partition -> size over iteration
	cost map[int]*regression.Series
}

// CostLineage tracks the merged workload lineage and partition metrics.
//
// Concurrency: structural registration (RegisterDataset, ObserveJob,
// ApplySkeleton) happens only in driver context at job boundaries; every
// dataset a stage can compute is an ancestor of the job target and is
// registered at job start, so no structural insert occurs while tasks
// run. Per-partition metric observation and lookup do run on the task
// path, and ObservePartition inserts into the role regression maps on a
// role's first observation, so those three methods serialize under
// metricsMu (a leaf lock). Metric content is still deterministic under
// parallel execution: each (node, partition) is observed and read only
// by the partition's home executor, whose task order the parallel
// scheduler preserves.
type CostLineage struct {
	// metricsMu guards roleMetrics and the per-node metric slices against
	// concurrent task-path observation and lookup. Leaf lock: nothing else
	// is acquired while it is held.
	metricsMu sync.RWMutex

	nodes map[NodeKey]*Node
	byID  map[int]*Node

	// roleRefOffsets maps role → sorted job-index offsets (relative to a
	// node's creation job) at which instances of the role are referenced.
	// With profiling the offsets come from the extracted skeleton; on the
	// run they are learned from observed jobs, which underestimates
	// future usage until the pattern has been seen (§7.5).
	roleRefOffsets map[string][]int
	// roleMetrics holds the inductive regression state per role.
	roleMetrics map[string]*roleMetrics

	// Extrapolate enables one-step reference extrapolation: a role that
	// has been referenced at two or more job offsets is assumed to be
	// referenced one job beyond its last observed offset. This is how
	// the on-the-run mode (no dependency extraction, §7.5) retains
	// static datasets that every iteration reads — without it, the last
	// observed offset always trails the current job and such data would
	// be unpersisted after every job. Profiled lineages have complete
	// offsets and disable it.
	Extrapolate bool

	// ordinalSeq tracks how many datasets of each (role, iter) have been
	// registered, assigning ordinals deterministically by creation order.
	ordinalSeq map[string]map[int]int

	// jobsSeen counts jobs registered from the real run.
	jobsSeen int
}

// NewCostLineage creates an empty lineage (the on-the-run mode). Apply a
// profiled Skeleton with ApplySkeleton to enable full future-reference
// knowledge.
func NewCostLineage() *CostLineage {
	return &CostLineage{
		nodes:          make(map[NodeKey]*Node),
		byID:           make(map[int]*Node),
		roleRefOffsets: make(map[string][]int),
		roleMetrics:    make(map[string]*roleMetrics),
		ordinalSeq:     make(map[string]map[int]int),
	}
}

// Node returns the lineage node for a real dataset id, or nil.
func (l *CostLineage) Node(datasetID int) *Node { return l.byID[datasetID] }

// NodeByKey returns the node for a key, or nil.
func (l *CostLineage) NodeByKey(k NodeKey) *Node { return l.nodes[k] }

// Nodes returns all nodes sorted by key for deterministic iteration.
func (l *CostLineage) Nodes() []*Node {
	out := make([]*Node, 0, len(l.nodes))
	for _, n := range l.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

func keyLess(a, b NodeKey) bool {
	if a.Role != b.Role {
		return a.Role < b.Role
	}
	if a.Iter != b.Iter {
		return a.Iter < b.Iter
	}
	return a.Ordinal < b.Ordinal
}

// keyFor assigns the NodeKey for a dataset, disambiguating duplicate
// (role, iter) names by creation order. seq must be reset per run so
// profiling and the real run assign identical ordinals.
func keyFor(seq map[string]map[int]int, ds *dataflow.Dataset) NodeKey {
	role, iter := ParseName(ds.Name())
	m := seq[role]
	if m == nil {
		m = make(map[int]int)
		seq[role] = m
	}
	ord := m[iter]
	m[iter] = ord + 1
	return NodeKey{Role: role, Iter: iter, Ordinal: ord}
}

// RegisterDataset maps a real dataset onto the lineage, creating or
// merging its node. Parents must already be registered (datasets are
// created parents-first).
func (l *CostLineage) RegisterDataset(ds *dataflow.Dataset, jobIdx int) *Node {
	if n, ok := l.byID[ds.ID()]; ok {
		return n
	}
	key := keyFor(l.ordinalSeq, ds)
	n, ok := l.nodes[key]
	if !ok {
		n = &Node{Key: key, DatasetID: -1, CreationJob: jobIdx, TouchedJob: jobIdx}
		l.nodes[key] = n
	}
	if jobIdx > n.TouchedJob {
		n.TouchedJob = jobIdx
	}
	n.DatasetID = ds.ID()
	if n.Parts == 0 {
		n.Parts = ds.Partitions()
	}
	if n.sizes == nil {
		n.sizes = make([]int64, n.Parts)
		n.costs = make([]time.Duration, n.Parts)
		n.observed = make([]bool, n.Parts)
	}
	if len(n.Parents) == 0 {
		for _, dep := range ds.Deps() {
			if pn, ok := l.byID[dep.Parent.ID()]; ok {
				n.Parents = append(n.Parents, Edge{Parent: pn.Key, Shuffle: dep.Shuffle, ShuffleID: dep.ShuffleID})
			}
		}
	}
	l.byID[ds.ID()] = n
	return n
}

// ObserveJob records a submitted job: registers its datasets and learns
// role reference offsets. A dataset is *referenced* by a job when the job
// creates one of its direct children (the child's computation reads it)
// or when it is the job's action target — not merely by being in the
// job's transitive ancestry, since cached children truncate access to
// older data.
func (l *CostLineage) ObserveJob(jobIdx int, datasets []*dataflow.Dataset, target *dataflow.Dataset) {
	for _, ds := range datasets {
		n := l.RegisterDataset(ds, jobIdx)
		if n.CreationJob == jobIdx {
			// Computed this job: references each direct parent now.
			l.addRefOffset(n.Key.Role, 0)
			for _, e := range n.Parents {
				if pn := l.nodes[e.Parent]; pn != nil {
					l.addRefOffset(pn.Key.Role, jobIdx-pn.CreationJob)
					if jobIdx > pn.TouchedJob {
						pn.TouchedJob = jobIdx
					}
				}
			}
		}
	}
	if target != nil {
		if tn := l.byID[target.ID()]; tn != nil {
			l.addRefOffset(tn.Key.Role, jobIdx-tn.CreationJob)
			if jobIdx > tn.TouchedJob {
				tn.TouchedJob = jobIdx
			}
		}
	}
	if jobIdx >= l.jobsSeen {
		l.jobsSeen = jobIdx + 1
	}
}

func (l *CostLineage) addRefOffset(role string, off int) {
	offs := l.roleRefOffsets[role]
	i := sort.SearchInts(offs, off)
	if i < len(offs) && offs[i] == off {
		return
	}
	offs = append(offs, 0)
	copy(offs[i+1:], offs[i:])
	offs[i] = off
	l.roleRefOffsets[role] = offs
}

// effectiveOffsets returns the role's reference offsets, extended by one
// extrapolated step in on-the-run mode.
func (l *CostLineage) effectiveOffsets(role string) []int {
	offs := l.roleRefOffsets[role]
	if !l.Extrapolate || len(offs) < 2 {
		return offs
	}
	out := make([]int, len(offs), len(offs)+1)
	copy(out, offs)
	return append(out, offs[len(offs)-1]+1)
}

// FutureJobRefs returns how many jobs strictly after curJob are expected
// to reference the node, based on the role's reference offsets.
func (l *CostLineage) FutureJobRefs(n *Node, curJob int) int {
	count := 0
	for _, off := range l.effectiveOffsets(n.Key.Role) {
		if n.CreationJob+off > curJob {
			count++
		}
	}
	return count
}

// LastRefJob returns the last job expected to reference the node: its
// creation job plus the role's largest reference offset. After that job,
// Blaze's auto-unpersist reclaims the node's partitions.
func (l *CostLineage) LastRefJob(n *Node) int {
	offs := l.effectiveOffsets(n.Key.Role)
	if len(offs) == 0 {
		return n.CreationJob
	}
	return n.CreationJob + offs[len(offs)-1]
}

// NextRefJob returns the index of the next job (> curJob) expected to
// reference the node, or false.
func (l *CostLineage) NextRefJob(n *Node, curJob int) (int, bool) {
	for _, off := range l.effectiveOffsets(n.Key.Role) {
		if j := n.CreationJob + off; j > curJob {
			return j, true
		}
	}
	return 0, false
}

// ObservePartition records the measured size and computation time of a
// partition (step 5 of Fig. 7: executors report metadata back) and feeds
// the role's regression series.
func (l *CostLineage) ObservePartition(datasetID, part int, size int64, cost time.Duration) {
	n := l.byID[datasetID]
	if n == nil || part >= n.Parts {
		return
	}
	l.metricsMu.Lock()
	defer l.metricsMu.Unlock()
	n.sizes[part] = size
	n.costs[part] = cost
	n.observed[part] = true

	rm := l.roleMetrics[n.Key.Role]
	if rm == nil {
		rm = &roleMetrics{size: make(map[int]*regression.Series), cost: make(map[int]*regression.Series)}
		l.roleMetrics[n.Key.Role] = rm
	}
	if rm.size[part] == nil {
		rm.size[part] = &regression.Series{}
		rm.cost[part] = &regression.Series{}
	}
	rm.size[part].Observe(float64(n.Key.Iter), float64(size))
	rm.cost[part].Observe(float64(n.Key.Iter), float64(cost))
}

// PartitionSize returns the partition's size: the observation when
// available, otherwise the role regression's induction (§5.3), otherwise
// false.
func (l *CostLineage) PartitionSize(n *Node, part int) (int64, bool) {
	if n == nil {
		return 0, false
	}
	l.metricsMu.RLock()
	defer l.metricsMu.RUnlock()
	if part < len(n.observed) && n.observed[part] {
		return n.sizes[part], true
	}
	if rm := l.roleMetrics[n.Key.Role]; rm != nil {
		if s := rm.size[part]; s != nil {
			if v, ok := s.Predict(float64(n.Key.Iter)); ok {
				return int64(v), true
			}
		}
	}
	return 0, false
}

// PartitionCost returns the partition's computation time, observed or
// inducted.
func (l *CostLineage) PartitionCost(n *Node, part int) (time.Duration, bool) {
	if n == nil {
		return 0, false
	}
	l.metricsMu.RLock()
	defer l.metricsMu.RUnlock()
	if part < len(n.observed) && n.observed[part] {
		return n.costs[part], true
	}
	if rm := l.roleMetrics[n.Key.Role]; rm != nil {
		if s := rm.cost[part]; s != nil {
			if v, ok := s.Predict(float64(n.Key.Iter)); ok {
				return time.Duration(v), true
			}
		}
	}
	return 0, false
}
