package core

import (
	"math/rand"
	"testing"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/storage"
)

func TestExtrapolationOnlyOnTheRun(t *testing.T) {
	l := NewCostLineage()
	l.addRefOffset("r", 0)
	l.addRefOffset("r", 1)
	n := &Node{Key: NodeKey{Role: "r", Iter: 3}, CreationJob: 3}

	// Profiled mode: offsets are complete — no refs beyond creation+1.
	if got := l.FutureJobRefs(n, 4); got != 0 {
		t.Fatalf("profiled refs after last offset = %d, want 0", got)
	}
	// On-the-run mode: one extrapolated step keeps the node alive one
	// more job.
	l.Extrapolate = true
	if got := l.FutureJobRefs(n, 4); got != 1 {
		t.Fatalf("extrapolated refs = %d, want 1", got)
	}
	if got := l.LastRefJob(n); got != 3+2 {
		t.Fatalf("extrapolated LastRefJob = %d, want 5", got)
	}
	// A single-offset role never extrapolates (no pattern yet).
	l.addRefOffset("single", 0)
	s := &Node{Key: NodeKey{Role: "single", Iter: 0}, CreationJob: 0}
	if got := l.FutureJobRefs(s, 0); got != 0 {
		t.Fatalf("single-offset role should not extrapolate, got %d", got)
	}
}

func TestLastRefJobEmptyRole(t *testing.T) {
	l := NewCostLineage()
	n := &Node{Key: NodeKey{Role: "ghost", Iter: 2}, CreationJob: 2}
	if got := l.LastRefJob(n); got != 2 {
		t.Fatalf("LastRefJob with no offsets = %d, want creation job", got)
	}
}

// buildDeepChain registers a linear chain c0 -> c1 -> ... -> cN on a
// lineage with uniform partition metrics.
func buildDeepChain(t *testing.T, depth int, size int64, cost time.Duration) (*CostLineage, []*dataflow.Dataset) {
	t.Helper()
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	l := NewCostLineage()
	var all []*dataflow.Dataset
	cur := ctx.Source("c@0", 1, func(int) []dataflow.Record { return nil })
	all = append(all, cur)
	for i := 1; i <= depth; i++ {
		cur = cur.Map("c@"+itoa(i), func(r dataflow.Record) dataflow.Record { return r })
		all = append(all, cur)
	}
	l.ObserveJob(0, all, cur)
	for _, ds := range all {
		l.ObservePartition(ds.ID(), 0, size, cost)
	}
	return l, all
}

func TestHorizonKillsDeadAncestors(t *testing.T) {
	l, chain := buildDeepChain(t, 4, 1000, time.Second)
	st := fakeState{}
	// The immediate parent is in memory now...
	parent := chain[3]
	st[storage.BlockID{Dataset: parent.ID(), Partition: 0}] = BlockState{InMemory: true}
	e := NewEstimator(l, costmodel.Default(), true, st.fn)
	// ...but its role dies at job 0 (no future offsets).
	e.AliveAt = func(key NodeKey, job int) bool { return job <= 0 }

	tail := l.Node(chain[4].ID())
	// At the "now" horizon the parent shortcuts the chain: 1s.
	if got := e.RecomputeCostAt(tail, 0, -1); got != time.Second {
		t.Fatalf("now-horizon cost = %v, want 1s", got)
	}
	// At a future horizon the parent is gone: the full chain (5 nodes).
	e.Reset()
	e.AliveAt = func(key NodeKey, job int) bool { return job <= 0 }
	if got := e.RecomputeCostAt(tail, 0, 3); got != 5*time.Second {
		t.Fatalf("future-horizon cost = %v, want 5s", got)
	}
}

// Property: putting any single block into (hypothetical) memory never
// increases any node's recomputation cost — cost monotonicity under
// cache growth.
func TestRecomputeMonotoneUnderCaching(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		depth := 2 + rng.Intn(6)
		l, chain := buildDeepChain(t, depth, 1000, time.Duration(1+rng.Intn(5))*time.Second)
		st := fakeState{}
		e := NewEstimator(l, costmodel.Default(), true, st.fn)
		tail := l.Node(chain[len(chain)-1].ID())
		base := e.RecomputeCost(tail, 0)
		for _, ds := range chain[:len(chain)-1] {
			e.SetHypothetical(map[storage.BlockID]bool{
				{Dataset: ds.ID(), Partition: 0}: true,
			})
			withCache := e.RecomputeCost(tail, 0)
			if withCache > base {
				t.Fatalf("trial %d: caching %s increased cost %v -> %v", trial, ds.Name(), base, withCache)
			}
		}
	}
}

// Property: deeper chains never cost less to recompute.
func TestRecomputeMonotoneInDepth(t *testing.T) {
	prev := time.Duration(0)
	for depth := 1; depth <= 8; depth++ {
		l, chain := buildDeepChain(t, depth, 100, 500*time.Millisecond)
		st := fakeState{}
		e := NewEstimator(l, costmodel.Default(), true, st.fn)
		tail := l.Node(chain[len(chain)-1].ID())
		cost := e.RecomputeCost(tail, 0)
		if cost < prev {
			t.Fatalf("depth %d cost %v < depth %d cost %v", depth, cost, depth-1, prev)
		}
		prev = cost
	}
}

func TestWindowWidensRefsInWindow(t *testing.T) {
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	b := New("w", Features{ILP: true, DiskEnabled: true})
	// Role referenced at offsets 0..3.
	src := ctx.Source("wide@0", 1, func(int) []dataflow.Record { return nil })
	b.lin.ObserveJob(0, []*dataflow.Dataset{src}, src)
	for _, off := range []int{1, 2, 3} {
		b.lin.addRefOffset("wide", off)
	}
	b.curJob = 0
	b.stageRefs = map[int][]int{}
	n := b.lin.Node(src.ID())

	b.ilpWindow = 1
	w1 := b.refsInWindow(n)
	b.ilpWindow = 3
	w3 := b.refsInWindow(n)
	if w3 <= w1 {
		t.Fatalf("wider window should see more refs: window1=%d window3=%d", w1, w3)
	}
}

func TestHorizonForAdmissionSkipsCurrentStage(t *testing.T) {
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	b := New("h", Features{ILP: true, DiskEnabled: true})
	ds := ctx.Source("x@0", 1, func(int) []dataflow.Record { return nil })
	b.lin.ObserveJob(0, []*dataflow.Dataset{ds}, ds)
	b.curJob = 0
	b.curStageIdx = 1
	n := b.lin.Node(ds.ID())

	// Only the current stage references it → admission horizon must be a
	// future job, not the current one.
	b.stageRefs = map[int][]int{ds.ID(): {1}}
	if h := b.horizonForAdmission(n, ds.ID()); h <= b.curJob {
		t.Fatalf("admission horizon %d should be beyond the current job", h)
	}
	// A later stage reference keeps the horizon at the current job.
	b.stageRefs = map[int][]int{ds.ID(): {1, 2}}
	if h := b.horizonForAdmission(n, ds.ID()); h != b.curJob {
		t.Fatalf("admission horizon %d, want current job", h)
	}
	// For protection (victims), the current stage counts.
	b.stageRefs = map[int][]int{ds.ID(): {1}}
	if h := b.horizonFor(n, ds.ID()); h != b.curJob {
		t.Fatalf("victim horizon %d, want current job", h)
	}
}
