package core

import (
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/storage"
)

// BlockState reports where a partition currently resides.
type BlockState struct {
	InMemory bool
	OnDisk   bool
}

// StateFunc resolves the current state of a real partition. Unknown or
// future partitions report neither location.
type StateFunc func(datasetID, part int) BlockState

// Estimator computes the potential recovery costs of §5.4: the disk
// access cost (Eq. 3) and the recursive recomputation cost (Eq. 4),
// combined into the potential recovery cost (Eq. 2). Costs change as
// partition states change (§4.3), so estimates are memoized per decision
// round and reset between rounds.
type Estimator struct {
	L           *CostLineage
	Params      costmodel.Params
	DiskEnabled bool
	State       StateFunc

	// ShuffleOK reports whether a shuffle's outputs still exist; when
	// they do, recomputation across that edge reads the persisted
	// shuffle files instead of re-running the parent stage. Nil treats
	// every shuffle as missing (conservative).
	ShuffleOK func(shuffleID int) bool
	// Executors scales the cost of regenerating a cleaned shuffle: the
	// parent stage recomputes all its partitions in parallel waves of
	// one task per executor. Zero disables the scaling.
	Executors int

	// AliveAt reports whether a node's partitions will still be retained
	// (referenced) at the given job index; ancestors that die before the
	// recovery horizon cannot be counted on as recomputation shortcuts
	// (§4.3's dynamically changing dependencies). Nil means always alive.
	AliveAt func(key NodeKey, job int) bool

	// hypoMem optionally overrides memory residency for a set of blocks,
	// letting the ILP fixed-point loop evaluate costs under a candidate
	// assignment before applying it.
	hypoMem map[storage.BlockID]bool

	memo map[partKey]time.Duration
}

type partKey struct {
	key     NodeKey
	part    int
	horizon int
}

// NewEstimator builds an estimator over the lineage.
func NewEstimator(l *CostLineage, params costmodel.Params, diskEnabled bool, state StateFunc) *Estimator {
	return &Estimator{L: l, Params: params, DiskEnabled: diskEnabled, State: state, memo: make(map[partKey]time.Duration)}
}

// Reset clears the memoized costs; call at the start of each decision
// round (costs are state-dependent).
func (e *Estimator) Reset() {
	e.memo = make(map[partKey]time.Duration)
	e.hypoMem = nil
}

// SetHypothetical overrides memory residency with the given assignment
// for nodes that have real dataset ids; used by the ILP fixed point.
func (e *Estimator) SetHypothetical(inMem map[storage.BlockID]bool) {
	e.memo = make(map[partKey]time.Duration)
	e.hypoMem = inMem
}

// alive reports whether the node's partitions can be counted on to still
// exist at the recovery horizon. Horizon <= 0 means "now".
func (e *Estimator) alive(n *Node, horizon int) bool {
	if horizon < 0 || e.AliveAt == nil {
		return true
	}
	return e.AliveAt(n.Key, horizon)
}

func (e *Estimator) inMemory(n *Node, part, horizon int) bool {
	if n.DatasetID < 0 || !e.alive(n, horizon) {
		return false
	}
	id := storage.BlockID{Dataset: n.DatasetID, Partition: part}
	if e.hypoMem != nil {
		if v, ok := e.hypoMem[id]; ok {
			return v
		}
	}
	return e.State(n.DatasetID, part).InMemory
}

func (e *Estimator) onDisk(n *Node, part, horizon int) bool {
	if n.DatasetID < 0 || !e.alive(n, horizon) {
		return false
	}
	return e.State(n.DatasetID, part).OnDisk
}

// DiskCost implements Eq. 3: size over disk throughput. A partition not
// yet on disk pays the spill write in addition to the read-back.
func (e *Estimator) DiskCost(n *Node, part int) time.Duration {
	size, ok := e.L.PartitionSize(n, part)
	if !ok {
		return 0
	}
	return e.Params.DiskRecoveryCost(size, e.onDisk(n, part, -1))
}

// maxRecursionDepth bounds the Eq. 4 recursion; real lineages are DAGs
// so this only guards against pathological chains.
const maxRecursionDepth = 256

// RecomputeCost implements Eq. 4 at the "now" horizon.
func (e *Estimator) RecomputeCost(n *Node, part int) time.Duration {
	return e.RecomputeCostAt(n, part, -1)
}

// RecomputeCostAt implements Eq. 4: the longest recomputation chain from
// the nearest available ancestors, dynamically reflecting the partition
// states expected at the given job horizon (ancestors whose last
// reference precedes the horizon will have been auto-unpersisted and
// cannot shortcut the chain).
func (e *Estimator) RecomputeCostAt(n *Node, part, horizon int) time.Duration {
	return e.recompute(n, part, 0, horizon)
}

func (e *Estimator) recompute(n *Node, part, depth, horizon int) time.Duration {
	if n == nil || depth > maxRecursionDepth {
		return 0
	}
	k := partKey{key: n.Key, part: part, horizon: horizon}
	if v, ok := e.memo[k]; ok {
		return v
	}
	// Mark in-progress to cut accidental cycles at zero.
	e.memo[k] = 0

	own, _ := e.L.PartitionCost(n, part) // cost_{k→i}: generating p_i from its inputs
	var worst time.Duration
	for _, edge := range n.Parents {
		if edge.Shuffle && e.ShuffleOK != nil && e.ShuffleOK(edge.ShuffleID) && e.shuffleAlive(edge, horizon) {
			// The shuffle's outputs persist on local disks; recomputing
			// the child rereads them, which is already part of cost_{k→i}.
			continue
		}
		pn := e.L.NodeByKey(edge.Parent)
		if pn == nil {
			continue
		}
		pp := mapPartition(part, n.Parts, pn.Parts)
		if e.inMemory(pn, pp, horizon) {
			continue // (1-m_k) zeroes the ancestor term
		}
		rec := e.recoveryCost(pn, pp, depth+1, horizon)
		if edge.Shuffle && e.Executors > 0 && pn.Parts > e.Executors {
			// Regenerating a cleaned shuffle re-runs the whole parent
			// stage: ceil(parts/executors) waves of parallel tasks.
			waves := (pn.Parts + e.Executors - 1) / e.Executors
			rec *= time.Duration(waves)
		}
		if rec > worst {
			worst = rec
		}
	}
	total := worst + own
	e.memo[k] = total
	return total
}

// shuffleAlive reports whether the shuffle's outputs can be counted on at
// the horizon: the producing parent must still be alive then (releasing
// it cleans the shuffle).
func (e *Estimator) shuffleAlive(edge Edge, horizon int) bool {
	if horizon < 0 || e.AliveAt == nil {
		return true
	}
	return e.AliveAt(edge.Parent, horizon)
}

// recoveryCost implements Eq. 2 for an ancestor during the recursion: the
// cheaper of reading it back from disk (only possible if it is there) and
// recomputing it.
func (e *Estimator) recoveryCost(n *Node, part, depth, horizon int) time.Duration {
	rec := e.recompute(n, part, depth, horizon)
	if e.DiskEnabled && e.onDisk(n, part, horizon) {
		if size, ok := e.L.PartitionSize(n, part); ok {
			d := e.Params.DiskRead(size)
			if d < rec {
				return d
			}
		}
	}
	return rec
}

// RecoveryCost implements Eq. 2 at the "now" horizon.
func (e *Estimator) RecoveryCost(n *Node, part int) time.Duration {
	return e.RecoveryCostAt(n, part, -1)
}

// RecoveryCostAt implements Eq. 2 for a decision candidate: the minimum
// of the potential disk cost and the potential recomputation cost (only
// the latter when the disk tier is disabled).
func (e *Estimator) RecoveryCostAt(n *Node, part, horizon int) time.Duration {
	rec := e.RecomputeCostAt(n, part, horizon)
	if !e.DiskEnabled {
		return rec
	}
	d := e.DiskCost(n, part)
	if d == 0 {
		return rec
	}
	if d < rec {
		return d
	}
	return rec
}

// PreferDisk reports whether evicting the partition to disk is cheaper
// than discarding and recomputing it — the per-victim state choice of
// §4.2.
func (e *Estimator) PreferDisk(n *Node, part int) bool {
	return e.PreferDiskAt(n, part, -1)
}

// PreferDiskAt is PreferDisk at a job horizon.
func (e *Estimator) PreferDiskAt(n *Node, part, horizon int) bool {
	if !e.DiskEnabled {
		return false
	}
	d := e.DiskCost(n, part)
	if d == 0 {
		return false
	}
	return d < e.RecomputeCostAt(n, part, horizon)
}

// mapPartition maps a child partition index onto a parent's partition
// space: identity for co-partitioned (narrow) parents, a representative
// modulo otherwise.
func mapPartition(childPart, childParts, parentParts int) int {
	if parentParts <= 0 {
		return 0
	}
	if childParts == parentParts {
		return childPart
	}
	return childPart % parentParts
}
