package core

import (
	"math/rand"
	"testing"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/enginetest"
	"blaze/internal/storage"
)

// TestBlazeFuzzEquivalence runs the full Blaze controller (and every
// ablation) over random non-iterative DAG programs under brutal memory
// pressure: the unified decision layer may drop, spill or recompute
// whatever it wants, but every action's results must match the reference
// evaluator exactly. Non-iterative DAGs with random releases are the
// stress case for the on-the-run reference induction.
func TestBlazeFuzzEquivalence(t *testing.T) {
	makers := []func() *Controller{NewBlaze, NewBlazeMemOnly, NewAutoCache, NewCostAware}
	for seed := int64(1); seed <= 10; seed++ {
		want := enginetest.RefChecksums(seed)
		for _, mk := range makers {
			ctl := mk()
			ctx := dataflow.NewContext()
			c, err := engine.NewCluster(engine.Config{
				Executors:         3,
				MemoryPerExecutor: 2048,
				Params:            costmodel.Default(),
				Controller:        ctl,
			}, ctx)
			if err != nil {
				t.Fatal(err)
			}
			got := enginetest.BuildRandomProgram(seed, ctx)
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %d checksums, want %d", seed, ctl.Name(), len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("seed %d %s: checksum %d = %d, want %d", seed, ctl.Name(), k, got[k], want[k])
				}
			}
			c.Finish()
		}
	}
}

// TestBlazeFuzzWithFailureInjection combines Blaze with random block loss
// after every job.
func TestBlazeFuzzWithFailureInjection(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		want := enginetest.RefChecksums(seed)
		ctx := dataflow.NewContext()
		c, err := engine.NewCluster(engine.Config{
			Executors:         3,
			MemoryPerExecutor: 64 * 1024,
			Params:            costmodel.Default(),
			Controller:        NewBlaze(),
		}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 13))
		inner := ctx.Runner()
		ctx.SetRunner(&killer{inner: inner, c: c, rng: rng})
		got := enginetest.BuildRandomProgram(seed, ctx)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("seed %d: checksum %d = %d, want %d", seed, k, got[k], want[k])
			}
		}
	}
}

type killer struct {
	inner dataflow.JobRunner
	c     *engine.Cluster
	rng   *rand.Rand
}

func (f *killer) RunJob(target *dataflow.Dataset, action string) [][]dataflow.Record {
	out := f.inner.RunJob(target, action)
	for _, ex := range f.c.Executors() {
		for _, m := range ex.Mem.Blocks() {
			if f.rng.Intn(4) == 0 {
				f.c.DropBlock(ex, m.ID)
			}
		}
		for _, id := range ex.Disk.Blocks() {
			if f.rng.Intn(4) == 0 {
				f.c.DropBlock(ex, id)
			}
		}
	}
	return out
}

func (f *killer) Unpersist(d *dataflow.Dataset) { f.inner.Unpersist(d) }
func (f *killer) Release(d *dataflow.Dataset)   { f.inner.Release(d) }

// TestAutoUnpersistReclaimsDeadData: once a dataset has no remaining
// references, its blocks disappear from both tiers at the next stage end.
func TestAutoUnpersistReclaimsDeadData(t *testing.T) {
	ctx := dataflow.NewContext()
	c, err := engine.NewCluster(engine.Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewBlaze(),
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	a := ctx.Source("a@0", 2, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: int64(part)}}
	})
	b := a.Map("b@0", func(r dataflow.Record) dataflow.Record { return r })
	b.Count()
	b.Count()
	b.Count()
	// After the last job, nothing references a or b beyond the learned
	// offsets; memory should eventually shed them. At minimum, dead
	// intermediates must not accumulate without bound: run more jobs and
	// verify the store does not grow monotonically.
	used := int64(0)
	for _, ex := range c.Executors() {
		used += ex.Mem.Used()
	}
	for i := 0; i < 3; i++ {
		b.Count()
	}
	after := int64(0)
	for _, ex := range c.Executors() {
		after += ex.Mem.Used()
	}
	if after > used+1024 {
		t.Fatalf("memory grew across repeated identical jobs: %d -> %d", used, after)
	}
	c.Finish()
}

// TestBlockStateReflectsStores verifies the controller's state callback.
func TestBlockStateReflectsStores(t *testing.T) {
	ctx := dataflow.NewContext()
	ctl := NewBlaze()
	c, err := engine.NewCluster(engine.Config{
		Executors:         1,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        ctl,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	ds := ctx.Source("s@0", 1, func(int) []dataflow.Record {
		return []dataflow.Record{{Key: 1, Value: int64(1)}}
	}).Map("m@0", func(r dataflow.Record) dataflow.Record { return r })
	ds.Count()
	ds.Count() // ensure cached via future refs learned
	id := storage.BlockID{Dataset: ds.ID(), Partition: 0}
	ex := c.Executors()[0]
	st := ctl.blockState(ds.ID(), 0)
	if st.InMemory != ex.Mem.Contains(id) || st.OnDisk != ex.Disk.Contains(id) {
		t.Fatalf("blockState %+v disagrees with stores (mem=%v disk=%v)",
			st, ex.Mem.Contains(id), ex.Disk.Contains(id))
	}
}
