package core

import (
	"testing"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/storage"
)

func TestParseName(t *testing.T) {
	cases := []struct {
		in   string
		role string
		iter int
	}{
		{"ranks@3", "ranks", 3},
		{"ranks", "ranks", 0},
		{"a@b@7", "a@b", 7},
		{"weird@", "weird@", 0},
		{"x@-2", "x", -2},
	}
	for _, c := range cases {
		role, iter := ParseName(c.in)
		if role != c.role || iter != c.iter {
			t.Errorf("ParseName(%q) = (%q, %d), want (%q, %d)", c.in, role, iter, c.role, c.iter)
		}
	}
}

// chain builds src -> mapped@1 -> reduced@1 and registers it on a fresh
// lineage.
func chain(t *testing.T) (*CostLineage, *dataflow.Context, []*dataflow.Dataset) {
	t.Helper()
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	src := ctx.Source("src", 2, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	})
	mapped := src.Map("mapped@1", func(r dataflow.Record) dataflow.Record { return r })
	reduced := mapped.ReduceByKey("reduced@1", 2, func(a, b any) any { return a })
	l := NewCostLineage()
	l.ObserveJob(0, []*dataflow.Dataset{src, mapped, reduced}, reduced)
	return l, ctx, []*dataflow.Dataset{src, mapped, reduced}
}

func TestRegisterBuildsEdges(t *testing.T) {
	l, _, ds := chain(t)
	n := l.Node(ds[2].ID())
	if n == nil {
		t.Fatal("reduced not registered")
	}
	if n.Key.Role != "reduced" || n.Key.Iter != 1 {
		t.Fatalf("key = %+v", n.Key)
	}
	if len(n.Parents) != 1 || !n.Parents[0].Shuffle {
		t.Fatalf("parents = %+v, want one shuffle edge", n.Parents)
	}
	mapped := l.NodeByKey(n.Parents[0].Parent)
	if mapped == nil || mapped.Key.Role != "mapped" {
		t.Fatalf("parent node = %+v", mapped)
	}
	if len(mapped.Parents) != 1 || mapped.Parents[0].Shuffle {
		t.Fatalf("mapped parents = %+v, want one narrow edge", mapped.Parents)
	}
}

func TestOrdinalDisambiguation(t *testing.T) {
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	a := ctx.Source("tmp@1", 1, func(int) []dataflow.Record { return nil })
	b := ctx.Source("tmp@1", 1, func(int) []dataflow.Record { return nil })
	l := NewCostLineage()
	l.ObserveJob(0, []*dataflow.Dataset{a, b}, b)
	na, nb := l.Node(a.ID()), l.Node(b.ID())
	if na == nb || na.Key == nb.Key {
		t.Fatalf("duplicate names must get distinct ordinals: %+v vs %+v", na.Key, nb.Key)
	}
	if na.Key.Ordinal != 0 || nb.Key.Ordinal != 1 {
		t.Fatalf("ordinals = %d, %d", na.Key.Ordinal, nb.Key.Ordinal)
	}
}

func TestRefOffsetsLearnedOnTheRun(t *testing.T) {
	l, _, ds := chain(t)
	reduced := ds[2]
	// Job 1 references reduced again (created in job 0).
	l.ObserveJob(1, []*dataflow.Dataset{reduced}, reduced)
	n := l.Node(reduced.ID())
	// After seeing offset 1 for role "reduced", a node created at job 0
	// is predicted to be referenced at job 1.
	if got := l.FutureJobRefs(n, 0); got != 1 {
		t.Fatalf("FutureJobRefs after job 0 = %d, want 1", got)
	}
	if got := l.FutureJobRefs(n, 1); got != 0 {
		t.Fatalf("FutureJobRefs after job 1 = %d, want 0", got)
	}
	if next, ok := l.NextRefJob(n, 0); !ok || next != 1 {
		t.Fatalf("NextRefJob = %d,%v want 1,true", next, ok)
	}
}

func TestObserveAndInduct(t *testing.T) {
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	l := NewCostLineage()
	// Sizes grow linearly with the iteration: 100, 200, 300 → predict
	// 400 at iteration 4.
	var last *dataflow.Dataset
	for it := 1; it <= 3; it++ {
		name := "ranks@" + itoa(it)
		ds := ctx.Source(name, 2, func(int) []dataflow.Record { return nil })
		l.ObserveJob(it-1, []*dataflow.Dataset{ds}, ds)
		l.ObservePartition(ds.ID(), 0, int64(100*it), time.Duration(10*it)*time.Millisecond)
		last = ds
	}
	_ = last
	// A future node at iteration 4 (structure only).
	future := &Node{Key: NodeKey{Role: "ranks", Iter: 4}, DatasetID: -1, Parts: 2}
	size, ok := l.PartitionSize(future, 0)
	if !ok {
		t.Fatal("induction failed")
	}
	if size < 350 || size > 450 {
		t.Fatalf("inducted size = %d, want ≈400", size)
	}
	cost, ok := l.PartitionCost(future, 0)
	if !ok || cost < 35*time.Millisecond || cost > 45*time.Millisecond {
		t.Fatalf("inducted cost = %v, want ≈40ms", cost)
	}
}

func TestObservedBeatsInduction(t *testing.T) {
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	l := NewCostLineage()
	ds := ctx.Source("x@1", 1, func(int) []dataflow.Record { return nil })
	l.ObserveJob(0, []*dataflow.Dataset{ds}, ds)
	l.ObservePartition(ds.ID(), 0, 777, time.Second)
	n := l.Node(ds.ID())
	size, ok := l.PartitionSize(n, 0)
	if !ok || size != 777 {
		t.Fatalf("size = %d,%v want 777,true", size, ok)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// --- Estimator tests ---

type fakeState map[storage.BlockID]BlockState

func (f fakeState) fn(datasetID, part int) BlockState {
	return f[storage.BlockID{Dataset: datasetID, Partition: part}]
}

func TestEstimatorEq3DiskCost(t *testing.T) {
	l, _, ds := chain(t)
	params := costmodel.Default()
	const size = 50 * 1024 * 1024
	l.ObservePartition(ds[1].ID(), 0, size, 100*time.Millisecond)
	st := fakeState{}
	e := NewEstimator(l, params, true, st.fn)
	n := l.Node(ds[1].ID())

	// Not on disk: write + read.
	if got, want := e.DiskCost(n, 0), params.DiskWrite(size)+params.DiskRead(size); got != want {
		t.Fatalf("disk cost off-disk = %v, want %v", got, want)
	}
	// On disk: read only.
	st[storage.BlockID{Dataset: ds[1].ID(), Partition: 0}] = BlockState{OnDisk: true}
	e.Reset()
	if got, want := e.DiskCost(n, 0), params.DiskRead(size); got != want {
		t.Fatalf("disk cost on-disk = %v, want %v", got, want)
	}
}

func TestEstimatorEq4Recursion(t *testing.T) {
	l, _, ds := chain(t)
	params := costmodel.Default()
	src, mapped, reduced := l.Node(ds[0].ID()), l.Node(ds[1].ID()), l.Node(ds[2].ID())
	l.ObservePartition(ds[0].ID(), 0, 1000, 10*time.Second)
	l.ObservePartition(ds[1].ID(), 0, 1000, 5*time.Second)
	l.ObservePartition(ds[2].ID(), 0, 1000, 2*time.Second)
	st := fakeState{}
	e := NewEstimator(l, params, true, st.fn)

	// Nothing cached: recompute(reduced) = own(2s) + own(mapped 5s) +
	// own(src 10s) chained.
	if got := e.RecomputeCost(reduced, 0); got != 17*time.Second {
		t.Fatalf("full chain recompute = %v, want 17s", got)
	}
	// mapped in memory → chain cut: 2s.
	st[storage.BlockID{Dataset: ds[1].ID(), Partition: 0}] = BlockState{InMemory: true}
	e.Reset()
	if got := e.RecomputeCost(reduced, 0); got != 2*time.Second {
		t.Fatalf("recompute with cached parent = %v, want 2s", got)
	}
	// mapped on disk instead: recovery of mapped = min(diskRead, 15s);
	// disk read of 1000 bytes is microseconds → ~2s + tiny.
	delete(st, storage.BlockID{Dataset: ds[1].ID(), Partition: 0})
	st[storage.BlockID{Dataset: ds[1].ID(), Partition: 0}] = BlockState{OnDisk: true}
	e.Reset()
	got := e.RecomputeCost(reduced, 0)
	if got < 2*time.Second || got > 2*time.Second+10*time.Millisecond {
		t.Fatalf("recompute with disk parent = %v, want ≈2s", got)
	}
	_ = src
	_ = mapped
}

func TestEstimatorEq2MinAndPreferDisk(t *testing.T) {
	l, _, ds := chain(t)
	params := costmodel.Default()
	n := l.Node(ds[1].ID())
	st := fakeState{}

	// Small partition, long compute → disk preferred.
	l.ObservePartition(ds[1].ID(), 0, 1024, 30*time.Second)
	l.ObservePartition(ds[0].ID(), 0, 1024, 30*time.Second)
	e := NewEstimator(l, params, true, st.fn)
	if !e.PreferDisk(n, 0) {
		t.Fatal("small+expensive partition should prefer disk")
	}
	if e.RecoveryCost(n, 0) != e.DiskCost(n, 0) {
		t.Fatal("recovery cost should be the (smaller) disk cost")
	}

	// Huge partition, trivial compute → recompute preferred.
	l.ObservePartition(ds[1].ID(), 1, 4*1024*1024*1024, time.Millisecond)
	l.ObservePartition(ds[0].ID(), 1, 1024, time.Millisecond)
	e.Reset()
	if e.PreferDisk(n, 1) {
		t.Fatal("huge+cheap partition should prefer recomputation")
	}

	// Disk disabled → never prefer disk, recovery = recompute.
	e2 := NewEstimator(l, params, false, st.fn)
	if e2.PreferDisk(n, 0) {
		t.Fatal("disk disabled must never prefer disk")
	}
	if e2.RecoveryCost(n, 0) != e2.RecomputeCost(n, 0) {
		t.Fatal("disk disabled recovery must equal recompute")
	}
}

func TestEstimatorHypothetical(t *testing.T) {
	l, _, ds := chain(t)
	params := costmodel.Default()
	l.ObservePartition(ds[0].ID(), 0, 1000, 10*time.Second)
	l.ObservePartition(ds[1].ID(), 0, 1000, 5*time.Second)
	l.ObservePartition(ds[2].ID(), 0, 1000, 2*time.Second)
	st := fakeState{}
	e := NewEstimator(l, params, true, st.fn)
	reduced := l.Node(ds[2].ID())

	if got := e.RecomputeCost(reduced, 0); got != 17*time.Second {
		t.Fatalf("base = %v", got)
	}
	e.SetHypothetical(map[storage.BlockID]bool{
		{Dataset: ds[1].ID(), Partition: 0}: true,
	})
	if got := e.RecomputeCost(reduced, 0); got != 2*time.Second {
		t.Fatalf("hypothetical parent in memory = %v, want 2s", got)
	}
}

func TestMapPartition(t *testing.T) {
	if mapPartition(3, 4, 4) != 3 {
		t.Fatal("co-partitioned should map identity")
	}
	if mapPartition(5, 8, 2) != 1 {
		t.Fatal("mismatched counts should map modulo")
	}
	if mapPartition(5, 8, 0) != 0 {
		t.Fatal("zero parent parts should map to 0")
	}
}

func TestControllerAccessors(t *testing.T) {
	b := NewBlaze()
	if b.Name() != "blaze" {
		t.Fatalf("name = %q", b.Name())
	}
	if b.Lineage() == nil {
		t.Fatal("lineage accessor broken")
	}
	if b.WithWindow(2); b.ilpWindow != 2 {
		t.Fatal("WithWindow ignored")
	}
	if b.WithWindow(-5); b.ilpWindow != 2 {
		t.Fatal("negative window should be rejected")
	}
	if NewBlazeMemOnly().Name() != "blaze-mem" || NewAutoCache().Name() != "autocache" || NewCostAware().Name() != "costaware" {
		t.Fatal("preset names wrong")
	}
}

func TestProfilingOverheadOnlyWhenProfiled(t *testing.T) {
	if NewBlaze().ProfilingOverhead() != 0 {
		t.Fatal("unprofiled controller should charge nothing")
	}
	sk := &Skeleton{RefOffsets: map[string][]int{}, Nodes: map[NodeKey]*Node{}}
	if NewBlaze().WithSkeleton(sk).ProfilingOverhead() != DefaultProfilingOverhead {
		t.Fatal("profiled controller should charge the overhead")
	}
}
