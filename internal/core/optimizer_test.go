package core

import (
	"testing"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/eventlog"
)

// newSolveFixture creates a bound controller and one executor for
// driving Controller.solve directly with synthetic candidates.
func newSolveFixture(t *testing.T, ctl *Controller, mem int64, log *eventlog.Log) (*engine.Cluster, *engine.Executor) {
	t.Helper()
	ctx := dataflow.NewContext()
	c, err := engine.NewCluster(engine.Config{
		Executors:         1,
		MemoryPerExecutor: mem,
		Params:            costmodel.Default(),
		Controller:        ctl,
		EventLog:          log,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return c, c.Executors()[0]
}

// syntheticCands builds n deterministic candidates whose sizes sum to
// the returned total (for capacity sizing).
func syntheticCands(n int) ([]candidate, int64) {
	cands := make([]candidate, n)
	var total int64
	for i := range cands {
		size := int64(1024 + (i%7)*512)
		cands[i] = candidate{
			size:   size,
			weight: 1,
			costD:  float64(1 + (i*37)%50),
			costR:  float64(1 + (i*61)%150),
		}
		total += size
	}
	return cands, total
}

// TestKnapsackFallbackRespectsDiskCapacity is the regression test for
// the oversized-instance path: when the active candidate count exceeds
// maxExactVars the solver degrades to the knapsack relaxation, which
// knows nothing about the disk row — the apply step must still keep
// every executor's on-disk footprint within the configured capacity.
func TestKnapsackFallbackRespectsDiskCapacity(t *testing.T) {
	defer func(v int) { maxExactVars = v }(maxExactVars)
	maxExactVars = 0 // force every disk-constrained solve onto the fallback

	const diskCap = 16 * 1024
	want := referenceResult(t, 4)
	ctl := NewBlaze().WithSkeleton(Profile(iterWorkload(4, nil), 0.05)).WithDiskCapacity(diskCap)
	var got float64
	m := runSystem(t, ctl, 8*1024, 4, false, &got)
	if got != want {
		t.Fatalf("fallback path broke correctness: %v != %v", got, want)
	}
	if m.ILPFallbacks == 0 {
		t.Fatal("expected knapsack fallbacks with maxExactVars=0")
	}
	for i := range m.Executors {
		if peak := m.Executors[i].DiskPeakBytes; peak > diskCap {
			t.Fatalf("executor %d disk peak %d exceeds capacity %d on the fallback path", i, peak, diskCap)
		}
	}
}

// TestSolveMemoExactReuse checks cross-job solution reuse on both solver
// paths: re-solving an identical fingerprint must be answered from the
// memo (no search nodes), with the identical assignment, and be recorded
// in metrics and the event log.
func TestSolveMemoExactReuse(t *testing.T) {
	cands, total := syntheticCands(12)

	t.Run("ilp", func(t *testing.T) {
		log := eventlog.New()
		ctl := NewBlaze().WithDiskCapacity(total * 8 / 10)
		c, ex := newSolveFixture(t, ctl, total*4/10, log)
		first := ctl.solve(ex, cands)
		m := c.Metrics()
		if m.ILPReused != 0 {
			t.Fatalf("first solve reused: %+v", m.ILPReused)
		}
		if m.ILPFallbacks != 0 {
			t.Fatalf("first solve fell back (%d) — expected an exact solve", m.ILPFallbacks)
		}
		nodesAfterFirst := m.ILPNodes
		second := ctl.solve(ex, cands)
		if m.ILPReused != 1 {
			t.Fatalf("second solve not reused: reused=%d", m.ILPReused)
		}
		if m.ILPNodes != nodesAfterFirst {
			t.Fatalf("memo hit expanded nodes: %d -> %d", nodesAfterFirst, m.ILPNodes)
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("reused assignment differs at %d", i)
			}
		}
		if m.ILPSolves != 2 {
			t.Fatalf("ILPSolves = %d, want 2", m.ILPSolves)
		}
		var events []eventlog.Event
		for _, e := range log.Events() {
			if e.Kind == eventlog.ILPSolve {
				events = append(events, e)
			}
		}
		if len(events) != 2 {
			t.Fatalf("ilp_solve events = %d, want 2", len(events))
		}
		if !events[0].Optimal || events[0].Reused || events[0].Vars == 0 {
			t.Fatalf("first event misclassified: %+v", events[0])
		}
		if !events[1].Reused || !events[1].Optimal || events[1].Nodes != 0 {
			t.Fatalf("second event misclassified: %+v", events[1])
		}
	})

	t.Run("knapsack", func(t *testing.T) {
		ctl := NewBlaze() // no disk capacity: fast path
		c, ex := newSolveFixture(t, ctl, total*4/10, nil)
		first := ctl.solve(ex, cands)
		second := ctl.solve(ex, cands)
		m := c.Metrics()
		if m.ILPReused != 1 {
			t.Fatalf("knapsack path not reused: reused=%d", m.ILPReused)
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("reused assignment differs at %d", i)
			}
		}
	})
}

// TestCrossJobIncumbentWarmStart checks the near-match path: a perturbed
// instance cannot reuse the previous solution outright, but seeding the
// branch and bound with it as incumbent must not expand more nodes than
// a cold solve of the same instance — the seed only adds pruning.
func TestCrossJobIncumbentWarmStart(t *testing.T) {
	cands, total := syntheticCands(24)
	perturbed := make([]candidate, len(cands))
	copy(perturbed, cands)
	perturbed[5].costR *= 1.25
	perturbed[11].costD *= 0.75

	coldCtl := NewBlaze().WithDiskCapacity(total * 8 / 10)
	coldC, coldEx := newSolveFixture(t, coldCtl, total*4/10, nil)
	coldChosen := coldCtl.solve(coldEx, perturbed)
	coldNodes := coldC.Metrics().ILPNodes

	warmCtl := NewBlaze().WithDiskCapacity(total * 8 / 10)
	warmC, warmEx := newSolveFixture(t, warmCtl, total*4/10, nil)
	warmCtl.solve(warmEx, cands) // seeds the memo
	before := warmC.Metrics().ILPNodes
	warmChosen := warmCtl.solve(warmEx, perturbed)
	warmNodes := warmC.Metrics().ILPNodes - before

	if warmC.Metrics().ILPReused != 0 {
		t.Fatal("perturbed instance must not be an exact memo hit")
	}
	if warmNodes > coldNodes {
		t.Fatalf("warm-started solve expanded more nodes than cold: %d > %d", warmNodes, coldNodes)
	}
	for i := range coldChosen {
		if coldChosen[i] != warmChosen[i] {
			t.Fatalf("warm and cold solves disagree at %d", i)
		}
	}
}

// TestExactSolveAt128Candidates checks the raised maxExactVars
// acceptance bar: a disk-constrained instance with 128 active candidates
// (384 decision variables) must be solved exactly — proven optimal, no
// fallback — within the default node budget.
func TestExactSolveAt128Candidates(t *testing.T) {
	cands, total := syntheticCands(128)
	ctl := NewBlaze().WithDiskCapacity(total * 8 / 10)
	c, ex := newSolveFixture(t, ctl, total*4/10, nil)
	ctl.solve(ex, cands)
	m := c.Metrics()
	if m.ILPFallbacks != 0 {
		t.Fatalf("n=128 solve fell back (%d fallbacks)", m.ILPFallbacks)
	}
	if m.ILPNodes >= ilpNodeBudget {
		t.Fatalf("n=128 solve spent %d nodes, budget %d", m.ILPNodes, ilpNodeBudget)
	}
	if m.ILPSolves != 1 {
		t.Fatalf("ILPSolves = %d, want 1", m.ILPSolves)
	}
}
