package core

import (
	"fmt"
	"testing"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/metrics"
	"blaze/internal/storage"
)

// iterWorkload is a PageRank-shaped Workload: a static "edges" dataset
// referenced every iteration (narrowly, like GraphX's edge partitions)
// plus per-iteration ranks flowing through a shuffle. result accumulates
// the final rank sum for correctness checks.
func iterWorkload(iters int, result *float64) Workload {
	return func(ctx *dataflow.Context, scale float64) {
		rows := int(120 * scale)
		if rows < 4 {
			rows = 4
		}
		const parts = 4
		n := int64(parts * rows)
		edges := ctx.Source("edges@0", parts, func(part int) []dataflow.Record {
			out := make([]dataflow.Record, rows)
			for i := range out {
				key := int64(part*rows + i)
				// A moderately wide payload so edges dominate memory.
				out[i] = dataflow.Record{Key: key, Value: []float64{1, 2, 3, 4, 5, 6}}
			}
			return out
		})
		ranks := edges.Map("ranks@0", func(r dataflow.Record) dataflow.Record {
			return dataflow.Record{Key: r.Key, Value: float64(1)}
		})
		var released []*dataflow.Dataset
		for it := 1; it <= iters; it++ {
			contribs := dataflow.Zip(fmt.Sprintf("contribs@%d", it), dataflow.OpHeavy, ranks, edges,
				func(_ int, rs, es []dataflow.Record) []dataflow.Record {
					out := make([]dataflow.Record, 0, 2*len(rs))
					for _, r := range rs {
						v := r.Value.(float64) / 2
						out = append(out,
							dataflow.Record{Key: r.Key, Value: v},
							dataflow.Record{Key: (r.Key + 3) % n, Value: v})
					}
					return out
				})
			sums := contribs.ReduceByKey(fmt.Sprintf("sums@%d", it), parts, func(a, b any) any {
				return a.(float64) + b.(float64)
			})
			newRanks := sums.Map(fmt.Sprintf("ranks@%d", it), func(r dataflow.Record) dataflow.Record {
				return dataflow.Record{Key: r.Key, Value: 0.15 + 0.85*r.Value.(float64)}
			})
			newRanks.Count()
			released = append(released, ranks)
			if len(released) > 2 {
				released[len(released)-3].Release()
			}
			ranks = newRanks
		}
		if result != nil {
			total := 0.0
			for _, part := range ranks.Collect() {
				for _, r := range part {
					total += r.Value.(float64)
				}
			}
			*result = total
		}
	}
}

// runSystem executes the workload under a controller and returns metrics.
func runSystem(t *testing.T, ctl engine.Controller, mem int64, iters int, annotate bool, result *float64) *metrics.App {
	t.Helper()
	ctx := dataflow.NewContext()
	c, err := engine.NewCluster(engine.Config{
		Executors:         2,
		MemoryPerExecutor: mem,
		Params:            costmodel.Default(),
		Controller:        ctl,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if annotate {
		annotatedRun(ctx, iters)
	} else {
		iterWorkload(iters, result)(ctx, 1.0)
	}
	return c.Finish()
}

func referenceResult(t *testing.T, iters int) float64 {
	t.Helper()
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	var res float64
	iterWorkload(iters, &res)(ctx, 1.0)
	return res
}

func TestBlazeCorrectUnderPressure(t *testing.T) {
	want := referenceResult(t, 5)
	for _, mk := range []func() *Controller{NewBlaze, NewBlazeMemOnly, NewAutoCache, NewCostAware} {
		ctl := mk()
		var got float64
		runSystem(t, ctl, 8*1024, 5, false, &got)
		if got != want {
			t.Errorf("%s: result %v != reference %v", ctl.Name(), got, want)
		}
	}
}

func TestBlazeWithProfilingCorrect(t *testing.T) {
	want := referenceResult(t, 5)
	sk := Profile(iterWorkload(5, nil), 0.05)
	ctl := NewBlaze().WithSkeleton(sk)
	var got float64
	m := runSystem(t, ctl, 8*1024, 5, false, &got)
	if got != want {
		t.Fatalf("result %v != reference %v", got, want)
	}
	if m.ILPSolves == 0 {
		t.Fatal("ILP never ran")
	}
}

func TestBlazeAutoCachesWithoutAnnotations(t *testing.T) {
	ctl := NewBlaze().WithSkeleton(Profile(iterWorkload(5, nil), 0.05))
	m := runSystem(t, ctl, 256*1024, 5, false, nil)
	if m.CacheHits == 0 {
		t.Fatal("auto-caching produced no cache hits")
	}
	if m.Unpersists == 0 {
		t.Fatal("auto-unpersisting never triggered")
	}
}

func TestBlazeMemOnlyNeverWritesDisk(t *testing.T) {
	ctl := NewBlazeMemOnly().WithSkeleton(Profile(iterWorkload(5, nil), 0.05))
	m := runSystem(t, ctl, 8*1024, 5, false, nil)
	if m.DiskBytesWritten != 0 {
		t.Fatalf("Blaze (MEM) wrote %d bytes to disk", m.DiskBytesWritten)
	}
}

func TestProfilingKnowsFutureBeforeFirstObservation(t *testing.T) {
	sk := Profile(iterWorkload(4, nil), 0.05)
	// The edges role must be known to be referenced across many jobs.
	offs := sk.RefOffsets["edges"]
	if len(offs) < 3 {
		t.Fatalf("edges offsets = %v, want references across several jobs", offs)
	}
	// ranks roles are referenced in their creation job and the next one.
	rOffs := sk.RefOffsets["ranks"]
	has1 := false
	for _, o := range rOffs {
		if o == 1 {
			has1 = true
		}
	}
	if !has1 {
		t.Fatalf("ranks offsets = %v, want offset 1 (next-iteration reuse)", rOffs)
	}
}

func TestSkeletonKeysMatchRealRun(t *testing.T) {
	w := iterWorkload(3, nil)
	sk := Profile(w, 0.05)
	// Replay the real run's registration and check every dataset maps to
	// a profiled node.
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	w(ctx, 1.0)
	l := NewCostLineage()
	l.ApplySkeleton(sk)
	seq := make(map[string]map[int]int)
	for _, ds := range ctx.Datasets() {
		key := keyFor(seq, ds)
		if sk.Nodes[key] == nil {
			t.Fatalf("dataset %q (key %+v) missing from skeleton", ds.Name(), key)
		}
	}
}

func TestBlazeBeatsSparkMemOnly(t *testing.T) {
	const mem = 8 * 1024
	const iters = 6
	// Spark MEM_ONLY with annotations on every iteration dataset.
	sparkACT := runAnnotatedSpark(t, engine.NewSparkMemOnly(), mem, iters)
	ctl := NewBlaze().WithSkeleton(Profile(iterWorkload(iters, nil), 0.05))
	m := runSystem(t, ctl, mem, iters, false, nil)
	if m.ACT >= sparkACT {
		t.Fatalf("Blaze ACT %v should beat MEM_ONLY Spark %v", m.ACT, sparkACT)
	}
}

func TestBlazeWritesLessDiskThanMemDisk(t *testing.T) {
	const mem = 8 * 1024
	const iters = 6
	ctxS := dataflow.NewContext()
	cS, err := engine.NewCluster(engine.Config{
		Executors: 2, MemoryPerExecutor: mem, Params: costmodel.Default(),
		Controller: engine.NewSparkMemDisk(),
	}, ctxS)
	if err != nil {
		t.Fatal(err)
	}
	annotatedRun(ctxS, iters)
	mSpark := cS.Finish()

	ctl := NewBlaze().WithSkeleton(Profile(iterWorkload(iters, nil), 0.05))
	mBlaze := runSystem(t, ctl, mem, iters, false, nil)
	if mBlaze.DiskBytesWritten > mSpark.DiskBytesWritten {
		t.Fatalf("Blaze disk bytes %d > MEM+DISK Spark %d", mBlaze.DiskBytesWritten, mSpark.DiskBytesWritten)
	}
}

// annotatedRun executes the iterative workload with GraphX-style cache
// annotations applied to ranks datasets for annotation-based systems.
func annotatedRun(ctx *dataflow.Context, iters int) {
	rows := 120
	const parts = 4
	n := int64(parts * rows)
	edges := ctx.Source("edges@0", parts, func(part int) []dataflow.Record {
		out := make([]dataflow.Record, rows)
		for i := range out {
			key := int64(part*rows + i)
			out[i] = dataflow.Record{Key: key, Value: []float64{1, 2, 3, 4, 5, 6}}
		}
		return out
	})
	edges.Cache()
	ranks := edges.Map("ranks@0", func(r dataflow.Record) dataflow.Record {
		return dataflow.Record{Key: r.Key, Value: float64(1)}
	})
	ranks.Cache()
	var released []*dataflow.Dataset
	for it := 1; it <= iters; it++ {
		contribs := dataflow.Zip(fmt.Sprintf("contribs@%d", it), dataflow.OpHeavy, ranks, edges,
			func(_ int, rs, es []dataflow.Record) []dataflow.Record {
				out := make([]dataflow.Record, 0, 2*len(rs))
				for _, r := range rs {
					v := r.Value.(float64) / 2
					out = append(out,
						dataflow.Record{Key: r.Key, Value: v},
						dataflow.Record{Key: (r.Key + 3) % n, Value: v})
				}
				return out
			})
		sums := contribs.ReduceByKey(fmt.Sprintf("sums@%d", it), parts, func(a, b any) any {
			return a.(float64) + b.(float64)
		})
		newRanks := sums.Map(fmt.Sprintf("ranks@%d", it), func(r dataflow.Record) dataflow.Record {
			return dataflow.Record{Key: r.Key, Value: 0.15 + 0.85*r.Value.(float64)}
		})
		newRanks.Cache()
		newRanks.Count()
		released = append(released, ranks)
		if len(released) > 2 {
			released[len(released)-3].Release()
		}
		ranks = newRanks
	}
	ranks.Collect()
}

func runAnnotatedSpark(t *testing.T, ctl engine.Controller, mem int64, iters int) time.Duration {
	t.Helper()
	ctx := dataflow.NewContext()
	c, err := engine.NewCluster(engine.Config{
		Executors: 2, MemoryPerExecutor: mem, Params: costmodel.Default(),
		Controller: ctl,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	annotatedRun(ctx, iters)
	return c.Finish().ACT
}

func TestTargetStatesApplied(t *testing.T) {
	sk := Profile(iterWorkload(4, nil), 0.05)
	ctl := NewBlaze().WithSkeleton(sk)
	m := runSystem(t, ctl, 8*1024, 4, false, nil)
	if m.ILPSolves == 0 {
		t.Fatal("expected ILP solves")
	}
	// Nodes are honest search effort now: the knapsack fast path reports
	// zero when every candidate fits in memory or the solution memo
	// answers, so assert outcome quality instead of raw node counts.
	if m.ILPFallbacks != 0 {
		t.Fatalf("unexpected optimizer fallbacks: %d", m.ILPFallbacks)
	}
}

func TestBlazeWithDiskCapacityConstraint(t *testing.T) {
	want := referenceResult(t, 4)
	ctl := NewBlaze().WithSkeleton(Profile(iterWorkload(4, nil), 0.05)).WithDiskCapacity(64 * 1024)
	var got float64
	m := runSystem(t, ctl, 8*1024, 4, false, &got)
	if got != want {
		t.Fatalf("disk-constrained ILP broke correctness: %v != %v", got, want)
	}
	if m.ILPSolves == 0 {
		t.Fatal("expected branch-and-bound ILP solves")
	}
}

var _ = storage.BlockID{}
