package core

import (
	"sort"
	"time"

	"blaze/internal/dataflow"
)

// Workload is a driver program parameterized by input scale. The
// dependency extraction phase runs it at a tiny scale (the paper uses
// < 1 MB of the original input, §5.1); the real run uses scale 1.
type Workload func(ctx *dataflow.Context, scale float64)

// DefaultProfilingOverhead is the virtual time charged for the
// dependency extraction phase. The paper bounds profiling by a 10 s
// timeout and reports < 4% of ACT; with this harness's virtual-time
// scale (ACTs of hundreds of milliseconds standing in for the paper's
// thousands of seconds) a fixed 10 ms reproduces that accounting.
const DefaultProfilingOverhead = 10 * time.Millisecond

// Skeleton is the output of the dependency extraction phase: the
// structure of every job the workload submits, with role-level reference
// offsets and lineage edges, but no metrics (those are observed and
// inducted at runtime).
type Skeleton struct {
	// Jobs is the number of jobs the profiled run submitted.
	Jobs int
	// RefOffsets maps each role to the sorted job offsets (relative to
	// an instance's creation job) at which the role is referenced.
	RefOffsets map[string][]int
	// Nodes holds the structural lineage: parents per node key.
	Nodes map[NodeKey]*Node
}

// Profile runs the workload on a tiny sample through the reference
// evaluator, capturing the submitted job DAGs into a Skeleton — Blaze's
// dependency extraction phase (Fig. 7, steps 1-2). Because the sample is
// minuscule, no caching behaviour interferes and the full multi-job
// lineage (including all iterations) is captured.
func Profile(w Workload, sampleScale float64) *Skeleton {
	ctx := dataflow.NewContext()
	runner := dataflow.NewLocalRunner(ctx)
	w(ctx, sampleScale)

	sk := &Skeleton{
		RefOffsets: make(map[string][]int),
		Nodes:      make(map[NodeKey]*Node),
	}
	seq := make(map[string]map[int]int)
	byID := make(map[int]*Node)
	offsetSeen := make(map[string]map[int]bool)
	addOffset := func(role string, off int) {
		m := offsetSeen[role]
		if m == nil {
			m = make(map[int]bool)
			offsetSeen[role] = m
		}
		if !m[off] {
			m[off] = true
			sk.RefOffsets[role] = append(sk.RefOffsets[role], off)
		}
	}

	for jobIdx, target := range runner.JobTargets {
		// Iterate the job's datasets in dataset-id (creation) order so
		// ordinal assignment matches the real run's registration order.
		members := append(target.Ancestors(), target)
		sort.Slice(members, func(i, j int) bool { return members[i].ID() < members[j].ID() })
		for _, ds := range members {
			if _, seen := byID[ds.ID()]; seen {
				continue
			}
			key := keyFor(seq, ds)
			n := &Node{Key: key, DatasetID: -1, CreationJob: jobIdx, Parts: ds.Partitions()}
			for _, dep := range ds.Deps() {
				if pn, ok := byID[dep.Parent.ID()]; ok {
					n.Parents = append(n.Parents, Edge{Parent: pn.Key, Shuffle: dep.Shuffle, ShuffleID: dep.ShuffleID})
				}
			}
			byID[ds.ID()] = n
			sk.Nodes[key] = n
			// A dataset computed in this job references its direct
			// parents now (same reference rule as ObserveJob).
			addOffset(key.Role, 0)
			for _, e := range n.Parents {
				if pn := sk.Nodes[e.Parent]; pn != nil {
					addOffset(pn.Key.Role, jobIdx-pn.CreationJob)
				}
			}
		}
		if tn := byID[target.ID()]; tn != nil {
			addOffset(tn.Key.Role, jobIdx-tn.CreationJob)
		}
	}
	sk.Jobs = len(runner.JobTargets)
	for role := range sk.RefOffsets {
		sort.Ints(sk.RefOffsets[role])
	}
	return sk
}

// ApplySkeleton seeds a lineage with the profiled structure: reference
// offsets for every role and structural nodes for datasets that have not
// been created yet, enabling the ILP to reason about upcoming partitions.
func (l *CostLineage) ApplySkeleton(sk *Skeleton) {
	for role, offs := range sk.RefOffsets {
		for _, off := range offs {
			l.addRefOffset(role, off)
		}
	}
	for key, n := range sk.Nodes {
		if _, ok := l.nodes[key]; ok {
			continue
		}
		l.nodes[key] = &Node{
			Key:         key,
			DatasetID:   -1,
			Parents:     append([]Edge(nil), n.Parents...),
			CreationJob: n.CreationJob,
			Parts:       n.Parts,
		}
	}
}
