package core

import (
	"testing"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/storage"
)

// decisionFixture builds a Blaze-controlled cluster with two cached
// single-partition datasets whose metrics the test then overrides to
// steer the cost model.
type decisionFixture struct {
	ctl *Controller
	c   *engine.Cluster
	ctx *dataflow.Context
	a   *dataflow.Dataset // "big but cheap to recompute"
	b   *dataflow.Dataset // "small but expensive to recompute"
}

func newDecisionFixture(t *testing.T) *decisionFixture {
	t.Helper()
	ctx := dataflow.NewContext()
	ctl := NewBlaze()
	c, err := engine.NewCluster(engine.Config{
		Executors:         1,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        ctl,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *dataflow.Dataset {
		return ctx.Source(name+"-src@0", 1, func(int) []dataflow.Record {
			return []dataflow.Record{{Key: 1, Value: int64(1)}}
		}).Map(name+"@0", func(r dataflow.Record) dataflow.Record { return r })
	}
	a, b := mk("bigcheap"), mk("smallcostly")
	// Pre-seed far-future reference offsets (as a profiled skeleton
	// would) so auto-unpersist keeps both datasets alive for the test.
	for _, role := range []string{"bigcheap", "smallcostly", "bigcheap-src", "smallcostly-src"} {
		ctl.lin.addRefOffset(role, 10)
	}
	a.Count()
	b.Count()
	f := &decisionFixture{ctl: ctl, c: c, ctx: ctx, a: a, b: b}
	ex := c.Executors()[0]
	for _, ds := range []*dataflow.Dataset{a, b} {
		if !ex.Mem.Contains(storage.BlockID{Dataset: ds.ID(), Partition: 0}) {
			t.Fatalf("setup: %s not cached", ds.Name())
		}
	}
	return f
}

func TestVictimDispositionFollowsCosts(t *testing.T) {
	f := newDecisionFixture(t)
	lin := f.ctl.Lineage()
	// a: 10 MB partition that takes 1ms to recompute → recompute wins.
	lin.ObservePartition(f.a.ID(), 0, 10<<20, time.Millisecond)
	// b: 1 KB partition that takes 10s to recompute → disk wins.
	lin.ObservePartition(f.b.ID(), 0, 1024, 10*time.Second)
	// Also make their sources expensive/cheap consistently.
	for _, ds := range f.ctx.Datasets() {
		switch ds.Name() {
		case "bigcheap-src@0":
			lin.ObservePartition(ds.ID(), 0, 1024, time.Millisecond)
		case "smallcostly-src@0":
			lin.ObservePartition(ds.ID(), 0, 1024, 10*time.Second)
		}
	}

	ex := f.c.Executors()[0]
	victims := f.ctl.SelectVictims(ex, 1<<30) // evict everything
	if len(victims) < 2 {
		t.Fatalf("expected 2 victims, got %d", len(victims))
	}
	byDS := map[int]engine.Victim{}
	for _, v := range victims {
		byDS[v.ID.Dataset] = v
	}
	if v, ok := byDS[f.a.ID()]; !ok || v.ToDisk {
		t.Fatalf("big-cheap partition should be dropped for recomputation, got %+v", v)
	}
	if v, ok := byDS[f.b.ID()]; !ok || !v.ToDisk {
		t.Fatalf("small-expensive partition should be spilled to disk, got %+v", v)
	}
}

func TestVictimOrderEvictsCheapestFirst(t *testing.T) {
	f := newDecisionFixture(t)
	lin := f.ctl.Lineage()
	// a is nearly free to recover; b is precious.
	lin.ObservePartition(f.a.ID(), 0, 2048, time.Microsecond)
	lin.ObservePartition(f.b.ID(), 0, 2048, 10*time.Second)

	ex := f.c.Executors()[0]
	victims := f.ctl.SelectVictims(ex, 1024) // only one victim needed
	if len(victims) == 0 {
		t.Fatal("no victims selected")
	}
	// The precious partition must never be the preferred victim; the
	// cheap one (or its near-free source) goes first.
	if victims[0].ID.Dataset == f.b.ID() {
		t.Fatalf("expensive partition chosen as first victim: %+v", victims[0])
	}
	// And in a full ordering, b comes last.
	all := f.ctl.SelectVictims(ex, 1<<30)
	if last := all[len(all)-1]; last.ID.Dataset != f.b.ID() {
		t.Fatalf("expensive partition should be the last victim, got dataset %d", last.ID.Dataset)
	}
}

func TestMemOnlyBlazeNeverSpills(t *testing.T) {
	ctx := dataflow.NewContext()
	ctl := NewBlazeMemOnly()
	c, err := engine.NewCluster(engine.Config{
		Executors:         1,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        ctl,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	ds := ctx.Source("m-src@0", 1, func(int) []dataflow.Record {
		return []dataflow.Record{{Key: 1, Value: int64(1)}}
	}).Map("m@0", func(r dataflow.Record) dataflow.Record { return r })
	ctl.lin.addRefOffset("m", 10)
	ds.Count()
	// Even for an arbitrarily expensive partition, disk is not an option.
	ctl.Lineage().ObservePartition(ds.ID(), 0, 1024, time.Hour)
	for _, v := range ctl.SelectVictims(c.Executors()[0], 1<<30) {
		if v.ToDisk {
			t.Fatalf("memory-only Blaze must never spill, got %+v", v)
		}
	}
}

func TestAblationsAlwaysSpill(t *testing.T) {
	for _, mk := range []func() *Controller{NewAutoCache, NewCostAware} {
		ctx := dataflow.NewContext()
		ctl := mk()
		c, err := engine.NewCluster(engine.Config{
			Executors:         1,
			MemoryPerExecutor: 1 << 20,
			Params:            costmodel.Default(),
			Controller:        ctl,
		}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		ctl.lin.addRefOffset("a", 10)
		ds := ctx.Source("a-src@0", 1, func(int) []dataflow.Record {
			return []dataflow.Record{{Key: 1, Value: int64(1)}}
		}).Map("a@0", func(r dataflow.Record) dataflow.Record { return r })
		ds.Count()
		victims := ctl.SelectVictims(c.Executors()[0], 1<<30)
		if len(victims) == 0 {
			t.Fatalf("%s: no victims", ctl.Name())
		}
		for _, v := range victims {
			if !v.ToDisk {
				t.Fatalf("%s always spills to disk (the §7.3 ablation semantics), got %+v", ctl.Name(), v)
			}
		}
	}
}

func TestPlaceComputedSkipsZeroRefData(t *testing.T) {
	ctx := dataflow.NewContext()
	ctl := NewBlaze()
	c, err := engine.NewCluster(engine.Config{
		Executors:         1,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        ctl,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// A one-shot dataset: computed once, never referenced again.
	ds := ctx.Source("once-src@0", 1, func(int) []dataflow.Record {
		return []dataflow.Record{{Key: 1, Value: int64(1)}}
	}).Map("once@0", func(r dataflow.Record) dataflow.Record { return r })
	ds.Count()
	ex := c.Executors()[0]
	// Nothing should be cached after the single job + auto-unpersist.
	if used := ex.Mem.Used(); used != 0 {
		t.Fatalf("one-shot data occupies %d bytes after its job", used)
	}
}
