package core

// This file implements the controller half of window-boundary
// checkpointing: SnapshotState serializes everything the unified
// decision layer accumulates over a run (the CostLineage with its
// regression series, reference offsets and ordinal counters; the
// windowed-lineage retirement set; the last solved memory assignment
// per executor; the optimizer's target states and solution memo) into
// a self-contained gob payload, and RestoreState rehydrates a freshly
// Bind-ed controller from one. The estimators are deliberately not
// serialized — they are stateless between decision rounds and hold a
// pointer to the lineage, which is why RestoreState mutates the bound
// lineage in place instead of swapping the pointer.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"blaze/internal/engine"
	"blaze/internal/regression"
	"blaze/internal/storage"
)

// nodeWire is the gob form of a lineage Node (the metric slices are
// unexported on Node itself).
type nodeWire struct {
	Key         NodeKey
	Parents     []Edge
	DatasetID   int
	Parts       int
	CreationJob int
	TouchedJob  int
	Sizes       []int64
	Costs       []time.Duration
	Observed    []bool
}

// roleSeriesWire carries one role's regression series maps.
type roleSeriesWire struct {
	Role string
	Size map[int]*regression.Series
	Cost map[int]*regression.Series
}

// memoEntryWire is the gob form of one solution-memo entry.
type memoEntryWire struct {
	Key    []float64
	Chosen []bool
	Exact  bool
}

// controllerWire is the complete serialized controller state.
type controllerWire struct {
	Name        string
	Profiled    bool
	CurJob      int
	CurWindow   int
	WinFirstJob int

	// Lineage.
	JobsSeen       int
	Extrapolate    bool
	Nodes          []nodeWire
	RoleRefOffsets map[string][]int
	RoleSeries     []roleSeriesWire
	OrdinalSeq     map[string]map[int]int

	// Windowed-lineage and optimizer state.
	Retired     []NodeKey
	LastChosen  []map[storage.BlockID]bool
	TargetState map[storage.BlockID]engine.Placement
	Memo        [][]memoEntryWire
}

// SnapshotState implements engine.StateSnapshotter: it serializes the
// controller's durable state for a window-boundary checkpoint. Intended
// to run in driver context at a window boundary (after AdvanceWindow),
// where stageRefs is empty and curStageIdx is zero — those two are the
// only fields not captured, and RestoreState resets them to exactly
// that boundary state.
func (b *Controller) SnapshotState() ([]byte, error) {
	w := controllerWire{
		Name:           b.name,
		Profiled:       b.profiled,
		CurJob:         b.curJob,
		CurWindow:      b.curWindow,
		WinFirstJob:    b.winFirstJob,
		JobsSeen:       b.lin.jobsSeen,
		Extrapolate:    b.lin.Extrapolate,
		RoleRefOffsets: b.lin.roleRefOffsets,
		OrdinalSeq:     b.lin.ordinalSeq,
		LastChosen:     b.lastChosen,
		TargetState:    b.targetState,
	}
	for _, n := range b.lin.Nodes() {
		w.Nodes = append(w.Nodes, nodeWire{
			Key: n.Key, Parents: n.Parents, DatasetID: n.DatasetID,
			Parts: n.Parts, CreationJob: n.CreationJob, TouchedJob: n.TouchedJob,
			Sizes: n.sizes, Costs: n.costs, Observed: n.observed,
		})
	}
	roles := make([]string, 0, len(b.lin.roleMetrics))
	for role := range b.lin.roleMetrics {
		roles = append(roles, role)
	}
	sort.Strings(roles)
	for _, role := range roles {
		rm := b.lin.roleMetrics[role]
		w.RoleSeries = append(w.RoleSeries, roleSeriesWire{Role: role, Size: rm.size, Cost: rm.cost})
	}
	for key := range b.retired {
		w.Retired = append(w.Retired, key)
	}
	sort.Slice(w.Retired, func(i, j int) bool { return keyLess(w.Retired[i], w.Retired[j]) })
	for _, m := range b.ilpMemo {
		var entries []memoEntryWire
		if m != nil {
			for _, e := range m.entries {
				entries = append(entries, memoEntryWire{Key: e.key, Chosen: e.chosen, Exact: e.exact})
			}
		}
		w.Memo = append(w.Memo, entries)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("core: snapshot controller: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements engine.StateSnapshotter: it rehydrates the
// controller from a SnapshotState payload. Must be called after Bind
// (which sizes the per-executor slices) on a cluster with the same
// executor count as the snapshotting run.
func (b *Controller) RestoreState(data []byte) error {
	var w controllerWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("core: restore controller: %w", err)
	}
	if b.c == nil {
		return fmt.Errorf("core: restore controller: not bound to a cluster")
	}
	if n := len(b.c.Executors()); len(w.LastChosen) != n || len(w.Memo) != n {
		return fmt.Errorf("core: restore controller: snapshot has %d executors, cluster has %d", len(w.LastChosen), n)
	}

	// Rebuild the lineage in place: the estimators created at Bind hold
	// a pointer to it.
	lin := b.lin
	lin.nodes = make(map[NodeKey]*Node, len(w.Nodes))
	lin.byID = make(map[int]*Node, len(w.Nodes))
	for _, nw := range w.Nodes {
		n := &Node{
			Key: nw.Key, Parents: nw.Parents, DatasetID: nw.DatasetID,
			Parts: nw.Parts, CreationJob: nw.CreationJob, TouchedJob: nw.TouchedJob,
			sizes: nw.Sizes, costs: nw.Costs, observed: nw.Observed,
		}
		lin.nodes[n.Key] = n
		if n.DatasetID >= 0 {
			lin.byID[n.DatasetID] = n
		}
	}
	lin.roleRefOffsets = w.RoleRefOffsets
	if lin.roleRefOffsets == nil {
		lin.roleRefOffsets = make(map[string][]int)
	}
	lin.roleMetrics = make(map[string]*roleMetrics, len(w.RoleSeries))
	for _, rs := range w.RoleSeries {
		lin.roleMetrics[rs.Role] = &roleMetrics{size: rs.Size, cost: rs.Cost}
	}
	lin.ordinalSeq = w.OrdinalSeq
	if lin.ordinalSeq == nil {
		lin.ordinalSeq = make(map[string]map[int]int)
	}
	lin.Extrapolate = w.Extrapolate
	lin.jobsSeen = w.JobsSeen

	b.profiled = w.Profiled
	b.curJob = w.CurJob
	b.curWindow = w.CurWindow
	b.winFirstJob = w.WinFirstJob
	b.curStageIdx = 0
	b.stageRefs = make(map[int][]int)
	b.retired = make(map[NodeKey]bool, len(w.Retired))
	for _, key := range w.Retired {
		b.retired[key] = true
	}
	b.lastChosen = w.LastChosen
	for i := range b.lastChosen {
		if b.lastChosen[i] == nil {
			b.lastChosen[i] = make(map[storage.BlockID]bool)
		}
	}
	b.targetState = w.TargetState
	if b.targetState == nil {
		b.targetState = make(map[storage.BlockID]engine.Placement)
	}
	for i, entries := range w.Memo {
		m := &solveMemo{}
		for _, e := range entries {
			m.entries = append(m.entries, memoEntry{key: e.Key, chosen: e.Chosen, exact: e.Exact})
		}
		b.ilpMemo[i] = m
	}
	return nil
}

// StateSummary is the human-readable digest of a controller snapshot
// recorded in the checkpoint manifest: the live role@iteration ids, the
// per-executor memory assignments of the most recent solve, and the
// number of regression observations backing the cost model.
type StateSummary struct {
	Roles      []string `json:"roles,omitempty"`
	LastChosen []string `json:"last_chosen,omitempty"`
	Samples    int      `json:"samples"`
}

// Summary builds the manifest digest for the current state.
func (b *Controller) Summary() StateSummary {
	var s StateSummary
	for _, n := range b.lin.Nodes() {
		if b.retired[n.Key] {
			continue
		}
		id := fmt.Sprintf("%s@%d", n.Key.Role, n.Key.Iter)
		if n.Key.Ordinal > 0 {
			id = fmt.Sprintf("%s.%d", id, n.Key.Ordinal)
		}
		s.Roles = append(s.Roles, id)
	}
	for i, last := range b.lastChosen {
		ids := make([]storage.BlockID, 0, len(last))
		for id, chosen := range last {
			if chosen {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(x, y int) bool {
			if ids[x].Dataset != ids[y].Dataset {
				return ids[x].Dataset < ids[y].Dataset
			}
			return ids[x].Partition < ids[y].Partition
		})
		for _, id := range ids {
			s.LastChosen = append(s.LastChosen, fmt.Sprintf("e%d:%d/%d", i, id.Dataset, id.Partition))
		}
	}
	b.lin.metricsMu.RLock()
	for _, rm := range b.lin.roleMetrics {
		for _, series := range rm.size {
			s.Samples += series.Len()
		}
	}
	b.lin.metricsMu.RUnlock()
	return s
}
