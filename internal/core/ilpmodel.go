package core

import (
	"sort"
	"time"

	"blaze/internal/engine"
	"blaze/internal/ilp"
	"blaze/internal/storage"
)

// candidate is one partition whose state the ILP decides.
type candidate struct {
	id     storage.BlockID
	node   *Node
	part   int
	size   int64
	weight float64 // references within the optimization window
	inMem  bool
	onDisk bool

	costD float64 // potential disk access cost (Eq. 3), seconds
	costR float64 // potential recomputation cost (Eq. 4), seconds
}

// ilpWindowDiscount is the weight given to resident partitions whose
// next reference lies beyond the current+next-job window: the ILP
// optimizes the near future (§5.5), but should not treat
// later-referenced residents as worthless.
const ilpWindowDiscount = 0.5

// runILP solves Eq. 5-6 for every executor independently (partitions are
// pinned to their home executors by locality, §6) and applies the
// resulting state transitions: spills (m→d), unpersists (m→u, d→u) and
// promotions (d→m). Results for not-yet-computed partitions are kept in
// targetState and honored at admission time.
func (b *Controller) runILP() {
	b.targetState = make(map[storage.BlockID]engine.Placement)
	met := b.c.Metrics()

	for _, ex := range b.c.Executors() {
		cands := b.gatherCandidates(ex)
		if len(cands) == 0 {
			continue
		}

		// Fixed point on the recursive recomputation costs (Eq. 4
		// depends on ancestor states): price under current states, solve,
		// re-price under the candidate assignment, solve again.
		b.priceCandidates(cands, nil)
		chosen := b.solve(ex, cands)
		hypo := make(map[storage.BlockID]bool, len(cands))
		for i, c := range cands {
			hypo[c.id] = chosen[i]
		}
		b.priceCandidates(cands, hypo)
		chosen = b.solve(ex, cands)
		met.ILPSolves++

		// Record targets and migrate existing blocks.
		for i, c := range cands {
			var tgt engine.Placement
			switch {
			case chosen[i]:
				tgt = engine.PlaceMemory
			case b.feat.DiskEnabled && c.costD > 0 && c.costD < c.costR:
				tgt = engine.PlaceDisk
			default:
				tgt = engine.PlaceNone
			}
			b.targetState[c.id] = tgt

			switch {
			case c.inMem && tgt == engine.PlaceDisk:
				if !b.diskBudgetAllows(ex, c.size) {
					b.c.DropBlock(ex, c.id)
					b.targetState[c.id] = engine.PlaceNone
					continue
				}
				b.c.SpillBlock(ex, c.id)
			case c.inMem && tgt == engine.PlaceNone:
				b.c.DropBlock(ex, c.id)
			case !c.inMem && c.onDisk && tgt == engine.PlaceMemory:
				b.c.PromoteBlock(ex, c.id, true)
			case c.onDisk && tgt == engine.PlaceNone:
				b.c.DropBlock(ex, c.id)
			}
		}
	}
}

// gatherCandidates collects the partitions relevant to the optimization
// window on one executor: resident blocks (memory and disk) plus
// predicted upcoming partitions whose metrics the CostLineage can supply
// (observed earlier or inducted by regression).
func (b *Controller) gatherCandidates(ex *engine.Executor) []candidate {
	seen := make(map[storage.BlockID]bool)
	var cands []candidate

	addResident := func(id storage.BlockID, size int64, inMem, onDisk bool) {
		if seen[id] {
			return
		}
		seen[id] = true
		n := b.lin.Node(id.Dataset)
		if n == nil {
			return
		}
		total := b.futureRefs(id.Dataset)
		if total == 0 {
			return // auto-unpersist will reclaim it
		}
		w := float64(b.refsInWindow(n))
		if w == 0 {
			w = ilpWindowDiscount
		}
		cands = append(cands, candidate{
			id: id, node: n, part: id.Partition, size: size,
			weight: w, inMem: inMem, onDisk: onDisk,
		})
	}

	for _, m := range ex.Mem.Blocks() {
		addResident(m.ID, m.Size, true, ex.Disk.Contains(m.ID))
	}
	for _, id := range ex.Disk.Blocks() {
		if _, size, ok := ex.Disk.Get(id); ok {
			addResident(id, size, false, true)
		}
	}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].id.Dataset != cands[j].id.Dataset {
			return cands[i].id.Dataset < cands[j].id.Dataset
		}
		return cands[i].id.Partition < cands[j].id.Partition
	})
	return cands
}

// priceCandidates computes cost_d and cost_r for every candidate, under
// either the current states (hypo == nil) or a hypothetical memory
// assignment.
func (b *Controller) priceCandidates(cands []candidate, hypo map[storage.BlockID]bool) {
	if hypo == nil {
		b.est.Reset()
	} else {
		b.est.SetHypothetical(hypo)
	}
	for i := range cands {
		c := &cands[i]
		if b.feat.DiskEnabled {
			c.costD = b.est.DiskCost(c.node, c.part).Seconds()
		} else {
			c.costD = 0
		}
		// Price recomputation at the candidate's next recovery horizon:
		// ancestors that die before then cannot shortcut the chain.
		c.costR = b.est.RecomputeCostAt(c.node, c.part, b.horizonFor(c.node, c.id.Dataset)).Seconds()
	}
}

// solve picks the memory set. With abundant disk (the paper's default)
// the ILP reduces exactly to a knapsack: a partition left out of memory
// costs min(cost_d, cost_r), so memory should hold the partitions with
// the largest recovery costs subject to capacity — see the reduction
// note on ilp.Knapsack. With a disk capacity constraint the full binary
// program is solved by branch and bound.
func (b *Controller) solve(ex *engine.Executor, cands []candidate) []bool {
	met := b.c.Metrics()
	if b.ilpDiskCapacity <= 0 {
		values := make([]float64, len(cands))
		weights := make([]float64, len(cands))
		for i, c := range cands {
			off := c.costR
			if b.feat.DiskEnabled && c.costD > 0 && c.costD < off {
				off = c.costD
			}
			values[i] = off * c.weight
			weights[i] = float64(c.size)
		}
		chosen, _ := ilp.Knapsack(values, weights, float64(ex.Mem.Capacity()))
		met.ILPNodes += len(cands)
		return chosen
	}

	// Full ILP with the optional disk capacity constraint (Eq. 6
	// extension): variables (m_i, d_i, u_i) per candidate. Presolve:
	// candidates with zero recovery cost are trivially u (keeping them
	// anywhere saves nothing), which keeps the branch-and-bound small —
	// the same bounding Blaze applies to keep solves under its latency
	// budget (§5.5).
	active := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.costD > 0 || c.costR > 0 {
			active = append(active, i)
		}
	}
	chosen := make([]bool, len(cands))
	n := len(active)
	if n == 0 {
		return chosen
	}
	// Very large instances fall back to the knapsack relaxation; the
	// disk constraint is enforced greedily afterwards by the apply step.
	const maxExactVars = 32
	if n > maxExactVars {
		values := make([]float64, len(cands))
		weights := make([]float64, len(cands))
		for i, c := range cands {
			off := c.costR
			if b.feat.DiskEnabled && c.costD > 0 && c.costD < off {
				off = c.costD
			}
			values[i] = off * c.weight
			weights[i] = float64(c.size)
		}
		ch, _ := ilp.Knapsack(values, weights, float64(ex.Mem.Capacity()))
		met.ILPNodes += len(cands)
		return ch
	}

	prob := ilp.Problem{C: make([]float64, 3*n)}
	memRow := make([]float64, 3*n)
	diskRow := make([]float64, 3*n)
	for j, idx := range active {
		c := cands[idx]
		prob.C[3*j] = 0
		prob.C[3*j+1] = c.costD * c.weight
		prob.C[3*j+2] = c.costR * c.weight
		row := make([]float64, 3*n)
		row[3*j], row[3*j+1], row[3*j+2] = 1, 1, 1
		prob.Constraints = append(prob.Constraints, ilp.Constraint{Coeffs: row, Rel: ilp.EQ, RHS: 1})
		memRow[3*j] = float64(c.size)
		diskRow[3*j+1] = float64(c.size)
		if !b.feat.DiskEnabled {
			// Forbid the d state entirely.
			frow := make([]float64, 3*n)
			frow[3*j+1] = 1
			prob.Constraints = append(prob.Constraints, ilp.Constraint{Coeffs: frow, Rel: ilp.EQ, RHS: 0})
		}
	}
	prob.Constraints = append(prob.Constraints,
		ilp.Constraint{Coeffs: memRow, Rel: ilp.LE, RHS: float64(ex.Mem.Capacity())},
		ilp.Constraint{Coeffs: diskRow, Rel: ilp.LE, RHS: float64(b.ilpDiskCapacity)},
	)
	sol, err := ilp.Solve(prob, ilp.Options{MaxNodes: 2000})
	if err != nil {
		// Defensive: fall back to keeping current residents.
		for i, c := range cands {
			chosen[i] = c.inMem
		}
		return chosen
	}
	met.ILPNodes += sol.Nodes
	for j, idx := range active {
		chosen[idx] = sol.X[3*j] == 1
	}
	return chosen
}

// ProfilingOverhead returns the modeled profiling cost to charge on the
// cluster when the controller was seeded by a dependency extraction run.
func (b *Controller) ProfilingOverhead() time.Duration {
	if b.profiled {
		return DefaultProfilingOverhead
	}
	return 0
}
