package core

import (
	"sort"
	"time"

	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/ilp"
	"blaze/internal/storage"
)

// candidate is one partition whose state the ILP decides.
type candidate struct {
	id     storage.BlockID
	node   *Node
	part   int
	size   int64
	weight float64 // references within the optimization window
	inMem  bool
	onDisk bool

	costD float64 // potential disk access cost (Eq. 3), seconds
	costR float64 // potential recomputation cost (Eq. 4), seconds
}

// ilpWindowDiscount is the weight given to resident partitions whose
// next reference lies beyond the current+next-job window: the ILP
// optimizes the near future (§5.5), but should not treat
// later-referenced residents as worthless.
const ilpWindowDiscount = 0.5

// runILP solves Eq. 5-6 for every executor independently (partitions are
// pinned to their home executors by locality, §6) and applies the
// resulting state transitions: spills (m→d), unpersists (m→u, d→u) and
// promotions (d→m). Results for not-yet-computed partitions are kept in
// targetState and honored at admission time.
func (b *Controller) runILP() {
	b.targetState = make(map[storage.BlockID]engine.Placement)

	for _, ex := range b.c.Executors() {
		cands := b.gatherCandidates(ex)
		if len(cands) == 0 {
			continue
		}

		// Fixed point on the recursive recomputation costs (Eq. 4
		// depends on ancestor states): price under current states, solve,
		// re-price under the candidate assignment, solve again. When the
		// re-pricing leaves the costs unchanged the second solve is a
		// fingerprint hit in the solution memo and costs nothing.
		b.priceCandidates(cands, nil)
		chosen := b.solve(ex, cands)
		hypo := make(map[storage.BlockID]bool, len(cands))
		for i, c := range cands {
			hypo[c.id] = chosen[i]
		}
		b.priceCandidates(cands, hypo)
		chosen = b.solve(ex, cands)

		b.applyAssignment(ex, cands, chosen)
	}
}

// applyAssignment records the target states of a solved memory
// assignment and migrates existing blocks accordingly: spills (m→d),
// unpersists (m→u, d→u) and promotions (d→m). Shared by the
// per-executor runILP and by cluster-wide arbitration, which solves the
// union of several sessions' candidates and applies each session's
// slice through its own controller.
func (b *Controller) applyAssignment(ex *engine.Executor, cands []candidate, chosen []bool) {
	// Remember this executor's memory set: the next window boundary's
	// delta solve warm-starts from it.
	var last map[storage.BlockID]bool
	if ex.ID < len(b.lastChosen) {
		if b.lastChosen[ex.ID] == nil {
			b.lastChosen[ex.ID] = make(map[storage.BlockID]bool)
		}
		last = b.lastChosen[ex.ID]
	}
	for i, c := range cands {
		if last != nil {
			last[c.id] = chosen[i]
		}
		var tgt engine.Placement
		switch {
		case chosen[i]:
			tgt = engine.PlaceMemory
		case b.feat.DiskEnabled && c.costD > 0 && c.costD < c.costR:
			tgt = engine.PlaceDisk
		default:
			tgt = engine.PlaceNone
		}
		b.targetState[c.id] = tgt

		switch {
		case c.inMem && tgt == engine.PlaceDisk:
			if !b.diskBudgetAllows(ex, c.size) {
				b.c.DropBlock(ex, c.id)
				b.targetState[c.id] = engine.PlaceNone
				continue
			}
			b.c.SpillBlock(ex, c.id)
		case c.inMem && tgt == engine.PlaceNone:
			b.c.DropBlock(ex, c.id)
		case !c.inMem && c.onDisk && tgt == engine.PlaceMemory:
			b.c.PromoteBlock(ex, c.id, true)
		case c.onDisk && tgt == engine.PlaceNone:
			b.c.DropBlock(ex, c.id)
		}

		// Stamp the solve's price on the resident metadata. Within one
		// session the next victimOrder recomputes it anyway; in a shared
		// pool the stamp is what other sessions' cost-aware eviction
		// sees, so a fresh price must survive every solve.
		if tgt == engine.PlaceMemory {
			if m, ok := ex.Mem.Peek(c.id); ok {
				cost := c.costR
				if b.feat.DiskEnabled && c.costD > 0 && c.costD < cost {
					cost = c.costD
				}
				m.Cost = cost
			}
		}
	}
}

// gatherCandidates collects the partitions relevant to the optimization
// window on one executor: resident blocks (memory and disk) plus
// predicted upcoming partitions whose metrics the CostLineage can supply
// (observed earlier or inducted by regression).
func (b *Controller) gatherCandidates(ex *engine.Executor) []candidate {
	seen := make(map[storage.BlockID]bool)
	var cands []candidate

	addResident := func(id storage.BlockID, size int64, inMem, onDisk bool) {
		if seen[id] {
			return
		}
		seen[id] = true
		n := b.lin.Node(id.Dataset)
		if n == nil || b.retired[n.Key] {
			// Unknown to this session's lineage, or retired by windowed
			// lifetime management: not a candidate.
			return
		}
		// Resident blocks with no anticipated references are not
		// candidates in one-shot mode (auto-unpersist reclaims them). In
		// windowed mode they stay: a future window may yet consume them
		// (carried state), so they compete at the idle-reference
		// discount until lifetime retirement ages them out.
		if b.futureRefs(id.Dataset) == 0 && b.curWindow < 1 {
			return
		}
		w := float64(b.refsInWindow(n))
		if w == 0 {
			w = ilpWindowDiscount
		}
		cands = append(cands, candidate{
			id: id, node: n, part: id.Partition, size: size,
			weight: w, inMem: inMem, onDisk: onDisk,
		})
	}

	for _, m := range ex.Mem.Blocks() {
		addResident(m.ID, m.Size, true, ex.Disk.Contains(m.ID))
	}
	for _, id := range ex.Disk.Blocks() {
		// Size, not Get: candidate enumeration only needs metadata, and
		// in real-bytes mode Get would read and decode the block's file.
		if size, ok := ex.Disk.Size(id); ok {
			addResident(id, size, false, true)
		}
	}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].id.Dataset != cands[j].id.Dataset {
			return cands[i].id.Dataset < cands[j].id.Dataset
		}
		return cands[i].id.Partition < cands[j].id.Partition
	})
	return cands
}

// priceCandidates computes cost_d and cost_r for every candidate, under
// either the current states (hypo == nil) or a hypothetical memory
// assignment.
func (b *Controller) priceCandidates(cands []candidate, hypo map[storage.BlockID]bool) {
	if hypo == nil {
		b.est.Reset()
	} else {
		b.est.SetHypothetical(hypo)
	}
	for i := range cands {
		c := &cands[i]
		if b.feat.DiskEnabled {
			c.costD = b.est.DiskCost(c.node, c.part).Seconds()
		} else {
			c.costD = 0
		}
		// Price recomputation at the candidate's next recovery horizon:
		// ancestors that die before then cannot shortcut the chain.
		c.costR = b.est.RecomputeCostAt(c.node, c.part, b.horizonFor(c.node, c.id.Dataset)).Seconds()
	}
}

// Optimizer sizing knobs. Package variables rather than constants so
// tests can shrink them to force the fallback paths.
var (
	// maxExactVars bounds the number of active candidates the exact
	// branch and bound accepts (three decision variables each). The
	// bounded-variable simplex with warm starts and reduced-cost fixing
	// proves optimality for instances this size well inside the node
	// budget, so the threshold reflects the solve-latency budget of
	// §5.5, not solvability.
	maxExactVars = 256
	// ilpNodeBudget caps branch-and-bound nodes per solve. Exhausting it
	// is counted as a fallback; the best incumbent found is still used.
	ilpNodeBudget = 50000
)

// ilpMemoCap bounds the per-executor solution memo.
const ilpMemoCap = 4

// memoEntry is one cached optimizer solution. key fingerprints the
// instance (a kind marker, the dimensions and capacities, then the
// per-candidate sizes and weighted costs); chosen is the memory
// assignment over the full candidate slice; exact marks proven optima of
// non-degraded solves — the only entries eligible for direct reuse.
type memoEntry struct {
	key    []float64
	chosen []bool
	exact  bool
}

// solveMemo is a bounded newest-last list of recent solutions for one
// executor. Iterative workloads resubmit near-identical candidate sets
// every job, so an exact fingerprint match answers the solve outright
// and a same-shape near-match seeds the branch and bound's incumbent.
type solveMemo struct {
	entries []memoEntry
}

// exactMatch returns the newest exact entry whose fingerprint equals key.
func (m *solveMemo) exactMatch(key []float64) *memoEntry {
	for i := len(m.entries) - 1; i >= 0; i-- {
		e := &m.entries[i]
		if e.exact && keysEqual(e.key, key) {
			return e
		}
	}
	return nil
}

// newestWith returns the newest entry with the given kind marker whose
// assignment covers n candidates (for incumbent seeding).
func (m *solveMemo) newestWith(kind float64, n int) *memoEntry {
	for i := len(m.entries) - 1; i >= 0; i-- {
		e := &m.entries[i]
		if len(e.key) > 0 && e.key[0] == kind && len(e.chosen) == n {
			return e
		}
	}
	return nil
}

// store records a solution, replacing any entry with the same key and
// evicting the oldest entry beyond the cap.
func (m *solveMemo) store(key []float64, chosen []bool, exact bool) {
	for i := range m.entries {
		if keysEqual(m.entries[i].key, key) {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			break
		}
	}
	ch := make([]bool, len(chosen))
	copy(ch, chosen)
	m.entries = append(m.entries, memoEntry{key: key, chosen: ch, exact: exact})
	if len(m.entries) > ilpMemoCap {
		m.entries = m.entries[1:]
	}
}

func keysEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memoFor returns the executor's solution memo, or a throwaway one when
// the controller was driven without Bind (direct-solve tests).
func (b *Controller) memoFor(ex *engine.Executor) *solveMemo {
	if ex.ID < len(b.ilpMemo) && b.ilpMemo[ex.ID] != nil {
		return b.ilpMemo[ex.ID]
	}
	return &solveMemo{}
}

// solveResult describes one optimizer invocation for accounting: the
// decided memory set, the model size and search effort, and the outcome
// classification (proven optimum / degraded fallback / memo reuse).
type solveResult struct {
	chosen   []bool
	vars     int
	nodes    int
	optimal  bool
	fallback bool
	reused   bool
}

// solve picks the memory set and accounts the invocation uniformly
// across all solver paths: every call bumps ILPSolves, adds its search
// nodes to ILPNodes, its wall-clock time to ILPSolveTime, counts
// degraded outcomes in ILPFallbacks and memo hits in ILPReused, and
// emits one ilp_solve event. ILPSolveTime is the sole wall-clock metric;
// everything else, including the event's virtual timestamp, is
// deterministic at any engine parallelism because runILP executes
// driver-side.
func (b *Controller) solve(ex *engine.Executor, cands []candidate) []bool {
	start := time.Now()
	r := b.solveExecutor(ex, cands)
	met := b.c.Metrics()
	met.ILPSolves++
	met.ILPNodes += r.nodes
	met.ILPSolveTime += time.Since(start)
	if r.fallback {
		met.ILPFallbacks++
	}
	if r.reused {
		met.ILPReused++
	}
	b.c.EmitEvent(eventlog.Event{
		Kind: eventlog.ILPSolve, Time: b.c.Now(), Job: b.curJob,
		Executor: ex.ID, Vars: r.vars, Nodes: r.nodes,
		Optimal: r.optimal, Fallback: r.fallback, Reused: r.reused,
	})
	return r.chosen
}

// knapsackInputs builds the knapsack reduction: a partition left out of
// memory costs min(cost_d, cost_r) weighted by its window references.
func (b *Controller) knapsackInputs(cands []candidate) (values, weights []float64) {
	values = make([]float64, len(cands))
	weights = make([]float64, len(cands))
	for i, c := range cands {
		off := c.costR
		if b.feat.DiskEnabled && c.costD > 0 && c.costD < off {
			off = c.costD
		}
		values[i] = off * c.weight
		weights[i] = float64(c.size)
	}
	return values, weights
}

// knapKey fingerprints a knapsack instance (kind marker 0).
func knapKey(values, weights []float64, capacity float64) []float64 {
	key := make([]float64, 0, 3+2*len(values))
	key = append(key, 0, float64(len(values)), capacity)
	key = append(key, values...)
	key = append(key, weights...)
	return key
}

// solveExecutor runs one optimizer invocation. With abundant disk (the
// paper's default) the ILP reduces exactly to a knapsack — see the
// reduction note on ilp.Knapsack. With a disk capacity constraint the
// full binary program is solved by warm-started branch and bound, with
// a three-way fallback taxonomy:
//
//   - more than maxExactVars active candidates: knapsack relaxation
//     (the apply step still enforces the disk budget greedily);
//   - node budget exhausted with a feasible incumbent: the incumbent is
//     used (it satisfies every constraint, including disk capacity);
//   - no feasible assignment found at all: knapsack relaxation.
//
// All three are counted as fallbacks. Before solving, the executor's
// memo is consulted: an exact fingerprint match returns the cached
// assignment without searching, and otherwise the newest same-shape
// solution seeds the branch and bound's incumbent (cross-job warm
// start).
func (b *Controller) solveExecutor(ex *engine.Executor, cands []candidate) solveResult {
	memo := b.memoFor(ex)
	memCap := float64(ex.Mem.Capacity())

	if b.ilpDiskCapacity <= 0 {
		values, weights := b.knapsackInputs(cands)
		key := knapKey(values, weights, memCap)
		if prev := memo.exactMatch(key); prev != nil {
			return solveResult{chosen: prev.chosen, vars: len(cands), optimal: true, reused: true}
		}
		chosen, _, nodes, exact := ilp.KnapsackSearch(values, weights, memCap)
		memo.store(key, chosen, exact)
		return solveResult{chosen: chosen, vars: len(cands), nodes: nodes, optimal: exact, fallback: !exact}
	}

	// Full ILP with the optional disk capacity constraint (Eq. 6
	// extension): variables (m_i, d_i, u_i) per candidate. Presolve:
	// candidates with zero recovery cost are trivially u (keeping them
	// anywhere saves nothing), which keeps the branch-and-bound small —
	// the same bounding Blaze applies to keep solves under its latency
	// budget (§5.5).
	active := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.costD > 0 || c.costR > 0 {
			active = append(active, i)
		}
	}
	chosen := make([]bool, len(cands))
	n := len(active)
	if n == 0 {
		return solveResult{chosen: chosen, optimal: true}
	}
	if n > maxExactVars {
		// Oversized: knapsack relaxation without the disk row. The
		// result is not a proven optimum of the full model, so the solve
		// counts as a fallback even when the knapsack search itself is
		// exact; the apply step enforces the disk budget greedily.
		values, weights := b.knapsackInputs(cands)
		key := knapKey(values, weights, memCap)
		if prev := memo.exactMatch(key); prev != nil {
			return solveResult{chosen: prev.chosen, vars: len(cands), fallback: true, reused: true}
		}
		ch, _, nodes, exact := ilp.KnapsackSearch(values, weights, memCap)
		memo.store(key, ch, exact)
		return solveResult{chosen: ch, vars: len(cands), nodes: nodes, fallback: true}
	}

	key := make([]float64, 0, 6+3*n)
	key = append(key, 1, float64(len(cands)), memCap, float64(b.ilpDiskCapacity), boolKey(b.feat.DiskEnabled), float64(n))
	for _, idx := range active {
		c := cands[idx]
		key = append(key, float64(c.size), c.costD*c.weight, c.costR*c.weight)
	}
	if prev := memo.exactMatch(key); prev != nil && len(prev.chosen) == len(cands) {
		return solveResult{chosen: prev.chosen, vars: 3 * n, optimal: true, reused: true}
	}

	prob := ilp.Problem{C: make([]float64, 3*n)}
	memRow := make([]float64, 3*n)
	diskRow := make([]float64, 3*n)
	for j, idx := range active {
		c := cands[idx]
		prob.C[3*j] = 0
		prob.C[3*j+1] = c.costD * c.weight
		prob.C[3*j+2] = c.costR * c.weight
		row := make([]float64, 3*n)
		row[3*j], row[3*j+1], row[3*j+2] = 1, 1, 1
		prob.Constraints = append(prob.Constraints, ilp.Constraint{Coeffs: row, Rel: ilp.EQ, RHS: 1})
		memRow[3*j] = float64(c.size)
		diskRow[3*j+1] = float64(c.size)
		if !b.feat.DiskEnabled {
			// Forbid the d state entirely.
			frow := make([]float64, 3*n)
			frow[3*j+1] = 1
			prob.Constraints = append(prob.Constraints, ilp.Constraint{Coeffs: frow, Rel: ilp.EQ, RHS: 0})
		}
	}
	prob.Constraints = append(prob.Constraints,
		ilp.Constraint{Coeffs: memRow, Rel: ilp.LE, RHS: memCap},
		ilp.Constraint{Coeffs: diskRow, Rel: ilp.LE, RHS: float64(b.ilpDiskCapacity)},
	)
	opts := ilp.Options{MaxNodes: ilpNodeBudget}
	if prev := memo.newestWith(1, len(cands)); prev != nil {
		opts.Incumbent = b.incumbentFrom(prev.chosen, cands, active)
	}
	sol, err := ilp.Solve(prob, opts)
	if err != nil {
		// Budget exhausted before any feasible assignment was found:
		// genuinely out of options for the exact model, so degrade to
		// the knapsack relaxation.
		values, weights := b.knapsackInputs(cands)
		ch, _, nodes, _ := ilp.KnapsackSearch(values, weights, memCap)
		return solveResult{chosen: ch, vars: 3 * n, nodes: nodes, fallback: true}
	}
	for j, idx := range active {
		chosen[idx] = sol.X[3*j] == 1
	}
	memo.store(key, chosen, sol.Optimal)
	return solveResult{chosen: chosen, vars: 3 * n, nodes: sol.Nodes, optimal: sol.Optimal, fallback: !sol.Optimal}
}

// incumbentFrom maps a previous job's memory assignment onto the current
// active set as a feasible 0/1 seed: kept partitions stay m, the rest go
// d or u by cost comparison, mirroring the apply step's placement rule.
// ilp.Solve validates the seed and ignores it if infeasible.
func (b *Controller) incumbentFrom(prev []bool, cands []candidate, active []int) []int {
	if len(prev) != len(cands) {
		return nil
	}
	inc := make([]int, 3*len(active))
	for j, idx := range active {
		c := cands[idx]
		switch {
		case prev[idx]:
			inc[3*j] = 1
		case b.feat.DiskEnabled && c.costD > 0 && c.costD < c.costR:
			inc[3*j+1] = 1
		default:
			inc[3*j+2] = 1
		}
	}
	return inc
}

func boolKey(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// ProfilingOverhead returns the modeled profiling cost to charge on the
// cluster when the controller was seeded by a dependency extraction run.
func (b *Controller) ProfilingOverhead() time.Duration {
	if b.profiled {
		return DefaultProfilingOverhead
	}
	return 0
}
