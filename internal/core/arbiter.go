package core

import (
	"sync"
	"time"

	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/ilp"
	"blaze/internal/storage"
)

// GlobalArbiter extends Blaze's per-job optimization to a multi-tenant
// pool: instead of each session solving Eq. 5-6 over only its own
// candidates (blind to the other sessions' resident blocks, which
// victimOrder prices at zero and evicts first), the arbiter intercepts
// every job-start ILP trigger and re-runs the solve per executor over
// the *union* of all registered sessions' candidate sets, against the
// memory actually available. Each candidate keeps its owning session's
// potential-cost pricing, scaled by the tenant's fair-share weight, so
// the shared cache holds the blocks whose loss would cost the cluster
// (not just the triggering job) the most. The solved assignment is
// sliced back per session and applied through each session's own
// controller, updating its targetState exactly as a local solve would.
//
// Arbitration runs under the pool's exclusivity lock (the trigger is
// inside its job's OnJobStart), so reading and migrating other
// sessions' blocks is race-free: those sessions are parked at their
// gates. A lone registered session declines arbitration — its local
// solve is already the whole picture.
type GlobalArbiter struct {
	mu       sync.Mutex
	sessions []arbSession
	// memo caches union solutions per executor, giving cross-job reuse
	// across the interleaved sessions like solveMemo does within one.
	memo map[int]*solveMemo
	// sink, when non-nil, receives one Arbitration summary event per
	// run (the server routes these to its own log, synchronized there).
	sink func(eventlog.Event)
	runs int
}

// arbSession is one registered session: its controller and the fair
// share weight of its tenant (candidate values are scaled by it).
type arbSession struct {
	ctl    *Controller
	weight float64
}

// NewGlobalArbiter creates an arbiter. sink, when non-nil, receives an
// Arbitration summary event after each cluster-wide solve; the caller
// owns its synchronization.
func NewGlobalArbiter(sink func(eventlog.Event)) *GlobalArbiter {
	return &GlobalArbiter{memo: make(map[int]*solveMemo), sink: sink}
}

// Register adds a session's controller to the arbitration scope with
// the given tenant weight (<= 0 counts as 1) and installs the arbiter
// on it. Only ILP-enabled controllers participate; others are ignored.
func (g *GlobalArbiter) Register(b *Controller, weight float64) {
	if b == nil || !b.ILPEnabled() {
		return
	}
	if weight <= 0 {
		weight = 1
	}
	g.mu.Lock()
	g.sessions = append(g.sessions, arbSession{ctl: b, weight: weight})
	g.mu.Unlock()
	b.WithArbiter(g)
}

// Unregister removes a session (its jobs finished or were cancelled)
// and detaches the arbiter from its controller.
func (g *GlobalArbiter) Unregister(b *Controller) {
	g.mu.Lock()
	for i, s := range g.sessions {
		if s.ctl == b {
			g.sessions = append(g.sessions[:i], g.sessions[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
	if b != nil {
		b.WithArbiter(nil)
	}
}

// Sessions returns the number of currently registered sessions.
func (g *GlobalArbiter) Sessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// Runs returns how many cluster-wide arbitrations have executed.
func (g *GlobalArbiter) Runs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs
}

// ArbitrateJobStart implements JobArbiter: the cluster-wide solve.
// Returns false (declining, so the trigger runs its local solve) when
// fewer than two bound sessions are registered.
func (g *GlobalArbiter) ArbitrateJobStart(trigger *Controller) bool {
	g.mu.Lock()
	defer g.mu.Unlock()

	var live []arbSession
	for _, s := range g.sessions {
		if s.ctl.c != nil {
			live = append(live, s)
		}
	}
	if len(live) < 2 {
		return false
	}

	// Every session's targetState is rebuilt from this solve, exactly as
	// runILP rebuilds it at the top of a local solve.
	for _, s := range live {
		s.ctl.targetState = make(map[storage.BlockID]engine.Placement)
	}

	start := time.Now()
	met := trigger.c.Metrics()
	totalVars := 0
	for _, ex := range trigger.c.Executors() {
		if ex.Dead() {
			continue
		}

		// Gather and price each session's candidates under current states.
		perCands := make([][]candidate, len(live))
		union := 0
		inCand := make(map[storage.BlockID]bool)
		for i, s := range live {
			cs := s.ctl.gatherCandidates(ex)
			s.ctl.priceCandidates(cs, nil)
			perCands[i] = cs
			union += len(cs)
			for _, c := range cs {
				inCand[c.id] = true
			}
		}
		if union == 0 {
			continue
		}

		// Memory claimed by resident blocks outside every session's
		// candidate set (e.g. blocks of unregistered sessions) is not the
		// solver's to assign; shrink the capacity by it.
		var foreign int64
		for _, m := range ex.Mem.Blocks() {
			if !inCand[m.ID] {
				foreign += m.Size
			}
		}
		capEff := float64(ex.Mem.Capacity() - foreign)
		if capEff < 0 {
			capEff = 0
		}

		memo := g.memo[ex.ID]
		if memo == nil {
			memo = &solveMemo{}
			g.memo[ex.ID] = memo
		}
		solveUnion := func() ([]bool, int, bool, bool) {
			var values, weights []float64
			for i, s := range live {
				v, w := s.ctl.knapsackInputs(perCands[i])
				for j := range v {
					v[j] *= s.weight
				}
				values = append(values, v...)
				weights = append(weights, w...)
			}
			key := knapKey(values, weights, capEff)
			if prev := memo.exactMatch(key); prev != nil {
				return prev.chosen, 0, true, true
			}
			chosen, _, nodes, exact := ilp.KnapsackSearch(values, weights, capEff)
			memo.store(key, chosen, exact)
			return chosen, nodes, exact, false
		}

		// Fixed point on the recursive recomputation costs, as in runILP:
		// solve, re-price every session under the union assignment, solve
		// again (a no-change re-pricing hits the memo for free).
		chosen, nodes, _, reused1 := solveUnion()
		off := 0
		for i, s := range live {
			cs := perCands[i]
			hypo := make(map[storage.BlockID]bool, len(cs))
			for j := range cs {
				hypo[cs[j].id] = chosen[off+j]
			}
			off += len(cs)
			s.ctl.priceCandidates(cs, hypo)
		}
		chosen, nodes2, optimal, reused2 := solveUnion()
		nodes += nodes2

		// Apply each session's slice through its own controller.
		off = 0
		for i, s := range live {
			cs := perCands[i]
			s.ctl.applyAssignment(ex, cs, chosen[off:off+len(cs)])
			off += len(cs)
		}

		// Optimizer accounting lands on the triggering session — it asked
		// for the solve and its job's latency budget paid for it.
		met.ILPSolves += 2
		met.ILPNodes += nodes
		if reused1 {
			met.ILPReused++
		}
		if reused2 {
			met.ILPReused++
		}
		if !optimal {
			met.ILPFallbacks++
		}
		trigger.c.EmitEvent(eventlog.Event{
			Kind: eventlog.ILPSolve, Time: trigger.c.Now(), Job: trigger.curJob,
			Executor: ex.ID, Vars: union, Nodes: nodes,
			Optimal: optimal, Reused: reused2,
		})
		totalVars += union
	}
	met.ILPSolveTime += time.Since(start)
	g.runs++
	if g.sink != nil {
		g.sink(eventlog.Event{
			Kind: eventlog.Arbitration, Time: trigger.c.Now(), Job: trigger.curJob,
			Count: len(live), Vars: totalVars,
		})
	}
	return true
}
