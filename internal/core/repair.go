package core

// This file implements post-recovery plan repair: after the cluster's
// state changes out from under the optimizer's plan — an executor dies
// and its partitions migrate, or a crashed session is rehydrated from a
// checkpoint — RepairPlan re-solves the cache-placement problem over
// the *surviving* candidate set and re-applies the assignment, instead
// of letting the stale targetState silently misdirect promotions and
// admissions (the ROADMAP gap: "post-recovery cluster state invalidates
// the original plan silently").
//
// The repair solve deliberately bypasses the per-executor solution memo
// in both directions: it neither reuses entries (the surviving
// candidate set rarely fingerprint-matches a pre-crash instance) nor
// stores new ones. Storing would evict pre-crash entries from the
// bounded memo and change later windows' hit/miss pattern, breaking the
// invariant that a resumed run is bit-identical to an uninterrupted
// one. All repair effort is accounted to the dedicated Repair* metrics,
// which are excluded from deterministic comparison for the same reason.

import (
	"time"

	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/ilp"
	"blaze/internal/storage"
)

// RepairPlan implements engine.PlanRepairer: one full re-solve of the
// placement problem over the current (surviving) candidates, mirroring
// the window-boundary fixed point — price, solve warm-started from the
// last assignment, re-price under the hypothetical, solve again, apply.
// Events are emitted through emit so callers can route them to the main
// log (executor death, where repair is part of the run) or to a
// recovery-only log (crash resume, where the main log must stay
// bit-identical to an uninterrupted run). window is stamped on the
// events; pass 0 outside streaming.
func (b *Controller) RepairPlan(window int, emit func(eventlog.Event)) {
	if !b.feat.ILP {
		return
	}
	b.targetState = make(map[storage.BlockID]engine.Placement)

	for _, ex := range b.c.Executors() {
		cands := b.gatherCandidates(ex)
		if len(cands) == 0 {
			continue
		}

		b.priceCandidates(cands, nil)
		perturbBoundaryCosts(cands)
		chosen := b.repairSolve(ex, cands, b.warmFrom(ex, cands), window, emit)
		hypo := make(map[storage.BlockID]bool, len(cands))
		for i, c := range cands {
			hypo[c.id] = chosen[i]
		}
		b.priceCandidates(cands, hypo)
		perturbBoundaryCosts(cands)
		chosen = b.repairSolve(ex, cands, chosen, window, emit)

		b.applyAssignment(ex, cands, chosen)
	}
}

// repairSolve runs one memo-less repair solve with Repair* accounting
// and one ilp_repair_solve event. With cold verification enabled the
// identical instance is additionally solved from scratch and proven
// optima are compared into RepairMismatches (expected to stay zero —
// the warm seed only prunes the search, never changes the optimum).
func (b *Controller) repairSolve(ex *engine.Executor, cands []candidate, warm []bool, window int, emit func(eventlog.Event)) []bool {
	start := time.Now()
	r := b.repairSolveExecutor(ex, cands, warm)
	met := b.c.Metrics()
	met.RepairSolves++
	met.RepairNodes += r.nodes
	met.RepairSolveTime += time.Since(start)
	emit(eventlog.Event{
		Kind: eventlog.ILPRepairSolve, Time: b.c.Now(), Job: b.curJob,
		Executor: ex.ID, Vars: r.vars, Nodes: r.nodes,
		Optimal: r.optimal, Fallback: r.fallback,
		Window: window,
	})

	if b.coldVerify {
		cr := b.coldSolveExecutor(ex, cands)
		if r.optimal && cr.optimal && !boolsEqual(r.chosen, cr.chosen) {
			met.RepairMismatches++
		}
	}
	return r.chosen
}

// repairSolveExecutor is solveBoundaryExecutor without the memo: the
// same knapsack fast path / exact branch-and-bound split, warm-started
// through the bound-only delta entry points.
func (b *Controller) repairSolveExecutor(ex *engine.Executor, cands []candidate, warm []bool) solveResult {
	memCap := float64(ex.Mem.Capacity())

	if b.ilpDiskCapacity <= 0 {
		values, weights := b.knapsackInputs(cands)
		chosen, _, nodes, exact := ilp.KnapsackSearchFrom(values, weights, memCap, warm)
		return solveResult{chosen: chosen, vars: len(cands), nodes: nodes, optimal: exact, fallback: !exact}
	}

	active := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.costD > 0 || c.costR > 0 {
			active = append(active, i)
		}
	}
	chosen := make([]bool, len(cands))
	n := len(active)
	if n == 0 {
		return solveResult{chosen: chosen, optimal: true}
	}
	if n > maxExactVars {
		values, weights := b.knapsackInputs(cands)
		ch, _, nodes, _ := ilp.KnapsackSearchFrom(values, weights, memCap, warm)
		return solveResult{chosen: ch, vars: len(cands), nodes: nodes, fallback: true}
	}

	prob := b.boundaryProblem(cands, active, memCap)
	sol, err := ilp.SolveFrom(prob, b.incumbentFrom(warm, cands, active), ilp.Options{MaxNodes: ilpNodeBudget})
	if err != nil {
		values, weights := b.knapsackInputs(cands)
		ch, _, nodes, _ := ilp.KnapsackSearchFrom(values, weights, memCap, warm)
		return solveResult{chosen: ch, vars: 3 * n, nodes: nodes, fallback: true}
	}
	for j, idx := range active {
		chosen[idx] = sol.X[3*j] == 1
	}
	return solveResult{chosen: chosen, vars: 3 * n, nodes: sol.Nodes, optimal: sol.Optimal, fallback: !sol.Optimal}
}
