package core

import (
	"time"

	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/ilp"
	"blaze/internal/storage"
)

// This file implements windowed lineage for micro-batch streaming: at
// every window boundary the controller retires partitions whose
// lifetime (last-consumer window) has passed — removing them from the
// store and from the optimizer's candidate set — and re-solves the ILP
// as a *delta* on the previous window's assignment. The delta solve
// warm-starts the branch and bound through its pruning bound only
// (ilp.SolveFrom / ilp.KnapsackSearchFrom), so it selects the same
// cache set a from-scratch solve would while exploring far fewer nodes.

// boundaryPerturb is the relative scale of the deterministic index-based
// objective perturbation applied to window-boundary solve instances. It
// breaks cost ties so the optimum is unique, which is what makes the
// delta and cold searches provably agree on the chosen cache set even
// though reduced-cost fixing makes them traverse the tree differently.
// It must comfortably exceed the solver's 1e-9 objective tolerances and
// stay far below any real cost difference; it is applied only at window
// boundaries, never on the job-start solve path, so one-shot runs stay
// bit-identical to the unwindowed engine.
const boundaryPerturb = 1e-6

// WithColdVerify enables from-scratch verification of every window
// boundary delta solve: alongside each delta re-solve a cold solve of
// the identical instance runs with no memo and no warm start, its time
// is accounted to ILPColdSolveTime, and a disagreement between two
// proven optima counts in ILPColdMismatches (expected to stay zero).
func (b *Controller) WithColdVerify(on bool) *Controller {
	b.coldVerify = on
	return b
}

// AdvanceWindow implements engine.WindowAdvancer. It runs in driver
// context at the window boundary, before the new window's first job:
//
//  1. Retire lineage whose lifetime has passed: a node untouched since
//     before the *previous* window began has had no consumer for a full
//     window, so its partitions are dropped from both store tiers and
//     excluded from future candidate sets. The one-window grace keeps
//     carried state (rank vectors, centroids, static inputs read every
//     window) alive. Retired nodes stay on the lineage graph — the cost
//     estimator still walks their edges from live descendants.
//  2. Re-solve the ILP as a delta on the previous window's assignment
//     (window > 1 only; window 1 has no predecessor to delta from).
func (b *Controller) AdvanceWindow(window, nextJob int) {
	if b.retired == nil {
		b.retired = make(map[NodeKey]bool)
	}
	retireBefore := b.winFirstJob
	prevWindow := b.curWindow
	b.curWindow = window
	b.winFirstJob = nextJob
	b.curJob = nextJob
	b.curStageIdx = 0
	b.stageRefs = make(map[int][]int)

	if prevWindow >= 1 {
		b.retireDeadLineage(window, retireBefore)
	}
	if b.feat.ILP && prevWindow >= 1 {
		b.runILPBoundary(window)
	}
}

// retireDeadLineage drops every node last touched before retireBefore
// (the first job of the window that just completed).
func (b *Controller) retireDeadLineage(window, retireBefore int) {
	met := b.c.Metrics()
	for _, n := range b.lin.Nodes() {
		if b.retired[n.Key] || n.TouchedJob >= retireBefore {
			continue
		}
		b.retired[n.Key] = true
		if n.DatasetID < 0 {
			continue
		}
		for p := 0; p < n.Parts; p++ {
			ex := b.c.ExecutorFor(p)
			id := storage.BlockID{Dataset: n.DatasetID, Partition: p}
			var size int64
			resident := false
			if m, ok := ex.Mem.Peek(id); ok {
				size, resident = m.Size, true
			} else if s, ok := ex.Disk.Size(id); ok {
				size, resident = s, true
			}
			delete(b.targetState, id)
			if ex.ID < len(b.lastChosen) && b.lastChosen[ex.ID] != nil {
				delete(b.lastChosen[ex.ID], id)
			}
			if !resident {
				continue
			}
			b.c.DropBlock(ex, id)
			met.PartitionsRetired++
			b.c.EmitEvent(eventlog.Event{
				Kind: eventlog.PartitionRetired, Time: b.c.Now(), Job: b.curJob,
				Executor: ex.ID, Dataset: n.DatasetID, Partition: p,
				Bytes: size, Window: window,
			})
		}
	}
}

// runILPBoundary is the incremental counterpart of runILP: the same
// per-executor fixed point on the recursive recovery costs, but each
// solve is seeded with the previous window's assignment for this
// executor (retired candidates already dropped by gatherCandidates, new
// candidates appended) and the instance objective carries the
// deterministic tie-breaking perturbation.
func (b *Controller) runILPBoundary(window int) {
	b.targetState = make(map[storage.BlockID]engine.Placement)

	for _, ex := range b.c.Executors() {
		cands := b.gatherCandidates(ex)
		if len(cands) == 0 {
			continue
		}

		b.priceCandidates(cands, nil)
		perturbBoundaryCosts(cands)
		chosen := b.solveBoundary(ex, cands, b.warmFrom(ex, cands), window)
		hypo := make(map[storage.BlockID]bool, len(cands))
		for i, c := range cands {
			hypo[c.id] = chosen[i]
		}
		b.priceCandidates(cands, hypo)
		perturbBoundaryCosts(cands)
		chosen = b.solveBoundary(ex, cands, chosen, window)

		b.applyAssignment(ex, cands, chosen)
	}
}

// perturbBoundaryCosts applies the deterministic index-based objective
// perturbation: each candidate's costs gain a distinct additive epsilon
// proportional to the instance's cost scale. The epsilon exceeds the
// solver's 1e-9 objective tolerance, so equal-cost alternatives become
// strictly ordered and the optimum memory set is unique; it is orders
// of magnitude below real cost differences, so placements are otherwise
// unchanged. Both the delta and the cold verification solve see the
// identical perturbed instance.
func perturbBoundaryCosts(cands []candidate) {
	scale := 1e-3 // floor: seconds-scale costs can legitimately be tiny
	for i := range cands {
		if cands[i].costD > scale {
			scale = cands[i].costD
		}
		if cands[i].costR > scale {
			scale = cands[i].costR
		}
	}
	n := float64(len(cands) + 1)
	for i := range cands {
		eps := scale * boundaryPerturb * float64(i+1) / n
		if cands[i].costD > 0 {
			cands[i].costD += eps
		}
		cands[i].costR += eps
	}
}

// warmFrom maps the previous window's assignment for this executor onto
// the current candidate slice: candidates the last solve kept in memory
// seed as chosen, candidates new to this window seed with their current
// residency.
func (b *Controller) warmFrom(ex *engine.Executor, cands []candidate) []bool {
	var prev map[storage.BlockID]bool
	if ex.ID < len(b.lastChosen) {
		prev = b.lastChosen[ex.ID]
	}
	warm := make([]bool, len(cands))
	for i, c := range cands {
		if v, ok := prev[c.id]; ok {
			warm[i] = v
		} else {
			warm[i] = c.inMem
		}
	}
	return warm
}

// solveBoundary runs one delta solve with uniform accounting: every
// call bumps ILPDeltaSolves, adds its search nodes to ILPNodes and
// ILPDeltaNodes, its wall-clock time to ILPDeltaSolveTime, and emits
// one ilp_delta_solve event. With cold verification enabled the
// identical instance is additionally solved from scratch and the two
// proven-optimal cache sets are compared.
func (b *Controller) solveBoundary(ex *engine.Executor, cands []candidate, warm []bool, window int) []bool {
	start := time.Now()
	r := b.solveBoundaryExecutor(ex, cands, warm)
	met := b.c.Metrics()
	met.ILPDeltaSolves++
	met.ILPNodes += r.nodes
	met.ILPDeltaNodes += r.nodes
	met.ILPDeltaSolveTime += time.Since(start)
	if r.fallback {
		met.ILPFallbacks++
	}
	if r.reused {
		met.ILPReused++
	}
	b.c.EmitEvent(eventlog.Event{
		Kind: eventlog.ILPDeltaSolve, Time: b.c.Now(), Job: b.curJob,
		Executor: ex.ID, Vars: r.vars, Nodes: r.nodes,
		Optimal: r.optimal, Fallback: r.fallback, Reused: r.reused,
		Window: window,
	})

	if b.coldVerify {
		cstart := time.Now()
		cr := b.coldSolveExecutor(ex, cands)
		met.ILPColdSolves++
		met.ILPColdNodes += cr.nodes
		met.ILPColdSolveTime += time.Since(cstart)
		if r.optimal && cr.optimal && !boolsEqual(r.chosen, cr.chosen) {
			met.ILPColdMismatches++
		}
	}
	return r.chosen
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// boundaryProblem builds the full three-state ILP for a boundary
// instance. It must construct the exact same model for the delta solve
// and its cold verification, so both share this builder.
func (b *Controller) boundaryProblem(cands []candidate, active []int, memCap float64) ilp.Problem {
	n := len(active)
	prob := ilp.Problem{C: make([]float64, 3*n)}
	memRow := make([]float64, 3*n)
	diskRow := make([]float64, 3*n)
	for j, idx := range active {
		c := cands[idx]
		prob.C[3*j] = 0
		prob.C[3*j+1] = c.costD * c.weight
		prob.C[3*j+2] = c.costR * c.weight
		row := make([]float64, 3*n)
		row[3*j], row[3*j+1], row[3*j+2] = 1, 1, 1
		prob.Constraints = append(prob.Constraints, ilp.Constraint{Coeffs: row, Rel: ilp.EQ, RHS: 1})
		memRow[3*j] = float64(c.size)
		diskRow[3*j+1] = float64(c.size)
		if !b.feat.DiskEnabled {
			frow := make([]float64, 3*n)
			frow[3*j+1] = 1
			prob.Constraints = append(prob.Constraints, ilp.Constraint{Coeffs: frow, Rel: ilp.EQ, RHS: 0})
		}
	}
	prob.Constraints = append(prob.Constraints,
		ilp.Constraint{Coeffs: memRow, Rel: ilp.LE, RHS: memCap},
		ilp.Constraint{Coeffs: diskRow, Rel: ilp.LE, RHS: float64(b.ilpDiskCapacity)},
	)
	return prob
}

// solveBoundaryExecutor mirrors solveExecutor for window boundaries:
// the same knapsack fast path / exact branch-and-bound split and the
// same fallback taxonomy, but warm-started through the bound-only delta
// entry points and fingerprinted with distinct memo kind markers (2 for
// boundary knapsacks, 3 for boundary ILPs) so boundary solutions never
// collide with job-start entries.
func (b *Controller) solveBoundaryExecutor(ex *engine.Executor, cands []candidate, warm []bool) solveResult {
	memo := b.memoFor(ex)
	memCap := float64(ex.Mem.Capacity())

	if b.ilpDiskCapacity <= 0 {
		values, weights := b.knapsackInputs(cands)
		key := boundaryKnapKey(values, weights, memCap)
		if prev := memo.exactMatch(key); prev != nil {
			return solveResult{chosen: prev.chosen, vars: len(cands), optimal: true, reused: true}
		}
		chosen, _, nodes, exact := ilp.KnapsackSearchFrom(values, weights, memCap, warm)
		memo.store(key, chosen, exact)
		return solveResult{chosen: chosen, vars: len(cands), nodes: nodes, optimal: exact, fallback: !exact}
	}

	active := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.costD > 0 || c.costR > 0 {
			active = append(active, i)
		}
	}
	chosen := make([]bool, len(cands))
	n := len(active)
	if n == 0 {
		return solveResult{chosen: chosen, optimal: true}
	}
	if n > maxExactVars {
		values, weights := b.knapsackInputs(cands)
		key := boundaryKnapKey(values, weights, memCap)
		if prev := memo.exactMatch(key); prev != nil {
			return solveResult{chosen: prev.chosen, vars: len(cands), fallback: true, reused: true}
		}
		ch, _, nodes, exact := ilp.KnapsackSearchFrom(values, weights, memCap, warm)
		memo.store(key, ch, exact)
		return solveResult{chosen: ch, vars: len(cands), nodes: nodes, fallback: true}
	}

	key := make([]float64, 0, 6+3*n)
	key = append(key, 3, float64(len(cands)), memCap, float64(b.ilpDiskCapacity), boolKey(b.feat.DiskEnabled), float64(n))
	for _, idx := range active {
		c := cands[idx]
		key = append(key, float64(c.size), c.costD*c.weight, c.costR*c.weight)
	}
	if prev := memo.exactMatch(key); prev != nil && len(prev.chosen) == len(cands) {
		return solveResult{chosen: prev.chosen, vars: 3 * n, optimal: true, reused: true}
	}

	prob := b.boundaryProblem(cands, active, memCap)
	sol, err := ilp.SolveFrom(prob, b.incumbentFrom(warm, cands, active), ilp.Options{MaxNodes: ilpNodeBudget})
	if err != nil {
		values, weights := b.knapsackInputs(cands)
		ch, _, nodes, _ := ilp.KnapsackSearchFrom(values, weights, memCap, warm)
		return solveResult{chosen: ch, vars: 3 * n, nodes: nodes, fallback: true}
	}
	for j, idx := range active {
		chosen[idx] = sol.X[3*j] == 1
	}
	memo.store(key, chosen, sol.Optimal)
	return solveResult{chosen: chosen, vars: 3 * n, nodes: sol.Nodes, optimal: sol.Optimal, fallback: !sol.Optimal}
}

// coldSolveExecutor solves the identical boundary instance from scratch
// — no memo consultation, no warm start — for delta verification.
func (b *Controller) coldSolveExecutor(ex *engine.Executor, cands []candidate) solveResult {
	memCap := float64(ex.Mem.Capacity())
	if b.ilpDiskCapacity <= 0 {
		values, weights := b.knapsackInputs(cands)
		chosen, _, nodes, exact := ilp.KnapsackSearch(values, weights, memCap)
		return solveResult{chosen: chosen, vars: len(cands), nodes: nodes, optimal: exact, fallback: !exact}
	}
	active := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.costD > 0 || c.costR > 0 {
			active = append(active, i)
		}
	}
	chosen := make([]bool, len(cands))
	n := len(active)
	if n == 0 {
		return solveResult{chosen: chosen, optimal: true}
	}
	if n > maxExactVars {
		values, weights := b.knapsackInputs(cands)
		ch, _, nodes, _ := ilp.KnapsackSearch(values, weights, memCap)
		return solveResult{chosen: ch, vars: len(cands), nodes: nodes, fallback: true}
	}
	prob := b.boundaryProblem(cands, active, memCap)
	sol, err := ilp.Solve(prob, ilp.Options{MaxNodes: ilpNodeBudget})
	if err != nil {
		values, weights := b.knapsackInputs(cands)
		ch, _, nodes, _ := ilp.KnapsackSearch(values, weights, memCap)
		return solveResult{chosen: ch, vars: 3 * n, nodes: nodes, fallback: true}
	}
	for j, idx := range active {
		chosen[idx] = sol.X[3*j] == 1
	}
	return solveResult{chosen: chosen, vars: 3 * n, nodes: sol.Nodes, optimal: sol.Optimal, fallback: !sol.Optimal}
}

// boundaryKnapKey fingerprints a boundary knapsack instance (kind 2).
func boundaryKnapKey(values, weights []float64, capacity float64) []float64 {
	key := make([]float64, 0, 3+2*len(values))
	key = append(key, 2, float64(len(values)), capacity)
	key = append(key, values...)
	key = append(key, weights...)
	return key
}
