// Package costmodel defines the virtual-time cost model used by the
// simulated cluster.
//
// The paper evaluates Blaze on a physical AWS cluster; this reproduction
// replaces wall-clock measurement with a deterministic virtual clock per
// executor. Tasks charge modeled durations derived from calibrated
// throughput parameters: computation is proportional to the number of
// records processed (weighted by an operator cost class), and I/O is
// proportional to bytes moved divided by device throughput. Because every
// system under comparison is charged from the same parameters, the
// *ratios* between systems — which is what the paper reports — are
// preserved while runs stay fast and reproducible.
package costmodel

import (
	"fmt"
	"reflect"
	"time"
)

// OpClass categorizes operators by their per-record computational cost,
// mirroring the paper's observation (§2.1) that simple operators like map
// and filter use fewer resources than heavy join or groupByKey operators.
type OpClass int

const (
	// OpSource reads or generates input data.
	OpSource OpClass = iota
	// OpLight covers cheap element-wise operators (map, filter).
	OpLight
	// OpMedium covers aggregation-style operators (reduceByKey combiners).
	OpMedium
	// OpHeavy covers expensive operators (join, groupByKey, model updates).
	OpHeavy
)

// String returns the operator class name.
func (c OpClass) String() string {
	switch c {
	case OpSource:
		return "source"
	case OpLight:
		return "light"
	case OpMedium:
		return "medium"
	case OpHeavy:
		return "heavy"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// Params holds the calibrated constants of the cost model. The defaults
// approximate the relative speeds of the paper's testbed (r5a.2xlarge with
// gp2 SSDs and a 10 Gbps network): memory access is free, disk is the
// bottleneck for oversized partitions, and serialization adds a
// workload-dependent multiplier on every disk or network crossing.
type Params struct {
	// DiskReadBps and DiskWriteBps are the disk throughputs in bytes/sec.
	DiskReadBps  float64
	DiskWriteBps float64
	// NetworkBps is the network throughput for shuffle transfers.
	NetworkBps float64
	// SerializeBps is the base (de)serialization throughput in bytes/sec.
	// The time to serialize s bytes is s*SerFactor/SerializeBps.
	SerializeBps float64
	// SerFactor scales serialization cost per workload; the paper observes
	// SVD++ partitions serialize 2.5-6.4x slower than other workloads.
	SerFactor float64
	// SourceBps is the throughput of scanning input data from external
	// storage (HDFS/S3 in the paper's setup). Regenerating a source
	// partition pays its bytes over this throughput in addition to the
	// per-record parse cost, which is what makes recomputation chains
	// that reach the sources expensive. Zero disables the charge.
	SourceBps float64
	// RecordCost maps an operator class to the modeled compute time spent
	// per record processed.
	RecordCost map[OpClass]time.Duration
	// TaskOverhead is the fixed scheduling cost charged per task launch.
	TaskOverhead time.Duration
}

// Default returns the baseline parameter set used throughout the
// evaluation harness. Callers may copy and adjust individual fields.
func Default() Params {
	return Params{
		DiskReadBps:  150 * 1024 * 1024, // ~gp2 SSD sequential read
		DiskWriteBps: 110 * 1024 * 1024,
		NetworkBps:   1.0 * 1024 * 1024 * 1024, // 10 Gbps / 8 ~ 1.25 GB/s shared
		SerializeBps: 400 * 1024 * 1024,
		SerFactor:    1.0,
		RecordCost: map[OpClass]time.Duration{
			OpSource: 150 * time.Nanosecond,
			OpLight:  120 * time.Nanosecond,
			OpMedium: 420 * time.Nanosecond,
			OpHeavy:  1400 * time.Nanosecond,
		},
		TaskOverhead: 2 * time.Millisecond,
	}
}

// IsZero reports whether the parameter set is the zero value — i.e. was
// never populated. Callers use it to distinguish "use the default model"
// from an explicit override. Implemented by deep equality against the
// zero Params so a newly added field can never be silently excluded from
// the check (the failure mode of a hand-written field list).
func (p Params) IsZero() bool {
	return reflect.DeepEqual(p, Params{})
}

// Validate reports an error if any throughput or cost is non-positive,
// which would make the virtual clock go backwards or divide by zero.
func (p Params) Validate() error {
	if p.DiskReadBps <= 0 || p.DiskWriteBps <= 0 {
		return fmt.Errorf("costmodel: disk throughput must be positive (read=%v write=%v)", p.DiskReadBps, p.DiskWriteBps)
	}
	if p.NetworkBps <= 0 {
		return fmt.Errorf("costmodel: network throughput must be positive (%v)", p.NetworkBps)
	}
	if p.SerializeBps <= 0 {
		return fmt.Errorf("costmodel: serialization throughput must be positive (%v)", p.SerializeBps)
	}
	if p.SerFactor <= 0 {
		return fmt.Errorf("costmodel: serialization factor must be positive (%v)", p.SerFactor)
	}
	for _, c := range []OpClass{OpSource, OpLight, OpMedium, OpHeavy} {
		if p.RecordCost[c] <= 0 {
			return fmt.Errorf("costmodel: record cost for %v must be positive", c)
		}
	}
	return nil
}

// Compute returns the modeled computation time for processing n records
// under the given operator class.
func (p Params) Compute(class OpClass, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n) * p.RecordCost[class]
}

// bytesOver converts a byte count and throughput into a duration.
func bytesOver(bytes int64, bps float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bps * float64(time.Second))
}

// Serialize returns the modeled time to serialize (or deserialize) the
// given number of bytes, including the workload serialization factor.
func (p Params) Serialize(bytes int64) time.Duration {
	return bytesOver(int64(float64(bytes)*p.SerFactor), p.SerializeBps)
}

// DiskWrite returns the modeled time to serialize and write bytes to disk.
// Disk writes always pay serialization, matching the paper's accounting
// ("data (de)serialization is included in the disk I/O time", Fig. 4).
func (p Params) DiskWrite(bytes int64) time.Duration {
	return p.Serialize(bytes) + bytesOver(bytes, p.DiskWriteBps)
}

// DiskRead returns the modeled time to read and deserialize bytes from
// disk.
func (p Params) DiskRead(bytes int64) time.Duration {
	return p.Serialize(bytes) + bytesOver(bytes, p.DiskReadBps)
}

// NetTransfer returns the modeled time to move bytes across the network
// during a shuffle.
func (p Params) NetTransfer(bytes int64) time.Duration {
	return bytesOver(bytes, p.NetworkBps)
}

// SourceRead returns the modeled time to scan input bytes from external
// storage when (re)generating a source partition.
func (p Params) SourceRead(bytes int64) time.Duration {
	if p.SourceBps <= 0 {
		return 0
	}
	return bytesOver(bytes, p.SourceBps)
}

// Observed aggregates real measured storage work, for re-deriving the
// model's throughput parameters from a real-bytes run: the bytes moved
// and wall-clock time of pure (de)serialization, and of the combined
// serialize+write and read+deserialize disk operations (the model folds
// serialization into its disk charges, and so do the measurements).
type Observed struct {
	SerializeBytes int64
	SerializeWall  time.Duration
	DiskWriteBytes int64
	DiskWriteWall  time.Duration
	DiskReadBytes  int64
	DiskReadWall   time.Duration
}

// Calibrated returns a copy of p with its throughputs re-derived from
// measured work, the reproduction's analogue of the paper's testbed
// profiling. Serialization throughput is solved first (pure
// (de)serialization divided into its bytes, scaled by SerFactor so the
// workload multiplier stays a separate knob); each disk throughput is
// then solved from its combined measurement by subtracting the
// serialization share, isolating the device time. A category with no
// measurements (zero bytes or wall time) or an inconsistent residual
// (serialization alone exceeding the combined time) leaves the
// corresponding parameter unchanged. Compute costs and overheads are
// not recalibrated.
func (p Params) Calibrated(o Observed) Params {
	out := p
	out.RecordCost = make(map[OpClass]time.Duration, len(p.RecordCost))
	for k, v := range p.RecordCost {
		out.RecordCost[k] = v
	}
	if o.SerializeBytes > 0 && o.SerializeWall > 0 {
		// Serialize(s) = s*SerFactor/SerializeBps, so the base throughput
		// observed at this workload's factor is bytes*SerFactor/wall.
		out.SerializeBps = float64(o.SerializeBytes) * out.SerFactor / o.SerializeWall.Seconds()
	}
	if o.DiskWriteBytes > 0 && o.DiskWriteWall > 0 {
		if dev := o.DiskWriteWall - out.Serialize(o.DiskWriteBytes); dev > 0 {
			out.DiskWriteBps = float64(o.DiskWriteBytes) / dev.Seconds()
		}
	}
	if o.DiskReadBytes > 0 && o.DiskReadWall > 0 {
		if dev := o.DiskReadWall - out.Serialize(o.DiskReadBytes); dev > 0 {
			out.DiskReadBps = float64(o.DiskReadBytes) / dev.Seconds()
		}
	}
	return out
}

// DiskRecoveryCost implements Eq. 3 of the paper: the potential disk
// access cost of a partition is its size divided by the profiled disk
// throughput. When the partition is not yet on disk the cost includes the
// write that the spill would incur; once spilled only the read-back
// remains.
func (p Params) DiskRecoveryCost(bytes int64, alreadyOnDisk bool) time.Duration {
	if alreadyOnDisk {
		return p.DiskRead(bytes)
	}
	return p.DiskWrite(bytes) + p.DiskRead(bytes)
}

// Clock is a virtual clock owned by one executor. The zero value reads
// zero and is ready to use.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative advances are ignored so
// that modeling bugs cannot move time backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is later than now; used at
// stage barriers to synchronize executors.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}
