package costmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.DiskReadBps = 0 },
		func(p *Params) { p.DiskWriteBps = -1 },
		func(p *Params) { p.NetworkBps = 0 },
		func(p *Params) { p.SerializeBps = 0 },
		func(p *Params) { p.SerFactor = 0 },
		func(p *Params) { p.RecordCost[OpHeavy] = 0 },
	}
	for i, mutate := range cases {
		p := Default()
		// Copy the map so mutations do not leak between cases.
		rc := make(map[OpClass]time.Duration, len(p.RecordCost))
		for k, v := range p.RecordCost {
			rc[k] = v
		}
		p.RecordCost = rc
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error, got nil", i)
		}
	}
}

func TestComputeScalesLinearly(t *testing.T) {
	p := Default()
	one := p.Compute(OpLight, 1)
	thousand := p.Compute(OpLight, 1000)
	if thousand != 1000*one {
		t.Fatalf("compute not linear: 1 record=%v, 1000 records=%v", one, thousand)
	}
	if p.Compute(OpLight, 0) != 0 || p.Compute(OpLight, -5) != 0 {
		t.Fatal("compute of non-positive record count should be zero")
	}
}

func TestHeavyCostsMoreThanLight(t *testing.T) {
	p := Default()
	if p.Compute(OpHeavy, 100) <= p.Compute(OpLight, 100) {
		t.Fatal("heavy operator class should cost more than light")
	}
}

func TestDiskWriteIncludesSerialization(t *testing.T) {
	p := Default()
	const size = 64 * 1024 * 1024
	withSer := p.DiskWrite(size)
	p.SerFactor = 3.0
	withHigherSer := p.DiskWrite(size)
	if withHigherSer <= withSer {
		t.Fatalf("higher serialization factor should increase disk write time: %v vs %v", withHigherSer, withSer)
	}
}

func TestDiskRecoveryCostEq3(t *testing.T) {
	p := Default()
	const size = 10 * 1024 * 1024
	full := p.DiskRecoveryCost(size, false)
	readOnly := p.DiskRecoveryCost(size, true)
	if full <= readOnly {
		t.Fatalf("recovery of unspilled partition must include the write: full=%v read=%v", full, readOnly)
	}
	if readOnly != p.DiskRead(size) {
		t.Fatalf("on-disk recovery should equal a read: %v vs %v", readOnly, p.DiskRead(size))
	}
}

func TestZeroBytesZeroCost(t *testing.T) {
	p := Default()
	for _, d := range []time.Duration{p.DiskWrite(0), p.DiskRead(0), p.NetTransfer(0), p.Serialize(0)} {
		if d != 0 {
			t.Fatalf("zero bytes should cost zero time, got %v", d)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Second)
	c.Advance(-3 * time.Second) // ignored
	if c.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", c.Now())
	}
	c.AdvanceTo(2 * time.Second) // earlier, ignored
	if c.Now() != 5*time.Second {
		t.Fatalf("AdvanceTo moved clock backwards: %v", c.Now())
	}
	c.AdvanceTo(9 * time.Second)
	if c.Now() != 9*time.Second {
		t.Fatalf("AdvanceTo failed: %v", c.Now())
	}
}

// Property: virtual I/O costs are monotone non-decreasing in byte count.
func TestCostMonotoneInBytes(t *testing.T) {
	p := Default()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return p.DiskWrite(x) <= p.DiskWrite(y) &&
			p.DiskRead(x) <= p.DiskRead(y) &&
			p.NetTransfer(x) <= p.NetTransfer(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: clocks never run backwards under any sequence of advances.
func TestClockNeverBackwards(t *testing.T) {
	f := func(steps []int32) bool {
		var c Clock
		prev := c.Now()
		for _, s := range steps {
			c.Advance(time.Duration(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpClassString(t *testing.T) {
	cases := map[OpClass]string{
		OpSource:    "source",
		OpLight:     "light",
		OpMedium:    "medium",
		OpHeavy:     "heavy",
		OpClass(42): "OpClass(42)",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestSourceRead(t *testing.T) {
	p := Default()
	if p.SourceRead(1024) != 0 {
		t.Fatal("zero SourceBps should disable the charge")
	}
	p.SourceBps = 1024 * 1024
	got := p.SourceRead(1024 * 1024)
	if got != time.Second {
		t.Fatalf("SourceRead = %v, want 1s", got)
	}
	if p.SourceRead(0) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
}

func TestCalibratedRecoversThroughputs(t *testing.T) {
	p := Default()
	p.SerFactor = 2.0
	// Synthesize measurements from known device speeds: 100 MB/s base
	// serialization (so 50 MB/s effective at SerFactor 2), 200 MB/s disk
	// write, 400 MB/s disk read. The combined disk walls include the
	// serialization share, exactly as the meter records them.
	const mb = 1024 * 1024
	serBps, writeBps, readBps := 100.0*mb, 200.0*mb, 400.0*mb
	bytes := int64(64 * mb)
	serWall := time.Duration(float64(bytes) * p.SerFactor / serBps * float64(time.Second))
	writeWall := serWall + time.Duration(float64(bytes)/writeBps*float64(time.Second))
	readWall := serWall + time.Duration(float64(bytes)/readBps*float64(time.Second))
	cal := p.Calibrated(Observed{
		SerializeBytes: bytes, SerializeWall: serWall,
		DiskWriteBytes: bytes, DiskWriteWall: writeWall,
		DiskReadBytes: bytes, DiskReadWall: readWall,
	})
	within := func(got, want float64) bool {
		r := got / want
		return r > 0.99 && r < 1.01
	}
	if !within(cal.SerializeBps, serBps) {
		t.Errorf("SerializeBps = %.0f, want ~%.0f", cal.SerializeBps, serBps)
	}
	if !within(cal.DiskWriteBps, writeBps) {
		t.Errorf("DiskWriteBps = %.0f, want ~%.0f", cal.DiskWriteBps, writeBps)
	}
	if !within(cal.DiskReadBps, readBps) {
		t.Errorf("DiskReadBps = %.0f, want ~%.0f", cal.DiskReadBps, readBps)
	}
	if err := cal.Validate(); err != nil {
		t.Fatalf("calibrated params invalid: %v", err)
	}
}

func TestCalibratedLeavesGapsUnchanged(t *testing.T) {
	p := Default()
	// No measurements at all: everything unchanged, including the
	// RecordCost map, which must be a copy rather than an alias.
	cal := p.Calibrated(Observed{})
	if cal.SerializeBps != p.SerializeBps || cal.DiskReadBps != p.DiskReadBps || cal.DiskWriteBps != p.DiskWriteBps {
		t.Fatal("empty observations must not change throughputs")
	}
	cal.RecordCost[OpLight] = 1
	if p.RecordCost[OpLight] == 1 {
		t.Fatal("Calibrated must deep-copy RecordCost")
	}
	// Inconsistent residual: the combined disk wall is shorter than the
	// (calibrated) serialization share alone, so the disk throughput
	// cannot be isolated and stays at its default.
	cal = p.Calibrated(Observed{
		SerializeBytes: 1 << 20, SerializeWall: time.Second, // very slow serialization
		DiskWriteBytes: 1 << 20, DiskWriteWall: time.Millisecond,
	})
	if cal.DiskWriteBps != p.DiskWriteBps {
		t.Fatalf("inconsistent residual should leave DiskWriteBps unchanged, got %.0f", cal.DiskWriteBps)
	}
}
