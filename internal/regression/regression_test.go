package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitExactLine(t *testing.T) {
	// y = 3x + 2
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{5, 8, 11, 14, 17}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Slope-3) > 1e-9 || math.Abs(m.Intercept-2) > 1e-9 {
		t.Fatalf("fit = %+v, want slope 3 intercept 2", m)
	}
	if math.Abs(m.Predict(10)-32) > 1e-9 {
		t.Fatalf("predict(10) = %v, want 32", m.Predict(10))
	}
}

func TestFitSinglePoint(t *testing.T) {
	m, err := Fit([]float64{4}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(100) != 7 {
		t.Fatalf("single point should predict the constant, got %v", m.Predict(100))
	}
}

func TestFitDegenerateXs(t *testing.T) {
	m, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict(5)-2) > 1e-9 {
		t.Fatalf("degenerate xs should predict the mean, got %v", m.Predict(5))
	}
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(nil, nil); err != ErrNoData {
		t.Fatalf("expected ErrNoData, got %v", err)
	}
	if _, err := Fit([]float64{1}, []float64{1, 2}); err != ErrNoData {
		t.Fatalf("mismatched lengths should error, got %v", err)
	}
}

func TestPredictNonNegative(t *testing.T) {
	m := Linear{Slope: -10, Intercept: 5}
	if m.PredictNonNegative(100) != 0 {
		t.Fatal("negative prediction should clamp to zero")
	}
	if m.PredictNonNegative(0) != 5 {
		t.Fatal("positive prediction should pass through")
	}
}

func TestSeriesIncremental(t *testing.T) {
	var s Series
	if _, ok := s.Predict(1); ok {
		t.Fatal("empty series should not predict")
	}
	s.Observe(1, 10)
	s.Observe(2, 20)
	v, ok := s.Predict(3)
	if !ok || math.Abs(v-30) > 1e-9 {
		t.Fatalf("predict(3) = %v,%v, want 30,true", v, ok)
	}
	// New observation bends the line; cached fit must refresh.
	s.Observe(3, 10)
	v2, _ := s.Predict(3)
	if v2 >= 30 {
		t.Fatalf("refit should lower the prediction, got %v", v2)
	}
	last, ok := s.Last()
	if !ok || last != 10 {
		t.Fatalf("last = %v,%v, want 10,true", last, ok)
	}
}

// Property: OLS residual sum is (near) orthogonal — the fitted line is a
// stationary point, so perturbing the slope cannot reduce squared error.
func TestFitIsLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sse := func(slope, intercept float64, xs, ys []float64) float64 {
		s := 0.0
		for i := range xs {
			d := ys[i] - (intercept + slope*xs[i])
			s += d * d
		}
		return s
	}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = rng.Float64() * 100
		}
		m, err := Fit(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		base := sse(m.Slope, m.Intercept, xs, ys)
		for _, d := range []float64{-0.1, 0.1} {
			if sse(m.Slope+d, m.Intercept, xs, ys) < base-1e-6 {
				t.Fatalf("trial %d: perturbed slope beats OLS fit", trial)
			}
			if sse(m.Slope, m.Intercept+d, xs, ys) < base-1e-6 {
				t.Fatalf("trial %d: perturbed intercept beats OLS fit", trial)
			}
		}
	}
}

// Property: fitting exact lines recovers them for arbitrary coefficients.
func TestFitRecoversLines(t *testing.T) {
	f := func(a, b int8) bool {
		slope, intercept := float64(a), float64(b)
		xs := []float64{0, 1, 2, 3}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = intercept + slope*x
		}
		m, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(m.Slope-slope) < 1e-6 && math.Abs(m.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
