// Package regression implements the lightweight inductive regression
// Blaze applies to partition metrics (§5.3): for each dataset role, the
// metrics observed during the initial iterations (partition sizes,
// computation times) are fit with a simple linear model over the
// iteration index, and the fitted model predicts the metrics of
// partitions in iterations that have not yet executed.
package regression

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
)

// Linear is an ordinary-least-squares simple linear regression model
// y = Intercept + Slope*x.
type Linear struct {
	Slope     float64
	Intercept float64
	// N is the number of observations the model was fit on.
	N int
}

// ErrNoData is returned when fitting with no observations.
var ErrNoData = errors.New("regression: no observations")

// Fit computes the least-squares line through the points (xs[i], ys[i]).
// With a single observation the model is the constant ys[0]. Degenerate
// inputs (all xs identical) also fall back to the mean, which keeps
// predictions finite.
func Fit(xs, ys []float64) (Linear, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Linear{}, ErrNoData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return Linear{Slope: 0, Intercept: sy / n, N: len(xs)}, nil
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	return Linear{Slope: slope, Intercept: intercept, N: len(xs)}, nil
}

// Predict evaluates the model at x.
func (l Linear) Predict(x float64) float64 {
	return l.Intercept + l.Slope*x
}

// PredictNonNegative evaluates the model at x, clamped at zero; partition
// sizes and computation times are never negative.
func (l Linear) PredictNonNegative(x float64) float64 {
	v := l.Predict(x)
	if v < 0 {
		return 0
	}
	return v
}

// Series is an incrementally built set of (x, y) observations with a
// cached fit, used by the CostLineage to track one metric of one dataset
// role across iterations.
type Series struct {
	xs, ys []float64
	model  Linear
	dirty  bool
}

// Observe appends an observation and invalidates the cached fit.
func (s *Series) Observe(x, y float64) {
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
	s.dirty = true
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.xs) }

// Predict returns the model's non-negative prediction at x, refitting if
// new observations arrived. With no observations it returns 0 and false.
func (s *Series) Predict(x float64) (float64, bool) {
	if len(s.xs) == 0 {
		return 0, false
	}
	if s.dirty {
		m, err := Fit(s.xs, s.ys)
		if err != nil {
			return 0, false
		}
		s.model = m
		s.dirty = false
	}
	return s.model.PredictNonNegative(x), true
}

// Last returns the most recent observation, or false if empty. Callers
// prefer an exact observation over a prediction when one exists.
func (s *Series) Last() (float64, bool) {
	if len(s.ys) == 0 {
		return 0, false
	}
	return s.ys[len(s.ys)-1], true
}

// seriesWire is the gob wire form of a Series: only the raw observations
// travel; the fit is recomputed lazily on the restored side.
type seriesWire struct {
	Xs, Ys []float64
}

// GobEncode serializes the observations (checkpoint support). The cached
// model is not encoded — Predict refits from the observations.
func (s *Series) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(seriesWire{Xs: s.xs, Ys: s.ys}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores the observations and marks the fit stale so the
// next Predict recomputes it.
func (s *Series) GobDecode(data []byte) error {
	var w seriesWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.xs, s.ys = w.Xs, w.Ys
	s.model = Linear{}
	s.dirty = len(s.xs) > 0
	return nil
}
