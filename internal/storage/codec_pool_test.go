package storage

import (
	"bytes"
	"reflect"
	"testing"

	"blaze/internal/dataflow"
)

// TestEncodeRecordsPoolingByteIdentical is the S-regression for the
// pooled codec scratch: reusing gob buffers and staging slices must
// never change the encoded bytes. Block files, checkpoints and the
// real-bytes memory tier all compare or hash encodings, so a pooled
// buffer leaking state (a stale type definition, a dirty backing array)
// would corrupt recovery. The test interleaves encodes of different
// shapes and sizes so the pools are maximally polluted between the
// reference encode and the re-encode.
func TestEncodeRecordsPoolingByteIdentical(t *testing.T) {
	mk := func(n int) []dataflow.Record {
		recs := make([]dataflow.Record, n)
		for i := range recs {
			recs[i] = dataflow.Record{Key: int64(i), Value: float64(i) * 1.5}
		}
		return recs
	}
	targets := [][]dataflow.Record{
		nil,
		{},
		mk(1),
		mk(100),
		{{Key: 1, Value: []float64{1, 2, 3}}, {Key: 2, Value: "str"}, {Key: 3, Value: int64(9)}},
	}
	refs := make([][]byte, len(targets))
	for i, recs := range targets {
		b, err := EncodeRecords(recs)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		refs[i] = b
	}
	// Pollute the pools: big encodes, decodes, other value shapes.
	for round := 0; round < 3; round++ {
		if _, err := EncodeRecords(mk(5000)); err != nil {
			t.Fatal(err)
		}
		big, _ := EncodeRecords(mk(2000))
		if _, err := DecodeRecords(big); err != nil {
			t.Fatal(err)
		}
		for i, recs := range targets {
			b, err := EncodeRecords(recs)
			if err != nil {
				t.Fatalf("round %d encode %d: %v", round, i, err)
			}
			if !bytes.Equal(b, refs[i]) {
				t.Fatalf("round %d: encoding %d changed under pooling:\nref: %x\ngot: %x", round, i, refs[i], b)
			}
			back, err := DecodeRecords(b)
			if err != nil {
				t.Fatalf("round %d decode %d: %v", round, i, err)
			}
			if !reflect.DeepEqual(back, recs) {
				t.Fatalf("round %d: decode %d mismatch:\ngot:  %+v\nwant: %+v", round, i, back, recs)
			}
		}
	}
}

// TestDecodeRecordsZeroFieldsAfterPollution pins the zero-field hazard
// of pooled decode staging: gob omits zero-valued fields on the wire
// and does not clear the destination on decode, so reused staging
// storage must be fully zeroed or a record with Key 0 inherits a stale
// key from the previous decode. (This bug escaped the byte-identity
// test above because its polluting data also started at key 0.)
func TestDecodeRecordsZeroFieldsAfterPollution(t *testing.T) {
	polluter := make([]dataflow.Record, 64)
	for i := range polluter {
		polluter[i] = dataflow.Record{Key: int64(1000 + i), Value: float64(i)}
	}
	pollEnc, err := EncodeRecords(polluter)
	if err != nil {
		t.Fatal(err)
	}
	target := []dataflow.Record{{Key: 0, Value: 7.5}, {Key: 0, Value: 0.0}}
	targetEnc, err := EncodeRecords(target)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		if _, err := DecodeRecords(pollEnc); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRecords(targetEnc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, target) {
			t.Fatalf("round %d: stale staging leaked into decode:\ngot:  %+v\nwant: %+v", round, got, target)
		}
	}
}

// TestDecodeRecordsFreshOutput checks decoded slices never alias pooled
// scratch: mutating one decode's result must not affect a later decode.
func TestDecodeRecordsFreshOutput(t *testing.T) {
	recs := []dataflow.Record{{Key: 1, Value: 1.0}, {Key: 2, Value: 2.0}}
	enc, err := EncodeRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	a, err := DecodeRecords(enc)
	if err != nil {
		t.Fatal(err)
	}
	a[0] = dataflow.Record{Key: 99, Value: 99.0}
	b, err := DecodeRecords(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, recs) {
		t.Fatalf("second decode affected by mutation of the first: %+v", b)
	}
}
