package storage

// Checkpoint-restore entry points: a resumed session re-inserts its
// checkpointed blocks with the exact metadata (access stats, insert
// sequence, stamped recovery cost) of the crashed run, then pins the
// internal counters (insert sequence, peaks, cumulative writes) so
// later behavior — FIFO ordering, peak reporting — is bit-identical to
// a run that never crashed. Restored admissions still pass through the
// quota controller: re-admitting a tenant's surviving blocks is what
// re-balances the ledger after the crash zeroed it.

import (
	"fmt"
	"os"
	"time"

	"blaze/internal/dataflow"
)

// Restore inserts a checkpointed block with its original metadata. The
// store must not already hold the block; capacity and tenant quota are
// enforced exactly as at first admission.
func (m *MemoryStore) Restore(meta BlockMeta, recs []dataflow.Record) error {
	id := meta.ID
	if _, exists := m.blocks[id]; exists {
		return fmt.Errorf("storage: restore: block %v already in memory", id)
	}
	if meta.Size > m.Free() {
		return fmt.Errorf("storage: restore: block %v (%d bytes) exceeds free memory (%d bytes)", id, meta.Size, m.Free())
	}
	if m.quota != nil && !m.quota.Admit(id, meta.Size) {
		return fmt.Errorf("storage: restore: block %v (%d bytes) exceeds tenant %q memory quota", id, meta.Size, m.quota.Owner(id))
	}
	var data []byte
	if m.real {
		start := time.Now()
		d, err := EncodeRecords(recs)
		if err != nil {
			if m.quota != nil {
				m.quota.Release(id, meta.Size)
			}
			return fmt.Errorf("storage: restore: block %v failed to encode: %w", id, err)
		}
		m.meter.addMeasured(MemEncode, int64(len(d)), time.Since(start))
		data = d
		recs = nil
	}
	mc := meta
	m.blocks[id] = &memEntry{records: recs, data: data, meta: &mc}
	m.used += meta.Size
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Records returns a block's records without touching its access
// statistics — checkpoint capture must not perturb the LRU/LFU state it
// is snapshotting. Real-mode entries decode outside the decode cache so
// the cache's contents (and its measured hit counters) stay untouched.
func (m *MemoryStore) Records(id BlockID) ([]dataflow.Record, bool) {
	e, ok := m.blocks[id]
	if !ok {
		return nil, false
	}
	if !m.real {
		return e.records, true
	}
	recs, err := DecodeRecords(e.data)
	if err != nil {
		return nil, false
	}
	return recs, true
}

// Counters returns the store's insert sequence and peak usage for a
// checkpoint.
func (m *MemoryStore) Counters() (seq, peak int64) { return m.seq, m.peak }

// SetCounters pins the insert sequence and peak usage from a
// checkpoint, after all blocks have been Restored.
func (m *MemoryStore) SetCounters(seq, peak int64) {
	m.seq = seq
	if peak > m.peak {
		m.peak = peak
	}
}

// Restore inserts a checkpointed block with its original accounted
// size, without counting it toward TotalWritten (the crashed run
// already wrote it; SetCounters reinstates the cumulative figure).
func (d *DiskStore) Restore(id BlockID, recs []dataflow.Record, size int64) error {
	if _, exists := d.blocks[id]; exists {
		return fmt.Errorf("storage: restore: block %v already on disk", id)
	}
	e := diskEntry{size: size}
	if d.real {
		start := time.Now()
		data, err := EncodeRecords(recs)
		if err != nil {
			return fmt.Errorf("storage: restore: block %v failed to encode: %w", id, err)
		}
		if err := os.WriteFile(d.path(id), data, 0o644); err != nil {
			return fmt.Errorf("storage: restore: block %v: %w", id, err)
		}
		d.meter.addMeasured(DiskWrite, int64(len(data)), time.Since(start))
		d.meter.addFile(int64(len(data)))
		e.fileBytes = int64(len(data))
	} else {
		e.records = recs
	}
	d.blocks[id] = e
	d.current += e.size
	if d.current > d.peak {
		d.peak = d.current
	}
	return nil
}

// Records returns a disk block's records without any metering — the
// checkpoint-capture counterpart of Get.
func (d *DiskStore) Records(id BlockID) ([]dataflow.Record, bool) {
	e, ok := d.blocks[id]
	if !ok {
		return nil, false
	}
	if !d.real {
		return e.records, true
	}
	data, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, false
	}
	recs, err := DecodeRecords(data)
	if err != nil {
		return nil, false
	}
	return recs, true
}

// Counters returns the disk store's peak footprint and cumulative
// written bytes for a checkpoint.
func (d *DiskStore) Counters() (peak, totalWritten int64) { return d.peak, d.totalWritten }

// SetCounters pins the peak footprint and cumulative written bytes from
// a checkpoint, after all blocks have been Restored.
func (d *DiskStore) SetCounters(peak, totalWritten int64) {
	if peak > d.peak {
		d.peak = peak
	}
	if totalWritten > d.totalWritten {
		d.totalWritten = totalWritten
	}
}
