package storage_test

// Fuzz target for the partition codec: EncodeRecords/DecodeRecords must
// be an exact round trip over the registered workload value types, for
// any record mix, including the empty and nil partitions. CI runs the
// seed corpus alongside the ILP fuzz targets (go test -run Fuzz); local
// fuzzing explores further with go test -fuzz=FuzzRecordsRoundTrip.

import (
	"math"
	"reflect"
	"testing"

	"blaze/internal/dataflow"
	"blaze/internal/graphx"
	"blaze/internal/mllib"
	"blaze/internal/storage"
)

func init() {
	// The workload packages register their own types; the fuzz mix also
	// uses these base slice types.
	storage.RegisterValueType([]byte{})
	storage.RegisterValueType([]int64{})
	storage.RegisterValueType("")
}

// fuzzValue derives one registered-type value from the fuzz inputs.
// selector picks the type; the scalars seed its contents.
func fuzzValue(selector uint8, k int64, f float64, s string, b []byte) any {
	if math.IsNaN(f) {
		// NaN round-trips through gob but breaks reflect.DeepEqual;
		// normalize so the comparison below stays meaningful.
		f = 0
	}
	switch selector % 10 {
	case 0:
		return f
	case 1:
		return k
	case 2:
		return s
	case 3:
		return append([]byte(nil), b...)
	case 4:
		return []float64{f, f * 2, -f}
	case 5:
		return []int64{k, -k}
	case 6:
		return graphx.AdjList{Dsts: []int64{k, k + 1, k + 2}}
	case 7:
		return graphx.VertexRank{Adj: []int64{k}, Rank: f}
	case 8:
		return mllib.LabeledPoint{X: []float64{f, f + 1}, Y: f}
	default:
		return mllib.Vector{V: []float64{f}}
	}
}

func FuzzRecordsRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(0), 0.0, "", []byte(nil), uint8(0))
	f.Add(uint8(1), int64(42), 1.5, "hello", []byte{1, 2, 3}, uint8(3))
	f.Add(uint8(6), int64(-7), math.Inf(1), "π", []byte{0xff}, uint8(5))
	f.Add(uint8(8), int64(math.MaxInt64), -0.0, "a\x00b", []byte{}, uint8(7))
	f.Add(uint8(9), int64(math.MinInt64), math.SmallestNonzeroFloat64, "長い文字列", []byte("gob"), uint8(255))

	f.Fuzz(func(t *testing.T, selector uint8, k int64, fv float64, s string, b []byte, n uint8) {
		// n%4 == 0 exercises the degenerate partitions: nil and empty.
		var recs []dataflow.Record
		switch {
		case n%4 == 0:
			recs = nil
		case n%4 == 1:
			recs = []dataflow.Record{}
		default:
			recs = make([]dataflow.Record, int(n%16)+1)
			for i := range recs {
				recs[i] = dataflow.Record{
					Key:   k + int64(i),
					Value: fuzzValue(selector+uint8(i), k+int64(i), fv, s, b),
				}
			}
		}

		data, err := storage.EncodeRecords(recs)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := storage.DecodeRecords(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if (recs == nil) != (back == nil) {
			t.Fatalf("nilness lost: in nil=%v out nil=%v", recs == nil, back == nil)
		}
		if len(back) != len(recs) {
			t.Fatalf("%d records became %d", len(recs), len(back))
		}
		for i := range recs {
			if back[i].Key != recs[i].Key {
				t.Fatalf("record %d: key %d became %d", i, recs[i].Key, back[i].Key)
			}
			if !reflect.DeepEqual(normalizeEmpty(back[i].Value), normalizeEmpty(recs[i].Value)) {
				t.Fatalf("record %d: value %#v became %#v", i, recs[i].Value, back[i].Value)
			}
		}
	})
}

// normalizeEmpty maps empty byte slices to nil: gob does not preserve
// the nil-vs-empty distinction inside values (only the codec's
// partition-level wrapper does, by design), so the value comparison
// treats them as equal.
func normalizeEmpty(v any) any {
	if b, ok := v.([]byte); ok && len(b) == 0 {
		return []byte(nil)
	}
	return v
}
