package storage

import (
	"sync"
	"time"
)

// OpCategory names one class of real storage work the meter aggregates.
// The categories are aligned with the virtual cost model's charges so a
// measured-vs-modeled ratio is meaningful per category:
//
//	MemEncode — serializing a partition into the byte-backed memory
//	            store (modeled counterpart: the AlluxioMode admission
//	            serialization charge; zero outside AlluxioMode, where
//	            the model treats memory caching as free).
//	MemDecode — deserializing a partition on a memory-store read
//	            (modeled counterpart: the AlluxioMode per-read charge).
//	DiskWrite — serializing and writing a block file (modeled
//	            counterpart: Params.DiskWrite, which includes the
//	            serialization the paper folds into disk I/O time).
//	DiskRead  — reading and deserializing a block file (modeled
//	            counterpart: Params.DiskRead).
type OpCategory int

// The meter categories.
const (
	MemEncode OpCategory = iota
	MemDecode
	DiskWrite
	DiskRead
	numOpCategories
)

// String names the category as it appears in reports.
func (c OpCategory) String() string {
	switch c {
	case MemEncode:
		return "mem-encode"
	case MemDecode:
		return "mem-decode"
	case DiskWrite:
		return "disk-write"
	case DiskRead:
		return "disk-read"
	default:
		return "unknown"
	}
}

// OpStats aggregates one category: how many operations ran, how many
// real serialized bytes they moved, the wall-clock time they took, and
// the virtual time the cost model charged for the same operations.
type OpStats struct {
	Ops     int
	Bytes   int64
	Wall    time.Duration
	Modeled time.Duration
}

// Ratio returns measured wall time over modeled virtual time, or 0 when
// the model charged nothing for this category.
func (s OpStats) Ratio() float64 {
	if s.Modeled <= 0 {
		return 0
	}
	return float64(s.Wall) / float64(s.Modeled)
}

// Meter accumulates the measured storage work of one real-bytes run:
// the stores record wall-clock (de)serialization and file I/O as they
// perform it, and the engine records the virtual time it charged for
// the same operations. Virtual-mode stores carry a nil meter and record
// nothing. All methods are safe for concurrent use (real-bytes stages
// run sequentially, but driver-context promotions and task-context
// reads may interleave with future callers).
type Meter struct {
	mu  sync.Mutex
	ops [numOpCategories]OpStats

	decodeCacheHits int
	filesWritten    int
	fileBytes       int64 // real bytes currently in block files
	fileBytesPeak   int64
}

// NewMeter creates an empty meter.
func NewMeter() *Meter { return &Meter{} }

// addMeasured records one real operation's bytes and wall time.
func (m *Meter) addMeasured(cat OpCategory, bytes int64, wall time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.ops[cat].Ops++
	m.ops[cat].Bytes += bytes
	m.ops[cat].Wall += wall
	m.mu.Unlock()
}

// AddModeled records the virtual time the cost model charged for
// operations in the category. The engine calls it next to each clock
// advance so measured and modeled stay aligned per category.
func (m *Meter) AddModeled(cat OpCategory, virtual time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.ops[cat].Modeled += virtual
	m.mu.Unlock()
}

// addDecodeCacheHit counts a memory-store read served from the decode
// cache (no deserialization performed).
func (m *Meter) addDecodeCacheHit() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.decodeCacheHits++
	m.mu.Unlock()
}

// addFile tracks the real on-disk footprint as block files are written
// (delta > 0) and removed (delta < 0).
func (m *Meter) addFile(delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if delta > 0 {
		m.filesWritten++
	}
	m.fileBytes += delta
	if m.fileBytes > m.fileBytesPeak {
		m.fileBytesPeak = m.fileBytes
	}
	m.mu.Unlock()
}

// MeterSnapshot is a plain copy of a meter's counters, safe to embed in
// reports after a run finishes.
type MeterSnapshot struct {
	MemEncode OpStats
	MemDecode OpStats
	DiskWrite OpStats
	DiskRead  OpStats

	// DecodeCacheHits counts memory-store reads served from the decode
	// cache without paying deserialization.
	DecodeCacheHits int
	// FilesWritten counts block files written; FileBytesPeak is the peak
	// real (serialized) on-disk footprint across all stores sharing the
	// meter. Both refer to real encoded bytes, unlike the estimated
	// sizes the virtual accounting reports.
	FilesWritten  int
	FileBytesPeak int64
}

// Snapshot copies the current counters.
func (m *Meter) Snapshot() MeterSnapshot {
	if m == nil {
		return MeterSnapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MeterSnapshot{
		MemEncode:       m.ops[MemEncode],
		MemDecode:       m.ops[MemDecode],
		DiskWrite:       m.ops[DiskWrite],
		DiskRead:        m.ops[DiskRead],
		DecodeCacheHits: m.decodeCacheHits,
		FilesWritten:    m.filesWritten,
		FileBytesPeak:   m.fileBytesPeak,
	}
}

// Categories lists the snapshot's per-category stats in declaration
// order, for report tables.
func (s MeterSnapshot) Categories() []struct {
	Category OpCategory
	Stats    OpStats
} {
	return []struct {
		Category OpCategory
		Stats    OpStats
	}{
		{MemEncode, s.MemEncode},
		{MemDecode, s.MemDecode},
		{DiskWrite, s.DiskWrite},
		{DiskRead, s.DiskRead},
	}
}
