package storage

import (
	"fmt"
	"sort"
	"sync"
)

// QuotaController arbitrates per-tenant shares of a shared memory tier.
// A MemoryStore with a quota attached charges every admitted block to
// the owning tenant's account and refuses admissions that would push the
// tenant past its limit; the multi-tenant job server implements owners
// by dataset-id range. All methods must be cheap: they run on the block
// admission/removal hot path under the pool's exclusivity lock.
type QuotaController interface {
	// Owner names the tenant a block belongs to ("" = unowned; unowned
	// blocks are never charged or refused).
	Owner(id BlockID) string
	// Allows reports whether admitting size bytes for the block's owner
	// would stay within the owner's limit, without charging anything.
	Allows(id BlockID, size int64) bool
	// Admit charges size bytes to the block's owner, returning false
	// (and charging nothing) if the owner would exceed its limit.
	Admit(id BlockID, size int64) bool
	// Release returns size bytes to the block's owner.
	Release(id BlockID, size int64)
}

// TenantQuota is the concrete QuotaController the job server uses: a
// locked per-tenant usage ledger against configured byte limits, with
// peak and rejection accounting for Stats. The zero limit means
// unlimited. One TenantQuota is shared by every memory store of a pool,
// so limits are cluster-wide, matching how the ILP's memory budget spans
// the pool.
type TenantQuota struct {
	mu         sync.Mutex
	owner      func(BlockID) string
	limits     map[string]int64
	usage      map[string]int64
	peak       map[string]int64
	rejections map[string]int
}

// NewTenantQuota creates a quota ledger resolving block owners through
// the given function (nil treats every block as unowned).
func NewTenantQuota(owner func(BlockID) string) *TenantQuota {
	if owner == nil {
		owner = func(BlockID) string { return "" }
	}
	return &TenantQuota{
		owner:      owner,
		limits:     make(map[string]int64),
		usage:      make(map[string]int64),
		peak:       make(map[string]int64),
		rejections: make(map[string]int),
	}
}

// SetLimit sets a tenant's cluster-wide memory limit in bytes (0 or
// negative = unlimited).
func (q *TenantQuota) SetLimit(tenant string, bytes int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if bytes <= 0 {
		delete(q.limits, tenant)
		return
	}
	q.limits[tenant] = bytes
}

// Limit returns a tenant's limit (0 = unlimited).
func (q *TenantQuota) Limit(tenant string) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.limits[tenant]
}

// Usage returns a tenant's current charged bytes.
func (q *TenantQuota) Usage(tenant string) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.usage[tenant]
}

// Peak returns the maximum bytes ever charged to the tenant — the
// quantity quota-enforcement assertions check against the limit.
func (q *TenantQuota) Peak(tenant string) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.peak[tenant]
}

// Rejections returns how many admissions were refused for the tenant.
func (q *TenantQuota) Rejections(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.rejections[tenant]
}

// Tenants returns every tenant name that has a limit or recorded usage,
// sorted.
func (q *TenantQuota) Tenants() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	seen := make(map[string]bool)
	for t := range q.limits {
		seen[t] = true
	}
	for t := range q.usage {
		seen[t] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Owner implements QuotaController.
func (q *TenantQuota) Owner(id BlockID) string { return q.owner(id) }

// Allows implements QuotaController.
func (q *TenantQuota) Allows(id BlockID, size int64) bool {
	t := q.owner(id)
	if t == "" {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	lim, ok := q.limits[t]
	return !ok || q.usage[t]+size <= lim
}

// Admit implements QuotaController.
func (q *TenantQuota) Admit(id BlockID, size int64) bool {
	t := q.owner(id)
	if t == "" {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if lim, ok := q.limits[t]; ok && q.usage[t]+size > lim {
		q.rejections[t]++
		return false
	}
	q.usage[t] += size
	if q.usage[t] > q.peak[t] {
		q.peak[t] = q.usage[t]
	}
	return true
}

// Release implements QuotaController.
func (q *TenantQuota) Release(id BlockID, size int64) {
	t := q.owner(id)
	if t == "" {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.usage[t] -= size
	if q.usage[t] < 0 {
		panic(fmt.Sprintf("storage: tenant %q quota usage went negative releasing %v", t, id))
	}
}
