// Package storage provides the per-executor block stores that back the
// caching mechanism: a capacity-bounded MemoryStore and a DiskStore, the
// analogues of Spark's MemoryStore and DiskStore (§6). Partition data is
// stored in units of blocks, identified by (dataset, partition).
//
// The stores are mechanism only: which blocks to admit, evict, spill or
// unpersist is decided by a cache controller in internal/engine or
// internal/core. Each store runs in one of two modes:
//
//   - Virtual (the default): records are retained as live Go objects and
//     the cost model charges modeled serialization and device time. This
//     mode is deterministic and bit-identical at any parallelism.
//   - Real bytes: the memory store holds gob-serialized byte buffers
//     (with a bounded decode cache for hot reads) and the disk store
//     writes one file per block under a run-scoped directory. The stores
//     measure the wall-clock (de)serialization and file I/O they perform
//     into a Meter, alongside the virtual charges, so modeled and
//     measured costs can be compared per category.
//
// In both modes capacity accounting uses the analytic size estimates the
// engine passes in, so controller decisions (admission, eviction,
// spilling) are identical across modes; real encoded byte counts are
// tracked separately by the Meter.
package storage

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"blaze/internal/dataflow"
)

// BlockID identifies one cached partition.
type BlockID struct {
	Dataset   int
	Partition int
}

// String renders the block id like "rdd_12_3", following Spark's naming.
func (b BlockID) String() string { return fmt.Sprintf("rdd_%d_%d", b.Dataset, b.Partition) }

// Sized lets workload value types report their in-memory footprint so the
// cache sees realistic, skewed partition sizes (§2.2). The sizing rules
// themselves live in dataflow so columnar batches can report exact
// per-element sizes; these wrappers keep the historical storage API.
type Sized = dataflow.Sized

// ValueSize estimates the in-memory footprint of a record value.
func ValueSize(v any) int64 { return dataflow.ValueSize(v) }

// RecordSize estimates the footprint of one record (16 bytes of header
// plus the value).
func RecordSize(r dataflow.Record) int64 { return dataflow.RecordSize(r) }

// EstimateRecords estimates the footprint of a whole partition.
func EstimateRecords(recs []dataflow.Record) int64 { return dataflow.EstimateRecords(recs) }

// EstimateBatch estimates the footprint of a columnar partition; by
// construction it equals EstimateRecords(b.Records()).
func EstimateBatch(b *dataflow.Batch) int64 { return b.EstimateSize() }

// BlockMeta carries the per-block bookkeeping used by eviction policies
// and by Blaze's cost estimator.
type BlockMeta struct {
	ID   BlockID
	Size int64
	// Executor is the executor the block lives on (blocks are cached
	// where their task ran, §6).
	Executor int

	// LastAccess and AccessCount feed LRU/LFU.
	LastAccess  time.Duration
	AccessCount int
	// InsertSeq feeds FIFO.
	InsertSeq int64
	// RefCount is the number of remaining references in the current job
	// (LRC, Yu et al.).
	RefCount int
	// RefDistance is the number of stages until the next reference
	// (MRD, Perez et al.); large means far in the future.
	RefDistance int
	// Cost is the potential recovery cost in seconds attached by
	// cost-aware controllers.
	Cost float64
}

type memEntry struct {
	records []dataflow.Record // virtual mode: the live objects
	data    []byte            // real mode: the serialized bytes
	meta    *BlockMeta
}

// MemoryStore is a capacity-bounded in-memory block store. In real-bytes
// mode it holds serialized buffers and decodes on read through a bounded
// decode cache.
type MemoryStore struct {
	capacity int64
	used     int64
	peak     int64
	blocks   map[BlockID]*memEntry
	seq      int64

	real  bool
	meter *Meter
	// decode cache: most-recently-read decoded partitions, bounded by
	// cacheCap blocks (0 disables caching, so every read deserializes).
	cacheCap int
	cache    map[BlockID][]dataflow.Record
	cacheLRU []BlockID // oldest first

	// quota, when set, charges every admission to the owning tenant's
	// account and refuses admissions past the tenant's limit (shared-pool
	// multi-tenancy). Nil leaves admission behavior exactly as before.
	quota QuotaController
}

// NewMemoryStore creates a virtual-mode store with the given capacity in
// bytes.
func NewMemoryStore(capacity int64) *MemoryStore {
	return &MemoryStore{capacity: capacity, blocks: make(map[BlockID]*memEntry)}
}

// NewMemoryStoreReal creates a real-bytes store: Put serializes records
// into a byte buffer, Get deserializes through a decode cache holding at
// most decodeCacheBlocks partitions. Measured work is recorded into the
// meter (which may be nil).
func NewMemoryStoreReal(capacity int64, meter *Meter, decodeCacheBlocks int) *MemoryStore {
	m := NewMemoryStore(capacity)
	m.real = true
	m.meter = meter
	m.cacheCap = decodeCacheBlocks
	if m.cacheCap > 0 {
		m.cache = make(map[BlockID][]dataflow.Record, m.cacheCap)
	}
	return m
}

// Real reports whether the store holds serialized bytes.
func (m *MemoryStore) Real() bool { return m.real }

// SetQuota attaches a per-tenant quota controller; admissions charge the
// owning tenant and fail past its limit. Call before any block is stored.
func (m *MemoryStore) SetQuota(q QuotaController) { m.quota = q }

// Quota returns the attached quota controller (nil when none).
func (m *MemoryStore) Quota() QuotaController { return m.quota }

// Capacity returns the configured capacity.
func (m *MemoryStore) Capacity() int64 { return m.capacity }

// Used returns the bytes currently occupied.
func (m *MemoryStore) Used() int64 { return m.used }

// Free returns the bytes available.
func (m *MemoryStore) Free() int64 { return m.capacity - m.used }

// Contains reports whether a block is resident.
func (m *MemoryStore) Contains(id BlockID) bool {
	_, ok := m.blocks[id]
	return ok
}

// Get returns the block's records and metadata, updating access stats.
// In real-bytes mode the records are deserialized from the stored buffer
// unless the decode cache holds them.
func (m *MemoryStore) Get(id BlockID, now time.Duration) ([]dataflow.Record, *BlockMeta, bool) {
	e, ok := m.blocks[id]
	if !ok {
		return nil, nil, false
	}
	e.meta.LastAccess = now
	e.meta.AccessCount++
	if !m.real {
		return e.records, e.meta, true
	}
	return m.decode(id, e), e.meta, true
}

// decode returns the decoded records for a real-mode entry, consulting
// and maintaining the decode cache.
func (m *MemoryStore) decode(id BlockID, e *memEntry) []dataflow.Record {
	if recs, hit := m.cache[id]; hit {
		m.meter.addDecodeCacheHit()
		m.cacheTouch(id)
		return recs
	}
	start := time.Now()
	recs, err := DecodeRecords(e.data)
	if err != nil {
		panic(fmt.Sprintf("storage: memory block %v failed to decode: %v", id, err))
	}
	m.meter.addMeasured(MemDecode, int64(len(e.data)), time.Since(start))
	m.cacheInsert(id, recs)
	return recs
}

func (m *MemoryStore) cacheTouch(id BlockID) {
	for i, c := range m.cacheLRU {
		if c == id {
			m.cacheLRU = append(append(m.cacheLRU[:i:i], m.cacheLRU[i+1:]...), id)
			return
		}
	}
}

func (m *MemoryStore) cacheInsert(id BlockID, recs []dataflow.Record) {
	if m.cacheCap <= 0 {
		return
	}
	if len(m.cacheLRU) >= m.cacheCap {
		oldest := m.cacheLRU[0]
		m.cacheLRU = m.cacheLRU[1:]
		delete(m.cache, oldest)
	}
	m.cache[id] = recs
	m.cacheLRU = append(m.cacheLRU, id)
}

func (m *MemoryStore) cacheDrop(id BlockID) {
	if _, ok := m.cache[id]; !ok {
		return
	}
	delete(m.cache, id)
	for i, c := range m.cacheLRU {
		if c == id {
			m.cacheLRU = append(m.cacheLRU[:i:i], m.cacheLRU[i+1:]...)
			break
		}
	}
}

// Peek returns metadata without touching access stats.
func (m *MemoryStore) Peek(id BlockID) (*BlockMeta, bool) {
	e, ok := m.blocks[id]
	if !ok {
		return nil, false
	}
	return e.meta, true
}

// Put inserts a block. It returns an error if the block would exceed the
// remaining capacity — the caller must evict first, which keeps eviction
// decisions in the controller where they belong. In real-bytes mode the
// records are serialized into the stored buffer (measured into the
// meter); size remains the caller's analytic estimate so capacity
// accounting is identical across modes.
func (m *MemoryStore) Put(id BlockID, recs []dataflow.Record, size int64, executor int, now time.Duration) (*BlockMeta, error) {
	var data []byte
	if m.real {
		start := time.Now()
		d, err := EncodeRecords(recs)
		if err != nil {
			return nil, fmt.Errorf("storage: block %v failed to encode: %w", id, err)
		}
		m.meter.addMeasured(MemEncode, int64(len(d)), time.Since(start))
		data = d
	}
	return m.putEntry(id, recs, data, size, executor, now)
}

// PutEncoded inserts an already-serialized block (real-bytes mode only;
// used to promote a block from disk without a decode/encode round trip).
func (m *MemoryStore) PutEncoded(id BlockID, data []byte, size int64, executor int, now time.Duration) (*BlockMeta, error) {
	if !m.real {
		return nil, fmt.Errorf("storage: PutEncoded on a virtual-mode store")
	}
	return m.putEntry(id, nil, data, size, executor, now)
}

func (m *MemoryStore) putEntry(id BlockID, recs []dataflow.Record, data []byte, size int64, executor int, now time.Duration) (*BlockMeta, error) {
	if _, exists := m.blocks[id]; exists {
		return nil, fmt.Errorf("storage: block %v already in memory", id)
	}
	if size > m.Free() {
		return nil, fmt.Errorf("storage: block %v (%d bytes) exceeds free memory (%d bytes)", id, size, m.Free())
	}
	if m.quota != nil && !m.quota.Admit(id, size) {
		// Backstop: the engine prechecks quotas before charging I/O, so a
		// refusal here means a caller bypassed the precheck.
		return nil, fmt.Errorf("storage: block %v (%d bytes) exceeds tenant %q memory quota", id, size, m.quota.Owner(id))
	}
	m.seq++
	meta := &BlockMeta{
		ID:         id,
		Size:       size,
		Executor:   executor,
		LastAccess: now,
		InsertSeq:  m.seq,
	}
	if m.real {
		recs = nil
	}
	m.blocks[id] = &memEntry{records: recs, data: data, meta: meta}
	m.used += size
	if m.used > m.peak {
		m.peak = m.used
	}
	return meta, nil
}

// PeakUsed returns the maximum bytes ever resident, used to calibrate
// memory-store capacities the way the paper does empirically (§7.1).
func (m *MemoryStore) PeakUsed() int64 { return m.peak }

// Remove drops a block and returns its records (for spilling) and size.
// In real-bytes mode the records return nil — callers that need the
// payload use RemoveEncoded instead, avoiding a decode on eviction.
func (m *MemoryStore) Remove(id BlockID) ([]dataflow.Record, int64, bool) {
	e, ok := m.dropEntry(id)
	if !ok {
		return nil, 0, false
	}
	return e.records, e.meta.Size, true
}

// RemoveEncoded drops a block and returns its serialized bytes
// (real-bytes mode only; used to spill without re-serializing).
func (m *MemoryStore) RemoveEncoded(id BlockID) ([]byte, int64, bool) {
	e, ok := m.dropEntry(id)
	if !ok {
		return nil, 0, false
	}
	return e.data, e.meta.Size, true
}

func (m *MemoryStore) dropEntry(id BlockID) (*memEntry, bool) {
	e, ok := m.blocks[id]
	if !ok {
		return nil, false
	}
	delete(m.blocks, id)
	m.used -= e.meta.Size
	m.cacheDrop(id)
	if m.quota != nil {
		m.quota.Release(id, e.meta.Size)
	}
	return e, true
}

// Blocks returns the metadata of all resident blocks in deterministic
// (dataset, partition) order.
func (m *MemoryStore) Blocks() []*BlockMeta {
	out := make([]*BlockMeta, 0, len(m.blocks))
	for _, e := range m.blocks {
		out = append(out, e.meta)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Dataset != out[j].ID.Dataset {
			return out[i].ID.Dataset < out[j].ID.Dataset
		}
		return out[i].ID.Partition < out[j].ID.Partition
	})
	return out
}

type diskEntry struct {
	records   []dataflow.Record // virtual mode only
	size      int64             // accounted (estimated) size
	fileBytes int64             // real mode: encoded bytes on disk
}

// DiskStore is the secondary block store used by MEM_AND_DISK storage
// levels. It tracks cumulative written bytes and the peak footprint,
// which the evaluation reports (§7.2: "the average total size of data on
// disk reaches 306 GB (peak 427 GB)"). In real-bytes mode each block is
// one file named after its BlockID under the store's directory.
type DiskStore struct {
	blocks       map[BlockID]diskEntry
	current      int64
	peak         int64
	totalWritten int64

	real  bool
	dir   string
	meter *Meter
}

// NewDiskStore creates an empty virtual-mode disk store.
func NewDiskStore() *DiskStore {
	return &DiskStore{blocks: make(map[BlockID]diskEntry)}
}

// NewDiskStoreReal creates a file-backed disk store rooted at dir (which
// must exist). Measured write/read work is recorded into the meter
// (which may be nil).
func NewDiskStoreReal(dir string, meter *Meter) *DiskStore {
	d := NewDiskStore()
	d.real = true
	d.dir = dir
	d.meter = meter
	return d
}

// Real reports whether the store writes actual files.
func (d *DiskStore) Real() bool { return d.real }

// Dir returns the store's directory ("" in virtual mode).
func (d *DiskStore) Dir() string { return d.dir }

// path returns the block's file path, e.g. dir/rdd_12_3.gob.
func (d *DiskStore) path(id BlockID) string {
	return filepath.Join(d.dir, id.String()+".gob")
}

// Contains reports whether a block is on disk.
func (d *DiskStore) Contains(id BlockID) bool {
	_, ok := d.blocks[id]
	return ok
}

// Put writes a block to disk. In real-bytes mode the records are
// serialized and written to the block's file, with the combined
// wall-clock time measured as DiskWrite (the cost model likewise folds
// serialization into its DiskWrite charge).
func (d *DiskStore) Put(id BlockID, recs []dataflow.Record, size int64) error {
	if _, exists := d.blocks[id]; exists {
		return fmt.Errorf("storage: block %v already on disk", id)
	}
	e := diskEntry{size: size}
	if d.real {
		start := time.Now()
		data, err := EncodeRecords(recs)
		if err != nil {
			return fmt.Errorf("storage: block %v failed to encode: %w", id, err)
		}
		if err := os.WriteFile(d.path(id), data, 0o644); err != nil {
			return fmt.Errorf("storage: block %v: %w", id, err)
		}
		d.meter.addMeasured(DiskWrite, int64(len(data)), time.Since(start))
		d.meter.addFile(int64(len(data)))
		e.fileBytes = int64(len(data))
	} else {
		e.records = recs
	}
	d.insert(id, e)
	return nil
}

// PutEncoded writes an already-serialized block to its file (real-bytes
// mode only; used to spill a memory block without re-serializing).
func (d *DiskStore) PutEncoded(id BlockID, data []byte, size int64) error {
	if !d.real {
		return fmt.Errorf("storage: PutEncoded on a virtual-mode store")
	}
	if _, exists := d.blocks[id]; exists {
		return fmt.Errorf("storage: block %v already on disk", id)
	}
	start := time.Now()
	if err := os.WriteFile(d.path(id), data, 0o644); err != nil {
		return fmt.Errorf("storage: block %v: %w", id, err)
	}
	d.meter.addMeasured(DiskWrite, int64(len(data)), time.Since(start))
	d.meter.addFile(int64(len(data)))
	d.insert(id, diskEntry{size: size, fileBytes: int64(len(data))})
	return nil
}

func (d *DiskStore) insert(id BlockID, e diskEntry) {
	d.blocks[id] = e
	d.current += e.size
	d.totalWritten += e.size
	if d.current > d.peak {
		d.peak = d.current
	}
}

// Get reads a block from disk. In real-bytes mode the block's file is
// read and deserialized, with the combined wall-clock time measured as
// DiskRead.
func (d *DiskStore) Get(id BlockID) ([]dataflow.Record, int64, bool) {
	e, ok := d.blocks[id]
	if !ok {
		return nil, 0, false
	}
	if !d.real {
		return e.records, e.size, true
	}
	start := time.Now()
	data, err := os.ReadFile(d.path(id))
	if err != nil {
		panic(fmt.Sprintf("storage: disk block %v unreadable: %v", id, err))
	}
	recs, err := DecodeRecords(data)
	if err != nil {
		panic(fmt.Sprintf("storage: disk block %v failed to decode: %v", id, err))
	}
	d.meter.addMeasured(DiskRead, int64(len(data)), time.Since(start))
	return recs, e.size, true
}

// GetEncoded reads a block's raw bytes without decoding (real-bytes mode
// only; used to promote a block to memory without a decode/encode round
// trip). The read is measured as DiskRead.
func (d *DiskStore) GetEncoded(id BlockID) ([]byte, int64, bool) {
	e, ok := d.blocks[id]
	if !ok || !d.real {
		return nil, 0, false
	}
	start := time.Now()
	data, err := os.ReadFile(d.path(id))
	if err != nil {
		panic(fmt.Sprintf("storage: disk block %v unreadable: %v", id, err))
	}
	d.meter.addMeasured(DiskRead, int64(len(data)), time.Since(start))
	return data, e.size, true
}

// Size returns a block's accounted size without touching its payload
// (no file I/O in real-bytes mode).
func (d *DiskStore) Size(id BlockID) (int64, bool) {
	e, ok := d.blocks[id]
	if !ok {
		return 0, false
	}
	return e.size, true
}

// Remove deletes a block from disk (and its file, in real-bytes mode).
func (d *DiskStore) Remove(id BlockID) (int64, bool) {
	e, ok := d.blocks[id]
	if !ok {
		return 0, false
	}
	delete(d.blocks, id)
	d.current -= e.size
	if d.real {
		if err := os.Remove(d.path(id)); err != nil && !os.IsNotExist(err) {
			panic(fmt.Sprintf("storage: disk block %v: %v", id, err))
		}
		d.meter.addFile(-e.fileBytes)
	}
	return e.size, true
}

// CurrentBytes returns the live disk footprint.
func (d *DiskStore) CurrentBytes() int64 { return d.current }

// PeakBytes returns the maximum footprint ever reached.
func (d *DiskStore) PeakBytes() int64 { return d.peak }

// TotalWritten returns cumulative bytes ever written.
func (d *DiskStore) TotalWritten() int64 { return d.totalWritten }

// Blocks returns the ids of all on-disk blocks in deterministic order.
func (d *DiskStore) Blocks() []BlockID {
	out := make([]BlockID, 0, len(d.blocks))
	for id := range d.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Partition < out[j].Partition
	})
	return out
}

// gobRecord mirrors dataflow.Record for encoding.
type gobRecord struct {
	Key   int64
	Value any
}

// gobPartition is the wire format for one encoded partition. NonNil
// distinguishes an empty partition from a nil one so the round trip is
// exact: gob itself encodes both as zero-length, which would otherwise
// turn empty slices into nil on decode.
type gobPartition struct {
	NonNil bool
	Recs   []gobRecord
}

// RegisterValueType registers a concrete value type with the gob codec;
// workloads call this for their payload types before using the codec.
func RegisterValueType(v any) { gob.Register(v) }

// Codec scratch pools. Every EncodeRecords call used to allocate a fresh
// bytes.Buffer and []gobRecord staging slice, and every DecodeRecords a
// fresh staging slice; on the real-bytes hot path that churn dominated
// allocation profiles. The pools recycle only intermediate scratch: the
// returned []byte and []dataflow.Record are always freshly allocated,
// because callers (the decode cache in particular) retain them. A fresh
// gob.Encoder is created per call either way, so type definitions are
// re-emitted identically and pooling cannot change the encoded bytes
// (TestEncodeRecordsPoolingByteIdentical pins that).
var (
	encBufPool sync.Pool // *bytes.Buffer
	gobRecPool sync.Pool // *[]gobRecord
)

func getGobRecs(n int) []gobRecord {
	if v := gobRecPool.Get(); v != nil {
		s := *(v.(*[]gobRecord))
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]gobRecord, n)
}

func putGobRecs(s []gobRecord) {
	const maxPooled = 1 << 18 // don't pin giant staging arrays
	if cap(s) == 0 || cap(s) > maxPooled {
		return
	}
	// Zero the full capacity, not just the payload references: gob omits
	// zero-valued fields on the wire and does not clear the destination
	// on decode, so a stale Key surviving in reused staging storage would
	// silently corrupt any decoded record whose true Key is 0
	// (TestDecodeRecordsZeroFieldsAfterPollution pins this).
	s = s[:cap(s)]
	clear(s)
	p := new([]gobRecord)
	*p = s[:0]
	gobRecPool.Put(p)
}

// EncodeRecords serializes a partition with encoding/gob. Real-bytes
// stores use it for every cached block; virtual mode uses it to validate
// the analytic size estimator and to exercise a real serialization code
// path in tests.
func EncodeRecords(recs []dataflow.Record) ([]byte, error) {
	staged := getGobRecs(len(recs))
	p := gobPartition{NonNil: recs != nil, Recs: staged}
	for i, r := range recs {
		p.Recs[i] = gobRecord{Key: r.Key, Value: r.Value}
	}
	var buf *bytes.Buffer
	if v := encBufPool.Get(); v != nil {
		buf = v.(*bytes.Buffer)
		buf.Reset()
	} else {
		buf = new(bytes.Buffer)
	}
	err := gob.NewEncoder(buf).Encode(p)
	putGobRecs(staged)
	if err != nil {
		encBufPool.Put(buf)
		return nil, fmt.Errorf("storage: encode: %w", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	encBufPool.Put(buf)
	return out, nil
}

// DecodeRecords deserializes a partition written by EncodeRecords. The
// round trip is exact for empty partitions: an empty (non-nil) slice
// decodes as empty, a nil slice as nil.
func DecodeRecords(data []byte) ([]dataflow.Record, error) {
	p := gobPartition{Recs: getGobRecs(0)}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		putGobRecs(p.Recs)
		return nil, fmt.Errorf("storage: decode: %w", err)
	}
	if !p.NonNil {
		putGobRecs(p.Recs)
		return nil, nil
	}
	out := make([]dataflow.Record, len(p.Recs))
	for i, r := range p.Recs {
		out[i] = dataflow.Record{Key: r.Key, Value: r.Value}
	}
	putGobRecs(p.Recs)
	return out, nil
}
