// Package storage provides the per-executor block stores that back the
// caching mechanism: a capacity-bounded MemoryStore and a DiskStore, the
// analogues of Spark's MemoryStore and DiskStore (§6). Partition data is
// stored in units of blocks, identified by (dataset, partition).
//
// The stores are mechanism only: which blocks to admit, evict, spill or
// unpersist is decided by a cache controller in internal/engine or
// internal/core. The disk store is simulated (records are retained
// in-process) while the cost model charges the modeled serialization and
// device time; an encoding/gob codec is provided to validate the size
// estimator against real serialized sizes.
package storage

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"blaze/internal/dataflow"
)

// BlockID identifies one cached partition.
type BlockID struct {
	Dataset   int
	Partition int
}

// String renders the block id like "rdd_12_3", following Spark's naming.
func (b BlockID) String() string { return fmt.Sprintf("rdd_%d_%d", b.Dataset, b.Partition) }

// Sized lets workload value types report their in-memory footprint so the
// cache sees realistic, skewed partition sizes (§2.2).
type Sized interface {
	SizeBytes() int64
}

// ValueSize estimates the in-memory footprint of a record value.
func ValueSize(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case Sized:
		return x.SizeBytes()
	case bool, int8, uint8:
		return 1
	case int32, uint32, float32:
		return 4
	case int, int64, uint64, float64:
		return 8
	case string:
		return 16 + int64(len(x))
	case []byte:
		return 24 + int64(len(x))
	case []float64:
		return 24 + 8*int64(len(x))
	case []int64:
		return 24 + 8*int64(len(x))
	case []any:
		s := int64(24)
		for _, e := range x {
			s += 16 + ValueSize(e)
		}
		return s
	default:
		return 48
	}
}

// RecordSize estimates the footprint of one record (16 bytes of header
// plus the value).
func RecordSize(r dataflow.Record) int64 { return 16 + ValueSize(r.Value) }

// EstimateRecords estimates the footprint of a whole partition.
func EstimateRecords(recs []dataflow.Record) int64 {
	s := int64(24) // slice header and bookkeeping
	for _, r := range recs {
		s += RecordSize(r)
	}
	return s
}

// BlockMeta carries the per-block bookkeeping used by eviction policies
// and by Blaze's cost estimator.
type BlockMeta struct {
	ID   BlockID
	Size int64
	// Executor is the executor the block lives on (blocks are cached
	// where their task ran, §6).
	Executor int

	// LastAccess and AccessCount feed LRU/LFU.
	LastAccess  time.Duration
	AccessCount int
	// InsertSeq feeds FIFO.
	InsertSeq int64
	// RefCount is the number of remaining references in the current job
	// (LRC, Yu et al.).
	RefCount int
	// RefDistance is the number of stages until the next reference
	// (MRD, Perez et al.); large means far in the future.
	RefDistance int
	// Cost is the potential recovery cost in seconds attached by
	// cost-aware controllers.
	Cost float64
}

type memEntry struct {
	records []dataflow.Record
	meta    *BlockMeta
}

// MemoryStore is a capacity-bounded in-memory block store.
type MemoryStore struct {
	capacity int64
	used     int64
	peak     int64
	blocks   map[BlockID]*memEntry
	seq      int64
}

// NewMemoryStore creates a store with the given capacity in bytes.
func NewMemoryStore(capacity int64) *MemoryStore {
	return &MemoryStore{capacity: capacity, blocks: make(map[BlockID]*memEntry)}
}

// Capacity returns the configured capacity.
func (m *MemoryStore) Capacity() int64 { return m.capacity }

// Used returns the bytes currently occupied.
func (m *MemoryStore) Used() int64 { return m.used }

// Free returns the bytes available.
func (m *MemoryStore) Free() int64 { return m.capacity - m.used }

// Contains reports whether a block is resident.
func (m *MemoryStore) Contains(id BlockID) bool {
	_, ok := m.blocks[id]
	return ok
}

// Get returns the block's records and metadata, updating access stats.
func (m *MemoryStore) Get(id BlockID, now time.Duration) ([]dataflow.Record, *BlockMeta, bool) {
	e, ok := m.blocks[id]
	if !ok {
		return nil, nil, false
	}
	e.meta.LastAccess = now
	e.meta.AccessCount++
	return e.records, e.meta, true
}

// Peek returns metadata without touching access stats.
func (m *MemoryStore) Peek(id BlockID) (*BlockMeta, bool) {
	e, ok := m.blocks[id]
	if !ok {
		return nil, false
	}
	return e.meta, true
}

// Put inserts a block. It returns an error if the block would exceed the
// remaining capacity — the caller must evict first, which keeps eviction
// decisions in the controller where they belong.
func (m *MemoryStore) Put(id BlockID, recs []dataflow.Record, size int64, executor int, now time.Duration) (*BlockMeta, error) {
	if _, exists := m.blocks[id]; exists {
		return nil, fmt.Errorf("storage: block %v already in memory", id)
	}
	if size > m.Free() {
		return nil, fmt.Errorf("storage: block %v (%d bytes) exceeds free memory (%d bytes)", id, size, m.Free())
	}
	m.seq++
	meta := &BlockMeta{
		ID:         id,
		Size:       size,
		Executor:   executor,
		LastAccess: now,
		InsertSeq:  m.seq,
	}
	m.blocks[id] = &memEntry{records: recs, meta: meta}
	m.used += size
	if m.used > m.peak {
		m.peak = m.used
	}
	return meta, nil
}

// PeakUsed returns the maximum bytes ever resident, used to calibrate
// memory-store capacities the way the paper does empirically (§7.1).
func (m *MemoryStore) PeakUsed() int64 { return m.peak }

// Remove drops a block and returns its records (for spilling) and size.
func (m *MemoryStore) Remove(id BlockID) ([]dataflow.Record, int64, bool) {
	e, ok := m.blocks[id]
	if !ok {
		return nil, 0, false
	}
	delete(m.blocks, id)
	m.used -= e.meta.Size
	return e.records, e.meta.Size, true
}

// Blocks returns the metadata of all resident blocks in deterministic
// (dataset, partition) order.
func (m *MemoryStore) Blocks() []*BlockMeta {
	out := make([]*BlockMeta, 0, len(m.blocks))
	for _, e := range m.blocks {
		out = append(out, e.meta)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Dataset != out[j].ID.Dataset {
			return out[i].ID.Dataset < out[j].ID.Dataset
		}
		return out[i].ID.Partition < out[j].ID.Partition
	})
	return out
}

type diskEntry struct {
	records []dataflow.Record
	size    int64
}

// DiskStore is the secondary block store used by MEM_AND_DISK storage
// levels. It tracks cumulative written bytes and the peak footprint,
// which the evaluation reports (§7.2: "the average total size of data on
// disk reaches 306 GB (peak 427 GB)").
type DiskStore struct {
	blocks       map[BlockID]diskEntry
	current      int64
	peak         int64
	totalWritten int64
}

// NewDiskStore creates an empty disk store.
func NewDiskStore() *DiskStore {
	return &DiskStore{blocks: make(map[BlockID]diskEntry)}
}

// Contains reports whether a block is on disk.
func (d *DiskStore) Contains(id BlockID) bool {
	_, ok := d.blocks[id]
	return ok
}

// Put writes a block to disk.
func (d *DiskStore) Put(id BlockID, recs []dataflow.Record, size int64) error {
	if _, exists := d.blocks[id]; exists {
		return fmt.Errorf("storage: block %v already on disk", id)
	}
	d.blocks[id] = diskEntry{records: recs, size: size}
	d.current += size
	d.totalWritten += size
	if d.current > d.peak {
		d.peak = d.current
	}
	return nil
}

// Get reads a block from disk.
func (d *DiskStore) Get(id BlockID) ([]dataflow.Record, int64, bool) {
	e, ok := d.blocks[id]
	if !ok {
		return nil, 0, false
	}
	return e.records, e.size, true
}

// Remove deletes a block from disk.
func (d *DiskStore) Remove(id BlockID) (int64, bool) {
	e, ok := d.blocks[id]
	if !ok {
		return 0, false
	}
	delete(d.blocks, id)
	d.current -= e.size
	return e.size, true
}

// CurrentBytes returns the live disk footprint.
func (d *DiskStore) CurrentBytes() int64 { return d.current }

// PeakBytes returns the maximum footprint ever reached.
func (d *DiskStore) PeakBytes() int64 { return d.peak }

// TotalWritten returns cumulative bytes ever written.
func (d *DiskStore) TotalWritten() int64 { return d.totalWritten }

// Blocks returns the ids of all on-disk blocks in deterministic order.
func (d *DiskStore) Blocks() []BlockID {
	out := make([]BlockID, 0, len(d.blocks))
	for id := range d.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Partition < out[j].Partition
	})
	return out
}

// gobRecord mirrors dataflow.Record for encoding.
type gobRecord struct {
	Key   int64
	Value any
}

// RegisterValueType registers a concrete value type with the gob codec;
// workloads call this for their payload types before using the codec.
func RegisterValueType(v any) { gob.Register(v) }

// EncodeRecords serializes a partition with encoding/gob. It exists to
// validate the analytic size estimator and to exercise a real
// serialization code path in tests.
func EncodeRecords(recs []dataflow.Record) ([]byte, error) {
	rs := make([]gobRecord, len(recs))
	for i, r := range recs {
		rs[i] = gobRecord{Key: r.Key, Value: r.Value}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
		return nil, fmt.Errorf("storage: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRecords deserializes a partition written by EncodeRecords.
func DecodeRecords(data []byte) ([]dataflow.Record, error) {
	var rs []gobRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rs); err != nil {
		return nil, fmt.Errorf("storage: decode: %w", err)
	}
	out := make([]dataflow.Record, len(rs))
	for i, r := range rs {
		out[i] = dataflow.Record{Key: r.Key, Value: r.Value}
	}
	return out, nil
}
