package storage

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"blaze/internal/dataflow"
)

type sizedVal struct{ n int64 }

func (s sizedVal) SizeBytes() int64 { return s.n }

func TestValueSizeKinds(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{nil, 0},
		{int64(3), 8},
		{3.14, 8},
		{int32(1), 4},
		{true, 1},
		{"hello", 21},
		{[]float64{1, 2, 3}, 24 + 24},
		{[]int64{1, 2}, 24 + 16},
		{sizedVal{n: 1000}, 1000},
		{struct{ a, b int }{}, 48}, // fallback
	}
	for _, c := range cases {
		if got := ValueSize(c.v); got != c.want {
			t.Errorf("ValueSize(%#v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestEstimateRecordsAdditive(t *testing.T) {
	recs := []dataflow.Record{
		{Key: 1, Value: int64(1)},
		{Key: 2, Value: []float64{1, 2}},
	}
	want := int64(24) + (16 + 8) + (16 + 24 + 16)
	if got := EstimateRecords(recs); got != want {
		t.Fatalf("EstimateRecords = %d, want %d", got, want)
	}
}

func TestMemoryStorePutGetRemove(t *testing.T) {
	m := NewMemoryStore(1000)
	id := BlockID{Dataset: 1, Partition: 2}
	recs := []dataflow.Record{{Key: 1, Value: int64(5)}}
	meta, err := m.Put(id, recs, 400, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Executor != 3 || meta.Size != 400 {
		t.Fatalf("meta = %+v", meta)
	}
	if m.Used() != 400 || m.Free() != 600 {
		t.Fatalf("used=%d free=%d", m.Used(), m.Free())
	}
	got, gm, ok := m.Get(id, 2*time.Second)
	if !ok || len(got) != 1 || gm.AccessCount != 1 || gm.LastAccess != 2*time.Second {
		t.Fatalf("get: ok=%v meta=%+v", ok, gm)
	}
	if _, _, ok := m.Remove(id); !ok {
		t.Fatal("remove failed")
	}
	if m.Used() != 0 {
		t.Fatalf("used after remove = %d", m.Used())
	}
	if m.Contains(id) {
		t.Fatal("block still present after remove")
	}
}

func TestMemoryStoreRejectsOverflow(t *testing.T) {
	m := NewMemoryStore(100)
	if _, err := m.Put(BlockID{1, 0}, nil, 150, 0, 0); err == nil {
		t.Fatal("expected overflow error")
	}
	if _, err := m.Put(BlockID{1, 0}, nil, 60, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(BlockID{1, 1}, nil, 60, 0, 0); err == nil {
		t.Fatal("second put should overflow")
	}
}

func TestMemoryStoreRejectsDuplicate(t *testing.T) {
	m := NewMemoryStore(100)
	id := BlockID{1, 0}
	if _, err := m.Put(id, nil, 10, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(id, nil, 10, 0, 0); err == nil {
		t.Fatal("duplicate put should fail")
	}
}

func TestMemoryStoreBlocksDeterministicOrder(t *testing.T) {
	m := NewMemoryStore(1000)
	ids := []BlockID{{3, 1}, {1, 2}, {1, 0}, {2, 5}}
	for _, id := range ids {
		if _, err := m.Put(id, nil, 10, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Blocks()
	want := []BlockID{{1, 0}, {1, 2}, {2, 5}, {3, 1}}
	for i, w := range want {
		if got[i].ID != w {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestDiskStoreAccounting(t *testing.T) {
	d := NewDiskStore()
	if err := d.Put(BlockID{1, 0}, nil, 100); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(BlockID{1, 1}, nil, 200); err != nil {
		t.Fatal(err)
	}
	if d.CurrentBytes() != 300 || d.PeakBytes() != 300 || d.TotalWritten() != 300 {
		t.Fatalf("cur=%d peak=%d total=%d", d.CurrentBytes(), d.PeakBytes(), d.TotalWritten())
	}
	if _, ok := d.Remove(BlockID{1, 0}); !ok {
		t.Fatal("remove failed")
	}
	if d.CurrentBytes() != 200 || d.PeakBytes() != 300 {
		t.Fatalf("cur=%d peak=%d after remove", d.CurrentBytes(), d.PeakBytes())
	}
	if err := d.Put(BlockID{1, 2}, nil, 50); err != nil {
		t.Fatal(err)
	}
	if d.TotalWritten() != 350 {
		t.Fatalf("totalWritten = %d, want 350", d.TotalWritten())
	}
	if err := d.Put(BlockID{1, 2}, nil, 50); err == nil {
		t.Fatal("duplicate disk put should fail")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	RegisterValueType([]float64{})
	recs := []dataflow.Record{
		{Key: 1, Value: int64(42)},
		{Key: -7, Value: []float64{1.5, 2.5}},
		{Key: 0, Value: "hello"},
	}
	data, err := EncodeRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip length %d != %d", len(back), len(recs))
	}
	if back[0].Value.(int64) != 42 || back[2].Value.(string) != "hello" {
		t.Fatalf("values corrupted: %+v", back)
	}
	fs := back[1].Value.([]float64)
	if fs[0] != 1.5 || fs[1] != 2.5 {
		t.Fatalf("slice corrupted: %v", fs)
	}
}

// Property: the memory store's used counter always equals the sum of its
// block sizes under arbitrary put/remove sequences.
func TestMemoryStoreAccountingInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMemoryStore(1 << 20)
		live := map[BlockID]int64{}
		for _, op := range ops {
			id := BlockID{Dataset: int(op % 7), Partition: int(op/7) % 5}
			size := int64(op%100) + 1
			if _, ok := live[id]; ok {
				m.Remove(id)
				delete(live, id)
			} else {
				if _, err := m.Put(id, nil, size, 0, 0); err == nil {
					live[id] = size
				}
			}
			var want int64
			for _, s := range live {
				want += s
			}
			if m.Used() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the size estimator is within 4x of the real gob encoding for
// simple payloads — close enough that disk cost ordering is preserved.
func TestEstimateTracksRealEncoding(t *testing.T) {
	f := func(n uint8) bool {
		recs := make([]dataflow.Record, int(n)+1)
		for i := range recs {
			recs[i] = dataflow.Record{Key: int64(i), Value: float64(i) * 1.5}
		}
		est := EstimateRecords(recs)
		data, err := EncodeRecords(recs)
		if err != nil {
			return false
		}
		real := int64(len(data))
		return est >= real/4 && est <= real*4+512
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryStoreAccessors(t *testing.T) {
	m := NewMemoryStore(500)
	if m.Capacity() != 500 {
		t.Fatalf("capacity = %d", m.Capacity())
	}
	if _, ok := m.Peek(BlockID{9, 9}); ok {
		t.Fatal("peek of absent block should fail")
	}
	if _, err := m.Put(BlockID{1, 0}, nil, 100, 2, time.Second); err != nil {
		t.Fatal(err)
	}
	meta, ok := m.Peek(BlockID{1, 0})
	if !ok || meta.Size != 100 || meta.Executor != 2 {
		t.Fatalf("peek = %+v, %v", meta, ok)
	}
	if meta.AccessCount != 0 {
		t.Fatal("peek must not bump access stats")
	}
	if m.PeakUsed() != 100 {
		t.Fatalf("peak = %d", m.PeakUsed())
	}
	m.Remove(BlockID{1, 0})
	if m.PeakUsed() != 100 {
		t.Fatal("peak must persist after removal")
	}
	if _, _, ok := m.Get(BlockID{1, 0}, 0); ok {
		t.Fatal("get after remove should fail")
	}
	if _, _, ok := m.Remove(BlockID{1, 0}); ok {
		t.Fatal("double remove should fail")
	}
}

func TestDiskStoreAccessors(t *testing.T) {
	d := NewDiskStore()
	if d.Contains(BlockID{1, 0}) {
		t.Fatal("empty store contains nothing")
	}
	if _, _, ok := d.Get(BlockID{1, 0}); ok {
		t.Fatal("get of absent block should fail")
	}
	if _, ok := d.Remove(BlockID{1, 0}); ok {
		t.Fatal("remove of absent block should fail")
	}
	recs := []dataflow.Record{{Key: 5, Value: int64(5)}}
	if err := d.Put(BlockID{2, 1}, recs, 64); err != nil {
		t.Fatal(err)
	}
	if !d.Contains(BlockID{2, 1}) {
		t.Fatal("contains should see the block")
	}
	got, size, ok := d.Get(BlockID{2, 1})
	if !ok || size != 64 || len(got) != 1 || got[0].Key != 5 {
		t.Fatalf("get = %v %d %v", got, size, ok)
	}
	if err := d.Put(BlockID{1, 0}, nil, 32); err != nil {
		t.Fatal(err)
	}
	blocks := d.Blocks()
	if len(blocks) != 2 || blocks[0] != (BlockID{1, 0}) || blocks[1] != (BlockID{2, 1}) {
		t.Fatalf("blocks = %v", blocks)
	}
}

func TestValueSizeMoreKinds(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{uint8(1), 1},
		{float32(1), 4},
		{uint32(1), 4},
		{int(7), 8},
		{uint64(7), 8},
		{[]byte("abc"), 27},
		{[]any{int64(1), "ab"}, 24 + (16 + 8) + (16 + 16 + 2)},
	}
	for _, c := range cases {
		if got := ValueSize(c.v); got != c.want {
			t.Errorf("ValueSize(%#v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecords([]byte("not gob data")); err == nil {
		t.Fatal("garbage should not decode")
	}
}

// Regression: the codec round trip must be exact for degenerate
// partitions — an empty (non-nil) slice stays empty and non-nil, a nil
// slice stays nil. gob alone encodes both as zero-length, which used to
// turn empty partitions into nil on decode.
func TestCodecRoundTripEmptyAndNil(t *testing.T) {
	data, err := EncodeRecords([]dataflow.Record{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil {
		t.Fatal("empty partition decoded as nil")
	}
	if len(back) != 0 {
		t.Fatalf("empty partition decoded with %d records", len(back))
	}

	data, err = EncodeRecords(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err = DecodeRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != nil {
		t.Fatalf("nil partition decoded as non-nil: %#v", back)
	}
}

func TestValueSizeNewKinds(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{[]float32{1, 2, 3}, 24 + 12},
		{[]int32{1, 2}, 24 + 8},
		{[]int{1, 2, 3}, 24 + 24},
		{[]string{"ab", "c"}, 24 + (16 + 2) + (16 + 1)},
		{map[int64]float64{1: 1, 2: 2}, 48 + 2*(16+8+8)},
		{map[string]int64{"ab": 1}, 48 + (16 + 16 + 2 + 8)},
		{[]uint32{1, 2}, 24 + (8 + 4) + (8 + 4)}, // reflect slice fallback
		{int16(1), 2},
		{struct{ a, b int }{}, 48}, // non-collection fallback unchanged
	}
	for _, c := range cases {
		if got := ValueSize(c.v); got != c.want {
			t.Errorf("ValueSize(%#v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Map sizing must not depend on iteration order: summation over entries
// is commutative, so repeated calls agree.
func TestValueSizeMapDeterministic(t *testing.T) {
	m := map[int64]string{}
	for i := int64(0); i < 100; i++ {
		m[i] = "v"
	}
	first := ValueSize(m)
	for i := 0; i < 10; i++ {
		if got := ValueSize(m); got != first {
			t.Fatalf("map size changed across calls: %d != %d", got, first)
		}
	}
}

func TestMemoryStoreRealRoundTrip(t *testing.T) {
	RegisterValueType(float64(0))
	meter := NewMeter()
	m := NewMemoryStoreReal(1<<20, meter, 2)
	if !m.Real() {
		t.Fatal("store not in real mode")
	}
	id := BlockID{Dataset: 1, Partition: 0}
	recs := []dataflow.Record{{Key: 1, Value: 1.5}, {Key: 2, Value: 2.5}}
	if _, err := m.Put(id, recs, 128, 0, 0); err != nil {
		t.Fatal(err)
	}
	snap := meter.Snapshot()
	if snap.MemEncode.Ops != 1 || snap.MemEncode.Bytes == 0 {
		t.Fatalf("put not measured as encode: %+v", snap.MemEncode)
	}

	got, _, ok := m.Get(id, time.Second)
	if !ok || len(got) != 2 || got[1].Value.(float64) != 2.5 {
		t.Fatalf("get decoded wrong: %+v ok=%v", got, ok)
	}
	snap = meter.Snapshot()
	if snap.MemDecode.Ops != 1 {
		t.Fatalf("first read must decode: %+v", snap.MemDecode)
	}
	// Second read is served from the decode cache.
	if _, _, ok := m.Get(id, 2*time.Second); !ok {
		t.Fatal("second get failed")
	}
	snap = meter.Snapshot()
	if snap.MemDecode.Ops != 1 || snap.DecodeCacheHits != 1 {
		t.Fatalf("second read must hit the cache: decodes=%+v cacheHits=%d",
			snap.MemDecode, snap.DecodeCacheHits)
	}
}

func TestMemoryStoreDecodeCacheEviction(t *testing.T) {
	RegisterValueType(float64(0))
	meter := NewMeter()
	m := NewMemoryStoreReal(1<<20, meter, 2) // cache holds 2 blocks
	ids := []BlockID{{1, 0}, {1, 1}, {1, 2}}
	for i, id := range ids {
		recs := []dataflow.Record{{Key: int64(i), Value: float64(i)}}
		if _, err := m.Put(id, recs, 64, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids { // decode all three; cache keeps the last two
		m.Get(id, 0)
	}
	if snap := meter.Snapshot(); snap.MemDecode.Ops != 3 {
		t.Fatalf("expected 3 decodes, got %+v", snap.MemDecode)
	}
	m.Get(ids[2], 0) // cached
	m.Get(ids[0], 0) // evicted from cache → decodes again
	snap := meter.Snapshot()
	if snap.DecodeCacheHits != 1 || snap.MemDecode.Ops != 4 {
		t.Fatalf("cache bound not enforced: hits=%d decodes=%+v",
			snap.DecodeCacheHits, snap.MemDecode)
	}
}

func TestMemoryStoreZeroCacheDecodesEveryRead(t *testing.T) {
	RegisterValueType(float64(0))
	meter := NewMeter()
	m := NewMemoryStoreReal(1<<20, meter, 0)
	id := BlockID{1, 0}
	if _, err := m.Put(id, []dataflow.Record{{Key: 1, Value: 1.0}}, 64, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Get(id, 0)
	}
	snap := meter.Snapshot()
	if snap.MemDecode.Ops != 3 || snap.DecodeCacheHits != 0 {
		t.Fatalf("zero-capacity cache must decode every read: %+v hits=%d",
			snap.MemDecode, snap.DecodeCacheHits)
	}
}

func TestMemoryStoreRemoveEncoded(t *testing.T) {
	RegisterValueType(float64(0))
	m := NewMemoryStoreReal(1<<20, nil, 2)
	id := BlockID{1, 0}
	recs := []dataflow.Record{{Key: 3, Value: 4.5}}
	if _, err := m.Put(id, recs, 64, 0, 0); err != nil {
		t.Fatal(err)
	}
	data, size, ok := m.RemoveEncoded(id)
	if !ok || size != 64 || len(data) == 0 {
		t.Fatalf("RemoveEncoded = %d bytes, size %d, ok %v", len(data), size, ok)
	}
	if m.Contains(id) || m.Used() != 0 {
		t.Fatal("block still resident after RemoveEncoded")
	}
	back, err := DecodeRecords(data)
	if err != nil || len(back) != 1 || back[0].Value.(float64) != 4.5 {
		t.Fatalf("encoded payload corrupt: %+v err=%v", back, err)
	}
	// PutEncoded re-admits the same bytes without re-encoding.
	if _, err := m.PutEncoded(id, data, 64, 0, 0); err != nil {
		t.Fatal(err)
	}
	got, _, ok := m.Get(id, 0)
	if !ok || got[0].Value.(float64) != 4.5 {
		t.Fatalf("re-admitted block decoded wrong: %+v", got)
	}
}

func TestDiskStoreRealFiles(t *testing.T) {
	RegisterValueType(float64(0))
	meter := NewMeter()
	d := NewDiskStoreReal(t.TempDir(), meter)
	if !d.Real() {
		t.Fatal("store not in real mode")
	}
	id := BlockID{Dataset: 2, Partition: 3}
	recs := []dataflow.Record{{Key: 1, Value: 9.5}}
	if err := d.Put(id, recs, 100); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(d.Dir(), "rdd_2_3.gob")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("block file missing: %v", err)
	}
	snap := meter.Snapshot()
	if snap.DiskWrite.Ops != 1 || snap.DiskWrite.Bytes != info.Size() {
		t.Fatalf("write not measured: %+v (file %d bytes)", snap.DiskWrite, info.Size())
	}
	if snap.FilesWritten != 1 || snap.FileBytesPeak != info.Size() {
		t.Fatalf("file accounting wrong: files=%d peak=%d", snap.FilesWritten, snap.FileBytesPeak)
	}
	if size, ok := d.Size(id); !ok || size != 100 {
		t.Fatalf("Size = %d, %v", size, ok)
	}

	got, size, ok := d.Get(id)
	if !ok || size != 100 || len(got) != 1 || got[0].Value.(float64) != 9.5 {
		t.Fatalf("get from file wrong: %+v size=%d ok=%v", got, size, ok)
	}
	if snap := meter.Snapshot(); snap.DiskRead.Ops != 1 {
		t.Fatalf("read not measured: %+v", snap.DiskRead)
	}

	data, _, ok := d.GetEncoded(id)
	if !ok || int64(len(data)) != info.Size() {
		t.Fatalf("GetEncoded = %d bytes, ok %v", len(data), ok)
	}

	if _, ok := d.Remove(id); !ok {
		t.Fatal("remove failed")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("remove left the file behind: %v", err)
	}
}

func TestDiskStorePutEncodedSkipsSerialization(t *testing.T) {
	RegisterValueType(float64(0))
	d := NewDiskStoreReal(t.TempDir(), nil)
	data, err := EncodeRecords([]dataflow.Record{{Key: 5, Value: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	id := BlockID{1, 1}
	if err := d.PutEncoded(id, data, 80); err != nil {
		t.Fatal(err)
	}
	got, size, ok := d.Get(id)
	if !ok || size != 80 || got[0].Value.(float64) != 0.5 {
		t.Fatalf("encoded put round trip wrong: %+v size=%d ok=%v", got, size, ok)
	}
	if err := d.PutEncoded(id, data, 80); err == nil {
		t.Fatal("duplicate PutEncoded must fail")
	}
}

func TestVirtualStoresRejectEncodedAPI(t *testing.T) {
	m := NewMemoryStore(1 << 10)
	if _, err := m.PutEncoded(BlockID{1, 0}, []byte("x"), 8, 0, 0); err == nil {
		t.Fatal("virtual memory store must reject PutEncoded")
	}
	d := NewDiskStore()
	if err := d.PutEncoded(BlockID{1, 0}, []byte("x"), 8); err == nil {
		t.Fatal("virtual disk store must reject PutEncoded")
	}
	if _, _, ok := d.GetEncoded(BlockID{1, 0}); ok {
		t.Fatal("virtual disk store must not serve GetEncoded")
	}
}
