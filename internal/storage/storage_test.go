package storage

import (
	"testing"
	"testing/quick"
	"time"

	"blaze/internal/dataflow"
)

type sizedVal struct{ n int64 }

func (s sizedVal) SizeBytes() int64 { return s.n }

func TestValueSizeKinds(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{nil, 0},
		{int64(3), 8},
		{3.14, 8},
		{int32(1), 4},
		{true, 1},
		{"hello", 21},
		{[]float64{1, 2, 3}, 24 + 24},
		{[]int64{1, 2}, 24 + 16},
		{sizedVal{n: 1000}, 1000},
		{struct{ a, b int }{}, 48}, // fallback
	}
	for _, c := range cases {
		if got := ValueSize(c.v); got != c.want {
			t.Errorf("ValueSize(%#v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestEstimateRecordsAdditive(t *testing.T) {
	recs := []dataflow.Record{
		{Key: 1, Value: int64(1)},
		{Key: 2, Value: []float64{1, 2}},
	}
	want := int64(24) + (16 + 8) + (16 + 24 + 16)
	if got := EstimateRecords(recs); got != want {
		t.Fatalf("EstimateRecords = %d, want %d", got, want)
	}
}

func TestMemoryStorePutGetRemove(t *testing.T) {
	m := NewMemoryStore(1000)
	id := BlockID{Dataset: 1, Partition: 2}
	recs := []dataflow.Record{{Key: 1, Value: int64(5)}}
	meta, err := m.Put(id, recs, 400, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Executor != 3 || meta.Size != 400 {
		t.Fatalf("meta = %+v", meta)
	}
	if m.Used() != 400 || m.Free() != 600 {
		t.Fatalf("used=%d free=%d", m.Used(), m.Free())
	}
	got, gm, ok := m.Get(id, 2*time.Second)
	if !ok || len(got) != 1 || gm.AccessCount != 1 || gm.LastAccess != 2*time.Second {
		t.Fatalf("get: ok=%v meta=%+v", ok, gm)
	}
	if _, _, ok := m.Remove(id); !ok {
		t.Fatal("remove failed")
	}
	if m.Used() != 0 {
		t.Fatalf("used after remove = %d", m.Used())
	}
	if m.Contains(id) {
		t.Fatal("block still present after remove")
	}
}

func TestMemoryStoreRejectsOverflow(t *testing.T) {
	m := NewMemoryStore(100)
	if _, err := m.Put(BlockID{1, 0}, nil, 150, 0, 0); err == nil {
		t.Fatal("expected overflow error")
	}
	if _, err := m.Put(BlockID{1, 0}, nil, 60, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(BlockID{1, 1}, nil, 60, 0, 0); err == nil {
		t.Fatal("second put should overflow")
	}
}

func TestMemoryStoreRejectsDuplicate(t *testing.T) {
	m := NewMemoryStore(100)
	id := BlockID{1, 0}
	if _, err := m.Put(id, nil, 10, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(id, nil, 10, 0, 0); err == nil {
		t.Fatal("duplicate put should fail")
	}
}

func TestMemoryStoreBlocksDeterministicOrder(t *testing.T) {
	m := NewMemoryStore(1000)
	ids := []BlockID{{3, 1}, {1, 2}, {1, 0}, {2, 5}}
	for _, id := range ids {
		if _, err := m.Put(id, nil, 10, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Blocks()
	want := []BlockID{{1, 0}, {1, 2}, {2, 5}, {3, 1}}
	for i, w := range want {
		if got[i].ID != w {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestDiskStoreAccounting(t *testing.T) {
	d := NewDiskStore()
	if err := d.Put(BlockID{1, 0}, nil, 100); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(BlockID{1, 1}, nil, 200); err != nil {
		t.Fatal(err)
	}
	if d.CurrentBytes() != 300 || d.PeakBytes() != 300 || d.TotalWritten() != 300 {
		t.Fatalf("cur=%d peak=%d total=%d", d.CurrentBytes(), d.PeakBytes(), d.TotalWritten())
	}
	if _, ok := d.Remove(BlockID{1, 0}); !ok {
		t.Fatal("remove failed")
	}
	if d.CurrentBytes() != 200 || d.PeakBytes() != 300 {
		t.Fatalf("cur=%d peak=%d after remove", d.CurrentBytes(), d.PeakBytes())
	}
	if err := d.Put(BlockID{1, 2}, nil, 50); err != nil {
		t.Fatal(err)
	}
	if d.TotalWritten() != 350 {
		t.Fatalf("totalWritten = %d, want 350", d.TotalWritten())
	}
	if err := d.Put(BlockID{1, 2}, nil, 50); err == nil {
		t.Fatal("duplicate disk put should fail")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	RegisterValueType([]float64{})
	recs := []dataflow.Record{
		{Key: 1, Value: int64(42)},
		{Key: -7, Value: []float64{1.5, 2.5}},
		{Key: 0, Value: "hello"},
	}
	data, err := EncodeRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip length %d != %d", len(back), len(recs))
	}
	if back[0].Value.(int64) != 42 || back[2].Value.(string) != "hello" {
		t.Fatalf("values corrupted: %+v", back)
	}
	fs := back[1].Value.([]float64)
	if fs[0] != 1.5 || fs[1] != 2.5 {
		t.Fatalf("slice corrupted: %v", fs)
	}
}

// Property: the memory store's used counter always equals the sum of its
// block sizes under arbitrary put/remove sequences.
func TestMemoryStoreAccountingInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMemoryStore(1 << 20)
		live := map[BlockID]int64{}
		for _, op := range ops {
			id := BlockID{Dataset: int(op % 7), Partition: int(op/7) % 5}
			size := int64(op%100) + 1
			if _, ok := live[id]; ok {
				m.Remove(id)
				delete(live, id)
			} else {
				if _, err := m.Put(id, nil, size, 0, 0); err == nil {
					live[id] = size
				}
			}
			var want int64
			for _, s := range live {
				want += s
			}
			if m.Used() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the size estimator is within 4x of the real gob encoding for
// simple payloads — close enough that disk cost ordering is preserved.
func TestEstimateTracksRealEncoding(t *testing.T) {
	f := func(n uint8) bool {
		recs := make([]dataflow.Record, int(n)+1)
		for i := range recs {
			recs[i] = dataflow.Record{Key: int64(i), Value: float64(i) * 1.5}
		}
		est := EstimateRecords(recs)
		data, err := EncodeRecords(recs)
		if err != nil {
			return false
		}
		real := int64(len(data))
		return est >= real/4 && est <= real*4+512
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryStoreAccessors(t *testing.T) {
	m := NewMemoryStore(500)
	if m.Capacity() != 500 {
		t.Fatalf("capacity = %d", m.Capacity())
	}
	if _, ok := m.Peek(BlockID{9, 9}); ok {
		t.Fatal("peek of absent block should fail")
	}
	if _, err := m.Put(BlockID{1, 0}, nil, 100, 2, time.Second); err != nil {
		t.Fatal(err)
	}
	meta, ok := m.Peek(BlockID{1, 0})
	if !ok || meta.Size != 100 || meta.Executor != 2 {
		t.Fatalf("peek = %+v, %v", meta, ok)
	}
	if meta.AccessCount != 0 {
		t.Fatal("peek must not bump access stats")
	}
	if m.PeakUsed() != 100 {
		t.Fatalf("peak = %d", m.PeakUsed())
	}
	m.Remove(BlockID{1, 0})
	if m.PeakUsed() != 100 {
		t.Fatal("peak must persist after removal")
	}
	if _, _, ok := m.Get(BlockID{1, 0}, 0); ok {
		t.Fatal("get after remove should fail")
	}
	if _, _, ok := m.Remove(BlockID{1, 0}); ok {
		t.Fatal("double remove should fail")
	}
}

func TestDiskStoreAccessors(t *testing.T) {
	d := NewDiskStore()
	if d.Contains(BlockID{1, 0}) {
		t.Fatal("empty store contains nothing")
	}
	if _, _, ok := d.Get(BlockID{1, 0}); ok {
		t.Fatal("get of absent block should fail")
	}
	if _, ok := d.Remove(BlockID{1, 0}); ok {
		t.Fatal("remove of absent block should fail")
	}
	recs := []dataflow.Record{{Key: 5, Value: int64(5)}}
	if err := d.Put(BlockID{2, 1}, recs, 64); err != nil {
		t.Fatal(err)
	}
	if !d.Contains(BlockID{2, 1}) {
		t.Fatal("contains should see the block")
	}
	got, size, ok := d.Get(BlockID{2, 1})
	if !ok || size != 64 || len(got) != 1 || got[0].Key != 5 {
		t.Fatalf("get = %v %d %v", got, size, ok)
	}
	if err := d.Put(BlockID{1, 0}, nil, 32); err != nil {
		t.Fatal(err)
	}
	blocks := d.Blocks()
	if len(blocks) != 2 || blocks[0] != (BlockID{1, 0}) || blocks[1] != (BlockID{2, 1}) {
		t.Fatalf("blocks = %v", blocks)
	}
}

func TestValueSizeMoreKinds(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{uint8(1), 1},
		{float32(1), 4},
		{uint32(1), 4},
		{int(7), 8},
		{uint64(7), 8},
		{[]byte("abc"), 27},
		{[]any{int64(1), "ab"}, 24 + (16 + 8) + (16 + 16 + 2)},
	}
	for _, c := range cases {
		if got := ValueSize(c.v); got != c.want {
			t.Errorf("ValueSize(%#v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecords([]byte("not gob data")); err == nil {
		t.Fatal("garbage should not decode")
	}
}
