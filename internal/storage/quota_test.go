package storage

import "testing"

func quotaOwner(id BlockID) string {
	switch {
	case id.Dataset < 100:
		return "a"
	case id.Dataset < 200:
		return "b"
	default:
		return ""
	}
}

func TestTenantQuotaLedger(t *testing.T) {
	q := NewTenantQuota(quotaOwner)
	q.SetLimit("a", 100)

	idA := BlockID{Dataset: 1, Partition: 0}
	idB := BlockID{Dataset: 150, Partition: 0}
	idNone := BlockID{Dataset: 300, Partition: 0}

	if !q.Allows(idA, 100) {
		t.Fatal("admission at exactly the limit should be allowed")
	}
	if q.Allows(idA, 101) {
		t.Fatal("admission past the limit should be refused")
	}
	if !q.Admit(idA, 60) || !q.Admit(idA, 40) {
		t.Fatal("admissions within the limit should succeed")
	}
	if q.Admit(idA, 1) {
		t.Fatal("admission past the limit should fail")
	}
	if got := q.Rejections("a"); got != 1 {
		t.Fatalf("rejections = %d, want 1", got)
	}
	if got := q.Usage("a"); got != 100 {
		t.Fatalf("usage = %d, want 100", got)
	}

	// Releasing makes room again; peak stays at the high-water mark.
	q.Release(idA, 40)
	if !q.Admit(idA, 30) {
		t.Fatal("admission after release should succeed")
	}
	if got := q.Peak("a"); got != 100 {
		t.Fatalf("peak = %d, want 100", got)
	}
	if got := q.Usage("a"); got != 90 {
		t.Fatalf("usage = %d, want 90", got)
	}

	// Tenant b has no limit: everything is admitted but still charged.
	if !q.Admit(idB, 1<<40) {
		t.Fatal("unlimited tenant should always admit")
	}
	if got := q.Usage("b"); got != 1<<40 {
		t.Fatalf("unlimited tenant usage = %d, want %d", got, int64(1)<<40)
	}

	// Unowned blocks are never charged.
	if !q.Admit(idNone, 1<<40) {
		t.Fatal("unowned block should always admit")
	}
	if got := q.Usage(""); got != 0 {
		t.Fatalf("unowned usage = %d, want 0", got)
	}

	tenants := q.Tenants()
	if len(tenants) != 2 || tenants[0] != "a" || tenants[1] != "b" {
		t.Fatalf("tenants = %v, want [a b]", tenants)
	}
}

func TestTenantQuotaReleasePanicsOnNegative(t *testing.T) {
	q := NewTenantQuota(quotaOwner)
	defer func() {
		if recover() == nil {
			t.Fatal("negative usage should panic")
		}
	}()
	q.Release(BlockID{Dataset: 1}, 10)
}

func TestMemoryStoreChargesQuota(t *testing.T) {
	q := NewTenantQuota(quotaOwner)
	q.SetLimit("a", 100)
	ms := NewMemoryStore(1 << 20)
	ms.SetQuota(q)

	if _, err := ms.Put(BlockID{Dataset: 1, Partition: 0}, nil, 60, 0, 0); err != nil {
		t.Fatalf("first put should fit the quota: %v", err)
	}
	if _, err := ms.Put(BlockID{Dataset: 2, Partition: 0}, nil, 50, 0, 0); err == nil {
		t.Fatal("second put should be refused by the quota backstop")
	}
	if got := q.Usage("a"); got != 60 {
		t.Fatalf("usage = %d, want 60", got)
	}
	ms.Remove(BlockID{Dataset: 1, Partition: 0})
	if got := q.Usage("a"); got != 0 {
		t.Fatalf("usage after remove = %d, want 0", got)
	}
}
