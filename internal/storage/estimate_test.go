package storage_test

// External-package test: compares the analytic size estimator against
// real gob-encoded sizes for every exported value type the registered
// workloads cache (importing graphx and mllib runs their init-time
// RegisterValueType calls, exactly as the engine sees them). The
// estimator does not have to match gob byte-for-byte — it models
// in-memory footprint, not wire size — but it must stay within a small
// constant factor on realistic partitions so cost ordering between
// blocks is preserved.

import (
	"fmt"
	"testing"

	"blaze/internal/dataflow"
	"blaze/internal/graphx"
	"blaze/internal/mllib"
	"blaze/internal/storage"
)

// workloadPartitions builds one realistic partition per registered
// exported value type, sized like the evaluation workloads' blocks.
func workloadPartitions() map[string][]dataflow.Record {
	adj := func(n, deg int) []dataflow.Record {
		out := make([]dataflow.Record, n)
		for i := range out {
			dsts := make([]int64, deg+i%5)
			for j := range dsts {
				dsts[j] = int64(i + j)
			}
			out[i] = dataflow.Record{Key: int64(i), Value: graphx.AdjList{Dsts: dsts}}
		}
		return out
	}
	ranks := func(n, deg int) []dataflow.Record {
		out := make([]dataflow.Record, n)
		for i := range out {
			adj := make([]int64, deg)
			for j := range adj {
				adj[j] = int64(j)
			}
			out[i] = dataflow.Record{Key: int64(i), Value: graphx.VertexRank{Adj: adj, Rank: float64(i)}}
		}
		return out
	}
	labels := func(n, deg int) []dataflow.Record {
		out := make([]dataflow.Record, n)
		for i := range out {
			adj := make([]int64, deg)
			for j := range adj {
				adj[j] = int64(j)
			}
			out[i] = dataflow.Record{Key: int64(i), Value: graphx.VertexLabel{Adj: adj, Label: int64(i)}}
		}
		return out
	}
	ratings := func(n, k int) []dataflow.Record {
		out := make([]dataflow.Record, n)
		for i := range out {
			items := make([]int64, k)
			scores := make([]float64, k)
			for j := range items {
				items[j] = int64(j)
				scores[j] = float64(j) * 0.5
			}
			out[i] = dataflow.Record{Key: int64(i), Value: graphx.RatingList{Items: items, Scores: scores}}
		}
		return out
	}
	factors := func(n, rank int) []dataflow.Record {
		out := make([]dataflow.Record, n)
		for i := range out {
			v := make([]float64, rank)
			for j := range v {
				v[j] = float64(i + j)
			}
			out[i] = dataflow.Record{Key: int64(i), Value: graphx.Factors{V: v}}
		}
		return out
	}
	points := func(n, dim int) []dataflow.Record {
		out := make([]dataflow.Record, n)
		for i := range out {
			x := make([]float64, dim)
			for j := range x {
				x[j] = float64(i) + float64(j)*0.25
			}
			out[i] = dataflow.Record{Key: int64(i), Value: mllib.LabeledPoint{X: x, Y: float64(i % 2)}}
		}
		return out
	}
	vectors := func(n, dim int) []dataflow.Record {
		out := make([]dataflow.Record, n)
		for i := range out {
			v := make([]float64, dim)
			for j := range v {
				v[j] = float64(i * j)
			}
			out[i] = dataflow.Record{Key: int64(i), Value: mllib.Vector{V: v}}
		}
		return out
	}
	model := func() []dataflow.Record {
		m := mllib.GBTModel{LearnRate: 0.1, Base: 0.5}
		for t := 0; t < 8; t++ {
			m.TreeSplits = append(m.TreeSplits, nil)
			m.TreeLeaves = append(m.TreeLeaves, map[int]float64{})
			for node := 4; node < 8; node++ {
				m.TreeLeaves[t][node] = float64(node)
			}
		}
		return []dataflow.Record{{Key: 0, Value: m}}
	}
	floats := func(n int) []dataflow.Record {
		out := make([]dataflow.Record, n)
		for i := range out {
			out[i] = dataflow.Record{Key: int64(i), Value: float64(i) * 1.5}
		}
		return out
	}
	return map[string][]dataflow.Record{
		"graphx.AdjList":     adj(200, 8),
		"graphx.VertexRank":  ranks(200, 8),
		"graphx.VertexLabel": labels(200, 3),
		"graphx.RatingList":  ratings(100, 12),
		"graphx.Factors":     factors(150, 8),
		"mllib.LabeledPoint": points(250, 16),
		"mllib.Vector":       vectors(100, 8),
		"mllib.GBTModel":     model(),
		"float64":            floats(300),
	}
}

// TestEstimateTracksGobOnWorkloadTypes checks the analytic estimate
// against the real encoded size for each workload value type: within a
// factor of 6 either way (plus slack for tiny partitions, where gob's
// one-time type descriptors dominate).
func TestEstimateTracksGobOnWorkloadTypes(t *testing.T) {
	for name, recs := range workloadPartitions() {
		t.Run(name, func(t *testing.T) {
			est := storage.EstimateRecords(recs)
			data, err := storage.EncodeRecords(recs)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			real := int64(len(data))
			if est < real/6 || est > real*6+1024 {
				t.Errorf("estimate %d vs real gob %d (ratio %.2f) out of band",
					est, real, float64(est)/float64(real))
			}
			t.Logf("estimate %d, gob %d, ratio %.2f", est, real, float64(est)/float64(real))
		})
	}
}

// TestWorkloadTypesRoundTrip ensures every workload partition above
// survives the codec loss-free at the key level and record count (value
// equality is exercised by the engine's VerifyCodec mode and the
// real-bytes stores).
func TestWorkloadTypesRoundTrip(t *testing.T) {
	for name, recs := range workloadPartitions() {
		t.Run(name, func(t *testing.T) {
			data, err := storage.EncodeRecords(recs)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			back, err := storage.DecodeRecords(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(back) != len(recs) {
				t.Fatalf("%d records became %d", len(recs), len(back))
			}
			for i := range recs {
				if back[i].Key != recs[i].Key {
					t.Fatalf("key %d mismatch", i)
				}
				if fmt.Sprintf("%v", back[i].Value) != fmt.Sprintf("%v", recs[i].Value) {
					t.Fatalf("value %d mismatch:\n got %v\nwant %v", i, back[i].Value, recs[i].Value)
				}
			}
		})
	}
}
