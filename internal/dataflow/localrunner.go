package dataflow

// LocalRunner is a reference evaluator that computes datasets naively in
// the driver with unbounded memoization and no cost accounting. It serves
// two purposes:
//
//   - It is the oracle in tests: every caching system must produce the
//     same records the LocalRunner produces.
//   - It powers Blaze's dependency extraction phase (§5.1 step 1): the
//     profiling run executes the workload on a tiny input through a
//     LocalRunner, which records the submitted job DAGs for the
//     CostLineage without any caching behaviour interfering.
type LocalRunner struct {
	ctx *Context

	// JobTargets records the target dataset of every submitted job, in
	// submission order.
	JobTargets []*Dataset
	// Released records datasets the driver program released.
	Released map[int]bool

	memo    map[blockKey][]Record
	buckets map[int][][]Record // shuffleID -> per-child-partition records
}

type blockKey struct {
	ds   int
	part int
}

// NewLocalRunner creates a LocalRunner and installs it on the context.
func NewLocalRunner(ctx *Context) *LocalRunner {
	r := &LocalRunner{
		ctx:      ctx,
		Released: make(map[int]bool),
		memo:     make(map[blockKey][]Record),
		buckets:  make(map[int][][]Record),
	}
	ctx.SetRunner(r)
	return r
}

// RunJob evaluates every partition of target.
func (r *LocalRunner) RunJob(target *Dataset, action string) [][]Record {
	r.JobTargets = append(r.JobTargets, target)
	out := make([][]Record, target.Partitions())
	for p := 0; p < target.Partitions(); p++ {
		out[p] = r.eval(target, p)
	}
	return out
}

// Unpersist is a no-op for the reference evaluator (memoization is not
// a cache under test).
func (r *LocalRunner) Unpersist(d *Dataset) {}

// Release records the release; the profiler uses this to learn which
// datasets the driver program discards.
func (r *LocalRunner) Release(d *Dataset) { r.Released[d.ID()] = true }

func (r *LocalRunner) eval(d *Dataset, part int) []Record {
	key := blockKey{d.ID(), part}
	if recs, ok := r.memo[key]; ok {
		return recs
	}
	ins := make([][]Record, len(d.Deps()))
	for i, dep := range d.Deps() {
		if dep.Shuffle {
			ins[i] = r.shuffleBucket(dep, d.Partitions(), part)
		} else {
			ins[i] = r.eval(dep.Parent, part)
		}
	}
	recs := d.Compute(part, ins)
	r.memo[key] = recs
	return recs
}

func (r *LocalRunner) shuffleBucket(dep Dependency, childParts, part int) []Record {
	if b, ok := r.buckets[dep.ShuffleID]; ok {
		return b[part]
	}
	buckets := make([][]Record, childParts)
	parent := dep.Parent
	for p := 0; p < parent.Partitions(); p++ {
		for _, rec := range r.eval(parent, p) {
			if dep.Broadcast {
				for b := range buckets {
					buckets[b] = append(buckets[b], rec)
				}
			} else {
				b := HashPartition(rec.Key, childParts)
				buckets[b] = append(buckets[b], rec)
			}
		}
	}
	if dep.Combine != nil {
		for i := range buckets {
			buckets[i] = MergeByKey(buckets[i], dep.Combine)
		}
	}
	r.buckets[dep.ShuffleID] = buckets
	return buckets[part]
}
