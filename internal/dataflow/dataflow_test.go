package dataflow

import (
	"sort"
	"testing"
	"testing/quick"
)

// buildInts creates a source of the integers [0, n) spread over parts
// partitions, value = key.
func buildInts(ctx *Context, n, parts int) *Dataset {
	return ctx.Source("ints", parts, func(part int) []Record {
		var out []Record
		for i := part; i < n; i += parts {
			out = append(out, Record{Key: int64(i), Value: int64(i)})
		}
		return out
	})
}

func collectValues(t *testing.T, parts [][]Record) []int64 {
	t.Helper()
	var vals []int64
	for _, p := range parts {
		for _, r := range p {
			vals = append(vals, r.Value.(int64))
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func TestSourceAndCollect(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	ds := buildInts(ctx, 10, 3)
	vals := collectValues(t, ds.Collect())
	if len(vals) != 10 {
		t.Fatalf("collected %d values, want 10", len(vals))
	}
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("vals[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	ds := buildInts(ctx, 10, 2)
	doubled := ds.Map("doubled", func(r Record) Record {
		return Record{Key: r.Key, Value: r.Value.(int64) * 2}
	})
	evens := doubled.Filter("evens", func(r Record) bool { return r.Value.(int64)%4 == 0 })
	pairs := evens.FlatMap("pairs", func(r Record) []Record { return []Record{r, r} })

	vals := collectValues(t, pairs.Collect())
	// doubled = 0,2,..,18; %4==0 → 0,4,8,12,16; duplicated → 10 values.
	if len(vals) != 10 {
		t.Fatalf("got %d values, want 10: %v", len(vals), vals)
	}
	if vals[0] != 0 || vals[9] != 16 {
		t.Fatalf("unexpected values %v", vals)
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	ds := buildInts(ctx, 100, 4)
	// Key by i%5 and sum.
	keyed := ds.Map("keyed", func(r Record) Record {
		return Record{Key: r.Key % 5, Value: int64(1)}
	})
	counts := keyed.ReduceByKey("counts", 3, func(a, b any) any {
		return a.(int64) + b.(int64)
	})
	total := int64(0)
	seen := map[int64]int64{}
	for _, part := range counts.Collect() {
		for _, r := range part {
			seen[r.Key] = r.Value.(int64)
			total += r.Value.(int64)
		}
	}
	if total != 100 {
		t.Fatalf("total count = %d, want 100", total)
	}
	if len(seen) != 5 {
		t.Fatalf("distinct keys = %d, want 5", len(seen))
	}
	for k, v := range seen {
		if v != 20 {
			t.Fatalf("count[%d] = %d, want 20", k, v)
		}
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	ds := buildInts(ctx, 12, 3)
	keyed := ds.Map("keyed", func(r Record) Record {
		return Record{Key: r.Key % 4, Value: r.Value}
	})
	groups := keyed.GroupByKey("groups", 2)
	total := 0
	for _, part := range groups.Collect() {
		for _, r := range part {
			vs := r.Value.([]any)
			if len(vs) != 3 {
				t.Fatalf("group %d has %d values, want 3", r.Key, len(vs))
			}
			total += len(vs)
		}
	}
	if total != 12 {
		t.Fatalf("grouped %d values, want 12", total)
	}
}

func TestShuffleJoin(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	left := ctx.Source("left", 2, func(part int) []Record {
		if part == 0 {
			return []Record{{Key: 1, Value: int64(10)}, {Key: 2, Value: int64(20)}}
		}
		return []Record{{Key: 3, Value: int64(30)}}
	})
	right := ctx.Source("right", 3, func(part int) []Record {
		if part == 0 {
			return []Record{{Key: 1, Value: int64(100)}, {Key: 3, Value: int64(300)}}
		}
		return nil
	})
	joined := ShuffleJoin("joined", 2, left, right, func(_ int, l, r []Record) []Record {
		rv := map[int64]int64{}
		for _, rec := range r {
			rv[rec.Key] = rec.Value.(int64)
		}
		var out []Record
		for _, rec := range l {
			if v, ok := rv[rec.Key]; ok {
				out = append(out, Record{Key: rec.Key, Value: rec.Value.(int64) + v})
			}
		}
		return out
	})
	sums := map[int64]int64{}
	for _, part := range joined.Collect() {
		for _, r := range part {
			sums[r.Key] = r.Value.(int64)
		}
	}
	if len(sums) != 2 || sums[1] != 110 || sums[3] != 330 {
		t.Fatalf("join result = %v, want {1:110, 3:330}", sums)
	}
}

func TestZipRequiresEqualPartitions(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	a := buildInts(ctx, 4, 2)
	b := buildInts(ctx, 4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("zip with unequal partitions should panic")
		}
	}()
	Zip("bad", OpLight, a, b, func(_ int, l, r []Record) []Record { return l })
}

func TestZipCombinesPartitionWise(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	a := buildInts(ctx, 6, 2)
	b := buildInts(ctx, 6, 2)
	summed := Zip("summed", OpLight, a, b, func(_ int, l, r []Record) []Record {
		out := make([]Record, len(l))
		for i := range l {
			out[i] = Record{Key: l[i].Key, Value: l[i].Value.(int64) + r[i].Value.(int64)}
		}
		return out
	})
	vals := collectValues(t, summed.Collect())
	want := []int64{0, 2, 4, 6, 8, 10}
	for i, v := range want {
		if vals[i] != v {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestBarrierBroadcast(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	data := buildInts(ctx, 10, 2)
	// A tiny "model" dataset whose single record must be visible to every
	// partition of the derived dataset.
	model := ctx.Source("model", 1, func(int) []Record {
		return []Record{{Key: 0, Value: int64(100)}}
	})
	shifted := Barrier("shifted", OpLight, data, model, func(_ int, l, bc []Record) []Record {
		base := bc[0].Value.(int64)
		out := make([]Record, len(l))
		for i, r := range l {
			out[i] = Record{Key: r.Key, Value: r.Value.(int64) + base}
		}
		return out
	})
	vals := collectValues(t, shifted.Collect())
	if vals[0] != 100 || vals[9] != 109 {
		t.Fatalf("broadcast shift failed: %v", vals)
	}
}

func TestCacheAnnotations(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	ds := buildInts(ctx, 4, 2)
	if ds.IsCached() {
		t.Fatal("fresh dataset should not be cached")
	}
	ds.Cache()
	if !ds.IsCached() {
		t.Fatal("Cache() should mark the dataset")
	}
	ds.Unpersist()
	if ds.IsCached() {
		t.Fatal("Unpersist() should clear the mark")
	}
}

func TestReleaseRecorded(t *testing.T) {
	ctx := NewContext()
	r := NewLocalRunner(ctx)
	ds := buildInts(ctx, 4, 2)
	ds.Release()
	if !r.Released[ds.ID()] {
		t.Fatal("release not recorded by runner")
	}
}

func TestAncestors(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	a := buildInts(ctx, 4, 2)
	b := a.Map("b", func(r Record) Record { return r })
	c := b.ReduceByKey("c", 2, func(x, y any) any { return x })
	d := Zip("d", OpLight, c, c.Map("c2", func(r Record) Record { return r }),
		func(_ int, l, _ []Record) []Record { return l })

	anc := d.Ancestors()
	ids := map[int]bool{}
	for _, x := range anc {
		ids[x.ID()] = true
	}
	for _, want := range []*Dataset{a, b, c} {
		if !ids[want.ID()] {
			t.Fatalf("ancestors missing %s", want.Name())
		}
	}
	if ids[d.ID()] {
		t.Fatal("dataset should not be its own ancestor")
	}
}

func TestHashPartitionInRange(t *testing.T) {
	f := func(key int64, parts uint8) bool {
		p := int(parts)%64 + 1
		b := HashPartition(key, p)
		return b >= 0 && b < p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashPartitionSpreads(t *testing.T) {
	const parts = 10
	counts := make([]int, parts)
	for k := int64(0); k < 10000; k++ {
		counts[HashPartition(k, parts)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("bucket %d has %d of 10000 keys; hash is too skewed", i, c)
		}
	}
}

func TestJobTargetsRecorded(t *testing.T) {
	ctx := NewContext()
	r := NewLocalRunner(ctx)
	ds := buildInts(ctx, 4, 2)
	ds.Count()
	ds.Map("m", func(rec Record) Record { return rec }).Count()
	if len(r.JobTargets) != 2 {
		t.Fatalf("recorded %d jobs, want 2", len(r.JobTargets))
	}
	if r.JobTargets[0] != ds {
		t.Fatal("first job target mismatch")
	}
}

// Property: MergeByKey conserves the sum for an additive combiner.
func TestMergeByKeyConservesSum(t *testing.T) {
	f := func(keys []uint8) bool {
		var in []Record
		var want int64
		for i, k := range keys {
			in = append(in, Record{Key: int64(k % 7), Value: int64(i)})
			want += int64(i)
		}
		out := MergeByKey(in, func(a, b any) any { return a.(int64) + b.(int64) })
		var got int64
		seen := map[int64]bool{}
		for _, r := range out {
			if seen[r.Key] {
				return false // duplicate key after merge
			}
			seen[r.Key] = true
			got += r.Value.(int64)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapPartitions(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	ds := buildInts(ctx, 12, 3)
	// Per-partition reversal exercises whole-partition transforms.
	rev := ds.MapPartitions("rev", OpMedium, func(part int, in []Record) []Record {
		out := make([]Record, len(in))
		for i, r := range in {
			out[len(in)-1-i] = r
		}
		return out
	})
	if rev.Class() != OpMedium {
		t.Fatal("class not preserved")
	}
	vals := collectValues(t, rev.Collect())
	if len(vals) != 12 || vals[0] != 0 || vals[11] != 11 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSourcePanicsOnBadPartitions(t *testing.T) {
	ctx := NewContext()
	defer func() {
		if recover() == nil {
			t.Fatal("zero partitions should panic")
		}
	}()
	ctx.Source("bad", 0, func(int) []Record { return nil })
}

func TestContextDatasetLookup(t *testing.T) {
	ctx := NewContext()
	NewLocalRunner(ctx)
	a := buildInts(ctx, 4, 2)
	if ctx.Dataset(a.ID()) != a {
		t.Fatal("lookup by id broken")
	}
	if ctx.Dataset(-1) != nil || ctx.Dataset(999) != nil {
		t.Fatal("out-of-range lookup should be nil")
	}
	if len(ctx.Datasets()) != 1 {
		t.Fatalf("registry has %d datasets", len(ctx.Datasets()))
	}
}

func TestCollectWithoutRunnerPanics(t *testing.T) {
	ctx := NewContext()
	ds := ctx.Source("s", 1, func(int) []Record { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("collect without runner should panic")
		}
	}()
	ds.Collect()
}
