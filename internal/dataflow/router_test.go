package dataflow

import (
	"testing"
)

// refPartition is the original modulo implementation of HashPartition
// (splitmix64 finalizer, then %). The Router's mask and fastmod paths
// are pure strength reductions of this expression; bucket assignment is
// a determinism contract — shuffle layouts, adjacency partition
// membership and every historical event log depend on it — so the fast
// paths must agree with the reference on every input, not just be
// well-distributed.
func refPartition(key int64, parts int) int {
	x := uint64(key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(parts))
}

// TestRouterMatchesReference sweeps part counts across the mask path
// (powers of two), the 32-bit-split fastmod path (everything up to
// 65536) and the plain-% fallback, over adversarial and dense key sets.
func TestRouterMatchesReference(t *testing.T) {
	partCounts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
		31, 64, 100, 1000, 4095, 4096, 4097, 65535, 65536, 65537, 70000, 1 << 20}
	keys := []int64{0, 1, 2, 3, -1, -2, 1 << 62, -(1 << 62), 1<<63 - 1, -1 << 63,
		0x5555555555555555, -0x5555555555555556, 123456789, 987654321}
	for i := int64(0); i < 4096; i++ {
		keys = append(keys, i, i*1_000_003, -i*7_777_777)
	}
	for _, parts := range partCounts {
		r := NewRouter(parts)
		if r.Parts() != parts {
			t.Fatalf("Parts()=%d want %d", r.Parts(), parts)
		}
		for _, k := range keys {
			if got, want := r.Bucket(k), refPartition(k, parts); got != want {
				t.Fatalf("parts=%d key=%d: Bucket=%d ref=%d", parts, k, got, want)
			}
			if got, want := HashPartition(k, parts), refPartition(k, parts); got != want {
				t.Fatalf("parts=%d key=%d: HashPartition=%d ref=%d", parts, k, got, want)
			}
		}
	}
}

// TestRouterDistribution is a sanity check that the mix still spreads
// dense keys evenly (no bucket more than 2x the mean over a large
// sample) — the property the original modulo hash provided.
func TestRouterDistribution(t *testing.T) {
	for _, parts := range []int{7, 8, 100} {
		r := NewRouter(parts)
		counts := make([]int, parts)
		const n = 100000
		for k := int64(0); k < n; k++ {
			counts[r.Bucket(k)]++
		}
		mean := n / parts
		for b, c := range counts {
			if c > 2*mean || c < mean/2 {
				t.Errorf("parts=%d bucket %d has %d keys (mean %d)", parts, b, c, mean)
			}
		}
	}
}

func BenchmarkHashPartitionMod(b *testing.B) {
	s := 0
	for i := 0; i < b.N; i++ {
		s += refPartition(int64(i), 100)
	}
	sinkInt = s
}

func BenchmarkHashPartitionRouter(b *testing.B) {
	r := NewRouter(100)
	s := 0
	for i := 0; i < b.N; i++ {
		s += r.Bucket(int64(i))
	}
	sinkInt = s
}

var sinkInt int
