package dataflow

import (
	"reflect"
	"sync"
)

// This file implements the columnar batch representation used by the
// engine's vectorized task loop. A Batch stores one partition as a
// dense key column plus a typed value column, so narrow operator chains
// can run as flat loops without boxing one Record interface value per
// element. The row representation remains the source of truth at every
// storage and driver boundary: batches convert losslessly to and from
// []Record, and EstimateSize matches EstimateRecords on the equivalent
// rows exactly, which is what keeps virtual-time metrics bit-identical
// between the row and batched loops.
//
// Ownership rules (see DESIGN.md "Hot path & columnar execution"):
//   - A batch's backing arrays may come from sync.Pools. Whoever created
//     a batch releases it once its single consumer is done.
//   - Column.Value boxes a copy of any backing storage; boxed values
//     never alias pooled arrays.
//   - Batch kernels must return a fresh batch and must not retain their
//     input batches past the call.
//   - Batches handed to the shuffle service (routed buckets, broadcast
//     outputs) are retained, never released; they outlive the task.

// Column stores the values of one batch.
type Column interface {
	// Len returns the number of values.
	Len() int
	// Value boxes element i. Implementations copy any backing arrays so
	// the boxed value stays valid after the column is released.
	Value(i int) any
	// AppendValue appends a boxed value; it reports false (leaving the
	// column unchanged) if the value's type does not fit this column.
	AppendValue(v any) bool
	// AppendFrom appends element i of src without boxing; it reports
	// false if src is not the same concrete column type.
	AppendFrom(src Column, i int) bool
	// SizeAt returns ValueSize(Value(i)) without boxing.
	SizeAt(i int) int64
	// SizeBytes returns the sum of SizeAt over all elements.
	SizeBytes() int64
	// NewEmpty returns a fresh empty column of the same concrete type.
	NewEmpty(capHint int) Column
	// Release returns pooled backing arrays. The column must not be used
	// afterwards.
	Release()
}

// Batch is the columnar form of one partition's []Record.
type Batch struct {
	Keys []int64
	Col  Column
	// NonNil records whether the equivalent row slice is non-nil. The
	// row operators distinguish the two (Map returns a non-nil empty
	// slice for empty input, FlatMap/Filter return nil), and the gob
	// codec round-trips the distinction, so batches must carry it too.
	NonNil bool
}

// NewBatch returns an empty batch with pooled key storage.
func NewBatch(capHint int) *Batch {
	return &Batch{Keys: GetI64Slice(capHint)}
}

// Len returns the number of records in the batch.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.Keys)
}

// Append adds one record, choosing a typed column from the first value.
func (b *Batch) Append(key int64, v any) {
	b.Keys = append(b.Keys, key)
	if b.Col == nil {
		b.Col = columnFor(v, cap(b.Keys))
	}
	if !b.Col.AppendValue(v) {
		b.migrate()
		b.Col.AppendValue(v)
	}
}

// AppendFromBatch adds record i of src, copying column storage directly
// when the column types match and boxing otherwise.
func (b *Batch) AppendFromBatch(src *Batch, i int) {
	b.Keys = append(b.Keys, src.Keys[i])
	if b.Col == nil {
		b.Col = src.Col.NewEmpty(cap(b.Keys))
	}
	if b.Col.AppendFrom(src.Col, i) {
		return
	}
	v := src.Col.Value(i)
	if b.Col.AppendValue(v) {
		return
	}
	b.migrate()
	b.Col.AppendValue(v)
}

// migrate rebuilds the column as an AnyColumn when a mixed-type value
// arrives, boxing (and thereby copying) the elements appended so far.
func (b *Batch) migrate() {
	old := b.Col
	ac := NewAnyColumn(old.Len() + 8)
	for i := 0; i < old.Len(); i++ {
		ac.Vals = append(ac.Vals, old.Value(i))
	}
	old.Release()
	b.Col = ac
}

// Records boxes the batch back into the row representation, preserving
// the nil-vs-empty distinction.
func (b *Batch) Records() []Record {
	if b == nil || len(b.Keys) == 0 {
		if b != nil && b.NonNil {
			return []Record{}
		}
		return nil
	}
	out := make([]Record, len(b.Keys))
	for i := range out {
		out[i] = Record{Key: b.Keys[i], Value: b.Col.Value(i)}
	}
	return out
}

// FromRecords builds a batch from rows. The batch copies every payload,
// so it stays valid independent of the source slice (which may belong to
// a cache).
func FromRecords(recs []Record) *Batch {
	b := NewBatch(len(recs))
	b.NonNil = recs != nil
	for _, r := range recs {
		b.Append(r.Key, r.Value)
	}
	return b
}

// EstimateSize returns the analytic footprint of the equivalent rows:
// exactly EstimateRecords(b.Records()), computed without boxing.
func (b *Batch) EstimateSize() int64 {
	if b == nil {
		return 24
	}
	s := int64(24) + 16*int64(len(b.Keys))
	if b.Col != nil {
		s += b.Col.SizeBytes()
	}
	return s
}

// Release returns the batch's pooled storage. Safe to call on nil and
// idempotent; the batch must not be used afterwards.
func (b *Batch) Release() {
	if b == nil {
		return
	}
	if b.Keys != nil {
		PutI64Slice(b.Keys)
		b.Keys = nil
	}
	if b.Col != nil {
		b.Col.Release()
		b.Col = nil
	}
	b.NonNil = false
}

// --- slice pools -----------------------------------------------------

// maxPooledCap bounds what the pools retain so a one-off giant partition
// doesn't pin memory forever.
const maxPooledCap = 1 << 21

var (
	i64SlicePool sync.Pool
	f64SlicePool sync.Pool
	i32SlicePool sync.Pool
	anySlicePool sync.Pool
)

// GetI64Slice returns an empty []int64 with at least capHint capacity,
// reusing pooled storage when possible.
func GetI64Slice(capHint int) []int64 {
	if v := i64SlicePool.Get(); v != nil {
		s := *(v.(*[]int64))
		if cap(s) >= capHint {
			return s[:0]
		}
	}
	if capHint < 8 {
		capHint = 8
	}
	return make([]int64, 0, capHint)
}

// PutI64Slice recycles a slice obtained from GetI64Slice.
func PutI64Slice(s []int64) {
	if cap(s) == 0 || cap(s) > maxPooledCap {
		return
	}
	p := new([]int64)
	*p = s[:0]
	i64SlicePool.Put(p)
}

// GetF64Slice returns an empty []float64 with at least capHint capacity.
func GetF64Slice(capHint int) []float64 {
	if v := f64SlicePool.Get(); v != nil {
		s := *(v.(*[]float64))
		if cap(s) >= capHint {
			return s[:0]
		}
	}
	if capHint < 8 {
		capHint = 8
	}
	return make([]float64, 0, capHint)
}

// PutF64Slice recycles a slice obtained from GetF64Slice.
func PutF64Slice(s []float64) {
	if cap(s) == 0 || cap(s) > maxPooledCap {
		return
	}
	p := new([]float64)
	*p = s[:0]
	f64SlicePool.Put(p)
}

// GetI32Slice returns an empty []int32 with at least capHint capacity.
func GetI32Slice(capHint int) []int32 {
	if v := i32SlicePool.Get(); v != nil {
		s := *(v.(*[]int32))
		if cap(s) >= capHint {
			return s[:0]
		}
	}
	if capHint < 8 {
		capHint = 8
	}
	return make([]int32, 0, capHint)
}

// PutI32Slice recycles a slice obtained from GetI32Slice.
func PutI32Slice(s []int32) {
	if cap(s) == 0 || cap(s) > maxPooledCap {
		return
	}
	p := new([]int32)
	*p = s[:0]
	i32SlicePool.Put(p)
}

func getAnySlice(capHint int) []any {
	if v := anySlicePool.Get(); v != nil {
		s := *(v.(*[]any))
		if cap(s) >= capHint {
			return s[:0]
		}
	}
	if capHint < 8 {
		capHint = 8
	}
	return make([]any, 0, capHint)
}

func putAnySlice(s []any) {
	for i := range s {
		s[i] = nil // drop references so the pool doesn't pin values
	}
	if cap(s) == 0 || cap(s) > maxPooledCap {
		return
	}
	p := new([]any)
	*p = s[:0]
	anySlicePool.Put(p)
}

// --- built-in columns ------------------------------------------------

// F64Column stores float64 values (shuffle contributions, partial sums).
type F64Column struct{ Vals []float64 }

// NewF64Column returns an empty float64 column with pooled storage.
func NewF64Column(capHint int) *F64Column { return &F64Column{Vals: GetF64Slice(capHint)} }

func (c *F64Column) Len() int        { return len(c.Vals) }
func (c *F64Column) Value(i int) any { return c.Vals[i] }

func (c *F64Column) AppendValue(v any) bool {
	x, ok := v.(float64)
	if !ok {
		return false
	}
	c.Vals = append(c.Vals, x)
	return true
}

func (c *F64Column) AppendFrom(src Column, i int) bool {
	s, ok := src.(*F64Column)
	if !ok {
		return false
	}
	c.Vals = append(c.Vals, s.Vals[i])
	return true
}

func (c *F64Column) SizeAt(int) int64            { return 8 }
func (c *F64Column) SizeBytes() int64            { return 8 * int64(len(c.Vals)) }
func (c *F64Column) NewEmpty(capHint int) Column { return NewF64Column(capHint) }

func (c *F64Column) Release() {
	PutF64Slice(c.Vals)
	c.Vals = nil
}

// I64Column stores int64 values.
type I64Column struct{ Vals []int64 }

// NewI64Column returns an empty int64 column with pooled storage.
func NewI64Column(capHint int) *I64Column { return &I64Column{Vals: GetI64Slice(capHint)} }

func (c *I64Column) Len() int        { return len(c.Vals) }
func (c *I64Column) Value(i int) any { return c.Vals[i] }

func (c *I64Column) AppendValue(v any) bool {
	x, ok := v.(int64)
	if !ok {
		return false
	}
	c.Vals = append(c.Vals, x)
	return true
}

func (c *I64Column) AppendFrom(src Column, i int) bool {
	s, ok := src.(*I64Column)
	if !ok {
		return false
	}
	c.Vals = append(c.Vals, s.Vals[i])
	return true
}

func (c *I64Column) SizeAt(int) int64            { return 8 }
func (c *I64Column) SizeBytes() int64            { return 8 * int64(len(c.Vals)) }
func (c *I64Column) NewEmpty(capHint int) Column { return NewI64Column(capHint) }

func (c *I64Column) Release() {
	PutI64Slice(c.Vals)
	c.Vals = nil
}

// FloatsColumn stores []float64 values as a flattened struct-of-arrays:
// element i spans Flat[Off[i]:Off[i+1]].
type FloatsColumn struct {
	Off  []int32
	Flat []float64
}

// NewFloatsColumn returns an empty []float64 column with pooled storage.
func NewFloatsColumn(capHint int) *FloatsColumn {
	c := &FloatsColumn{Off: GetI32Slice(capHint + 1), Flat: GetF64Slice(capHint)}
	c.Off = append(c.Off, 0)
	return c
}

func (c *FloatsColumn) Len() int { return len(c.Off) - 1 }

func (c *FloatsColumn) Value(i int) any {
	lo, hi := c.Off[i], c.Off[i+1]
	if lo == hi {
		return []float64(nil)
	}
	out := make([]float64, hi-lo)
	copy(out, c.Flat[lo:hi])
	return out
}

func (c *FloatsColumn) AppendValue(v any) bool {
	x, ok := v.([]float64)
	if !ok {
		return false
	}
	c.Flat = append(c.Flat, x...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *FloatsColumn) AppendFrom(src Column, i int) bool {
	s, ok := src.(*FloatsColumn)
	if !ok {
		return false
	}
	c.Flat = append(c.Flat, s.Flat[s.Off[i]:s.Off[i+1]]...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *FloatsColumn) SizeAt(i int) int64 { return 24 + 8*int64(c.Off[i+1]-c.Off[i]) }

func (c *FloatsColumn) SizeBytes() int64 {
	return 24*int64(c.Len()) + 8*int64(len(c.Flat))
}

func (c *FloatsColumn) NewEmpty(capHint int) Column { return NewFloatsColumn(capHint) }

func (c *FloatsColumn) Release() {
	PutI32Slice(c.Off)
	PutF64Slice(c.Flat)
	c.Off, c.Flat = nil, nil
}

// AnyColumn is the boxed escape hatch: it stores values as-is, so any
// record type works and sizes fall back to ValueSize. Stored values are
// ordinary heap values (never pooled storage), so Value returns them
// without copying.
type AnyColumn struct{ Vals []any }

// NewAnyColumn returns an empty boxed column with pooled storage.
func NewAnyColumn(capHint int) *AnyColumn { return &AnyColumn{Vals: getAnySlice(capHint)} }

func (c *AnyColumn) Len() int        { return len(c.Vals) }
func (c *AnyColumn) Value(i int) any { return c.Vals[i] }

func (c *AnyColumn) AppendValue(v any) bool {
	c.Vals = append(c.Vals, v)
	return true
}

func (c *AnyColumn) AppendFrom(src Column, i int) bool {
	s, ok := src.(*AnyColumn)
	if !ok {
		return false
	}
	c.Vals = append(c.Vals, s.Vals[i])
	return true
}

func (c *AnyColumn) SizeAt(i int) int64 { return ValueSize(c.Vals[i]) }

func (c *AnyColumn) SizeBytes() int64 {
	var s int64
	for _, v := range c.Vals {
		s += ValueSize(v)
	}
	return s
}

func (c *AnyColumn) NewEmpty(capHint int) Column { return NewAnyColumn(capHint) }

func (c *AnyColumn) Release() {
	putAnySlice(c.Vals)
	c.Vals = nil
}

// --- column registry -------------------------------------------------

var columnBuilders sync.Map // reflect.Type -> func(capHint int) Column

// RegisterColumnType installs a typed column builder for values with the
// same dynamic type as sample, the way RegisterValueType does for gob.
// Workload packages register their payload columns from init.
func RegisterColumnType(sample any, builder func(capHint int) Column) {
	columnBuilders.Store(reflect.TypeOf(sample), builder)
}

// columnFor picks the column for a partition's first value.
func columnFor(v any, capHint int) Column {
	switch v.(type) {
	case float64:
		return NewF64Column(capHint)
	case int64:
		return NewI64Column(capHint)
	case []float64:
		return NewFloatsColumn(capHint)
	}
	if v != nil {
		if b, ok := columnBuilders.Load(reflect.TypeOf(v)); ok {
			return b.(func(int) Column)(capHint)
		}
	}
	return NewAnyColumn(capHint)
}

// --- batch kernels ---------------------------------------------------

// BatchFunc is the columnar analogue of ComputeFunc. A kernel may return
// nil to decline the inputs (e.g. an unexpected column type), in which
// case BatchCompute falls back to the row ComputeFunc; an empty result
// must therefore be an empty non-nil *Batch with NonNil set to mirror
// the row function's nil-vs-empty convention.
type BatchFunc func(part int, ins []*Batch) *Batch

// WithBatchKernel attaches a columnar kernel to the dataset. The kernel
// must be observationally identical to the row compute function: same
// records, same order, bit-equal floats (accumulate in the same order).
// Returns the dataset for chaining.
func (d *Dataset) WithBatchKernel(fn BatchFunc) *Dataset {
	d.batchFn = fn
	return d
}

// HasBatchKernel reports whether a columnar kernel is attached.
func (d *Dataset) HasBatchKernel() bool { return d.batchFn != nil }

// BatchCompute computes a partition in columnar form, using the attached
// kernel when one accepts the inputs and otherwise boxing through the
// row compute function. The fallback copies payloads both ways, so it is
// always safe — just slower.
func (d *Dataset) BatchCompute(part int, ins []*Batch) *Batch {
	if d.batchFn != nil {
		if out := d.batchFn(part, ins); out != nil {
			return out
		}
	}
	rows := make([][]Record, len(ins))
	for i, b := range ins {
		rows[i] = b.Records()
	}
	return FromRecords(d.fn(part, rows))
}

// ReduceByKeyF64 is ReduceByKey for float64 values: semantically
// identical (the boxed Combine is still installed for the row path and
// map-side combining), but the dependency additionally carries the
// unboxed combiner so the vectorized loop can merge key columns without
// boxing.
func (d *Dataset) ReduceByKeyF64(name string, parts int, f func(a, b float64) float64) *Dataset {
	combine := CombineFunc(func(a, b any) any { return f(a.(float64), b.(float64)) })
	c := d.ctx
	dep := Dependency{Parent: d, Shuffle: true, ShuffleID: c.nextShuffle, Combine: combine, CombineF64: f}
	c.nextShuffle++
	ds := c.newDataset(name, parts, []Dependency{dep}, OpMedium,
		func(_ int, ins [][]Record) []Record {
			return mergeByKey(ins[0], combine)
		})
	ds.batchFn = func(_ int, ins []*Batch) *Batch {
		return MergeBatchByKeyF64(ins[0], f)
	}
	return ds
}

// MergeBatchByKeyF64 aggregates a batch by key with an unboxed float64
// combiner, preserving first-seen key order exactly like mergeByKey. A
// non-float64 column falls back to the boxed merge.
func MergeBatchByKeyF64(in *Batch, f func(a, b float64) float64) *Batch {
	fc, ok := in.Col.(*F64Column)
	if !ok && in.Len() > 0 {
		out := FromRecords(mergeByKey(in.Records(), func(a, b any) any {
			return f(a.(float64), b.(float64))
		}))
		out.NonNil = true
		return out
	}
	out := NewBatch(in.Len())
	out.NonNil = true // mergeByKey returns a non-nil (possibly empty) slice
	oc := NewF64Column(in.Len())
	out.Col = oc
	idx := make(map[int64]int, 64)
	for i, k := range in.Keys {
		if j, seen := idx[k]; seen {
			oc.Vals[j] = f(oc.Vals[j], fc.Vals[i])
		} else {
			idx[k] = len(oc.Vals)
			out.Keys = append(out.Keys, k)
			oc.Vals = append(oc.Vals, fc.Vals[i])
		}
	}
	return out
}
