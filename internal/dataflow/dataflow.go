// Package dataflow implements the dataflow execution model the paper
// targets (§2.1): logical datasets (the RDD analogue) connected by lazy
// transformations into a DAG, with narrow dependencies pipelined inside
// stages and shuffle dependencies forming stage boundaries. Datasets are
// split into partitions processed by parallel tasks; each partition is
// the unit of caching, eviction and recovery.
//
// The package is engine-agnostic: it defines structure and computation,
// while internal/engine materializes partitions, schedules stages onto
// executors and manages the cache.
package dataflow

import (
	"fmt"
)

// Record is the element type flowing through datasets. Key drives shuffle
// partitioning; Value is the payload. Workload payloads implement
// storage.Sized to give the cache accurate partition sizes.
type Record struct {
	Key   int64
	Value any
}

// ComputeFunc produces the records of one partition from the input
// records of each dependency. ins[i] holds the records delivered by
// dependency i for this partition (the co-partitioned parent partition
// for narrow dependencies, the shuffled bucket for shuffle dependencies).
type ComputeFunc func(part int, ins [][]Record) []Record

// CombineFunc merges two values of the same key during map-side combining
// and shuffle aggregation.
type CombineFunc func(a, b any) any

// Dependency links a dataset to one parent.
type Dependency struct {
	Parent *Dataset
	// Shuffle marks a wide dependency: the child's partition p receives
	// all parent records whose key hashes to p. Narrow dependencies are
	// partition-wise: child partition p reads parent partition p.
	Shuffle bool
	// ShuffleID identifies the shuffle's output files in the shuffle
	// service; unique per shuffle dependency.
	ShuffleID int
	// Broadcast delivers every parent record to every child partition
	// instead of hash-routing, modeling broadcast-style dependencies
	// (e.g. distributing a small model to all tasks).
	Broadcast bool
	// Combine optionally aggregates same-key values map-side before the
	// shuffle write, like Spark's reduceByKey combiner.
	Combine CombineFunc
	// CombineF64 is the unboxed form of Combine for float64 values, set
	// by ReduceByKeyF64. When present the vectorized loop combines key
	// columns without boxing; Combine stays authoritative for the row
	// path and both produce identical values.
	CombineF64 func(a, b float64) float64
}

// OpClass mirrors costmodel.OpClass without importing it, keeping this
// package dependency-free; the engine converts between them.
type OpClass int

// Operator cost classes, from cheapest to most expensive.
const (
	OpSource OpClass = iota
	OpLight
	OpMedium
	OpHeavy
)

// Dataset is a logical, lazily evaluated distributed dataset — the
// analogue of a Spark RDD. Datasets are immutable once created.
type Dataset struct {
	id    int
	name  string
	parts int
	deps  []Dependency
	class OpClass
	fn    ComputeFunc
	ctx   *Context

	// batchFn is the optional columnar kernel (see batch.go); datasets
	// without one run through the boxed escape hatch in BatchCompute.
	batchFn BatchFunc

	// cached records the user's cache() annotation (§2.3); the engine's
	// cache controller may honor or override it depending on the system
	// under test.
	cached bool
}

// ID returns the unique dataset id within its context.
func (d *Dataset) ID() int { return d.id }

// Name returns the human-readable name; iterative workloads name datasets
// "role@iteration" so the CostLineage can match congruent datasets across
// jobs.
func (d *Dataset) Name() string { return d.name }

// Partitions returns the number of partitions.
func (d *Dataset) Partitions() int { return d.parts }

// Deps returns the dataset's dependencies.
func (d *Dataset) Deps() []Dependency { return d.deps }

// Class returns the operator cost class used by the cost model.
func (d *Dataset) Class() OpClass { return d.class }

// Compute invokes the dataset's compute function.
func (d *Dataset) Compute(part int, ins [][]Record) []Record { return d.fn(part, ins) }

// Context returns the owning driver context.
func (d *Dataset) Context() *Context { return d.ctx }

// IsCached reports whether the user annotated this dataset with Cache().
func (d *Dataset) IsCached() bool { return d.cached }

// Cache annotates the dataset to be persisted after computation,
// mirroring Spark's cache() API (Fig. 1(a) L4). Returns the dataset for
// chaining.
func (d *Dataset) Cache() *Dataset {
	d.cached = true
	return d
}

// Unpersist removes the annotation and asks the engine to drop any cached
// blocks of this dataset (Fig. 1(a) L9).
func (d *Dataset) Unpersist() {
	d.cached = false
	if d.ctx.runner != nil {
		d.ctx.runner.Unpersist(d)
	}
}

// Release marks the dataset as out of scope in the driver program:
// besides unpersisting, the engine may clean its shuffle outputs, like
// Spark's ContextCleaner does for garbage-collected RDDs. Iterative
// workloads call this on superseded per-iteration datasets, which is what
// makes recomputation lineages grow across iterations (Fig. 5).
func (d *Dataset) Release() {
	d.cached = false
	if d.ctx.runner != nil {
		d.ctx.runner.Release(d)
	}
}

// JobRunner executes actions; the engine provides the implementation.
type JobRunner interface {
	// RunJob computes every partition of target and returns them.
	RunJob(target *Dataset, action string) [][]Record
	// Unpersist drops cached blocks of the dataset.
	Unpersist(d *Dataset)
	// Release drops cached blocks and cleans shuffle outputs derived
	// from the dataset.
	Release(d *Dataset)
}

// Context is the driver-side factory for datasets, the analogue of a
// SparkContext.
type Context struct {
	nextID      int
	nextShuffle int
	// idBase offsets the dataset ids this context assigns. Contexts
	// sharing one executor pool (the multi-tenant job server) get
	// disjoint id ranges so their blocks never collide in the shared
	// block stores; a standalone context uses base 0.
	idBase   int
	runner   JobRunner
	datasets []*Dataset
}

// NewContext returns an empty driver context. The engine attaches itself
// with SetRunner before any action runs.
func NewContext() *Context { return &Context{} }

// SetIDBase offsets all dataset ids subsequently created in this context
// by base, giving contexts that share executor block stores disjoint id
// ranges. Must be called before any dataset is created.
func (c *Context) SetIDBase(base int) {
	if len(c.datasets) > 0 {
		panic("dataflow: SetIDBase after datasets were created")
	}
	if base < 0 {
		panic(fmt.Sprintf("dataflow: negative id base %d", base))
	}
	c.idBase = base
	c.nextID = base
}

// IDBase returns the context's dataset-id base (0 unless SetIDBase was
// called).
func (c *Context) IDBase() int { return c.idBase }

// SetRunner installs the job runner (the engine).
func (c *Context) SetRunner(r JobRunner) { c.runner = r }

// Runner returns the installed job runner.
func (c *Context) Runner() JobRunner { return c.runner }

// Datasets returns every dataset created in this context, in creation
// order.
func (c *Context) Datasets() []*Dataset { return c.datasets }

// Dataset looks up a dataset by id; nil if unknown.
func (c *Context) Dataset(id int) *Dataset {
	idx := id - c.idBase
	if idx < 0 || idx >= len(c.datasets) {
		return nil
	}
	return c.datasets[idx]
}

func (c *Context) newDataset(name string, parts int, deps []Dependency, class OpClass, fn ComputeFunc) *Dataset {
	if parts <= 0 {
		panic(fmt.Sprintf("dataflow: dataset %q must have positive partitions, got %d", name, parts))
	}
	d := &Dataset{
		id:    c.nextID,
		name:  name,
		parts: parts,
		deps:  deps,
		class: class,
		fn:    fn,
		ctx:   c,
	}
	c.nextID++
	c.datasets = append(c.datasets, d)
	return d
}

// Source creates a root dataset whose partitions are produced by gen.
// gen must be deterministic in part for recomputation to be correct.
func (c *Context) Source(name string, parts int, gen func(part int) []Record) *Dataset {
	return c.newDataset(name, parts, nil, OpSource, func(part int, _ [][]Record) []Record {
		return gen(part)
	})
}

// Map derives a dataset by applying f to every record.
func (d *Dataset) Map(name string, f func(Record) Record) *Dataset {
	return d.ctx.newDataset(name, d.parts, []Dependency{{Parent: d}}, OpLight,
		func(_ int, ins [][]Record) []Record {
			in := ins[0]
			out := make([]Record, len(in))
			for i, r := range in {
				out[i] = f(r)
			}
			return out
		})
}

// FlatMap derives a dataset by applying f to every record and
// concatenating the results.
func (d *Dataset) FlatMap(name string, f func(Record) []Record) *Dataset {
	return d.ctx.newDataset(name, d.parts, []Dependency{{Parent: d}}, OpLight,
		func(_ int, ins [][]Record) []Record {
			var out []Record
			for _, r := range ins[0] {
				out = append(out, f(r)...)
			}
			return out
		})
}

// Filter derives a dataset keeping only records for which pred is true.
func (d *Dataset) Filter(name string, pred func(Record) bool) *Dataset {
	return d.ctx.newDataset(name, d.parts, []Dependency{{Parent: d}}, OpLight,
		func(_ int, ins [][]Record) []Record {
			var out []Record
			for _, r := range ins[0] {
				if pred(r) {
					out = append(out, r)
				}
			}
			return out
		})
}

// MapPartitions derives a dataset by transforming each whole partition.
// class lets callers flag expensive per-partition work (e.g. model
// updates) for the cost model.
func (d *Dataset) MapPartitions(name string, class OpClass, f func(part int, in []Record) []Record) *Dataset {
	return d.ctx.newDataset(name, d.parts, []Dependency{{Parent: d}}, class,
		func(part int, ins [][]Record) []Record {
			return f(part, ins[0])
		})
}

// ReduceByKey shuffles the dataset by key into parts partitions and
// merges same-key values with combine. Map-side combining is applied
// before the shuffle write, as in Spark.
func (d *Dataset) ReduceByKey(name string, parts int, combine CombineFunc) *Dataset {
	c := d.ctx
	dep := Dependency{Parent: d, Shuffle: true, ShuffleID: c.nextShuffle, Combine: combine}
	c.nextShuffle++
	return c.newDataset(name, parts, []Dependency{dep}, OpMedium,
		func(_ int, ins [][]Record) []Record {
			return mergeByKey(ins[0], combine)
		})
}

// GroupByKey shuffles the dataset by key and gathers each key's values
// into a []any value, like Spark's groupByKey (no map-side combining).
func (d *Dataset) GroupByKey(name string, parts int) *Dataset {
	c := d.ctx
	dep := Dependency{Parent: d, Shuffle: true, ShuffleID: c.nextShuffle}
	c.nextShuffle++
	return c.newDataset(name, parts, []Dependency{dep}, OpHeavy,
		func(_ int, ins [][]Record) []Record {
			groups := make(map[int64][]any)
			order := make([]int64, 0, 16)
			for _, r := range ins[0] {
				if _, seen := groups[r.Key]; !seen {
					order = append(order, r.Key)
				}
				groups[r.Key] = append(groups[r.Key], r.Value)
			}
			out := make([]Record, 0, len(order))
			for _, k := range order {
				out = append(out, Record{Key: k, Value: groups[k]})
			}
			return out
		})
}

// ShuffleJoin co-shuffles two datasets by key into parts partitions and
// applies f to each pair of same-key buckets. It models Spark's join and
// cogroup family (OpHeavy).
func ShuffleJoin(name string, parts int, left, right *Dataset, f func(part int, l, r []Record) []Record) *Dataset {
	c := left.ctx
	if right.ctx != c {
		panic("dataflow: join across contexts")
	}
	dl := Dependency{Parent: left, Shuffle: true, ShuffleID: c.nextShuffle}
	c.nextShuffle++
	dr := Dependency{Parent: right, Shuffle: true, ShuffleID: c.nextShuffle}
	c.nextShuffle++
	return c.newDataset(name, parts, []Dependency{dl, dr}, OpHeavy,
		func(part int, ins [][]Record) []Record {
			return f(part, ins[0], ins[1])
		})
}

// Zip combines two co-partitioned datasets partition-wise with a narrow
// dependency on both, like Spark's zipPartitions.
func Zip(name string, class OpClass, left, right *Dataset, f func(part int, l, r []Record) []Record) *Dataset {
	c := left.ctx
	if right.ctx != c {
		panic("dataflow: zip across contexts")
	}
	if left.parts != right.parts {
		panic(fmt.Sprintf("dataflow: zip requires equal partition counts (%d vs %d)", left.parts, right.parts))
	}
	return c.newDataset(name, left.parts, []Dependency{{Parent: left}, {Parent: right}}, class,
		func(part int, ins [][]Record) []Record {
			return f(part, ins[0], ins[1])
		})
}

// Barrier derives a dataset that depends on left narrowly and requires
// all partitions of right to have been materialized (an all-to-one-to-all
// shuffle), used to model broadcast-style dependencies such as
// distributing KMeans centroids.
func Barrier(name string, class OpClass, left, right *Dataset, f func(part int, l, broadcast []Record) []Record) *Dataset {
	c := left.ctx
	dep := Dependency{Parent: right, Shuffle: true, ShuffleID: c.nextShuffle, Broadcast: true}
	c.nextShuffle++
	return c.newDataset(name, left.parts, []Dependency{{Parent: left}, dep}, class,
		func(part int, ins [][]Record) []Record {
			return f(part, ins[0], ins[1])
		})
}

// mergeByKey aggregates records by key with combine, preserving first-seen
// key order for determinism.
func mergeByKey(in []Record, combine CombineFunc) []Record {
	acc := make(map[int64]any, 64)
	order := make([]int64, 0, 64)
	for _, r := range in {
		if v, seen := acc[r.Key]; seen {
			acc[r.Key] = combine(v, r.Value)
		} else {
			acc[r.Key] = r.Value
			order = append(order, r.Key)
		}
	}
	out := make([]Record, 0, len(order))
	for _, k := range order {
		out = append(out, Record{Key: k, Value: acc[k]})
	}
	return out
}

// MergeByKey is exported for shuffle-side combining in the engine.
func MergeByKey(in []Record, combine CombineFunc) []Record { return mergeByKey(in, combine) }

// Collect runs a job computing every partition of the dataset and returns
// them. It is an action: it triggers execution through the engine.
func (d *Dataset) Collect() [][]Record {
	if d.ctx.runner == nil {
		panic("dataflow: no runner attached to context")
	}
	return d.ctx.runner.RunJob(d, "collect")
}

// Count runs a job and returns the total number of records.
func (d *Dataset) Count() int {
	n := 0
	for _, part := range d.Collect() {
		n += len(part)
	}
	return n
}

// Ancestors returns every transitive parent of d (excluding d), in
// deterministic order.
func (d *Dataset) Ancestors() []*Dataset {
	seen := map[int]bool{d.id: true}
	var out []*Dataset
	var walk func(x *Dataset)
	walk = func(x *Dataset) {
		for _, dep := range x.deps {
			p := dep.Parent
			if !seen[p.id] {
				seen[p.id] = true
				out = append(out, p)
				walk(p)
			}
		}
	}
	walk(d)
	return out
}
