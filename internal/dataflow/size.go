package dataflow

import "reflect"

// Sized lets workload value types report their in-memory footprint so
// the cache sees realistic, skewed partition sizes (§2.2). It is
// structurally identical to storage.Sized; the sizing logic lives here
// so the columnar batch layer can compute exact per-element sizes
// without importing the storage package (which imports dataflow).
type Sized interface {
	SizeBytes() int64
}

// ValueSize estimates the in-memory footprint of a record value. The
// batched execution path depends on these rules being exact: every
// Column implementation must report SizeAt(i) == ValueSize(Value(i)),
// which is what keeps virtual-time metrics bit-identical between the
// row-at-a-time and columnar loops.
func ValueSize(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case Sized:
		return x.SizeBytes()
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int, int64, uint64, float64:
		return 8
	case string:
		return 16 + int64(len(x))
	case []byte:
		return 24 + int64(len(x))
	case []float64:
		return 24 + 8*int64(len(x))
	case []float32:
		return 24 + 4*int64(len(x))
	case []int64:
		return 24 + 8*int64(len(x))
	case []int32:
		return 24 + 4*int64(len(x))
	case []int:
		return 24 + 8*int64(len(x))
	case []string:
		s := int64(24)
		for _, e := range x {
			s += 16 + int64(len(e))
		}
		return s
	case []any:
		s := int64(24)
		for _, e := range x {
			s += 16 + ValueSize(e)
		}
		return s
	default:
		return reflectValueSize(v)
	}
}

// reflectValueSize sizes slice- and map-typed values that have no
// dedicated case above, walking elements reflectively. Summation is
// order-independent, so map iteration order does not affect the result.
// Anything else keeps the historical flat fallback.
func reflectValueSize(v any) int64 {
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice:
		s := int64(24)
		for i := 0; i < rv.Len(); i++ {
			s += 8 + ValueSize(rv.Index(i).Interface())
		}
		return s
	case reflect.Map:
		s := int64(48)
		it := rv.MapRange()
		for it.Next() {
			s += 16 + ValueSize(it.Key().Interface()) + ValueSize(it.Value().Interface())
		}
		return s
	default:
		return 48
	}
}

// RecordSize estimates the footprint of one record (16 bytes of header
// plus the value).
func RecordSize(r Record) int64 { return 16 + ValueSize(r.Value) }

// EstimateRecords estimates the footprint of a whole partition.
func EstimateRecords(recs []Record) int64 {
	s := int64(24) // slice header and bookkeeping
	for _, r := range recs {
		s += RecordSize(r)
	}
	return s
}
