package dataflow

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Router maps record keys to shuffle buckets. The mapping is the
// splitmix64 finalizer followed by reduction mod parts — the same
// function HashPartition has always computed — but the division is
// replaced with multiply-shift arithmetic on the fast path, since the
// route loop runs once per shuffled record. Bucket assignments are a
// determinism contract (partition membership and shuffle routing both
// derive from them), so the fast path must agree with plain % bit for
// bit; TestRouterMatchesModulo enforces that.
type Router struct {
	parts int
	// Power-of-two reduction: x % parts == x & mask.
	pow2 bool
	mask uint64
	// Lemire fastmod for non-power-of-two parts up to 1<<16: m32 is
	// ceil(2^64 / parts), r32 is (1<<32) % parts. A 64-bit hash x is
	// reduced as ((hi32(x) % parts) * r32 + lo32(x) % parts) % parts,
	// with each 32-bit % computed by fastmod; exact because every
	// intermediate stays below 2^32 when parts <= 2^16.
	m32 uint64
	r32 uint64
	// Above 1<<16 buckets the fast path is disabled and Bucket falls
	// back to the hardware divider.
	slow bool
}

// maxFastParts bounds the fastmod path: the 32-bit split recombination
// needs (parts-1)*parts < 2^32.
const maxFastParts = 1 << 16

// NewRouter builds a router for the given bucket count.
func NewRouter(parts int) Router {
	if parts <= 0 {
		panic(fmt.Sprintf("dataflow: router needs positive parts, got %d", parts))
	}
	r := Router{parts: parts}
	switch {
	case parts&(parts-1) == 0:
		r.pow2 = true
		r.mask = uint64(parts - 1)
	case parts <= maxFastParts:
		r.m32 = ^uint64(0)/uint64(parts) + 1
		r.r32 = (1 << 32) % uint64(parts)
	default:
		r.slow = true
	}
	return r
}

// Parts returns the bucket count.
func (r Router) Parts() int { return r.parts }

// fastmod32 computes n % parts via Lemire's multiply-shift trick.
func (r Router) fastmod32(n uint32) uint64 {
	lowbits := r.m32 * uint64(n)
	res, _ := bits.Mul64(lowbits, uint64(r.parts))
	return res
}

// Bucket returns the shuffle bucket for a key.
func (r Router) Bucket(key int64) int {
	x := mix64(uint64(key))
	switch {
	case r.pow2:
		return int(x & r.mask)
	case r.slow:
		return int(x % uint64(r.parts))
	default:
		hi := r.fastmod32(uint32(x >> 32))
		lo := r.fastmod32(uint32(x))
		return int(r.fastmod32(uint32(hi*r.r32 + lo)))
	}
}

// mix64 is the splitmix64 finalizer, spreading keys uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// routerCache memoizes routers for small partition counts so the scalar
// HashPartition entry point skips both the division and the router
// construction. Entries are immutable once published.
var routerCache [4096]atomic.Pointer[Router]

// HashPartition returns the shuffle bucket for a key, deterministically
// spreading keys with a 64-bit mix (splitmix64 finalizer). Equivalent to
// NewRouter(parts).Bucket(key); callers in a loop should hold a Router.
func HashPartition(key int64, parts int) int {
	if parts >= 1 && parts <= len(routerCache) {
		rp := routerCache[parts-1].Load()
		if rp == nil {
			r := NewRouter(parts)
			rp = &r
			routerCache[parts-1].Store(rp)
		}
		return rp.Bucket(key)
	}
	return int(mix64(uint64(key)) % uint64(parts))
}
