package dataflow

import (
	"reflect"
	"testing"
)

// sizedVal is a Sized struct payload standing in for workload types.
type sizedVal struct{ N int64 }

func (s sizedVal) SizeBytes() int64 { return 8 + s.N }

// TestBatchRoundTrip checks FromRecords/Records is lossless for every
// built-in column type, including key order, values and the
// nil-vs-empty distinction.
func TestBatchRoundTrip(t *testing.T) {
	cases := map[string][]Record{
		"nil":    nil,
		"empty":  {},
		"f64":    {{Key: 3, Value: 1.5}, {Key: 1, Value: -2.25}, {Key: 3, Value: 0.0}},
		"i64":    {{Key: 9, Value: int64(-4)}, {Key: 2, Value: int64(7)}},
		"floats": {{Key: 1, Value: []float64{1, 2, 3}}, {Key: 2, Value: []float64(nil)}, {Key: 5, Value: []float64{4}}},
		"boxed":  {{Key: 1, Value: "a"}, {Key: 2, Value: "bc"}},
		"mixed":  {{Key: 1, Value: 1.5}, {Key: 2, Value: "x"}, {Key: 3, Value: int64(2)}},
		"sized":  {{Key: 1, Value: sizedVal{N: 8}}, {Key: 2, Value: sizedVal{N: 0}}},
	}
	for name, recs := range cases {
		b := FromRecords(recs)
		got := b.Records()
		if (recs == nil) != (got == nil) {
			t.Errorf("%s: nil-ness not preserved: in=%v out=%v", name, recs == nil, got == nil)
		}
		if !reflect.DeepEqual(recs, got) {
			t.Errorf("%s: round trip mismatch:\nin:  %+v\nout: %+v", name, recs, got)
		}
		if want := EstimateRecords(recs); b.EstimateSize() != want {
			t.Errorf("%s: EstimateSize=%d, EstimateRecords=%d", name, b.EstimateSize(), want)
		}
		b.Release()
	}
}

// TestBatchSizeEquivalence is the sizing identity the engine's
// bit-identical metrics rest on: for every column type, SizeAt(i) must
// equal ValueSize(Value(i)) and EstimateSize must equal EstimateRecords
// of the boxed rows.
func TestBatchSizeEquivalence(t *testing.T) {
	recs := []Record{
		{Key: 1, Value: 0.5}, {Key: 2, Value: 1.5}, {Key: 3, Value: 2.5},
	}
	vals := [][]Record{
		recs,
		{{Key: 1, Value: int64(7)}, {Key: 2, Value: int64(-1)}},
		{{Key: 1, Value: []float64{1, 2}}, {Key: 2, Value: []float64(nil)}},
		{{Key: 1, Value: "hello"}, {Key: 2, Value: []byte{1, 2, 3}}},
		{{Key: 1, Value: sizedVal{N: 100}}},
	}
	for _, rs := range vals {
		b := FromRecords(rs)
		for i := 0; i < b.Len(); i++ {
			boxed := b.Col.Value(i)
			if got, want := b.Col.SizeAt(i), ValueSize(boxed); got != want {
				t.Errorf("col %T elem %d: SizeAt=%d ValueSize(Value)=%d", b.Col, i, got, want)
			}
		}
		if got, want := b.EstimateSize(), EstimateRecords(rs); got != want {
			t.Errorf("col %T: EstimateSize=%d EstimateRecords=%d", b.Col, got, want)
		}
		b.Release()
	}
}

// TestBatchAppendFromBatch checks the unboxed routing path (shuffle
// bucket building) produces the same rows as boxing would.
func TestBatchAppendFromBatch(t *testing.T) {
	src := FromRecords([]Record{
		{Key: 1, Value: []float64{1, 2}}, {Key: 2, Value: []float64{3}}, {Key: 3, Value: []float64(nil)},
	})
	dst := NewBatch(0)
	dst.NonNil = true
	for _, i := range []int{2, 0, 1} {
		dst.AppendFromBatch(src, i)
	}
	want := []Record{
		{Key: 3, Value: []float64(nil)}, {Key: 1, Value: []float64{1, 2}}, {Key: 2, Value: []float64{3}},
	}
	if got := dst.Records(); !reflect.DeepEqual(got, want) {
		t.Errorf("AppendFromBatch mismatch:\ngot:  %+v\nwant: %+v", got, want)
	}
	src.Release()
	dst.Release()
}

// TestBatchValueCopies checks the aliasing contract: boxed values must
// not share backing storage with the (pooled) column arrays.
func TestBatchValueCopies(t *testing.T) {
	b := FromRecords([]Record{{Key: 1, Value: []float64{1, 2, 3}}})
	v := b.Col.Value(0).([]float64)
	fc := b.Col.(*FloatsColumn)
	fc.Flat[0] = 99
	if v[0] != 1 {
		t.Fatal("Value aliases the column's backing array")
	}
	b.Release()
}

// TestMergeBatchByKeyF64 checks the unboxed combiner agrees with the
// boxed mergeByKey on order and values.
func TestMergeBatchByKeyF64(t *testing.T) {
	recs := []Record{
		{Key: 5, Value: 1.0}, {Key: 2, Value: 2.0}, {Key: 5, Value: 3.5},
		{Key: 7, Value: 0.25}, {Key: 2, Value: -1.0}, {Key: 5, Value: 2.0},
	}
	add := func(a, b float64) float64 { return a + b }
	want := mergeByKey(recs, func(a, b any) any { return a.(float64) + b.(float64) })
	in := FromRecords(recs)
	out := MergeBatchByKeyF64(in, add)
	if got := out.Records(); !reflect.DeepEqual(got, want) {
		t.Errorf("merge mismatch:\ngot:  %+v\nwant: %+v", got, want)
	}
	in.Release()
	out.Release()
}

// TestBatchMigrate checks mixed-type partitions fall back to the boxed
// column without losing earlier elements.
func TestBatchMigrate(t *testing.T) {
	b := NewBatch(0)
	b.NonNil = true
	b.Append(1, 1.5)
	b.Append(2, "s")
	b.Append(3, 2.5)
	want := []Record{{Key: 1, Value: 1.5}, {Key: 2, Value: "s"}, {Key: 3, Value: 2.5}}
	if got := b.Records(); !reflect.DeepEqual(got, want) {
		t.Errorf("migrate mismatch:\ngot:  %+v\nwant: %+v", got, want)
	}
	if _, ok := b.Col.(*AnyColumn); !ok {
		t.Errorf("expected AnyColumn after migration, got %T", b.Col)
	}
	b.Release()
}

// TestRegisteredColumnSelected checks the registry routes a registered
// payload type to its typed column.
func TestRegisteredColumnSelected(t *testing.T) {
	type regVal struct{ X float64 }
	RegisterColumnType(regVal{}, func(capHint int) Column { return NewAnyColumn(capHint) })
	b := FromRecords([]Record{{Key: 1, Value: regVal{X: 1}}})
	if _, ok := b.Col.(*AnyColumn); !ok {
		t.Errorf("registered builder not used, got %T", b.Col)
	}
	b.Release()
}
