package engine

// Crash recovery: CaptureResumeState snapshots everything a streaming
// session needs to continue after a process death — clocks, stores,
// shuffle state, scheduler bookkeeping, metrics, controller state — and
// the replay machinery rebuilds a crashed run from that snapshot.
//
// Resume works by re-running the *same* driver program from window 1 in
// replay mode: jobs return empty results without executing, unpersists
// are ignored, and window boundaries only count up. When the driver
// reaches the checkpointed window the cluster rehydrates in place — the
// snapshot already contains that boundary's effects — and execution
// goes live. Replay is safe because stream drivers build their DAGs
// purely from (configuration, window index): dataset and shuffle ids
// are assigned at dataset creation, and collected results never feed
// dataset definitions.
//
// The headline invariant: a session crashed at any window boundary and
// resumed produces bit-identical window results, metrics and event logs
// to a run that never crashed. Everything recovery-specific therefore
// stays out of the main event log and the deterministic metrics: resume
// bookkeeping events go to a separate recovery log, and plan-repair
// effort lands in the Repair* metric fields.

import (
	"fmt"
	"time"

	"blaze/internal/dataflow"
	"blaze/internal/eventlog"
	"blaze/internal/metrics"
	"blaze/internal/shuffle"
	"blaze/internal/storage"
)

// StateSnapshotter is implemented by controllers whose decisions depend
// on accumulated state (Blaze's cost lineage, regression estimators,
// ILP memo). The snapshot is opaque to the engine; the controller owns
// its wire format.
type StateSnapshotter interface {
	// SnapshotState serializes the controller's durable state.
	SnapshotState() ([]byte, error)
	// RestoreState rebuilds the controller from a snapshot taken by the
	// same controller type.
	RestoreState(data []byte) error
}

// PlanRepairer is implemented by controllers that can re-solve their
// placement plan after the cluster state changed out from under it — an
// executor death migrated partitions, or a crash resume restored only
// the checkpointed blocks. Events describing the repair are routed
// through emit, so callers choose between the main log (executor death,
// part of the run) and a recovery-only log (crash resume, where the
// main log must stay bit-identical to an uninterrupted run).
type PlanRepairer interface {
	RepairPlan(window int, emit func(eventlog.Event))
}

// WindowCheckpointer observes streaming window boundaries for durable
// checkpointing. OnWindowBoundary runs in driver context under pool
// exclusivity, after the controller's AdvanceWindow, for every boundary
// past the first — so a checkpoint at window k captures windows 1..k-1
// complete plus the boundary-k re-solve.
type WindowCheckpointer interface {
	OnWindowBoundary(c *Cluster, window int)
}

// SetWindowCheckpointer attaches the boundary observer. Call before the
// first window advances.
func (c *Cluster) SetWindowCheckpointer(w WindowCheckpointer) { c.checkpointer = w }

// ResumeExecutor is one executor's scheduler-visible state in a
// ResumeState snapshot.
type ResumeExecutor struct {
	Dead        bool
	SlowFactor  float64
	SlowTasks   int
	Flakes      int
	Blacklisted bool
	Cooldown    int
	Cur         int
	Clocks      []time.Duration
}

// ResumeBlock is one checkpointed memory block: its full metadata
// (access stats, insert sequence, stamped cost) and its records.
type ResumeBlock struct {
	Executor int
	Meta     storage.BlockMeta
	Records  []dataflow.Record
}

// ResumeDiskBlock is one checkpointed disk block.
type ResumeDiskBlock struct {
	Executor int
	ID       storage.BlockID
	Size     int64
	Records  []dataflow.Record
}

// ResumeCounters pins a memory store's internal counters.
type ResumeCounters struct {
	Seq  int64
	Peak int64
}

// ResumeDiskCounters pins a disk store's internal counters.
type ResumeDiskCounters struct {
	Peak         int64
	TotalWritten int64
}

// ResumeState is the complete engine-side snapshot of a streaming
// session at a window boundary. All fields are exported for gob; the
// checkpoint layer strips Records and Events into separate files.
type ResumeState struct {
	// Window is the boundary the snapshot was taken at: windows
	// 1..Window-1 are complete and the boundary-Window re-solve has run.
	Window         int
	JobSeq         int
	StageSeq       int
	CurJob         int
	StartTime      time.Duration
	ParallelStages int

	Assign            []int
	DiskBase          []int64
	ComputedOnce      map[storage.BlockID]bool
	FaultLost         map[storage.BlockID]string
	FaultLostShuffles map[int]bool
	FaultLostMaps     map[int]map[int]string

	Execs        []ResumeExecutor
	MemBlocks    []ResumeBlock
	MemCounters  []ResumeCounters
	DiskBlocks   []ResumeDiskBlock
	DiskCounters []ResumeDiskCounters

	Metrics *metrics.App
	Shuffle *shuffle.Snapshot
	// Controller is the StateSnapshotter payload (nil for stateless
	// controllers).
	Controller []byte
	// Events is the main event log up to and including this boundary.
	// The checkpoint layer persists the count and rebuilds the slice
	// from the write-ahead log at load time.
	Events []eventlog.Event
}

// CaptureResumeState snapshots the cluster at a window boundary. Must
// run in driver context under pool exclusivity (the window-boundary
// hook provides both). Slices referencing live data (block records,
// shuffle buckets, metrics sub-objects) are shared, not deep-copied:
// the caller serializes the snapshot before any further execution.
func (c *Cluster) CaptureResumeState() (*ResumeState, error) {
	rs := &ResumeState{
		Window:         c.curWindow,
		JobSeq:         c.jobSeq,
		StageSeq:       c.stageSeq,
		CurJob:         c.curJob,
		StartTime:      c.startTime,
		ParallelStages: c.parallelStages,
		Assign:         append([]int(nil), c.assign...),
	}
	if c.diskBase != nil {
		rs.DiskBase = append([]int64(nil), c.diskBase...)
	}
	rs.ComputedOnce = make(map[storage.BlockID]bool, len(c.computedOnce))
	for id, v := range c.computedOnce {
		rs.ComputedOnce[id] = v
	}
	rs.FaultLost = make(map[storage.BlockID]string, len(c.faultLost))
	for id, cl := range c.faultLost {
		rs.FaultLost[id] = cl
	}
	rs.FaultLostShuffles = make(map[int]bool, len(c.faultLostShuffles))
	for id, v := range c.faultLostShuffles {
		rs.FaultLostShuffles[id] = v
	}
	rs.FaultLostMaps = make(map[int]map[int]string, len(c.faultLostMaps))
	for id, m := range c.faultLostMaps {
		mm := make(map[int]string, len(m))
		for p, cl := range m {
			mm[p] = cl
		}
		rs.FaultLostMaps[id] = mm
	}

	rs.Execs = make([]ResumeExecutor, len(c.execs))
	for i, ex := range c.execs {
		es := &rs.Execs[i]
		es.Dead = ex.dead
		es.SlowFactor = ex.slowFactor
		es.SlowTasks = ex.slowTasks
		es.Flakes = ex.flakes
		es.Blacklisted = ex.blacklisted
		es.Cooldown = ex.cooldown
		es.Cur = ex.cur
		es.Clocks = make([]time.Duration, len(ex.cores))
		for ci := range ex.cores {
			es.Clocks[ci] = ex.cores[ci].Now()
		}
		for _, m := range ex.Mem.Blocks() {
			recs, ok := ex.Mem.Records(m.ID)
			if !ok {
				return nil, fmt.Errorf("engine: capture: memory block %v unreadable", m.ID)
			}
			rs.MemBlocks = append(rs.MemBlocks, ResumeBlock{Executor: i, Meta: *m, Records: recs})
		}
		seq, peak := ex.Mem.Counters()
		rs.MemCounters = append(rs.MemCounters, ResumeCounters{Seq: seq, Peak: peak})
		for _, id := range ex.Disk.Blocks() {
			size, _ := ex.Disk.Size(id)
			recs, ok := ex.Disk.Records(id)
			if !ok {
				return nil, fmt.Errorf("engine: capture: disk block %v unreadable", id)
			}
			rs.DiskBlocks = append(rs.DiskBlocks, ResumeDiskBlock{Executor: i, ID: id, Size: size, Records: recs})
		}
		dpeak, dwritten := ex.Disk.Counters()
		rs.DiskCounters = append(rs.DiskCounters, ResumeDiskCounters{Peak: dpeak, TotalWritten: dwritten})
	}

	m := metrics.NewApp(len(c.execs))
	m.CopyFrom(c.met)
	rs.Metrics = m
	rs.Shuffle = c.shuffle.Snapshot()
	if ss, ok := c.ctl.(StateSnapshotter); ok {
		data, err := ss.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("engine: capture: controller snapshot: %w", err)
		}
		rs.Controller = data
	}
	if c.log != nil {
		rs.Events = append([]eventlog.Event(nil), c.log.Events()...)
	}
	return rs, nil
}

// BeginReplay puts the cluster into replay mode targeting the snapshot:
// the resumed driver re-runs from window 1 without executing anything,
// and the cluster rehydrates when the driver reaches the checkpointed
// boundary. recoveryLog (optional) receives the resume bookkeeping
// events — session_resumed and the plan-repair solves — which must not
// enter the main log. Call right after the streaming session opens,
// before the driver's first job.
func (c *Cluster) BeginReplay(rs *ResumeState, recoveryLog *eventlog.Log) {
	c.replay = true
	c.replayTarget = rs
	c.recoveryLog = recoveryLog
	// The session-open boundary (window 1) already ran live before
	// replay could be engaged; it counts toward the replay target and
	// its effects are clobbered by the rehydrate.
	c.replayWindows = c.curWindow
}

// Replaying reports whether the cluster is fast-forwarding a resumed
// driver.
func (c *Cluster) Replaying() bool { return c.replay }

// recoveryEmit appends an event to the recovery log (never the main
// log); a no-op without one.
func (c *Cluster) recoveryEmit(e eventlog.Event) {
	if c.recoveryLog != nil {
		c.recoveryLog.Append(e)
	}
}

// finishResume rehydrates the cluster from the replay target and leaves
// replay mode. Runs in driver context under pool exclusivity. Failures
// here mean the checkpoint passed validation but cannot be applied
// (e.g. a quota regression refused a re-admission) — that is a
// programming or configuration error, not recoverable input, so it
// panics like the engine's other impossible-state paths.
func (c *Cluster) finishResume() {
	rs := c.replayTarget

	for i, ex := range c.execs {
		es := rs.Execs[i]
		ex.dead = es.Dead
		ex.slowFactor = es.SlowFactor
		ex.slowTasks = es.SlowTasks
		ex.flakes = es.Flakes
		ex.blacklisted = es.Blacklisted
		ex.cooldown = es.Cooldown
		ex.cur = es.Cur
		for ci := range ex.cores {
			// Fresh pool clocks sit at zero, so advancing to the
			// checkpointed reading restores them exactly.
			ex.cores[ci].AdvanceTo(es.Clocks[ci])
		}
	}
	for _, b := range rs.MemBlocks {
		if err := c.execs[b.Executor].Mem.Restore(b.Meta, b.Records); err != nil {
			panic(fmt.Sprintf("engine: resume: %v", err))
		}
		c.ctl.OnBlockAdmitted(c.execs[b.Executor], b.Meta.ID)
	}
	for i, ex := range c.execs {
		ex.Mem.SetCounters(rs.MemCounters[i].Seq, rs.MemCounters[i].Peak)
	}
	for _, b := range rs.DiskBlocks {
		if err := c.execs[b.Executor].Disk.Restore(b.ID, b.Records, b.Size); err != nil {
			panic(fmt.Sprintf("engine: resume: %v", err))
		}
	}
	for i, ex := range c.execs {
		ex.Disk.SetCounters(rs.DiskCounters[i].Peak, rs.DiskCounters[i].TotalWritten)
	}

	c.met.CopyFrom(rs.Metrics)
	c.shuffle.Restore(rs.Shuffle)
	c.jobSeq = rs.JobSeq
	c.stageSeq = rs.StageSeq
	c.curJob = rs.CurJob
	c.curWindow = rs.Window
	c.startTime = rs.StartTime
	c.parallelStages = rs.ParallelStages
	copy(c.assign, rs.Assign)
	if rs.DiskBase != nil && c.diskBase != nil {
		copy(c.diskBase, rs.DiskBase)
	}
	c.computedOnce = rs.ComputedOnce
	if c.computedOnce == nil {
		c.computedOnce = make(map[storage.BlockID]bool)
	}
	c.faultLost = rs.FaultLost
	if c.faultLost == nil {
		c.faultLost = make(map[storage.BlockID]string)
	}
	c.faultLostShuffles = rs.FaultLostShuffles
	if c.faultLostShuffles == nil {
		c.faultLostShuffles = make(map[int]bool)
	}
	c.faultLostMaps = rs.FaultLostMaps
	if c.faultLostMaps == nil {
		c.faultLostMaps = make(map[int]map[int]string)
	}

	if ss, ok := c.ctl.(StateSnapshotter); ok && rs.Controller != nil {
		if err := ss.RestoreState(rs.Controller); err != nil {
			panic(fmt.Sprintf("engine: resume: controller restore: %v", err))
		}
	}
	if c.log != nil {
		// Clobber the replay-era events (the resumed session's open
		// boundary) with the crashed run's exact history.
		c.log.Restore(rs.Events)
	}

	c.replay = false
	c.replayTarget = nil
	c.recoveryEmit(eventlog.Event{Kind: eventlog.SessionResumed, Time: c.Now(),
		Window: c.curWindow, Count: len(rs.MemBlocks) + len(rs.DiskBlocks)})

	// Plan repair: the restored targetState describes the crashed run's
	// plan over the crashed run's candidates. Re-solve over what
	// actually survived so post-resume admissions and promotions follow
	// a plan that matches reality. Repair events stay in the recovery
	// log; repair effort lands in the Repair* metrics — both excluded
	// from the bit-identity comparison.
	if pr, ok := c.ctl.(PlanRepairer); ok {
		pr.RepairPlan(c.curWindow, c.recoveryEmit)
	}
}
