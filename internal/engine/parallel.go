package engine

import (
	"sync"

	"blaze/internal/dataflow"
	"blaze/internal/storage"
)

// This file implements real multi-core stage execution. A stage's tasks
// are dispatched to one worker goroutine per executor; each worker runs
// its executor's tasks in ascending-partition order — exactly the
// subsequence the sequential loop would execute on that executor — so
// every executor-local effect (clock advances, cache admissions,
// evictions, policy state) is reproduced bit-for-bit. Cross-executor
// effects are either commutative sums under leaf mutexes (metrics
// counters, shuffle bytes), structurally disjoint map entries under the
// cluster mutex (computedOnce, faultLost), or buffered per task and
// replayed in ascending task order at the stage join (event log, disk
// peak). A stage is only dispatched in parallel when parallelPlan can
// prove no task will leave its executor's own state: no reachable
// recomputation path crosses an incomplete shuffle (which would trigger
// a global mid-task stage regeneration) and, for controllers that
// estimate across executors, no incomplete shuffle edge with differing
// partition counts is reachable from estimable data. Everything else
// falls back to the sequential loop, so Parallelism only ever changes
// wall-clock time, never a virtual-time result.

// ParallelStagesRan reports how many stages executed on concurrent
// workers, for tests guarding against the eligibility gate regressing
// into rejecting everything. Not part of metrics: the count
// legitimately differs between Parallelism settings.
func (c *Cluster) ParallelStagesRan() int { return c.parallelStages }

// parallelPlan decides whether the stage's tasks may run on concurrent
// per-executor workers. On success it returns the task indices grouped
// by home executor (each group in ascending task order) plus the
// executors in first-task order; otherwise both returns are nil and the
// caller must use the sequential loop.
func (c *Cluster) parallelPlan(st *Stage, taskParts []int) (map[*Executor][]int, []*Executor) {
	if c.par <= 1 || st.Regenerated || len(taskParts) < 2 {
		return nil, nil
	}
	// RealBytes runs measure wall-clock (de)serialization and file I/O;
	// concurrent workers would contend for cores and disk and distort the
	// measurements, so measured stages always take the sequential loop.
	if c.cfg.RealBytes {
		return nil, nil
	}
	// Quota-enforced pools charge a cluster-wide tenant ledger on the
	// admission path and may reclaim blocks on *other* executors;
	// concurrent workers would race those admission outcomes, so
	// quota-enforced stages always take the sequential loop.
	if c.quota != nil {
		return nil, nil
	}
	var caps ParallelCaps
	if pc, ok := c.ctl.(ParallelCapable); ok {
		caps = pc.ParallelCaps()
	}
	if !caps.Safe {
		return nil, nil
	}
	// Resilience gates. A blacklisted executor reroutes its tasks onto
	// other executors mid-stage, and an armed speculation race reads and
	// advances another executor's core from inside a task — both are
	// cross-executor effects the parallel machinery cannot buffer, so
	// such stages take the sequential loop at every Parallelism setting
	// (keeping virtual-time results bit-identical). Plain flakes and
	// stragglers without speculation stay parallel-safe: their decisions
	// are order-independent hashes and their costs are executor-local.
	if c.anyBlacklisted() {
		return nil, nil
	}
	if c.res.SpeculativeMultiple > 1 && (c.taskHook != nil || c.anyStraggling()) {
		return nil, nil
	}
	perExec := make(map[*Executor][]int)
	var order []*Executor
	for i, p := range taskParts {
		ex := c.taskExecutor(p)
		if _, ok := perExec[ex]; !ok {
			order = append(order, ex)
		}
		perExec[ex] = append(perExec[ex], i)
	}
	if len(order) < 2 {
		return nil, nil
	}
	if caps.RemoteReads && c.remoteEstimationPossible(st) {
		return nil, nil
	}
	if !c.stageIsolated(st, taskParts, caps.SpillOnlyEvictions) {
		return nil, nil
	}
	return perExec, order
}

// stablyCached reports whether every task-relevant partition of the
// dataset is cached on its home executor in a tier that cannot vanish
// while the stage's tasks run. Disk copies are stable (nothing removes
// disk blocks mid-stage); memory copies are stable only under a
// spill-only controller, where a concurrent eviction moves the block to
// disk instead of dropping it.
func (c *Cluster) stablyCached(d *dataflow.Dataset, taskParts []int, spillOnly bool) bool {
	for _, p := range taskParts {
		if p >= d.Partitions() {
			return false
		}
		ex := c.ExecutorFor(p)
		id := storage.BlockID{Dataset: d.ID(), Partition: p}
		if ex.Disk.Contains(id) {
			continue
		}
		if spillOnly && ex.Mem.Contains(id) {
			continue
		}
		return false
	}
	return true
}

// stageIsolated reports whether every recomputation path the stage's
// tasks could take — including paths exposed by the stage's own
// mid-stage evictions — stays on the task's home executor and never
// reaches an incomplete shuffle. Narrow dependencies preserve the
// partition index, so recursive recomputation is home-local by
// construction; an incomplete shuffle dependency is the one effect that
// escapes the executor (regenerating it runs a nested stage across the
// whole cluster). The walk descends narrow edges, stops at complete
// shuffles and at stably cached datasets, and rejects the stage on any
// reachable incomplete shuffle.
func (c *Cluster) stageIsolated(st *Stage, taskParts []int, spillOnly bool) bool {
	memo := make(map[int]bool)
	var safe func(d *dataflow.Dataset) bool
	safe = func(d *dataflow.Dataset) bool {
		if v, ok := memo[d.ID()]; ok {
			return v
		}
		ok := true
		if !c.stablyCached(d, taskParts, spillOnly) {
			for _, dep := range d.Deps() {
				if dep.Shuffle {
					if !c.shuffle.Complete(dep.ShuffleID) {
						ok = false
						break
					}
				} else if !safe(dep.Parent) {
					ok = false
					break
				}
			}
		}
		memo[d.ID()] = ok
		return ok
	}
	return safe(st.Boundary)
}

// remoteEstimationPossible reports whether a controller whose cost
// estimator walks lineage (caps.RemoteReads) could, during this stage,
// cross an incomplete shuffle edge whose parent and child partition
// counts differ. Such a crossing maps a partition index onto a
// different index, reaching lineage observations homed on another
// executor — a read that would race with that executor's concurrent
// writes. The walk starts from every dataset the controller can
// currently estimate (datasets with a cached block, plus the stage's
// own pipeline) and mirrors the estimator's recursion: it stops at
// complete shuffles and descends everything else.
func (c *Cluster) remoteEstimationPossible(st *Stage) bool {
	seeds := make(map[int]*dataflow.Dataset)
	for _, ex := range c.execs {
		for _, m := range ex.Mem.Blocks() {
			if ds := c.ctx.Dataset(m.ID.Dataset); ds != nil {
				seeds[ds.ID()] = ds
			}
		}
		for _, id := range ex.Disk.Blocks() {
			if ds := c.ctx.Dataset(id.Dataset); ds != nil {
				seeds[ds.ID()] = ds
			}
		}
	}
	for _, d := range st.Pipeline {
		seeds[d.ID()] = d
	}
	visited := make(map[int]bool)
	unsafe := false
	var walk func(d *dataflow.Dataset)
	walk = func(d *dataflow.Dataset) {
		if unsafe || visited[d.ID()] {
			return
		}
		visited[d.ID()] = true
		for _, dep := range d.Deps() {
			if dep.Shuffle {
				if c.shuffle.Complete(dep.ShuffleID) {
					continue // the estimator stops at available shuffles
				}
				if dep.Parent.Partitions() != d.Partitions() {
					unsafe = true
					return
				}
			}
			walk(dep.Parent)
		}
	}
	for _, d := range seeds {
		walk(d)
	}
	return unsafe
}

// runStageParallel executes the planned stage on one worker goroutine
// per executor, bounded by Config.Parallelism, then replays the
// buffered per-task side effects in ascending task order so the event
// log and disk-peak accounting match the sequential loop exactly. A
// worker panic is re-raised after the join, preferring the earliest
// task by task order — where the sequential loop would have failed.
func (c *Cluster) runStageParallel(st *Stage, taskParts []int, perExec map[*Executor][]int, order []*Executor, results [][]dataflow.Record) {
	c.parallelStages++
	traces := make([]*taskTrace, len(taskParts))
	for i := range traces {
		traces[i] = &taskTrace{}
	}
	var baseDisk int64
	for _, ex := range c.execs {
		baseDisk += ex.Disk.CurrentBytes()
	}

	type workerPanic struct {
		task int
		val  any
	}
	panics := make([]*workerPanic, len(order))
	sem := make(chan struct{}, c.par)
	var wg sync.WaitGroup
	for wi, ex := range order {
		wg.Add(1)
		go func(wi int, ex *Executor, idxs []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cur := -1
			defer func() {
				c.curTrace[ex.ID] = nil
				if r := recover(); r != nil {
					panics[wi] = &workerPanic{task: cur, val: r}
				}
			}()
			for _, i := range idxs {
				cur = i
				c.curTrace[ex.ID] = traces[i]
				ex.PickCore() // least-loaded core runs the task
				out := c.runTask(ex, st, taskParts[i])
				if st.IsResult {
					results[taskParts[i]] = out
				}
			}
		}(wi, ex, perExec[ex])
	}
	wg.Wait()

	var first *workerPanic
	for _, p := range panics {
		if p != nil && (first == nil || p.task < first.task) {
			first = p
		}
	}
	if first != nil {
		panic(first.val)
	}

	disk := baseDisk
	for _, tr := range traces {
		if c.log != nil {
			for _, e := range tr.events {
				c.log.Append(e)
			}
		}
		for _, d := range tr.diskDeltas {
			disk += d
			if disk > c.met.DiskPeakBytes {
				c.met.DiskPeakBytes = disk
			}
		}
	}
}
