package engine

// Regression tests for the recovery path: stage regeneration must not
// disturb the cost attribution of the outer tasks it interrupts, and
// fault injection must be fully recoverable and correctly accounted.

import (
	"reflect"
	"testing"
	"time"

	"blaze/internal/cachepolicy"
	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/eventlog"
	"blaze/internal/metrics"
	"blaze/internal/storage"
)

// shuffledPair builds src -> reduce with the given partition counts and
// runs one job so the shuffle is complete, returning the reduce dataset
// and its shuffle dependency.
func shuffledPair(t *testing.T, ctx *dataflow.Context, name string, parts int) (*dataflow.Dataset, dataflow.Dependency) {
	t.Helper()
	src := ctx.Source(name+"-src@0", parts, func(part int) []dataflow.Record {
		var out []dataflow.Record
		for i := part; i < parts*10; i += parts {
			out = append(out, dataflow.Record{Key: int64(i), Value: int64(i)})
		}
		return out
	})
	red := src.ReduceByKey(name+"-red@0", parts, func(a, b any) any { return a.(int64) + b.(int64) })
	red.Count()
	for _, dep := range red.Deps() {
		if dep.Shuffle {
			return red, dep
		}
	}
	t.Fatal("no shuffle dependency on reduce dataset")
	return nil, dataflow.Dependency{}
}

// TestRegenerationPreservesActiveCore is the regression test for the
// core-index clobbering bug: a nested regenerated stage picks its own
// cores via PickCore, and before the fix it left ex.cur pointing at the
// nested task's core, so the outer task's remaining costs landed on the
// wrong clock.
func TestRegenerationPreservesActiveCore(t *testing.T) {
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         1,
		CoresPerExecutor:  2,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemOnly(),
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	red, dep := shuffledPair(t, ctx, "rc", 1)
	_ = red
	c.shuffle.Clean(dep.ShuffleID)

	ex := c.execs[0]
	// Put the outer task on core 0 and make core 1 the least loaded, so
	// the nested regeneration task will pick core 1.
	ex.cores[0].Advance(time.Millisecond)
	ex.cur = 0
	before1 := ex.cores[1].Now()

	// Fetching the cleaned shuffle regenerates the map stage mid-"task".
	c.fetchShuffle(ex, dep, 1, 0)

	if ex.cores[1].Now() == before1 {
		t.Fatal("setup broken: nested regeneration did not run on core 1")
	}
	if ex.cur != 0 {
		t.Fatalf("regeneration clobbered the active core: cur = %d, want 0", ex.cur)
	}
}

// TestRegeneratedStageSkipsGlobalBarrier is the regression test for the
// mid-task barrier bug: before the fix, the nested runStage synchronized
// every executor to the global max clock in the middle of the outer task.
func TestRegeneratedStageSkipsGlobalBarrier(t *testing.T) {
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemOnly(),
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One partition: all tasks of the regenerated stage live on executor 0.
	_, dep := shuffledPair(t, ctx, "rb", 1)
	c.shuffle.Clean(dep.ShuffleID)

	// Push executor 1 far ahead; a leaked barrier would drag executor 0
	// to this clock mid-task.
	far := time.Hour
	c.execs[1].SyncTo(far)

	ex := c.execs[0]
	ex.PickCore()
	c.fetchShuffle(ex, dep, 1, 0)

	if got := ex.MaxClock(); got >= far {
		t.Fatalf("regenerated stage applied the global barrier: executor 0 at %v", got)
	}
}

// TestSpillCountsOnlyActualDiskWrites is the regression test for the
// EvictionsToDisk over-count: re-evicting a block whose disk copy was
// retained from an earlier spill writes nothing and must not count as a
// to-disk eviction.
func TestSpillCountsOnlyActualDiskWrites(t *testing.T) {
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         1,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemDisk(),
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	ds := ctx.Source("sp-src@0", 1, func(int) []dataflow.Record {
		return []dataflow.Record{{Key: 1, Value: int64(1)}}
	}).Map("sp-data@0", func(r dataflow.Record) dataflow.Record { return r })
	ds.Cache()
	ds.Count()
	ex := c.execs[0]
	id := storage.BlockID{Dataset: ds.ID(), Partition: 0}
	meta, ok := ex.Mem.Peek(id)
	if !ok {
		t.Fatal("setup: block not cached")
	}
	size := meta.Size

	if !c.SpillBlock(ex, id) {
		t.Fatal("first spill failed")
	}
	if !c.PromoteBlock(ex, id, true) {
		t.Fatal("promote failed")
	}
	if !c.SpillBlock(ex, id) {
		t.Fatal("second spill failed")
	}
	m := c.Metrics()
	if m.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", m.Evictions)
	}
	if m.EvictionsToDisk != 1 {
		t.Fatalf("EvictionsToDisk = %d, want 1 (second spill wrote nothing)", m.EvictionsToDisk)
	}
	if got := m.Executors[0].EvictedToDiskBytes; got != size {
		t.Fatalf("EvictedToDiskBytes = %d, want %d", got, size)
	}
}

// TestClusterDiskPeakIsConcurrent is the regression test for the
// DiskPeakBytes over-count: per-executor peaks at different virtual times
// must not be summed; the cluster-wide peak is the maximum concurrent
// footprint.
func TestClusterDiskPeakIsConcurrent(t *testing.T) {
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemDisk(),
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	ex0, ex1 := c.execs[0], c.execs[1]
	recs := []dataflow.Record{{Key: 1, Value: int64(1)}}
	a := storage.BlockID{Dataset: 100, Partition: 0}
	b := storage.BlockID{Dataset: 101, Partition: 1}

	c.writeToDisk(ex0, a, recs, 100) // cluster footprint 100
	c.DropBlock(ex0, a)              // back to 0
	c.writeToDisk(ex1, b, recs, 60)  // cluster footprint 60

	m := c.Finish()
	if m.DiskPeakBytes != 100 {
		t.Fatalf("cluster DiskPeakBytes = %d, want 100 (not the 160 sum of per-executor peaks)", m.DiskPeakBytes)
	}
	if m.Executors[0].DiskPeakBytes != 100 || m.Executors[1].DiskPeakBytes != 60 {
		t.Fatalf("per-executor peaks = %d, %d; want 100, 60",
			m.Executors[0].DiskPeakBytes, m.Executors[1].DiskPeakBytes)
	}
}

// TestStatefulPolicyPerExecutorIsolation asserts that a stateful policy
// configured on an annotation controller learns per executor: accesses on
// one executor must not pollute the frequency state another executor's
// eviction decisions use.
func TestStatefulPolicyPerExecutorIsolation(t *testing.T) {
	ctx := dataflow.NewContext()
	ctl := NewAnnotation("tinylfu", MemDisk, cachepolicy.NewTinyLFU(16), false)
	c, err := NewCluster(Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        ctl,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	ex0, ex1 := c.execs[0], c.execs[1]

	p0, p1 := ctl.policyFor(ex0), ctl.policyFor(ex1)
	if p0 == p1 {
		t.Fatal("stateful policy instance shared across executors")
	}

	a := storage.BlockID{Dataset: 1, Partition: 0}
	b := storage.BlockID{Dataset: 2, Partition: 0}
	// Block a is hot on executor 0 only; block b is warm on executor 1.
	for i := 0; i < 8; i++ {
		ctl.OnBlockAccess(ex0, a)
	}
	ctl.OnBlockAccess(ex1, b)

	metas := func() []*storage.BlockMeta {
		return []*storage.BlockMeta{
			{ID: a, Size: 10, LastAccess: 2},
			{ID: b, Size: 10, LastAccess: 1},
		}
	}
	// On executor 0, a is frequent: b must be evicted first.
	if got := p0.Order(metas())[0].ID; got != b {
		t.Fatalf("executor 0 evicts %v first, want %v", got, b)
	}
	// On executor 1, a was never seen: a must be evicted first. With a
	// single shared instance, executor 0's accesses would leak in and
	// flip this ordering.
	if got := p1.Order(metas())[0].ID; got != a {
		t.Fatalf("executor 1 evicts %v first, want %v (cross-executor state pollution)", got, a)
	}
}

// shuffleKiller is an engine.Hook that destroys one completed shuffle
// after every top-level stage, so later stages of the same job find it
// missing mid-run and must regenerate it.
type shuffleKiller struct{ n int }

func (k *shuffleKiller) OnJobStart(c *Cluster, j *Job) {}
func (k *shuffleKiller) OnStageEnd(c *Cluster, st *Stage) {
	ids := c.CompletedShuffles()
	if len(ids) == 0 {
		return
	}
	c.InjectShuffleLoss(ids[k.n%len(ids)])
	k.n++
}
func (k *shuffleKiller) OnJobEnd(c *Cluster, j *Job) {}

// TestRegenerationPathUnderShuffleLoss covers the regeneration path
// end-to-end: a multi-iteration workload whose shuffles are destroyed
// mid-run must (1) still compute the reference results, (2) attribute the
// regenerated stages and recoveries in the event log, and (3) not panic
// any controller on the st.Job == nil stages regeneration produces.
func TestRegenerationPathUnderShuffleLoss(t *testing.T) {
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 4, 4, 40, false)

	controllers := []func() Controller{
		func() Controller { return NewSparkMemOnly() },
		func() Controller { return NewSparkMemDisk() },
		func() Controller { return NewLRC(MemDisk) },
		func() Controller { return NewMRD(MemDisk) },
		func() Controller { return NewAnnotation("tinylfu", MemDisk, cachepolicy.NewTinyLFU(32), false) },
	}
	for _, mk := range controllers {
		ctl := mk()
		log := eventlog.New()
		ctx := dataflow.NewContext()
		c, err := NewCluster(Config{
			Executors:         2,
			MemoryPerExecutor: 4 * 1024,
			Params:            costmodel.Default(),
			Controller:        ctl,
			EventLog:          log,
			Hook:              &shuffleKiller{},
		}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		got := iterativeWorkload(ctx, 4, 4, 40, false)
		if got != want {
			t.Errorf("%s: result %v != reference %v under shuffle loss", ctl.Name(), got, want)
		}
		m := c.Finish()
		if m.FaultsInjected == 0 || m.FaultShufflesLost == 0 {
			t.Fatalf("%s: no shuffle faults injected (%d faults)", ctl.Name(), m.FaultsInjected)
		}
		if m.TotalFaultRecovery() == 0 {
			t.Errorf("%s: shuffle loss recovered but no recovery time attributed", ctl.Name())
		}

		regen, recovered := 0, 0
		for _, e := range log.Events() {
			switch {
			case e.Kind == eventlog.StageEnd && e.Regen:
				regen++
				if e.Job < 0 || e.Job >= m.Jobs {
					t.Fatalf("%s: regenerated stage attributed to job %d of %d", ctl.Name(), e.Job, m.Jobs)
				}
			case e.Kind == eventlog.Recovered:
				recovered++
				if e.Cost <= 0 {
					t.Fatalf("%s: recovery event without cost", ctl.Name())
				}
			}
		}
		if regen == 0 {
			t.Fatalf("%s: no regenerated stages recorded", ctl.Name())
		}
		if recovered == 0 {
			t.Fatalf("%s: no recovery events recorded", ctl.Name())
		}
		sum := eventlog.Summarize(log)
		totalRegen := 0
		for _, j := range sum.Jobs {
			totalRegen += j.Regenerated
		}
		if totalRegen != regen {
			t.Fatalf("%s: summary regenerated %d != %d events", ctl.Name(), totalRegen, regen)
		}
	}
}

// TestExecutorCacheLossRecovers injects a full executor cache loss
// between jobs and asserts recomputation-based recovery restores results
// and attributes the recovery to the right job.
func TestExecutorCacheLossRecovers(t *testing.T) {
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 3, 4, 40, true)

	ctx := dataflow.NewContext()
	log := eventlog.New()
	c, err := NewCluster(Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemOnly(),
		EventLog:          log,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Kill executor 0's cache after every job via a hook-free direct
	// wrapper on the runner, exercising InjectExecutorCacheLoss.
	inner := ctx.Runner()
	ctx.SetRunner(runnerFunc{
		run: func(target *dataflow.Dataset, action string) [][]dataflow.Record {
			out := inner.RunJob(target, action)
			c.InjectExecutorCacheLoss(c.Executors()[0])
			return out
		},
		inner: inner,
	})

	got := iterativeWorkload(ctx, 3, 4, 40, true)
	if got != want {
		t.Fatalf("result %v != reference %v under executor cache loss", got, want)
	}
	m := c.Finish()
	if m.FaultsInjected == 0 {
		t.Fatal("no faults recorded")
	}
	if m.FaultBlocksLost == 0 || m.FaultBytesLost == 0 {
		t.Fatalf("executor cache loss destroyed nothing: blocks=%d bytes=%d", m.FaultBlocksLost, m.FaultBytesLost)
	}
	if m.TotalFaultRecovery() == 0 {
		t.Fatal("lost cached blocks were recomputed but no fault recovery attributed")
	}
}

// TestExecutorDeathMigratesPartitions kills one executor between jobs of
// an iterative workload and asserts (1) results stay bit-identical to the
// fault-free reference, (2) the dead executor's partition slots migrate
// to survivors and no further tasks land on it, (3) its map outputs are
// invalidated and the rebalancing + re-run work is attributed to the
// exec-death class.
func TestExecutorDeathMigratesPartitions(t *testing.T) {
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 3, 6, 40, true)

	ctx := dataflow.NewContext()
	log := eventlog.New()
	c, err := NewCluster(Config{
		Executors:         3,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemDisk(),
		EventLog:          log,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Executors()[1]
	jobs := 0
	inner := ctx.Runner()
	ctx.SetRunner(runnerFunc{
		run: func(target *dataflow.Dataset, action string) [][]dataflow.Record {
			out := inner.RunJob(target, action)
			jobs++
			if jobs == 1 {
				if !c.InjectExecutorDeath(victim) {
					t.Fatal("death injection refused")
				}
			}
			return out
		},
		inner: inner,
	})

	got := iterativeWorkload(ctx, 3, 6, 40, true)
	if got != want {
		t.Fatalf("result %v != reference %v under executor death", got, want)
	}

	if !victim.Dead() {
		t.Fatal("victim not marked dead")
	}
	if live := c.LiveExecutors(); len(live) != 2 || live[0].ID != 0 || live[1].ID != 2 {
		t.Fatalf("LiveExecutors = %v", live)
	}
	// Every partition slot resolves to a survivor; the victim's slot 1
	// was rebalanced round-robin over the sorted survivors.
	for p := 0; p < 6; p++ {
		if ex := c.ExecutorFor(p); ex.Dead() {
			t.Fatalf("partition %d still homed on the dead executor", p)
		}
	}
	tasksOnVictim := c.Metrics().Executors[victim.ID].Tasks
	frozen := victim.MaxClock()

	m := c.Finish()
	if m.ExecutorDeaths != 1 {
		t.Fatalf("ExecutorDeaths = %d, want 1", m.ExecutorDeaths)
	}
	if m.MigratedPartitions != 1 {
		t.Fatalf("MigratedPartitions = %d, want 1 (one slot of three)", m.MigratedPartitions)
	}
	if m.RebalanceTime <= 0 {
		t.Fatal("no rebalance time charged")
	}
	if m.Executors[victim.ID].RebalanceTime != 0 {
		t.Fatal("rebalance time charged to the dead executor")
	}
	if m.FaultMapOutputsLost == 0 || m.FaultShuffleBytesLost == 0 {
		t.Fatalf("death lost no map outputs: maps=%d bytes=%d",
			m.FaultMapOutputsLost, m.FaultShuffleBytesLost)
	}
	if m.FaultRecoveryByClass["exec-death"] <= 0 {
		t.Fatalf("no exec-death recovery attributed: %v", m.FaultRecoveryByClass)
	}
	if got := c.Metrics().Executors[victim.ID].Tasks; got != tasksOnVictim {
		t.Fatalf("dead executor ran more tasks: %d -> %d", tasksOnVictim, got)
	}
	if victim.MaxClock() != frozen {
		t.Fatalf("dead executor clock advanced: %v -> %v", frozen, victim.MaxClock())
	}

	// A dead executor cannot die twice, and the last survivor is spared.
	if c.InjectExecutorDeath(victim) {
		t.Fatal("second death of the same executor accepted")
	}
	if !c.InjectExecutorDeath(c.Executors()[0]) {
		t.Fatal("death of executor 0 refused")
	}
	if c.InjectExecutorDeath(c.Executors()[2]) {
		t.Fatal("killing the last live executor accepted")
	}

	var deadEvents, migEvents int
	for _, e := range log.Events() {
		switch e.Kind {
		case eventlog.ExecutorDead:
			deadEvents++
		case eventlog.PartitionsMigrated:
			migEvents++
			if e.Count <= 0 {
				t.Fatal("migration event without slot count")
			}
		}
	}
	if deadEvents != 2 || migEvents != 2 {
		t.Fatalf("events: %d executor_dead, %d partitions_migrated; want 2, 2", deadEvents, migEvents)
	}
}

// countTasksUnderLoss runs a two-job shuffle workload, injects the given
// fault between the jobs, and returns the total tasks executed plus the
// second job's results — the harness for comparing partial-bucket against
// whole-shuffle recovery.
func countTasksUnderLoss(t *testing.T, parts int, inject func(c *Cluster, shuffleID int)) (int, [][]dataflow.Record, *metrics.App) {
	t.Helper()
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemOnly(),
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	red, dep := shuffledPair(t, ctx, "pb", parts)
	inject(c, dep.ShuffleID)
	got := red.Collect()
	total := 0
	for i := range c.Metrics().Executors {
		total += c.Metrics().Executors[i].Tasks
	}
	return total, got, c.Finish()
}

// TestBucketLossRerunsFewerMapsThanShuffleLoss is the acceptance test for
// partial shuffle recovery: with >1 reducer, losing one bucket must
// re-run strictly fewer map tasks than losing the whole shuffle, while
// both recover to identical results.
func TestBucketLossRerunsFewerMapsThanShuffleLoss(t *testing.T) {
	const parts = 4
	none, want, _ := countTasksUnderLoss(t, parts, func(c *Cluster, sid int) {})

	bucketTasks, gotB, mB := countTasksUnderLoss(t, parts, func(c *Cluster, sid int) {
		if !c.InjectBucketLoss(sid, 2, 1) {
			t.Fatal("bucket loss refused")
		}
	})
	shuffleTasks, gotS, mS := countTasksUnderLoss(t, parts, func(c *Cluster, sid int) {
		if !c.InjectShuffleLoss(sid) {
			t.Fatal("shuffle loss refused")
		}
	})

	if !reflect.DeepEqual(gotB, want) || !reflect.DeepEqual(gotS, want) {
		t.Fatal("recovered results differ from fault-free reference")
	}
	// Bucket loss re-runs exactly the one producing map task on top of
	// the fault-free schedule; whole-shuffle loss re-runs all maps.
	if bucketTasks != none+1 {
		t.Fatalf("bucket loss ran %d tasks, want %d (fault-free %d + 1 map)", bucketTasks, none+1, none)
	}
	if shuffleTasks != none+parts {
		t.Fatalf("shuffle loss ran %d tasks, want %d", shuffleTasks, none+parts)
	}
	if bucketTasks >= shuffleTasks {
		t.Fatalf("bucket loss must re-run strictly fewer tasks: %d vs %d", bucketTasks, shuffleTasks)
	}
	if mB.FaultBucketsLost != 1 || mB.FaultMapOutputsLost != 1 {
		t.Fatalf("bucket metrics: buckets=%d maps=%d", mB.FaultBucketsLost, mB.FaultMapOutputsLost)
	}
	if mB.FaultRecoveryByClass["bucket"] <= 0 {
		t.Fatalf("no bucket recovery attributed: %v", mB.FaultRecoveryByClass)
	}
	if mS.FaultRecoveryByClass["shuffle"] <= 0 {
		t.Fatalf("no shuffle recovery attributed: %v", mS.FaultRecoveryByClass)
	}
	if mB.TotalFaultRecovery() >= mS.TotalFaultRecovery() {
		t.Fatalf("partial recovery should cost less: %v vs %v",
			mB.TotalFaultRecovery(), mS.TotalFaultRecovery())
	}
}

// runnerFunc adapts a function to dataflow.JobRunner for test wrappers.
type runnerFunc struct {
	run   func(*dataflow.Dataset, string) [][]dataflow.Record
	inner dataflow.JobRunner
}

func (r runnerFunc) RunJob(d *dataflow.Dataset, action string) [][]dataflow.Record {
	return r.run(d, action)
}
func (r runnerFunc) Unpersist(d *dataflow.Dataset) { r.inner.Unpersist(d) }
func (r runnerFunc) Release(d *dataflow.Dataset)   { r.inner.Release(d) }
