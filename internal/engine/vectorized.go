package engine

// The columnar task loop. runTaskBodyVec / materializeVec /
// fetchShuffleVec are line-for-line mirrors of runTaskBody /
// materialize / fetchShuffle in scheduler.go with one difference: data
// moves between narrow operators as typed *dataflow.Batch columns with
// pooled backing arrays instead of boxed []dataflow.Record slices.
// Every virtual-time charge, metrics increment, controller callback and
// event is issued at the same point with the same arguments, and batch
// kernels are required to be observationally identical to their row
// compute functions (same records, same order, bit-equal floats), so a
// vectorized run's metrics and event log are byte-equal to the row
// run's. Block stores and the driver boundary stay row-typed: batches
// are boxed exactly once when a partition is cached, spilled or
// collected, and unboxed (copied) once on a cache hit.
//
// When editing runTaskBody/materialize/fetchShuffle, mirror the change
// here; TestVectorizedIdentity and the blazebench -throughput identity
// check will catch a missed divergence.

import (
	"sync/atomic"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/eventlog"
	"blaze/internal/storage"
)

// vecTasksTotal counts tasks executed on the columnar loop across the
// whole process. It exists so tests and blazebench can assert the
// vectorized path actually engaged — by construction nothing in a run's
// metrics or events reveals which loop ran.
var vecTasksTotal atomic.Int64

// VecTasksExecuted returns the process-wide count of columnar tasks.
func VecTasksExecuted() int64 { return vecTasksTotal.Load() }

// runTaskBodyVec is runTaskBody on the columnar data plane. The result
// stage still returns rows (the driver boundary); map stages return nil
// because runStage ignores map-task results.
func (c *Cluster) runTaskBodyVec(ex *Executor, st *Stage, part int) []dataflow.Record {
	vecTasksTotal.Add(1)
	ex.Clock().Advance(c.cfg.Params.TaskOverhead)
	c.met.Executors[ex.ID].Tasks++
	out := c.materializeVec(ex, st.Boundary, part)
	c.emitEx(ex, eventlog.Event{Kind: eventlog.TaskEnd, Time: ex.Clock().Now(), Job: c.curJob,
		Stage: st.ID, Executor: ex.ID, Dataset: st.Boundary.ID(), Partition: part})
	if st.IsResult {
		recs := out.Records()
		out.Release()
		return recs
	}

	dep := st.ShuffleDep
	batches := make([]*dataflow.Batch, st.NumBuckets)
	if dep.Broadcast {
		// Every bucket shares the one output batch; the shuffle service
		// retains it, so it is not released below.
		for b := range batches {
			batches[b] = out
		}
	} else {
		router, ok := c.shuffle.Router(dep.ShuffleID)
		if !ok {
			router = dataflow.NewRouter(st.NumBuckets)
		}
		for i := 0; i < out.Len(); i++ {
			b := router.Bucket(out.Keys[i])
			bb := batches[b]
			if bb == nil {
				bb = dataflow.NewBatch(8)
				bb.NonNil = true // row routing appends, yielding non-nil buckets
				batches[b] = bb
			}
			bb.AppendFromBatch(out, i)
		}
	}
	bucketBytes := make([]int64, st.NumBuckets)
	var written int64
	for b, bb := range batches {
		if bb.Len() == 0 {
			continue // row path skips empty buckets: size stays 0, not 24
		}
		if dep.Combine != nil {
			merged := combineBucket(bb, dep)
			bb.Release()
			batches[b] = merged
			bb = merged
		}
		size := bb.EstimateSize()
		bucketBytes[b] = size
		written += size
	}
	if !dep.Broadcast {
		out.Release()
	}
	if err := c.shuffle.SetMapOutputBatch(dep.ShuffleID, part, ex.ID, batches, bucketBytes); err != nil {
		panic(err) // stage was Ensure'd and only missing maps re-run
	}
	// Shuffle write cost: serialization dominates, exactly as in
	// runTaskBody.
	cost := c.cfg.Params.Serialize(written)
	ex.Clock().Advance(cost)
	c.met.Executors[ex.ID].Breakdown.Shuffle += cost
	return nil
}

// combineBucket applies map-side combining to one routed bucket,
// unboxed when the dependency carries a float64 combiner and the bucket
// is a float64 column, boxed otherwise. Both branches preserve
// mergeByKey's first-seen key order and per-key accumulation order, so
// the merged values are bit-equal to the row path's.
func combineBucket(bb *dataflow.Batch, dep dataflow.Dependency) *dataflow.Batch {
	if dep.CombineF64 != nil {
		if _, ok := bb.Col.(*dataflow.F64Column); ok {
			return dataflow.MergeBatchByKeyF64(bb, dep.CombineF64)
		}
	}
	return dataflow.FromRecords(dataflow.MergeByKey(bb.Records(), dep.Combine))
}

// materializeVec is materialize on the columnar data plane: the same
// three recovery paths, charges and events; only the payload container
// differs. Cache hits box out of the store (FromRecords copies, so
// released batches never alias cached records); recomputed partitions
// box into it at most once, and only if the controller places them.
func (c *Cluster) materializeVec(ex *Executor, ds *dataflow.Dataset, part int) *dataflow.Batch {
	id := storage.BlockID{Dataset: ds.ID(), Partition: part}
	params := c.cfg.Params
	stats := &c.met.Executors[ex.ID]

	// 1. Memory store.
	if recs, meta, ok := ex.Mem.Get(id, ex.Clock().Now()); ok {
		if c.cfg.AlluxioMode {
			cost := params.Serialize(meta.Size)
			ex.Clock().Advance(cost)
			stats.Breakdown.DiskIO += cost
			c.meter.AddModeled(storage.MemDecode, cost)
		}
		c.met.IncCacheHit()
		c.ctl.OnBlockAccess(ex, id)
		c.emitEx(ex, eventlog.Event{Kind: eventlog.BlockHit, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: meta.Size})
		return dataflow.FromRecords(recs)
	}

	// 2. Disk store.
	if recs, size, ok := ex.Disk.Get(id); ok {
		cost := params.DiskRead(size)
		ex.Clock().Advance(cost)
		stats.Breakdown.DiskIO += cost
		c.meter.AddModeled(storage.DiskRead, cost)
		c.met.IncDiskHit()
		c.ctl.OnBlockAccess(ex, id)
		c.emitEx(ex, eventlog.Event{Kind: eventlog.BlockDiskHit, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: size, Cost: cost})
		if c.ctl.PromoteOnDiskRead(ex, id) {
			c.admitToMemory(ex, id, recs, size)
		}
		return dataflow.FromRecords(recs)
	}

	// 3. Recompute from parents.
	c.mu.Lock()
	wasComputed := c.computedOnce[id]
	c.mu.Unlock()
	ins := make([]*dataflow.Batch, len(ds.Deps()))
	totalIn := 0
	var fetchCost time.Duration
	for i, dep := range ds.Deps() {
		if dep.Shuffle {
			var fc time.Duration
			ins[i], fc = c.fetchShuffleVec(ex, dep, ds.Partitions(), part)
			fetchCost += fc
		} else {
			ins[i] = c.materializeVec(ex, dep.Parent, part)
		}
		totalIn += ins[i].Len()
	}
	out := ds.BatchCompute(part, ins)
	for _, in := range ins {
		in.Release() // kernels must not retain inputs; see batch.go
	}
	n := totalIn
	if out.Len() > n {
		n = out.Len()
	}
	size := out.EstimateSize()
	cost := params.Compute(costmodel.OpClass(ds.Class()), n)
	if len(ds.Deps()) == 0 {
		cost += params.SourceRead(size)
	}
	ex.Clock().Advance(cost)
	stats.Breakdown.Compute += cost
	if wasComputed {
		stats.Breakdown.Recompute += cost
		c.met.IncMiss()
		c.met.AddRecompute(c.curJob, cost)
		c.emitEx(ex, eventlog.Event{Kind: eventlog.Recomputed, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: ds.ID(), Partition: part, Cost: cost})
	}
	c.mu.Lock()
	class, wasFaultLost := c.faultLost[id]
	if wasFaultLost {
		delete(c.faultLost, id)
	}
	c.computedOnce[id] = true
	c.mu.Unlock()
	if wasFaultLost {
		c.met.AddFaultRecovery(c.curJob, cost)
		c.met.AddFaultRecoveryClass(class, cost)
		c.emitEx(ex, eventlog.Event{Kind: eventlog.Recovered, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: ds.ID(), Partition: part, Cost: cost})
	}

	c.ctl.OnComputed(ex, ds, part, size, cost+fetchCost)

	primary, fallback := c.ctl.PlaceComputed(ex, ds, part, size)
	var boxed []dataflow.Record
	box := func() []dataflow.Record {
		if boxed == nil {
			boxed = out.Records()
		}
		return boxed
	}
	placed := false
	if primary == PlaceMemory {
		placed = c.admitToMemory(ex, id, box(), size)
	}
	if !placed && (primary == PlaceDisk || (primary == PlaceMemory && fallback == PlaceDisk)) {
		c.writeToDisk(ex, id, box(), size)
	}
	return out
}

// fetchShuffleVec is fetchShuffle returning a columnar bucket; the
// regeneration/flake prologue and the fetch cost charge are identical.
func (c *Cluster) fetchShuffleVec(ex *Executor, dep dataflow.Dependency, childParts, part int) (*dataflow.Batch, time.Duration) {
	c.fetchShufflePrologue(ex, dep, childParts, part)
	bb, bytes, err := c.shuffle.FetchBatch(dep.ShuffleID, part)
	if err != nil {
		panic(err) // regeneration above guarantees completeness
	}
	cost := c.cfg.Params.NetTransfer(bytes) + c.cfg.Params.Serialize(bytes)
	ex.Clock().Advance(cost)
	c.met.Executors[ex.ID].Breakdown.Shuffle += cost
	return bb, cost
}
