package engine

import (
	"sort"
	"time"

	"blaze/internal/cachepolicy"
	"blaze/internal/dataflow"
	"blaze/internal/storage"
)

// StorageLevel selects how evicted cache data is handled, the fixed
// per-workload choice existing systems offer (§3.2).
type StorageLevel int

const (
	// MemOnly discards victims and recovers by recomputation
	// (Spark's MEMORY_ONLY).
	MemOnly StorageLevel = iota
	// MemDisk spills victims to disk and recovers by reloading
	// (Spark's MEMORY_AND_DISK).
	MemDisk
)

// AnnotationController reproduces the caching mechanism of existing
// systems (§2.3): it blindly follows the user's cache()/unpersist()
// annotations at dataset granularity, evicts according to a pluggable
// policy, and recovers according to the fixed storage level. LRC and MRD
// are obtained by plugging their orderings and, for MRD, enabling
// prefetch; reference information is derived from the currently submitted
// job only, as those systems do (§7.1).
type AnnotationController struct {
	name     string
	level    StorageLevel
	policy   cachepolicy.Policy
	prefetch bool

	// perExec holds per-executor policy instances for stateful policies
	// that implement cachepolicy.Cloner. Executors evict independently,
	// so a single shared instance would observe the interleaved access
	// streams of all executors and pollute its learned state; stateless
	// policies are shared safely.
	perExec map[int]cachepolicy.Policy

	c *Cluster
	// refStages maps dataset id → stage indices (ascending) of the
	// current job that reference the dataset.
	refStages map[int][]int
	curStage  int
}

// NewSparkMemOnly models MEM_ONLY Spark: LRU eviction, recomputation
// recovery.
func NewSparkMemOnly() *AnnotationController {
	return &AnnotationController{name: "spark-mem", level: MemOnly, policy: cachepolicy.LRU{}}
}

// NewSparkMemDisk models MEM+DISK Spark: LRU eviction, spill to disk.
func NewSparkMemDisk() *AnnotationController {
	return &AnnotationController{name: "spark-memdisk", level: MemDisk, policy: cachepolicy.LRU{}}
}

// NewAlluxio models the controller side of Spark+Alluxio (pair with
// Config.AlluxioMode, which charges (de)serialization on the memory
// tier).
func NewAlluxio() *AnnotationController {
	return &AnnotationController{name: "spark-alluxio", level: MemDisk, policy: cachepolicy.LRU{}}
}

// NewLRC models Spark with the least-reference-count eviction policy.
func NewLRC(level StorageLevel) *AnnotationController {
	name := "lrc"
	if level == MemOnly {
		name = "lrc-mem"
	}
	return &AnnotationController{name: name, level: level, policy: cachepolicy.LRC{}}
}

// NewMRD models Spark with the most-reference-distance eviction policy
// and its nearest-reference prefetching.
func NewMRD(level StorageLevel) *AnnotationController {
	name := "mrd"
	prefetch := level == MemDisk // prefetching needs a disk tier
	if level == MemOnly {
		name = "mrd-mem"
	}
	return &AnnotationController{name: name, level: level, policy: cachepolicy.MRD{}, prefetch: prefetch}
}

// NewAnnotation builds a controller with an arbitrary policy, for custom
// configurations and tests. Stateful policies implementing
// cachepolicy.Cloner are cloned per executor so each executor's instance
// learns only from its own access stream.
func NewAnnotation(name string, level StorageLevel, policy cachepolicy.Policy, prefetch bool) *AnnotationController {
	return &AnnotationController{name: name, level: level, policy: policy, prefetch: prefetch}
}

// Name implements Controller.
func (a *AnnotationController) Name() string { return a.name }

// Bind implements Controller. Per-executor policy clones are created
// here, up front: policyFor is on the task path, and lazily growing the
// map there would race once stages run on parallel workers.
func (a *AnnotationController) Bind(c *Cluster) {
	a.c = c
	if cl, ok := a.policy.(cachepolicy.Cloner); ok {
		a.perExec = make(map[int]cachepolicy.Policy, len(c.Executors()))
		for _, ex := range c.Executors() {
			a.perExec[ex.ID] = cl.Clone()
		}
	}
}

// ParallelCaps implements ParallelCapable. Annotation controllers keep
// no shared task-path state: policy bookkeeping lives in per-block
// metadata and per-executor policy clones, and the reference index
// (refStages, curStage) is written only at job and stage boundaries.
// The eviction disposition is fixed by the storage level, so MemDisk
// controllers never drop a memory block without a disk copy.
func (a *AnnotationController) ParallelCaps() ParallelCaps {
	return ParallelCaps{
		Safe:               true,
		SpillOnlyEvictions: a.level == MemDisk,
	}
}

// policyFor returns the executor's policy instance: a per-executor clone
// for stateful policies implementing cachepolicy.Cloner, the shared
// instance otherwise.
func (a *AnnotationController) policyFor(ex *Executor) cachepolicy.Policy {
	if a.perExec != nil {
		if p, ok := a.perExec[ex.ID]; ok {
			return p
		}
	}
	return a.policy
}

// OnJobStart rebuilds the reference index from the submitted job's DAG —
// the only dependency information annotation-based systems have.
func (a *AnnotationController) OnJobStart(j *Job) {
	a.refStages = make(map[int][]int)
	a.curStage = 0
	for _, st := range j.Stages {
		for _, d := range st.Pipeline {
			a.refStages[d.ID()] = append(a.refStages[d.ID()], st.Index)
		}
	}
}

// OnJobEnd implements Controller.
func (a *AnnotationController) OnJobEnd(j *Job) {}

// OnStageEnd advances the reference cursor and, for MRD, prefetches the
// nearest-referenced disk blocks into free memory during barrier idle
// time.
func (a *AnnotationController) OnStageEnd(st *Stage, idle []time.Duration) {
	if st.Job != nil {
		a.curStage = st.Index + 1
	}
	if !a.prefetch {
		return
	}
	for i, ex := range a.c.Executors() {
		budget := idle[i]
		if budget <= 0 {
			continue
		}
		cands := a.prefetchCandidates(ex)
		for _, meta := range cands {
			cost := a.c.Params().DiskRead(meta.Size)
			if cost > budget || meta.Size > ex.Mem.Free() {
				continue
			}
			if a.c.PromoteBlock(ex, meta.ID, false) {
				budget -= cost
			}
		}
	}
}

// prefetchCandidates lists on-disk blocks with a future reference in the
// current job, nearest first.
func (a *AnnotationController) prefetchCandidates(ex *Executor) []*storage.BlockMeta {
	var metas []*storage.BlockMeta
	for _, id := range ex.Disk.Blocks() {
		dist, ok := a.refDistance(id.Dataset)
		if !ok {
			continue
		}
		// Size, not Get: this is a metadata scan, and in real-bytes mode
		// Get would read and decode the block's file.
		size, _ := ex.Disk.Size(id)
		metas = append(metas, &storage.BlockMeta{ID: id, Size: size, RefDistance: dist})
	}
	return cachepolicy.PrefetchOrder(metas)
}

// refCount returns the number of remaining references to the dataset in
// the current job.
func (a *AnnotationController) refCount(dsID int) int {
	n := 0
	for _, idx := range a.refStages[dsID] {
		if idx >= a.curStage {
			n++
		}
	}
	return n
}

// refDistance returns the stage distance to the dataset's next reference.
func (a *AnnotationController) refDistance(dsID int) (int, bool) {
	idxs := a.refStages[dsID]
	i := sort.SearchInts(idxs, a.curStage)
	if i == len(idxs) {
		return 0, false
	}
	return idxs[i] - a.curStage, true
}

// PlaceComputed follows the user annotation at dataset granularity: every
// partition of an annotated dataset is cached, regardless of benefit
// (§3.1).
func (a *AnnotationController) PlaceComputed(ex *Executor, ds *dataflow.Dataset, part int, size int64) (Placement, Placement) {
	if !ds.IsCached() {
		return PlaceNone, PlaceNone
	}
	if a.level == MemDisk {
		return PlaceMemory, PlaceDisk
	}
	return PlaceMemory, PlaceNone
}

// SelectVictims orders the executor's resident blocks with the policy and
// returns enough of a prefix to free the requested bytes. The disposition
// is fixed by the storage level, the cost-agnostic behaviour §3.2
// describes.
func (a *AnnotationController) SelectVictims(ex *Executor, need int64) []Victim {
	blocks := ex.Mem.Blocks()
	for _, m := range blocks {
		m.RefCount = a.refCount(m.ID.Dataset)
		if d, ok := a.refDistance(m.ID.Dataset); ok {
			m.RefDistance = d
		} else {
			m.RefDistance = 1 << 20 // never referenced again in this job
		}
	}
	ordered := a.policyFor(ex).Order(blocks)
	var out []Victim
	var freed int64
	for _, m := range ordered {
		if freed >= need {
			break
		}
		out = append(out, Victim{ID: m.ID, ToDisk: a.level == MemDisk})
		freed += m.Size
	}
	return out
}

// PromoteOnDiskRead mirrors Spark's MEMORY_AND_DISK behaviour of caching
// disk-read values back into memory when the level includes memory.
func (a *AnnotationController) PromoteOnDiskRead(ex *Executor, id storage.BlockID) bool {
	return a.level == MemDisk
}

// OnBlockAccess implements Controller; access stats live in BlockMeta,
// and stateful policies (TinyLFU, LeCaR) additionally receive the event
// on the accessed executor's own instance.
func (a *AnnotationController) OnBlockAccess(ex *Executor, id storage.BlockID) {
	if sp, ok := a.policyFor(ex).(cachepolicy.StatefulPolicy); ok {
		sp.OnAccess(id)
	}
}

// OnBlockAdmitted implements Controller.
func (a *AnnotationController) OnBlockAdmitted(ex *Executor, id storage.BlockID) {
	if sp, ok := a.policyFor(ex).(cachepolicy.StatefulPolicy); ok {
		sp.OnInsert(id)
	}
}

// OnBlockRemoved implements Controller.
func (a *AnnotationController) OnBlockRemoved(ex *Executor, id storage.BlockID) {
	if sp, ok := a.policyFor(ex).(cachepolicy.StatefulPolicy); ok {
		sp.OnEvict(id)
	}
}

// OnComputed implements Controller; annotation systems track no
// per-partition metrics.
func (a *AnnotationController) OnComputed(ex *Executor, ds *dataflow.Dataset, part int, size int64, cost time.Duration) {
}
