package engine_test

import (
	"math/rand"
	"sort"
	"testing"

	"blaze/internal/cachepolicy"
	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/enginetest"
	"blaze/internal/faults"
	"blaze/internal/storage"
)

// TestFuzzEquivalenceAcrossSystems is the big correctness property: for
// random DAGs and random programs, every controller configuration under
// brutal eviction pressure computes exactly the reference results.
func TestFuzzEquivalenceAcrossSystems(t *testing.T) {
	controllers := []func() engine.Controller{
		func() engine.Controller { return engine.NewSparkMemOnly() },
		func() engine.Controller { return engine.NewSparkMemDisk() },
		func() engine.Controller { return engine.NewLRC(engine.MemDisk) },
		func() engine.Controller { return engine.NewMRD(engine.MemDisk) },
		func() engine.Controller {
			return engine.NewAnnotation("tinylfu", engine.MemDisk, cachepolicy.NewTinyLFU(64), false)
		},
		func() engine.Controller {
			return engine.NewAnnotation("lecar", engine.MemOnly, cachepolicy.NewLeCaR(), false)
		},
		func() engine.Controller {
			return engine.NewAnnotation("gdwheel", engine.MemDisk, cachepolicy.GDWheel{}, false)
		},
	}
	for seed := int64(1); seed <= 12; seed++ {
		want := enginetest.RefChecksums(seed)
		for i, mk := range controllers {
			ctl := mk()
			ctx := dataflow.NewContext()
			c, err := engine.NewCluster(engine.Config{
				Executors:         3,
				MemoryPerExecutor: 2048, // brutal pressure
				Params:            costmodel.Default(),
				Controller:        ctl,
			}, ctx)
			if err != nil {
				t.Fatal(err)
			}
			got := enginetest.BuildRandomProgram(seed, ctx)
			if len(got) != len(want) {
				t.Fatalf("seed %d ctl %d (%s): %d checksums, want %d", seed, i, ctl.Name(), len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("seed %d ctl %d (%s): checksum %d = %d, want %d",
						seed, i, ctl.Name(), k, got[k], want[k])
				}
			}
			c.Finish()
		}
	}
}

// TestFailureInjection drops random cached and disk blocks between jobs —
// modeling executor cache loss — and asserts results stay correct: the
// lineage-based recovery (disk reload, shuffle reread, recursive
// recomputation, stage regeneration) must reproduce every partition.
func TestFailureInjection(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		want := enginetest.RefChecksums(seed)

		ctx := dataflow.NewContext()
		c, err := engine.NewCluster(engine.Config{
			Executors:         3,
			MemoryPerExecutor: 1 << 20,
			Params:            costmodel.Default(),
			Controller:        engine.NewSparkMemDisk(),
		}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 7))
		// Interpose on the runner: after every job, drop a random subset
		// of blocks from both tiers.
		inner := ctx.Runner()
		ctx.SetRunner(&faultInjector{inner: inner, c: c, rng: rng})

		got := enginetest.BuildRandomProgram(seed, ctx)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d checksums, want %d", seed, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("seed %d: checksum %d = %d, want %d after failure injection", seed, k, got[k], want[k])
			}
		}
	}
}

// faultInjector wraps the cluster's job runner, killing random blocks
// after every job.
type faultInjector struct {
	inner dataflow.JobRunner
	c     *engine.Cluster
	rng   *rand.Rand
}

func (f *faultInjector) RunJob(target *dataflow.Dataset, action string) [][]dataflow.Record {
	out := f.inner.RunJob(target, action)
	for _, ex := range f.c.Executors() {
		var ids []storage.BlockID
		for _, m := range ex.Mem.Blocks() {
			ids = append(ids, m.ID)
		}
		ids = append(ids, ex.Disk.Blocks()...)
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].Dataset != ids[j].Dataset {
				return ids[i].Dataset < ids[j].Dataset
			}
			return ids[i].Partition < ids[j].Partition
		})
		for _, id := range ids {
			if f.rng.Intn(3) == 0 {
				f.c.DropBlock(ex, id)
			}
		}
	}
	return out
}

func (f *faultInjector) Unpersist(d *dataflow.Dataset) { f.inner.Unpersist(d) }
func (f *faultInjector) Release(d *dataflow.Dataset)   { f.inner.Release(d) }

// FuzzFaultSchedules fuzzes the fault-schedule space — class subsets,
// boundary and task rates, retry budgets — over the random programs and
// requires every run to terminate with the reference checksums. The seed
// corpus pins one schedule per fault class (bit i of classMask selects
// faults.AllClasses()[i]).
func FuzzFaultSchedules(f *testing.F) {
	all := faults.AllClasses()
	for i := range all {
		f.Add(int64(i+1), int64(3*i+7), uint8(1<<i), uint8(i%3), uint8(4+i), i%2 == 0)
	}
	f.Add(int64(9), int64(42), uint8(0xff), uint8(1), uint8(5), true) // everything at once
	f.Fuzz(func(t *testing.T, programSeed, faultSeed int64, classMask, every, taskEvery uint8, atStage bool) {
		var classes []faults.Class
		for i, cl := range all {
			if classMask&(1<<i) != 0 {
				classes = append(classes, cl)
			}
		}
		if len(classes) == 0 {
			return
		}
		programSeed = 1 + (programSeed%100+100)%100
		cfg := faults.Config{
			Seed:       faultSeed,
			Classes:    classes,
			Every:      int(every % 4),
			AtStageEnd: atStage,
			TaskEvery:  int(taskEvery % 16),
		}
		want := enginetest.RefChecksums(programSeed)
		got, _, err := enginetest.RunRandomProgram(programSeed, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("schedule %+v on program %d: %d checksums, want %d", cfg, programSeed, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("schedule %+v on program %d: checksum %d = %d, want %d", cfg, programSeed, k, got[k], want[k])
			}
		}
	})
}
