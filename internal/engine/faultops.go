package engine

import (
	"blaze/internal/eventlog"
	"blaze/internal/storage"
)

// This file holds the cluster-side fault-injection primitives used by
// internal/faults. Unlike DropBlock/DropDataset — which model deliberate
// unpersists — these destroy state behind the controller's back, count as
// faults in the metrics, and mark what was lost so the recovery work that
// follows (recomputation, disk reload, stage resubmission) is attributed
// per fault and per job (§4.3, Fig. 5).

// loseBlock removes one block from both tiers without unpersist
// accounting, notifying the controller, and returns the bytes destroyed.
func (c *Cluster) loseBlock(ex *Executor, id storage.BlockID) (int64, bool) {
	var bytes int64
	lost := false
	if _, size, ok := ex.Mem.Remove(id); ok {
		c.ctl.OnBlockRemoved(ex, id)
		bytes += size
		lost = true
	}
	if size, ok := ex.Disk.Remove(id); ok {
		// The disk copy vanishes too (executor-local storage dies with
		// the executor; a corrupted block is unreadable from either
		// tier). Only notify the controller once per block.
		if !lost {
			c.ctl.OnBlockRemoved(ex, id)
		}
		bytes += size
		lost = true
	}
	if lost {
		c.faultLost[id] = true
		c.met.FaultBlocksLost++
		c.met.FaultBytesLost += bytes
	}
	return bytes, lost
}

// InjectBlockLoss destroys a single cached block (memory and disk copies)
// on the executor — modeling corruption or eviction by the OS. Returns
// false if the executor holds no such block.
func (c *Cluster) InjectBlockLoss(ex *Executor, id storage.BlockID) bool {
	bytes, ok := c.loseBlock(ex, id)
	if !ok {
		return false
	}
	c.met.FaultsInjected++
	c.emit(eventlog.Event{Kind: eventlog.FaultInjected, Time: c.Now(), Job: c.curJob,
		Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: bytes,
		Fault: "block-loss"})
	return true
}

// InjectExecutorCacheLoss destroys every cached block (both tiers) of one
// executor — modeling an executor restart. Returns the number of blocks
// and bytes destroyed.
func (c *Cluster) InjectExecutorCacheLoss(ex *Executor) (blocks int, bytes int64) {
	ids := make([]storage.BlockID, 0)
	for _, m := range ex.Mem.Blocks() {
		ids = append(ids, m.ID)
	}
	for _, id := range ex.Disk.Blocks() {
		if !ex.Mem.Contains(id) {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		b, ok := c.loseBlock(ex, id)
		if ok {
			blocks++
			bytes += b
		}
	}
	c.met.FaultsInjected++
	c.emit(eventlog.Event{Kind: eventlog.FaultInjected, Time: c.Now(), Job: c.curJob,
		Executor: ex.ID, Bytes: bytes, Fault: "executor-cache-loss"})
	return blocks, bytes
}

// InjectShuffleLoss cleans a completed shuffle's outputs — modeling lost
// shuffle files, which force Spark-style stage resubmission when a reduce
// task next fetches them. Returns false if the shuffle was not complete.
func (c *Cluster) InjectShuffleLoss(shuffleID int) bool {
	if !c.shuffle.Complete(shuffleID) {
		return false
	}
	c.shuffle.Clean(shuffleID)
	c.faultLostShuffles[shuffleID] = true
	c.met.FaultsInjected++
	c.met.FaultShufflesLost++
	c.emit(eventlog.Event{Kind: eventlog.FaultInjected, Time: c.Now(), Job: c.curJob,
		Shuffle: shuffleID, Fault: "shuffle-loss"})
	return true
}

// CompletedShuffles lists the ids of all currently complete shuffles in
// ascending order — the candidates for shuffle-loss injection.
func (c *Cluster) CompletedShuffles() []int {
	return c.shuffle.CompleteIDs()
}
