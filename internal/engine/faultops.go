package engine

import (
	"time"

	"blaze/internal/eventlog"
	"blaze/internal/shuffle"
	"blaze/internal/storage"
)

// This file holds the cluster-side fault-injection primitives used by
// internal/faults. Unlike DropBlock/DropDataset — which model deliberate
// unpersists — these destroy state behind the controller's back, count as
// faults in the metrics, and mark what was lost so the recovery work that
// follows (recomputation, disk reload, stage resubmission) is attributed
// per fault and per job (§4.3, Fig. 5).

// loseBlock removes one block from both tiers without unpersist
// accounting, notifying the controller, and returns the bytes destroyed.
// The block is marked with the fault class so its eventual recomputation
// is attributed to that class's recovery cost.
func (c *Cluster) loseBlock(ex *Executor, id storage.BlockID, class string) (int64, bool) {
	var bytes int64
	lost := false
	if _, size, ok := ex.Mem.Remove(id); ok {
		c.ctl.OnBlockRemoved(ex, id)
		bytes += size
		lost = true
	}
	if size, ok := ex.Disk.Remove(id); ok {
		// The disk copy vanishes too (executor-local storage dies with
		// the executor; a corrupted block is unreadable from either
		// tier). Only notify the controller once per block.
		if !lost {
			c.ctl.OnBlockRemoved(ex, id)
		}
		bytes += size
		lost = true
	}
	if lost {
		c.faultLost[id] = class
		c.met.FaultBlocksLost++
		c.met.FaultBytesLost += bytes
	}
	return bytes, lost
}

// InjectBlockLoss destroys a single cached block (memory and disk copies)
// on the executor — modeling corruption or eviction by the OS. Returns
// false if the executor holds no such block.
func (c *Cluster) InjectBlockLoss(ex *Executor, id storage.BlockID) bool {
	bytes, ok := c.loseBlock(ex, id, "block")
	if !ok {
		return false
	}
	c.met.FaultsInjected++
	c.emit(eventlog.Event{Kind: eventlog.FaultInjected, Time: c.Now(), Job: c.curJob,
		Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: bytes,
		Fault: "block-loss"})
	return true
}

// InjectExecutorCacheLoss destroys every cached block (both tiers) of one
// executor — modeling an executor restart. Returns the number of blocks
// and bytes destroyed.
func (c *Cluster) InjectExecutorCacheLoss(ex *Executor) (blocks int, bytes int64) {
	blocks, bytes = c.loseAllBlocks(ex, "exec")
	c.met.FaultsInjected++
	c.emit(eventlog.Event{Kind: eventlog.FaultInjected, Time: c.Now(), Job: c.curJob,
		Executor: ex.ID, Bytes: bytes, Fault: "executor-cache-loss"})
	return blocks, bytes
}

// loseAllBlocks destroys every cached block (both tiers) of the executor,
// tagging each with the fault class.
func (c *Cluster) loseAllBlocks(ex *Executor, class string) (blocks int, bytes int64) {
	ids := make([]storage.BlockID, 0)
	for _, m := range ex.Mem.Blocks() {
		ids = append(ids, m.ID)
	}
	for _, id := range ex.Disk.Blocks() {
		if !ex.Mem.Contains(id) {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		b, ok := c.loseBlock(ex, id, class)
		if ok {
			blocks++
			bytes += b
		}
	}
	return blocks, bytes
}

// InjectExecutorDeath kills one executor: its cached blocks are lost like
// an executor restart, its map-output files become unreachable (so their
// producing map tasks must re-run, like Spark handling a lost
// MapOutputTracker registration), its clocks freeze, and its partition
// slots migrate round-robin to the surviving executors in sorted-id order.
// The rebalancing work — one task-launch overhead per adopted slot — is
// charged to the adopting survivors and attributed as exec-death recovery.
// Returns false if the executor is already dead or is the last one alive.
func (c *Cluster) InjectExecutorDeath(ex *Executor) bool {
	if ex.dead || len(c.LiveExecutors()) <= 1 {
		return false
	}

	_, bytes := c.loseAllBlocks(ex, "exec-death")
	lost := c.shuffle.LoseExecutorOutputs(ex.ID)
	for _, l := range lost {
		m := c.faultLostMaps[l.Shuffle]
		if m == nil {
			m = make(map[int]string)
			c.faultLostMaps[l.Shuffle] = m
		}
		m[l.MapPart] = "exec-death"
		c.met.FaultMapOutputsLost++
		c.met.FaultShuffleBytesLost += l.Bytes
	}
	ex.dead = true
	c.met.FaultsInjected++
	c.met.ExecutorDeaths++
	c.emit(eventlog.Event{Kind: eventlog.ExecutorDead, Time: c.Now(), Job: c.curJob,
		Executor: ex.ID, Bytes: bytes, Count: len(lost)})

	// Migrate the dead executor's partition slots. Deaths are injected at
	// scheduling boundaries, after the stage barrier, so every clock
	// already agrees; survivors still sync to the victim's frozen clock as
	// an invariant, then absorb its slots round-robin in sorted-id order.
	survivors := c.LiveExecutors()
	frozen := ex.MaxClock()
	for _, s := range survivors {
		s.SyncTo(frozen)
	}
	perSlot := c.cfg.Params.TaskOverhead
	var migrated int
	var rebalance time.Duration
	for slot, owner := range c.assign {
		if c.execs[owner] != ex {
			continue
		}
		recv := survivors[migrated%len(survivors)]
		c.assign[slot] = recv.ID
		recv.PickCore().Advance(perSlot)
		c.met.Executors[recv.ID].RebalanceTime += perSlot
		migrated++
		rebalance += perSlot
	}
	c.met.MigratedPartitions += migrated
	c.met.RebalanceTime += rebalance
	if migrated > 0 {
		c.met.AddFaultRecovery(c.curJob, rebalance)
		c.met.AddFaultRecoveryClass("exec-death", rebalance)
	}
	c.emit(eventlog.Event{Kind: eventlog.PartitionsMigrated, Time: c.Now(), Job: c.curJob,
		Executor: ex.ID, Count: migrated, Cost: rebalance})

	// The death invalidated the optimizer's plan: candidates migrated,
	// cached copies died. Controllers that can repair re-solve over the
	// survivors now, so admissions and promotions after the death follow
	// a plan that matches reality. Deaths are injected identically at
	// every Parallelism setting, so the repair (and its events, emitted
	// into the main log here — the death is part of the run) is too.
	if pr, ok := c.ctl.(PlanRepairer); ok {
		pr.RepairPlan(c.curWindow, c.emit)
	}
	return true
}

// InjectStraggler opens a transient straggler window on the executor:
// its next window task executions (including one currently starting) run
// at factor times their intrinsic cost. Unlike the destructive faults
// nothing is lost — the inflation itself is the fault, and it is
// attributed to the "straggler" class as it accrues. Safe to call from a
// task context (the injector's OnTaskStart): every touched field is
// executor-local or behind a leaf lock, and the event is emitted through
// the task-ordered buffer. Returns false if the executor is dead,
// already straggling, or the parameters are degenerate.
func (c *Cluster) InjectStraggler(ex *Executor, factor float64, window int) bool {
	if ex.dead || ex.slowTasks > 0 || factor <= 1 || window <= 0 {
		return false
	}
	ex.slowFactor = factor
	ex.slowTasks = window
	c.met.IncFaultInjected()
	c.emitEx(ex, eventlog.Event{Kind: eventlog.FaultInjected, Time: ex.Clock().Now(), Job: c.curJob,
		Executor: ex.ID, Fault: "straggler", Count: window, Factor: factor})
	return true
}

// InjectBucketLoss destroys a single map-output bucket of a shuffle — one
// lost shuffle file, shuffle_map_bucket. Only the producing map task must
// re-run; the engine re-executes exactly the invalidated producers when
// the shuffle is next needed. Returns false if the bucket does not exist.
func (c *Cluster) InjectBucketLoss(shuffleID, mapPart, bucket int) bool {
	bytes, ok := c.shuffle.LoseBucket(shuffleID, mapPart, bucket)
	if !ok {
		return false
	}
	m := c.faultLostMaps[shuffleID]
	if m == nil {
		m = make(map[int]string)
		c.faultLostMaps[shuffleID] = m
	}
	m[mapPart] = "bucket"
	c.met.FaultsInjected++
	c.met.FaultBucketsLost++
	c.met.FaultMapOutputsLost++
	c.met.FaultShuffleBytesLost += bytes
	c.emit(eventlog.Event{Kind: eventlog.BucketLost, Time: c.Now(), Job: c.curJob,
		Shuffle: shuffleID, Partition: mapPart, Bucket: bucket, Bytes: bytes})
	return true
}

// InjectShuffleLoss cleans a completed shuffle's outputs — modeling lost
// shuffle files, which force Spark-style stage resubmission when a reduce
// task next fetches them. Returns false if the shuffle was not complete.
func (c *Cluster) InjectShuffleLoss(shuffleID int) bool {
	if !c.shuffle.Complete(shuffleID) {
		return false
	}
	c.shuffle.Clean(shuffleID)
	c.faultLostShuffles[shuffleID] = true
	// The whole-shuffle loss supersedes any pending partial marks: the
	// full regeneration is attributed to the shuffle-loss class.
	delete(c.faultLostMaps, shuffleID)
	c.met.FaultsInjected++
	c.met.FaultShufflesLost++
	c.emit(eventlog.Event{Kind: eventlog.FaultInjected, Time: c.Now(), Job: c.curJob,
		Shuffle: shuffleID, Fault: "shuffle-loss"})
	return true
}

// CompletedShuffles lists the ids of all currently complete shuffles in
// ascending order — the candidates for shuffle-loss injection.
func (c *Cluster) CompletedShuffles() []int {
	return c.shuffle.CompleteIDs()
}

// CompleteBucketRefs lists the present non-empty map-output buckets of a
// shuffle in (map partition, bucket) ascending order — the candidates for
// bucket-loss injection.
func (c *Cluster) CompleteBucketRefs(shuffleID int) []shuffle.BucketRef {
	return c.shuffle.BucketRefs(shuffleID)
}
