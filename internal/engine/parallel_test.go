package engine

import (
	"reflect"
	"testing"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/eventlog"
	"blaze/internal/metrics"
)

// runIterative executes the PageRank-shaped workload under one
// controller at the given parallelism and returns the cluster.
func runIterative(t *testing.T, ctl Controller, par int, log *eventlog.Log) *Cluster {
	t.Helper()
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         4,
		Parallelism:       par,
		MemoryPerExecutor: 64 * 1024,
		Params:            costmodel.Default(),
		Controller:        ctl,
		EventLog:          log,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	iterativeWorkload(ctx, 6, 8, 40, true)
	c.Finish()
	return c
}

// TestParallelStagesActuallyRun guards the eligibility gate against
// regressing into rejecting everything: a spill-only annotation system
// on a uniform-partition iterative workload must dispatch stages to
// concurrent workers.
func TestParallelStagesActuallyRun(t *testing.T) {
	c := runIterative(t, NewSparkMemDisk(), 8, nil)
	if c.ParallelStagesRan() == 0 {
		t.Fatalf("no stage ran on the parallel path; the eligibility gate rejected everything")
	}
}

// TestParallelSequentialIdentityEngine checks bit-identical metrics and
// event logs between Parallelism 1 and 8 at the engine level, for both
// a spill-only and a drop-on-evict annotation controller.
func TestParallelSequentialIdentityEngine(t *testing.T) {
	build := []struct {
		name string
		ctl  func() Controller
	}{
		{"spark-memdisk", func() Controller { return NewSparkMemDisk() }},
		{"spark-mem", func() Controller { return NewSparkMemOnly() }},
		{"mrd", func() Controller { return NewMRD(MemDisk) }},
	}
	for _, b := range build {
		b := b
		t.Run(b.name, func(t *testing.T) {
			seqLog, parLog := eventlog.New(), eventlog.New()
			seq := runIterative(t, b.ctl(), 1, seqLog)
			par := runIterative(t, b.ctl(), 8, parLog)
			if !metrics.EqualDeterministic(seq.Metrics(), par.Metrics()) {
				t.Errorf("metrics differ:\nseq: %+v\npar: %+v", seq.Metrics(), par.Metrics())
			}
			if !reflect.DeepEqual(seqLog.Events(), parLog.Events()) {
				t.Errorf("event logs differ (%d vs %d events)", seqLog.Len(), parLog.Len())
			}
		})
	}
}
