package engine

import (
	"testing"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/storage"
)

// diamond builds src -> (left, right) -> join, a diamond DAG with two
// shuffles sharing one grandparent.
func diamond(ctx *dataflow.Context) (*dataflow.Dataset, *dataflow.Dataset) {
	src := ctx.Source("d-src@0", 4, func(part int) []dataflow.Record {
		var out []dataflow.Record
		for i := part; i < 40; i += 4 {
			out = append(out, dataflow.Record{Key: int64(i), Value: int64(i)})
		}
		return out
	})
	left := src.ReduceByKey("d-left@0", 4, func(a, b any) any { return a })
	right := src.Map("d-map@0", func(r dataflow.Record) dataflow.Record {
		return dataflow.Record{Key: r.Key, Value: r.Value.(int64) * 2}
	}).ReduceByKey("d-right@0", 4, func(a, b any) any { return a })
	join := dataflow.ShuffleJoin("d-join@0", 4, left, right, func(_ int, l, r []dataflow.Record) []dataflow.Record {
		vals := map[int64]int64{}
		for _, rec := range r {
			vals[rec.Key] = rec.Value.(int64)
		}
		var out []dataflow.Record
		for _, rec := range l {
			if v, ok := vals[rec.Key]; ok {
				out = append(out, dataflow.Record{Key: rec.Key, Value: rec.Value.(int64) + v})
			}
		}
		return out
	})
	return src, join
}

func TestDiamondJobStructure(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 1<<20, false)
	_, join := diamond(ctx)
	job := c.buildJob(join)
	// Stages: left map, (map+right) map for both shuffle sides of the
	// join plus the two reduce map stages, then the result stage last.
	if got := len(job.Stages); got != 5 {
		t.Fatalf("diamond stages = %d, want 5", got)
	}
	if !job.Stages[len(job.Stages)-1].IsResult {
		t.Fatal("last stage must be the result stage")
	}
	// The shared grandparent appears in exactly the two map-side
	// pipelines that compute it.
	seen := 0
	for _, st := range job.Stages {
		for _, d := range st.Pipeline {
			if d.Name() == "d-src@0" {
				seen++
			}
		}
	}
	if seen != 2 {
		t.Fatalf("src appears in %d pipelines, want 2", seen)
	}
}

func TestDiamondComputesCorrectly(t *testing.T) {
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	_, refJoin := diamond(refCtx)
	wantSum := int64(0)
	for _, part := range refJoin.Collect() {
		for _, r := range part {
			wantSum += r.Value.(int64)
		}
	}

	c, ctx := newTestCluster(t, NewSparkMemDisk(), 2048, false)
	_, join := diamond(ctx)
	gotSum := int64(0)
	for _, part := range join.Collect() {
		for _, r := range part {
			gotSum += r.Value.(int64)
		}
	}
	if gotSum != wantSum {
		t.Fatalf("diamond sum = %d, want %d", gotSum, wantSum)
	}
	c.Finish()
}

func TestTruncationAtFullyCachedBoundary(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 1<<20, false)
	src := ctx.Source("t-src@0", 4, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: int64(part)}}
	})
	red := src.ReduceByKey("t-red@0", 4, func(a, b any) any { return a })
	red.Cache()
	red.Count()
	// Release the parent: the shuffle is cleaned, but red is fully
	// cached, so a new job on red must have a single (result) stage and
	// must not regenerate anything.
	src.Release()
	ranBefore := c.Metrics().RanStages
	job := c.buildJob(red)
	if len(job.Stages) != 1 {
		t.Fatalf("fully cached target should build 1 stage, got %d", len(job.Stages))
	}
	red.Count()
	if got := c.Metrics().RanStages; got != ranBefore+1 {
		t.Fatalf("cached-target job ran %d stages, want 1", got-ranBefore)
	}
	if c.Metrics().Misses != 0 {
		t.Fatal("no recomputation should occur for a fully cached target")
	}
}

func TestPartitionCountsPreserved(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 1<<20, false)
	src := ctx.Source("p-src@0", 6, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: int64(part)}}
	})
	red := src.ReduceByKey("p-red@0", 3, func(a, b any) any { return a })
	parts := red.Collect()
	if len(parts) != 3 {
		t.Fatalf("reduce produced %d partitions, want 3", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 6 {
		t.Fatalf("reduce lost records: %d, want 6", total)
	}
	c.Finish()
}

func TestMRDPrefetchPromotesFromDisk(t *testing.T) {
	// Force blocks onto disk, then verify MRD's barrier-idle prefetching
	// brings soon-referenced blocks back into memory without charging
	// executor clocks.
	ctx := dataflow.NewContext()
	ctl := NewMRD(MemDisk)
	c, err := NewCluster(Config{
		Executors:         2,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        ctl,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	ds := ctx.Source("m-src@0", 4, func(part int) []dataflow.Record {
		out := make([]dataflow.Record, 50)
		for i := range out {
			out[i] = dataflow.Record{Key: int64(part*50 + i), Value: float64(i)}
		}
		return out
	}).Map("m-data@0", func(r dataflow.Record) dataflow.Record { return r })
	ds.Cache()
	ds.Count()
	// Manually demote every block to disk-only (as if evicted earlier).
	for _, ex := range c.Executors() {
		for _, m := range ex.Mem.Blocks() {
			c.SpillBlock(ex, m.ID)
		}
	}
	for _, ex := range c.Executors() {
		if ex.Mem.Used() != 0 {
			t.Fatal("setup: memory not empty")
		}
	}
	// A new job referencing ds gives its blocks a finite reference
	// distance; prefetch happens at stage barriers of that job.
	ds.Count()
	// After the job, at least reads happened from disk or memory; the
	// prefetch path must not have corrupted anything and the metrics
	// stay consistent.
	m := c.Finish()
	if m.DiskHits == 0 && m.CacheHits == 0 {
		t.Fatal("no accesses recorded")
	}
}

func TestSpillKeepsDiskCopyOnRepeatEviction(t *testing.T) {
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         1,
		MemoryPerExecutor: 1 << 20,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemDisk(),
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	ds := ctx.Source("k-src@0", 1, func(int) []dataflow.Record {
		return []dataflow.Record{{Key: 1, Value: int64(1)}}
	}).Map("k-data@0", func(r dataflow.Record) dataflow.Record { return r })
	ds.Cache()
	ds.Count()
	ex := c.Executors()[0]
	id := storage.BlockID{Dataset: ds.ID(), Partition: 0}

	if !c.SpillBlock(ex, id) {
		t.Fatal("first spill failed")
	}
	written := ex.Disk.TotalWritten()
	if !c.PromoteBlock(ex, id, true) {
		t.Fatal("promote failed")
	}
	if !ex.Disk.Contains(id) {
		t.Fatal("promotion must retain the disk copy")
	}
	if !c.SpillBlock(ex, id) {
		t.Fatal("second spill failed")
	}
	if ex.Disk.TotalWritten() != written {
		t.Fatalf("re-eviction rewrote the disk copy: %d -> %d", written, ex.Disk.TotalWritten())
	}
}

func TestMultiCoreSpeedsUpStages(t *testing.T) {
	run := func(cores int) (float64, time.Duration) {
		ctx := dataflow.NewContext()
		c, err := NewCluster(Config{
			Executors:         2,
			CoresPerExecutor:  cores,
			MemoryPerExecutor: 1 << 20,
			Params:            costmodel.Default(),
			Controller:        NewSparkMemOnly(),
		}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		sum := iterativeWorkload(ctx, 3, 8, 60, true)
		return sum, c.Finish().ACT
	}
	sum1, act1 := run(1)
	sum4, act4 := run(4)
	if sum1 != sum4 {
		t.Fatalf("results differ across core counts: %v vs %v", sum1, sum4)
	}
	if act4 >= act1 {
		t.Fatalf("4 cores (%v) should beat 1 core (%v)", act4, act1)
	}
	// With 8 partitions over 2 executors (4 tasks each), 4 cores should
	// approach but not exceed a 4x win (barriers and shared stages).
	if act4 < act1/5 {
		t.Fatalf("impossible speedup: %v -> %v", act1, act4)
	}
}

func TestMultiCoreDeterministic(t *testing.T) {
	run := func() time.Duration {
		ctx := dataflow.NewContext()
		c, err := NewCluster(Config{
			Executors:         3,
			CoresPerExecutor:  3,
			MemoryPerExecutor: 4 * 1024,
			Params:            costmodel.Default(),
			Controller:        NewSparkMemDisk(),
		}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		iterativeWorkload(ctx, 4, 9, 60, true)
		return c.Finish().ACT
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("multi-core runs not deterministic: %v vs %v", a, b)
	}
}
