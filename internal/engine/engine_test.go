package engine

import (
	"sort"
	"testing"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/eventlog"
	"blaze/internal/metrics"
	"blaze/internal/storage"
)

// iterativeWorkload builds a PageRank-shaped iterative chain: each
// iteration shuffles contributions and derives new ranks, optionally
// caching them and releasing the previous iteration's ranks (the GraphX
// annotation pattern, Fig. 1). It returns the final ranks dataset values
// summed per run for correctness checks.
func iterativeWorkload(ctx *dataflow.Context, iters, parts, rowsPerPart int, cache bool) float64 {
	src := ctx.Source("src", parts, func(part int) []dataflow.Record {
		out := make([]dataflow.Record, rowsPerPart)
		for i := range out {
			key := int64(part*rowsPerPart + i)
			out[i] = dataflow.Record{Key: key, Value: float64(1)}
		}
		return out
	})
	ranks := src
	var prev *dataflow.Dataset
	for it := 1; it <= iters; it++ {
		contribs := ranks.FlatMap("contribs", func(r dataflow.Record) []dataflow.Record {
			v := r.Value.(float64) / 2
			return []dataflow.Record{
				{Key: r.Key, Value: v},
				{Key: (r.Key + 1) % int64(parts*rowsPerPart), Value: v},
			}
		})
		sums := contribs.ReduceByKey("sums", parts, func(a, b any) any {
			return a.(float64) + b.(float64)
		})
		newRanks := sums.Map("ranks", func(r dataflow.Record) dataflow.Record {
			return dataflow.Record{Key: r.Key, Value: 0.15 + 0.85*r.Value.(float64)}
		})
		if cache {
			newRanks.Cache()
		}
		newRanks.Count() // action: one job per iteration
		if prev != nil {
			prev.Release()
		}
		prev = newRanks
		ranks = newRanks
	}
	total := 0.0
	for _, part := range ranks.Collect() {
		for _, r := range part {
			total += r.Value.(float64)
		}
	}
	return total
}

func newTestCluster(t *testing.T, ctl Controller, memPerExec int64, alluxio bool) (*Cluster, *dataflow.Context) {
	t.Helper()
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         4,
		MemoryPerExecutor: memPerExec,
		Params:            costmodel.Default(),
		Controller:        ctl,
		AlluxioMode:       alluxio,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return c, ctx
}

func TestResultsMatchLocalRunner(t *testing.T) {
	// Reference result from the naive evaluator.
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 4, 6, 50, true)

	for _, ctl := range []Controller{NewSparkMemOnly(), NewSparkMemDisk(), NewLRC(MemDisk), NewMRD(MemDisk)} {
		c, ctx := newTestCluster(t, ctl, 4*1024, false) // tiny memory → heavy eviction
		got := iterativeWorkload(ctx, 4, 6, 50, true)
		if got != want {
			t.Errorf("%s: result %v != reference %v", ctl.Name(), got, want)
		}
		c.Finish()
	}
}

func TestCachingAvoidsRecompute(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 64*1024*1024, false)
	ds := ctx.Source("data", 4, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	}).Map("mapped", func(r dataflow.Record) dataflow.Record { return r })
	ds.Cache()
	ds.Count()
	ds.Count()
	m := c.Finish()
	if m.Misses != 0 {
		t.Fatalf("cached dataset recomputed: %d misses", m.Misses)
	}
	if m.CacheHits == 0 {
		t.Fatal("expected cache hits on second job")
	}
}

func TestUncachedRecomputes(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 64*1024*1024, false)
	ds := ctx.Source("data", 4, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	}).Map("mapped", func(r dataflow.Record) dataflow.Record { return r })
	ds.Count()
	ds.Count()
	m := c.Finish()
	if m.Misses == 0 {
		t.Fatal("uncached dataset should recompute on second job")
	}
}

func TestMemOnlyNeverTouchesDisk(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 4*1024, false)
	iterativeWorkload(ctx, 4, 4, 100, true)
	m := c.Finish()
	if m.DiskBytesWritten != 0 {
		t.Fatalf("MEM_ONLY wrote %d bytes of cache data to disk", m.DiskBytesWritten)
	}
	if m.Evictions == 0 {
		t.Fatal("tiny memory should force evictions")
	}
	if m.TotalBreakdown().DiskIO != 0 {
		t.Fatalf("MEM_ONLY charged disk I/O: %v", m.TotalBreakdown().DiskIO)
	}
}

func TestMemDiskSpills(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemDisk(), 4*1024, false)
	iterativeWorkload(ctx, 4, 4, 100, true)
	m := c.Finish()
	if m.DiskBytesWritten == 0 {
		t.Fatal("MEM+DISK under pressure should spill to disk")
	}
	if m.EvictionsToDisk == 0 {
		t.Fatal("expected evictions to disk")
	}
	if m.TotalBreakdown().DiskIO == 0 {
		t.Fatal("expected disk I/O time for caching")
	}
}

func TestStageSkippingAcrossJobs(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 64*1024*1024, false)
	ds := ctx.Source("data", 4, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	}).ReduceByKey("reduced", 4, func(a, b any) any { return a })
	ds.Count()
	ds.Count() // second job reuses the shuffle outputs
	m := c.Finish()
	if m.SkippedStages == 0 {
		t.Fatal("second job should skip the completed map stage")
	}
}

func TestReleaseCleansShuffleAndRegenerates(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 64*1024*1024, false)
	src := ctx.Source("data", 4, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	})
	reduced := src.ReduceByKey("reduced", 4, func(a, b any) any { return a })
	reduced.Count()
	ranBefore := c.Metrics().RanStages
	src.Release() // cleans the shuffle produced from src
	// A new consumer of the same shuffle must regenerate it.
	reduced.Map("m", func(r dataflow.Record) dataflow.Record { return r }).Count()
	m := c.Finish()
	if m.RanStages <= ranBefore+1 {
		t.Fatalf("expected regeneration stages, ran %d then %d", ranBefore, m.RanStages)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 64*1024*1024, false)
	iterativeWorkload(ctx, 2, 8, 20, true)
	c.Finish()
	var clocks []time.Duration
	for _, ex := range c.Executors() {
		clocks = append(clocks, ex.MaxClock())
	}
	for _, cl := range clocks {
		if cl != clocks[0] {
			t.Fatalf("clocks diverged after Finish: %v", clocks)
		}
	}
	if clocks[0] == 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *metrics.App {
		ctx := dataflow.NewContext()
		c, err := NewCluster(Config{
			Executors:         4,
			MemoryPerExecutor: 4 * 1024,
			Params:            costmodel.Default(),
			Controller:        NewSparkMemDisk(),
		}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		iterativeWorkload(ctx, 5, 6, 60, true)
		return c.Finish()
	}
	a, b := run(), run()
	if a.ACT != b.ACT {
		t.Fatalf("ACT differs across identical runs: %v vs %v", a.ACT, b.ACT)
	}
	if a.Evictions != b.Evictions || a.CacheHits != b.CacheHits || a.DiskBytesWritten != b.DiskBytesWritten {
		t.Fatalf("metrics differ: %+v vs %+v", a, b)
	}
}

func TestAlluxioChargesSerialization(t *testing.T) {
	c, ctx := newTestCluster(t, NewAlluxio(), 64*1024*1024, true)
	ds := ctx.Source("data", 4, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	}).Map("mapped", func(r dataflow.Record) dataflow.Record { return r })
	ds.Cache()
	ds.Count()
	ds.Count()
	m := c.Finish()
	if m.TotalBreakdown().DiskIO == 0 {
		t.Fatal("Alluxio mode should charge (de)serialization on memory-tier caching")
	}
}

func TestEvictionSkewRecorded(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemDisk(), 4*1024, false)
	iterativeWorkload(ctx, 4, 8, 80, true)
	m := c.Finish()
	if m.TotalEvictedBytes() == 0 {
		t.Fatal("expected evicted bytes under pressure")
	}
	// Every executor's stats must be accounted (some may be zero, but
	// the vector length matches the cluster).
	if len(m.Executors) != 4 {
		t.Fatalf("executor stats length %d, want 4", len(m.Executors))
	}
}

func TestRecomputeAttributedToJobs(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 4*1024, false)
	mk := func(name string) *dataflow.Dataset {
		return ctx.Source(name, 4, func(part int) []dataflow.Record {
			out := make([]dataflow.Record, 100)
			for i := range out {
				out[i] = dataflow.Record{Key: int64(part*100 + i), Value: float64(i)}
			}
			return out
		}).Map(name+"-m", func(r dataflow.Record) dataflow.Record { return r })
	}
	a, b := mk("a"), mk("b")
	a.Cache()
	b.Cache()
	a.Count() // job 0: a cached, fills memory
	b.Count() // job 1: b cached, evicts a (LRU)
	a.Count() // job 2: a must be recomputed
	m := c.Finish()
	if m.TotalRecompute() == 0 {
		t.Fatal("evicted cached data should be recomputed under MEM_ONLY")
	}
	if len(m.RecomputeByJob) < 3 || m.RecomputeByJob[2] == 0 {
		t.Fatalf("recomputation must be attributed to job 2: %v", m.RecomputeByJob)
	}
	if m.RecomputeByJob[0] != 0 {
		t.Fatalf("job 0 computed fresh data, not recomputation: %v", m.RecomputeByJob)
	}
}

func TestUnpersistFreesMemory(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 64*1024*1024, false)
	ds := ctx.Source("data", 4, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	}).Map("mapped", func(r dataflow.Record) dataflow.Record { return r })
	ds.Cache()
	ds.Count()
	used := int64(0)
	for _, ex := range c.Executors() {
		used += ex.Mem.Used()
	}
	if used == 0 {
		t.Fatal("cached data should occupy memory")
	}
	ds.Unpersist()
	for _, ex := range c.Executors() {
		if ex.Mem.Used() != 0 {
			t.Fatalf("executor %d still holds %d bytes after unpersist", ex.ID, ex.Mem.Used())
		}
	}
	if c.Metrics().Unpersists == 0 {
		t.Fatal("unpersist not counted")
	}
}

func TestMemoryNeverExceedsCapacity(t *testing.T) {
	const cap = 3 * 1024
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         3,
		MemoryPerExecutor: cap,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemDisk(),
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	iterativeWorkload(ctx, 4, 6, 120, true)
	for _, ex := range c.Executors() {
		if ex.Mem.Used() > cap {
			t.Fatalf("executor %d used %d > capacity %d", ex.ID, ex.Mem.Used(), cap)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := dataflow.NewContext()
	if _, err := NewCluster(Config{Executors: 0, MemoryPerExecutor: 1, Params: costmodel.Default(), Controller: NewSparkMemOnly()}, ctx); err == nil {
		t.Fatal("zero executors should be rejected")
	}
	if _, err := NewCluster(Config{Executors: 1, MemoryPerExecutor: 0, Params: costmodel.Default(), Controller: NewSparkMemOnly()}, ctx); err == nil {
		t.Fatal("zero memory should be rejected")
	}
	if _, err := NewCluster(Config{Executors: 1, MemoryPerExecutor: 1, Params: costmodel.Default()}, ctx); err == nil {
		t.Fatal("missing controller should be rejected")
	}
}

func TestBlockPlacementLocality(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 64*1024*1024, false)
	ds := ctx.Source("data", 8, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	}).Map("mapped", func(r dataflow.Record) dataflow.Record { return r })
	ds.Cache()
	ds.Count()
	// Every partition p must be cached on executor p mod E.
	for p := 0; p < 8; p++ {
		ex := c.ExecutorFor(p)
		if !ex.Mem.Contains(storage.BlockID{Dataset: ds.ID(), Partition: p}) {
			t.Fatalf("partition %d not cached on home executor %d", p, ex.ID)
		}
	}
	c.Finish()
}

func TestJobDAGDatasetsSorted(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 64*1024*1024, false)
	_ = c
	src := ctx.Source("data", 2, func(part int) []dataflow.Record {
		return []dataflow.Record{{Key: int64(part), Value: float64(part)}}
	})
	red := src.ReduceByKey("r", 2, func(a, b any) any { return a })
	job := c.buildJob(red)
	if len(job.Stages) != 2 || !job.Stages[len(job.Stages)-1].IsResult {
		t.Fatalf("unexpected stage structure: %d stages", len(job.Stages))
	}
	if !sort.SliceIsSorted(job.Datasets, func(i, j int) bool {
		return job.Datasets[i].ID() < job.Datasets[j].ID()
	}) {
		t.Fatal("job datasets not sorted")
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	log := eventlog.New()
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         2,
		MemoryPerExecutor: 4 * 1024,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemDisk(),
		EventLog:          log,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	iterativeWorkload(ctx, 3, 4, 80, true)
	c.Finish()

	if log.Len() == 0 {
		t.Fatal("event log empty")
	}
	kinds := map[eventlog.Kind]int{}
	for _, e := range log.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []eventlog.Kind{eventlog.JobStart, eventlog.JobEnd, eventlog.TaskEnd, eventlog.BlockAdmitted, eventlog.BlockHit} {
		if kinds[k] == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}
	if kinds[eventlog.JobStart] != kinds[eventlog.JobEnd] {
		t.Fatalf("unbalanced job events: %d starts, %d ends", kinds[eventlog.JobStart], kinds[eventlog.JobEnd])
	}
	sum := eventlog.Summarize(log)
	if len(sum.Jobs) != kinds[eventlog.JobStart] {
		t.Fatalf("summary jobs %d != job starts %d", len(sum.Jobs), kinds[eventlog.JobStart])
	}
	// Spills under pressure must be attributed to datasets.
	foundNamed := false
	for _, d := range sum.Datasets {
		if d.Name != "" && d.Admitted > 0 {
			foundNamed = true
		}
	}
	if !foundNamed {
		t.Fatal("no named dataset summaries")
	}
}

func TestClusterAccessors(t *testing.T) {
	c, ctx := newTestCluster(t, NewSparkMemOnly(), 1024, false)
	if c.Context() != ctx {
		t.Fatal("Context accessor broken")
	}
	if err := c.Params().Validate(); err != nil {
		t.Fatal(err)
	}
	if c.ShuffleComplete(12345) {
		t.Fatal("unknown shuffle should not be complete")
	}
	c.AddProfilingTime(3 * time.Second)
	if m := c.Finish(); m.ACT < 3*time.Second {
		t.Fatalf("profiling time not charged into ACT: %v", m.ACT)
	}
	for _, ex := range c.Executors() {
		if ex.Cores() != 1 {
			t.Fatalf("default cores = %d, want 1", ex.Cores())
		}
	}
	if PlaceNone.String() != "none" || PlaceMemory.String() != "memory" || PlaceDisk.String() != "disk" {
		t.Fatal("placement strings wrong")
	}
	if Placement(9).String() != "Placement(9)" {
		t.Fatal("unknown placement string wrong")
	}
	if NewSparkMemOnly().Name() != "spark-mem" || NewAlluxio().Name() != "spark-alluxio" {
		t.Fatal("controller names wrong")
	}
}
