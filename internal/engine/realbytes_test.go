package engine

import (
	"os"
	"path/filepath"
	"testing"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/storage"
)

// TestAdmitDuplicateChargesNothing is the regression test for the
// AlluxioMode admission bug: admitToMemory used to charge the
// serialization cost before Mem.Put could still fail on a duplicate
// block, leaving the clock advanced for an admission that never
// happened. A duplicate admit must be rejected with no clock movement
// and no cost accounting.
func TestAdmitDuplicateChargesNothing(t *testing.T) {
	c, _ := newTestCluster(t, NewSparkMemDisk(), 1<<20, true) // AlluxioMode
	ex := c.Executors()[0]
	id := storage.BlockID{Dataset: 1, Partition: 0}
	recs := []dataflow.Record{{Key: 1, Value: float64(1)}}

	if !c.admitToMemory(ex, id, recs, 256) {
		t.Fatal("first admit failed")
	}
	clock := ex.Clock().Now()
	if clock == 0 {
		t.Fatal("AlluxioMode admit must charge serialization")
	}
	diskIO := c.Metrics().Executors[ex.ID].Breakdown.DiskIO

	if c.admitToMemory(ex, id, recs, 256) {
		t.Fatal("duplicate admit must be rejected")
	}
	if got := ex.Clock().Now(); got != clock {
		t.Fatalf("duplicate admit advanced the clock: %v -> %v", clock, got)
	}
	if got := c.Metrics().Executors[ex.ID].Breakdown.DiskIO; got != diskIO {
		t.Fatalf("duplicate admit charged DiskIO: %v -> %v", diskIO, got)
	}
}

func newRealBytesCluster(t *testing.T, memPerExec int64) (*Cluster, *dataflow.Context) {
	t.Helper()
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         4,
		MemoryPerExecutor: memPerExec,
		Params:            costmodel.Default(),
		Controller:        NewSparkMemDisk(),
		RealBytes:         true,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, ctx
}

// TestRealBytesResultsMatchReference runs the iterative workload under
// heavy eviction with real-bytes stores: every cached read decodes from
// a serialized buffer and every disk reload decodes from a block file,
// so a correct result proves the real storage round trip is lossless.
func TestRealBytesResultsMatchReference(t *testing.T) {
	storage.RegisterValueType(float64(0))
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 4, 6, 50, true)

	c, ctx := newRealBytesCluster(t, 4*1024) // tiny memory → heavy spilling
	got := iterativeWorkload(ctx, 4, 6, 50, true)
	if got != want {
		t.Errorf("real-bytes result %v != reference %v", got, want)
	}
	m := c.Finish()
	if m.DiskBytesWritten == 0 {
		t.Fatal("workload did not spill; shrink the memory store")
	}
}

// TestRealBytesSpillWritesFiles checks that in real-bytes mode spilled
// blocks exist as actual files on disk, one per block, named after the
// BlockID under the executor's run-scoped directory — and that Close
// removes the whole directory.
func TestRealBytesSpillWritesFiles(t *testing.T) {
	storage.RegisterValueType(float64(0))
	c, ctx := newRealBytesCluster(t, 4*1024)
	// A cached dataset larger than the memory stores, never unpersisted,
	// so its spilled blocks are still on disk when the run finishes.
	ds := ctx.Source("big", 8, func(part int) []dataflow.Record {
		out := make([]dataflow.Record, 100)
		for i := range out {
			out[i] = dataflow.Record{Key: int64(part*100 + i), Value: float64(i)}
		}
		return out
	}).Map("wide", func(r dataflow.Record) dataflow.Record { return r })
	ds.Cache()
	ds.Count()
	ds.Count()
	c.Finish()

	if c.StorageDir() == "" {
		t.Fatal("real-bytes cluster has no storage dir")
	}
	blocks, files := 0, 0
	for _, ex := range c.Executors() {
		if !ex.Disk.Real() {
			t.Fatal("disk store is not in real mode")
		}
		for _, id := range ex.Disk.Blocks() {
			blocks++
			path := filepath.Join(ex.Disk.Dir(), id.String()+".gob")
			info, err := os.Stat(path)
			if err != nil {
				t.Fatalf("spilled block %v has no file: %v", id, err)
			}
			if info.Size() == 0 {
				t.Fatalf("block file %s is empty", path)
			}
			files++
		}
	}
	if blocks == 0 {
		t.Fatal("no blocks on disk; shrink the memory store")
	}
	snap := c.Meter().Snapshot()
	if snap.FilesWritten < files {
		t.Fatalf("meter saw %d files written, at least %d exist", snap.FilesWritten, files)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(c.Executors()[0].Disk.Dir()); !os.IsNotExist(err) {
		t.Fatalf("Close left the storage dir behind: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
}

// TestRealBytesPromoteRoundTrip drives the d→m promotion path directly:
// the encoded file contents move into the memory store without decoding,
// and a subsequent read decodes them correctly.
func TestRealBytesPromoteRoundTrip(t *testing.T) {
	storage.RegisterValueType(float64(0))
	c, _ := newRealBytesCluster(t, 1<<20)
	ex := c.Executors()[0]
	id := storage.BlockID{Dataset: 3, Partition: 1}
	recs := []dataflow.Record{{Key: 7, Value: 1.5}, {Key: 9, Value: 2.5}}

	if err := ex.Disk.Put(id, recs, 128); err != nil {
		t.Fatal(err)
	}
	if !c.PromoteBlock(ex, id, true) {
		t.Fatal("promote failed")
	}
	if !ex.Mem.Contains(id) {
		t.Fatal("block not in memory after promote")
	}
	got, _, ok := ex.Mem.Get(id, 0)
	if !ok || len(got) != 2 || got[0].Value.(float64) != 1.5 || got[1].Value.(float64) != 2.5 {
		t.Fatalf("promoted block decoded wrong: %+v ok=%v", got, ok)
	}
	snap := c.Meter().Snapshot()
	if snap.DiskRead.Ops == 0 || snap.DiskRead.Modeled <= 0 {
		t.Fatalf("promotion not measured as a disk read: %+v", snap.DiskRead)
	}
}
