package engine

import (
	"testing"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/eventlog"
)

// Canned transient-fault scenarios pinning down the retry, speculation
// and blacklisting semantics: a task flake retries exactly the failed
// attempt (never the stage), a straggling executor triggers a winning
// speculative copy, and a persistently flaky executor is blacklisted and
// later reinstated — all visible in the metrics and the event log.

// testTaskHook is a pure-function TaskHook driven by predicates, as the
// TaskHook contract requires (verdicts depend only on the arguments).
type testTaskHook struct {
	failTask  func(ex *Executor, st *Stage, part, attempt int) bool
	failFetch func(ex *Executor, shuffleID, part, attempt int) bool
}

func (h *testTaskHook) OnJobStart(c *Cluster, j *Job)    {}
func (h *testTaskHook) OnStageEnd(c *Cluster, st *Stage) {}
func (h *testTaskHook) OnJobEnd(c *Cluster, j *Job)      {}
func (h *testTaskHook) OnTaskStart(c *Cluster, ex *Executor, st *Stage, part, attempt int) bool {
	return h.failTask != nil && h.failTask(ex, st, part, attempt)
}
func (h *testTaskHook) OnTaskEnd(c *Cluster, ex *Executor, st *Stage, part int) {}
func (h *testTaskHook) OnFetch(c *Cluster, ex *Executor, shuffleID, part, attempt int) bool {
	return h.failFetch != nil && h.failFetch(ex, shuffleID, part, attempt)
}

func resilienceCluster(t *testing.T, hook Hook, res Resilience, execs, cores int, params costmodel.Params) (*Cluster, *dataflow.Context, *eventlog.Log) {
	t.Helper()
	log := eventlog.New()
	ctx := dataflow.NewContext()
	c, err := NewCluster(Config{
		Executors:         execs,
		CoresPerExecutor:  cores,
		MemoryPerExecutor: 64 * 1024 * 1024,
		Params:            params,
		Controller:        NewSparkMemDisk(),
		Hook:              hook,
		Resilience:        res,
		EventLog:          log,
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return c, ctx, log
}

func countEvents(log *eventlog.Log, kind eventlog.Kind) int {
	n := 0
	for _, e := range log.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func TestTaskFlakeRetriesOnlyTheAttempt(t *testing.T) {
	// Fault-free baseline: result and task count.
	base, baseCtx, _ := resilienceCluster(t, nil, Resilience{}, 4, 1, costmodel.Default())
	want := iterativeWorkload(baseCtx, 3, 6, 40, true)
	bm := base.Finish()
	baseTasks := 0
	for i := range bm.Executors {
		baseTasks += bm.Executors[i].Tasks
	}

	// Fail the first attempt of partition 2 in every stage.
	hook := &testTaskHook{failTask: func(ex *Executor, st *Stage, part, attempt int) bool {
		return part == 2 && attempt == 1
	}}
	c, ctx, log := resilienceCluster(t, hook, Resilience{MaxTaskRetries: 3}, 4, 1, costmodel.Default())
	got := iterativeWorkload(ctx, 3, 6, 40, true)
	m := c.Finish()

	if got != want {
		t.Errorf("result under task flakes %v != fault-free %v", got, want)
	}
	tasks := 0
	for i := range m.Executors {
		tasks += m.Executors[i].Tasks
	}
	// A flake retries exactly the failed attempt: the task body runs the
	// same number of times as the fault-free run, never the whole stage.
	if tasks != baseTasks {
		t.Errorf("task executions %d != fault-free %d (flake must not re-run the stage)", tasks, baseTasks)
	}
	if m.TaskRetries == 0 {
		t.Error("no task retries recorded")
	}
	if m.RetryBackoffTime <= 0 {
		t.Error("no backoff time charged")
	}
	if m.FaultRecoveryByClass["task-flake"] <= 0 {
		t.Errorf("no recovery time attributed to task-flake: %v", m.FaultRecoveryByClass)
	}
	if n := countEvents(log, eventlog.TaskRetry); n != m.TaskRetries {
		t.Errorf("%d task_retry events != %d retries in metrics", n, m.TaskRetries)
	}
}

func TestTaskFlakeRespectsRetryBudget(t *testing.T) {
	// Fail every attempt everywhere; the final attempt's verdict is
	// ignored, so the run still terminates with correct results and
	// exactly MaxTaskRetries retries per task.
	hook := &testTaskHook{failTask: func(ex *Executor, st *Stage, part, attempt int) bool {
		return true
	}}
	c, ctx, _ := resilienceCluster(t, hook, Resilience{MaxTaskRetries: 2}, 4, 1, costmodel.Default())
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 2, 4, 20, true)
	got := iterativeWorkload(ctx, 2, 4, 20, true)
	m := c.Finish()
	if got != want {
		t.Errorf("result %v != reference %v", got, want)
	}
	tasks := 0
	for i := range m.Executors {
		tasks += m.Executors[i].Tasks
	}
	if m.TaskRetries != 2*tasks {
		t.Errorf("retries %d != budget 2 x %d tasks", m.TaskRetries, tasks)
	}
}

func TestFetchFlakeRetriesFetch(t *testing.T) {
	hook := &testTaskHook{failFetch: func(ex *Executor, shuffleID, part, attempt int) bool {
		return attempt == 1
	}}
	c, ctx, log := resilienceCluster(t, hook, Resilience{MaxFetchRetries: 2}, 4, 1, costmodel.Default())
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 3, 6, 40, true)
	got := iterativeWorkload(ctx, 3, 6, 40, true)
	m := c.Finish()
	if got != want {
		t.Errorf("result %v != reference %v", got, want)
	}
	if m.FetchRetries == 0 {
		t.Error("no fetch retries recorded")
	}
	if m.FaultRecoveryByClass["fetch-flake"] <= 0 {
		t.Errorf("no recovery time attributed to fetch-flake: %v", m.FaultRecoveryByClass)
	}
	if n := countEvents(log, eventlog.FetchRetry); n != m.FetchRetries {
		t.Errorf("%d fetch_retry events != %d retries in metrics", n, m.FetchRetries)
	}
}

// stragglerParams makes task compute time dominate the 2ms launch
// overhead so a speculative copy (which pays overhead + raw compute)
// can beat a 4x-slowed primary.
func stragglerParams() costmodel.Params {
	p := costmodel.Default()
	p.RecordCost = map[costmodel.OpClass]time.Duration{
		costmodel.OpSource: 4 * time.Microsecond,
		costmodel.OpLight:  4 * time.Microsecond,
		costmodel.OpMedium: 8 * time.Microsecond,
		costmodel.OpHeavy:  16 * time.Microsecond,
	}
	return p
}

func TestStragglerTriggersSpeculativeWin(t *testing.T) {
	run := func(res Resilience) (float64, *Cluster, *eventlog.Log) {
		c, ctx, log := resilienceCluster(t, nil, res, 2, 1, stragglerParams())
		if !c.InjectStraggler(c.execs[0], 4, 3) {
			t.Fatal("InjectStraggler refused a healthy executor")
		}
		return iterativeWorkload(ctx, 2, 4, 1500, true), c, log
	}

	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 2, 4, 1500, true)

	// Without speculation the straggler just runs slow.
	gotSlow, cSlow, _ := run(Resilience{})
	mSlow := cSlow.Finish()
	if gotSlow != want {
		t.Errorf("straggler-only result %v != reference %v", gotSlow, want)
	}
	if mSlow.StragglerSlowdownTime <= 0 {
		t.Error("no straggler slowdown time recorded")
	}
	if mSlow.SpeculativeLaunches != 0 {
		t.Errorf("speculation disabled but %d launches", mSlow.SpeculativeLaunches)
	}
	slowACT := time.Duration(0)
	for _, ex := range cSlow.execs {
		if now := ex.Clock().Now(); now > slowACT {
			slowACT = now
		}
	}

	// With speculation a copy on the healthy executor wins the race.
	gotSpec, cSpec, log := run(Resilience{SpeculativeMultiple: 2})
	mSpec := cSpec.Finish()
	if gotSpec != want {
		t.Errorf("speculative result %v != reference %v", gotSpec, want)
	}
	if mSpec.SpeculativeLaunches == 0 {
		t.Fatal("no speculative copies launched")
	}
	if mSpec.SpeculativeWins == 0 {
		t.Fatal("no speculative copy won the race")
	}
	if mSpec.FaultRecoveryByClass["straggler"] <= 0 {
		t.Errorf("no recovery time attributed to straggler: %v", mSpec.FaultRecoveryByClass)
	}
	wins := 0
	for _, e := range log.Events() {
		if e.Kind == eventlog.SpeculativeLaunch && e.Win {
			wins++
		}
	}
	if wins != mSpec.SpeculativeWins {
		t.Errorf("%d winning speculative_launch events != %d wins in metrics", wins, mSpec.SpeculativeWins)
	}
	specACT := time.Duration(0)
	for _, ex := range cSpec.execs {
		if now := ex.Clock().Now(); now > specACT {
			specACT = now
		}
	}
	if specACT >= slowACT {
		t.Errorf("speculation did not improve completion time: %v >= %v", specACT, slowACT)
	}
}

func TestFlakyExecutorBlacklistedAndReinstated(t *testing.T) {
	// Executor 0 flakes every attempt; after 2 flakes it is blacklisted
	// for a 1-stage cooldown, its tasks reroute, then it is reinstated.
	hook := &testTaskHook{failTask: func(ex *Executor, st *Stage, part, attempt int) bool {
		return ex.ID == 0 && attempt == 1
	}}
	res := Resilience{MaxTaskRetries: 1, BlacklistAfter: 2, BlacklistCooldown: 1}
	c, ctx, log := resilienceCluster(t, hook, res, 4, 1, costmodel.Default())
	refCtx := dataflow.NewContext()
	dataflow.NewLocalRunner(refCtx)
	want := iterativeWorkload(refCtx, 4, 8, 40, true)
	got := iterativeWorkload(ctx, 4, 8, 40, true)
	m := c.Finish()
	if got != want {
		t.Errorf("result %v != reference %v", got, want)
	}
	if m.BlacklistedExecutors == 0 {
		t.Fatal("flaky executor never blacklisted")
	}
	if countEvents(log, eventlog.ExecutorBlacklisted) != m.BlacklistedExecutors {
		t.Errorf("executor_blacklisted events != %d metric", m.BlacklistedExecutors)
	}
	if countEvents(log, eventlog.ExecutorReinstated) == 0 {
		t.Error("blacklisted executor never reinstated")
	}
	// Blacklisted is not dead: the cluster still reports every executor
	// alive and the cache survives.
	for _, ex := range c.execs {
		if ex.dead {
			t.Errorf("executor %d died from blacklisting", ex.ID)
		}
	}
}
