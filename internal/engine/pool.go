package engine

import (
	"fmt"
	"sync"

	"blaze/internal/costmodel"
	"blaze/internal/storage"
)

// Pool is a set of executors shared by many concurrently admitted
// applications — the substrate of the multi-tenant job server. Each
// application binds its own Cluster (with its own controller, metrics
// and event log) to the pool instead of creating private executors, so
// every session's blocks live in the same memory/disk stores and every
// session's tasks advance the same virtual clocks: the pool's timeline
// is one global schedule, and one session's caching pressure is
// directly visible to every other session's controller.
//
// The pool itself does no scheduling. Exclusivity is a single mutex:
// exactly one session executes a job (or a driver-path mutation like
// Finish/Unpersist) at a time, acquired through Acquire/Release —
// usually indirectly, via the JobGate a server installs on each
// cluster. Jobs are the paper's scheduling unit, so serializing them
// preserves the engine's single-driver execution model while still
// interleaving sessions at job granularity.
type Pool struct {
	mu    sync.Mutex
	cfg   PoolConfig
	execs []*Executor
}

// PoolConfig describes a shared executor pool.
type PoolConfig struct {
	// Executors is the number of executors (E) shared by all sessions.
	Executors int
	// CoresPerExecutor is the number of task slots per executor
	// (default 1).
	CoresPerExecutor int
	// MemoryPerExecutor is the memory-store capacity per executor.
	MemoryPerExecutor int64
	// Quota, when non-nil, is charged for every block admitted to any
	// executor's memory store, enforcing cluster-wide per-tenant memory
	// limits (storage.TenantQuota is the server's implementation).
	Quota storage.QuotaController
}

// NewPool creates the shared executors. Pools are virtual-time only:
// RealBytes clusters cannot attach to one.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Executors <= 0 {
		return nil, fmt.Errorf("engine: pool needs at least one executor, got %d", cfg.Executors)
	}
	if cfg.MemoryPerExecutor <= 0 {
		return nil, fmt.Errorf("engine: pool memory per executor must be positive, got %d", cfg.MemoryPerExecutor)
	}
	cores := cfg.CoresPerExecutor
	if cores <= 0 {
		cores = 1
	}
	p := &Pool{cfg: cfg}
	for i := 0; i < cfg.Executors; i++ {
		ex := &Executor{
			ID:    i,
			cores: make([]costmodel.Clock, cores),
			Mem:   storage.NewMemoryStore(cfg.MemoryPerExecutor),
			Disk:  storage.NewDiskStore(),
		}
		if cfg.Quota != nil {
			ex.Mem.SetQuota(cfg.Quota)
		}
		p.execs = append(p.execs, ex)
	}
	return p, nil
}

// Acquire takes the pool's exclusivity lock; every job execution and
// every driver-path mutation of pool state runs under it.
func (p *Pool) Acquire() { p.mu.Lock() }

// Release drops the exclusivity lock.
func (p *Pool) Release() { p.mu.Unlock() }

// Executors returns the shared executor set (stable identity and
// order for the pool's lifetime).
func (p *Pool) Executors() []*Executor { return p.execs }

// Quota returns the pool's tenant quota controller (nil when
// unenforced).
func (p *Pool) Quota() storage.QuotaController { return p.cfg.Quota }

// Config returns the pool's configuration.
func (p *Pool) Config() PoolConfig { return p.cfg }

// JobGate serializes job execution across the sessions of a shared
// pool and decides their order. The engine calls AcquireJob before a
// job's first event and ReleaseJob after its last; a fair-share server
// implements admission (weighted round-robin across tenants) behind
// AcquireJob and must leave the pool's exclusivity lock held on
// return. Without a gate, a pooled cluster falls back to bare
// Pool.Acquire/Release (FIFO mutex order).
type JobGate interface {
	AcquireJob(c *Cluster)
	ReleaseJob(c *Cluster)
}
