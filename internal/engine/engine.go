// Package engine executes dataflow jobs on a simulated cluster of
// executors with virtual clocks, reproducing the execution model of
// Spark-like systems (§2): actions trigger jobs, jobs are cut into stages
// at shuffle boundaries, stages run as parallel tasks over partitions,
// and cached partitions live in per-executor memory/disk block stores.
//
// All caching decisions — whether to cache a computed partition, which
// victims to evict and into which state, whether to promote disk reads —
// are delegated to a Controller. The annotation-based controllers in this
// package model Spark, Spark+Alluxio, LRC and MRD; the Blaze controller
// lives in internal/core.
package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/eventlog"
	"blaze/internal/metrics"
	"blaze/internal/shuffle"
	"blaze/internal/storage"
)

// debugEvict enables eviction tracing for diagnostics.
var debugEvict = os.Getenv("BLAZE_DEBUG_EVICT") != ""

// realDecodeCacheBlocks bounds the per-executor decode cache in
// RealBytes mode (outside AlluxioMode): the most recently read decoded
// partitions kept to amortize hot re-reads within a stage.
const realDecodeCacheBlocks = 8

// Placement is a desired location for a cached partition, mirroring the
// paper's per-partition states m (memory), d (disk) and u (unpersisted).
type Placement int

const (
	// PlaceNone leaves the partition uncached (state u).
	PlaceNone Placement = iota
	// PlaceMemory caches the partition in executor memory (state m).
	PlaceMemory
	// PlaceDisk stores the partition on executor disk (state d).
	PlaceDisk
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlaceNone:
		return "none"
	case PlaceMemory:
		return "memory"
	case PlaceDisk:
		return "disk"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Victim is one eviction decision: the block to remove from memory and
// whether to spill it to disk (m→d) or drop it (m→u).
type Victim struct {
	ID     storage.BlockID
	ToDisk bool
}

// Controller makes all caching/eviction/recovery decisions. Exactly one
// controller is attached per cluster.
type Controller interface {
	// Name identifies the system configuration in reports.
	Name() string
	// Bind attaches the controller to its cluster before execution.
	Bind(c *Cluster)
	// OnJobStart is invoked with the job DAG before stages run.
	OnJobStart(j *Job)
	// OnJobEnd is invoked after the job's final stage.
	OnJobEnd(j *Job)
	// OnStageEnd is invoked after each executed stage, with per-executor
	// idle time available until the stage barrier (used for prefetching).
	OnStageEnd(st *Stage, idle []time.Duration)
	// PlaceComputed decides the placement of a freshly computed (or
	// recomputed) partition. The fallback applies when memory admission
	// fails (e.g. MEM+DISK Spark degrades to disk).
	PlaceComputed(ex *Executor, ds *dataflow.Dataset, part int, size int64) (primary, fallback Placement)
	// SelectVictims frees at least need bytes on the executor by naming
	// victims in eviction order with their dispositions. The engine
	// evicts them in order until enough space is free.
	SelectVictims(ex *Executor, need int64) []Victim
	// PromoteOnDiskRead reports whether a block just read from disk
	// should be moved back to memory.
	PromoteOnDiskRead(ex *Executor, id storage.BlockID) bool
	// OnBlockAccess notifies cache hits for policy bookkeeping.
	OnBlockAccess(ex *Executor, id storage.BlockID)
	// OnBlockAdmitted notifies that a block entered the memory store.
	OnBlockAdmitted(ex *Executor, id storage.BlockID)
	// OnBlockRemoved notifies that a block left the given store tier.
	OnBlockRemoved(ex *Executor, id storage.BlockID)
	// OnComputed reports the observed metrics of a computed partition
	// (Blaze records these on its CostLineage, §5.3).
	OnComputed(ex *Executor, ds *dataflow.Dataset, part int, size int64, cost time.Duration)
}

// Executor is one simulated executor: one virtual clock per core plus
// its block stores. Tasks for partition p run on the partition's home
// executor — initially p mod E, which models Spark's locality-aware
// scheduling (cached blocks are local) — until an executor death
// migrates the assignment to a survivor; within an executor, tasks are
// placed on the least-loaded core.
type Executor struct {
	ID    int
	cores []costmodel.Clock
	cur   int // core executing the current task
	Mem   *storage.MemoryStore
	Disk  *storage.DiskStore
	// dead marks an executor killed by fault injection: its stores are
	// unreachable, its clocks frozen, and no further tasks run on it.
	dead bool

	// slowFactor and slowTasks model a transient straggler window: while
	// slowTasks > 0, every task execution on this executor is inflated to
	// slowFactor times its intrinsic cost, decrementing the window. Both
	// are written only from this executor's own task context (or the
	// driver), so they need no locking under parallel stage execution.
	slowFactor float64
	slowTasks  int
	// flakes counts retryable failures (task flakes, fetch flakes) since
	// the last blacklist decision; written only from this executor's own
	// task context, read by the driver at stage barriers.
	flakes int
	// blacklisted marks a flaky executor the scheduler skips for cooldown
	// more top-level stages. Unlike death, the cache survives and the
	// executor is reinstated when the cooldown expires.
	blacklisted bool
	cooldown    int
}

// Dead reports whether the executor was killed by an injected
// executor-death fault.
func (ex *Executor) Dead() bool { return ex.dead }

// Blacklisted reports whether the executor is currently sitting out a
// flaky-executor cooldown window.
func (ex *Executor) Blacklisted() bool { return ex.blacklisted }

// Straggling reports whether the executor is inside an injected
// straggler window.
func (ex *Executor) Straggling() bool { return ex.slowTasks > 0 }

// Clock returns the clock of the core running the current task; costs
// incurred by the task (compute, I/O, migrations) advance it.
func (ex *Executor) Clock() *costmodel.Clock { return &ex.cores[ex.cur] }

// Cores returns the number of cores.
func (ex *Executor) Cores() int { return len(ex.cores) }

// MaxClock returns the executor's latest core time.
func (ex *Executor) MaxClock() time.Duration {
	var t time.Duration
	for i := range ex.cores {
		if ex.cores[i].Now() > t {
			t = ex.cores[i].Now()
		}
	}
	return t
}

// PickCore selects the least-loaded core (earliest clock, ties by index)
// for the next task and returns its clock.
func (ex *Executor) PickCore() *costmodel.Clock {
	best := 0
	for i := 1; i < len(ex.cores); i++ {
		if ex.cores[i].Now() < ex.cores[best].Now() {
			best = i
		}
	}
	ex.cur = best
	return &ex.cores[best]
}

// idleCore returns the clock of the least-loaded core without changing
// which core runs the current task (unlike PickCore). Speculative task
// copies advance this clock directly.
func (ex *Executor) idleCore() *costmodel.Clock {
	best := 0
	for i := 1; i < len(ex.cores); i++ {
		if ex.cores[i].Now() < ex.cores[best].Now() {
			best = i
		}
	}
	return &ex.cores[best]
}

// SyncTo advances every core to at least t (stage barrier).
func (ex *Executor) SyncTo(t time.Duration) {
	for i := range ex.cores {
		ex.cores[i].AdvanceTo(t)
	}
}

// Config describes a cluster.
type Config struct {
	// Executors is the number of executors (E).
	Executors int
	// MemoryPerExecutor is the memory-store capacity per executor.
	MemoryPerExecutor int64
	// Params is the virtual-time cost model.
	Params costmodel.Params
	// Controller makes the caching decisions.
	Controller Controller
	// CoresPerExecutor is the number of task slots per executor
	// (default 1). With C cores, up to C tasks of a stage overlap on one
	// executor, so recomputation latencies across tasks overlap too —
	// the paper's executors run 4 cores each.
	CoresPerExecutor int
	// AlluxioMode models caching through an external tiered store
	// (Spark+Alluxio, §7.1): every cache write and read pays
	// (de)serialization even on the memory tier.
	AlluxioMode bool
	// EventLog, when non-nil, records structured execution events
	// (jobs, stages, tasks, cache lifecycle) for post-run auditing.
	EventLog *eventlog.Log
	// VerifyCodec round-trips every spilled block through the real
	// encoding/gob codec and panics on any mismatch — a serialization
	// correctness mode for tests (workload value types must be
	// registered with storage.RegisterValueType).
	VerifyCodec bool
	// Hook, when non-nil, observes job and top-level stage boundaries.
	// internal/faults implements it to inject failures between
	// scheduling units, turning the recovery paths (recomputation, disk
	// reload, stage resubmission) into first-class, testable scenarios.
	Hook Hook
	// Parallelism bounds the number of OS threads executing a stage's
	// tasks concurrently. 0 defaults to runtime.GOMAXPROCS(0); 1 forces
	// the fully sequential task loop. Any value produces bit-identical
	// virtual-clock metrics and event logs: stages are dispatched to one
	// worker goroutine per executor (preserving each executor's exact
	// sequential task subsequence), and only stages proven free of
	// cross-executor effects run in parallel — see parallelEligible.
	Parallelism int
	// Vectorized enables the columnar task loop: stages proven isolated
	// (the PR 3 home-locality gate, with spill-only-eviction semantics —
	// a single task has no concurrent evictor, so memory hits are stable)
	// move data between narrow operators as typed dataflow.Batch columns
	// with pooled scratch instead of boxed Record slices. Purely a data-
	// plane change: every virtual-time charge, controller callback and
	// event is issued exactly as in the row loop, so metrics and event
	// logs are bit-identical with the flag on or off, at any Parallelism
	// and under faults (see vectorized.go and TestVectorizedIdentity).
	Vectorized bool
	// Resilience configures the scheduler's transient-failure machinery
	// (task retries, speculative execution, blacklisting). The zero value
	// selects the documented defaults.
	Resilience Resilience
	// RealBytes backs the block stores with real bytes: the memory store
	// holds gob-serialized buffers (decoding on read through a bounded
	// decode cache) and the disk store writes one file per block under a
	// run-scoped temp directory. Virtual-time charging is unchanged — the
	// same modeled costs advance the same clocks — but every charge site
	// additionally records measured wall-clock work into the cluster's
	// Meter, enabling modeled-vs-measured comparison. Stages run on the
	// sequential task loop so measurements are not perturbed by
	// concurrent execution. Call Close when done to remove the block
	// files.
	RealBytes bool
	// StorageDir overrides the parent directory for RealBytes block
	// files (default: the OS temp dir). The run creates and owns a
	// unique subdirectory inside it.
	StorageDir string
	// Pool attaches the cluster to a shared executor pool instead of
	// creating private executors: Executors, CoresPerExecutor and
	// MemoryPerExecutor are ignored (the pool's shape wins), the pool's
	// stores and clocks are shared with every other attached cluster,
	// and jobs serialize through Gate (or the pool's own lock).
	// Incompatible with RealBytes.
	Pool *Pool
	// Gate, when non-nil (requires Pool), brokers job admission: the
	// engine calls Gate.AcquireJob/ReleaseJob around each job instead of
	// locking the pool directly, letting a server impose fair-share
	// ordering across sessions.
	Gate JobGate
}

// Resilience configures how the scheduler absorbs transient failures —
// the counterpart of Spark's task retries, speculative execution and
// executor blacklisting. All costs are charged to virtual time.
type Resilience struct {
	// MaxTaskRetries bounds how many failed attempts of one task are
	// retried before the final attempt runs unconditionally (so a task
	// runs at most MaxTaskRetries+1 attempts and always terminates).
	// 0 selects the default of 3; negative disables retries entirely.
	MaxTaskRetries int
	// MaxFetchRetries bounds transient shuffle-fetch retries per fetch.
	// 0 selects the default of 2; negative disables fetch retries.
	MaxFetchRetries int
	// RetryBackoff is the base backoff charged before the first retry;
	// it doubles with every subsequent attempt (deterministic exponential
	// backoff). 0 selects the default of 2ms.
	RetryBackoff time.Duration
	// SpeculativeMultiple enables speculative execution: once a
	// straggling task's projected duration exceeds this multiple of its
	// intrinsic (unslowed) cost, a copy launches on the fastest eligible
	// executor; the first finisher wins and the loser's core time is
	// accounted as waste. 0 (or <= 1) disables speculation. Stages that
	// could speculate run on the sequential task loop at every
	// Parallelism setting, keeping virtual-time results bit-identical.
	SpeculativeMultiple float64
	// BlacklistAfter blacklists an executor once it accumulates this many
	// retryable failures (task or fetch flakes): the scheduler reroutes
	// its tasks deterministically for BlacklistCooldown top-level stages,
	// while its cache survives (blacklisted != dead). 0 disables
	// blacklisting.
	BlacklistAfter int
	// BlacklistCooldown is the number of top-level stages a blacklisted
	// executor sits out before reinstatement (default 2 when blacklisting
	// is enabled).
	BlacklistCooldown int
}

// String renders the configuration in the knob vocabulary blaze's
// ParseResilience accepts ("retries=3,backoff=2ms,..."), emitting only
// the fields that differ from the zero value so String/Parse round-trip
// exactly: the zero value renders as "".
func (r Resilience) String() string {
	var parts []string
	if r.MaxTaskRetries != 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", r.MaxTaskRetries))
	}
	if r.MaxFetchRetries != 0 {
		parts = append(parts, fmt.Sprintf("fetch-retries=%d", r.MaxFetchRetries))
	}
	if r.RetryBackoff != 0 {
		parts = append(parts, fmt.Sprintf("backoff=%s", r.RetryBackoff))
	}
	if r.SpeculativeMultiple != 0 {
		parts = append(parts, fmt.Sprintf("spec=%s", strconv.FormatFloat(r.SpeculativeMultiple, 'g', -1, 64)))
	}
	if r.BlacklistAfter != 0 {
		parts = append(parts, fmt.Sprintf("blacklist=%d", r.BlacklistAfter))
	}
	if r.BlacklistCooldown != 0 {
		parts = append(parts, fmt.Sprintf("cooldown=%d", r.BlacklistCooldown))
	}
	return strings.Join(parts, ",")
}

// normalized resolves the zero-value defaults and negative sentinels.
func (r Resilience) normalized() Resilience {
	switch {
	case r.MaxTaskRetries == 0:
		r.MaxTaskRetries = 3
	case r.MaxTaskRetries < 0:
		r.MaxTaskRetries = 0
	}
	switch {
	case r.MaxFetchRetries == 0:
		r.MaxFetchRetries = 2
	case r.MaxFetchRetries < 0:
		r.MaxFetchRetries = 0
	}
	if r.RetryBackoff <= 0 {
		r.RetryBackoff = 2 * time.Millisecond
	}
	if r.SpeculativeMultiple <= 1 {
		r.SpeculativeMultiple = 0
	}
	if r.BlacklistAfter > 0 && r.BlacklistCooldown <= 0 {
		r.BlacklistCooldown = 2
	}
	return r
}

// ParallelCaps declares the properties of a Controller that the engine
// needs to decide whether a stage's tasks may run on concurrent
// per-executor workers without changing any virtual-time result.
type ParallelCaps struct {
	// Safe asserts the controller's task-path callbacks (OnBlockAccess,
	// OnBlockAdmitted, OnBlockRemoved, OnComputed, PlaceComputed,
	// SelectVictims, PromoteOnDiskRead) tolerate concurrent invocation
	// from one worker goroutine per executor, and that their effects on
	// any single executor depend only on that executor's own access
	// stream. Controllers that do not implement ParallelCapable are
	// treated as unsafe and always run sequentially.
	Safe bool
	// SpillOnlyEvictions asserts every victim the controller selects is
	// spilled to disk (Victim.ToDisk == true), never dropped. The engine
	// may then treat memory-resident blocks as stable lineage
	// truncation points during a stage: a concurrent eviction can only
	// move them to disk, not expose deeper recomputation paths.
	SpillOnlyEvictions bool
	// RemoteReads declares the controller's task-path callbacks may read
	// state derived from other executors' partitions (Blaze's cost
	// estimator walks lineage across shuffle edges whose parent and
	// child partition counts differ, reaching partitions homed on other
	// executors). Stages run sequentially while any incomplete shuffle
	// edge with differing partition counts is reachable from estimable
	// data, so such reads never happen concurrently with writes.
	RemoteReads bool
}

// ParallelCapable is implemented by controllers that have audited their
// callback paths for per-executor-parallel execution.
type ParallelCapable interface {
	ParallelCaps() ParallelCaps
}

// Hook observes scheduling boundaries of a cluster. Stage notifications
// fire only for top-level stages — never for stages regenerated in the
// middle of an outer task — so hooks always run between scheduling units,
// where mutating cache or shuffle state is safe.
type Hook interface {
	// OnJobStart fires after the job DAG is built, before stages run.
	OnJobStart(c *Cluster, j *Job)
	// OnStageEnd fires after each top-level stage's barrier.
	OnStageEnd(c *Cluster, st *Stage)
	// OnJobEnd fires after the job's final stage.
	OnJobEnd(c *Cluster, j *Job)
}

// TaskHook is an optional extension of Hook observing individual task
// attempts and shuffle-fetch attempts — the granularity transient faults
// live at. A Config.Hook that also implements TaskHook is consulted on
// every attempt.
//
// Implementations must be safe for concurrent calls from per-executor
// workers, and their verdicts must be pure functions of the arguments
// (never of call order or shared mutable draws): the engine calls them
// from both the sequential loop and parallel workers, and the
// virtual-time results must stay bit-identical across Parallelism
// settings. Mutations beyond the given executor's own state are limited
// to InjectStraggler and internal (locked) counters.
type TaskHook interface {
	Hook
	// OnTaskStart fires before attempt (1-based) of the task computing
	// partition part of st.Boundary on ex. Returning true fails the
	// attempt transiently: the scheduler charges the wasted launch
	// overhead plus exponential backoff to virtual time and retries,
	// bounded by Resilience.MaxTaskRetries — the verdict of the final
	// attempt is ignored, so tasks always terminate.
	OnTaskStart(c *Cluster, ex *Executor, st *Stage, part, attempt int) bool
	// OnTaskEnd fires after the task's successful execution completes.
	OnTaskEnd(c *Cluster, ex *Executor, st *Stage, part int)
	// OnFetch fires before fetch attempt (1-based) of reduce bucket part
	// of shuffleID on ex. Returning true fails the attempt transiently
	// (the bucket itself is intact); the fetch is retried with backoff,
	// bounded by Resilience.MaxFetchRetries.
	OnFetch(c *Cluster, ex *Executor, shuffleID, part, attempt int) bool
}

// Cluster executes jobs for one dataflow context.
type Cluster struct {
	cfg     Config
	ctx     *dataflow.Context
	execs   []*Executor
	shuffle *shuffle.Service
	met     *metrics.App
	ctl     Controller

	log      *eventlog.Log
	jobSeq   int
	stageSeq int
	// computedOnce marks partitions already computed at least once, so
	// later computations count as recomputation (cache-miss recovery).
	computedOnce map[storage.BlockID]bool
	// curJob is the index of the job currently running, for attributing
	// recomputation time (Fig. 5).
	curJob int
	// assign maps partition slots (partition index mod E) to executor
	// indices. It starts as the identity; executor deaths rebalance the
	// dead executor's slots round-robin over the sorted survivors.
	assign []int
	// faultLost marks blocks destroyed by injected faults with the fault
	// class that destroyed them; when such a block is recomputed, the
	// cost is attributed as recovery for that class.
	faultLost map[storage.BlockID]string
	// faultLostShuffles marks shuffles cleaned whole by injected faults;
	// their regeneration is attributed as fault recovery.
	faultLostShuffles map[int]bool
	// faultLostMaps marks individual map outputs invalidated by injected
	// faults (bucket loss, executor death), per shuffle, with the fault
	// class; re-running exactly those map tasks is the recovery.
	faultLostMaps map[int]map[int]string

	// par is the resolved Config.Parallelism (>= 1).
	par int
	// res is the resolved Config.Resilience (defaults applied).
	res Resilience
	// taskHook is Config.Hook downcast to TaskHook when it implements
	// the task-granularity extension, nil otherwise.
	taskHook TaskHook
	// mu guards the cluster-wide bookkeeping maps (computedOnce,
	// faultLost) while a stage's tasks run on parallel workers. Lock
	// ordering: mu is a leaf lock, acquired after no other lock; the
	// metrics and shuffle-service mutexes are likewise leaves, so no
	// two of these locks are ever held together.
	mu sync.Mutex
	// curTrace routes task-context event emissions and disk-write
	// notes into per-task buffers during parallel stage execution.
	// curTrace[ex.ID] is non-nil exactly while ex's worker goroutine is
	// inside a task; each slot is written only by its own worker (or by
	// the driver outside parallel sections), so access is race-free by
	// ownership.
	curTrace []*taskTrace

	// parallelStages counts stages dispatched to concurrent workers
	// (driver-context bookkeeping, see ParallelStagesRan).
	parallelStages int

	// meter collects measured storage work in RealBytes mode (nil in
	// virtual mode; all Meter methods are nil-safe no-ops then).
	meter *storage.Meter
	// storageDir is the run-scoped directory holding RealBytes block
	// files, removed by Close ("" in virtual mode).
	storageDir string

	// pool, gate and quota are set when the cluster leases a shared
	// executor pool (Config.Pool): jobs serialize through gate (or the
	// pool's lock), and memory admissions answer to quota. inJob marks
	// that this cluster currently holds pool exclusivity via the job
	// path, so driver-path accessors must not re-acquire it.
	pool  *Pool
	gate  JobGate
	quota storage.QuotaController
	inJob bool
	// startTime is the pool timeline's Now at session creation; pooled
	// ACT is measured from it, so a session admitted late is not charged
	// for history it never saw (but is charged for contention while it
	// runs, which the shared clocks impose naturally).
	startTime time.Duration
	// diskBase snapshots each pool executor's cumulative disk-written
	// bytes at session creation; Finish reports the session's delta.
	diskBase []int64

	// curWindow is the 1-based index of the open micro-batch window on a
	// streaming session (0 on one-shot runs; see StartWindow).
	curWindow int

	// Crash-recovery state (see recover.go). While replay is true the
	// cluster fast-forwards a resumed driver: jobs return empty results
	// without executing and window boundaries only count replayWindows
	// up toward replayTarget.Window, where finishResume rehydrates.
	replay        bool
	replayWindows int
	replayTarget  *ResumeState
	// recoveryLog receives resume-only bookkeeping events (checkpoint
	// and repair activity must never enter the main log, which has to
	// stay bit-identical to an uninterrupted run).
	recoveryLog *eventlog.Log
	// checkpointer, when set, observes streaming window boundaries to
	// persist ResumeState snapshots.
	checkpointer WindowCheckpointer
}

// taskTrace buffers one task's externally ordered side effects during
// parallel execution: its event-log emissions and its disk-footprint
// deltas. After the stage joins, traces are replayed in ascending task
// order — exactly the order the sequential loop would have produced —
// so the event log and the cluster-wide disk peak are bit-identical to
// a Parallelism=1 run.
type taskTrace struct {
	events     []eventlog.Event
	diskDeltas []int64
}

// NewCluster creates a cluster bound to the context and installs itself
// as the context's job runner.
func NewCluster(cfg Config, ctx *dataflow.Context) (*Cluster, error) {
	if cfg.Pool != nil {
		if cfg.RealBytes {
			return nil, fmt.Errorf("engine: RealBytes is incompatible with a shared pool")
		}
		cfg.Executors = cfg.Pool.Config().Executors
		cfg.CoresPerExecutor = cfg.Pool.Config().CoresPerExecutor
		cfg.MemoryPerExecutor = cfg.Pool.Config().MemoryPerExecutor
	} else if cfg.Gate != nil {
		return nil, fmt.Errorf("engine: a job gate requires a shared pool")
	}
	if cfg.Executors <= 0 {
		return nil, fmt.Errorf("engine: need at least one executor, got %d", cfg.Executors)
	}
	if cfg.MemoryPerExecutor <= 0 {
		return nil, fmt.Errorf("engine: memory per executor must be positive, got %d", cfg.MemoryPerExecutor)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Controller == nil {
		return nil, fmt.Errorf("engine: a cache controller is required")
	}
	c := &Cluster{
		cfg:               cfg,
		ctx:               ctx,
		shuffle:           shuffle.NewService(),
		met:               metrics.NewApp(cfg.Executors),
		ctl:               cfg.Controller,
		log:               cfg.EventLog,
		computedOnce:      make(map[storage.BlockID]bool),
		assign:            make([]int, cfg.Executors),
		faultLost:         make(map[storage.BlockID]string),
		faultLostShuffles: make(map[int]bool),
		faultLostMaps:     make(map[int]map[int]string),
	}
	for i := range c.assign {
		c.assign[i] = i
	}
	c.par = cfg.Parallelism
	if c.par == 0 {
		c.par = runtime.GOMAXPROCS(0)
	}
	if c.par < 1 {
		c.par = 1
	}
	c.res = cfg.Resilience.normalized()
	if th, ok := cfg.Hook.(TaskHook); ok {
		c.taskHook = th
	}
	c.curTrace = make([]*taskTrace, cfg.Executors)
	if cfg.Pool != nil {
		c.pool = cfg.Pool
		c.gate = cfg.Gate
		c.quota = cfg.Pool.Quota()
		c.execs = cfg.Pool.Executors()
		c.pool.Acquire()
		// Session baselines: pooled ACT and disk-written bytes are deltas
		// from the session's admission instant on the shared timeline.
		c.startTime = c.Now()
		c.diskBase = make([]int64, len(c.execs))
		live := make([]int, 0, len(c.execs))
		for i, ex := range c.execs {
			c.diskBase[i] = ex.Disk.TotalWritten()
			if !ex.dead {
				live = append(live, i)
			}
		}
		c.pool.Release()
		if len(live) == 0 {
			return nil, fmt.Errorf("engine: shared pool has no live executors")
		}
		// Home partitions round-robin over the live executors, so a
		// session admitted after an executor death never schedules tasks
		// onto a dead executor.
		for i := range c.assign {
			c.assign[i] = live[i%len(live)]
		}
		ctx.SetRunner(c)
		c.ctl.Bind(c)
		return c, nil
	}
	cores := cfg.CoresPerExecutor
	if cores <= 0 {
		cores = 1
	}
	if cfg.RealBytes {
		c.meter = storage.NewMeter()
		dir, err := os.MkdirTemp(cfg.StorageDir, "blaze-storage-*")
		if err != nil {
			return nil, fmt.Errorf("engine: real-bytes storage dir: %w", err)
		}
		c.storageDir = dir
	}
	for i := 0; i < cfg.Executors; i++ {
		ex := &Executor{ID: i, cores: make([]costmodel.Clock, cores)}
		if cfg.RealBytes {
			// AlluxioMode models per-read deserialization, so its real
			// counterpart must decode on every read: no decode cache.
			// Other systems keep a small hot-read cache, like Spark's
			// deserialized memory level amortizes repeated reads.
			cacheBlocks := realDecodeCacheBlocks
			if cfg.AlluxioMode {
				cacheBlocks = 0
			}
			dir := filepath.Join(c.storageDir, fmt.Sprintf("exec-%d", i))
			if err := os.Mkdir(dir, 0o755); err != nil {
				os.RemoveAll(c.storageDir)
				return nil, fmt.Errorf("engine: real-bytes executor dir: %w", err)
			}
			ex.Mem = storage.NewMemoryStoreReal(cfg.MemoryPerExecutor, c.meter, cacheBlocks)
			ex.Disk = storage.NewDiskStoreReal(dir, c.meter)
		} else {
			ex.Mem = storage.NewMemoryStore(cfg.MemoryPerExecutor)
			ex.Disk = storage.NewDiskStore()
		}
		c.execs = append(c.execs, ex)
	}
	ctx.SetRunner(c)
	c.ctl.Bind(c)
	return c, nil
}

// Context returns the driver context.
func (c *Cluster) Context() *dataflow.Context { return c.ctx }

// SharedPool reports whether this cluster leases a shared executor pool
// (a multi-session job server), where other sessions' blocks live in
// the same stores. Controllers consult it to avoid pricing a
// neighbor's cache at zero.
func (c *Cluster) SharedPool() bool { return c.pool != nil }

// DropNamespaceBlocks silently removes every resident block whose
// dataset id falls in [lo, hi) from all pool executors — no events, no
// metric or clock charges. The job server calls it when a session
// exits, so a dead application's blocks stop occupying (and, with
// their stamped costs, defending) the shared cache. The caller must
// hold pool exclusivity; quota bytes are released through the stores.
func (c *Cluster) DropNamespaceBlocks(lo, hi int) {
	for _, ex := range c.execs {
		for _, m := range ex.Mem.Blocks() {
			if m.ID.Dataset >= lo && m.ID.Dataset < hi {
				ex.Mem.Remove(m.ID)
			}
		}
		for _, id := range ex.Disk.Blocks() {
			if id.Dataset >= lo && id.Dataset < hi {
				ex.Disk.Remove(id)
			}
		}
	}
}

// Executors returns all executors, dead ones included (their stats and
// stores remain addressable by index).
func (c *Cluster) Executors() []*Executor { return c.execs }

// LiveExecutors returns the executors still alive, in id order.
func (c *Cluster) LiveExecutors() []*Executor {
	out := make([]*Executor, 0, len(c.execs))
	for _, ex := range c.execs {
		if !ex.dead {
			out = append(out, ex)
		}
	}
	return out
}

// ExecutorFor returns the home executor of a partition: its slot's
// current assignee, which deaths may have migrated away from the initial
// p mod E executor. The returned executor is always alive.
func (c *Cluster) ExecutorFor(part int) *Executor {
	return c.execs[c.assign[part%len(c.execs)]]
}

// Params returns the cost model parameters.
func (c *Cluster) Params() costmodel.Params { return c.cfg.Params }

// Resilience returns the resolved resilience configuration.
func (c *Cluster) Resilience() Resilience { return c.res }

// CurrentJob returns the index of the job currently running. Task hooks
// use it to key transient fault decisions.
func (c *Cluster) CurrentJob() int { return c.curJob }

// WindowAdvancer is the optional controller extension for micro-batch
// streaming. A controller that implements it is notified at every
// window boundary — after the previous window's jobs have finished and
// before the new window's first job is submitted — so it can retire
// lineage whose lifetime has passed and re-solve placement as a delta
// on the previous window's assignment.
type WindowAdvancer interface {
	// AdvanceWindow opens the given 1-based window; nextJob is the index
	// the window's first job will receive.
	AdvanceWindow(window, nextJob int)
}

// StartWindow opens the next micro-batch window on a streaming session
// and returns its 1-based index. It runs in driver context between
// jobs: the boundary takes pool exclusivity like a job (window-boundary
// retirement and re-solves mutate the stores), emits the window_start
// event, and hands the controller its AdvanceWindow notification when
// it implements WindowAdvancer. One-shot runs never call it, so their
// metrics and event logs are unchanged.
func (c *Cluster) StartWindow() int {
	if c.replay {
		// Replayed boundary: nothing runs live. Count it, and once the
		// driver reaches the checkpointed window rehydrate under pool
		// exclusivity — the snapshot was captured after this boundary's
		// AdvanceWindow, so its effects are already inside it.
		c.replayWindows++
		if c.replayWindows >= c.replayTarget.Window {
			c.beginJob()
			c.finishResume()
			c.endJob()
		}
		return c.replayWindows
	}
	c.beginJob()
	defer c.endJob()
	c.curWindow++
	c.met.WindowsRun++
	c.emit(eventlog.Event{Kind: eventlog.WindowStart, Time: c.Now(), Job: c.jobSeq, Window: c.curWindow})
	if wa, ok := c.ctl.(WindowAdvancer); ok {
		wa.AdvanceWindow(c.curWindow, c.jobSeq)
	}
	if c.checkpointer != nil && c.curWindow > 1 {
		// Checkpoint after the boundary re-solve: the snapshot then
		// holds windows 1..k-1 complete plus boundary k's plan, and a
		// resume continues straight into window k's jobs.
		c.checkpointer.OnWindowBoundary(c, c.curWindow)
	}
	return c.curWindow
}

// CurrentWindow returns the open micro-batch window index (0 when the
// session is not windowed).
func (c *Cluster) CurrentWindow() int { return c.curWindow }

// anyBlacklisted reports whether any executor is sitting out a
// flaky-executor cooldown (driver-context read).
func (c *Cluster) anyBlacklisted() bool {
	for _, ex := range c.execs {
		if ex.blacklisted {
			return true
		}
	}
	return false
}

// anyStraggling reports whether any executor is inside a straggler
// window (driver-context read, used to gate parallel dispatch while
// speculation is enabled).
func (c *Cluster) anyStraggling() bool {
	for _, ex := range c.execs {
		if ex.slowTasks > 0 {
			return true
		}
	}
	return false
}

// Metrics returns the application metrics.
func (c *Cluster) Metrics() *metrics.App { return c.met }

// Meter returns the measured-storage meter (nil unless Config.RealBytes).
func (c *Cluster) Meter() *storage.Meter { return c.meter }

// StorageDir returns the run-scoped directory holding RealBytes block
// files ("" in virtual mode).
func (c *Cluster) StorageDir() string { return c.storageDir }

// Close releases run-scoped resources: in RealBytes mode it removes the
// block-file directory. Safe to call multiple times and on virtual-mode
// clusters (no-op); callers should defer it right after NewCluster so
// failure paths clean up too.
func (c *Cluster) Close() error {
	if c.storageDir == "" {
		return nil
	}
	dir := c.storageDir
	c.storageDir = ""
	return os.RemoveAll(dir)
}

// ShuffleComplete reports whether a shuffle's outputs are currently
// available (controllers use this to price recomputation across stage
// boundaries).
func (c *Cluster) ShuffleComplete(shuffleID int) bool { return c.shuffle.Complete(shuffleID) }

// EmitEvent appends a driver-context event to the attached log (a no-op
// without one). Controllers use it to record decisions made at
// scheduling boundaries — e.g. the optimizer's per-solve ILPSolve
// events — where no task trace is active.
func (c *Cluster) EmitEvent(e eventlog.Event) { c.emit(e) }

// emit appends an event to the attached log, stamping the dataset name.
// Driver-context events only; task-context emissions go through emitEx.
func (c *Cluster) emit(e eventlog.Event) {
	if c.log == nil {
		return
	}
	if e.DatasetNm == "" {
		if ds := c.ctx.Dataset(e.Dataset); ds != nil {
			e.DatasetNm = ds.Name()
		}
	}
	c.log.Append(e)
}

// emitEx records an event produced while executing on the executor.
// During a parallel stage the event is buffered on the executor's
// current task trace and flushed in task order at the stage join;
// outside parallel sections it appends directly, like emit.
func (c *Cluster) emitEx(ex *Executor, e eventlog.Event) {
	tr := c.curTrace[ex.ID]
	if tr == nil {
		c.emit(e)
		return
	}
	if c.log == nil {
		return
	}
	if e.DatasetNm == "" {
		if ds := c.ctx.Dataset(e.Dataset); ds != nil {
			e.DatasetNm = ds.Name()
		}
	}
	tr.events = append(tr.events, e)
}

// noteDiskWrite accounts a disk write of size bytes on the executor for
// the cluster-wide peak-footprint statistic. During a parallel stage the
// delta is buffered on the task trace and replayed in task order at the
// stage join, reproducing the sequential sampling exactly; otherwise the
// global footprint is sampled immediately.
func (c *Cluster) noteDiskWrite(ex *Executor, size int64) {
	if tr := c.curTrace[ex.ID]; tr != nil {
		tr.diskDeltas = append(tr.diskDeltas, size)
		return
	}
	c.noteDiskPeak()
}

// Now returns the current application time: the maximum executor clock.
func (c *Cluster) Now() time.Duration {
	var t time.Duration
	for _, ex := range c.execs {
		if m := ex.MaxClock(); m > t {
			t = m
		}
	}
	return t
}

// lockDriver serializes a driver-path mutation (Finish, Unpersist,
// Release, DropDataset) against a shared pool. Inside a job the gate
// already holds pool exclusivity, and standalone clusters own their
// executors outright; both cases need no locking.
func (c *Cluster) lockDriver() func() {
	if c.pool == nil || c.inJob {
		return func() {}
	}
	c.pool.Acquire()
	return c.pool.Release
}

// Finish seals the run: synchronizes clocks, records the ACT and final
// storage statistics. Call once after the workload completes. On a
// shared pool the session's ACT is measured from its admission instant
// and its disk-written bytes are the session's delta; per-executor
// DiskPeakBytes remains the pool-lifetime peak (the stores are shared).
func (c *Cluster) Finish() *metrics.App {
	unlock := c.lockDriver()
	defer unlock()
	end := c.Now()
	for _, ex := range c.execs {
		if ex.dead {
			continue // clocks froze at death
		}
		ex.SyncTo(end)
	}
	act := end
	if c.pool != nil {
		act -= c.startTime
	}
	c.met.ACT = act + c.met.ProfilingTime
	c.met.DiskBytesWritten = 0
	for i, ex := range c.execs {
		written := ex.Disk.TotalWritten()
		if c.diskBase != nil {
			written -= c.diskBase[i]
		}
		c.met.DiskBytesWritten += written
		// Per-executor peaks are reported separately; the cluster-wide
		// DiskPeakBytes is maintained on every disk write, because the
		// executors' individual peaks occur at different virtual times
		// and their sum would overstate the concurrent footprint.
		c.met.Executors[i].DiskPeakBytes = ex.Disk.PeakBytes()
	}
	return c.met
}

// noteDiskPeak refreshes the cluster-wide peak disk footprint after a
// disk write (removals cannot raise the peak).
func (c *Cluster) noteDiskPeak() {
	var cur int64
	for _, ex := range c.execs {
		cur += ex.Disk.CurrentBytes()
	}
	if cur > c.met.DiskPeakBytes {
		c.met.DiskPeakBytes = cur
	}
}

// AddProfilingTime charges the dependency-extraction overhead into the
// application completion time (Blaze includes it, §7.2).
func (c *Cluster) AddProfilingTime(d time.Duration) { c.met.ProfilingTime += d }

// Unpersist implements dataflow.JobRunner: drop every cached block of the
// dataset from memory and disk. A no-op in replay mode, like the jobs
// whose blocks it would drop.
func (c *Cluster) Unpersist(d *dataflow.Dataset) {
	c.DropDataset(d)
}

// Release implements dataflow.JobRunner: unpersist and clean the shuffle
// outputs computed from the dataset, like Spark's ContextCleaner when an
// RDD goes out of scope.
func (c *Cluster) Release(d *dataflow.Dataset) {
	if c.replay {
		return
	}
	unlock := c.lockDriver()
	defer unlock()
	c.dropDataset(d)
	for _, ds := range c.ctx.Datasets() {
		for _, dep := range ds.Deps() {
			if dep.Shuffle && dep.Parent == d {
				c.shuffle.Clean(dep.ShuffleID)
				// The deliberate clean supersedes any pending partial
				// fault marks: a later re-run is a full regeneration,
				// not recovery of the individual lost map outputs.
				delete(c.faultLostMaps, dep.ShuffleID)
			}
		}
	}
}

// DropDataset removes all cached blocks of a dataset (an unpersist: the
// transition m→u or d→u, which is free of I/O).
func (c *Cluster) DropDataset(d *dataflow.Dataset) {
	if c.replay {
		return
	}
	unlock := c.lockDriver()
	defer unlock()
	c.dropDataset(d)
}

func (c *Cluster) dropDataset(d *dataflow.Dataset) {
	dropped := false
	for _, ex := range c.execs {
		for p := 0; p < d.Partitions(); p++ {
			id := storage.BlockID{Dataset: d.ID(), Partition: p}
			if _, _, ok := ex.Mem.Remove(id); ok {
				c.ctl.OnBlockRemoved(ex, id)
				dropped = true
			}
			if _, ok := ex.Disk.Remove(id); ok {
				c.ctl.OnBlockRemoved(ex, id)
				dropped = true
			}
		}
	}
	if dropped {
		c.met.Unpersists++
	}
}

// DropBlock removes one block from both tiers without I/O cost (u state)
// and counts the unpersist.
func (c *Cluster) DropBlock(ex *Executor, id storage.BlockID) {
	dropped := false
	if _, _, ok := ex.Mem.Remove(id); ok {
		c.ctl.OnBlockRemoved(ex, id)
		dropped = true
	}
	if _, ok := ex.Disk.Remove(id); ok {
		c.ctl.OnBlockRemoved(ex, id)
		dropped = true
	}
	if dropped {
		c.met.Unpersists++
	}
}

// SpillBlock moves a block from memory to disk (m→d), charging the write
// to the executor clock and the disk-I/O-for-caching bucket.
func (c *Cluster) SpillBlock(ex *Executor, id storage.BlockID) bool {
	// In RealBytes mode the memory copy is already serialized; spilling
	// moves the encoded buffer to its block file without a decode/encode
	// round trip (as Spark spills serialized bytes).
	var recs []dataflow.Record
	var data []byte
	var size int64
	var ok bool
	if c.cfg.RealBytes {
		data, size, ok = ex.Mem.RemoveEncoded(id)
	} else {
		recs, size, ok = ex.Mem.Remove(id)
	}
	if !ok {
		return false
	}
	if debugEvict {
		fmt.Fprintf(os.Stderr, "SPILL ex=%d %v ds=%s size=%d job=%d\n", ex.ID, id, c.ctx.Dataset(id.Dataset).Name(), size, c.curJob)
	}
	c.emitEx(ex, eventlog.Event{Kind: eventlog.BlockSpilled, Time: ex.Clock().Now(), Job: c.curJob,
		Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: size})
	c.ctl.OnBlockRemoved(ex, id)
	wrote := false
	if !ex.Disk.Contains(id) {
		if c.cfg.VerifyCodec && !c.cfg.RealBytes {
			// RealBytes blocks round-trip through the codec by
			// construction; verify only the virtual-mode objects.
			c.verifyCodec(id, recs)
		}
		cost := c.cfg.Params.DiskWrite(size)
		ex.Clock().Advance(cost)
		c.met.Executors[ex.ID].Breakdown.DiskIO += cost
		c.met.Executors[ex.ID].EvictedToDiskBytes += size
		c.meter.AddModeled(storage.DiskWrite, cost)
		var err error
		if c.cfg.RealBytes {
			err = ex.Disk.PutEncoded(id, data, size)
		} else {
			err = ex.Disk.Put(id, recs, size)
		}
		if err != nil {
			// Unreachable for duplicates (Contains was checked above);
			// a real-bytes file-write failure is fatal.
			panic(err)
		}
		c.noteDiskWrite(ex, size)
		// A to-disk eviction is only counted when bytes were actually
		// written; a victim whose disk copy was retained from an earlier
		// spill is an m→u drop of the memory copy, not a second m→d.
		wrote = true
	}
	c.met.Executors[ex.ID].EvictedBytes += size
	c.met.IncEviction(wrote)
	return true
}

// verifyCodec round-trips records through the gob codec, panicking on
// loss — enabled by Config.VerifyCodec.
func (c *Cluster) verifyCodec(id storage.BlockID, recs []dataflow.Record) {
	data, err := storage.EncodeRecords(recs)
	if err != nil {
		panic(fmt.Sprintf("engine: codec verify encode %v: %v", id, err))
	}
	back, err := storage.DecodeRecords(data)
	if err != nil {
		panic(fmt.Sprintf("engine: codec verify decode %v: %v", id, err))
	}
	if len(back) != len(recs) {
		panic(fmt.Sprintf("engine: codec verify %v: %d records became %d", id, len(recs), len(back)))
	}
	for i := range recs {
		if back[i].Key != recs[i].Key {
			panic(fmt.Sprintf("engine: codec verify %v: key %d mismatch", id, i))
		}
	}
}

// dropFromMemory removes a block from memory only (m→u under pressure).
func (c *Cluster) dropFromMemory(ex *Executor, id storage.BlockID) bool {
	_, size, ok := ex.Mem.Remove(id)
	if !ok {
		return false
	}
	if debugEvict {
		fmt.Fprintf(os.Stderr, "DROP  ex=%d %v ds=%s size=%d job=%d\n", ex.ID, id, c.ctx.Dataset(id.Dataset).Name(), size, c.curJob)
	}
	c.emitEx(ex, eventlog.Event{Kind: eventlog.BlockDropped, Time: ex.Clock().Now(), Job: c.curJob,
		Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: size})
	c.ctl.OnBlockRemoved(ex, id)
	c.met.Executors[ex.ID].EvictedBytes += size
	c.met.IncEviction(false)
	return true
}

// PromoteBlock copies a block from disk into memory (d→m) if space allows
// after evictions, charging the read. The disk copy is retained, as Spark
// retains spilled blocks until unpersist, so a later re-eviction pays no
// second write. Used by prefetching and by ILP migrations.
// chargeClock=false runs the I/O in scheduling gaps (MRD's background
// prefetch) while still accounting the disk time.
func (c *Cluster) PromoteBlock(ex *Executor, id storage.BlockID, chargeClock bool) bool {
	size, ok := ex.Disk.Size(id)
	if !ok || ex.Mem.Contains(id) {
		return false
	}
	if size > ex.Mem.Capacity() {
		return false
	}
	if !c.quotaReclaim(ex, id, size) {
		// Checked before any cost is charged: a promotion the tenant
		// quota refuses must not advance the clock for phantom I/O.
		return false
	}
	if !c.ensureFree(ex, size) {
		return false
	}
	cost := c.cfg.Params.DiskRead(size)
	if chargeClock {
		ex.Clock().Advance(cost)
	}
	c.met.Executors[ex.ID].Breakdown.DiskIO += cost
	c.meter.AddModeled(storage.DiskRead, cost)
	var err error
	if c.cfg.RealBytes {
		// Move the encoded buffer up without a decode/encode round trip;
		// it will be decoded on first read like any memory block.
		data, _, ok := ex.Disk.GetEncoded(id)
		if !ok {
			return false
		}
		_, err = ex.Mem.PutEncoded(id, data, size, ex.ID, ex.Clock().Now())
	} else {
		recs, _, ok := ex.Disk.Get(id)
		if !ok {
			return false
		}
		_, err = ex.Mem.Put(id, recs, size, ex.ID, ex.Clock().Now())
	}
	if err != nil {
		return false
	}
	c.ctl.OnBlockAdmitted(ex, id)
	return true
}

// quotaReclaim checks the pool's tenant quota for admitting size bytes
// of id, and — when the owner's limit is exhausted — evicts the owner's
// own coldest memory blocks across the pool (LRU by last access, ties
// by insertion order) until the admission fits. Returns false when the
// quota still refuses; the caller must then skip the memory admission
// without charging any cost. Always true without a quota.
func (c *Cluster) quotaReclaim(ex *Executor, id storage.BlockID, size int64) bool {
	q := c.quota
	if q == nil || q.Allows(id, size) {
		return true
	}
	owner := q.Owner(id)
	if owner == "" {
		return false
	}
	type victim struct {
		ex   *Executor
		meta *storage.BlockMeta
	}
	var victims []victim
	for _, pex := range c.execs {
		if pex.dead {
			continue
		}
		for _, m := range pex.Mem.Blocks() {
			if m.ID == id || q.Owner(m.ID) != owner {
				continue
			}
			victims = append(victims, victim{pex, m})
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].meta.LastAccess != victims[j].meta.LastAccess {
			return victims[i].meta.LastAccess < victims[j].meta.LastAccess
		}
		return victims[i].meta.InsertSeq < victims[j].meta.InsertSeq
	})
	for _, v := range victims {
		if q.Allows(id, size) {
			break
		}
		if c.dropFromMemory(v.ex, v.meta.ID) {
			c.met.IncQuotaEviction()
		}
	}
	return q.Allows(id, size)
}

// ensureFree evicts controller-chosen victims until at least required
// bytes are free on the executor. Returns false if the controller could
// not free enough.
func (c *Cluster) ensureFree(ex *Executor, required int64) bool {
	if ex.Mem.Free() >= required {
		return true
	}
	victims := c.ctl.SelectVictims(ex, required-ex.Mem.Free())
	for _, v := range victims {
		if ex.Mem.Free() >= required {
			break
		}
		if v.ToDisk {
			c.SpillBlock(ex, v.ID)
		} else {
			c.dropFromMemory(ex, v.ID)
		}
	}
	return ex.Mem.Free() >= required
}
