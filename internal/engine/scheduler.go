package engine

import (
	"fmt"
	"os"
	"sort"
	"time"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/eventlog"
	"blaze/internal/storage"
)

// Job is one action-triggered execution: a DAG of stages ending in a
// result stage. In iterative workloads each iteration submits one job
// (§2.1).
type Job struct {
	ID     int
	Target *dataflow.Dataset
	// Stages is in topological order; the result stage is last.
	Stages []*Stage
	// Datasets lists every dataset reachable in this job's stage
	// pipelines, sorted by id. Dependency-aware policies (LRC, MRD) and
	// Blaze derive reference information from it.
	Datasets []*dataflow.Dataset
}

// Stage is a pipelined set of operators executed as parallel tasks, cut
// at shuffle boundaries.
type Stage struct {
	ID    int
	Index int
	Job   *Job
	// Boundary is the dataset whose partitions the stage's tasks
	// materialize: the shuffle-map input for map stages, the action
	// target for the result stage.
	Boundary *dataflow.Dataset
	// IsResult marks the final stage of a job.
	IsResult bool
	// ShuffleDep is the shuffle this map stage produces (valid when
	// !IsResult); NumBuckets is the reduce-side partition count.
	ShuffleDep dataflow.Dependency
	NumBuckets int
	// Pipeline lists the datasets computed within this stage: the
	// boundary and its narrow-dependency closure, truncated at cached
	// data. Task execution touches (hits or recomputes) these datasets.
	Pipeline []*dataflow.Dataset
	// Parents are the stages producing this stage's shuffle inputs.
	Parents []*Stage
	// Skipped records that the stage's shuffle outputs already existed.
	Skipped bool
	// Regenerated marks stages re-run mid-job to recover cleaned shuffle
	// data (Spark's stage resubmission on missing shuffle files).
	Regenerated bool
	// vec marks this stage execution for the columnar task loop. Set
	// once per execution in runStage (driver context) when the cluster
	// is Vectorized and the stage passes the home-locality gate; the
	// choice only swaps the data plane, never the charges or events.
	vec bool
}

// shuffleRef pairs a shuffle dependency with the dataset that owns it,
// which determines the reduce-side bucket count.
type shuffleRef struct {
	dep   dataflow.Dependency
	owner *dataflow.Dataset
}

// allPartitionsAvailable reports whether every partition of the dataset
// is cached (memory or disk) on its home executor. Mirrors Spark's
// cache-location check that truncates lineage walks at cached RDDs.
func (c *Cluster) allPartitionsAvailable(d *dataflow.Dataset) bool {
	for p := 0; p < d.Partitions(); p++ {
		ex := c.ExecutorFor(p)
		id := storage.BlockID{Dataset: d.ID(), Partition: p}
		if !ex.Mem.Contains(id) && !ex.Disk.Contains(id) {
			return false
		}
	}
	return true
}

// narrowClosure walks narrow dependencies from the boundary, collecting
// the stage pipeline and the shuffle dependencies feeding it. The walk
// does not descend below datasets whose partitions are all cached.
func (c *Cluster) narrowClosure(boundary *dataflow.Dataset) (pipeline []*dataflow.Dataset, shuffles []shuffleRef) {
	seen := map[int]bool{}
	var walk func(d *dataflow.Dataset)
	walk = func(d *dataflow.Dataset) {
		if seen[d.ID()] {
			return
		}
		seen[d.ID()] = true
		pipeline = append(pipeline, d)
		if c.allPartitionsAvailable(d) {
			// Truncated: tasks will read the cached partitions. This also
			// applies to the boundary itself — a fully cached target needs
			// no parent stages, exactly like Spark's cache-location check
			// in getMissingParentStages.
			return
		}
		for _, dep := range d.Deps() {
			if dep.Shuffle {
				shuffles = append(shuffles, shuffleRef{dep: dep, owner: d})
			} else {
				walk(dep.Parent)
			}
		}
	}
	walk(boundary)
	return pipeline, shuffles
}

// buildJob constructs the stage DAG for an action on target.
func (c *Cluster) buildJob(target *dataflow.Dataset) *Job {
	job := &Job{ID: c.jobSeq, Target: target}
	stageByShuffle := map[int]*Stage{}
	dsSeen := map[int]*dataflow.Dataset{}

	var build func(boundary *dataflow.Dataset, isResult bool, dep dataflow.Dependency, buckets int) *Stage
	build = func(boundary *dataflow.Dataset, isResult bool, dep dataflow.Dependency, buckets int) *Stage {
		st := &Stage{
			Job:        job,
			Boundary:   boundary,
			IsResult:   isResult,
			ShuffleDep: dep,
			NumBuckets: buckets,
		}
		pipeline, shuffles := c.narrowClosure(boundary)
		st.Pipeline = pipeline
		for _, d := range pipeline {
			dsSeen[d.ID()] = d
		}
		for _, sr := range shuffles {
			if ps, ok := stageByShuffle[sr.dep.ShuffleID]; ok {
				st.Parents = append(st.Parents, ps)
				continue
			}
			// Parent stages whose shuffle outputs already exist are
			// still represented (for reference analysis) but will be
			// skipped at execution time.
			ps := build(sr.dep.Parent, false, sr.dep, sr.owner.Partitions())
			stageByShuffle[sr.dep.ShuffleID] = ps
			st.Parents = append(st.Parents, ps)
		}
		st.Index = len(job.Stages)
		st.ID = c.stageSeq
		c.stageSeq++
		job.Stages = append(job.Stages, st)
		return st
	}
	build(target, true, dataflow.Dependency{}, 0)

	job.Datasets = make([]*dataflow.Dataset, 0, len(dsSeen))
	for _, d := range dsSeen {
		job.Datasets = append(job.Datasets, d)
	}
	sort.Slice(job.Datasets, func(i, j int) bool { return job.Datasets[i].ID() < job.Datasets[j].ID() })
	return job
}

// RunJob implements dataflow.JobRunner: build the stage DAG, run stages
// in topological order with barriers, and return the result partitions.
func (c *Cluster) RunJob(target *dataflow.Dataset, action string) [][]dataflow.Record {
	if c.replay {
		// Resumed-driver fast-forward: the job's effects are already in
		// the checkpoint being replayed toward. Empty (not nil) partition
		// results keep replay-safe drivers iterating without executing.
		return make([][]dataflow.Record, target.Partitions())
	}
	c.beginJob()
	defer c.endJob()
	if debugEvict {
		missing := []int{}
		for p := 0; p < target.Partitions(); p++ {
			ex := c.ExecutorFor(p)
			id := storage.BlockID{Dataset: target.ID(), Partition: p}
			if !ex.Mem.Contains(id) && !ex.Disk.Contains(id) {
				missing = append(missing, p)
			}
		}
		fmt.Fprintf(os.Stderr, "JOB %d target=%s missing=%v\n", c.jobSeq, target.Name(), missing)
	}
	job := c.buildJob(target)
	c.jobSeq++
	c.curJob = job.ID
	c.met.Jobs++
	c.emit(eventlog.Event{Kind: eventlog.JobStart, Time: c.Now(), Job: job.ID})
	c.ctl.OnJobStart(job)
	if c.cfg.Hook != nil {
		c.cfg.Hook.OnJobStart(c, job)
	}

	var results [][]dataflow.Record
	for _, st := range job.Stages {
		if st.IsResult {
			results = c.runStage(st)
		} else {
			c.runStage(st)
		}
	}
	c.ctl.OnJobEnd(job)
	if c.cfg.Hook != nil {
		c.cfg.Hook.OnJobEnd(c, job)
	}
	c.emit(eventlog.Event{Kind: eventlog.JobEnd, Time: c.Now(), Job: job.ID})
	return results
}

// beginJob takes pool exclusivity for one job when the cluster leases a
// shared pool: through the server's gate when one is installed (which
// may park the session until fair-share admission picks it), else the
// pool's own lock. Nested stage regenerations go through runStage, not
// RunJob, so the job-level bracket is never re-entered. Standalone
// clusters are unaffected.
func (c *Cluster) beginJob() {
	if c.pool == nil {
		return
	}
	if c.gate != nil {
		c.gate.AcquireJob(c)
	} else {
		c.pool.Acquire()
	}
	c.inJob = true
}

// endJob releases pool exclusivity after a job. A gate that rejects
// admission by panicking out of AcquireJob (session cancellation) must
// leave the pool unlocked itself: the panic propagates before inJob is
// set, so this deferred release is a no-op then.
func (c *Cluster) endJob() {
	if c.pool == nil {
		return
	}
	if !c.inJob {
		return
	}
	c.inJob = false
	if c.gate != nil {
		c.gate.ReleaseJob(c)
	} else {
		c.pool.Release()
	}
}

// runStage executes one stage's tasks on their home executors and
// applies the stage barrier. For result stages it returns the computed
// partitions.
func (c *Cluster) runStage(st *Stage) [][]dataflow.Record {
	// taskParts is the partition set this stage execution runs: every
	// boundary partition for result stages; for map stages, exactly the
	// map partitions whose shuffle outputs are missing. On a fresh
	// shuffle that is all of them, but after a partial fault (bucket
	// loss, executor death) only the invalidated producers re-run —
	// Spark's fine-grained resubmission, versus regenerating the whole
	// stage for a cleaned shuffle.
	var taskParts []int
	if st.IsResult {
		taskParts = make([]int, st.Boundary.Partitions())
		for p := range taskParts {
			taskParts[p] = p
		}
	} else {
		sid := st.ShuffleDep.ShuffleID
		if c.shuffle.Complete(sid) {
			st.Skipped = true
			c.met.SkippedStages++
			return nil
		}
		c.shuffle.Ensure(sid, st.NumBuckets, st.Boundary.Partitions())
		taskParts = c.shuffle.MissingMaps(sid)
	}
	// Columnar eligibility reuses the PR 3 isolation gate. Spill-only
	// semantics are correct here even for drop-on-evict controllers: a
	// task has no concurrent evictor on its own executor, so a memory
	// hit observed by the walk stays readable for that task. The gate
	// keeps stages headed for mid-task shuffle regeneration on the row
	// loop (fetchShuffleVec still handles the mid-stage-eviction edge
	// case identically); either loop produces bit-identical metrics and
	// events regardless — the gate is an engineering boundary, not a
	// correctness one.
	st.vec = c.cfg.Vectorized && !st.Regenerated && c.stageIsolated(st, taskParts, true)
	// A stage recreating a shuffle an injected fault destroyed is
	// recovery work, whether it runs nested (regeneration mid-task) or as
	// a top-level stage the next job resubmitted; the core time the whole
	// stage consumes is the recovery cost. Partial losses are attributed
	// the same way, priced over just the re-run map tasks.
	faultRecovery := !st.IsResult && c.faultLostShuffles[st.ShuffleDep.ShuffleID]
	var partialClasses map[int]string
	if !st.IsResult && !faultRecovery {
		partialClasses = c.faultLostMaps[st.ShuffleDep.ShuffleID]
	}
	var recoveryStart time.Duration
	if faultRecovery || len(partialClasses) > 0 {
		recoveryStart = c.coreTimeSum()
	}

	var results [][]dataflow.Record
	if st.IsResult {
		results = make([][]dataflow.Record, st.Boundary.Partitions())
	}
	c.emit(eventlog.Event{Kind: eventlog.StageStart, Time: c.Now(), Job: c.curJob,
		Stage: st.ID, Dataset: st.Boundary.ID(), Regen: st.Regenerated})
	if perExec, order := c.parallelPlan(st, taskParts); perExec != nil {
		c.runStageParallel(st, taskParts, perExec, order, results)
	} else {
		for _, p := range taskParts {
			ex := c.taskExecutor(p)
			ex.PickCore() // least-loaded core runs the task
			out := c.runTask(ex, st, p)
			if st.IsResult {
				results[p] = out
			}
		}
	}
	if !st.IsResult {
		c.shuffle.MarkComplete(st.ShuffleDep.ShuffleID)
	}
	if faultRecovery {
		delete(c.faultLostShuffles, st.ShuffleDep.ShuffleID)
		cost := c.coreTimeSum() - recoveryStart
		c.met.AddFaultRecovery(c.curJob, cost)
		c.met.AddFaultRecoveryClass("shuffle", cost)
		c.emit(eventlog.Event{Kind: eventlog.Recovered, Time: c.Now(), Job: c.curJob,
			Stage: st.ID, Dataset: st.Boundary.ID(), Shuffle: st.ShuffleDep.ShuffleID, Cost: cost})
	} else if len(partialClasses) > 0 {
		c.attributePartialRecovery(st, partialClasses, c.coreTimeSum()-recoveryStart)
	}
	c.met.RanStages++
	c.emit(eventlog.Event{Kind: eventlog.StageEnd, Time: c.Now(), Job: c.curJob,
		Stage: st.ID, Dataset: st.Boundary.ID(), Regen: st.Regenerated})

	if st.Regenerated {
		// A regenerated stage executes in the middle of an outer task
		// (a reduce task found its shuffle inputs cleaned). The global
		// barrier applies only to top-level stages: synchronizing every
		// executor to the global max here would inflate clocks mid-task
		// and corrupt the idle budgets of the enclosing stage. The
		// controller is still told the stage ended — with no barrier
		// there is no idle slack to hand out.
		c.ctl.OnStageEnd(st, make([]time.Duration, len(c.execs)))
		return results
	}

	// Stage barrier: executors synchronize; the slack each executor had
	// is reported to the controller as prefetch budget (MRD hides
	// prefetch I/O in this idle time). Dead executors stay frozen and
	// report zero slack, so prefetchers never schedule work onto them.
	end := c.Now()
	idle := make([]time.Duration, len(c.execs))
	for i, ex := range c.execs {
		if ex.dead {
			continue
		}
		idle[i] = end - ex.MaxClock()
		ex.SyncTo(end)
	}
	c.updateBlacklist(st)
	c.ctl.OnStageEnd(st, idle)
	if c.cfg.Hook != nil {
		c.cfg.Hook.OnStageEnd(c, st)
	}
	return results
}

// attributePartialRecovery charges the core time a map stage spent
// re-running fault-invalidated map outputs. The stage may mix fault
// classes (a bucket loss and an executor death can invalidate outputs of
// the same shuffle), so the measured cost is split across classes
// proportionally to their invalidated-map counts, with the remainder on
// the last class so the per-class total matches the per-job total.
func (c *Cluster) attributePartialRecovery(st *Stage, classes map[int]string, cost time.Duration) {
	sid := st.ShuffleDep.ShuffleID
	perClass := map[string]int{}
	total := 0
	for _, class := range classes {
		perClass[class]++
		total++
	}
	names := make([]string, 0, len(perClass))
	for class := range perClass {
		names = append(names, class)
	}
	sort.Strings(names)
	c.met.AddFaultRecovery(c.curJob, cost)
	remaining := cost
	for i, class := range names {
		share := remaining
		if i < len(names)-1 {
			share = cost * time.Duration(perClass[class]) / time.Duration(total)
		}
		c.met.AddFaultRecoveryClass(class, share)
		remaining -= share
	}
	delete(c.faultLostMaps, sid)
	c.emit(eventlog.Event{Kind: eventlog.Recovered, Time: c.Now(), Job: c.curJob,
		Stage: st.ID, Dataset: st.Boundary.ID(), Shuffle: sid, Cost: cost, Count: total})
}

// taskExecutor returns the executor that will run the task for partition
// p: the partition's home executor unless it is currently blacklisted, in
// which case the task is deterministically rerouted over the live,
// non-blacklisted executors (by partition index, so the same partition
// lands on the same substitute in every run). If every live executor is
// blacklisted, the home executor runs the task anyway rather than
// starving the stage.
func (c *Cluster) taskExecutor(p int) *Executor {
	ex := c.ExecutorFor(p)
	if !ex.blacklisted {
		return ex
	}
	var eligible []*Executor
	for _, e := range c.execs {
		if !e.dead && !e.blacklisted {
			eligible = append(eligible, e)
		}
	}
	if len(eligible) == 0 {
		return ex
	}
	return eligible[p%len(eligible)]
}

// updateBlacklist runs at each top-level stage barrier (driver context):
// executors whose accumulated retryable failures crossed
// Resilience.BlacklistAfter are blacklisted for BlacklistCooldown
// top-level stages; already blacklisted executors count their cooldown
// down and are reinstated when it expires. Blacklisted != dead: the
// cache survives and the clocks keep participating in barriers.
func (c *Cluster) updateBlacklist(st *Stage) {
	if c.res.BlacklistAfter <= 0 {
		return
	}
	for _, ex := range c.execs {
		if ex.dead {
			continue
		}
		if ex.blacklisted {
			ex.cooldown--
			if ex.cooldown <= 0 {
				ex.blacklisted = false
				ex.flakes = 0
				c.emit(eventlog.Event{Kind: eventlog.ExecutorReinstated, Time: c.Now(), Job: c.curJob,
					Stage: st.ID, Executor: ex.ID})
			}
			continue
		}
		if ex.flakes >= c.res.BlacklistAfter {
			ex.blacklisted = true
			ex.cooldown = c.res.BlacklistCooldown
			ex.flakes = 0
			c.met.IncBlacklisted()
			c.emit(eventlog.Event{Kind: eventlog.ExecutorBlacklisted, Time: c.Now(), Job: c.curJob,
				Stage: st.ID, Executor: ex.ID, Count: c.res.BlacklistCooldown})
		}
	}
}

// runTask executes the task for one partition of the stage boundary
// inside its resilience envelope: transiently failed attempts are
// retried with exponential backoff (bounded by Resilience.MaxTaskRetries;
// the final attempt always runs for real, so tasks terminate and retries
// never exceed the budget by construction), and an execution inside a
// straggler window is inflated — and possibly raced against a
// speculative copy — after the real work is measured.
func (c *Cluster) runTask(ex *Executor, st *Stage, part int) []dataflow.Record {
	if c.taskHook != nil {
		for attempt := 1; ; attempt++ {
			if !c.taskHook.OnTaskStart(c, ex, st, part, attempt) || attempt > c.res.MaxTaskRetries {
				break
			}
			c.failTaskAttempt(ex, st, part, attempt)
		}
	}
	start := ex.Clock().Now()
	recs := c.runTaskBody(ex, st, part)
	c.applyStraggler(ex, st, part, start)
	if c.taskHook != nil {
		c.taskHook.OnTaskEnd(c, ex, st, part)
	}
	return recs
}

// failTaskAttempt charges one transiently failed task attempt: the
// wasted launch overhead plus a deterministic exponential backoff before
// the retry, both on the executor's own core clock — executor-local, so
// flaky attempts stay bit-identical under parallel stage execution.
func (c *Cluster) failTaskAttempt(ex *Executor, st *Stage, part, attempt int) {
	backoff := c.res.RetryBackoff << (attempt - 1)
	cost := c.cfg.Params.TaskOverhead + backoff
	ex.Clock().Advance(cost)
	ex.flakes++
	c.met.IncFaultInjected()
	c.met.AddTaskRetry(cost)
	c.met.AddFaultRecovery(c.curJob, cost)
	c.met.AddFaultRecoveryClass("task-flake", cost)
	c.emitEx(ex, eventlog.Event{Kind: eventlog.TaskRetry, Time: ex.Clock().Now(), Job: c.curJob,
		Stage: st.ID, Executor: ex.ID, Dataset: st.Boundary.ID(), Partition: part,
		Attempt: attempt, Cost: cost})
}

// applyStraggler inflates the just-finished execution if the executor is
// inside a straggler window and, when speculation is enabled, races a
// copy of the task on the fastest eligible executor. The task's own
// unslowed duration stands in for the stage's median task time (a
// stage's tasks are homogeneous partitions of one boundary), so the copy
// launches at the virtual instant the task exceeds SpeculativeMultiple
// times its intrinsic cost; the first finisher wins and the loser is
// killed at the winner's finish time, its core time accounted as
// straggler recovery waste. Without speculation the slowdown is
// executor-local and therefore parallel-safe; stages that could
// speculate are gated onto the sequential loop by parallelPlan.
func (c *Cluster) applyStraggler(ex *Executor, st *Stage, part int, start time.Duration) {
	if ex.slowTasks <= 0 {
		return
	}
	factor := ex.slowFactor
	ex.slowTasks--
	if ex.slowTasks == 0 {
		ex.slowFactor = 0
	}
	raw := ex.Clock().Now() - start
	if raw <= 0 || factor <= 1 {
		return
	}
	extra := time.Duration(float64(raw) * (factor - 1))
	slowFinish := start + raw + extra

	if mult := c.res.SpeculativeMultiple; mult > 1 && factor > mult {
		if copyEx, core := c.speculationTarget(ex); copyEx != nil {
			detect := start + time.Duration(float64(raw)*mult)
			copyStart := core.Now()
			if copyStart < detect {
				copyStart = detect
			}
			if copyStart < slowFinish {
				copyFinish := copyStart + c.cfg.Params.TaskOverhead + raw
				win := copyFinish < slowFinish
				finish := slowFinish
				if win {
					finish = copyFinish
				}
				// Both runners execute until the winner's finish: the
				// straggling primary past its intrinsic cost and the
				// copy's whole run are redundant work caused by the fault.
				wasted := finish - (start + raw)
				copyTime := finish - copyStart
				ex.Clock().Advance(wasted)
				core.AdvanceTo(finish)
				c.met.AddSpeculative(win)
				c.met.AddStragglerSlowdown(wasted)
				c.met.AddFaultRecovery(c.curJob, wasted+copyTime)
				c.met.AddFaultRecoveryClass("straggler", wasted+copyTime)
				c.emitEx(ex, eventlog.Event{Kind: eventlog.SpeculativeLaunch, Time: copyStart, Job: c.curJob,
					Stage: st.ID, Executor: copyEx.ID, Dataset: st.Boundary.ID(), Partition: part,
					Cost: copyTime, Win: win})
				return
			}
		}
	}
	ex.Clock().Advance(extra)
	c.met.AddStragglerSlowdown(extra)
	c.met.AddFaultRecovery(c.curJob, extra)
	c.met.AddFaultRecoveryClass("straggler", extra)
}

// speculationTarget picks the executor a speculative copy runs on: the
// live, non-blacklisted executor other than the straggler whose
// least-loaded core is earliest, ties by id order. Returns nil when the
// straggler is the only candidate.
func (c *Cluster) speculationTarget(ex *Executor) (*Executor, *costmodel.Clock) {
	var best *Executor
	var bestClock *costmodel.Clock
	for _, cand := range c.execs {
		if cand == ex || cand.dead || cand.blacklisted {
			continue
		}
		cl := cand.idleCore()
		if best == nil || cl.Now() < bestClock.Now() {
			best, bestClock = cand, cl
		}
	}
	return best, bestClock
}

// runTaskBody materializes one partition of the stage boundary and, for
// map stages, writes the shuffle output.
func (c *Cluster) runTaskBody(ex *Executor, st *Stage, part int) []dataflow.Record {
	if st.vec {
		return c.runTaskBodyVec(ex, st, part)
	}
	ex.Clock().Advance(c.cfg.Params.TaskOverhead)
	c.met.Executors[ex.ID].Tasks++
	recs := c.materialize(ex, st.Boundary, part)
	c.emitEx(ex, eventlog.Event{Kind: eventlog.TaskEnd, Time: ex.Clock().Now(), Job: c.curJob,
		Stage: st.ID, Executor: ex.ID, Dataset: st.Boundary.ID(), Partition: part})
	if st.IsResult {
		return recs
	}

	dep := st.ShuffleDep
	buckets := make([][]dataflow.Record, st.NumBuckets)
	if dep.Broadcast {
		for b := range buckets {
			buckets[b] = recs
		}
	} else {
		for _, r := range recs {
			b := dataflow.HashPartition(r.Key, st.NumBuckets)
			buckets[b] = append(buckets[b], r)
		}
	}
	bucketBytes := make([]int64, st.NumBuckets)
	var written int64
	for b, brs := range buckets {
		if len(brs) == 0 {
			continue
		}
		if dep.Combine != nil {
			brs = dataflow.MergeByKey(brs, dep.Combine)
			buckets[b] = brs
		}
		size := storage.EstimateRecords(brs)
		bucketBytes[b] = size
		written += size
	}
	if err := c.shuffle.SetMapOutput(dep.ShuffleID, part, ex.ID, buckets, bucketBytes); err != nil {
		panic(err) // stage was Ensure'd and only missing maps re-run
	}
	// Shuffle write cost: serialization dominates (shuffle files land in
	// the OS page cache); the device write is not charged, keeping the
	// "Computation+Shuffle" bucket from drowning the cache-recovery
	// costs the paper studies.
	cost := c.cfg.Params.Serialize(written)
	ex.Clock().Advance(cost)
	c.met.Executors[ex.ID].Breakdown.Shuffle += cost
	return recs
}

// materialize produces the records of (ds, part) on the executor:
// memory hit, disk hit, or recursive recomputation from parents — the
// three recovery paths of Fig. 2.
func (c *Cluster) materialize(ex *Executor, ds *dataflow.Dataset, part int) []dataflow.Record {
	id := storage.BlockID{Dataset: ds.ID(), Partition: part}
	params := c.cfg.Params
	stats := &c.met.Executors[ex.ID]

	// 1. Memory store.
	if recs, meta, ok := ex.Mem.Get(id, ex.Clock().Now()); ok {
		if c.cfg.AlluxioMode {
			// The external store serves serialized bytes even from its
			// memory tier; every read pays deserialization (§7.2).
			cost := params.Serialize(meta.Size)
			ex.Clock().Advance(cost)
			stats.Breakdown.DiskIO += cost
			c.meter.AddModeled(storage.MemDecode, cost)
		}
		c.met.IncCacheHit()
		c.ctl.OnBlockAccess(ex, id)
		c.emitEx(ex, eventlog.Event{Kind: eventlog.BlockHit, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: meta.Size})
		return recs
	}

	// 2. Disk store.
	if recs, size, ok := ex.Disk.Get(id); ok {
		cost := params.DiskRead(size)
		ex.Clock().Advance(cost)
		stats.Breakdown.DiskIO += cost
		c.meter.AddModeled(storage.DiskRead, cost)
		c.met.IncDiskHit()
		c.ctl.OnBlockAccess(ex, id)
		c.emitEx(ex, eventlog.Event{Kind: eventlog.BlockDiskHit, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: size, Cost: cost})
		if c.ctl.PromoteOnDiskRead(ex, id) {
			// The disk copy is retained (as Spark's DiskStore retains
			// spilled blocks until unpersist); a later re-eviction of the
			// promoted block therefore pays no second write.
			c.admitToMemory(ex, id, recs, size)
		}
		return recs
	}

	// 3. Recompute from parents.
	c.mu.Lock()
	wasComputed := c.computedOnce[id]
	c.mu.Unlock()
	ins := make([][]dataflow.Record, len(ds.Deps()))
	totalIn := 0
	var fetchCost time.Duration
	for i, dep := range ds.Deps() {
		if dep.Shuffle {
			var fc time.Duration
			ins[i], fc = c.fetchShuffle(ex, dep, ds.Partitions(), part)
			fetchCost += fc
		} else {
			ins[i] = c.materialize(ex, dep.Parent, part)
		}
		totalIn += len(ins[i])
	}
	out := ds.Compute(part, ins)
	n := totalIn
	if len(out) > n {
		n = len(out)
	}
	size := storage.EstimateRecords(out)
	cost := params.Compute(costmodel.OpClass(ds.Class()), n)
	if len(ds.Deps()) == 0 {
		// Source partitions additionally pay the external input scan.
		cost += params.SourceRead(size)
	}
	ex.Clock().Advance(cost)
	stats.Breakdown.Compute += cost
	if wasComputed {
		stats.Breakdown.Recompute += cost
		c.met.IncMiss()
		c.met.AddRecompute(c.curJob, cost)
		c.emitEx(ex, eventlog.Event{Kind: eventlog.Recomputed, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: ds.ID(), Partition: part, Cost: cost})
	}
	c.mu.Lock()
	class, wasFaultLost := c.faultLost[id]
	if wasFaultLost {
		delete(c.faultLost, id)
	}
	c.computedOnce[id] = true
	c.mu.Unlock()
	if wasFaultLost {
		// The block was destroyed by an injected fault; this
		// recomputation is its recovery.
		c.met.AddFaultRecovery(c.curJob, cost)
		c.met.AddFaultRecoveryClass(class, cost)
		c.emitEx(ex, eventlog.Event{Kind: eventlog.Recovered, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: ds.ID(), Partition: part, Cost: cost})
	}

	// The reported production cost (cost_{k→i} on the CostLineage) is
	// incremental: this partition's computation plus its own shuffle
	// fetches, excluding recursive ancestor work (Eq. 4 sums the chain
	// itself).
	c.ctl.OnComputed(ex, ds, part, size, cost+fetchCost)

	primary, fallback := c.ctl.PlaceComputed(ex, ds, part, size)
	placed := false
	if primary == PlaceMemory {
		placed = c.admitToMemory(ex, id, out, size)
	}
	if !placed && (primary == PlaceDisk || (primary == PlaceMemory && fallback == PlaceDisk)) {
		c.writeToDisk(ex, id, out, size)
	}
	return out
}

// admitToMemory caches a block in executor memory, evicting victims as
// the controller directs. Returns false if space could not be freed.
func (c *Cluster) admitToMemory(ex *Executor, id storage.BlockID, recs []dataflow.Record, size int64) bool {
	if ex.Mem.Contains(id) {
		// A duplicate admit must be rejected before any cost is charged:
		// Put would refuse it anyway, and charging the AlluxioMode
		// serialization below for an admission that never happens would
		// leave the clock advanced for phantom work.
		return false
	}
	if size > ex.Mem.Capacity() {
		return false
	}
	if !c.quotaReclaim(ex, id, size) {
		// Tenant quota exhausted even after evicting the tenant's own
		// coldest blocks: refuse the admission before any cost is
		// charged. The block falls through to the controller's fallback
		// placement (disk for MEM+DISK systems) like any admission
		// failure.
		c.met.IncQuotaRejection()
		c.emitEx(ex, eventlog.Event{Kind: eventlog.QuotaRejected, Time: ex.Clock().Now(), Job: c.curJob,
			Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: size,
			Tenant: c.quota.Owner(id)})
		return false
	}
	if !c.ensureFree(ex, size) {
		return false
	}
	if c.cfg.AlluxioMode {
		cost := c.cfg.Params.Serialize(size)
		ex.Clock().Advance(cost)
		c.met.Executors[ex.ID].Breakdown.DiskIO += cost
		c.meter.AddModeled(storage.MemEncode, cost)
	}
	if _, err := ex.Mem.Put(id, recs, size, ex.ID, ex.Clock().Now()); err != nil {
		return false
	}
	c.ctl.OnBlockAdmitted(ex, id)
	c.emitEx(ex, eventlog.Event{Kind: eventlog.BlockAdmitted, Time: ex.Clock().Now(), Job: c.curJob,
		Executor: ex.ID, Dataset: id.Dataset, Partition: id.Partition, Bytes: size})
	return true
}

// writeToDisk stores a freshly computed block on disk (the d state),
// charging the write.
func (c *Cluster) writeToDisk(ex *Executor, id storage.BlockID, recs []dataflow.Record, size int64) {
	if ex.Disk.Contains(id) {
		return
	}
	if c.cfg.VerifyCodec && !c.cfg.RealBytes {
		c.verifyCodec(id, recs)
	}
	cost := c.cfg.Params.DiskWrite(size)
	ex.Clock().Advance(cost)
	c.met.Executors[ex.ID].Breakdown.DiskIO += cost
	c.meter.AddModeled(storage.DiskWrite, cost)
	if err := ex.Disk.Put(id, recs, size); err != nil {
		panic(err) // Contains was checked above
	}
	c.noteDiskWrite(ex, size)
}

// fetchShuffle reads one reduce bucket, regenerating the parent stage if
// the shuffle outputs were cleaned. It returns the records and the direct
// fetch cost (excluding any regeneration, which is charged to its own
// stage's tasks, and excluding transient fetch-flake backoff, which must
// not pollute the incremental cost estimates controllers build on).
func (c *Cluster) fetchShuffle(ex *Executor, dep dataflow.Dependency, childParts, part int) ([]dataflow.Record, time.Duration) {
	c.fetchShufflePrologue(ex, dep, childParts, part)
	recs, bytes, err := c.shuffle.Fetch(dep.ShuffleID, part)
	if err != nil {
		panic(err) // regeneration above guarantees completeness
	}
	cost := c.cfg.Params.NetTransfer(bytes) + c.cfg.Params.Serialize(bytes)
	ex.Clock().Advance(cost)
	c.met.Executors[ex.ID].Breakdown.Shuffle += cost
	return recs, cost
}

// fetchShufflePrologue regenerates a cleaned shuffle and charges any
// injected transient fetch flakes. It is shared by the row and columnar
// fetch paths so their charge and event sequences are identical.
func (c *Cluster) fetchShufflePrologue(ex *Executor, dep dataflow.Dependency, childParts, part int) {
	if !c.shuffle.Complete(dep.ShuffleID) {
		c.regenerateShuffle(dep, childParts)
	}
	if c.taskHook != nil {
		// Transient fetch flakes: the bucket is intact, the attempt just
		// failed. Bounded like task retries; the verdict of the final
		// attempt is ignored so fetches always complete.
		for attempt := 1; ; attempt++ {
			if !c.taskHook.OnFetch(c, ex, dep.ShuffleID, part, attempt) || attempt > c.res.MaxFetchRetries {
				break
			}
			backoff := c.res.RetryBackoff << (attempt - 1)
			ex.Clock().Advance(backoff)
			ex.flakes++
			c.met.IncFaultInjected()
			c.met.AddFetchRetry(backoff)
			c.met.AddFaultRecovery(c.curJob, backoff)
			c.met.AddFaultRecoveryClass("fetch-flake", backoff)
			c.emitEx(ex, eventlog.Event{Kind: eventlog.FetchRetry, Time: ex.Clock().Now(), Job: c.curJob,
				Executor: ex.ID, Shuffle: dep.ShuffleID, Partition: part, Attempt: attempt, Cost: backoff})
		}
	}
}

// regenerateShuffle re-runs the map stage for a cleaned shuffle — the
// analogue of Spark resubmitting a parent stage on missing shuffle files.
// The regenerated stage's own missing inputs regenerate recursively
// through its tasks, which is how recomputation lineages extend across
// iterations (§4.3, Fig. 5).
func (c *Cluster) regenerateShuffle(dep dataflow.Dependency, childParts int) {
	st := &Stage{
		ID:          c.stageSeq,
		Boundary:    dep.Parent,
		ShuffleDep:  dep,
		NumBuckets:  childParts,
		Regenerated: true,
	}
	c.stageSeq++

	// The regeneration happens in the middle of an outer task: the
	// nested stage's tasks pick their own cores, so the active-core
	// indices must be saved and restored, or the outer tasks' remaining
	// costs would land on whichever core the last nested task used.
	// (If the shuffle was destroyed by an injected fault, runStage
	// itself attributes the recovery cost.)
	saved := make([]int, len(c.execs))
	for i, ex := range c.execs {
		saved[i] = ex.cur
	}
	c.runStage(st)
	for i, ex := range c.execs {
		ex.cur = saved[i]
	}
}

// coreTimeSum totals every core clock of every executor — the accumulated
// virtual work measure used to price fault recoveries.
func (c *Cluster) coreTimeSum() time.Duration {
	var t time.Duration
	for _, ex := range c.execs {
		for i := range ex.cores {
			t += ex.cores[i].Now()
		}
	}
	return t
}
