// Package mllib implements the machine learning substrate for the
// evaluation workloads: logistic regression (SGD), KMeans (Lloyd) and
// gradient boosted trees, on the dataflow API with the caching
// choreography of Spark MLlib (§7.1): the training set is cached and
// referenced every iteration, per-iteration temporaries are annotated
// blindly, and model state broadcasts to the data partitions each step.
package mllib

import (
	"fmt"
	"sync"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// LabeledPoint is one training example.
type LabeledPoint struct {
	X []float64
	Y float64
}

// SizeBytes implements storage.Sized.
func (p LabeledPoint) SizeBytes() int64 { return 32 + 8*int64(len(p.X)) }

// Vector is a plain numeric vector value.
type Vector struct {
	V []float64
}

// SizeBytes implements storage.Sized.
func (v Vector) SizeBytes() int64 { return 24 + 8*int64(len(v.V)) }

// srcCache memoizes generated source partitions across recomputations:
// generation is deterministic and records immutable, so this only saves
// real wall time; the engine charges the modeled cost regardless.
var srcCache sync.Map

type srcKey struct {
	kind  string
	spec  any
	parts int
	part  int
}

func memoized(kind string, spec any, parts, part int, gen func() []dataflow.Record) []dataflow.Record {
	key := srcKey{kind: kind, spec: spec, parts: parts, part: part}
	if v, ok := srcCache.Load(key); ok {
		return v.([]dataflow.Record)
	}
	out := gen()
	srcCache.Store(key, out)
	return out
}

// pointsSource builds the partitioned training set from a PointsSpec.
func pointsSource(ctx *dataflow.Context, name string, spec datagen.PointsSpec, parts int) *dataflow.Dataset {
	return ctx.Source(name, parts, func(part int) []dataflow.Record {
		return memoized("points", spec, parts, part, func() []dataflow.Record {
			var out []dataflow.Record
			for i := int64(part); i < int64(spec.N); i += int64(parts) {
				x, y := spec.Point(i)
				out = append(out, dataflow.Record{Key: i, Value: LabeledPoint{X: x, Y: y}})
			}
			return out
		})
	})
}

// name formats a role@iteration dataset name.
func name(role string, it int) string { return fmt.Sprintf("%s@%d", role, it) }
