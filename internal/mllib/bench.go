package mllib

// Exported hot-path surfaces for the throughput benchmarks: a
// deterministic k-means partition builder plus the row closure and
// batch kernel of the assignment Barrier (km-stats), the workload's
// hottest stage. Both sides run the exact logic the engine runs, so
// kernel-level measurements reflect the real per-task data plane.

import (
	"math"

	"blaze/internal/dataflow"
)

// BenchKMeansPartition builds one deterministic partition of n points
// of dimension dim plus a broadcast set of k centroids, in both
// representations. Returns points, centroids as rows and as batches.
func BenchKMeansPartition(n, dim, k int) (ps []dataflow.Record, cs []dataflow.Record, pb, cb *dataflow.Batch) {
	ps = make([]dataflow.Record, n)
	for i := range ps {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((i*13+j*7)%97) / 97
		}
		ps[i] = dataflow.Record{Key: int64(i), Value: Vector{V: v}}
	}
	cs = make([]dataflow.Record, k)
	for c := range cs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((c*29+j*11)%97) / 97
		}
		cs[c] = dataflow.Record{Key: int64(c), Value: Vector{V: v}}
	}
	return ps, cs, dataflow.FromRecords(ps), dataflow.FromRecords(cs)
}

// BenchStatsRow runs the assignment Barrier the way the row task loop
// does: boxed records, a map of *sumCount accumulators.
func BenchStatsRow(ps, cs []dataflow.Record, k int) []dataflow.Record {
	centers := make([][]float64, len(cs))
	for _, c := range cs {
		centers[c.Key] = c.Value.(Vector).V
	}
	acc := make(map[int64]*sumCount)
	for _, p := range ps {
		x := p.Value.(Vector).V
		best, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if ctr == nil {
				continue
			}
			d := 0.0
			for j := range x {
				diff := x[j] - ctr[j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		sc := acc[int64(best)]
		if sc == nil {
			sc = &sumCount{Sum: make([]float64, len(x))}
			acc[int64(best)] = sc
		}
		for j := range x {
			sc.Sum[j] += x[j]
		}
		sc.N++
	}
	var out []dataflow.Record
	for c := int64(0); c < int64(k); c++ {
		if sc := acc[c]; sc != nil {
			out = append(out, dataflow.Record{Key: c, Value: *sc})
		}
	}
	return out
}

// BenchStatsBatch runs the assignment kernel the way the vectorized
// task loop does. The caller owns (and should Release) the returned
// batch.
func BenchStatsBatch(pb, cb *dataflow.Batch, k int) *dataflow.Batch {
	return statsKernel(k)(0, []*dataflow.Batch{pb, cb})
}
