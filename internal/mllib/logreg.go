package mllib

import (
	"math"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// LogisticRegressionConfig parameterizes the LR workload (§7.1: Criteo
// click logs stand-in, MLlib iteration structure).
type LogisticRegressionConfig struct {
	Points    datagen.PointsSpec
	Parts     int
	Iters     int
	LearnRate float64
	// Annotate applies MLlib's caching pattern: the training set plus
	// per-iteration temporaries are annotated, though only the training
	// set is ever reused (§7.2 observes exactly this for LR).
	Annotate bool
}

func (c LogisticRegressionConfig) withDefaults() LogisticRegressionConfig {
	if c.Parts == 0 {
		c.Parts = 8
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.5
	}
	return c
}

// gradStats carries a partition's gradient contribution plus the weights
// it was computed against (so the reducer can apply the step).
type gradStats struct {
	Grad []float64
	Loss float64
	N    float64
	W    []float64
}

// SizeBytes implements storage.Sized.
func (g gradStats) SizeBytes() int64 { return 64 + 8*int64(len(g.Grad)+len(g.W)) }

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// LogisticRegression trains by full-batch gradient descent, one job per
// iteration, and returns the final weights and training accuracy.
func LogisticRegression(ctx *dataflow.Context, cfg LogisticRegressionConfig) ([]float64, float64) {
	cfg = cfg.withDefaults()
	dim := cfg.Points.Dim
	raw := pointsSource(ctx, "lr-points@0", cfg.Points, cfg.Parts)
	// MLlib standardizes the features into a second full-size dataset;
	// only the standardized copy is referenced by the iterations, yet
	// annotation-based systems blindly cache both (§7.2 observes LR
	// caching three RDDs per iteration with only one actually reused).
	points := raw.Map("lr-std@0", func(r dataflow.Record) dataflow.Record {
		lp := r.Value.(LabeledPoint)
		x := make([]float64, len(lp.X))
		for d := range x {
			x[d] = lp.X[d] // features are already unit-variance; the pass models the copy
		}
		return dataflow.Record{Key: r.Key, Value: LabeledPoint{X: x, Y: lp.Y}}
	})
	if cfg.Annotate {
		raw.Cache()
		points.Cache()
	}
	weights := ctx.Source("lr-weights@0", 1, func(int) []dataflow.Record {
		return []dataflow.Record{{Key: 0, Value: Vector{V: make([]float64, dim)}}}
	})

	var prevGrads, prevWeights *dataflow.Dataset
	for it := 1; it <= cfg.Iters; it++ {
		grads := dataflow.Barrier(name("lr-grads", it), dataflow.OpHeavy, points, weights,
			func(_ int, ps, ws []dataflow.Record) []dataflow.Record {
				w := ws[0].Value.(Vector).V
				g := make([]float64, dim)
				loss, n := 0.0, 0.0
				for _, p := range ps {
					lp := p.Value.(LabeledPoint)
					z := 0.0
					for d := range w {
						z += w[d] * lp.X[d]
					}
					pred := sigmoid(z)
					err := pred - lp.Y
					for d := range g {
						g[d] += err * lp.X[d]
					}
					if lp.Y > 0.5 {
						loss -= math.Log(math.Max(pred, 1e-12))
					} else {
						loss -= math.Log(math.Max(1-pred, 1e-12))
					}
					n++
				}
				return []dataflow.Record{{Key: 0, Value: gradStats{Grad: g, Loss: loss, N: n, W: w}}}
			})
		agg := grads.ReduceByKey(name("lr-agg", it), 1, func(a, b any) any {
			av, bv := a.(gradStats), b.(gradStats)
			sum := make([]float64, len(av.Grad))
			for d := range sum {
				sum[d] = av.Grad[d] + bv.Grad[d]
			}
			return gradStats{Grad: sum, Loss: av.Loss + bv.Loss, N: av.N + bv.N, W: av.W}
		})
		newWeights := agg.Map(name("lr-weights", it), func(r dataflow.Record) dataflow.Record {
			gs := r.Value.(gradStats)
			w := make([]float64, len(gs.W))
			for d := range w {
				w[d] = gs.W[d] - cfg.LearnRate*gs.Grad[d]/math.Max(gs.N, 1)
			}
			return dataflow.Record{Key: 0, Value: Vector{V: w}}
		})
		if cfg.Annotate {
			// MLlib-style blind annotations: the per-iteration gradient
			// and weight datasets are cached though barely reused.
			grads.Cache()
			newWeights.Cache()
		}
		newWeights.Collect() // the iteration's job

		if prevGrads != nil {
			prevGrads.Release()
		}
		if prevWeights != nil && prevWeights.Deps() != nil {
			prevWeights.Release()
		}
		prevGrads, prevWeights = grads, weights
		weights = newWeights
	}

	// Final model and training accuracy.
	var w []float64
	for _, part := range weights.Collect() {
		for _, r := range part {
			w = r.Value.(Vector).V
		}
	}
	correct := dataflow.Barrier("lr-eval@0", dataflow.OpMedium, points, weights,
		func(_ int, ps, ws []dataflow.Record) []dataflow.Record {
			wv := ws[0].Value.(Vector).V
			c, n := 0.0, 0.0
			for _, p := range ps {
				lp := p.Value.(LabeledPoint)
				z := 0.0
				for d := range wv {
					z += wv[d] * lp.X[d]
				}
				pred := 0.0
				if z > 0 {
					pred = 1
				}
				if pred == lp.Y {
					c++
				}
				n++
			}
			return []dataflow.Record{{Key: 0, Value: []float64{c, n}}}
		}).ReduceByKey("lr-acc@0", 1, func(a, b any) any {
		av, bv := a.([]float64), b.([]float64)
		return []float64{av[0] + bv[0], av[1] + bv[1]}
	})
	var acc float64
	for _, part := range correct.Collect() {
		for _, r := range part {
			v := r.Value.([]float64)
			if v[1] > 0 {
				acc = v[0] / v[1]
			}
		}
	}
	return w, acc
}

// LogisticRegressionWorkload wraps LR as a profile-compatible workload.
func LogisticRegressionWorkload(cfg LogisticRegressionConfig) func(ctx *dataflow.Context, scale float64) {
	return func(ctx *dataflow.Context, scale float64) {
		c := cfg.withDefaults()
		c.Points.N = scaledN(c.Points.N, scale)
		LogisticRegression(ctx, c)
	}
}

// scaledN shrinks n by scale with a floor.
func scaledN(n int, scale float64) int {
	m := int(float64(n) * scale)
	if m < 32 {
		m = 32
	}
	if m > n {
		m = n
	}
	return m
}
